// libFuzzer harness for the SWHIDX1 binary index reader — the
// header/offset-table parser behind IndexedFastaReader. A hostile
// sidecar must yield ParseError, never an allocation blow-up or a
// structurally inconsistent index.

#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>

#include "io/indexed.hpp"
#include "util/error.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
    const std::string bytes(reinterpret_cast<const char*>(data), size);
    std::istringstream in(bytes);
    try {
        const swh::io::SequenceIndex idx = swh::io::load_index(in);
        // What load_index returns must satisfy save_index's
        // preconditions and its own documented invariants.
        if (idx.offsets.size() != idx.sequence_count) __builtin_trap();
        if (idx.lengths.size() != idx.sequence_count) __builtin_trap();
        std::uint64_t total = 0;
        std::uint64_t longest = 0;
        for (const std::uint64_t len : idx.lengths) {
            total += len;
            if (len > longest) longest = len;
        }
        if (total != idx.total_residues) __builtin_trap();
        if (longest != idx.max_sequence_length) __builtin_trap();
        std::ostringstream out;
        swh::io::save_index(idx, out);
    } catch (const swh::ParseError&) {
    }
    return 0;
}

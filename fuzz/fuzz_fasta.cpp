// libFuzzer harness for the FASTA parser. Any input must either parse
// or throw a typed swh error (ParseError / ContractError); every other
// escape — crash, sanitizer report, unexpected exception type — is a
// finding. Built with -fsanitize=fuzzer under Clang (SWH_FUZZ); other
// compilers link standalone_main.cpp and replay the checked-in corpus.

#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>

#include "align/alphabet.hpp"
#include "io/fasta.hpp"
#include "util/error.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
    const std::string text(reinterpret_cast<const char*>(data), size);
    for (const swh::align::Alphabet* alphabet :
         {&swh::align::Alphabet::protein(), &swh::align::Alphabet::dna()}) {
        std::istringstream in(text);
        try {
            const auto seqs = swh::io::read_fasta(in, *alphabet);
            // Round-trip what parsed: the writer must accept any
            // sequence the reader produced.
            std::ostringstream out;
            swh::io::write_fasta(out, seqs, *alphabet);
        } catch (const swh::ParseError&) {
        } catch (const swh::ContractError&) {
        }
    }
    return 0;
}

// libFuzzer harness for the FASTQ parser. See fuzz_fasta.cpp for the
// contract: parse or throw a typed swh error, nothing else.

#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>

#include "align/alphabet.hpp"
#include "io/fastq.hpp"
#include "util/error.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
    const std::string text(reinterpret_cast<const char*>(data), size);
    std::istringstream in(text);
    try {
        const auto records =
            swh::io::read_fastq(in, swh::align::Alphabet::dna());
        for (const auto& r : records) {
            // The documented parser invariant, re-checked from outside.
            if (r.quality.size() != r.seq.residues.size()) __builtin_trap();
        }
        std::ostringstream out;
        swh::io::write_fastq(out, records, swh::align::Alphabet::dna());
    } catch (const swh::ParseError&) {
    } catch (const swh::ContractError&) {
    }
    return 0;
}

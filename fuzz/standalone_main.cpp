// Corpus replay driver for toolchains without libFuzzer (GCC builds,
// SWH_FUZZ=OFF smoke runs). Feeds every file argument — or every
// regular file inside a directory argument — through the harness's
// LLVMFuzzerTestOneInput, exactly as `./harness corpus/` would under
// libFuzzer, minus the mutation engine. Registered as a ctest test so
// the checked-in corpora run on every configuration.

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

std::size_t run_file(const std::filesystem::path& path) {
    std::ifstream in(path, std::ios::binary);
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    LLVMFuzzerTestOneInput(reinterpret_cast<const std::uint8_t*>(bytes.data()),
                           bytes.size());
    return 1;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) {
        std::fprintf(stderr, "usage: %s <corpus-file-or-dir>...\n", argv[0]);
        return 2;
    }
    std::size_t ran = 0;
    for (int i = 1; i < argc; ++i) {
        const std::filesystem::path arg(argv[i]);
        if (std::filesystem::is_directory(arg)) {
            for (const auto& entry :
                 std::filesystem::recursive_directory_iterator(arg)) {
                if (entry.is_regular_file()) ran += run_file(entry.path());
            }
        } else {
            ran += run_file(arg);
        }
    }
    std::printf("replayed %zu corpus input(s), no crashes\n", ran);
    return ran == 0 ? 2 : 0;
}

// libFuzzer harness for the wire codec (ISSUE 10). Arbitrary bytes go
// through every decoder as a frame body; anything decoded must
// re-encode and decode back to an equal value (the codec is a
// bijection on its accepted set). The decoders must never throw, crash,
// or over-allocate — a forged count/length is rejected by bounds
// checks, not by the allocator. Built with -fsanitize=fuzzer under
// Clang (SWH_FUZZ); other compilers link standalone_main.cpp and
// replay the checked-in corpus.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "net/wire.hpp"
#include "util/check.hpp"

namespace {

template <typename Decode>
void probe(const std::uint8_t* data, std::size_t size, Decode decode) {
    std::string why;
    auto msg = decode(data, size, &why);
    SWH_CHECK(msg.has_value() || !why.empty(),
              "rejection must carry a reason");
    if (!msg.has_value()) return;

    // Accepted: encode must produce a frame whose body decodes to an
    // equal value. (Not necessarily the same bytes — an oversized
    // string arrives pre-truncated, and re-encoding normalises it.)
    std::vector<std::uint8_t> frame;
    swh::net::wire::encode(*msg, frame);
    SWH_CHECK(frame.size() >= 4, "encoded frame lost its prefix");
    auto again = decode(frame.data() + 4, frame.size() - 4, &why);
    SWH_CHECK(again.has_value(), "re-encoded frame must decode");
    SWH_CHECK(*again == *msg, "decode(encode(m)) != m");
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
    namespace wire = swh::net::wire;
    if (size > wire::kMaxFrameBytes) return 0;  // transport rejects these
    probe(data, size,
          [](const std::uint8_t* p, std::size_t n, std::string* e) {
              return wire::decode_master(p, n, e);
          });
    probe(data, size,
          [](const std::uint8_t* p, std::size_t n, std::string* e) {
              return wire::decode_slave(p, n, e);
          });
    probe(data, size,
          [](const std::uint8_t* p, std::size_t n, std::string* e) {
              return wire::decode_hello(p, n, e);
          });
    probe(data, size,
          [](const std::uint8_t* p, std::size_t n, std::string* e) {
              return wire::decode_welcome(p, n, e);
          });
    return 0;
}

// Writes the seed corpus for fuzz_wire: one file per encoded frame
// BODY (the decoders' input — the u32 length prefix is the transport's
// business) covering every Msg* alternative plus both handshake
// payloads and a few hand-broken variants that exercise rejection
// paths. Regenerate with:
//
//   ./make_wire_corpus fuzz/corpus/wire
//
// The corpus is checked in; this tool only needs rerunning when the
// wire format (and so kWireVersion) changes.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "net/wire.hpp"

using namespace swh;

namespace {

int files_written = 0;

void write_body(const std::string& dir, const std::string& name,
                const std::vector<std::uint8_t>& frame) {
    std::ofstream out(dir + "/" + name, std::ios::binary);
    if (!out) {
        std::perror(("open " + dir + "/" + name).c_str());
        std::exit(1);
    }
    out.write(reinterpret_cast<const char*>(frame.data()) + 4,
              static_cast<std::streamsize>(frame.size() - 4));
    ++files_written;
}

template <typename Msg>
void seed(const std::string& dir, const std::string& name, const Msg& msg) {
    std::vector<std::uint8_t> frame;
    net::wire::encode(msg, frame);
    write_body(dir, name, frame);
}

}  // namespace

int main(int argc, char** argv) {
    if (argc != 2) {
        std::fprintf(stderr, "usage: %s <corpus-dir>\n", argv[0]);
        return 2;
    }
    const std::string dir = argv[1];

    seed(dir, "register", net::MasterMsg{net::MsgRegister{
                              1, core::PeKind::Gpu}});
    seed(dir, "work_request", net::MasterMsg{net::MsgWorkRequest{2}});
    seed(dir, "progress", net::MasterMsg{net::MsgProgress{0, 3.2e9}});
    seed(dir, "task_done",
         net::MasterMsg{net::MsgTaskDone{
             1, 7, core::TaskResult{7, 3, 123456, {{5, 250}, {9, -4}}}}});
    seed(dir, "deregister", net::MasterMsg{net::MsgDeregister{3}});
    seed(dir, "heartbeat", net::MasterMsg{net::MsgHeartbeat{0}});
    seed(dir, "task_failed",
         net::MasterMsg{net::MsgTaskFailed{2, 9, "engine raised"}});
    seed(dir, "assign",
         net::SlaveMsg{net::MsgAssign{{{1, 0, 9000}, {2, 1, 8100}}}});
    seed(dir, "assign_empty", net::SlaveMsg{net::MsgAssign{{}}});
    seed(dir, "no_work_yet", net::SlaveMsg{net::MsgNoWorkYet{}});
    seed(dir, "cancel", net::SlaveMsg{net::MsgCancel{4}});
    seed(dir, "shutdown", net::SlaveMsg{net::MsgShutdown{}});
    seed(dir, "hello",
         net::wire::Hello{core::PeKind::SseCore, "seed-slave"});
    net::wire::Welcome welcome;
    welcome.pe = 1;
    welcome.top_k = 10;
    welcome.liveness = true;
    seed(dir, "welcome", welcome);

    // Rejection seeds: truncated, trailing byte, wrong version, bogus
    // tag — so the fuzzer starts with the error paths in its map.
    {
        std::vector<std::uint8_t> frame;
        net::wire::encode(net::MasterMsg{net::MsgHeartbeat{1}}, frame);
        std::vector<std::uint8_t> trunc(frame.begin(),
                                        frame.end() - 2);
        write_body(dir, "truncated", trunc);
        std::vector<std::uint8_t> padded = frame;
        padded.push_back(0);
        write_body(dir, "trailing_byte", padded);
        std::vector<std::uint8_t> badver = frame;
        badver[4] = 0x7F;
        write_body(dir, "bad_version", badver);
        std::vector<std::uint8_t> badtag = frame;
        badtag[5] = 0xEE;
        write_body(dir, "bad_tag", badtag);
    }

    std::printf("wrote %d seeds to %s\n", files_written, dir.c_str());
    return 0;
}

// Reproduces Table IV: 1/2/4 GPUs against the five databases.
// Paper shape: near-linear GPU scaling, and roughly double the GCUPS on
// UniProtKB/SwissProt compared to the four small databases (device
// occupancy saturates only on the big database).

#include <iostream>

#include "bench_common.hpp"

using namespace swh;

int main() {
    std::cout << "Table IV — results for the GPUs (time(s) / GCUPS)\n"
              << "paper anchors: ~2x GCUPS on SwissProt vs the small "
                 "databases; near-linear scaling\n\n";
    TextTable table({"Database", "1 GPU", "2 GPUs", "4 GPUs"});
    std::vector<double> gcups_4gpu;
    for (const db::DatabasePreset& preset : db::table2_presets()) {
        std::vector<std::string> row = {preset.name};
        for (const int gpus : {1, 2, 4}) {
            const sim::SimReport r =
                sim::simulate(bench::paper_config(preset, gpus, 0));
            row.push_back(bench::time_gcups_cell(r));
            if (gpus == 4) gcups_4gpu.push_back(r.gcups);
        }
        table.add_row(std::move(row));
    }
    table.print(std::cout);

    const double small_mean =
        (gcups_4gpu[0] + gcups_4gpu[1] + gcups_4gpu[2] + gcups_4gpu[3]) / 4;
    std::cout << "\n4-GPU GCUPS, SwissProt vs small-database mean: "
              << format_double(gcups_4gpu[4], 1) << " vs "
              << format_double(small_mean, 1) << "  (ratio "
              << format_double(gcups_4gpu[4] / small_mean, 2)
              << ", paper: ~2)\n";
    return 0;
}

// Reproduces Table III: wallclock time and GCUPS for the 40-query
// workload against the five Table II databases on 1/2/4/8 SSE cores.
// Paper shape: near-linear speedup on every database; the single-core
// SwissProt run takes ~7190 s.

#include <iostream>

#include "bench_common.hpp"

using namespace swh;

int main() {
    std::cout << "Table III — results for the SSE cores (time(s) / GCUPS)\n"
              << "paper anchors: 1 SSE x SwissProt = 7190 s; near-linear "
                 "speedups\n\n";
    TextTable table({"Database", "1 SSE", "2 SSEs", "4 SSEs", "8 SSEs"});
    for (const db::DatabasePreset& preset : db::table2_presets()) {
        std::vector<std::string> row = {preset.name};
        double t1 = 0.0;
        for (const int cores : {1, 2, 4, 8}) {
            const sim::SimConfig cfg = bench::paper_config(preset, 0, cores);
            const sim::SimReport r = sim::simulate(cfg);
            if (cores == 1) t1 = r.makespan;
            row.push_back(bench::time_gcups_cell(r));
            if (cores > 1) {
                const double speedup = t1 / r.makespan;
                row.back() += " (x" + format_double(speedup, 2) + ")";
            }
        }
        table.add_row(std::move(row));
    }
    table.print(std::cout);
    return 0;
}

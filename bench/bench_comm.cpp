// Ablation: per-interaction communication cost vs. allocation policy.
// The paper (SS IV-A.1) notes that SS "incurs in considerable
// communication, since each task retrieved by a slave node requires at
// least one interaction with the master node"; PSS amortises that by
// sizing packages. This bench sweeps the simulated master round-trip
// latency and shows the SS/PSS gap opening.

#include <iostream>

#include "bench_common.hpp"

using namespace swh;

int main() {
    const db::DatabasePreset& swiss = db::preset_by_name("swissprot");
    struct Policy {
        const char* label;
        std::function<std::unique_ptr<core::AllocationPolicy>()> make;
    };
    const std::vector<Policy> policies = {
        {"SS", core::make_self_scheduling},
        {"PSS", core::make_pss},
    };

    std::cout << "Communication ablation — SwissProt on 4 GPUs + 4 SSEs, "
                 "wallclock (s) vs assignment round-trip latency\n\n";
    TextTable table({"latency", "SS", "PSS", "SS penalty"});
    for (const double latency : {0.0, 0.1, 0.5, 2.0}) {
        std::vector<double> times;
        for (const Policy& p : policies) {
            sim::SimConfig cfg = bench::paper_config(swiss, 4, 4);
            cfg.policy = p.make;
            cfg.assign_latency_s = latency;
            times.push_back(sim::simulate(cfg).makespan);
        }
        table.add_row({format_double(latency, 1) + "s",
                       format_double(times[0], 1),
                       format_double(times[1], 1),
                       format_double((times[0] / times[1] - 1.0) * 100.0,
                                     1) +
                           "%"});
    }
    table.print(std::cout);
    std::cout << "\nReading: with free communication SS and PSS tie; as "
                 "the per-request cost grows, SS pays it ~40x per GPU "
                 "while PSS pays it per package.\n";
    return 0;
}

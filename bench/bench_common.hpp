#pragma once

// Shared setup for the reproduction benches: the paper's workload (40
// queries, 100..5000 aa), its five Table II databases, and the
// calibrated platform models (see DESIGN.md for the calibration).

#include <algorithm>
#include <cstddef>
#include <fstream>
#include <string>
#include <vector>

#include "db/presets.hpp"
#include "engines/device_model.hpp"
#include "obs/trace.hpp"
#include "sim/platform.hpp"
#include "sim/simulator.hpp"
#include "util/error.hpp"
#include "util/str.hpp"
#include "util/table.hpp"

namespace swh::bench {

/// The paper's query workload as lengths only (the DES never touches
/// residues): 40 queries, 100..5000 aa, linearly spaced.
inline std::vector<std::size_t> paper_query_lengths() {
    std::vector<std::size_t> lengths;
    const auto queries = db::make_query_set();
    lengths.reserve(queries.size());
    for (const auto& q : queries) lengths.push_back(q.size());
    return lengths;
}

/// Platform of `gpus` GPUs + `sses` SSE cores, using the calibrated
/// device models. GPUs are listed first, matching the paper's setup
/// where CUDASW++ slaves registered before the Farrar ones.
inline std::vector<sim::PeModelSpec> hybrid_platform(int gpus, int sses) {
    std::vector<sim::PeModelSpec> pes;
    for (int g = 0; g < gpus; ++g) {
        pes.push_back(sim::gpu_pe("GPU" + std::to_string(g + 1)));
    }
    for (int s = 0; s < sses; ++s) {
        pes.push_back(sim::sse_core_pe("SSE" + std::to_string(s + 1)));
    }
    return pes;
}

/// A paper experiment: the 40-query workload against one Table II
/// database on a hybrid platform, PSS + workload adjustment (the paper's
/// default configuration, SS V).
inline sim::SimConfig paper_config(const db::DatabasePreset& preset,
                                   int gpus, int sses,
                                   bool workload_adjust = true) {
    sim::SimConfig cfg;
    cfg.sched.workload_adjust = workload_adjust;
    cfg.policy = core::make_pss;
    cfg.notify_period_s = 0.5;
    cfg.db_residues = preset.total_residues();
    cfg.query_lengths = paper_query_lengths();
    cfg.pes = hybrid_platform(gpus, sses);
    return cfg;
}

/// "123.4 / 5.67" cell style the paper's tables use (time / GCUPS).
inline std::string time_gcups_cell(const sim::SimReport& r) {
    return format_double(r.makespan, 1) + " / " + format_double(r.gcups, 2);
}

/// Converts a simulator report into an obs::Trace on virtual timestamps
/// (now a thin alias for sim::to_trace, which also accepts a master
/// lane for balance auditing) — so a simulated run exports through the
/// exact same Chrome-JSON/CSV/Gantt pipeline as a traced real run.
inline obs::Trace sim_trace(const sim::SimReport& report,
                            const std::vector<sim::PeModelSpec>& pes) {
    return sim::to_trace(report, pes);
}

/// Writes a trace as Chrome trace-event JSON (ui.perfetto.dev).
inline void write_chrome_trace(const obs::Trace& trace,
                               const std::string& path) {
    std::ofstream os(path);
    SWH_REQUIRE(static_cast<bool>(os), "cannot open trace output file");
    obs::export_chrome_json(trace, os);
}

}  // namespace swh::bench

// Reproduces Fig. 6: GCUPS on UniProtKB/SwissProt with and without the
// workload-adjustment mechanism, across six platform configurations.
// Paper shape:
//   * homogeneous configs (1/2/4 GPUs): negligible difference;
//   * hybrid configs without the mechanism: GCUPS collapse (a slow SSE
//     holds one of the last big tasks);
//   * with the mechanism: +85.9% (2G+4S) and +207.2% (4G+4S) gains, and
//     hybrid beats GPU-only.

#include <algorithm>
#include <iostream>

#include "bench_common.hpp"
#include "util/rng.hpp"

using namespace swh;

namespace {

// Fisher-Yates with our deterministic RNG (std::shuffle's result is
// implementation-defined).
std::vector<std::size_t> shuffled_lengths(std::uint64_t seed) {
    std::vector<std::size_t> lengths = bench::paper_query_lengths();
    Rng rng(seed);
    for (std::size_t i = lengths.size(); i > 1; --i) {
        std::swap(lengths[i - 1], lengths[rng.below(i)]);
    }
    return lengths;
}

}  // namespace

int main() {
    const db::DatabasePreset& swiss = db::preset_by_name("swissprot");
    struct Config {
        const char* label;
        int gpus;
        int sses;
    };
    const Config configs[] = {{"1GPU", 1, 0},  {"1GPU+4SSEs", 1, 4},
                              {"2GPUs", 2, 0}, {"2GPUs+4SSEs", 2, 4},
                              {"4GPUs", 4, 0}, {"4GPUs+4SSEs", 4, 4}};

    std::cout << "Fig. 6 — GCUPS for SwissProt with/without the workload "
                 "adjustment mechanism\n"
              << "paper anchors: +85.9% at 2G+4S, +207.2% at 4G+4S, "
                 "~0% on homogeneous configs\n\n";
    TextTable table({"Configuration", "GCUPS w/o adjust", "GCUPS w/ adjust",
                     "gain", "replicas"});
    for (const Config& c : configs) {
        const sim::SimReport without = sim::simulate(
            bench::paper_config(swiss, c.gpus, c.sses, false));
        const sim::SimReport with =
            sim::simulate(bench::paper_config(swiss, c.gpus, c.sses, true));
        const double gain =
            (with.gcups - without.gcups) / without.gcups * 100.0;
        table.add_row({c.label, format_double(without.gcups, 2),
                       format_double(with.gcups, 2),
                       format_double(gain, 1) + "%",
                       std::to_string(with.replicas_issued)});
    }
    table.print(std::cout);

    // The gain depends on WHICH task a slow PE happens to hold when the
    // pool drains (the paper observed +207.2% on its testbed). Sweep
    // query-file orders to show the spread.
    std::cout << "\ngain spread over 8 query-file orders (4GPUs+4SSEs):\n";
    double min_gain = 1e9, max_gain = -1e9;
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
        sim::SimConfig off = bench::paper_config(swiss, 4, 4, false);
        sim::SimConfig on = bench::paper_config(swiss, 4, 4, true);
        if (seed > 0) {  // seed 0 = the paper's ascending order
            off.query_lengths = shuffled_lengths(seed);
            on.query_lengths = off.query_lengths;
        }
        const double g_off = sim::simulate(off).gcups;
        const double g_on = sim::simulate(on).gcups;
        const double gain = (g_on - g_off) / g_off * 100.0;
        min_gain = std::min(min_gain, gain);
        max_gain = std::max(max_gain, gain);
        std::cout << "  order " << seed << ": +" << format_double(gain, 1)
                  << "%\n";
    }
    std::cout << "range: +" << format_double(min_gain, 1) << "% .. +"
              << format_double(max_gain, 1)
              << "%  (paper's testbed instance: +207.2%)\n";
    return 0;
}

// Reproduces Fig. 7: dedicated execution of the 40-query workload
// against Ensembl Dog on 4 SSE cores; per-core delivered GCUPS at each
// allocation/notification interaction. Paper shape: all four traces are
// flat at the core's nominal rate for the whole run.

#include <iostream>

#include "bench_common.hpp"

using namespace swh;

int main() {
    sim::SimConfig cfg =
        bench::paper_config(db::preset_by_name("dog"), 0, 4);
    cfg.notify_period_s = 2.0;
    const sim::SimReport r = sim::simulate(cfg);

    std::cout << "Fig. 7 — dedicated execution with 4 cores (Ensembl Dog)\n"
              << "wallclock: " << format_double(r.makespan, 1)
              << " s\n\nper-core GCUPS samples (time,core0,core1,core2,"
                 "core3):\n";
    // Bucket samples on a common 10 s grid for a compact CSV.
    const double step = 10.0;
    for (double t = step; t <= r.makespan + step; t += step) {
        double sum[4] = {0, 0, 0, 0};
        int n[4] = {0, 0, 0, 0};
        for (const sim::RateSample& s : r.rates) {
            if (s.time > t - step && s.time <= t && s.pe < 4) {
                sum[s.pe] += s.gcups;
                ++n[s.pe];
            }
        }
        std::cout << format_double(t, 0);
        for (int c = 0; c < 4; ++c) {
            std::cout << ','
                      << (n[c] ? format_double(sum[c] / n[c], 3) : "");
        }
        std::cout << '\n';
    }
    return 0;
}

// Reproduces Table V: hybrid GPU + SSE configurations against the five
// databases, with the paper's crossover analysis:
//   * adding SSE cores to 1-2 GPUs always helps;
//   * at 4 GPUs the hybrid only wins on the big database (SwissProt);
//     on the small ones the GPUs redo most SSE work via the adjustment
//     mechanism, so 4 GPUs alone are as good or slightly better;
//   * headline: SwissProt drops from 7190 s (1 SSE, Table III) to
//     ~112 s (4 GPUs + 4 SSEs).

#include <iostream>

#include "bench_common.hpp"

using namespace swh;

int main() {
    std::cout << "Table V — results for the GPUs and SSEs "
                 "(time(s) / GCUPS)\n\n";
    const std::vector<std::pair<int, int>> configs = {
        {1, 1}, {1, 2}, {1, 4}, {2, 4}, {4, 4}};
    TextTable table({"Database", "1G+1S", "1G+2S", "1G+4S", "2G+4S",
                     "4G+4S", "4G+0S (IV)"});
    double swissprot_hybrid = 0.0;
    for (const db::DatabasePreset& preset : db::table2_presets()) {
        std::vector<std::string> row = {preset.name};
        for (const auto& [gpus, sses] : configs) {
            const sim::SimReport r =
                sim::simulate(bench::paper_config(preset, gpus, sses));
            row.push_back(bench::time_gcups_cell(r));
            if (gpus == 4 && preset.name == "UniProtKB/SwissProt") {
                swissprot_hybrid = r.makespan;
            }
        }
        // Reference column: the 4-GPU-only Table IV figure, to expose
        // the crossover.
        const sim::SimReport gpu_only =
            sim::simulate(bench::paper_config(preset, 4, 0));
        row.push_back(bench::time_gcups_cell(gpu_only));
        table.add_row(std::move(row));
    }
    table.print(std::cout);

    const double sse1 = sim::simulate(bench::paper_config(
                                          db::preset_by_name("swissprot"),
                                          0, 1))
                            .makespan;
    std::cout << "\nheadline: SwissProt " << format_double(sse1, 0)
              << " s (1 SSE) -> " << format_double(swissprot_hybrid, 0)
              << " s (4 GPUs + 4 SSEs); paper: 7190 s -> ~112 s\n";
    return 0;
}

// Ablation: ready-queue ordering vs the workload-adjustment mechanism.
// The straggler tail the mechanism absorbs is largely *created* by
// handing the biggest tasks out last (the query file is sorted by
// length). Largest-first (LPT) dispatch attacks the same problem from
// the other side — this bench quantifies how the two interact on the
// SwissProt 4 GPU + 4 SSE platform.

#include <iostream>

#include "bench_common.hpp"

using namespace swh;

int main() {
    const db::DatabasePreset& swiss = db::preset_by_name("swissprot");
    std::cout << "Ordering ablation — SwissProt on 4 GPUs + 4 SSEs, "
                 "wallclock (s)\n\n";
    TextTable table({"ready order", "w/o adjustment", "w/ adjustment",
                     "adjust gain"});
    for (const core::ReadyOrder order :
         {core::ReadyOrder::FifoById, core::ReadyOrder::LargestFirst}) {
        double t_off = 0.0, t_on = 0.0;
        for (const bool adjust : {false, true}) {
            sim::SimConfig cfg = bench::paper_config(swiss, 4, 4, adjust);
            cfg.sched.ready_order = order;
            const double t = sim::simulate(cfg).makespan;
            (adjust ? t_on : t_off) = t;
        }
        table.add_row(
            {order == core::ReadyOrder::FifoById ? "file order (paper)"
                                                 : "largest-first (LPT)",
             format_double(t_off, 1), format_double(t_on, 1),
             format_double((t_off / t_on - 1.0) * 100.0, 1) + "%"});
    }
    table.print(std::cout);
    std::cout << "\nReading: on a *heterogeneous* platform LPT backfires "
                 "without the mechanism — the blind first-allocation "
                 "round hands the biggest task to a slow SSE core, which "
                 "then anchors the tail. With the mechanism on, both "
                 "orderings converge: replication, not dispatch order, is "
                 "what tames stragglers when PE speeds are unknown.\n";
    return 0;
}

// Ablation: the PSS history window Omega (paper SS IV-A.2). A small
// window adapts quickly when a PE's delivered rate changes; a large one
// smooths noise but keeps allocating big packages to a PE that just
// slowed down. Scenario: the Fig. 8 non-dedicated run with a heavier
// (75%) load hit.

#include <iostream>

#include "bench_common.hpp"

using namespace swh;

int main() {
    const db::DatabasePreset& dog = db::preset_by_name("dog");
    std::cout << "Omega ablation — Ensembl Dog on 4 SSE cores, core 0 "
                 "loses 75% of its speed at t=60 s\n\n";
    TextTable table({"Omega", "wallclock (s)", "GCUPS", "replicas"});
    for (const std::size_t omega : {1u, 2u, 4u, 8u, 16u, 64u}) {
        sim::SimConfig cfg = bench::paper_config(dog, 0, 4);
        cfg.sched.omega = omega;
        cfg.notify_period_s = 2.0;
        cfg.load_events = {sim::LoadEvent{60.0, 0, 0.25}};
        const sim::SimReport r = sim::simulate(cfg);
        table.add_row({std::to_string(omega), format_double(r.makespan, 1),
                       format_double(r.gcups, 2),
                       std::to_string(r.replicas_issued)});
    }
    table.print(std::cout);
    return 0;
}

// Ablation: allocation-policy comparison (Table I's design space). Runs
// the SwissProt workload on the 4 GPU + 4 SSE hybrid under every policy,
// with and without the workload-adjustment mechanism, and reports the
// master interaction count (the communication cost SS pays for its
// balance).

#include <iostream>

#include "bench_common.hpp"

using namespace swh;

namespace {

std::size_t total_requests(const sim::SimReport& r) {
    // Each accepted/discarded result implies one assignment; add one
    // request per PE for the final empty poll. Spans count executions.
    return r.spans.size();
}

}  // namespace

int main() {
    const db::DatabasePreset& swiss = db::preset_by_name("swissprot");
    struct Policy {
        const char* label;
        std::function<std::unique_ptr<core::AllocationPolicy>()> make;
    };
    const std::vector<Policy> policies = {
        {"SS", core::make_self_scheduling},
        {"ChunkedSS(4)", [] { return core::make_chunked_self_scheduling(4); }},
        {"PSS", core::make_pss},
        {"Fixed", core::make_fixed},
        {"WFixed(gpu=16)",
         [] {
             return core::make_wfixed({{core::PeKind::Gpu, 16.0},
                                       {core::PeKind::SseCore, 1.0}});
         }},
    };

    std::cout << "Policy ablation — SwissProt on 4 GPUs + 4 SSEs "
                 "(time(s) / GCUPS, task executions)\n\n";
    TextTable table({"Policy", "w/o adjustment", "w/ adjustment",
                     "executions w/ adj", "replicas"});
    for (const Policy& p : policies) {
        sim::SimConfig off = bench::paper_config(swiss, 4, 4, false);
        off.policy = p.make;
        const sim::SimReport r_off = sim::simulate(off);

        sim::SimConfig on = bench::paper_config(swiss, 4, 4, true);
        on.policy = p.make;
        const sim::SimReport r_on = sim::simulate(on);

        table.add_row({p.label, bench::time_gcups_cell(r_off),
                       bench::time_gcups_cell(r_on),
                       std::to_string(total_requests(r_on)),
                       std::to_string(r_on.replicas_issued)});
    }
    table.print(std::cout);
    std::cout << "\nReading: SS balances well but costs one master "
                 "round-trip per task; Fixed/WFixed suffer without "
                 "replication when the static estimate is off; PSS + "
                 "adjustment is the paper's configuration.\n";
    return 0;
}

// Reproduces Fig. 5: the worked 20-task example on 1 GPU (6x) + 3 SSE
// cores, with and without the workload-adjustment mechanism. Expected:
// 14 s with the mechanism (the GPU re-runs straggler t20), 18 s without.

#include <iostream>

#include "bench_common.hpp"
#include "obs/balance.hpp"
#include "obs/sched_log.hpp"
#include "util/args.hpp"

using namespace swh;

namespace {

sim::SimConfig figure5(bool adjust) {
    sim::SimConfig cfg;
    cfg.sched.workload_adjust = adjust;
    // Fig. 5 shows the idle (equally slow) SSEs NOT re-running t20; only
    // the faster GPU does, so gate replication on expected speedup.
    cfg.sched.replicate_only_if_faster = true;
    cfg.policy = core::make_pss;
    cfg.notify_period_s = 0.25;
    cfg.db_residues = 1'000'000;
    cfg.query_lengths.assign(20, 6'000);  // 1 s per task on the GPU
    sim::PeModelSpec gpu;
    gpu.label = "GPU1";
    gpu.kind = core::PeKind::Gpu;
    gpu.peak_gcups = 6.0;
    cfg.pes.push_back(gpu);
    for (int i = 1; i <= 3; ++i) {
        sim::PeModelSpec sse;
        sse.label = "SSE" + std::to_string(i);
        sse.kind = core::PeKind::SseCore;
        sse.peak_gcups = 1.0;
        cfg.pes.push_back(sse);
    }
    return cfg;
}

}  // namespace

int main(int argc, char** argv) {
    ArgParser args("bench_fig5_gantt",
                   "Reproduces the paper's Fig. 5 worked example");
    args.add_option("trace",
                    "also write the WITH-adjustment run as Chrome "
                    "trace-event JSON (open at ui.perfetto.dev)",
                    "");
    args.add_flag("balance",
                  "print the workload-balance audit for both runs "
                  "(per-PE busy/idle/comm, imbalance, critical path)");
    if (!args.parse(argc, argv)) return 0;

    for (const bool adjust : {true, false}) {
        sim::SimConfig cfg = figure5(adjust);
        obs::SchedEventLog event_log;
        if (args.get_flag("balance")) cfg.observer = &event_log;
        const sim::SimReport r = sim::simulate(cfg);
        std::cout << "Fig. 5" << (adjust ? "(a) WITH" : "(b) WITHOUT")
                  << " the load adjustment mechanism — total "
                  << format_double(r.makespan, 0) << " s (paper: "
                  << (adjust ? 14 : 18) << " s)\n"
                  << sim::render_gantt(r, cfg.pes, 0.5) << '\n';
        if (args.get_flag("balance")) {
            obs::BalanceOptions bopts;
            bopts.horizon_s = r.all_idle_time;
            for (const sim::PeReport& pe : r.pes) {
                bopts.cells_by_label.emplace_back(
                    pe.label, static_cast<double>(pe.cells));
            }
            std::cout << obs::analyze_balance(
                             sim::to_trace(r, cfg.pes, event_log.take()),
                             bopts)
                             .to_text()
                      << '\n';
        }
        if (adjust && !args.get("trace").empty()) {
            bench::write_chrome_trace(bench::sim_trace(r, cfg.pes),
                                      args.get("trace"));
            std::cout << "trace written to " << args.get("trace") << '\n';
        }
    }
    return 0;
}

// Whole-database scan throughput across the three-stage funnel: the
// packed two-pass striped pipeline (the PR 1 baseline), the adaptive
// inter-sequence exhaustive scan (the previous hot path, now the
// funnel's exact stage), and the full funnel with the ungapped
// gap-slack prefilter armed. All run through db::PackedDatabase +
// align::DatabaseScanner on the deterministic sample workload
// (db::make_scan_sample): a random background plus one planted homolog
// family per query length, with each query a light mutant of its
// family's anchor — the realistic shape of a top-k homology search,
// where the k-th best score sits far above the random background and
// the funnel's dynamic threshold has something to feed on. The
// exhaustive baselines are timed on the same database in the same run,
// so the comparison stays honest. The funnel's top-k is verified
// bit-identical
// to the exhaustive scan's before anything is timed — a mismatch is a
// fatal error. Emits machine-readable BENCH_scan.json for the perf
// trajectory alongside a human table; kernel dispatch and filter
// counts are routed through obs::MetricsRegistry and included in the
// JSON.
//
// Usage: bench_scan [--reps N] [--db-seqs N] [--qlens L,L,...]
//                   [--topk K] [--json PATH | --out PATH]

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "align/db_scan.hpp"
#include "align/striped.hpp"
#include "align/ungapped.hpp"
#include "db/database.hpp"
#include "db/packed.hpp"
#include "db/presets.hpp"
#include "engines/topk.hpp"
#include "obs/metrics.hpp"
#include "simd/simd.hpp"
#include "util/args.hpp"
#include "util/hostinfo.hpp"
#include "util/rng.hpp"
#include "util/str.hpp"
#include "util/timer.hpp"

using namespace swh;

namespace {

constexpr align::GapPenalty kGap{10, 2};

/// Single-worker exhaustive scan through the two-pass pipeline. With
/// `cohorts` empty this is exactly the PR 1 packed baseline; with the
/// lane-interleaved view attached, the exact stage dispatches per
/// cohort between the inter-sequence and striped kernels.
align::Score run_scan(const align::StripedAligner& aligner,
                      const db::PackedDatabase& packed,
                      align::ScanScratch& scratch,
                      align::InterleavedCohorts cohorts,
                      align::DatabaseScanner::DispatchStats* stats = nullptr) {
    align::DatabaseScanner scanner(aligner, packed.view(),
                                   align::DatabaseScanner::kDefaultChunk,
                                   cohorts);
    align::Score best = 0;
    scanner.run_worker(scratch,
                       [&](std::uint32_t, std::uint32_t, align::Score s) {
                           best = std::max(best, s);
                           return true;
                       });
    if (stats != nullptr) *stats = scanner.dispatch_stats();
    return best;
}

/// Single-worker top-k scan; with `prefilter` the threshold feed is
/// wired to the collector's running k-th best, i.e. the full funnel.
struct TopKOutcome {
    std::vector<core::Hit> hits;
    align::DatabaseScanner::DispatchStats dispatch;
    align::DatabaseScanner::FilterStats filter;
};

TopKOutcome run_topk(const align::StripedAligner& aligner,
                     const db::PackedDatabase& packed,
                     align::ScanScratch& scratch,
                     align::InterleavedCohorts cohorts, std::size_t k,
                     bool prefilter) {
    std::atomic<align::Score> tau{engines::TopK::kNoThreshold};
    align::DatabaseScanner scanner(aligner, packed.view(),
                                   align::DatabaseScanner::kDefaultChunk,
                                   cohorts, prefilter ? &tau : nullptr);
    engines::TopK collector(k);
    scanner.run_worker(
        scratch,
        [&](std::uint32_t idx, std::uint32_t, align::Score s) {
            collector.add(idx, s);
            tau.store(collector.kth_score(), std::memory_order_relaxed);
            return true;
        },
        [](std::uint32_t, std::uint32_t) { return true; });
    TopKOutcome out;
    out.hits = collector.take();
    out.dispatch = scanner.dispatch_stats();
    out.filter = scanner.filter_stats();
    return out;
}

/// Stage-1 alone: the ungapped gap-slack sweep over every cohort, for
/// the prefilter's standalone GCUPS.
align::Score run_filter_only(const align::StripedAligner& aligner,
                             align::ScanScratch& scratch,
                             align::InterleavedCohorts cohorts) {
    std::uint8_t lane_best[64];
    align::Score acc = 0;
    const std::size_t qlen = aligner.interseq()->query_len;
    const std::size_t tiles =
        (qlen + align::DatabaseScanner::kFilterChunkRows - 1) /
        align::DatabaseScanner::kFilterChunkRows;
    const std::size_t rows = tiles == 0 ? 1 : (qlen + tiles - 1) / tiles;
    for (std::size_t c = 0; c < cohorts.count; ++c) {
        const align::CohortDesc& d = cohorts.cohorts[c];
        // Same row tiling as DatabaseScanner::filter_cohort, so this
        // measures the funnel's actual stage-1 cost.
        for (std::size_t r0 = 0; r0 < qlen; r0 += rows) {
            sw_ungapped_interseq_u8(*aligner.interseq(),
                                    cohorts.arena + d.offset, d.columns,
                                    aligner.gap(), aligner.isa(), scratch,
                                    lane_best, r0, r0 + rows);
            for (std::uint32_t l = 0; l < d.lanes_used; ++l) {
                acc = std::max<align::Score>(acc, lane_best[l]);
            }
        }
    }
    return acc;
}

struct Row {
    std::size_t qlen = 0;
    std::size_t tile_count = 1;  ///< query tiles of the interseq kernels
    double packed_gcups = 0.0;
    double interseq_gcups = 0.0;
    double speedup = 0.0;
    double filter_gcups = 0.0;
    double filter_selectivity = 1.0;
    double exact_gcups = 0.0;
    double funnel_gcups = 0.0;
    double funnel_speedup = 0.0;
    align::DatabaseScanner::DispatchStats dispatch;
    /// Dispatch of the armed (funnel) pass — the one that exercises
    /// the survivor re-pack; `dispatch` above is the unarmed scan.
    align::DatabaseScanner::DispatchStats funnel_dispatch;
    align::DatabaseScanner::FilterStats filter;
};

}  // namespace

int main(int argc, char** argv) {
    ArgParser args("bench_scan",
                   "three-stage funnel scan vs exhaustive scan GCUPS");
    args.add_option("reps", "timing repetitions (best-of)", "5");
    args.add_option("db-seqs", "synthetic database sequence count", "1500");
    // The sweep covers the paper's Table-II query range (100..5000 aa)
    // plus the 1024/1025 pair straddling the untiled/tiled kernel
    // boundary (2 * align::kInterseqTileRows).
    args.add_option("qlens", "comma-separated query lengths",
                    "50,100,150,200,500,1024,1025,2000,3000,5000");
    args.add_option("topk", "hits kept per query (funnel threshold k)", "10");
    args.add_option("json", "output JSON path", "");
    args.add_option("out", "output JSON path (alias of --json)",
                    "BENCH_scan.json");
    if (!args.parse(argc, argv)) return 0;
    const int reps = static_cast<int>(args.get_int("reps"));
    const std::size_t db_seqs =
        static_cast<std::size_t>(args.get_int("db-seqs"));
    const std::size_t top_k = static_cast<std::size_t>(args.get_int("topk"));
    std::vector<std::size_t> qlens;
    for (const std::string& tok : split(args.get("qlens"), ',')) {
        if (tok.empty() ||
            tok.find_first_not_of("0123456789") != std::string::npos) {
            std::cerr << "error: --qlens expects comma-separated positive "
                         "integers, got '"
                      << tok << "'\n";
            return 1;
        }
        const std::size_t v = static_cast<std::size_t>(std::stoul(tok));
        if (v == 0) {
            std::cerr << "error: --qlens lengths must be positive\n";
            return 1;
        }
        qlens.push_back(v);
    }
    if (qlens.empty()) {
        std::cerr << "error: --qlens must name at least one length\n";
        return 1;
    }
    if (top_k == 0) {
        std::cerr << "error: --topk must be positive\n";
        return 1;
    }
    const std::string out_path =
        args.get("json").empty() ? args.get("out") : args.get("json");

    const align::ScoreMatrix matrix = align::ScoreMatrix::blosum62();
    const simd::IsaLevel isa = simd::best_supported();
    const int lanes = align::lanes_u8(isa);

    const db::ScanSample sample = db::make_scan_sample(db_seqs, qlens);
    const db::Database& database = sample.database;
    const db::PackedDatabase& packed = database.packed();
    const align::InterleavedCohorts cohorts =
        packed.interleaved(lanes).view();
    const std::uint64_t db_residues = database.residues();

    std::cout << "bench_scan: isa=" << simd::to_string(isa)
              << " lanes=" << lanes << " db_seqs=" << database.size()
              << " db_residues=" << db_residues << " reps=" << reps
              << " topk=" << top_k << "\n\n";
    std::cout << "qlen   packed   exact    funnel GCUPS   selectivity   "
                 "funnel speedup\n";

    obs::MetricsRegistry metrics;
    std::vector<Row> rows;
    for (std::size_t qi = 0; qi < qlens.size(); ++qi) {
        const std::size_t qlen = qlens[qi];
        // The sample's query for this config: a light mutant of the
        // planted family anchor of this length (its actual size can
        // differ from the nominal length by a few indels).
        const align::Sequence& q = sample.queries[qi];
        const align::StripedAligner aligner(q.residues, matrix, kGap, isa);
        const double cells = static_cast<double>(q.residues.size()) *
                             static_cast<double>(db_residues);

        align::ScanScratch scratch;
        // Warm-up all paths (page in the db, grow the scratch) and check
        // equivalence: the packed and interseq exhaustive pipelines must
        // settle identical best scores, and the funnel's top-k must be
        // bit-identical to the exhaustive scan's.
        const align::Score packed_best =
            run_scan(aligner, packed, scratch, {});
        Row row;
        row.qlen = qlen;
        row.tile_count = align::interseq_tile_count(q.residues.size());
        const align::Score interseq_best =
            run_scan(aligner, packed, scratch, cohorts, &row.dispatch);
        if (packed_best != interseq_best) {
            std::cerr << "FATAL: score mismatch (packed=" << packed_best
                      << " interseq=" << interseq_best << ")\n";
            return 1;
        }
        const TopKOutcome exhaustive = run_topk(aligner, packed, scratch,
                                                cohorts, top_k,
                                                /*prefilter=*/false);
        const TopKOutcome funnel = run_topk(aligner, packed, scratch, cohorts,
                                            top_k, /*prefilter=*/true);
        if (exhaustive.hits.size() != funnel.hits.size()) {
            std::cerr << "FATAL: funnel top-k size mismatch\n";
            return 1;
        }
        for (std::size_t i = 0; i < funnel.hits.size(); ++i) {
            if (funnel.hits[i].db_index != exhaustive.hits[i].db_index ||
                funnel.hits[i].score != exhaustive.hits[i].score) {
                std::cerr << "FATAL: funnel top-k diverges at rank " << i
                          << " (qlen=" << qlen << ")\n";
                return 1;
            }
        }
        row.filter = funnel.filter;
        row.funnel_dispatch = funnel.dispatch;
        row.filter_selectivity =
            database.size() == 0
                ? 1.0
                : static_cast<double>(database.size() -
                                      funnel.filter.subjects_pruned) /
                      static_cast<double>(database.size());

        double packed_best_s = 1e30;
        double interseq_best_s = 1e30;
        double funnel_best_s = 1e30;
        double filter_best_s = 1e30;
        for (int r = 0; r < reps; ++r) {
            Timer t;
            run_scan(aligner, packed, scratch, {});
            packed_best_s = std::min(packed_best_s, t.seconds());
            t.reset();
            run_scan(aligner, packed, scratch, cohorts);
            interseq_best_s = std::min(interseq_best_s, t.seconds());
            t.reset();
            run_topk(aligner, packed, scratch, cohorts, top_k,
                     /*prefilter=*/true);
            funnel_best_s = std::min(funnel_best_s, t.seconds());
            t.reset();
            run_filter_only(aligner, scratch, cohorts);
            filter_best_s = std::min(filter_best_s, t.seconds());
        }

        row.packed_gcups = cells / packed_best_s / 1e9;
        row.interseq_gcups = cells / interseq_best_s / 1e9;
        row.speedup = row.interseq_gcups / row.packed_gcups;
        // Per-stage throughput: the prefilter sweep alone, and the
        // exact stage alone (the exhaustive interseq scan — what the
        // funnel's survivors run through). The funnel numbers are
        // end-to-end: the same semantic work (all cells adjudicated)
        // over prefilter + surviving exact time.
        row.filter_gcups = cells / filter_best_s / 1e9;
        row.exact_gcups = row.interseq_gcups;
        row.funnel_gcups = cells / funnel_best_s / 1e9;
        row.funnel_speedup = row.funnel_gcups / row.exact_gcups;
        rows.push_back(row);
        // Route breakdown (scan.dispatch.*): why each cohort took its
        // path — tiled-interseq, compacted, or striped-head — so
        // coverage regressions show up without re-benchmarking.
        metrics.counter("scan.dispatch.cohorts_interseq")
            .add(row.dispatch.cohorts_interseq);
        metrics.counter("scan.dispatch.cohorts_tiled")
            .add(row.dispatch.cohorts_tiled);
        metrics.counter("scan.dispatch.cohorts_compacted")
            .add(row.dispatch.cohorts_compacted);
        metrics.counter("scan.dispatch.cohorts_striped_head")
            .add(row.dispatch.cohorts_striped);
        metrics.counter("scan.dispatch.repacks")
            .add(row.dispatch.repacks + row.funnel_dispatch.repacks);
        metrics.counter("scan.dispatch.escalations16")
            .add(row.dispatch.escalations16 +
                 row.funnel_dispatch.escalations16);
        metrics.counter("scan.dispatch.subjects_interseq")
            .add(row.dispatch.subjects_interseq);
        metrics.counter("scan.dispatch.subjects_compacted")
            .add(row.dispatch.subjects_compacted);
        metrics.counter("scan.dispatch.subjects_striped")
            .add(row.dispatch.subjects_striped);
        metrics.counter("scan.filter.cohorts")
            .add(row.filter.cohorts_filtered);
        metrics.counter("scan.filter.rebounds16").add(row.filter.rebounds16);
        metrics.counter("scan.filter.pruned")
            .add(row.filter.subjects_pruned);
        metrics.counter("scan.filter.offs").add(row.filter.filter_offs);
        std::cout << format_double(static_cast<double>(qlen), 0) << "    "
                  << format_double(row.packed_gcups, 3) << "    "
                  << format_double(row.exact_gcups, 3) << "    "
                  << format_double(row.funnel_gcups, 3) << "          "
                  << format_double(row.filter_selectivity, 3) << "         "
                  << format_double(row.funnel_speedup, 3) << "\n";
    }

    double best_speedup = 0.0;
    double geomean = 1.0;
    double geomean_short = 1.0;
    std::size_t n_short = 0;
    double geomean_long = 1.0;
    std::size_t n_long = 0;
    double funnel_geomean = 1.0;
    double funnel_geomean_short = 1.0;
    std::size_t n_funnel_short = 0;
    for (const Row& r : rows) {
        best_speedup = std::max(best_speedup, r.speedup);
        geomean *= r.speedup;
        funnel_geomean *= r.funnel_speedup;
        if (r.qlen <= 200) {
            geomean_short *= r.speedup;
            ++n_short;
        }
        // Long = the tiled-kernel range (the paper's Table-II upper
        // half), where the seed had no interseq coverage at all.
        if (r.qlen >= 1024) {
            geomean_long *= r.speedup;
            ++n_long;
        }
        if (r.qlen <= 500) {
            funnel_geomean_short *= r.funnel_speedup;
            ++n_funnel_short;
        }
    }
    geomean = rows.empty() ? 0.0
                           : std::pow(geomean, 1.0 / static_cast<double>(
                                                         rows.size()));
    geomean_short =
        n_short == 0
            ? 0.0
            : std::pow(geomean_short, 1.0 / static_cast<double>(n_short));
    geomean_long =
        n_long == 0
            ? 0.0
            : std::pow(geomean_long, 1.0 / static_cast<double>(n_long));
    funnel_geomean =
        rows.empty() ? 0.0
                     : std::pow(funnel_geomean,
                                1.0 / static_cast<double>(rows.size()));
    funnel_geomean_short =
        n_funnel_short == 0
            ? 0.0
            : std::pow(funnel_geomean_short,
                       1.0 / static_cast<double>(n_funnel_short));

    // Host provenance so archived BENCH_scan.json files are
    // self-describing: absolute GCUPS numbers are only comparable
    // within one (machine, compiler, flags) tuple; the perf gate
    // compares machine-independent speedup ratios instead.
    const HostInfo host = host_info();
    const auto jstr = [](const std::string& s) {
        std::string out;
        for (const char c : s) {
            if (c == '"' || c == '\\') out.push_back('\\');
            if (static_cast<unsigned char>(c) < 0x20) continue;
            out.push_back(c);
        }
        return out;
    };

    std::ofstream out(out_path);
    out << "{\n"
        << "  \"bench\": \"scan\",\n"
        << "  \"isa\": \"" << simd::to_string(isa) << "\",\n"
        << "  \"host\": {\n"
        << "    \"cpu_model\": \"" << jstr(host.cpu_model) << "\",\n"
        << "    \"hardware_threads\": " << host.hardware_threads << ",\n"
        << "    \"compiler\": \"" << jstr(host.compiler) << "\",\n"
        << "    \"git_sha\": \"" << jstr(host.git_sha) << "\",\n"
        << "    \"build_flags\": \"" << jstr(host.build_flags) << "\"\n"
        << "  },\n"
        << "  \"cohort_lanes\": " << lanes << ",\n"
        << "  \"db_sequences\": " << database.size() << ",\n"
        << "  \"db_residues\": " << db_residues << ",\n"
        << "  \"reps\": " << reps << ",\n"
        << "  \"top_k\": " << top_k << ",\n"
        << "  \"configs\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row& r = rows[i];
        out << "    {\"query_len\": " << r.qlen
            << ", \"packed_gcups\": " << format_double(r.packed_gcups, 4)
            << ", \"interseq_gcups\": " << format_double(r.interseq_gcups, 4)
            << ", \"speedup\": " << format_double(r.speedup, 4)
            << ", \"filter_gcups\": " << format_double(r.filter_gcups, 4)
            << ", \"filter_selectivity\": "
            << format_double(r.filter_selectivity, 4)
            << ", \"exact_gcups\": " << format_double(r.exact_gcups, 4)
            << ", \"funnel_gcups\": " << format_double(r.funnel_gcups, 4)
            << ", \"funnel_speedup\": " << format_double(r.funnel_speedup, 4)
            << ", \"subjects_pruned\": " << r.filter.subjects_pruned
            << ", \"filter_rebounds16\": " << r.filter.rebounds16
            << ", \"filter_offs\": " << r.filter.filter_offs
            << ", \"tile_count\": " << r.tile_count
            << ", \"cohorts_interseq\": " << r.dispatch.cohorts_interseq
            << ", \"cohorts_tiled\": " << r.dispatch.cohorts_tiled
            << ", \"cohorts_compacted\": " << r.dispatch.cohorts_compacted
            << ", \"cohorts_striped\": " << r.dispatch.cohorts_striped
            << ", \"repacks\": " << r.dispatch.repacks
            << ", \"escalations16\": "
            << r.dispatch.escalations16 + r.funnel_dispatch.escalations16
            << ", \"subjects_interseq\": " << r.dispatch.subjects_interseq
            << ", \"subjects_compacted\": " << r.dispatch.subjects_compacted
            << ", \"subjects_striped\": " << r.dispatch.subjects_striped
            << ", \"funnel_repacks\": " << r.funnel_dispatch.repacks
            << ", \"funnel_escalations16\": "
            << r.funnel_dispatch.escalations16
            << ", \"funnel_cohorts_interseq\": "
            << r.funnel_dispatch.cohorts_interseq
            << ", \"funnel_subjects_interseq\": "
            << r.funnel_dispatch.subjects_interseq
            << ", \"funnel_subjects_compacted\": "
            << r.funnel_dispatch.subjects_compacted
            << ", \"funnel_subjects_striped\": "
            << r.funnel_dispatch.subjects_striped
            << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ],\n"
        << "  \"speedup_geomean_short\": " << format_double(geomean_short, 4)
        << ",\n"
        << "  \"speedup_geomean_long\": " << format_double(geomean_long, 4)
        << ",\n"
        << "  \"speedup_geomean\": " << format_double(geomean, 4) << ",\n"
        << "  \"speedup_best\": " << format_double(best_speedup, 4) << ",\n"
        << "  \"funnel_speedup_geomean_short\": "
        << format_double(funnel_geomean_short, 4) << ",\n"
        << "  \"funnel_speedup_geomean\": "
        << format_double(funnel_geomean, 4) << ",\n"
        << "  \"metrics\": " << metrics.snapshot().to_json() << "\n"
        << "}\n";
    std::cout << "\nspeedup geomean_short(qlen<=200)="
              << format_double(geomean_short, 3)
              << " geomean_long(qlen>=1024)=" << format_double(geomean_long, 3)
              << " geomean=" << format_double(geomean, 3)
              << " best=" << format_double(best_speedup, 3)
              << "\nfunnel speedup geomean_short(qlen<=500)="
              << format_double(funnel_geomean_short, 3)
              << " geomean=" << format_double(funnel_geomean, 3) << " -> "
              << out_path << "\n";
    return 0;
}

// Whole-database scan throughput: packed two-pass pipeline
// (db::PackedDatabase + align::DatabaseScanner) vs the seed
// per-sequence StripedAligner path (per-call scratch allocation,
// per-residue alphabet checks, pointer-chased std::vector<Sequence>
// layout, inline 8->16->32 escalation). Emits machine-readable
// BENCH_scan.json for the perf trajectory alongside a human table.
//
// Usage: bench_scan [--reps N] [--db-seqs N] [--out PATH]

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "align/db_scan.hpp"
#include "align/striped.hpp"
#include "align/sw_scalar.hpp"
#include "db/database.hpp"
#include "db/packed.hpp"
#include "simd/simd.hpp"
#include "util/args.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/str.hpp"
#include "util/timer.hpp"

using namespace swh;

// The seed kernels, copied verbatim from the growth-seed commit so the
// baseline stays pinned while the shared kernels evolve: three
// std::vector<V> buffers heap-allocated per call, a per-residue alphabet
// check, and no restrict qualification.
namespace seedk {

using align::Code;
using align::GapPenalty;
using align::Profile16;
using align::Profile8;
using align::Score;
using align::StripedResult;

template <class V>
StripedResult striped_u8(const Profile8& p, std::span<const Code> db,
                         GapPenalty gap) {
    SWH_REQUIRE(p.lanes == V::kLanes, "profile built for a different width");
    StripedResult r;
    if (p.query_len == 0 || db.empty()) return r;

    const std::size_t seg = p.seg_len;
    const auto open_ext =
        static_cast<std::uint8_t>(std::min<Score>(gap.open + gap.extend, 255));
    const auto ext =
        static_cast<std::uint8_t>(std::min<Score>(gap.extend, 255));
    const V vGapOE = V::splat(open_ext);
    const V vGapE = V::splat(ext);
    const V vBias = V::splat(static_cast<std::uint8_t>(p.bias));

    std::vector<V> h_load(seg, V::zero());
    std::vector<V> h_store(seg, V::zero());
    std::vector<V> e(seg, V::zero());
    V vMax = V::zero();

    for (const Code c : db) {
        SWH_REQUIRE(c < p.symbols, "db residue outside profile alphabet");
        const std::uint8_t* prof = p.row(c);
        V vF = V::zero();
        V vH = h_load[seg - 1].shl_lane();
        for (std::size_t i = 0; i < seg; ++i) {
            vH = subs(adds(vH, V::load(prof + i * V::kLanes)), vBias);
            vH = vmax(vH, e[i]);
            vH = vmax(vH, vF);
            vMax = vmax(vMax, vH);
            h_store[i] = vH;
            const V vHgap = subs(vH, vGapOE);
            e[i] = vmax(subs(e[i], vGapE), vHgap);
            vF = vmax(subs(vF, vGapE), vHgap);
            vH = h_load[i];
        }
        vF = vF.shl_lane();
        std::size_t j = 0;
        while (any_gt(vF, subs(h_store[j], vGapOE))) {
            h_store[j] = vmax(h_store[j], vF);
            e[j] = vmax(e[j], subs(h_store[j], vGapOE));
            vF = subs(vF, vGapE);
            if (++j >= seg) {
                j = 0;
                vF = vF.shl_lane();
            }
        }
        std::swap(h_load, h_store);
    }

    const std::uint8_t m = vMax.hmax();
    r.score = m;
    r.overflow = static_cast<Score>(m) + p.bias >= 255;
    return r;
}

template <class V>
StripedResult striped_i16(const Profile16& p, std::span<const Code> db,
                          GapPenalty gap, Score matrix_max) {
    SWH_REQUIRE(p.lanes == V::kLanes, "profile built for a different width");
    StripedResult r;
    if (p.query_len == 0 || db.empty()) return r;

    const std::size_t seg = p.seg_len;
    const V vGapOE = V::splat(static_cast<std::int16_t>(
        std::min<Score>(gap.open + gap.extend, 32767)));
    const V vGapE =
        V::splat(static_cast<std::int16_t>(std::min<Score>(gap.extend, 32767)));
    const V vZero = V::zero();

    std::vector<V> h_load(seg, V::zero());
    std::vector<V> h_store(seg, V::zero());
    std::vector<V> e(seg, V::zero());
    V vMax = V::zero();

    for (const Code c : db) {
        SWH_REQUIRE(c < p.symbols, "db residue outside profile alphabet");
        const std::int16_t* prof = p.row(c);
        V vF = V::zero();
        V vH = h_load[seg - 1].shl_lane();
        for (std::size_t i = 0; i < seg; ++i) {
            vH = adds(vH, V::load(prof + i * V::kLanes));
            vH = vmax(vH, e[i]);
            vH = vmax(vH, vF);
            vH = vmax(vH, vZero);
            vMax = vmax(vMax, vH);
            h_store[i] = vH;
            const V vHgap = subs(vH, vGapOE);
            e[i] = vmax(subs(e[i], vGapE), vHgap);
            vF = vmax(subs(vF, vGapE), vHgap);
            vH = h_load[i];
        }
        vF = vF.shl_lane();
        std::size_t j = 0;
        while (any_gt(vF, vmax(subs(h_store[j], vGapOE), vZero))) {
            h_store[j] = vmax(h_store[j], vF);
            e[j] = vmax(e[j], subs(h_store[j], vGapOE));
            vF = subs(vF, vGapE);
            if (++j >= seg) {
                j = 0;
                vF = vF.shl_lane();
            }
        }
        std::swap(h_load, h_store);
    }

    const std::int16_t m = vMax.hmax();
    r.score = m;
    r.overflow = static_cast<Score>(m) + matrix_max >= 32767;
    return r;
}

StripedResult sw_u8(const Profile8& p, std::span<const Code> db,
                    GapPenalty gap, simd::IsaLevel isa) {
    switch (isa) {
        case simd::IsaLevel::Scalar:
            return striped_u8<simd::U8x16s>(p, db, gap);
#if defined(__SSE2__)
        case simd::IsaLevel::SSE2:
            return striped_u8<simd::U8x16>(p, db, gap);
#endif
#if defined(__AVX2__)
        case simd::IsaLevel::AVX2:
            return striped_u8<simd::U8x32>(p, db, gap);
#endif
#if defined(__AVX512BW__)
        case simd::IsaLevel::AVX512:
            return striped_u8<simd::U8x64>(p, db, gap);
#endif
        default:
            break;
    }
    SWH_REQUIRE(false, "ISA level not compiled in");
    return {};
}

StripedResult sw_i16(const Profile16& p, std::span<const Code> db,
                     GapPenalty gap, simd::IsaLevel isa) {
    switch (isa) {
        case simd::IsaLevel::Scalar:
            return striped_i16<simd::I16x8s>(p, db, gap, p.max_entry);
#if defined(__SSE2__)
        case simd::IsaLevel::SSE2:
            return striped_i16<simd::I16x8>(p, db, gap, p.max_entry);
#endif
#if defined(__AVX2__)
        case simd::IsaLevel::AVX2:
            return striped_i16<simd::I16x16>(p, db, gap, p.max_entry);
#endif
#if defined(__AVX512BW__)
        case simd::IsaLevel::AVX512:
            return striped_i16<simd::I16x32>(p, db, gap, p.max_entry);
#endif
        default:
            break;
    }
    SWH_REQUIRE(false, "ISA level not compiled in");
    return {};
}

}  // namespace seedk

namespace {

constexpr align::GapPenalty kGap{10, 2};

/// The seed scan loop, reproduced faithfully: per-sequence calls into the
/// pinned seed kernels over the pointer-chased std::vector<Sequence>
/// layout, escalating inline exactly like the seed StripedAligner::score.
align::Score seed_scan(const align::Profile8& p8, const align::Profile16& p16,
                       std::span<const align::Code> query,
                       const align::ScoreMatrix& matrix,
                       const db::Database& database, simd::IsaLevel isa) {
    align::Score best = 0;
    for (const align::Sequence& s : database.sequences()) {
        const align::StripedResult r8 = seedk::sw_u8(p8, s.residues, kGap, isa);
        if (!r8.overflow) {
            best = std::max(best, r8.score);
            continue;
        }
        const align::StripedResult r16 =
            seedk::sw_i16(p16, s.residues, kGap, isa);
        if (!r16.overflow) {
            best = std::max(best, r16.score);
            continue;
        }
        best = std::max(best,
                        align::sw_score_affine(query, s.residues, matrix, kGap));
    }
    return best;
}

/// The packed pipeline: single worker, chunked claiming, two-pass
/// deferred escalation, warm per-worker scratch.
align::Score packed_scan(const align::StripedAligner& aligner,
                         const db::PackedDatabase& packed,
                         align::ScanScratch& scratch) {
    align::DatabaseScanner scanner(aligner, packed.view());
    align::Score best = 0;
    scanner.run_worker(scratch,
                       [&](std::uint32_t, std::uint32_t, align::Score s) {
                           best = std::max(best, s);
                           return true;
                       });
    return best;
}

struct Row {
    std::size_t qlen = 0;
    double seed_gcups = 0.0;
    double packed_gcups = 0.0;
    double speedup = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
    ArgParser args("bench_scan",
                   "packed two-pass scan vs seed per-sequence scan GCUPS");
    args.add_option("reps", "timing repetitions (best-of)", "5");
    args.add_option("db-seqs", "synthetic database sequence count", "1500");
    args.add_option("qlens", "comma-separated query lengths",
                    "100,500,2000");
    args.add_option("out", "output JSON path", "BENCH_scan.json");
    if (!args.parse(argc, argv)) return 0;
    const int reps = static_cast<int>(args.get_int("reps"));
    const std::size_t db_seqs =
        static_cast<std::size_t>(args.get_int("db-seqs"));
    std::vector<std::size_t> qlens;
    for (const std::string& tok : split(args.get("qlens"), ',')) {
        if (tok.empty() ||
            tok.find_first_not_of("0123456789") != std::string::npos) {
            std::cerr << "error: --qlens expects comma-separated positive "
                         "integers, got '"
                      << tok << "'\n";
            return 1;
        }
        const std::size_t v = static_cast<std::size_t>(std::stoul(tok));
        if (v == 0) {
            std::cerr << "error: --qlens lengths must be positive\n";
            return 1;
        }
        qlens.push_back(v);
    }
    if (qlens.empty()) {
        std::cerr << "error: --qlens must name at least one length\n";
        return 1;
    }
    const std::string out_path = args.get("out");

    const align::ScoreMatrix matrix = align::ScoreMatrix::blosum62();
    const simd::IsaLevel isa = simd::best_supported();

    db::DatabaseSpec spec;
    spec.name = "bench-scan";
    spec.num_sequences = db_seqs;
    spec.seed = 404;
    const db::Database database = db::Database::generate(spec);
    const db::PackedDatabase& packed = database.packed();
    const std::uint64_t db_residues = database.residues();

    std::cout << "bench_scan: isa=" << simd::to_string(isa)
              << " db_seqs=" << database.size()
              << " db_residues=" << db_residues << " reps=" << reps << "\n\n";
    std::cout << "qlen   seed GCUPS   packed GCUPS   speedup\n";

    std::vector<Row> rows;
    for (const std::size_t qlen : qlens) {
        Rng rng(405 + qlen);
        const align::Sequence q = db::random_protein(rng, qlen, "query");
        const align::StripedAligner aligner(q.residues, matrix, kGap, isa);
        const align::Profile8 p8 =
            align::build_profile8(q.residues, matrix, align::lanes_u8(isa));
        const align::Profile16 p16 =
            align::build_profile16(q.residues, matrix, align::lanes_i16(isa));
        const double cells =
            static_cast<double>(qlen) * static_cast<double>(db_residues);

        align::ScanScratch scratch;
        // Warm-up both paths (page in the db, grow the scratch).
        align::Score seed_best =
            seed_scan(p8, p16, q.residues, matrix, database, isa);
        align::Score packed_best = packed_scan(aligner, packed, scratch);
        if (seed_best != packed_best) {
            std::cerr << "FATAL: score mismatch (seed=" << seed_best
                      << " packed=" << packed_best << ")\n";
            return 1;
        }

        double seed_best_s = 1e30;
        double packed_best_s = 1e30;
        for (int r = 0; r < reps; ++r) {
            Timer t;
            seed_best = seed_scan(p8, p16, q.residues, matrix, database, isa);
            seed_best_s = std::min(seed_best_s, t.seconds());
            t.reset();
            packed_best = packed_scan(aligner, packed, scratch);
            packed_best_s = std::min(packed_best_s, t.seconds());
        }

        Row row;
        row.qlen = qlen;
        row.seed_gcups = cells / seed_best_s / 1e9;
        row.packed_gcups = cells / packed_best_s / 1e9;
        row.speedup = row.packed_gcups / row.seed_gcups;
        rows.push_back(row);
        std::cout << format_double(static_cast<double>(qlen), 0) << "    "
                  << format_double(row.seed_gcups, 3) << "        "
                  << format_double(row.packed_gcups, 3) << "          "
                  << format_double(row.speedup, 3) << "\n";
    }

    double best_speedup = 0.0;
    double geomean = 1.0;
    for (const Row& r : rows) {
        best_speedup = std::max(best_speedup, r.speedup);
        geomean *= r.speedup;
    }
    geomean = rows.empty() ? 0.0
                           : std::pow(geomean, 1.0 / static_cast<double>(
                                                         rows.size()));

    std::ofstream out(out_path);
    out << "{\n"
        << "  \"bench\": \"scan\",\n"
        << "  \"isa\": \"" << simd::to_string(isa) << "\",\n"
        << "  \"db_sequences\": " << database.size() << ",\n"
        << "  \"db_residues\": " << db_residues << ",\n"
        << "  \"reps\": " << reps << ",\n"
        << "  \"configs\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row& r = rows[i];
        out << "    {\"query_len\": " << r.qlen
            << ", \"seed_gcups\": " << format_double(r.seed_gcups, 4)
            << ", \"packed_gcups\": " << format_double(r.packed_gcups, 4)
            << ", \"speedup\": " << format_double(r.speedup, 4) << "}"
            << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ],\n"
        << "  \"speedup_geomean\": " << format_double(geomean, 4) << ",\n"
        << "  \"speedup_best\": " << format_double(best_speedup, 4) << "\n"
        << "}\n";
    std::cout << "\nspeedup geomean=" << format_double(geomean, 3)
              << " best=" << format_double(best_speedup, 3) << " -> "
              << out_path << "\n";
    return 0;
}

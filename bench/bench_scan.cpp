// Whole-database scan throughput: adaptive inter-sequence scan
// (lane-interleaved cohorts + per-cohort kernel dispatch) vs the packed
// two-pass striped pipeline (the previous hot path, kept as the
// baseline). Both run through db::PackedDatabase + align::DatabaseScanner;
// the only difference is whether the lane-interleaved cohort layout is
// attached. Emits machine-readable BENCH_scan.json for the perf
// trajectory alongside a human table; kernel dispatch counts are routed
// through obs::MetricsRegistry and included in the JSON.
//
// Usage: bench_scan [--reps N] [--db-seqs N] [--qlens L,L,...]
//                   [--json PATH | --out PATH]

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "align/db_scan.hpp"
#include "align/striped.hpp"
#include "db/database.hpp"
#include "db/packed.hpp"
#include "obs/metrics.hpp"
#include "simd/simd.hpp"
#include "util/args.hpp"
#include "util/rng.hpp"
#include "util/str.hpp"
#include "util/timer.hpp"

using namespace swh;

namespace {

constexpr align::GapPenalty kGap{10, 2};

/// Single-worker scan through the two-pass pipeline. With `cohorts`
/// empty this is exactly the PR 1 packed baseline; with the
/// lane-interleaved view attached, pass 1 dispatches per cohort
/// between the inter-sequence and striped kernels.
align::Score run_scan(const align::StripedAligner& aligner,
                      const db::PackedDatabase& packed,
                      align::ScanScratch& scratch,
                      align::InterleavedCohorts cohorts,
                      align::DatabaseScanner::DispatchStats* stats = nullptr) {
    align::DatabaseScanner scanner(aligner, packed.view(),
                                   align::DatabaseScanner::kDefaultChunk,
                                   cohorts);
    align::Score best = 0;
    scanner.run_worker(scratch,
                       [&](std::uint32_t, std::uint32_t, align::Score s) {
                           best = std::max(best, s);
                           return true;
                       });
    if (stats != nullptr) *stats = scanner.dispatch_stats();
    return best;
}

struct Row {
    std::size_t qlen = 0;
    double packed_gcups = 0.0;
    double interseq_gcups = 0.0;
    double speedup = 0.0;
    align::DatabaseScanner::DispatchStats dispatch;
};

}  // namespace

int main(int argc, char** argv) {
    ArgParser args("bench_scan",
                   "adaptive inter-sequence scan vs packed striped scan GCUPS");
    args.add_option("reps", "timing repetitions (best-of)", "5");
    args.add_option("db-seqs", "synthetic database sequence count", "1500");
    args.add_option("qlens", "comma-separated query lengths",
                    "50,100,150,200,500,2000");
    args.add_option("json", "output JSON path", "");
    args.add_option("out", "output JSON path (alias of --json)",
                    "BENCH_scan.json");
    if (!args.parse(argc, argv)) return 0;
    const int reps = static_cast<int>(args.get_int("reps"));
    const std::size_t db_seqs =
        static_cast<std::size_t>(args.get_int("db-seqs"));
    std::vector<std::size_t> qlens;
    for (const std::string& tok : split(args.get("qlens"), ',')) {
        if (tok.empty() ||
            tok.find_first_not_of("0123456789") != std::string::npos) {
            std::cerr << "error: --qlens expects comma-separated positive "
                         "integers, got '"
                      << tok << "'\n";
            return 1;
        }
        const std::size_t v = static_cast<std::size_t>(std::stoul(tok));
        if (v == 0) {
            std::cerr << "error: --qlens lengths must be positive\n";
            return 1;
        }
        qlens.push_back(v);
    }
    if (qlens.empty()) {
        std::cerr << "error: --qlens must name at least one length\n";
        return 1;
    }
    const std::string out_path =
        args.get("json").empty() ? args.get("out") : args.get("json");

    const align::ScoreMatrix matrix = align::ScoreMatrix::blosum62();
    const simd::IsaLevel isa = simd::best_supported();
    const int lanes = align::lanes_u8(isa);

    db::DatabaseSpec spec;
    spec.name = "bench-scan";
    spec.num_sequences = db_seqs;
    spec.seed = 404;
    const db::Database database = db::Database::generate(spec);
    const db::PackedDatabase& packed = database.packed();
    const align::InterleavedCohorts cohorts =
        packed.interleaved(lanes).view();
    const std::uint64_t db_residues = database.residues();

    std::cout << "bench_scan: isa=" << simd::to_string(isa)
              << " lanes=" << lanes << " db_seqs=" << database.size()
              << " db_residues=" << db_residues << " reps=" << reps << "\n\n";
    std::cout << "qlen   packed GCUPS   interseq GCUPS   speedup   "
                 "interseq/striped subjects\n";

    obs::MetricsRegistry metrics;
    std::vector<Row> rows;
    for (const std::size_t qlen : qlens) {
        Rng rng(405 + qlen);
        const align::Sequence q = db::random_protein(rng, qlen, "query");
        const align::StripedAligner aligner(q.residues, matrix, kGap, isa);
        const double cells =
            static_cast<double>(qlen) * static_cast<double>(db_residues);

        align::ScanScratch scratch;
        // Warm-up both paths (page in the db, grow the scratch) and
        // check equivalence: both pipelines must settle identical best
        // scores for every query.
        const align::Score packed_best =
            run_scan(aligner, packed, scratch, {});
        Row row;
        row.qlen = qlen;
        const align::Score interseq_best =
            run_scan(aligner, packed, scratch, cohorts, &row.dispatch);
        if (packed_best != interseq_best) {
            std::cerr << "FATAL: score mismatch (packed=" << packed_best
                      << " interseq=" << interseq_best << ")\n";
            return 1;
        }

        double packed_best_s = 1e30;
        double interseq_best_s = 1e30;
        for (int r = 0; r < reps; ++r) {
            Timer t;
            run_scan(aligner, packed, scratch, {});
            packed_best_s = std::min(packed_best_s, t.seconds());
            t.reset();
            run_scan(aligner, packed, scratch, cohorts);
            interseq_best_s = std::min(interseq_best_s, t.seconds());
        }

        row.packed_gcups = cells / packed_best_s / 1e9;
        row.interseq_gcups = cells / interseq_best_s / 1e9;
        row.speedup = row.interseq_gcups / row.packed_gcups;
        rows.push_back(row);
        metrics.counter("scan.cohorts_interseq")
            .add(row.dispatch.cohorts_interseq);
        metrics.counter("scan.cohorts_striped")
            .add(row.dispatch.cohorts_striped);
        metrics.counter("scan.subjects_interseq")
            .add(row.dispatch.subjects_interseq);
        metrics.counter("scan.subjects_striped")
            .add(row.dispatch.subjects_striped);
        std::cout << format_double(static_cast<double>(qlen), 0) << "    "
                  << format_double(row.packed_gcups, 3) << "          "
                  << format_double(row.interseq_gcups, 3) << "            "
                  << format_double(row.speedup, 3) << "     "
                  << row.dispatch.subjects_interseq << "/"
                  << row.dispatch.subjects_striped << "\n";
    }

    double best_speedup = 0.0;
    double geomean = 1.0;
    double geomean_short = 1.0;
    std::size_t n_short = 0;
    for (const Row& r : rows) {
        best_speedup = std::max(best_speedup, r.speedup);
        geomean *= r.speedup;
        if (r.qlen <= 200) {
            geomean_short *= r.speedup;
            ++n_short;
        }
    }
    geomean = rows.empty() ? 0.0
                           : std::pow(geomean, 1.0 / static_cast<double>(
                                                         rows.size()));
    geomean_short =
        n_short == 0
            ? 0.0
            : std::pow(geomean_short, 1.0 / static_cast<double>(n_short));

    std::ofstream out(out_path);
    out << "{\n"
        << "  \"bench\": \"scan\",\n"
        << "  \"isa\": \"" << simd::to_string(isa) << "\",\n"
        << "  \"cohort_lanes\": " << lanes << ",\n"
        << "  \"db_sequences\": " << database.size() << ",\n"
        << "  \"db_residues\": " << db_residues << ",\n"
        << "  \"reps\": " << reps << ",\n"
        << "  \"configs\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row& r = rows[i];
        out << "    {\"query_len\": " << r.qlen
            << ", \"packed_gcups\": " << format_double(r.packed_gcups, 4)
            << ", \"interseq_gcups\": " << format_double(r.interseq_gcups, 4)
            << ", \"speedup\": " << format_double(r.speedup, 4)
            << ", \"cohorts_interseq\": " << r.dispatch.cohorts_interseq
            << ", \"cohorts_striped\": " << r.dispatch.cohorts_striped
            << ", \"subjects_interseq\": " << r.dispatch.subjects_interseq
            << ", \"subjects_striped\": " << r.dispatch.subjects_striped
            << "}" << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    out << "  ],\n"
        << "  \"speedup_geomean_short\": " << format_double(geomean_short, 4)
        << ",\n"
        << "  \"speedup_geomean\": " << format_double(geomean, 4) << ",\n"
        << "  \"speedup_best\": " << format_double(best_speedup, 4) << ",\n"
        << "  \"metrics\": " << metrics.snapshot().to_json() << "\n"
        << "}\n";
    std::cout << "\nspeedup geomean_short(qlen<=200)="
              << format_double(geomean_short, 3)
              << " geomean=" << format_double(geomean, 3)
              << " best=" << format_double(best_speedup, 3) << " -> "
              << out_path << "\n";
    return 0;
}

// google-benchmark microbenchmarks for the Smith-Waterman kernels on
// THIS machine: scalar Gotoh oracle vs the striped 8-bit and 16-bit
// kernels at every compiled ISA level. The `GCUPS` counter is the
// figure of merit (the paper reports ~2-3 GCUPS per SSE core with the
// adapted Farrar kernel).

#include <benchmark/benchmark.h>

#include "align/striped.hpp"
#include "align/sw_scalar.hpp"
#include "db/generator.hpp"
#include "util/rng.hpp"

using namespace swh;

namespace {

const align::ScoreMatrix& blosum() {
    static const align::ScoreMatrix m = align::ScoreMatrix::blosum62();
    return m;
}

constexpr align::GapPenalty kGap{10, 2};

std::vector<align::Code> fixed_subject() {
    static const std::vector<align::Code> subject = [] {
        Rng rng(404);
        return db::random_protein(rng, 20'000, "subject").residues;
    }();
    return subject;
}

std::vector<align::Code> fixed_query(std::size_t len) {
    Rng rng(405 + len);
    return db::random_protein(rng, len, "query").residues;
}

void report_gcups(benchmark::State& state, std::size_t qlen,
                  std::size_t dlen) {
    const double cells = static_cast<double>(qlen) *
                         static_cast<double>(dlen) *
                         static_cast<double>(state.iterations());
    state.counters["GCUPS"] = benchmark::Counter(
        cells / 1e9, benchmark::Counter::kIsRate);
}

void BM_ScalarGotoh(benchmark::State& state) {
    const auto q = fixed_query(static_cast<std::size_t>(state.range(0)));
    const auto d = fixed_subject();
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            align::sw_score_affine(q, d, blosum(), kGap));
    }
    report_gcups(state, q.size(), d.size());
}
BENCHMARK(BM_ScalarGotoh)->Arg(100)->Arg(500)->Arg(2000);

template <simd::IsaLevel kIsa>
void BM_StripedU8(benchmark::State& state) {
    if (!simd::is_supported(kIsa)) {
        state.SkipWithError("ISA not supported");
        return;
    }
    const auto q = fixed_query(static_cast<std::size_t>(state.range(0)));
    const auto d = fixed_subject();
    const align::Profile8 p =
        align::build_profile8(q, blosum(), align::lanes_u8(kIsa));
    for (auto _ : state) {
        benchmark::DoNotOptimize(align::sw_striped_u8(p, d, kGap, kIsa));
    }
    report_gcups(state, q.size(), d.size());
}
BENCHMARK(BM_StripedU8<simd::IsaLevel::Scalar>)->Arg(500);
#if defined(__SSE2__)
BENCHMARK(BM_StripedU8<simd::IsaLevel::SSE2>)->Arg(100)->Arg(500)->Arg(2000)->Arg(5000);
#endif
#if defined(__AVX2__)
BENCHMARK(BM_StripedU8<simd::IsaLevel::AVX2>)->Arg(100)->Arg(500)->Arg(2000)->Arg(5000);
#endif
#if defined(__AVX512BW__)
BENCHMARK(BM_StripedU8<simd::IsaLevel::AVX512>)->Arg(500)->Arg(2000)->Arg(5000);
#endif

template <simd::IsaLevel kIsa>
void BM_StripedI16(benchmark::State& state) {
    if (!simd::is_supported(kIsa)) {
        state.SkipWithError("ISA not supported");
        return;
    }
    const auto q = fixed_query(static_cast<std::size_t>(state.range(0)));
    const auto d = fixed_subject();
    const align::Profile16 p =
        align::build_profile16(q, blosum(), align::lanes_i16(kIsa));
    for (auto _ : state) {
        benchmark::DoNotOptimize(align::sw_striped_i16(p, d, kGap, kIsa));
    }
    report_gcups(state, q.size(), d.size());
}
#if defined(__SSE2__)
BENCHMARK(BM_StripedI16<simd::IsaLevel::SSE2>)->Arg(500)->Arg(2000);
#endif
#if defined(__AVX2__)
BENCHMARK(BM_StripedI16<simd::IsaLevel::AVX2>)->Arg(500)->Arg(2000);
#endif
#if defined(__AVX512BW__)
BENCHMARK(BM_StripedI16<simd::IsaLevel::AVX512>)->Arg(500)->Arg(2000);
#endif

// Full database-search path (StripedAligner with escalation) — what one
// paper SSE-core slave runs per task.
void BM_AlignerDatabaseScan(benchmark::State& state) {
    const auto q = fixed_query(static_cast<std::size_t>(state.range(0)));
    db::DatabaseSpec spec;
    spec.name = "bench";
    spec.num_sequences = 200;
    spec.seed = 42;
    const auto database = db::generate_database(spec);
    std::uint64_t db_residues = 0;
    for (const auto& s : database) db_residues += s.size();

    const align::StripedAligner aligner(q, blosum(), kGap);
    for (auto _ : state) {
        align::Score best = 0;
        for (const auto& s : database) {
            best = std::max(best, aligner.score(s.residues));
        }
        benchmark::DoNotOptimize(best);
    }
    const double cells = static_cast<double>(q.size()) *
                         static_cast<double>(db_residues) *
                         static_cast<double>(state.iterations());
    state.counters["GCUPS"] =
        benchmark::Counter(cells / 1e9, benchmark::Counter::kIsRate);
}
BENCHMARK(BM_AlignerDatabaseScan)->Arg(100)->Arg(500)->Arg(2000);

}  // namespace

BENCHMARK_MAIN();

// Reproduces Fig. 8: the non-dedicated run. Same setup as Fig. 7 (4 SSE
// cores, Ensembl Dog), but 60 s into the run a compute-intensive local
// job (the paper used superpi) halves core 0's delivered rate. Paper
// anchors: core 0's GCUPS drop to less than half after t=60 s; wallclock
// grows by ~12.1% even though ~15% of the remaining capacity was lost —
// PSS re-weights and the adjustment mechanism absorbs the tail.

#include <iostream>

#include "bench_common.hpp"

using namespace swh;

int main() {
    sim::SimConfig dedicated =
        bench::paper_config(db::preset_by_name("dog"), 0, 4);
    dedicated.notify_period_s = 2.0;
    const sim::SimReport base = sim::simulate(dedicated);

    // The paper's superpi reduced core 0's delivered rate "to less than
    // a half".
    sim::SimConfig loaded = dedicated;
    loaded.load_events = {sim::LoadEvent{60.0, 0, 0.45}};
    const sim::SimReport r = sim::simulate(loaded);

    std::cout << "Fig. 8 — non-dedicated execution with 4 cores, local "
                 "load at core 0 from t=60 s\n"
              << "dedicated wallclock:      "
              << format_double(base.makespan, 1) << " s\n"
              << "non-dedicated wallclock:  " << format_double(r.makespan, 1)
              << " s  (+"
              << format_double(
                     (r.makespan - base.makespan) / base.makespan * 100.0, 1)
              << "%, paper: +12.1%)\n\n";

    std::cout << "core 0 GCUPS samples (time,gcups):\n";
    for (const sim::RateSample& s : r.rates) {
        if (s.pe != 0) continue;
        std::cout << format_double(s.time, 0) << ','
                  << format_double(s.gcups, 3) << '\n';
    }
    return 0;
}

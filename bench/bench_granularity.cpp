// Ablation for the paper's Fig. 3 discussion (parallelisation grain):
// the same total work split into different task counts. Finer tasks
// balance better across a heterogeneous platform but pay more per-task
// overhead and master traffic; the paper's very coarse grain (task =
// query x whole database) relies on PSS + the adjustment mechanism to
// stay balanced.

#include <iostream>
#include <numeric>

#include "bench_common.hpp"

using namespace swh;

int main() {
    const db::DatabasePreset& swiss = db::preset_by_name("swissprot");
    const auto base_lengths = bench::paper_query_lengths();
    const std::uint64_t db_residues = swiss.total_residues();

    std::cout << "Granularity ablation — SwissProt workload on "
                 "4 GPUs + 4 SSEs, same total cells split into N tasks\n\n";
    TextTable table({"Tasks", "split", "wallclock (s)", "GCUPS",
                     "executions"});
    for (const int split : {1, 4, 16, 64}) {
        // Split every query's comparison into `split` database slices —
        // the coarse-grained decomposition of Fig. 3(b).
        std::vector<std::size_t> lengths;
        for (const std::size_t len : base_lengths) {
            for (int s = 0; s < split; ++s) {
                lengths.push_back(std::max<std::size_t>(1, len / split));
            }
        }
        sim::SimConfig cfg = bench::paper_config(swiss, 4, 4);
        cfg.query_lengths = lengths;
        (void)db_residues;
        const sim::SimReport r = sim::simulate(cfg);
        table.add_row({std::to_string(lengths.size()),
                       "1/" + std::to_string(split),
                       format_double(r.makespan, 1),
                       format_double(r.gcups, 2),
                       std::to_string(r.spans.size())});
    }
    table.print(std::cout);
    std::cout << "\nReading: finer grain shortens the tail the adjustment "
                 "mechanism otherwise absorbs, at the cost of more "
                 "per-task overhead and master interactions.\n";
    return 0;
}

#include "MsgVisitorExhaustiveCheck.h"

#include <algorithm>
#include <set>

#include "SwhTidyUtil.h"
#include "clang/AST/ASTContext.h"
#include "clang/AST/DeclTemplate.h"
#include "clang/AST/ExprCXX.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang::tidy::swh {

namespace {

std::string qualifiedTypeName(QualType T) {
  T = T.getCanonicalType().getNonReferenceType().getUnqualifiedType();
  if (const auto *RT = T->getAs<RecordType>())
    return RT->getDecl()->getQualifiedNameAsString();
  return std::string();
}

bool nameHasAnyPrefix(const std::string &Name,
                      const std::vector<std::string> &Prefixes) {
  return std::any_of(Prefixes.begin(), Prefixes.end(),
                     [&](const std::string &P) {
                       return llvm::StringRef(Name).starts_with(P);
                     });
}

/// One tested-alternative observation plus the full alternative list of
/// the variant it came from (both recovered from the callee's template
/// arguments: get_if / holds_alternative are declared
/// `template <class T, class... Types> ... (variant<Types...> ...)`).
struct Probe {
  std::string Tested;                    // qualified name of T
  std::vector<std::string> Alternatives; // qualified names of Types...
};

bool extractProbe(const CallExpr &Call, Probe &Out) {
  const FunctionDecl *Callee = Call.getDirectCallee();
  if (!Callee)
    return false;
  const std::string Name = Callee->getQualifiedNameAsString();
  if (Name != "std::get_if" && Name != "std::holds_alternative")
    return false;
  const TemplateArgumentList *Args = Callee->getTemplateSpecializationArgs();
  if (!Args || Args->size() < 2)
    return false;
  const TemplateArgument &T = Args->get(0);
  if (T.getKind() != TemplateArgument::Type)
    return false; // index form std::get_if<I>; out of scope
  Out.Tested = qualifiedTypeName(T.getAsType());
  const TemplateArgument &Pack = Args->get(1);
  if (Pack.getKind() != TemplateArgument::Pack)
    return false;
  Out.Alternatives.clear();
  for (const TemplateArgument &Alt : Pack.pack_elements()) {
    if (Alt.getKind() != TemplateArgument::Type)
      return false;
    Out.Alternatives.push_back(qualifiedTypeName(Alt.getAsType()));
  }
  return !Out.Tested.empty();
}

/// Collects get_if / holds_alternative probes from `S` and its subtree.
void collectProbes(const Stmt *S, std::vector<Probe> &Out) {
  if (!S)
    return;
  if (const auto *Call = dyn_cast<CallExpr>(S)) {
    Probe P;
    if (extractProbe(*Call, P))
      Out.push_back(std::move(P));
  }
  for (const Stmt *Child : S->children())
    collectProbes(Child, Out);
}

/// Alternatives of `VariantType` (desugared std::variant specialization);
/// empty when it is not one.
std::vector<std::string> variantAlternatives(QualType VariantType) {
  std::vector<std::string> Out;
  VariantType =
      VariantType.getCanonicalType().getNonReferenceType().getUnqualifiedType();
  const auto *RT = VariantType->getAs<RecordType>();
  if (!RT)
    return Out;
  const auto *Spec = dyn_cast<ClassTemplateSpecializationDecl>(RT->getDecl());
  if (!Spec || Spec->getQualifiedNameAsString() != "std::variant")
    return Out;
  const TemplateArgumentList &Args = Spec->getTemplateArgs();
  if (Args.size() != 1 || Args.get(0).getKind() != TemplateArgument::Pack)
    return Out;
  for (const TemplateArgument &Alt : Args.get(0).pack_elements()) {
    if (Alt.getKind() != TemplateArgument::Type)
      return {};
    Out.push_back(qualifiedTypeName(Alt.getAsType()));
  }
  return Out;
}

/// Collects every operator() of `Record`, chasing base classes so the
/// `overloaded { lambda... }` aggregation idiom is seen whole. Each
/// entry: the method, or the function template (generic operator()).
struct CallOperators {
  std::vector<const CXXMethodDecl *> Concrete;
  unsigned Templates = 0;
};

void collectCallOperators(const CXXRecordDecl *Record, CallOperators &Out) {
  if (!Record || !Record->hasDefinition())
    return;
  Record = Record->getDefinition();
  for (const Decl *D : Record->decls()) {
    if (const auto *M = dyn_cast<CXXMethodDecl>(D)) {
      if (M->getOverloadedOperator() == OO_Call)
        Out.Concrete.push_back(M);
    } else if (const auto *FT = dyn_cast<FunctionTemplateDecl>(D)) {
      if (const auto *M = dyn_cast<CXXMethodDecl>(FT->getTemplatedDecl()))
        if (M->getOverloadedOperator() == OO_Call)
          ++Out.Templates;
    }
  }
  for (const CXXBaseSpecifier &Base : Record->bases())
    collectCallOperators(Base.getType()->getAsCXXRecordDecl(), Out);
}

std::string joinNames(const std::vector<std::string> &Names) {
  std::string Out;
  for (const auto &N : Names) {
    if (!Out.empty())
      Out += ", ";
    Out += N;
  }
  return Out;
}

} // namespace

MsgVisitorExhaustiveCheck::MsgVisitorExhaustiveCheck(StringRef Name,
                                                     ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      MessagePrefixes(
          splitList(Options.get("MessagePrefixes", "swh::net::Msg"))) {}

void MsgVisitorExhaustiveCheck::storeOptions(
    ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "MessagePrefixes", joinList(MessagePrefixes));
}

void MsgVisitorExhaustiveCheck::registerMatchers(MatchFinder *Finder) {
  Finder->addMatcher(ifStmt(unless(isExpansionInSystemHeader()),
                            unless(isInTemplateInstantiation()))
                         .bind("if"),
                     this);
  Finder->addMatcher(
      callExpr(callee(functionDecl(hasName("::std::visit"))),
               unless(isExpansionInSystemHeader()))
          .bind("visit"),
      this);
}

void MsgVisitorExhaustiveCheck::check(const MatchFinder::MatchResult &Result) {
  if (const auto *If = Result.Nodes.getNodeAs<IfStmt>("if")) {
    // Only analyse chain heads: an if that is the `else` of another if
    // is covered by its head's walk.
    for (const DynTypedNode &Parent : Result.Context->getParents(*If)) {
      if (const auto *ParentIf = Parent.get<IfStmt>())
        if (ParentIf->getElse() == If)
          return;
    }
    checkIfChain(*If, *Result.Context);
    return;
  }
  if (const auto *Visit = Result.Nodes.getNodeAs<CallExpr>("visit"))
    checkVisit(*Visit, *Result.Context);
}

void MsgVisitorExhaustiveCheck::checkIfChain(const IfStmt &Head,
                                             ASTContext &Ctx) {
  std::set<std::string> Tested;
  std::vector<std::string> Alternatives;
  unsigned Links = 0;
  const IfStmt *Link = &Head;
  while (true) {
    ++Links;
    std::vector<Probe> Probes;
    collectProbes(Link->getInit(), Probes);
    collectProbes(Link->getConditionVariableDeclStmt(), Probes);
    collectProbes(Link->getCond(), Probes);
    for (const Probe &P : Probes) {
      Tested.insert(P.Tested);
      if (Alternatives.empty())
        Alternatives = P.Alternatives;
    }
    const auto *Next = dyn_cast_or_null<IfStmt>(Link->getElse());
    if (!Next)
      break;
    Link = Next;
  }
  if (Alternatives.empty())
    return; // no variant probes in this chain
  if (Links < 2)
    return; // a lone guard if is a peek, not a dispatch
  // Qualify: every alternative must be a protocol message type.
  for (const std::string &Alt : Alternatives)
    if (!nameHasAnyPrefix(Alt, MessagePrefixes))
      return;
  std::vector<std::string> Missing;
  for (const std::string &Alt : Alternatives)
    if (!Tested.count(Alt))
      Missing.push_back(Alt);
  if (Missing.empty())
    return;
  diag(Head.getBeginLoc(),
       "message dispatch chain does not handle every alternative of the "
       "variant; missing: %0 — name each message explicitly so adding a "
       "message type fails loudly here")
      << joinNames(Missing);
}

void MsgVisitorExhaustiveCheck::checkVisit(const CallExpr &Visit,
                                           ASTContext &Ctx) {
  if (Visit.getNumArgs() < 2)
    return;
  const std::vector<std::string> Alternatives =
      variantAlternatives(Visit.getArg(1)->getType());
  if (Alternatives.empty())
    return;
  for (const std::string &Alt : Alternatives)
    if (!nameHasAnyPrefix(Alt, MessagePrefixes))
      return;

  // IgnoreImplicit: aggregate visitors arrive wrapped in
  // MaterializeTemporaryExpr when binding to std::visit's Visitor&&.
  const Expr *Visitor = Visit.getArg(0)->IgnoreImplicit();
  const CXXRecordDecl *Record = nullptr;
  if (const auto *Lambda = dyn_cast<LambdaExpr>(Visitor))
    Record = Lambda->getLambdaClass();
  else if (const auto *Ctor = dyn_cast<CXXConstructExpr>(Visitor))
    Record = Ctor->getConstructor()->getParent();
  else
    Record = Visitor->getType()
                 .getCanonicalType()
                 .getNonReferenceType()
                 ->getAsCXXRecordDecl();
  if (!Record)
    return; // function pointers etc.: out of scope

  CallOperators Ops;
  collectCallOperators(Record, Ops);

  if (Ops.Templates > 0 && Ops.Concrete.empty())
    return; // single generic visitor: exhaustive by construction

  if (Ops.Templates > 0) {
    diag(Visit.getBeginLoc(),
         "std::visit over a message variant mixes concrete overloads with "
         "a template catch-all; the catch-all silently absorbs newly "
         "added message types — name every alternative instead");
    return;
  }

  std::set<std::string> Handled;
  for (const CXXMethodDecl *M : Ops.Concrete) {
    if (M->getNumParams() != 1)
      continue;
    Handled.insert(qualifiedTypeName(M->getParamDecl(0)->getType()));
  }
  std::vector<std::string> Missing;
  for (const std::string &Alt : Alternatives)
    if (!Handled.count(Alt))
      Missing.push_back(Alt);
  if (Missing.empty())
    return;
  diag(Visit.getBeginLoc(),
       "std::visit overload set does not handle every alternative of the "
       "message variant; missing: %0")
      << joinNames(Missing);
}

} // namespace clang::tidy::swh

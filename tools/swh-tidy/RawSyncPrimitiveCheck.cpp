#include "RawSyncPrimitiveCheck.h"

#include "SwhTidyUtil.h"
#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang::tidy::swh {

RawSyncPrimitiveCheck::RawSyncPrimitiveCheck(StringRef Name,
                                             ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      AllowedFiles(
          splitList(Options.get("AllowedFiles", "util/annotations.hpp"))) {}

void RawSyncPrimitiveCheck::storeOptions(ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "AllowedFiles", joinList(AllowedFiles));
}

void RawSyncPrimitiveCheck::registerMatchers(MatchFinder *Finder) {
  const auto SyncClass = namedDecl(hasAnyName(
      "::std::mutex", "::std::timed_mutex", "::std::recursive_mutex",
      "::std::recursive_timed_mutex", "::std::shared_mutex",
      "::std::shared_timed_mutex", "::std::condition_variable",
      "::std::condition_variable_any", "::std::lock_guard",
      "::std::unique_lock", "::std::scoped_lock", "::std::shared_lock"));
  // hasUnqualifiedDesugaredType sees through typedefs and aliases, so
  // `using Lock = std::lock_guard<std::mutex>; Lock l(...)` is caught.
  Finder->addMatcher(
      valueDecl(hasType(hasUnqualifiedDesugaredType(
                    recordType(hasDeclaration(SyncClass.bind("sync"))))),
                unless(isExpansionInSystemHeader()),
                unless(isInTemplateInstantiation()))
          .bind("decl"),
      this);
}

void RawSyncPrimitiveCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *D = Result.Nodes.getNodeAs<ValueDecl>("decl");
  const auto *Sync = Result.Nodes.getNodeAs<NamedDecl>("sync");
  if (!D || !Sync)
    return;
  if (fileMatchesSuffix(D->getLocation(), *Result.SourceManager,
                        AllowedFiles))
    return;
  diag(D->getLocation(),
       "raw %0 bypasses the thread-safety analysis; use the annotated "
       "swh:: wrapper (swh::Mutex / swh::LockGuard / swh::CondVar from "
       "util/annotations.hpp) so lock discipline stays compiler-checked")
      << Sync;
}

} // namespace clang::tidy::swh

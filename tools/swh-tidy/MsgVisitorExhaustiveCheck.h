#pragma once

#include <string>
#include <vector>

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::swh {

/// Enforces exhaustiveness when dispatching over the protocol message
/// variants (swh::net::MasterMsg / SlaveMsg, src/net/messages.hpp).
/// Adding a message type must be a compile-visible event at every
/// dispatch site, the way a switch over an enum is with -Wswitch —
/// std::variant gives no such warning, so this check supplies it.
///
/// Two dispatch shapes are understood:
///
///  * if/else-if chains over std::get_if<T> / std::holds_alternative<T>:
///    the chain must name every alternative of the variant. A trailing
///    plain `else` is fine only once all alternatives are named (it is
///    then an unreachable-state handler, not a silent drop).
///
///  * std::visit: a single generic (template) call operator is allowed —
///    it handles everything by construction. An overload set of concrete
///    operator()s must cover every alternative, and mixing concrete
///    overloads with a template catch-all is rejected: the catch-all
///    would silently absorb newly added message types.
///
/// A variant qualifies when ALL of its alternatives' qualified names
/// start with one of MessagePrefixes; other variants are ignored.
///
/// Options:
///   MessagePrefixes: semicolon-separated qualified-name prefixes of the
///     message alternatives (default "swh::net::Msg").
class MsgVisitorExhaustiveCheck : public ClangTidyCheck {
public:
  MsgVisitorExhaustiveCheck(StringRef Name, ClangTidyContext *Context);

  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
  void storeOptions(ClangTidyOptions::OptionMap &Opts) override;

private:
  void checkIfChain(const IfStmt &Head, ASTContext &Ctx);
  void checkVisit(const CallExpr &Visit, ASTContext &Ctx);

  std::vector<std::string> MessagePrefixes;
};

} // namespace clang::tidy::swh

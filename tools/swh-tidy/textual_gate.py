#!/usr/bin/env python3
"""Degraded-mode invariant gate, no clang-tidy required.

The real enforcement is the swh-tidy plugin (CI job ``swh-tidy``); this
script re-checks the textually checkable subset so environments without
an LLVM toolchain — including the default local build — still catch the
coarse regressions:

  1. raw std:: synchronisation primitives outside util/annotations.hpp
     (textual shadow of swh-raw-sync-primitive);
  2. SWH_HOT_PATH coverage floors on the kernel / scanner / top-k files
     (shadow of the swh-no-alloc-in-hot-path annotation contract — the
     annotations must not silently disappear in a refactor);
  3. every Msg* struct declared in src/net/messages.hpp is mentioned in
     the runtime dispatcher (coarse shadow of swh-msg-visitor-exhaustive).

Run from anywhere: the repo root is located relative to this file.
Exit 0 = clean, 1 = violation, 2 = repo layout changed under the gate.
"""

import os
import re
import sys

REPO_ROOT = os.path.realpath(
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "..")
)

RAW_SYNC_RE = re.compile(
    r"std::(mutex|timed_mutex|recursive_mutex|shared_mutex|shared_timed_mutex"
    r"|condition_variable|condition_variable_any|lock_guard|unique_lock"
    r"|scoped_lock|shared_lock)\b"
)
RAW_SYNC_ALLOWED = {os.path.join("src", "util", "annotations.hpp")}

# Floors, not exact counts: adding hot functions is fine, losing the
# annotation on an existing one is what this guards against.
HOT_PATH_FLOORS = {
    os.path.join("src", "align", "striped_kernels.hpp"): 6,
    os.path.join("src", "align", "interseq_kernels.hpp"): 4,
    os.path.join("src", "align", "ungapped_kernels.hpp"): 2,
    os.path.join("src", "align", "striped.hpp"): 6,
    os.path.join("src", "align", "interseq.hpp"): 4,
    os.path.join("src", "align", "ungapped.hpp"): 3,
    os.path.join("src", "align", "db_scan.hpp"): 11,
    os.path.join("src", "engines", "topk.hpp"): 3,
}

MESSAGES_HPP = os.path.join("src", "net", "messages.hpp")
# The dispatch chains moved out of hybrid_runtime.cpp in ISSUE 10: the
# master's visit/get_if chain lives in master_loop.cpp, the slave's in
# slave_loop.cpp (shared by the threaded and socket runtimes), and the
# wire codec in wire.cpp must also name every alternative. Each Msg*
# must appear in at least one dispatcher AND in the codec.
DISPATCHER_CPPS = [
    os.path.join("src", "runtime", "master_loop.cpp"),
    os.path.join("src", "runtime", "slave_loop.cpp"),
]
CODEC_CPP = os.path.join("src", "net", "wire.cpp")
MSG_STRUCT_RE = re.compile(r"^struct\s+(Msg\w+)\b", re.MULTILINE)


def read(relpath):
    with open(os.path.join(REPO_ROOT, relpath), encoding="utf-8") as f:
        return f.read()


def iter_source_files():
    for dirpath, _dirnames, filenames in os.walk(os.path.join(REPO_ROOT, "src")):
        for name in filenames:
            if name.endswith((".hpp", ".cpp", ".h", ".cc")):
                yield os.path.relpath(os.path.join(dirpath, name), REPO_ROOT)


def check_raw_sync(problems):
    for rel in sorted(iter_source_files()):
        if rel in RAW_SYNC_ALLOWED:
            continue
        for lineno, line in enumerate(read(rel).splitlines(), start=1):
            m = RAW_SYNC_RE.search(line)
            if m:
                problems.append(
                    f"{rel}:{lineno}: raw std::{m.group(1)} outside "
                    "util/annotations.hpp; use the swh:: wrappers "
                    "[textual swh-raw-sync-primitive]"
                )


def check_hot_path_floors(problems):
    for rel, floor in sorted(HOT_PATH_FLOORS.items()):
        if not os.path.isfile(os.path.join(REPO_ROOT, rel)):
            problems.append(
                f"{rel}: file listed in the SWH_HOT_PATH coverage floor is "
                "gone; update tools/swh-tidy/textual_gate.py for the new "
                "layout [gate self-consistency]"
            )
            continue
        count = read(rel).count("SWH_HOT_PATH")
        if count < floor:
            problems.append(
                f"{rel}: only {count} SWH_HOT_PATH annotations, floor is "
                f"{floor}; hot-path coverage must not silently shrink "
                "[textual swh-no-alloc-in-hot-path]"
            )


def check_msg_coverage(problems):
    messages = MSG_STRUCT_RE.findall(read(MESSAGES_HPP))
    if not messages:
        problems.append(
            f"{MESSAGES_HPP}: no Msg* structs found; the message grammar "
            "moved — update tools/swh-tidy/textual_gate.py "
            "[gate self-consistency]"
        )
        return
    dispatchers = "\n".join(read(rel) for rel in DISPATCHER_CPPS)
    codec = read(CODEC_CPP)
    for msg in messages:
        if not re.search(rf"\b{re.escape(msg)}\b", dispatchers):
            problems.append(
                f"{' + '.join(DISPATCHER_CPPS)}: never mentions net::{msg}; "
                "the runtime dispatch chains must name every message "
                "alternative [textual swh-msg-visitor-exhaustive]"
            )
        if not re.search(rf"\b{re.escape(msg)}\b", codec):
            problems.append(
                f"{CODEC_CPP}: never mentions net::{msg}; the wire codec "
                "must encode/decode every message alternative "
                "[textual swh-msg-visitor-exhaustive]"
            )


def main():
    for rel in [MESSAGES_HPP, CODEC_CPP] + DISPATCHER_CPPS:
        if not os.path.isfile(os.path.join(REPO_ROOT, rel)):
            print(f"error: {rel} not found under {REPO_ROOT}", file=sys.stderr)
            return 2
    problems = []
    check_raw_sync(problems)
    check_hot_path_floors(problems)
    check_msg_coverage(problems)
    if problems:
        print(f"textual_gate: {len(problems)} violation(s)", file=sys.stderr)
        for p in problems:
            print(f"  {p}", file=sys.stderr)
        return 1
    print("textual_gate: clean (raw-sync, hot-path floors, msg coverage)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

// Fixture for swh-msg-visitor-exhaustive. Hermetic std::variant stubs:
// the check only reads template arguments, it never needs the real
// <variant> machinery.

namespace std {
template <class... Ts>
class variant {};
template <class T, class... Ts>
T* get_if(variant<Ts...>* v);
template <class T, class... Ts>
const T* get_if(const variant<Ts...>* v);
template <class T, class... Ts>
bool holds_alternative(const variant<Ts...>& v);
template <class V, class... Vs>
void visit(V&& vis, Vs&&... vars);
}  // namespace std

namespace swh::net {
struct MsgAssign {
    int task;
};
struct MsgNoWorkYet {};
struct MsgCancel {
    int task;
};
struct MsgShutdown {};
using SlaveMsg = std::variant<MsgAssign, MsgNoWorkYet, MsgCancel, MsgShutdown>;
}  // namespace swh::net

namespace other {
struct A {};
struct B {};
using AB = std::variant<A, B>;
}  // namespace other

// --- if/else-if chains ------------------------------------------------

// Exhaustive: names all four alternatives. Fine.
void chain_exhaustive(swh::net::SlaveMsg& msg) {
    if (auto* a = std::get_if<swh::net::MsgAssign>(&msg)) {
        (void)a;
    } else if (std::holds_alternative<swh::net::MsgCancel>(msg)) {
    } else if (std::holds_alternative<swh::net::MsgShutdown>(msg)) {
    } else if (std::holds_alternative<swh::net::MsgNoWorkYet>(msg)) {
    }
}

// Drops MsgNoWorkYet: a newly added (or forgotten) message vanishes
// silently in the final implicit else.
void chain_missing(swh::net::SlaveMsg& msg) {
    if (auto* a = std::get_if<swh::net::MsgAssign>(&msg)) {  // expect: swh-msg-visitor-exhaustive
        (void)a;
    } else if (std::holds_alternative<swh::net::MsgCancel>(msg)) {
    } else if (std::holds_alternative<swh::net::MsgShutdown>(msg)) {
    }
}

// A lone guard peek is not a dispatch; fine.
void chain_single_guard(swh::net::SlaveMsg& msg) {
    if (std::holds_alternative<swh::net::MsgShutdown>(msg)) {
        return;
    }
}

// Non-message variants are out of scope even when incomplete (this
// chain never names other::B, yet stays silent).
void chain_other_variant(other::AB& v) {
    if (std::holds_alternative<other::A>(v)) {
    } else if (std::get_if<other::A>(&v) != nullptr) {
    }
}

// --- std::visit -------------------------------------------------------

// A single generic lambda handles everything by construction. Fine.
void visit_generic(swh::net::SlaveMsg& msg) {
    std::visit([](const auto& m) { (void)m; }, msg);
}

struct FullVisitor {
    void operator()(const swh::net::MsgAssign&);
    void operator()(const swh::net::MsgNoWorkYet&);
    void operator()(const swh::net::MsgCancel&);
    void operator()(const swh::net::MsgShutdown&);
};

void visit_full(swh::net::SlaveMsg& msg) {
    std::visit(FullVisitor{}, msg);
}

struct PartialVisitor {
    void operator()(const swh::net::MsgAssign&);
    void operator()(const swh::net::MsgCancel&);
    void operator()(const swh::net::MsgShutdown&);
};

void visit_partial(swh::net::SlaveMsg& msg) {
    std::visit(PartialVisitor{}, msg);  // expect: swh-msg-visitor-exhaustive
}

struct MixedVisitor {
    void operator()(const swh::net::MsgAssign&);
    template <class T>
    void operator()(const T&);  // absorbs new messages silently
};

void visit_mixed(swh::net::SlaveMsg& msg) {
    std::visit(MixedVisitor{}, msg);  // expect: swh-msg-visitor-exhaustive
}

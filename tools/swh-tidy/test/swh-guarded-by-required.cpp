// Fixture for swh-guarded-by-required. Hermetic: the annotation macros
// are re-spelled here exactly as src/util/annotations.hpp defines them.

#define SWH_CAPABILITY(x) __attribute__((capability(x)))
#define SWH_GUARDED_BY(x) __attribute__((guarded_by(x)))
#define SWH_PT_GUARDED_BY(x) __attribute__((pt_guarded_by(x)))
#define SWH_NOT_GUARDED [[clang::annotate("swh::not_guarded")]]

namespace swh {
class SWH_CAPABILITY("mutex") Mutex {
public:
    void lock();
    void unlock();
};
class CondVar {};
}  // namespace swh

namespace std {
template <class T>
struct atomic {
    T v;
};
}  // namespace std

// --- negative case: everything annotated, const, atomic or opted out --

class GoodCounter {
public:
    void bump();

private:
    swh::Mutex mutex_;
    swh::CondVar cv_;                       // sync primitive: exempt
    int count_ SWH_GUARDED_BY(mutex_) = 0;  // guarded: fine
    int* slot_ SWH_PT_GUARDED_BY(mutex_) = nullptr;
    const int limit_ = 64;                  // const: fine
    std::atomic<int> epoch_{};              // atomic: fine (IgnoreAtomics)
    SWH_NOT_GUARDED int scratch_ = 0;       // explicit opt-out: fine
};

// --- positive case: mutable members the analysis never sees -----------

class BadCounter {
public:
    void bump();

private:
    swh::Mutex mutex_;
    int count_ SWH_GUARDED_BY(mutex_) = 0;
    int stray_ = 0;  // expect: swh-guarded-by-required
    double also_stray_ = 0.0;  // expect: swh-guarded-by-required
};

// --- negative case: no lock owned, nothing required -------------------

struct PlainData {
    int anything = 0;
    double more = 0.0;
};

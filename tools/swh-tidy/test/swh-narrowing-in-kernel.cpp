// Fixture for swh-narrowing-in-kernel. The check only fires in files
// matching KernelFileSuffixes; the harness points that option at this
// fixture via the config line below (%basename expands to the fixture
// file name).
//
// config: KernelFileSuffixes=%basename
// config: AllowedHelpers=saturate_u8

using u8 = unsigned char;
using u16 = unsigned short;
using i16 = short;
using i32 = int;
using u32 = unsigned int;
using u64 = unsigned long long;

// --- positive cases ---------------------------------------------------

u8 lane_u8(u32 acc) {
    return acc;  // expect: swh-narrowing-in-kernel
}

i16 lane_i16(i32 score) {
    i16 clipped = score;  // expect: swh-narrowing-in-kernel
    return clipped;
}

u8 constant_that_truncates() {
    u8 bad = 300;  // expect: swh-narrowing-in-kernel
    return bad;
}

// Narrowing that only materialises at instantiation is still caught.
template <class Lane>
Lane hsum(u64 acc) {
    return acc;  // expect: swh-narrowing-in-kernel
}
u8 call_site(u64 acc) {
    return hsum<u8>(acc);
}

// --- negative cases ---------------------------------------------------

// Explicit casts are the whole point: visible truncation is fine.
i16 lane_clipped(i32 score) {
    return static_cast<i16>(score);
}

// Widening is fine.
u32 widen(u8 v) {
    return v;
}

// Same width, signedness-only change: not a width loss.
u32 sign_only(i32 v) {
    return v;
}

// A constant that provably fits cannot truncate.
u8 bias() {
    u8 b = 128;
    return b;
}

// Allowed helper (AllowedHelpers option): saturation helpers truncate
// by design.
u8 saturate_u8(u32 v) {
    return v;
}

#!/usr/bin/env python3
"""Fixture harness for the swh-tidy plugin checks.

Each fixture is a hermetic translation unit annotated with trailing
``// expect: <check-name>`` comments on the lines where the check must
fire. The harness runs clang-tidy with ONLY that check enabled (plugin
loaded via -load), parses the emitted warnings, and requires the exact
set of (line, check) pairs to match — a missing diagnostic fails the
test exactly like a spurious one, so both halves of every check
(positive and negative cases) are pinned.

Fixtures may carry ``// config: Key=Value`` lines; these become
``<check>.<Key>`` entries in the clang-tidy CheckOptions, with
``%basename`` expanding to the fixture's file name (used to aim
path-suffix options such as KernelFileSuffixes at the fixture itself).

--self-test mode instead verifies that ``clang-tidy -list-checks``
reports all six swh-* checks once the plugin is loaded: a silent
registration failure would otherwise make every gate vacuously green.
"""

import argparse
import os
import re
import subprocess
import sys
import tempfile

ALL_CHECKS = [
    "swh-no-alloc-in-hot-path",
    "swh-raw-sync-primitive",
    "swh-guarded-by-required",
    "swh-check-side-effect",
    "swh-msg-visitor-exhaustive",
    "swh-narrowing-in-kernel",
]

EXPECT_RE = re.compile(r"//\s*expect:\s*([\w.-]+)")
CONFIG_RE = re.compile(r"^//\s*config:\s*([\w.-]+)\s*=\s*(\S+)\s*$")
# clang-tidy diagnostic line: /path/file.cpp:12:5: warning: ... [check-name]
DIAG_RE = re.compile(
    r"^(?P<file>.+?):(?P<line>\d+):(?P<col>\d+): warning: .*\[(?P<checks>[\w.,-]+)\]\s*$"
)
ERROR_RE = re.compile(r": error: ")


def parse_fixture(path):
    """Returns (expected {(line, check)}, config {key: value})."""
    expected = set()
    config = {}
    basename = os.path.basename(path)
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            m = CONFIG_RE.match(line.strip())
            if m:
                config[m.group(1)] = m.group(2).replace("%basename", basename)
                continue
            for m in EXPECT_RE.finditer(line):
                expected.add((lineno, m.group(1)))
    return expected, config


def run_clang_tidy(clang_tidy, plugin, checks, path, config):
    cmd = [clang_tidy, "-load", plugin, f"-checks=-*,{checks}"]
    if config:
        options = ", ".join(
            "{key: '%s', value: '%s'}" % (k, v) for k, v in sorted(config.items())
        )
        cmd.append("-config={CheckOptions: [%s]}" % options)
    cmd += [path, "--", "-std=c++17"]
    proc = subprocess.run(
        cmd, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True
    )
    return cmd, proc


def collect_diags(stdout, fixture_path, check):
    """The (line, check) pairs clang-tidy reported for our check in the
    fixture file. Warnings from other sources (clang-diagnostic-*) are
    deliberately ignored: fixtures are allowed to trip ordinary compiler
    warnings (e.g. -Wconstant-conversion on a truncating constant)."""
    fixture_real = os.path.realpath(fixture_path)
    found = set()
    for line in stdout.splitlines():
        m = DIAG_RE.match(line)
        if not m:
            continue
        if os.path.realpath(m.group("file")) != fixture_real:
            continue
        for name in m.group("checks").split(","):
            if name == check:
                found.add((int(m.group("line")), name))
    return found


def run_fixture(args):
    expected, config = parse_fixture(args.fixture)
    scoped_config = {f"{args.check}.{k}": v for k, v in config.items()}
    cmd, proc = run_clang_tidy(
        args.clang_tidy, args.plugin, args.check, args.fixture, scoped_config
    )
    output = proc.stdout + proc.stderr
    if ERROR_RE.search(output):
        print("fixture failed to compile under clang-tidy:", file=sys.stderr)
        print(" ".join(cmd), file=sys.stderr)
        print(output, file=sys.stderr)
        return 1
    found = collect_diags(proc.stdout, args.fixture, args.check)
    if found == expected:
        print(
            f"OK {args.check}: {len(expected)} expected diagnostics, "
            f"{len(found)} found"
        )
        return 0
    print(f"FAIL {args.check}", file=sys.stderr)
    for line, check in sorted(expected - found):
        print(f"  missing diagnostic at line {line} [{check}]", file=sys.stderr)
    for line, check in sorted(found - expected):
        print(f"  unexpected diagnostic at line {line} [{check}]", file=sys.stderr)
    print("command: " + " ".join(cmd), file=sys.stderr)
    print(output, file=sys.stderr)
    return 1


def run_self_test(args):
    with tempfile.TemporaryDirectory() as tmp:
        stub = os.path.join(tmp, "empty.cpp")
        with open(stub, "w", encoding="utf-8") as f:
            f.write("int swh_tidy_self_test;\n")
        cmd = [
            args.clang_tidy,
            "-load",
            args.plugin,
            "-checks=-*,swh-*",
            "-list-checks",
            stub,
            "--",
            "-std=c++17",
        ]
        proc = subprocess.run(
            cmd, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True
        )
    listed = {
        line.strip() for line in proc.stdout.splitlines() if line.strip()
    }
    missing = [c for c in ALL_CHECKS if c not in listed]
    if proc.returncode != 0 or missing:
        print("FAIL plugin registration self-test", file=sys.stderr)
        if missing:
            print(f"  checks not registered: {', '.join(missing)}", file=sys.stderr)
        print("command: " + " ".join(cmd), file=sys.stderr)
        print(proc.stdout + proc.stderr, file=sys.stderr)
        return 1
    print(f"OK plugin registers all {len(ALL_CHECKS)} swh-* checks")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--clang-tidy", required=True)
    parser.add_argument("--plugin", required=True)
    parser.add_argument("--check", choices=ALL_CHECKS)
    parser.add_argument("--fixture")
    parser.add_argument("--self-test", action="store_true")
    args = parser.parse_args()
    if args.self_test:
        return run_self_test(args)
    if not args.check or not args.fixture:
        parser.error("--check and --fixture are required without --self-test")
    return run_fixture(args)


if __name__ == "__main__":
    sys.exit(main())

// Fixture for swh-no-alloc-in-hot-path. Hermetic: minimal std:: stubs,
// no system headers, the annotation spelled directly (the real macro
// lives in src/util/annotations.hpp).

#define SWH_HOT_PATH [[clang::annotate("swh::hot")]]

extern "C" void* malloc(unsigned long n);

namespace std {
template <class T>
class vector {
public:
    void push_back(const T&);
    void reserve(unsigned long);
    unsigned long size() const;
    const T* data() const;
};
template <class T>
class function;
template <class R, class... A>
class function<R(A...)> {
public:
    template <class F>
    function(F f);  // NOLINT(google-explicit-constructor)
};
}  // namespace std

// --- positive cases: a hot function doing forbidden things ------------

SWH_HOT_PATH int hot_scan(std::vector<int>& out, int x) {
    int* p = new int[4];  // expect: swh-no-alloc-in-hot-path
    void* q = malloc(16);  // expect: swh-no-alloc-in-hot-path
    out.push_back(x);  // expect: swh-no-alloc-in-hot-path
    out.reserve(32);  // expect: swh-no-alloc-in-hot-path
    std::function<int(int)> f = [](int v) { return v; };  // expect: swh-no-alloc-in-hot-path
    if (x < 0)
        throw 1;  // expect: swh-no-alloc-in-hot-path
    return static_cast<int>(out.size()) + (p != nullptr) + (q != nullptr);
}

// --- negative cases ---------------------------------------------------

// Not annotated: setup code may allocate freely.
int cold_setup(std::vector<int>& out) {
    out.reserve(1024);
    out.push_back(7);
    return 0;
}

// Hot, but only reads: no diagnostics.
SWH_HOT_PATH int hot_reader(const std::vector<int>& in) {
    return static_cast<int>(in.size()) + (in.data() != nullptr);
}

// Hot with a justified amortized growth: the NOLINT opt-out works.
SWH_HOT_PATH int hot_amortized(std::vector<int>& out, int x) {
    // NOLINTNEXTLINE(swh-no-alloc-in-hot-path): capacity reserved by caller
    out.push_back(x);
    return 0;
}

// Fixture for swh-check-side-effect. The macros mirror the exact
// expansion shapes of src/util/check.hpp: plain forms expand to
// `if (!(cond)) { fail(...); }`, comparison forms first bind the
// operands as `const auto& swh_check_a_ = (a);`.

namespace swh::check::detail {
void fail(const char* expression, const char* file, unsigned line,
          const char* function, const char* message);
}  // namespace swh::check::detail

#define SWH_CHECK(cond, msg)                                              \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::swh::check::detail::fail(#cond, __FILE__, __LINE__,         \
                                       __func__, (msg));                  \
        }                                                                 \
    } while (false)

#define SWH_CHECK_CMP_(op, a, b, msg)                                     \
    do {                                                                  \
        const auto& swh_check_a_ = (a);                                   \
        const auto& swh_check_b_ = (b);                                   \
        if (!(swh_check_a_ op swh_check_b_)) {                            \
            ::swh::check::detail::fail(#a " " #op " " #b, __FILE__,       \
                                       __LINE__, __func__, (msg));        \
        }                                                                 \
    } while (false)

#define SWH_DCHECK(cond, msg) SWH_CHECK(cond, msg)
#define SWH_DCHECK_EQ(a, b, msg) SWH_CHECK_CMP_(==, a, b, msg)
#define SWH_DCHECK_LE(a, b, msg) SWH_CHECK_CMP_(<=, a, b, msg)
#define SWH_INVARIANT(cond, msg) SWH_CHECK(cond, msg)

struct Queue {
    int pop();  // mutating
    int size() const;
    bool empty() const;
};

void cases(Queue& q, int i) {
    // Pure conditions: fine at any level.
    SWH_DCHECK(q.size() > 0, "pure");
    SWH_DCHECK_EQ(q.size(), 3, "pure");
    SWH_INVARIANT(!q.empty(), "pure");

    // Side effects in compiled-out checks: the debug build behaves
    // differently from release.
    SWH_DCHECK(++i < 10, "mutates i");  // expect: swh-check-side-effect
    SWH_DCHECK(q.pop() == 3, "mutates q");  // expect: swh-check-side-effect
    SWH_DCHECK_EQ(q.pop(), 3, "mutates q");  // expect: swh-check-side-effect
    SWH_DCHECK_LE(i, q.pop(), "mutates q");  // expect: swh-check-side-effect
    SWH_INVARIANT(i = 5, "assigns");  // expect: swh-check-side-effect

    // SWH_CHECK is always on; a side effect there is consistent across
    // build types, so this check leaves it alone.
    SWH_CHECK(q.pop() == 3, "always on");
}

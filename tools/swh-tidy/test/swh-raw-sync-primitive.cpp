// Fixture for swh-raw-sync-primitive. Hermetic std:: stubs; the check
// matches by qualified name and sees through typedefs/aliases.

namespace std {
class mutex {
public:
    void lock();
    void unlock();
};
class condition_variable {};
template <class M>
class lock_guard {
public:
    explicit lock_guard(M& m);
};
template <class M>
class unique_lock {
public:
    explicit unique_lock(M& m);
};
}  // namespace std

namespace swh {
class Mutex {};
class LockGuard {
public:
    explicit LockGuard(Mutex& m);
};
}  // namespace swh

// --- positive cases ---------------------------------------------------

std::mutex g_raw_mutex;  // expect: swh-raw-sync-primitive
std::condition_variable g_raw_cv;  // expect: swh-raw-sync-primitive

struct Holder {
    std::mutex m;  // expect: swh-raw-sync-primitive
};

void locks() {
    static std::mutex local;  // expect: swh-raw-sync-primitive
    std::lock_guard<std::mutex> l(local);  // expect: swh-raw-sync-primitive
}

// Aliases do not launder the type.
using HiddenLock = std::unique_lock<std::mutex>;
void aliased(std::mutex& m) {
    HiddenLock l(m);  // expect: swh-raw-sync-primitive
}

// --- negative cases ---------------------------------------------------

swh::Mutex g_wrapped;

struct GoodHolder {
    swh::Mutex m;
};

void wrapped_locks(swh::Mutex& m) {
    swh::LockGuard l(m);
}

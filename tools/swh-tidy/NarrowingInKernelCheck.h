#pragma once

#include <string>
#include <vector>

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::swh {

/// Flags implicit integer conversions that lose width inside the SIMD
/// kernel headers (*_kernels.hpp). The kernels mix 8/16/32/64-bit lane
/// arithmetic on purpose, and an unintended implicit truncation there is
/// exactly the class of bug that produced the i16 score-clip incidents —
/// silent in the common case, wrong only on long sequences. Every
/// narrowing in a kernel must be a visible static_cast.
///
/// Constants that provably fit the destination type are exempt
/// (`std::uint8_t bias = 128;` narrows int -> u8 but cannot truncate).
///
/// Options:
///   KernelFileSuffixes: semicolon-separated path suffixes defining the
///     kernel zone (default "_kernels.hpp").
///   AllowedHelpers: semicolon-separated qualified function names whose
///     bodies are exempt (empty by default; escape hatch for saturating
///     helpers whose whole point is truncation).
class NarrowingInKernelCheck : public ClangTidyCheck {
public:
  NarrowingInKernelCheck(StringRef Name, ClangTidyContext *Context);

  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
  void storeOptions(ClangTidyOptions::OptionMap &Opts) override;

private:
  std::vector<std::string> KernelFileSuffixes;
  std::vector<std::string> AllowedHelpers;
};

} // namespace clang::tidy::swh

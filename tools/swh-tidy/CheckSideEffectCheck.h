#pragma once

#include <string>
#include <vector>

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::swh {

/// Flags side-effecting expressions inside the compiled-out contract
/// macros (SWH_DCHECK*, SWH_INVARIANT). These macros vanish in release
/// builds, so a condition like `SWH_DCHECK(queue.pop() == expected, ...)`
/// silently changes program behaviour between build types. SWH_CHECK is
/// deliberately exempt: it is always on, so side effects there are
/// merely bad style, not a Heisenbug.
///
/// Only the checked condition (and the operand bindings of the _EQ/_NE/
/// _LE/_GE forms) is inspected — the failure path may do whatever it
/// wants, it only runs when the program is already dead.
///
/// Note: the macro bodies only exist in the AST when they are compiled
/// in, so this check must run on a Debug / SWH_AUDIT configuration (the
/// CI swh-tidy job configures -DCMAKE_BUILD_TYPE=Debug -DSWH_AUDIT=ON).
///
/// Options:
///   CheckedMacros: semicolon-separated macro names to inspect (default
///     "SWH_DCHECK;SWH_DCHECK_EQ;SWH_DCHECK_NE;SWH_DCHECK_LE;"
///     "SWH_DCHECK_GE;SWH_INVARIANT").
///   CheckFunctionCalls: treat calls to free functions and const-unknown
///     callables as side effects too (default false — too noisy for a
///     codebase that checks `x.load()` and `pss.weight(pe)` freely).
class CheckSideEffectCheck : public ClangTidyCheck {
public:
  CheckSideEffectCheck(StringRef Name, ClangTidyContext *Context);

  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
  void storeOptions(ClangTidyOptions::OptionMap &Opts) override;

private:
  void reportSideEffects(const Expr &E, StringRef MacroName,
                         const ASTContext &Ctx);

  std::vector<std::string> CheckedMacros;
  bool CheckFunctionCalls;
};

} // namespace clang::tidy::swh

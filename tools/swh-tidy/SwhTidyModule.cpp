// swh-tidy: the repo's custom clang-tidy module. Built as an
// out-of-tree plugin (MODULE library) and loaded with
//
//   clang-tidy -load libswh-tidy-checks.so -checks='-*,swh-*' ...
//
// The checks mechanically enforce invariants that DESIGN.md otherwise
// states only in prose: the steady-state scan does not allocate, lock
// discipline goes through the annotated swh:: wrappers, compiled-out
// contracts stay side-effect free, message dispatch is exhaustive, and
// kernel integer narrowing is always spelled out.

#include "clang-tidy/ClangTidyModule.h"
#include "clang-tidy/ClangTidyModuleRegistry.h"

#include "CheckSideEffectCheck.h"
#include "GuardedByRequiredCheck.h"
#include "MsgVisitorExhaustiveCheck.h"
#include "NarrowingInKernelCheck.h"
#include "NoAllocInHotPathCheck.h"
#include "RawSyncPrimitiveCheck.h"

namespace clang::tidy {
namespace swh {

class SwhTidyModule : public ClangTidyModule {
public:
  void addCheckFactories(ClangTidyCheckFactories &Factories) override {
    Factories.registerCheck<NoAllocInHotPathCheck>("swh-no-alloc-in-hot-path");
    Factories.registerCheck<RawSyncPrimitiveCheck>("swh-raw-sync-primitive");
    Factories.registerCheck<GuardedByRequiredCheck>("swh-guarded-by-required");
    Factories.registerCheck<CheckSideEffectCheck>("swh-check-side-effect");
    Factories.registerCheck<MsgVisitorExhaustiveCheck>(
        "swh-msg-visitor-exhaustive");
    Factories.registerCheck<NarrowingInKernelCheck>("swh-narrowing-in-kernel");
  }
};

} // namespace swh

static ClangTidyModuleRegistry::Add<swh::SwhTidyModule>
    X("swh-module", "swhybrid invariant checks (swh-*)");

// Referenced from the host binary's registry walk; keeps the linker
// from discarding this TU when the module is linked statically in a
// unit-test harness.
volatile int SwhTidyModuleAnchorSource = 0;

} // namespace clang::tidy

#!/usr/bin/env python3
"""Error-gate driver: runs the swh-tidy plugin checks over the project.

run-clang-tidy cannot forward -load to the clang-tidy it spawns on every
LLVM release we support, so this driver does the same job directly:
read compile_commands.json, filter to first-party translation units, run
``clang-tidy -load <plugin> -checks=-*,swh-* -warnings-as-errors=swh-*``
on each in parallel, and exit non-zero if any file produced a
diagnostic. CI runs this as a required job; locally:

    cmake -B build -S . -DSWH_TIDY=ON -DCMAKE_BUILD_TYPE=Debug -DSWH_AUDIT=ON
    cmake --build build --target swh_tidy_checks
    python3 tools/swh-tidy/run_swh_tidy.py --build-dir build \\
        --plugin build/tools/swh-tidy/libswh-tidy-checks.so

Debug + SWH_AUDIT matters: SWH_DCHECK / SWH_INVARIANT bodies only exist
in the AST when they are compiled in, so a Release configuration would
silently skip the swh-check-side-effect check.
"""

import argparse
import concurrent.futures
import json
import os
import re
import subprocess
import sys

DEFAULT_FILTER = r"/src/.*\.(cpp|cc)$"


def load_entries(build_dir, file_filter):
    db_path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.isfile(db_path):
        print(
            f"error: {db_path} not found; configure with "
            "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON (the top-level CMakeLists "
            "sets it by default)",
            file=sys.stderr,
        )
        return None
    with open(db_path, encoding="utf-8") as f:
        db = json.load(f)
    pattern = re.compile(file_filter)
    files = sorted(
        {
            os.path.realpath(os.path.join(e["directory"], e["file"]))
            for e in db
            if pattern.search(e["file"])
        }
    )
    return files


def tidy_one(clang_tidy, plugin, build_dir, path):
    cmd = [
        clang_tidy,
        "-load",
        plugin,
        "-checks=-*,swh-*",
        "-warnings-as-errors=swh-*",
        "-quiet",
        "-p",
        build_dir,
        path,
    ]
    proc = subprocess.run(
        cmd, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True
    )
    return path, proc.returncode, proc.stdout, proc.stderr


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", required=True)
    parser.add_argument("--plugin", required=True)
    parser.add_argument("--clang-tidy", default="clang-tidy")
    parser.add_argument("--filter", default=DEFAULT_FILTER)
    parser.add_argument("--jobs", type=int, default=os.cpu_count() or 2)
    args = parser.parse_args()

    if not os.path.isfile(args.plugin):
        print(f"error: plugin not found: {args.plugin}", file=sys.stderr)
        return 2
    files = load_entries(args.build_dir, args.filter)
    if files is None:
        return 2
    if not files:
        print("error: no translation units matched the filter", file=sys.stderr)
        return 2

    print(f"swh-tidy: checking {len(files)} translation units "
          f"with {args.jobs} jobs")
    failures = 0
    with concurrent.futures.ThreadPoolExecutor(max_workers=args.jobs) as pool:
        futures = [
            pool.submit(tidy_one, args.clang_tidy, args.plugin,
                        args.build_dir, path)
            for path in files
        ]
        for future in concurrent.futures.as_completed(futures):
            path, code, out, err = future.result()
            if code != 0:
                failures += 1
                rel = os.path.relpath(path)
                print(f"FAIL {rel}", file=sys.stderr)
                sys.stderr.write(out)
                sys.stderr.write(err)
    if failures:
        print(f"swh-tidy: {failures}/{len(files)} translation units failed",
              file=sys.stderr)
        return 1
    print(f"swh-tidy: all {len(files)} translation units clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())

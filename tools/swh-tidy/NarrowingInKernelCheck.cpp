#include "NarrowingInKernelCheck.h"

#include <algorithm>

#include "SwhTidyUtil.h"
#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang::tidy::swh {

NarrowingInKernelCheck::NarrowingInKernelCheck(StringRef Name,
                                               ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      KernelFileSuffixes(
          splitList(Options.get("KernelFileSuffixes", "_kernels.hpp"))),
      AllowedHelpers(splitList(Options.get("AllowedHelpers", ""))) {}

void NarrowingInKernelCheck::storeOptions(ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "KernelFileSuffixes", joinList(KernelFileSuffixes));
  Options.store(Opts, "AllowedHelpers", joinList(AllowedHelpers));
}

void NarrowingInKernelCheck::registerMatchers(MatchFinder *Finder) {
  // Instantiations are matched on purpose: the kernels are templates
  // over the lane type, so some conversions only materialise once the
  // template arguments are known. Identical diagnostics at the same
  // location deduplicate.
  Finder->addMatcher(
      implicitCastExpr(hasCastKind(CK_IntegralCast),
                       unless(isExpansionInSystemHeader()),
                       optionally(hasAncestor(functionDecl().bind("fn"))))
          .bind("cast"),
      this);
}

void NarrowingInKernelCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *Cast = Result.Nodes.getNodeAs<ImplicitCastExpr>("cast");
  if (!Cast)
    return;
  const SourceManager &SM = *Result.SourceManager;
  if (!fileMatchesSuffix(Cast->getBeginLoc(), SM, KernelFileSuffixes))
    return;

  ASTContext &Ctx = *Result.Context;
  const Expr *Sub = Cast->getSubExpr();
  const QualType SrcType = Sub->getType();
  const QualType DstType = Cast->getType();
  if (!SrcType->isIntegerType() || !DstType->isIntegerType())
    return;
  const unsigned SrcWidth = Ctx.getIntWidth(SrcType);
  const unsigned DstWidth = Ctx.getIntWidth(DstType);
  if (DstWidth >= SrcWidth)
    return;

  if (const auto *Fn = Result.Nodes.getNodeAs<FunctionDecl>("fn")) {
    const std::string Name = Fn->getQualifiedNameAsString();
    if (std::find(AllowedHelpers.begin(), AllowedHelpers.end(), Name) !=
        AllowedHelpers.end())
      return;
  }

  // A compile-time constant that fits the destination cannot truncate.
  if (!Sub->isValueDependent()) {
    Expr::EvalResult Eval;
    if (Sub->EvaluateAsInt(Eval, Ctx)) {
      llvm::APSInt Value = Eval.Val.getInt();
      const bool DstSigned = DstType->isSignedIntegerType();
      llvm::APSInt Truncated = Value;
      Truncated = Truncated.extOrTrunc(DstWidth);
      Truncated.setIsSigned(DstSigned);
      Truncated = Truncated.extend(Value.getBitWidth());
      Truncated.setIsSigned(Value.isSigned());
      if (Truncated == Value)
        return;
    }
  }

  diag(Cast->getBeginLoc(),
       "implicit narrowing conversion from %0 (%1 bits) to %2 (%3 bits) in "
       "kernel code; lane-width truncation must be a visible static_cast")
      << SrcType << SrcWidth << DstType << DstWidth;
}

} // namespace clang::tidy::swh

#pragma once

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::swh {

/// In any class that owns an swh::Mutex member, every mutable data
/// member must either carry SWH_GUARDED_BY / SWH_PT_GUARDED_BY or opt
/// out explicitly with SWH_NOT_GUARDED (plus a comment saying why the
/// lock does not cover it). Exempt without annotation: the lock and
/// condition-variable members themselves, const members, references
/// (the referee's owner decides its locking), and std::atomic members
/// when IgnoreAtomics is on.
///
/// Rationale: -Wthread-safety verifies the guarded accesses that ARE
/// annotated; this check closes the dual hole — a member nobody
/// annotated is a member the analysis never looks at.
///
/// Options:
///   IgnoreAtomics: exempt std::atomic<...> members (default true —
///     atomics carry their own ordering story).
class GuardedByRequiredCheck : public ClangTidyCheck {
public:
  GuardedByRequiredCheck(StringRef Name, ClangTidyContext *Context);

  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
  void storeOptions(ClangTidyOptions::OptionMap &Opts) override;

private:
  bool IgnoreAtomics;
};

} // namespace clang::tidy::swh

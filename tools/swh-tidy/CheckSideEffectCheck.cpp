#include "CheckSideEffectCheck.h"

#include "SwhTidyUtil.h"
#include "clang/AST/ASTContext.h"
#include "clang/AST/ExprCXX.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang::tidy::swh {

namespace {

constexpr char DefaultMacros[] =
    "SWH_DCHECK;SWH_DCHECK_EQ;SWH_DCHECK_NE;SWH_DCHECK_LE;SWH_DCHECK_GE;"
    "SWH_INVARIANT";

bool isMutatingOverloadedOperator(OverloadedOperatorKind Op) {
  switch (Op) {
  case OO_Equal:
  case OO_PlusEqual:
  case OO_MinusEqual:
  case OO_StarEqual:
  case OO_SlashEqual:
  case OO_PercentEqual:
  case OO_AmpEqual:
  case OO_PipeEqual:
  case OO_CaretEqual:
  case OO_LessLessEqual:
  case OO_GreaterGreaterEqual:
  case OO_PlusPlus:
  case OO_MinusMinus:
    return true;
  default:
    return false;
  }
}

/// What kind of side effect `E` itself is (children not considered);
/// nullptr when it is pure.
const char *classifySideEffect(const Expr &E, bool CheckFunctionCalls) {
  if (const auto *BO = dyn_cast<BinaryOperator>(&E)) {
    if (BO->isAssignmentOp())
      return "assignment";
    return nullptr;
  }
  if (const auto *UO = dyn_cast<UnaryOperator>(&E)) {
    if (UO->isIncrementDecrementOp())
      return "increment/decrement";
    return nullptr;
  }
  if (const auto *Op = dyn_cast<CXXOperatorCallExpr>(&E)) {
    if (isMutatingOverloadedOperator(Op->getOperator()))
      return "mutating overloaded operator";
    return nullptr;
  }
  if (isa<CXXNewExpr>(E) || isa<CXXDeleteExpr>(E))
    return "allocation";
  if (const auto *MC = dyn_cast<CXXMemberCallExpr>(&E)) {
    const CXXMethodDecl *M = MC->getMethodDecl();
    if (M && !M->isConst() && !M->isStatic())
      return "non-const member call";
    return nullptr;
  }
  if (CheckFunctionCalls) {
    if (const auto *Call = dyn_cast<CallExpr>(&E)) {
      if (!isa<CXXOperatorCallExpr>(Call) && !isa<CXXMemberCallExpr>(Call))
        return "function call";
    }
  }
  return nullptr;
}

} // namespace

CheckSideEffectCheck::CheckSideEffectCheck(StringRef Name,
                                           ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      CheckedMacros(splitList(Options.get("CheckedMacros", DefaultMacros))),
      CheckFunctionCalls(Options.get("CheckFunctionCalls", false)) {}

void CheckSideEffectCheck::storeOptions(ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "CheckedMacros", joinList(CheckedMacros));
  Options.store(Opts, "CheckFunctionCalls", CheckFunctionCalls);
}

void CheckSideEffectCheck::registerMatchers(MatchFinder *Finder) {
  // SWH_DCHECK(cond, msg) expands to `if (!(cond)) { fail(...); }`; the
  // _EQ/_NE/_LE/_GE forms first bind `const auto& swh_check_a_ = (a);`
  // etc. Both shapes are matched and filtered by macro name in check().
  // Template instantiations are matched on purpose — the kernels are
  // templates — and identical diagnostics deduplicate by location.
  Finder->addMatcher(ifStmt().bind("if"), this);
  Finder->addMatcher(declStmt(hasSingleDecl(varDecl().bind("binding"))), this);
}

void CheckSideEffectCheck::reportSideEffects(const Expr &E,
                                             StringRef MacroName,
                                             const ASTContext &Ctx) {
  if (const char *Kind =
          classifySideEffect(E, CheckFunctionCalls)) {
    diag(E.getBeginLoc(),
         "%0 inside %1; the macro compiles out in release builds, so this "
         "side effect only happens in debug/audit runs — hoist it out of "
         "the check")
        << Kind << MacroName;
  }
  for (const Stmt *Child : E.children())
    if (const auto *CE = dyn_cast_or_null<Expr>(Child))
      reportSideEffects(*CE, MacroName, Ctx);
}

void CheckSideEffectCheck::check(const MatchFinder::MatchResult &Result) {
  const SourceManager &SM = *Result.SourceManager;
  const LangOptions &LangOpts = Result.Context->getLangOpts();

  if (const auto *If = Result.Nodes.getNodeAs<IfStmt>("if")) {
    const SourceLocation Loc = If->getBeginLoc();
    if (!Loc.isMacroID())
      return;
    const std::string Macro =
        outermostMacroNamed(Loc, SM, LangOpts, CheckedMacros);
    if (Macro.empty())
      return;
    if (const Expr *Cond = If->getCond())
      reportSideEffects(*Cond, Macro, *Result.Context);
    return;
  }

  if (const auto *Binding = Result.Nodes.getNodeAs<VarDecl>("binding")) {
    // Operand bindings of the comparison forms: the user-supplied
    // expressions (a) and (b) live in these initializers.
    if (!Binding->getName().starts_with("swh_check_"))
      return;
    const SourceLocation Loc = Binding->getLocation();
    if (!Loc.isMacroID())
      return;
    const std::string Macro =
        outermostMacroNamed(Loc, SM, LangOpts, CheckedMacros);
    if (Macro.empty())
      return;
    if (const Expr *Init = Binding->getInit())
      reportSideEffects(*Init, Macro, *Result.Context);
  }
}

} // namespace clang::tidy::swh

#include "GuardedByRequiredCheck.h"

#include "SwhTidyUtil.h"
#include "clang/AST/ASTContext.h"
#include "clang/AST/Attr.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang::tidy::swh {

namespace {

/// Qualified name of the field's desugared class type, empty for
/// non-record types.
std::string fieldClassName(const FieldDecl &F) {
  const auto *RT = F.getType()
                       .getCanonicalType()
                       .getNonReferenceType()
                       ->getAs<RecordType>();
  if (!RT)
    return std::string();
  return RT->getDecl()->getQualifiedNameAsString();
}

bool isSyncPrimitiveField(const FieldDecl &F) {
  const std::string Name = fieldClassName(F);
  return Name == "swh::Mutex" || Name == "swh::CondVar" ||
         Name == "std::mutex" || Name == "std::condition_variable" ||
         Name == "std::condition_variable_any";
}

bool isAtomicField(const FieldDecl &F) {
  if (F.getType().getCanonicalType()->isAtomicType())
    return true; // _Atomic / std::atomic on some ABIs
  const std::string Name = fieldClassName(F);
  return Name.rfind("std::atomic", 0) == 0;
}

} // namespace

GuardedByRequiredCheck::GuardedByRequiredCheck(StringRef Name,
                                               ClangTidyContext *Context)
    : ClangTidyCheck(Name, Context),
      IgnoreAtomics(Options.get("IgnoreAtomics", true)) {}

void GuardedByRequiredCheck::storeOptions(ClangTidyOptions::OptionMap &Opts) {
  Options.store(Opts, "IgnoreAtomics", IgnoreAtomics);
}

void GuardedByRequiredCheck::registerMatchers(MatchFinder *Finder) {
  Finder->addMatcher(
      cxxRecordDecl(
          isDefinition(), unless(isExpansionInSystemHeader()),
          unless(isInTemplateInstantiation()),
          has(fieldDecl(hasType(hasUnqualifiedDesugaredType(recordType(
                            hasDeclaration(namedDecl(hasName("::swh::Mutex")))))))
                  .bind("mutex")))
          .bind("record"),
      this);
}

void GuardedByRequiredCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *Record = Result.Nodes.getNodeAs<CXXRecordDecl>("record");
  const auto *Mutex = Result.Nodes.getNodeAs<FieldDecl>("mutex");
  if (!Record || !Mutex)
    return;

  for (const FieldDecl *F : Record->fields()) {
    if (F->hasAttr<GuardedByAttr>() || F->hasAttr<PtGuardedByAttr>())
      continue;
    if (hasAnnotation(*F, "swh::not_guarded"))
      continue;
    if (isSyncPrimitiveField(*F))
      continue;
    const QualType T = F->getType();
    if (T.isConstQualified())
      continue; // immutable after construction
    if (T->isReferenceType())
      continue; // locking belongs to the referee's owner
    if (IgnoreAtomics && isAtomicField(*F))
      continue;
    if (F->isAnonymousStructOrUnion())
      continue;
    diag(F->getLocation(),
         "mutable member %0 of %1 (which owns swh::Mutex %2) has no "
         "SWH_GUARDED_BY; annotate it, make it const, or opt out with "
         "SWH_NOT_GUARDED and a comment explaining the ownership")
        << F << Record << Mutex;
  }
}

} // namespace clang::tidy::swh

#pragma once

#include <string>
#include <vector>

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::swh {

/// Bans raw std:: synchronisation primitives (mutexes, locks, condition
/// variables) outside the annotated wrapper layer. The codebase's lock
/// discipline is enforced by Clang thread-safety analysis, which only
/// sees capabilities through swh::Mutex / swh::LockGuard / swh::CondVar
/// (src/util/annotations.hpp) — a raw std::mutex member is invisible to
/// it, so every guarded-by relationship on that lock goes unchecked.
///
/// Options:
///   AllowedFiles: semicolon-separated path suffixes exempt from the
///     check (default "util/annotations.hpp", the wrapper layer itself).
class RawSyncPrimitiveCheck : public ClangTidyCheck {
public:
  RawSyncPrimitiveCheck(StringRef Name, ClangTidyContext *Context);

  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
  void storeOptions(ClangTidyOptions::OptionMap &Opts) override;

private:
  std::vector<std::string> AllowedFiles;
};

} // namespace clang::tidy::swh

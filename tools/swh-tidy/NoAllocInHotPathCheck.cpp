#include "NoAllocInHotPathCheck.h"

#include "SwhTidyUtil.h"
#include "clang/AST/ASTContext.h"
#include "clang/ASTMatchers/ASTMatchFinder.h"

using namespace clang::ast_matchers;

namespace clang::tidy::swh {

void NoAllocInHotPathCheck::registerMatchers(MatchFinder *Finder) {
  // Instantiations are matched too: the scanner/kernel hot functions
  // are templates, and clang-tidy deduplicates identical diagnostics
  // at the same location across instantiations.
  const auto InHot =
      hasAncestor(functionDecl(matchers::isSwhHotPath()).bind("hot"));

  Finder->addMatcher(cxxNewExpr(InHot).bind("new"), this);
  Finder->addMatcher(cxxThrowExpr(InHot).bind("throw"), this);
  Finder->addMatcher(
      callExpr(InHot,
               callee(functionDecl(hasAnyName(
                   "::malloc", "::calloc", "::realloc", "::free",
                   "::aligned_alloc", "::posix_memalign", "::strdup",
                   "::operator new", "::operator new[]")))
                   .bind("allocfn"))
          .bind("alloccall"),
      this);
  Finder->addMatcher(
      cxxMemberCallExpr(
          InHot,
          callee(cxxMethodDecl(
                     hasAnyName("push_back", "emplace_back", "push_front",
                                "emplace_front", "insert", "emplace",
                                "emplace_hint", "resize", "reserve", "assign",
                                "append", "shrink_to_fit"),
                     ofClass(cxxRecordDecl(isInStdNamespace())))
                     .bind("containerfn"))
              .bind("container")),
      this);
  Finder->addMatcher(
      cxxConstructExpr(
          InHot, hasDeclaration(cxxConstructorDecl(ofClass(
                     classTemplateSpecializationDecl(hasName("::std::function"))))))
          .bind("stdfunction"),
      this);
}

void NoAllocInHotPathCheck::check(const MatchFinder::MatchResult &Result) {
  const auto *Hot = Result.Nodes.getNodeAs<FunctionDecl>("hot");
  if (!Hot)
    return;

  if (const auto *New = Result.Nodes.getNodeAs<CXXNewExpr>("new")) {
    diag(New->getBeginLoc(),
         "operator new in SWH_HOT_PATH function %0; the steady-state scan "
         "must not allocate — reuse caller-owned scratch, or opt out with "
         "NOLINT(swh-no-alloc-in-hot-path) and a reason")
        << Hot;
    return;
  }
  if (const auto *Throw = Result.Nodes.getNodeAs<CXXThrowExpr>("throw")) {
    diag(Throw->getBeginLoc(),
         "throw in SWH_HOT_PATH function %0; raise contract failures via "
         "SWH_CHECK (outlined fail path) instead of unwinding the kernel")
        << Hot;
    return;
  }
  if (const auto *Call = Result.Nodes.getNodeAs<CallExpr>("alloccall")) {
    const auto *Fn = Result.Nodes.getNodeAs<FunctionDecl>("allocfn");
    diag(Call->getBeginLoc(),
         "call to allocator %0 in SWH_HOT_PATH function %1; the "
         "steady-state scan must not allocate")
        << Fn << Hot;
    return;
  }
  if (const auto *Call =
          Result.Nodes.getNodeAs<CXXMemberCallExpr>("container")) {
    const auto *Fn = Result.Nodes.getNodeAs<CXXMethodDecl>("containerfn");
    diag(Call->getBeginLoc(),
         "potentially allocating container call %0 in SWH_HOT_PATH function "
         "%1; pre-reserve outside the hot path, or opt out with "
         "NOLINT(swh-no-alloc-in-hot-path) and the amortization argument")
        << Fn << Hot;
    return;
  }
  if (const auto *Ctor =
          Result.Nodes.getNodeAs<CXXConstructExpr>("stdfunction")) {
    diag(Ctor->getBeginLoc(),
         "std::function constructed in SWH_HOT_PATH function %0; type "
         "erasure allocates — take a template callable or function_ref "
         "instead")
        << Hot;
  }
}

} // namespace clang::tidy::swh

#pragma once

#include "clang-tidy/ClangTidyCheck.h"

namespace clang::tidy::swh {

/// Flags constructs that can allocate or unwind inside a function
/// annotated SWH_HOT_PATH ([[clang::annotate("swh::hot")]]):
///   * operator new / new[] expressions,
///   * calls to the C allocator family (malloc/calloc/realloc/free/...),
///   * allocating member calls on std:: containers (push_back, insert,
///     resize, reserve, assign, append, ...),
///   * std::function construction (type-erased thunks allocate),
///   * throw expressions (contract failures must route through the
///     outlined swh::check::detail::fail instead).
///
/// Intentional amortized growth sites opt out with
/// NOLINT(swh-no-alloc-in-hot-path) plus a reason comment.
///
/// Known blind spot (by design): calls to unannotated functions that
/// allocate internally (e.g. ScanScratch::ensure) are not chased
/// interprocedurally — annotate the callee if it matters.
class NoAllocInHotPathCheck : public ClangTidyCheck {
public:
  NoAllocInHotPathCheck(StringRef Name, ClangTidyContext *Context)
      : ClangTidyCheck(Name, Context) {}

  bool isLanguageVersionSupported(const LangOptions &LangOpts) const override {
    return LangOpts.CPlusPlus;
  }
  void registerMatchers(ast_matchers::MatchFinder *Finder) override;
  void check(const ast_matchers::MatchFinder::MatchResult &Result) override;
};

} // namespace clang::tidy::swh

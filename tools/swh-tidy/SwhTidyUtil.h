#pragma once

// Shared helpers for the swh-tidy checks. Header-only on purpose: the
// plugin is a single MODULE library and these are a handful of small
// functions.

#include <string>
#include <vector>

#include "clang-tidy/ClangTidyCheck.h"
#include "clang/AST/Attr.h"
#include "clang/AST/Decl.h"
#include "clang/ASTMatchers/ASTMatchers.h"
#include "clang/Basic/SourceManager.h"
#include "clang/Lex/Lexer.h"
#include "llvm/ADT/StringRef.h"

namespace clang::tidy::swh {

/// True if `D` (or a prior redeclaration it inherited attributes from)
/// carries [[clang::annotate("<tag>")]].
inline bool hasAnnotation(const Decl &D, llvm::StringRef Tag) {
  for (const auto *A : D.specific_attrs<AnnotateAttr>())
    if (A->getAnnotation() == Tag)
      return true;
  return false;
}

/// Splits a semicolon-separated check option into its entries.
inline std::vector<std::string> splitList(llvm::StringRef Value) {
  std::vector<std::string> Out;
  llvm::SmallVector<llvm::StringRef, 8> Parts;
  Value.split(Parts, ';', /*MaxSplit=*/-1, /*KeepEmpty=*/false);
  for (llvm::StringRef P : Parts) {
    P = P.trim();
    if (!P.empty())
      Out.emplace_back(P.str());
  }
  return Out;
}

/// Re-joins a list for storeOptions round-tripping.
inline std::string joinList(const std::vector<std::string> &Items) {
  std::string Out;
  for (const auto &I : Items) {
    if (!Out.empty())
      Out += ';';
    Out += I;
  }
  return Out;
}

/// Presumed file name of `Loc` after macro expansion, empty if invalid.
inline llvm::StringRef expansionFile(SourceLocation Loc,
                                     const SourceManager &SM) {
  if (Loc.isInvalid())
    return llvm::StringRef();
  return SM.getFilename(SM.getExpansionLoc(Loc));
}

/// True if the expansion file of `Loc` ends with any of `Suffixes`
/// (path-separator aware: "util/annotations.hpp" matches
/// ".../src/util/annotations.hpp" but not ".../xutil/annotations.hpp").
inline bool fileMatchesSuffix(SourceLocation Loc, const SourceManager &SM,
                              const std::vector<std::string> &Suffixes) {
  llvm::StringRef File = expansionFile(Loc, SM);
  if (File.empty())
    return false;
  for (const auto &Suffix : Suffixes) {
    if (!File.ends_with(Suffix))
      continue;
    if (File.size() == Suffix.size())
      return true;
    const char Before = File[File.size() - Suffix.size() - 1];
    if (Before == '/' || Before == '\\')
      return true;
  }
  return false;
}

/// Walks the macro-caller chain of `Loc` and returns true if any layer
/// was spelled by a macro named in `Names`.
inline bool insideMacroNamed(SourceLocation Loc, const SourceManager &SM,
                             const LangOptions &LangOpts,
                             const std::vector<std::string> &Names) {
  while (Loc.isMacroID()) {
    const llvm::StringRef Name =
        Lexer::getImmediateMacroName(Loc, SM, LangOpts);
    for (const auto &N : Names)
      if (Name == N)
        return true;
    Loc = SM.getImmediateMacroCallerLoc(Loc);
  }
  return false;
}

/// Outermost macro from `Names` enclosing `Loc` (for diagnostics);
/// empty when none.
inline std::string outermostMacroNamed(SourceLocation Loc,
                                       const SourceManager &SM,
                                       const LangOptions &LangOpts,
                                       const std::vector<std::string> &Names) {
  std::string Found;
  while (Loc.isMacroID()) {
    const llvm::StringRef Name =
        Lexer::getImmediateMacroName(Loc, SM, LangOpts);
    for (const auto &N : Names)
      if (Name == N)
        Found = N;
    Loc = SM.getImmediateMacroCallerLoc(Loc);
  }
  return Found;
}

namespace matchers {
AST_MATCHER(FunctionDecl, isSwhHotPath) {
  return hasAnnotation(Node, "swh::hot");
}
} // namespace matchers

} // namespace clang::tidy::swh

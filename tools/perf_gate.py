#!/usr/bin/env python3
"""Perf-regression gate over bench_scan's machine-independent ratios.

Compares a freshly produced bench_scan --json report against the
checked-in BENCH_scan.json baseline. Absolute GCUPS depend on the
machine (the "host" block in the fresh report says which one), so the
gate only checks speedup *ratios* — interseq-vs-striped and
funnel-vs-exact geomeans — which track the code, not the silicon.

A ratio regresses when fresh < baseline * (1 - tolerance). The
tolerance is deliberately generous (default 0.40): CI boxes are noisy,
short runs double so, and the gate exists to catch "the funnel stopped
helping", not 5% drift. Improvements never fail the gate.

Usage: perf_gate.py FRESH.json [--baseline BENCH_scan.json]
                    [--tolerance 0.40]
Exit status: 0 pass, 1 regression, 2 bad input.
"""

import argparse
import json
import sys

# Gated keys: geomean ratios only. speedup_best is excluded — a single
# best-case config is too noisy to gate on.
RATIO_KEYS = [
    "speedup_geomean",
    "speedup_geomean_short",
    "speedup_geomean_long",
    "funnel_speedup_geomean",
    "funnel_speedup_geomean_short",
]


def load(path):
    try:
        with open(path, encoding="utf-8") as fh:
            return json.load(fh)
    except (OSError, ValueError) as exc:
        print(f"perf_gate: cannot read {path}: {exc}", file=sys.stderr)
        sys.exit(2)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", help="bench_scan --json output to check")
    parser.add_argument("--baseline", default="BENCH_scan.json",
                        help="checked-in baseline (default BENCH_scan.json)")
    parser.add_argument("--tolerance", type=float, default=0.40,
                        help="allowed relative shortfall (default 0.40)")
    args = parser.parse_args()
    if not 0.0 <= args.tolerance < 1.0:
        print("perf_gate: --tolerance must be in [0, 1)", file=sys.stderr)
        sys.exit(2)

    fresh = load(args.fresh)
    base = load(args.baseline)

    host = fresh.get("host", {})
    if host:
        print(f"perf_gate: fresh run on {host.get('cpu_model', '?')} "
              f"({host.get('hardware_threads', '?')} threads, "
              f"{host.get('compiler', '?')}, "
              f"sha {host.get('git_sha', '?')})")

    # Validate both reports up front: every gated key must be present
    # and numeric in both files, and ALL problems are reported in one
    # pass — a truncated or stale report is bad input (exit 2), never a
    # silent skip that lets a regression through unmeasured.
    input_errors = []
    for name, path, report in (("baseline", args.baseline, base),
                               ("fresh", args.fresh, fresh)):
        for key in RATIO_KEYS:
            if key not in report:
                input_errors.append(
                    f"{name} {path}: missing summary field '{key}' "
                    "(regenerate with bench_scan --json)")
                continue
            try:
                float(report[key])
            except (TypeError, ValueError):
                input_errors.append(
                    f"{name} {path}: summary field '{key}' is not a "
                    f"number (got {report[key]!r})")
    if input_errors:
        print("perf_gate: bad input", file=sys.stderr)
        for msg in input_errors:
            print(f"  {msg}", file=sys.stderr)
        sys.exit(2)

    failures = []
    for key in RATIO_KEYS:
        b, f = float(base[key]), float(fresh[key])
        floor = b * (1.0 - args.tolerance)
        verdict = "ok" if f >= floor else "REGRESSED"
        print(f"  {key:32s} baseline {b:7.4f}  fresh {f:7.4f}  "
              f"floor {floor:7.4f}  {verdict}")
        if f < floor:
            failures.append(
                f"{key}: {f:.4f} < floor {floor:.4f} "
                f"(baseline {b:.4f}, tolerance {args.tolerance:.2f})")

    if failures:
        print("perf_gate: FAIL", file=sys.stderr)
        for msg in failures:
            print(f"  {msg}", file=sys.stderr)
        sys.exit(1)
    print("perf_gate: pass")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Subprocess tests for tools/perf_gate.py input validation and verdicts.

Wired as an always-on ctest entry: the gate's failure modes (exit 2 on
bad input with per-field messages, exit 1 on regression, exit 0 on
pass) are contract, not incidental behaviour — CI scripts branch on
them.
"""

import json
import os
import subprocess
import sys
import tempfile

GATE = os.path.join(os.path.dirname(os.path.abspath(__file__)), "perf_gate.py")

RATIO_KEYS = [
    "speedup_geomean",
    "speedup_geomean_short",
    "speedup_geomean_long",
    "funnel_speedup_geomean",
    "funnel_speedup_geomean_short",
]

FAILURES = []


def full_report(value=2.0):
    return {key: value for key in RATIO_KEYS}


def run_gate(tmp, fresh, baseline, extra_args=()):
    fresh_path = os.path.join(tmp, "fresh.json")
    base_path = os.path.join(tmp, "BENCH_scan.json")
    with open(fresh_path, "w", encoding="utf-8") as f:
        json.dump(fresh, f)
    with open(base_path, "w", encoding="utf-8") as f:
        json.dump(baseline, f)
    return subprocess.run(
        [sys.executable, GATE, fresh_path, "--baseline", base_path,
         *extra_args],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )


def expect(name, condition, detail):
    if condition:
        print(f"  ok: {name}")
    else:
        FAILURES.append(name)
        print(f"  FAIL: {name}\n    {detail}", file=sys.stderr)


def main():
    with tempfile.TemporaryDirectory() as tmp:
        # Happy path: identical reports pass.
        proc = run_gate(tmp, full_report(), full_report())
        expect("identical reports pass", proc.returncode == 0,
               f"exit={proc.returncode} stderr={proc.stderr!r}")

        # Regression: fresh far below baseline fails with exit 1.
        proc = run_gate(tmp, full_report(0.5), full_report(2.0))
        expect("regression exits 1", proc.returncode == 1,
               f"exit={proc.returncode} stderr={proc.stderr!r}")
        expect("regression names the floor", "floor" in proc.stderr,
               f"stderr={proc.stderr!r}")

        # Improvement never fails.
        proc = run_gate(tmp, full_report(4.0), full_report(2.0))
        expect("improvement passes", proc.returncode == 0,
               f"exit={proc.returncode} stderr={proc.stderr!r}")

        # Missing field in the baseline: exit 2 and the message names
        # the file role AND the field.
        broken = full_report()
        del broken["funnel_speedup_geomean"]
        proc = run_gate(tmp, full_report(), broken)
        expect("missing baseline field exits 2", proc.returncode == 2,
               f"exit={proc.returncode} stderr={proc.stderr!r}")
        expect("message names baseline and field",
               "baseline" in proc.stderr
               and "funnel_speedup_geomean" in proc.stderr,
               f"stderr={proc.stderr!r}")

        # Missing field in the fresh report: same contract.
        broken = full_report()
        del broken["speedup_geomean_short"]
        proc = run_gate(tmp, broken, full_report())
        expect("missing fresh field exits 2", proc.returncode == 2,
               f"exit={proc.returncode} stderr={proc.stderr!r}")
        expect("message names fresh and field",
               "fresh" in proc.stderr
               and "speedup_geomean_short" in proc.stderr,
               f"stderr={proc.stderr!r}")

        # ALL problems reported in one pass, not just the first.
        broken = full_report()
        del broken["speedup_geomean"]
        del broken["speedup_geomean_long"]
        proc = run_gate(tmp, full_report(), broken)
        expect("all missing fields listed",
               "speedup_geomean" in proc.stderr
               and "speedup_geomean_long" in proc.stderr,
               f"stderr={proc.stderr!r}")

        # Non-numeric field: exit 2, names the offender.
        broken = full_report()
        broken["speedup_geomean"] = "fast"
        proc = run_gate(tmp, broken, full_report())
        expect("non-numeric field exits 2", proc.returncode == 2,
               f"exit={proc.returncode} stderr={proc.stderr!r}")
        expect("non-numeric message names field",
               "speedup_geomean" in proc.stderr and "fast" in proc.stderr,
               f"stderr={proc.stderr!r}")

        # Unreadable file: exit 2.
        proc = subprocess.run(
            [sys.executable, GATE, os.path.join(tmp, "nope.json")],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        expect("unreadable fresh file exits 2", proc.returncode == 2,
               f"exit={proc.returncode} stderr={proc.stderr!r}")

        # Bad tolerance: exit 2.
        proc = run_gate(tmp, full_report(), full_report(),
                        extra_args=("--tolerance", "1.5"))
        expect("out-of-range tolerance exits 2", proc.returncode == 2,
               f"exit={proc.returncode} stderr={proc.stderr!r}")

    if FAILURES:
        print(f"test_perf_gate: {len(FAILURES)} failure(s)", file=sys.stderr)
        return 1
    print("test_perf_gate: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())

// swhybrid_search — command-line protein database search, the tool a
// downstream user would actually run. Wires together the whole library:
// indexed FASTA input, the hybrid master/slave runtime with selectable
// allocation policy and workload adjustment, and Gumbel statistics for
// E-values.
//
//   swhybrid_search queries.fa database.fa --slaves gpu:1,sse:2 --top 5
//
// Run with --generate-demo to create a small query/database pair first.

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>

#include "align/evalue.hpp"
#include "align/local_align.hpp"
#include "db/database.hpp"
#include "db/presets.hpp"
#include "engines/cpu_engine.hpp"
#include "engines/faulty_engine.hpp"
#include "engines/sim_gpu_engine.hpp"
#include "io/fasta.hpp"
#include "io/indexed.hpp"
#include "obs/balance.hpp"
#include "obs/dashboard.hpp"
#include "obs/metrics.hpp"
#include "obs/prometheus.hpp"
#include "obs/sampler.hpp"
#include "obs/sched_log.hpp"
#include "obs/trace.hpp"
#include "runtime/hybrid_runtime.hpp"
#include "runtime/remote.hpp"
#include "util/args.hpp"
#include "util/str.hpp"
#include "util/table.hpp"

using namespace swh;

namespace {

std::unique_ptr<core::AllocationPolicy> make_policy(const std::string& name) {
    if (name == "ss") return core::make_self_scheduling();
    if (name == "pss") return core::make_pss();
    if (name == "fixed") return core::make_fixed();
    if (name == "wfixed") {
        return core::make_wfixed(
            {{core::PeKind::Gpu, 16.0}, {core::PeKind::SseCore, 1.0}});
    }
    throw ContractError("unknown policy: " + name +
                        " (expected ss|pss|fixed|wfixed)");
}

/// Parses "gpu:1,sse:2" into slave specs.
std::vector<runtime::SlaveSpec> make_slaves(
    const std::string& spec, const engines::EngineConfig& config) {
    std::vector<runtime::SlaveSpec> slaves;
    for (const std::string& part : split(spec, ',')) {
        const std::vector<std::string> kv = split(part, ':');
        SWH_REQUIRE(kv.size() == 2, "slave spec must look like kind:count");
        const long long count = std::stoll(kv[1]);
        SWH_REQUIRE(count >= 0 && count <= 64, "unreasonable slave count");
        for (long long i = 0; i < count; ++i) {
            const std::string label = kv[0] + std::to_string(i);
            if (kv[0] == "gpu") {
                slaves.push_back(runtime::SlaveSpec{
                    label, std::make_unique<engines::SimGpuEngine>(
                               config, engines::GpuDeviceModel{},
                               /*pace=*/false)});
            } else if (kv[0] == "sse") {
                slaves.push_back(runtime::SlaveSpec{
                    label, std::make_unique<engines::CpuEngine>(config)});
            } else {
                throw ContractError("unknown slave kind: " + kv[0]);
            }
        }
    }
    SWH_REQUIRE(!slaves.empty(), "no slaves configured");
    return slaves;
}

engines::FaultKind parse_fault_kind(const std::string& name) {
    if (name == "throw") return engines::FaultKind::Throw;
    if (name == "crash") return engines::FaultKind::Crash;
    if (name == "stall") return engines::FaultKind::Stall;
    if (name == "slow") return engines::FaultKind::Slow;
    throw ContractError("unknown fault kind: " + name +
                        " (expected throw|crash|stall|slow)");
}

/// Parses "--fault sse0=crash@50000,gpu0=throw" and wraps the named
/// slaves' engines in fault-injecting decorators. Each decorator gets a
/// distinct stream split off the base seed so runs replay exactly.
void apply_faults(std::vector<runtime::SlaveSpec>& slaves,
                  const std::string& spec, std::uint64_t seed) {
    if (spec.empty()) return;
    std::uint64_t stream = 0;
    for (const std::string& part : split(spec, ',')) {
        const std::vector<std::string> kv = split(part, '=');
        SWH_REQUIRE(kv.size() == 2,
                    "fault spec must look like label=kind[@cells]");
        const std::vector<std::string> ka = split(kv[1], '@');
        SWH_REQUIRE(ka.size() <= 2,
                    "fault spec must look like label=kind[@cells]");
        engines::FaultPlan plan;
        plan.kind = parse_fault_kind(ka[0]);
        if (ka.size() == 2) {
            plan.after_cells =
                static_cast<std::uint64_t>(std::stoull(ka[1]));
        }
        plan.seed = seed + stream++;
        bool found = false;
        for (runtime::SlaveSpec& s : slaves) {
            if (s.label != kv[0]) continue;
            s.engine = std::make_unique<engines::FaultyEngine>(
                std::move(s.engine), plan);
            found = true;
            break;
        }
        if (!found) {
            throw ContractError("no slave labelled " + kv[0] +
                                " to inject a fault into");
        }
    }
}

void generate_demo(const std::string& query_path,
                   const std::string& db_path) {
    Rng rng(20130527);
    db::DatabaseSpec spec;
    spec.name = "demo_db";
    spec.num_sequences = 500;
    spec.seed = 1;
    db::Database database = db::Database::generate(spec);

    // Queries: some random, some mutated copies of database entries so
    // the search has true positives.
    std::vector<align::Sequence> queries;
    for (int i = 0; i < 3; ++i) {
        queries.push_back(
            db::random_protein(rng, 150 + 100 * i, "random_" +
                                                       std::to_string(i)));
    }
    for (int i = 0; i < 3; ++i) {
        const align::Sequence& source = database[50 + 100 * i];
        align::Sequence q = db::mutate(source, align::Alphabet::protein(),
                                       db::MutationModel{0.1, 0.02, 0.02},
                                       rng);
        q.id = "homolog_of_" + source.id;
        queries.push_back(std::move(q));
    }
    io::write_fasta_file(query_path, queries, align::Alphabet::protein());
    io::write_fasta_file(db_path, database.sequences(),
                         align::Alphabet::protein());
    std::cout << "wrote " << queries.size() << " queries to " << query_path
              << " and " << database.size() << " sequences to " << db_path
              << '\n';
}

}  // namespace

int main(int argc, char** argv) {
    ArgParser args("swhybrid_search",
                   "Smith-Waterman protein database search on a hybrid "
                   "(simulated-GPU + SSE) platform");
    args.add_positional("queries", "FASTA file of query sequences",
                        "queries.fa");
    args.add_positional("database", "FASTA file of database sequences",
                        "database.fa");
    args.add_option("slaves", "platform spec, e.g. gpu:1,sse:2",
                    "gpu:1,sse:1");
    args.add_option("transport",
                    "slave transport: inproc (threads) or socket "
                    "(separate swhybrid_slave processes over loopback TCP)",
                    "inproc");
    args.add_option("port",
                    "with --transport=socket: TCP port to listen on "
                    "(0 picks a free one and prints it)",
                    "0");
    args.add_option("expect-slaves",
                    "with --transport=socket: start once this many slave "
                    "processes have connected",
                    "1");
    args.add_option("accept-timeout",
                    "with --transport=socket: give up on missing slaves "
                    "after this many seconds",
                    "30");
    args.add_option("policy", "allocation policy: ss|pss|fixed|wfixed",
                    "pss");
    args.add_option("top", "hits to report per query", "5");
    args.add_option("gap-open", "gap open penalty", "10");
    args.add_option("gap-extend", "gap extension penalty", "2");
    args.add_option("max-evalue", "suppress hits above this E-value",
                    "10");
    args.add_option("matrix", "NCBI-format matrix file, or 'blosum62'",
                    "blosum62");
    args.add_option("out", "also write hits as BLAST-style TSV here", "");
    args.add_flag("align", "print the best hit's alignment per query");
    args.add_flag("no-adjust", "disable the workload-adjustment mechanism");
    args.add_flag("generate-demo", "write demo query/database files and exit");
    args.add_option("liveness-timeout",
                    "declare a slave dead after this many seconds of "
                    "silence and requeue its tasks (0 = off)",
                    "0");
    args.add_option("heartbeat",
                    "idle-slave heartbeat period in seconds (used only "
                    "with --liveness-timeout)",
                    "0.05");
    args.add_option("retries",
                    "engine-failure retries per task before it is "
                    "reported as failed",
                    "3");
    args.add_option("fault",
                    "inject engine faults: label=kind[@cells],... with "
                    "kind throw|crash|stall|slow, e.g. sse0=crash@50000",
                    "");
    args.add_option("chan-drop",
                    "slave->master message drop probability (requires "
                    "--liveness-timeout > 0)",
                    "0");
    args.add_option("chan-stall",
                    "extra delivery stall in seconds on every link", "0");
    args.add_option("fault-seed", "seed for the fault-injection streams",
                    "24029");
    args.add_option("trace",
                    "record the run and write Chrome trace-event JSON here "
                    "(open at ui.perfetto.dev)",
                    "");
    args.add_option("metrics",
                    "write run metrics (counters/histograms) as JSON here",
                    "");
    args.add_flag("gantt", "print an ASCII Gantt chart of the run");
    args.add_flag("balance-report",
                  "print the post-run workload-balance audit (per-PE "
                  "busy/comm/idle, imbalance ratio, critical path)");
    args.add_option("balance-json",
                    "also write the balance report as JSON here", "");
    args.add_option("weights-out",
                    "record PSS weight trajectories (realised vs estimated "
                    "rate per PE) and write them here as CSV (.json for "
                    "JSON)",
                    "");
    args.add_option("prom",
                    "write Prometheus text-format metrics here, rewritten "
                    "every --watch-period while the run executes",
                    "");
    args.add_flag("watch",
                  "live ASCII dashboard (refresh in place) with per-PE "
                  "rates, imbalance, and funnel tau while the run executes");
    args.add_option("watch-period",
                    "dashboard/scrape refresh period in seconds", "0.5");

    try {
        if (!args.parse(argc, argv)) return 0;

        if (args.get_flag("generate-demo")) {
            generate_demo(args.get("queries"), args.get("database"));
            return 0;
        }

        const align::Alphabet& aa = align::Alphabet::protein();
        const auto queries = io::read_fasta_file(args.get("queries"), aa);
        SWH_REQUIRE(!queries.empty(), "query file has no sequences");
        // The indexed reader both builds the sidecar (paper SS IV-B) and
        // gives us residue totals without a second scan.
        const io::IndexedFastaReader db_reader(args.get("database"), aa);
        db::Database database(
            args.get("database"),
            db_reader.slice(0, db_reader.size()));
        SWH_REQUIRE(database.size() > 0, "database has no sequences");

        align::ScoreMatrix matrix = align::ScoreMatrix::blosum62();
        if (args.get("matrix") != "blosum62") {
            std::ifstream min(args.get("matrix"));
            SWH_REQUIRE(static_cast<bool>(min),
                        "cannot open matrix file");
            matrix = align::ScoreMatrix::from_ncbi_stream(
                aa, min, args.get("matrix"));
        }
        const align::GapPenalty gap{
            static_cast<align::Score>(args.get_int("gap-open")),
            static_cast<align::Score>(args.get_int("gap-extend"))};

        engines::EngineConfig config;
        config.matrix = &matrix;
        config.gap = gap;
        config.top_k = static_cast<std::size_t>(args.get_int("top"));
        config.isa = simd::best_supported();

        runtime::RuntimeOptions options;
        options.top_k = config.top_k;
        options.sched.workload_adjust = !args.get_flag("no-adjust");
        options.liveness_timeout_s = args.get_double("liveness-timeout");
        options.heartbeat_period_s = args.get_double("heartbeat");
        options.max_task_retries =
            static_cast<std::size_t>(args.get_int("retries"));
        const auto fault_seed =
            static_cast<std::uint64_t>(args.get_int("fault-seed"));
        options.master_link_faults.drop_prob = args.get_double("chan-drop");
        options.master_link_faults.stall_s = args.get_double("chan-stall");
        options.master_link_faults.seed = fault_seed;
        options.slave_link_stall_s = args.get_double("chan-stall");

        // Observability: a recorder when any trace-derived output was
        // asked for (including the balance audit), a registry when any
        // metrics consumer is on (file, Prometheus scrape, dashboard).
        const bool want_balance = args.get_flag("balance-report") ||
                                  !args.get("balance-json").empty();
        const bool want_trace = !args.get("trace").empty() ||
                                args.get_flag("gantt") || want_balance;
        const bool want_watch = args.get_flag("watch");
        const bool want_prom = !args.get("prom").empty();
        const bool want_metrics =
            !args.get("metrics").empty() || want_watch || want_prom;
        std::optional<obs::TraceRecorder> recorder;
        obs::MetricsRegistry registry;
        if (want_trace) recorder.emplace();
        options.trace = want_trace ? &*recorder : nullptr;
        options.metrics = want_metrics ? &registry : nullptr;
        if (want_metrics) config.metrics = &registry;

        // PSS weight trajectories ride the scheduler's observer slot.
        obs::WeightLog weight_log;
        const std::string weights_path = args.get("weights-out");
        if (!weights_path.empty()) options.sched_observer = &weight_log;

        const std::string transport = args.get("transport");
        SWH_REQUIRE(transport == "inproc" || transport == "socket",
                    "--transport must be inproc or socket");
        const bool socket_mode = transport == "socket";
        if (socket_mode) {
            // Engine-side knobs belong to the slave processes there.
            SWH_REQUIRE(args.get("fault").empty(),
                        "--fault wraps in-process engines; pass --fault "
                        "to swhybrid_slave instead");
        }

        std::cout << "searching " << queries.size() << " queries against "
                  << database.size() << " sequences ("
                  << with_thousands(
                         static_cast<long long>(database.residues()))
                  << " residues), policy " << args.get("policy")
                  << ", slaves "
                  << (socket_mode ? "remote ×" +
                                        std::to_string(args.get_int(
                                            "expect-slaves"))
                                  : args.get("slaves"))
                  << ", ISA " << simd::to_string(config.isa) << "\n";

        std::vector<runtime::SlaveSpec> slaves;
        // PeIds are handed out in registration (spec / connection)
        // order, so these double as the dashboard/weights row labels.
        // Socket slaves announce their labels only in the Hello, so the
        // live views use positional names there.
        std::vector<std::string> slave_labels;
        if (socket_mode) {
            const long long expect = args.get_int("expect-slaves");
            SWH_REQUIRE(expect > 0 && expect <= 64,
                        "unreasonable --expect-slaves");
            for (long long i = 0; i < expect; ++i) {
                slave_labels.push_back("pe" + std::to_string(i));
            }
        } else {
            slaves = make_slaves(args.get("slaves"), config);
            apply_faults(slaves, args.get("fault"), fault_seed);
            slave_labels.reserve(slaves.size());
            for (const runtime::SlaveSpec& s : slaves) {
                slave_labels.push_back(s.label);
            }
        }

        // Resident-process surface: a background sampler renders the
        // live dashboard and/or rewrites the Prometheus scrape file
        // while run() blocks this thread.
        std::optional<obs::PeriodicSampler> sampler;
        if (want_watch || want_prom) {
            const double period =
                std::max(args.get_double("watch-period"), 0.05);
            const std::string prom_path = args.get("prom");
            sampler.emplace(
                registry, period,
                [&slave_labels, want_watch,
                 prom_path](const obs::MetricsSnapshot& snap,
                            double elapsed) {
                    if (want_watch) {
                        obs::DashboardOptions dopt;
                        dopt.pe_labels = slave_labels;
                        dopt.elapsed_s = elapsed;
                        std::cout << "\x1b[H\x1b[2J"
                                  << obs::render_dashboard(snap, dopt)
                                  << std::flush;
                    }
                    if (!prom_path.empty()) {
                        // Write-then-rename so a concurrent scrape
                        // never reads a half-written exposition.
                        const std::string tmp = prom_path + ".tmp";
                        {
                            std::ofstream pf(tmp);
                            if (!pf) return;
                            obs::export_prometheus(snap, pf);
                        }
                        std::rename(tmp.c_str(), prom_path.c_str());
                    }
                });
        }

        runtime::RunReport report;
        if (socket_mode) {
            runtime::RemoteMasterOptions mopts;
            mopts.runtime = options;
            mopts.port = static_cast<std::uint16_t>(args.get_int("port"));
            mopts.expect_slaves =
                static_cast<std::size_t>(args.get_int("expect-slaves"));
            mopts.accept_timeout_s = args.get_double("accept-timeout");
            runtime::RemoteMaster master(database, queries, mopts);
            const std::uint16_t port = master.listen();
            std::cout << "listening on 127.0.0.1:" << port
                      << ", waiting for " << mopts.expect_slaves
                      << " slave(s): swhybrid_slave "
                      << args.get("queries") << ' ' << args.get("database")
                      << " --port " << port << std::endl;
            report = master.run(make_policy(args.get("policy")));
        } else {
            runtime::HybridRuntime rt(database, queries, options);
            report =
                rt.run(std::move(slaves), make_policy(args.get("policy")));
        }
        if (sampler.has_value()) sampler->stop();

        const align::GumbelParams stats = align::fit_gumbel(matrix, gap);
        const double max_evalue = args.get_double("max-evalue");

        std::ofstream tsv;
        if (!args.get("out").empty()) {
            tsv.open(args.get("out"));
            SWH_REQUIRE(static_cast<bool>(tsv),
                        "cannot open --out file for writing");
            tsv << "query\tsubject\tscore\tbits\tevalue\n";
        }

        for (std::size_t q = 0; q < queries.size(); ++q) {
            std::cout << "\nquery " << queries[q].id << " ("
                      << queries[q].size() << " aa):\n";
            TextTable table({"hit", "len", "score", "bits", "E-value"});
            for (const core::Hit& h : report.hits[q]) {
                const double e = stats.evalue(h.score, queries[q].size(),
                                              database.residues());
                if (e > max_evalue) continue;
                char ebuf[32];
                std::snprintf(ebuf, sizeof ebuf, "%.2g", e);
                table.add_row({database[h.db_index].id,
                               std::to_string(database[h.db_index].size()),
                               std::to_string(h.score),
                               format_double(stats.bit_score(h.score), 1),
                               ebuf});
                if (tsv.is_open()) {
                    tsv << queries[q].id << '\t'
                        << database[h.db_index].id << '\t' << h.score
                        << '\t'
                        << format_double(stats.bit_score(h.score), 1)
                        << '\t' << ebuf << '\n';
                }
            }
            if (table.rows() == 0) {
                std::cout << "  (no hits below E = "
                          << format_double(max_evalue, 2) << ")\n";
            } else {
                table.print(std::cout);
            }
            if (args.get_flag("align") && !report.hits[q].empty()) {
                const core::Hit& best = report.hits[q][0];
                const align::Alignment aln = align::sw_align_affine_lowmem(
                    queries[q].residues, database[best.db_index].residues,
                    matrix, gap);
                std::cout << "best alignment (vs "
                          << database[best.db_index].id << ", cigar "
                          << aln.cigar() << "):\n"
                          << align::format_alignment(
                                 aln, aa, queries[q].residues,
                                 database[best.db_index].residues);
            }
        }

        std::cout << "\n" << format_double(report.wall_seconds, 2) << " s, "
                  << format_double(report.gcups, 3) << " GCUPS, "
                  << report.replicas_issued << " replicas issued\n";

        // Fault summary: anything the run survived (or gave up on).
        if (report.task_failures > 0 || report.slaves_presumed_dead > 0 ||
            report.late_completions_discarded > 0 ||
            !report.failed_tasks.empty()) {
            std::cout << "faults: " << report.task_failures
                      << " engine failures, " << report.slaves_presumed_dead
                      << " slaves presumed dead, "
                      << report.late_completions_discarded
                      << " late completions discarded\n";
            for (const runtime::SlaveReport& s : report.slaves) {
                if (!s.presumed_dead && !s.crashed && s.engine_failures == 0)
                    continue;
                std::cout << "  " << s.label << ":"
                          << (s.crashed ? " crashed" : "")
                          << (s.presumed_dead ? " presumed-dead" : "");
                if (s.engine_failures > 0) {
                    std::cout << " " << s.engine_failures
                              << " engine failures";
                }
                std::cout << '\n';
            }
            for (const runtime::RunReport::FailedTask& f :
                 report.failed_tasks) {
                std::cout << "  FAILED query #" << f.query_index << " ("
                          << queries[f.query_index].id << "): "
                          << f.last_error << " after " << f.failures
                          << " failures — hits may be missing\n";
            }
        }

        if (want_trace) {
            const obs::Trace trace = recorder->drain();
            if (!args.get("trace").empty()) {
                std::ofstream tf(args.get("trace"));
                SWH_REQUIRE(static_cast<bool>(tf),
                            "cannot open --trace file for writing");
                obs::export_chrome_json(trace, tf);
                std::cout << "trace (" << trace.total_events()
                          << " events) written to " << args.get("trace")
                          << " — open it at ui.perfetto.dev\n";
            }
            if (args.get_flag("gantt")) {
                const double step =
                    std::max(report.wall_seconds / 60.0, 1e-6);
                std::cout << "\n" << obs::render_trace_gantt(trace, step);
            }
            if (want_balance) {
                obs::BalanceOptions bopt;
                bopt.horizon_s = report.wall_seconds;
                for (const runtime::SlaveReport& s : report.slaves) {
                    bopt.cells_by_label.emplace_back(
                        s.label, static_cast<double>(s.cells_computed));
                }
                const obs::BalanceReport balance =
                    obs::analyze_balance(trace, bopt);
                if (args.get_flag("balance-report")) {
                    std::cout << "\n" << balance.to_text();
                }
                if (!args.get("balance-json").empty()) {
                    std::ofstream bf(args.get("balance-json"));
                    SWH_REQUIRE(static_cast<bool>(bf),
                                "cannot open --balance-json file");
                    bf << balance.to_json();
                    std::cout << "balance report written to "
                              << args.get("balance-json") << '\n';
                }
            }
        }
        if (!weights_path.empty()) {
            std::ofstream wf(weights_path);
            SWH_REQUIRE(static_cast<bool>(wf),
                        "cannot open --weights-out file");
            const bool as_json =
                weights_path.size() >= 5 &&
                weights_path.compare(weights_path.size() - 5, 5, ".json") ==
                    0;
            if (as_json) {
                wf << weight_log.to_json(slave_labels);
            } else {
                weight_log.export_csv(wf, slave_labels);
            }
            std::cout << weight_log.samples().size()
                      << " PSS weight samples written to " << weights_path
                      << '\n';
        }
        if (want_prom) {
            const std::string tmp = args.get("prom") + ".tmp";
            {
                std::ofstream pf(tmp);
                SWH_REQUIRE(static_cast<bool>(pf),
                            "cannot open --prom file for writing");
                obs::export_prometheus(report.metrics, pf);
            }
            std::rename(tmp.c_str(), args.get("prom").c_str());
            std::cout << "prometheus metrics written to " << args.get("prom")
                      << '\n';
        }
        if (!args.get("metrics").empty()) {
            std::ofstream mf(args.get("metrics"));
            SWH_REQUIRE(static_cast<bool>(mf),
                        "cannot open --metrics file for writing");
            mf << report.metrics.to_json() << '\n';
            for (const runtime::KindCells& kc : report.cells_by_kind()) {
                std::cout << core::to_string(kc.kind) << ": "
                          << with_thousands(static_cast<long long>(
                                 kc.cells_accepted))
                          << " cells accepted, "
                          << with_thousands(static_cast<long long>(
                                 kc.cells_discarded))
                          << " discarded\n";
            }
            std::cout << "metrics written to " << args.get("metrics")
                      << '\n';
        }
        return 0;
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << '\n';
        return 1;
    }
}

// Quickstart: pairwise sequence comparison with swhybrid.
//
// Reproduces the paper's two worked figures:
//   * Fig. 1 — a global (Needleman-Wunsch) alignment with ma=+1, mi=-1,
//     g=-2 scoring 4;
//   * Fig. 2 — the Smith-Waterman similarity matrix and the local
//     alignment it encodes (score 3);
// then shows the production path: BLOSUM62 + affine gaps + the striped
// SIMD kernel with automatic 8->16->32-bit escalation.

#include <cstdio>
#include <iostream>

#include "align/alignment.hpp"
#include "align/local_align.hpp"
#include "align/striped.hpp"
#include "align/sw_scalar.hpp"
#include "align/traceback.hpp"
#include "db/generator.hpp"
#include "util/rng.hpp"

using namespace swh;

namespace {

void print_similarity_matrix(const align::DpMatrix& dp, std::string_view s,
                             std::string_view t) {
    std::printf("      *");
    for (const char c : t) std::printf("  %c", c);
    std::printf("\n");
    for (std::size_t i = 0; i < dp.rows; ++i) {
        std::printf("   %c", i == 0 ? '*' : s[i - 1]);
        for (std::size_t j = 0; j < dp.cols; ++j) {
            std::printf(" %2d", dp.at(i, j));
        }
        std::printf("\n");
    }
}

}  // namespace

int main() {
    const align::Alphabet& dna = align::Alphabet::dna();
    const align::ScoreMatrix simple =
        align::ScoreMatrix::match_mismatch(dna, +1, -1, 0);

    // ---- Paper Fig. 1: global alignment ---------------------------------
    std::cout << "== Global alignment (paper Fig. 1: ma=+1 mi=-1 g=-2) ==\n";
    const auto s1 = dna.encode("ACTTGTCCG");
    const auto t1 = dna.encode("ATTGTCAG");
    const align::Alignment global =
        align::nw_align_linear(s1, t1, simple, 2);
    std::cout << align::format_alignment(global, dna, s1, t1)
              << "score = " << global.score << "\n\n";

    // ---- Paper Fig. 2: SW similarity matrix + local alignment -----------
    std::cout << "== Local alignment (paper Fig. 2) ==\n";
    const auto s2 = dna.encode("GCTGACCT");
    const auto t2 = dna.encode("GAAGCTA");
    const align::DpMatrix h = align::sw_matrix_linear(s2, t2, simple, 2);
    print_similarity_matrix(h, "GCTGACCT", "GAAGCTA");
    const align::Alignment local = align::sw_align_linear(s2, t2, simple, 2);
    std::cout << "\nbest local alignment (score " << local.score
              << ", cigar " << local.cigar() << "):\n"
              << align::format_alignment(local, dna, s2, t2) << '\n';

    // ---- Production path: BLOSUM62 + affine gaps + striped SIMD ---------
    std::cout << "== Protein comparison with the striped kernel ==\n";
    const align::ScoreMatrix blosum = align::ScoreMatrix::blosum62();
    const align::GapPenalty gap{10, 2};

    Rng rng(2013);
    const align::Sequence query = db::random_protein(rng, 250, "query");
    align::Sequence subject = db::random_protein(rng, 400, "subject");
    // Plant a mutated copy of the query so there is something to find.
    const align::Sequence homolog =
        db::mutate(query, align::Alphabet::protein(),
                   db::MutationModel{0.08, 0.02, 0.02}, rng);
    subject.residues.insert(subject.residues.begin() + 100,
                            homolog.residues.begin(),
                            homolog.residues.end());

    const align::StripedAligner aligner(query.residues, blosum, gap);
    const align::Score score = aligner.score(subject.residues);
    std::cout << "striped SW score (ISA " << simd::to_string(aligner.isa())
              << "): " << score << '\n';

    // Full alignment via the memory-frugal locate-then-trace path.
    const align::Alignment aln = align::sw_align_affine_lowmem(
        query.residues, subject.residues, blosum, gap);
    std::cout << "alignment covers query[" << aln.s_begin << ", "
              << aln.s_end << ") x subject[" << aln.t_begin << ", "
              << aln.t_end << "), cigar " << aln.cigar() << "\n\n"
              << align::format_alignment(aln, align::Alphabet::protein(),
                                         query.residues, subject.residues);

    // Cross-check with the scalar oracle.
    const align::Score oracle = align::sw_score_affine(
        query.residues, subject.residues, blosum, gap);
    std::cout << "scalar Gotoh oracle agrees: "
              << (oracle == score ? "yes" : "NO (bug!)") << '\n';
    return oracle == score ? 0 : 1;
}

// swhybrid_slave — one slave PE of the multi-process runtime (ISSUE
// 10). Dials the master started by `swhybrid_search --transport=socket`,
// handshakes (Hello -> Welcome), builds its engine from the options the
// master pushed, and runs the exact slave loop the threaded runtime
// uses, over the wire protocol.
//
//   swhybrid_search queries.fa db.fa --transport=socket --port 4455 \
//       --expect-slaves 2 &
//   swhybrid_slave queries.fa db.fa --port 4455 --label sse0 &
//   swhybrid_slave queries.fa db.fa --port 4455 --label gpu0 --kind gpu
//
// Both processes must read the SAME query and database files: tasks
// reference queries by index and hits reference database sequences by
// index, so a mismatched file would silently corrupt results.

#include <fstream>
#include <iostream>

#include "db/database.hpp"
#include "engines/cpu_engine.hpp"
#include "engines/faulty_engine.hpp"
#include "engines/sim_gpu_engine.hpp"
#include "io/fasta.hpp"
#include "io/indexed.hpp"
#include "runtime/remote.hpp"
#include "util/args.hpp"
#include "util/str.hpp"

using namespace swh;

namespace {

engines::FaultKind parse_fault_kind(const std::string& name) {
    if (name == "throw") return engines::FaultKind::Throw;
    if (name == "crash") return engines::FaultKind::Crash;
    if (name == "stall") return engines::FaultKind::Stall;
    if (name == "slow") return engines::FaultKind::Slow;
    throw ContractError("unknown fault kind: " + name +
                        " (expected throw|crash|stall|slow)");
}

}  // namespace

int main(int argc, char** argv) {
    ArgParser args("swhybrid_slave",
                   "One slave process of the socket-transport hybrid "
                   "runtime; pair with swhybrid_search --transport=socket");
    args.add_positional("queries", "FASTA file of query sequences "
                        "(identical to the master's)", "queries.fa");
    args.add_positional("database", "FASTA file of database sequences "
                        "(identical to the master's)", "database.fa");
    args.add_option("host", "master address", "127.0.0.1");
    args.add_option("port", "master port (from --transport=socket)", "0");
    args.add_option("label", "slave label for reports", "remote0");
    args.add_option("kind", "engine kind: sse|gpu", "sse");
    args.add_option("connect-timeout",
                    "seconds to keep redialling the master", "10");
    args.add_option("gap-open", "gap open penalty", "10");
    args.add_option("gap-extend", "gap extension penalty", "2");
    args.add_option("matrix", "NCBI-format matrix file, or 'blosum62'",
                    "blosum62");
    args.add_option("fault",
                    "inject an engine fault: kind[@cells] with kind "
                    "throw|crash|stall|slow, e.g. crash@50000",
                    "");
    args.add_option("fault-seed", "seed for the fault-injection stream",
                    "24029");
    args.add_option("chan-stall",
                    "extra delivery stall in seconds on this slave's "
                    "inbound queue",
                    "0");
    args.add_option("chan-delay",
                    "simulated link latency on this slave's inbound queue",
                    "0");

    try {
        if (!args.parse(argc, argv)) return 0;
        SWH_REQUIRE(args.get_int("port") > 0,
                    "--port is required (the master prints it)");

        const align::Alphabet& aa = align::Alphabet::protein();
        const auto queries = io::read_fasta_file(args.get("queries"), aa);
        SWH_REQUIRE(!queries.empty(), "query file has no sequences");
        const io::IndexedFastaReader db_reader(args.get("database"), aa);
        db::Database database(args.get("database"),
                              db_reader.slice(0, db_reader.size()));
        SWH_REQUIRE(database.size() > 0, "database has no sequences");

        align::ScoreMatrix matrix = align::ScoreMatrix::blosum62();
        if (args.get("matrix") != "blosum62") {
            std::ifstream min(args.get("matrix"));
            SWH_REQUIRE(static_cast<bool>(min), "cannot open matrix file");
            matrix = align::ScoreMatrix::from_ncbi_stream(
                aa, min, args.get("matrix"));
        }
        const align::GapPenalty gap{
            static_cast<align::Score>(args.get_int("gap-open")),
            static_cast<align::Score>(args.get_int("gap-extend"))};

        const std::string kind_name = args.get("kind");
        SWH_REQUIRE(kind_name == "sse" || kind_name == "gpu",
                    "unknown slave kind (expected sse|gpu)");

        runtime::RemoteSlaveOptions options;
        options.host = args.get("host");
        options.port = static_cast<std::uint16_t>(args.get_int("port"));
        options.label = args.get("label");
        options.kind = kind_name == "gpu" ? core::PeKind::Gpu
                                          : core::PeKind::SseCore;
        options.connect_timeout_s = args.get_double("connect-timeout");
        options.inbox_stall_s = args.get_double("chan-stall");
        options.inbox_delay_s = args.get_double("chan-delay");

        // The engine is built AFTER the handshake so master-owned
        // options (top_k above all) come from the Welcome — the two
        // processes cannot silently diverge on them.
        auto factory = [&](const net::wire::Welcome& welcome)
            -> std::unique_ptr<engines::ComputeEngine> {
            engines::EngineConfig config;
            config.matrix = &matrix;
            config.gap = gap;
            config.top_k = welcome.top_k;
            config.isa = simd::best_supported();
            std::unique_ptr<engines::ComputeEngine> engine;
            if (kind_name == "gpu") {
                engine = std::make_unique<engines::SimGpuEngine>(
                    config, engines::GpuDeviceModel{}, /*pace=*/false);
            } else {
                engine = std::make_unique<engines::CpuEngine>(config);
            }
            if (!args.get("fault").empty()) {
                const std::vector<std::string> ka =
                    split(args.get("fault"), '@');
                SWH_REQUIRE(ka.size() <= 2,
                            "fault spec must look like kind[@cells]");
                engines::FaultPlan plan;
                plan.kind = parse_fault_kind(ka[0]);
                if (ka.size() == 2) {
                    plan.after_cells =
                        static_cast<std::uint64_t>(std::stoull(ka[1]));
                }
                plan.seed =
                    static_cast<std::uint64_t>(args.get_int("fault-seed"));
                engine = std::make_unique<engines::FaultyEngine>(
                    std::move(engine), plan);
            }
            return engine;
        };

        std::cout << options.label << ": dialling " << options.host << ':'
                  << options.port << "\n";
        const runtime::RemoteSlaveResult result =
            runtime::run_remote_slave(database, queries, options, factory);
        if (!result.connected) {
            std::cerr << options.label << ": " << result.error << '\n';
            return 1;
        }
        std::cout << options.label << ": pe " << result.welcome.pe
                  << " done — "
                  << with_thousands(static_cast<long long>(
                         result.report.cells_computed))
                  << " cells computed, " << result.report.tasks_cancelled
                  << " cancelled, " << result.report.engine_failures
                  << " engine failures"
                  << (result.report.crashed ? ", crashed" : "") << '\n';
        return 0;
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << '\n';
        return 1;
    }
}

// Protein database search on a hybrid platform (the paper's headline use
// case, at laptop scale): a set of query sequences is compared against a
// synthetic protein database by a master/slave runtime whose slaves are
// one simulated CUDASW++-class GPU and two SSE cores, scheduled with PSS
// and the workload-adjustment mechanism.
//
// Usage: protein_search [num_db_seqs] [num_queries]

#include <cstdlib>
#include <iostream>

#include "db/database.hpp"
#include "db/presets.hpp"
#include "engines/cpu_engine.hpp"
#include "engines/sim_gpu_engine.hpp"
#include "engines/throttled_engine.hpp"
#include "runtime/hybrid_runtime.hpp"
#include "util/str.hpp"
#include "util/table.hpp"

using namespace swh;

int main(int argc, char** argv) {
    const std::size_t db_seqs =
        argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 400;
    const std::size_t num_queries =
        argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 10;

    // A miniaturised SwissProt-like database.
    db::DatabaseSpec spec = db::preset_by_name("swissprot")
                                .spec(static_cast<double>(db_seqs) / 537'505.0,
                                      /*seed=*/7);
    const db::Database database = db::Database::generate(spec);
    const auto queries = db::make_query_set(num_queries, 60, 400, 11);
    std::cout << "database: " << database.size() << " sequences, "
              << with_thousands(
                     static_cast<long long>(database.residues()))
              << " residues; " << queries.size() << " queries\n";

    const align::ScoreMatrix matrix = align::ScoreMatrix::blosum62();
    engines::EngineConfig config;
    config.matrix = &matrix;
    config.gap = {10, 2};
    config.top_k = 5;
    config.isa = simd::best_supported();
    config.progress_grain = 2'000'000;

    // Hybrid platform: one "GPU" (paced to the CUDASW++-like model so the
    // GPU:SSE ratio is realistic even on this host) + two throttled SSE
    // cores.
    std::vector<runtime::SlaveSpec> slaves;
    engines::GpuDeviceModel gpu_model;
    gpu_model.peak_gcups = 0.40;  // scaled down with the database
    gpu_model.half_saturation_residues =
        static_cast<double>(database.residues()) * 0.2;
    gpu_model.task_overhead_s = 0.002;
    slaves.push_back(runtime::SlaveSpec{
        "gpu0", std::make_unique<engines::SimGpuEngine>(config, gpu_model,
                                                        /*pace=*/true)});
    for (int i = 0; i < 2; ++i) {
        slaves.push_back(runtime::SlaveSpec{
            "sse" + std::to_string(i),
            std::make_unique<engines::ThrottledEngine>(
                std::make_unique<engines::CpuEngine>(config), /*gcups=*/0.05,
                /*overhead_s=*/0.0, "sse-throttled")});
    }

    runtime::RuntimeOptions options;
    options.notify_period_s = 0.05;
    options.top_k = 5;
    options.sched.workload_adjust = true;

    runtime::HybridRuntime rt(database, queries, options);
    const runtime::RunReport report =
        rt.run(std::move(slaves), core::make_pss());

    std::cout << "\ncompleted in " << format_double(report.wall_seconds, 2)
              << " s, " << format_double(report.gcups, 4) << " GCUPS ("
              << report.replicas_issued << " replicas issued, "
              << report.completions_discarded << " duplicate results "
              << "discarded)\n\n";

    TextTable slave_table({"slave", "kind", "accepted", "discarded",
                           "cells"});
    for (const runtime::SlaveReport& s : report.slaves) {
        slave_table.add_row(
            {s.label, core::to_string(s.kind),
             std::to_string(s.results_accepted),
             std::to_string(s.results_discarded),
             with_thousands(static_cast<long long>(s.cells_computed))});
    }
    slave_table.print(std::cout);

    std::cout << "\ntop hit per query:\n";
    TextTable hits({"query", "len", "best subject", "score"});
    for (std::size_t q = 0; q < queries.size(); ++q) {
        const auto& hs = report.hits[q];
        hits.add_row({queries[q].id, std::to_string(queries[q].size()),
                      hs.empty() ? "-" : database[hs[0].db_index].id,
                      hs.empty() ? "-" : std::to_string(hs[0].score)});
    }
    hits.print(std::cout);
    return 0;
}

// Multiple sequence alignment — the paper's future-work item, built on
// the same task-distribution architecture: the pairwise distance stage
// runs through the hybrid master/slave runtime (each task = one sequence
// against the whole set), then UPGMA + progressive profile alignment.
//
// Usage: msa_demo [members] [length]

#include <cstdlib>
#include <iostream>

#include "db/generator.hpp"
#include "msa/progressive.hpp"
#include "util/str.hpp"

using namespace swh;

int main(int argc, char** argv) {
    const std::size_t members =
        argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 6;
    const std::size_t length =
        argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 60;

    // A simulated protein family: ancestor + diverged copies.
    Rng rng(1988);
    std::vector<align::Sequence> seqs;
    const align::Sequence ancestor =
        db::random_protein(rng, length, "ancestor");
    seqs.push_back(ancestor);
    for (std::size_t i = 1; i < members; ++i) {
        align::Sequence s =
            db::mutate(ancestor, align::Alphabet::protein(),
                       db::MutationModel{0.05 + 0.03 * double(i), 0.01,
                                         0.01},
                       rng);
        s.id = "member" + std::to_string(i);
        seqs.push_back(std::move(s));
    }

    const align::ScoreMatrix matrix = align::ScoreMatrix::blosum62();

    // Guide tree from distributed distances (two SSE slaves).
    msa::DistanceOptions d_opts;
    const msa::DistanceMatrix distances =
        msa::compute_distances_distributed(seqs, matrix, d_opts, 2);
    const msa::GuideTree tree = msa::upgma(distances);
    std::vector<std::string> ids;
    for (const auto& s : seqs) ids.push_back(s.id);
    std::cout << "guide tree: " << tree.newick(ids) << "\n\n";

    const msa::Msa result =
        msa::progressive_align_with_tree(seqs, tree, matrix, {10, 2});

    std::cout << "alignment (" << result.size() << " sequences x "
              << result.columns() << " columns):\n";
    for (std::size_t r = 0; r < result.size(); ++r) {
        std::cout << "  " << result.ids[r]
                  << std::string(12 - std::min<std::size_t>(
                                          11, result.ids[r].size()),
                                 ' ')
                  << result.row_string(r, align::Alphabet::protein())
                  << '\n';
    }
    std::cout << "\nsum-of-pairs score: "
              << sum_of_pairs(result, matrix, 4) << '\n';
    return 0;
}

// swhybrid_sim — command-line front end for the discrete-event
// simulator: describe a platform, database, and scheduling config;
// get makespan, GCUPS, per-PE stats, and optionally a Gantt chart.
//
//   swhybrid_sim --db swissprot --gpus 4 --sses 4 --policy pss
//   swhybrid_sim --db dog --sses 4 --load 60:0:0.5 --gantt

#include <fstream>
#include <iostream>

#include "db/presets.hpp"
#include "obs/balance.hpp"
#include "obs/sched_log.hpp"
#include "sim/simulator.hpp"
#include "util/args.hpp"
#include "util/str.hpp"
#include "util/table.hpp"

using namespace swh;

namespace {

std::function<std::unique_ptr<core::AllocationPolicy>()> policy_factory(
    const std::string& name) {
    if (name == "ss") return core::make_self_scheduling;
    if (name == "pss") return core::make_pss;
    if (name == "fixed") return core::make_fixed;
    if (name == "wfixed") {
        return [] {
            return core::make_wfixed(
                {{core::PeKind::Gpu, 16.0}, {core::PeKind::SseCore, 1.0}});
        };
    }
    throw ContractError("unknown policy: " + name);
}

}  // namespace

int main(int argc, char** argv) {
    ArgParser args("swhybrid_sim",
                   "simulate the paper's hybrid platform on a database "
                   "workload");
    args.add_option("db", "Table II database preset (substring match)",
                    "swissprot");
    args.add_option("gpus", "number of GPU PEs", "4");
    args.add_option("sses", "number of SSE-core PEs", "4");
    args.add_option("policy", "ss|pss|fixed|wfixed", "pss");
    args.add_option("queries", "number of query sequences", "40");
    args.add_option("omega", "PSS history window", "8");
    args.add_option("notify", "notification period (s)", "0.5");
    args.add_option("latency", "assignment round-trip latency (s)", "0");
    args.add_option(
        "load", "inject local load: time:pe:factor (e.g. 60:0:0.5)", "");
    args.add_option("leave", "PE leaves at time: time:pe", "");
    args.add_flag("no-adjust", "disable the workload-adjustment mechanism");
    args.add_flag("lpt", "dispatch largest tasks first");
    args.add_flag("gantt", "render an ASCII Gantt chart");
    args.add_flag("balance-report",
                  "print the workload-balance audit (per-PE busy/idle/comm, "
                  "imbalance ratio, critical path)");
    args.add_option("balance-json", "write the balance report as JSON here",
                    "");
    args.add_option("weights-out",
                    "record PSS weight trajectories (realised vs estimated "
                    "rate per progress sample) to this CSV/JSON file", "");

    try {
        if (!args.parse(argc, argv)) return 0;

        const db::DatabasePreset& preset =
            db::preset_by_name(args.get("db"));
        sim::SimConfig cfg;
        cfg.sched.workload_adjust = !args.get_flag("no-adjust");
        cfg.sched.omega = static_cast<std::size_t>(args.get_int("omega"));
        if (args.get_flag("lpt")) {
            cfg.sched.ready_order = core::ReadyOrder::LargestFirst;
        }
        cfg.policy = policy_factory(args.get("policy"));
        cfg.notify_period_s = args.get_double("notify");
        cfg.assign_latency_s = args.get_double("latency");
        cfg.db_residues = preset.total_residues();
        const auto queries = db::make_query_set(
            static_cast<std::size_t>(args.get_int("queries")));
        for (const auto& q : queries) cfg.query_lengths.push_back(q.size());
        for (long long g = 0; g < args.get_int("gpus"); ++g) {
            cfg.pes.push_back(
                sim::gpu_pe("GPU" + std::to_string(g + 1)));
        }
        for (long long s = 0; s < args.get_int("sses"); ++s) {
            cfg.pes.push_back(
                sim::sse_core_pe("SSE" + std::to_string(s + 1)));
        }
        if (!args.get("load").empty()) {
            const auto parts = split(args.get("load"), ':');
            SWH_REQUIRE(parts.size() == 3, "--load wants time:pe:factor");
            cfg.load_events.push_back(
                sim::LoadEvent{std::stod(parts[0]),
                               std::stoul(parts[1]), std::stod(parts[2])});
        }
        if (!args.get("leave").empty()) {
            const auto parts = split(args.get("leave"), ':');
            SWH_REQUIRE(parts.size() == 2, "--leave wants time:pe");
            cfg.leave_events.push_back(
                sim::LeaveEvent{std::stod(parts[0]),
                                std::stoul(parts[1])});
        }

        // Balance auditing observes the scheduler exactly like the
        // threaded runtime does, just on virtual time: a SchedEventLog
        // for the master decision lane, a WeightLog for PSS estimate
        // trajectories, both fanned into the simulator's observer slot.
        const bool want_balance = args.get_flag("balance-report") ||
                                  !args.get("balance-json").empty();
        const std::string weights_path = args.get("weights-out");
        obs::SchedEventLog event_log;
        obs::WeightLog weight_log;
        obs::SchedFanout fanout;
        if (want_balance) fanout.add(&event_log);
        if (!weights_path.empty()) fanout.add(&weight_log);
        if (!fanout.empty()) cfg.observer = &fanout;

        const sim::SimReport r = sim::simulate(cfg);
        std::cout << preset.name << ": "
                  << with_thousands(
                         static_cast<long long>(cfg.db_residues))
                  << " residues, " << cfg.query_lengths.size()
                  << " queries\nmakespan " << format_double(r.makespan, 1)
                  << " s,  " << format_double(r.gcups, 2) << " GCUPS,  "
                  << r.replicas_issued << " replicas, "
                  << r.completions_discarded << " duplicates discarded\n\n";

        TextTable table({"PE", "kind", "accepted", "discarded", "aborted",
                         "busy (s)"});
        for (const sim::PeReport& pe : r.pes) {
            table.add_row({pe.label, core::to_string(pe.kind),
                           std::to_string(pe.results_accepted),
                           std::to_string(pe.results_discarded),
                           std::to_string(pe.tasks_aborted),
                           format_double(pe.busy_seconds, 1)});
        }
        table.print(std::cout);

        if (args.get_flag("gantt")) {
            std::cout << '\n'
                      << sim::render_gantt(r, cfg.pes,
                                           r.makespan / 80.0);
        }
        if (want_balance) {
            const obs::Trace trace =
                sim::to_trace(r, cfg.pes, event_log.take());
            obs::BalanceOptions bopts;
            bopts.horizon_s = r.all_idle_time;
            for (const sim::PeReport& pe : r.pes) {
                bopts.cells_by_label.emplace_back(
                    pe.label, static_cast<double>(pe.cells));
            }
            const obs::BalanceReport balance =
                obs::analyze_balance(trace, bopts);
            if (args.get_flag("balance-report")) {
                std::cout << '\n' << balance.to_text();
            }
            if (!args.get("balance-json").empty()) {
                std::ofstream bf(args.get("balance-json"));
                SWH_REQUIRE(static_cast<bool>(bf),
                            "cannot open --balance-json file for writing");
                bf << balance.to_json() << '\n';
                std::cout << "balance report written to "
                          << args.get("balance-json") << '\n';
            }
        }
        if (!weights_path.empty()) {
            std::vector<std::string> labels;
            for (const sim::PeModelSpec& pe : cfg.pes) {
                labels.push_back(pe.label);
            }
            std::ofstream wf(weights_path);
            SWH_REQUIRE(static_cast<bool>(wf),
                        "cannot open --weights-out file for writing");
            if (weights_path.size() >= 5 &&
                weights_path.rfind(".json") == weights_path.size() - 5) {
                wf << weight_log.to_json() << '\n';
            } else {
                weight_log.export_csv(wf, labels);
            }
            std::cout << weight_log.samples().size()
                      << " PSS weight samples written to " << weights_path
                      << '\n';
        }
        return 0;
    } catch (const std::exception& e) {
        std::cerr << "error: " << e.what() << '\n';
        return 1;
    }
}

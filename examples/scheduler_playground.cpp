// Scheduler playground: drives the discrete-event simulator through the
// paper's illustrative scenarios so the scheduling behaviour can be seen
// directly in the terminal.
//
//  1. The Fig. 5 worked example (1 GPU + 3 SSE cores, 20 equal tasks):
//     Gantt charts with and without the workload-adjustment mechanism
//     (14 s vs 18 s).
//  2. A non-dedicated run (Fig. 8 flavour): local load hits one core
//     mid-run and PSS re-weights.
//  3. Dynamic membership (future work in the paper): a node leaves
//     mid-run and another joins late.

#include <iostream>

#include "sim/simulator.hpp"
#include "util/str.hpp"

using namespace swh;

namespace {

sim::PeModelSpec flat_pe(std::string label, core::PeKind kind,
                         double gcups) {
    sim::PeModelSpec pe;
    pe.label = std::move(label);
    pe.kind = kind;
    pe.peak_gcups = gcups;
    return pe;
}

sim::SimConfig figure5(bool adjust) {
    sim::SimConfig cfg;
    cfg.sched.workload_adjust = adjust;
    cfg.sched.replicate_only_if_faster = true;
    cfg.policy = core::make_pss;
    cfg.notify_period_s = 0.25;
    cfg.db_residues = 1'000'000;
    cfg.query_lengths.assign(20, 6'000);  // 1 s per task on the GPU
    cfg.pes = {flat_pe("GPU1", core::PeKind::Gpu, 6.0),
               flat_pe("SSE1", core::PeKind::SseCore, 1.0),
               flat_pe("SSE2", core::PeKind::SseCore, 1.0),
               flat_pe("SSE3", core::PeKind::SseCore, 1.0)};
    return cfg;
}

}  // namespace

int main() {
    // ---- Scenario 1: paper Fig. 5 ---------------------------------------
    for (const bool adjust : {true, false}) {
        const sim::SimConfig cfg = figure5(adjust);
        const sim::SimReport r = sim::simulate(cfg);
        std::cout << "== Fig. 5 scenario, workload adjustment "
                  << (adjust ? "ON" : "OFF") << " ==\n"
                  << sim::render_gantt(r, cfg.pes, 0.5)
                  << "application completed at "
                  << format_double(r.makespan, 1) << " s ("
                  << r.replicas_issued << " replicas)\n\n";
    }

    // ---- Scenario 2: non-dedicated execution ----------------------------
    {
        sim::SimConfig cfg;
        cfg.policy = core::make_pss;
        cfg.notify_period_s = 0.5;
        cfg.db_residues = 10'000'000;
        cfg.query_lengths.assign(40, 1'000);
        for (int i = 0; i < 4; ++i) {
            cfg.pes.push_back(flat_pe("Core" + std::to_string(i),
                                      core::PeKind::SseCore, 2.0));
        }
        cfg.load_events = {sim::LoadEvent{20.0, 0, 0.5}};
        const sim::SimReport r = sim::simulate(cfg);
        std::cout << "== Non-dedicated run: Core0 loses half its speed at "
                     "t=20 s ==\n";
        std::cout << "delivered GCUPS per core (notification samples):\n";
        double t_cursor = 0.0;
        for (const sim::RateSample& s : r.rates) {
            if (s.pe != 0) continue;
            if (s.time - t_cursor < 5.0) continue;  // subsample prints
            t_cursor = s.time;
            std::cout << "  t=" << format_double(s.time, 1) << "s  Core0 "
                      << format_double(s.gcups, 2) << " GCUPS\n";
        }
        std::cout << "makespan " << format_double(r.makespan, 1) << " s\n\n";
    }

    // ---- Scenario 3: dynamic membership ---------------------------------
    {
        sim::SimConfig cfg;
        cfg.policy = core::make_pss;
        cfg.db_residues = 10'000'000;
        cfg.query_lengths.assign(30, 1'000);
        cfg.pes = {flat_pe("A", core::PeKind::SseCore, 2.0),
                   flat_pe("B", core::PeKind::SseCore, 2.0)};
        cfg.leave_events = {sim::LeaveEvent{10.0, 1}};
        cfg.join_events = {
            sim::JoinEvent{20.0, flat_pe("GPUlate", core::PeKind::Gpu, 8.0)}};
        const sim::SimReport r = sim::simulate(cfg);
        std::cout << "== Dynamic membership: B leaves at t=10, a GPU joins "
                     "at t=20 ==\n";
        for (const sim::PeReport& pe : r.pes) {
            std::cout << "  " << pe.label << ": accepted "
                      << pe.results_accepted << ", aborted "
                      << pe.tasks_aborted << ", busy "
                      << format_double(pe.busy_seconds, 1) << " s\n";
        }
        std::cout << "makespan " << format_double(r.makespan, 1) << " s\n";
    }
    return 0;
}

// DNA assembly — the paper's second future-work application: shotgun
// reads are simulated from a reference, pairwise dovetail overlaps are
// computed with the semi-global overlap aligner, and a greedy
// overlap-layout-consensus pass reconstructs the sequence.
//
// Usage: assembly_demo [ref_len] [coverage] [error_rate]

#include <cstdlib>
#include <iostream>

#include "assembly/assembler.hpp"
#include "assembly/read_sim.hpp"
#include "util/str.hpp"

using namespace swh;

int main(int argc, char** argv) {
    const std::size_t ref_len =
        argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 1'200;
    const double coverage = argc > 2 ? std::atof(argv[2]) : 12.0;
    const double error_rate = argc > 3 ? std::atof(argv[3]) : 0.01;

    const align::Sequence reference =
        assembly::random_reference(ref_len, 2026);
    assembly::ReadSimSpec spec;
    spec.coverage = coverage;
    spec.read_len = 100;
    spec.error_rate = error_rate;
    spec.seed = 7;
    const auto sim = assembly::simulate_reads(reference, spec);

    std::vector<align::Sequence> reads;
    for (const auto& r : sim) reads.push_back(r.record.seq);
    std::cout << "reference: " << ref_len << " bp; " << reads.size()
              << " reads x " << spec.read_len << " bp at "
              << format_double(error_rate * 100, 1) << "% error\n";

    assembly::AssemblyOptions options;
    options.threads = 2;
    if (error_rate > 0.0) options.min_score = 60;
    const assembly::AssemblyResult result =
        assembly::assemble(reads, options);

    std::cout << "overlap candidates: " << result.overlap_candidates
              << ", used in layout: " << result.overlaps_used << '\n'
              << "contigs: " << result.contigs.size()
              << ", largest: " << result.largest_contig() << " bp, N50: "
              << result.n50() << " bp\n";

    // Compare the largest contig against the reference (simple sweep —
    // the read model has no indels).
    const auto& contig = result.contigs.front().consensus;
    double best_id = 0.0;
    for (std::size_t shift = 0;
         shift + contig.size() <= reference.size(); ++shift) {
        std::size_t same = 0;
        for (std::size_t i = 0; i < contig.size(); ++i) {
            if (contig[i] == reference.residues[shift + i]) ++same;
        }
        best_id = std::max(
            best_id, static_cast<double>(same) /
                         static_cast<double>(contig.size()));
    }
    std::cout << "largest contig vs reference identity: "
              << format_double(best_id * 100, 2) << "%\n";
    return 0;
}

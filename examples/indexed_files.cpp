// Indexed sequence files (paper SS IV-B): build the sidecar index for a
// flat FASTA file and retrieve arbitrary records without scanning.
//
// Usage: indexed_files [path]   (default: a generated temp file)

#include <cstdlib>
#include <filesystem>
#include <iostream>

#include "db/database.hpp"
#include "io/fasta.hpp"
#include "io/indexed.hpp"
#include "util/str.hpp"
#include "util/timer.hpp"

using namespace swh;

int main(int argc, char** argv) {
    std::string path;
    if (argc > 1) {
        path = argv[1];
    } else {
        // Generate a small database file to demonstrate on.
        db::DatabaseSpec spec;
        spec.name = "demo";
        spec.num_sequences = 2'000;
        spec.seed = 99;
        const db::Database database = db::Database::generate(spec);
        path = (std::filesystem::temp_directory_path() /
                "swhybrid_demo.fa").string();
        io::write_fasta_file(path, database.sequences(),
                             align::Alphabet::protein());
        std::cout << "generated " << database.size() << " sequences into "
                  << path << '\n';
    }

    Timer build_timer;
    const io::IndexedFastaReader reader(path, align::Alphabet::protein());
    std::cout << "index ready in " << format_double(build_timer.millis(), 1)
              << " ms (cached at " << io::index_path_for(path) << ")\n";

    const io::SequenceIndex& idx = reader.index();
    std::cout << "sequences: " << with_thousands(
                     static_cast<long long>(idx.sequence_count))
              << "\nlongest sequence: "
              << with_thousands(
                     static_cast<long long>(idx.max_sequence_length))
              << " residues\ntotal residues: "
              << with_thousands(static_cast<long long>(idx.total_residues))
              << '\n';

    // Constant-time retrieval from the middle of the file — what the
    // master does when handing query subsets to slaves.
    if (reader.size() > 0) {
        Timer fetch_timer;
        const align::Sequence middle = reader.get(reader.size() / 2);
        std::cout << "record #" << reader.size() / 2 << " (\"" << middle.id
                  << "\", " << middle.size() << " residues) fetched in "
                  << format_double(fetch_timer.millis(), 2) << " ms\n";
    }
    return 0;
}

#include "engines/throttled_engine.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

#include "engines/cpu_engine.hpp"
#include "engines/sim_gpu_engine.hpp"
#include "util/timer.hpp"

namespace swh::engines {
namespace {

const align::ScoreMatrix& blosum() {
    static const align::ScoreMatrix m = align::ScoreMatrix::blosum62();
    return m;
}

EngineConfig config() {
    EngineConfig c;
    c.matrix = &blosum();
    c.gap = {10, 2};
    c.top_k = 3;
    c.isa = simd::best_supported();
    c.progress_grain = 20'000;  // frequent pacing points
    return c;
}

db::Database tiny_db() {
    db::DatabaseSpec spec;
    spec.name = "tiny";
    spec.num_sequences = 20;
    spec.length.min_len = 30;
    spec.length.max_len = 60;
    spec.seed = 3;
    return db::Database::generate(spec);
}

align::Sequence query() {
    Rng rng(4);
    return db::random_protein(rng, 50, "q");
}

TEST(ThrottledEngine, PacesToTargetRate) {
    const db::Database database = tiny_db();
    const align::Sequence q = query();
    const std::uint64_t cells = q.size() * database.residues();
    // Target rate set so the task takes ~0.1 s.
    const double gcups = static_cast<double>(cells) / 0.1 / 1e9;
    ThrottledEngine engine(std::make_unique<CpuEngine>(config()), gcups);
    Timer t;
    const auto r = engine.execute(q, 0, 0, database, nullptr);
    const double elapsed = t.seconds();
    EXPECT_EQ(r.cells, cells);
    EXPECT_GE(elapsed, 0.09);
    EXPECT_LT(elapsed, 0.6);  // generous: CI machines stall
}

TEST(ThrottledEngine, AddsPerTaskOverhead) {
    const db::Database database = tiny_db();
    const align::Sequence q = query();
    ThrottledEngine engine(std::make_unique<CpuEngine>(config()),
                           /*gcups=*/1e3, /*overhead_s=*/0.08);
    Timer t;
    engine.execute(q, 0, 0, database, nullptr);
    EXPECT_GE(t.seconds(), 0.08);
}

TEST(ThrottledEngine, ResultsUnchangedByPacing) {
    const db::Database database = tiny_db();
    const align::Sequence q = query();
    CpuEngine plain(config());
    ThrottledEngine paced(std::make_unique<CpuEngine>(config()), 1e3);
    const auto a = plain.execute(q, 0, 0, database, nullptr);
    const auto b = paced.execute(q, 0, 0, database, nullptr);
    ASSERT_EQ(a.hits.size(), b.hits.size());
    for (std::size_t i = 0; i < a.hits.size(); ++i) {
        EXPECT_EQ(a.hits[i], b.hits[i]);
    }
}

TEST(ThrottledEngine, PreservesKind) {
    ThrottledEngine engine(std::make_unique<CpuEngine>(config()), 1.0);
    EXPECT_EQ(engine.kind(), core::PeKind::SseCore);
}

TEST(ThrottledEngine, RejectsBadConfig) {
    EXPECT_THROW(ThrottledEngine(nullptr, 1.0), ContractError);
    EXPECT_THROW(
        ThrottledEngine(std::make_unique<CpuEngine>(config()), 0.0),
        ContractError);
    EXPECT_THROW(ThrottledEngine(std::make_unique<CpuEngine>(config()), 1.0,
                                 -0.1),
                 ContractError);
}

TEST(SimGpuEngine, UnpacedMatchesCpuScores) {
    const db::Database database = tiny_db();
    const align::Sequence q = query();
    CpuEngine cpu(config());
    SimGpuEngine gpu(config(), GpuDeviceModel{}, /*pace=*/false);
    EXPECT_EQ(gpu.kind(), core::PeKind::Gpu);
    const auto a = cpu.execute(q, 0, 0, database, nullptr);
    const auto b = gpu.execute(q, 0, 0, database, nullptr);
    ASSERT_EQ(a.hits.size(), b.hits.size());
    for (std::size_t i = 0; i < a.hits.size(); ++i) {
        EXPECT_EQ(a.hits[i], b.hits[i]);
    }
}

TEST(SimGpuEngine, OccupancyCurveShape) {
    const GpuDeviceModel m{};
    // Small databases deliver well under peak; SwissProt-sized nearly
    // peak; monotone in between.
    EXPECT_LT(m.effective_gcups(18'000'000), 0.55 * m.peak_gcups);
    EXPECT_GT(m.effective_gcups(190'000'000), 0.85 * m.peak_gcups);
    EXPECT_LT(m.effective_gcups(10'000'000),
              m.effective_gcups(100'000'000));
}

}  // namespace
}  // namespace swh::engines

// engines::TopK: the bounded collector behind every engine's hit list
// and — through kth_score() — the scan funnel's pruning threshold.
// kth_score's sentinel/monotonicity contract and the admission floor
// are what the threshold-soundness argument in DESIGN.md leans on, so
// they are pinned here against a brute-force oracle.

#include "engines/topk.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/rng.hpp"

namespace swh::engines {
namespace {

using align::Score;
using core::Hit;
using swh::Rng;

/// Brute-force oracle: full sort under TopK's exact order (score
/// descending, db_index ascending), truncated to k.
std::vector<Hit> oracle_topk(std::vector<Hit> hits, std::size_t k) {
    std::sort(hits.begin(), hits.end(), [](const Hit& a, const Hit& b) {
        if (a.score != b.score) return a.score > b.score;
        return a.db_index < b.db_index;
    });
    if (hits.size() > k) hits.resize(k);
    return hits;
}

std::vector<Hit> random_hits(Rng& rng, std::size_t n, Score lo, Score hi) {
    std::vector<Hit> hits;
    hits.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const auto span = static_cast<std::uint64_t>(hi - lo + 1);
        hits.push_back(Hit{static_cast<std::uint32_t>(i),
                           static_cast<Score>(
                               lo + static_cast<Score>(rng.below(span)))});
    }
    return hits;
}

TEST(TopK, KthScoreSentinelUntilKHitsExist) {
    TopK topk(3);
    EXPECT_EQ(topk.kth_score(), TopK::kNoThreshold);
    topk.add(0, 50);
    topk.add(1, 90);
    EXPECT_EQ(topk.kth_score(), TopK::kNoThreshold);
    topk.add(2, 70);
    // Exactly k hits: the k-th best is the minimum of them.
    EXPECT_EQ(topk.kth_score(), 50);
    topk.add(3, 60);
    EXPECT_EQ(topk.kth_score(), 60);
}

TEST(TopK, ZeroKRejectsEverythingAndThresholdIsMax) {
    TopK topk(0);
    // Every score is outside an empty top-k, so the threshold is the
    // max Score — a funnel with k == 0 may prune the whole database.
    EXPECT_EQ(topk.kth_score(), std::numeric_limits<Score>::max());
    topk.add(0, 1000);
    topk.add(1, -5);
    EXPECT_EQ(topk.kth_score(), std::numeric_limits<Score>::max());
    EXPECT_TRUE(topk.take().empty());
}

TEST(TopK, KthScoreIsMonotoneNonDecreasing) {
    // Monotonicity is what lets the scanner trust a stale threshold
    // read: a lower value only prunes less.
    Rng rng(401);
    TopK topk(8);
    Score last = TopK::kNoThreshold;
    for (std::uint32_t i = 0; i < 500; ++i) {
        topk.add(i, static_cast<Score>(rng.below(300)) - 50);
        const Score kth = topk.kth_score();
        EXPECT_GE(kth, last) << "add " << i;
        last = kth;
    }
}

TEST(TopK, MatchesOracleIncludingNegativeScoresAndTies) {
    // A narrow score range forces heavy tie traffic at the admission
    // floor; negative scores check the floor logic is not anchored at
    // zero.
    Rng rng(403);
    for (const std::size_t k : {std::size_t{1}, std::size_t{7},
                                std::size_t{64}}) {
        const std::vector<Hit> hits = random_hits(rng, 400, -20, 20);
        TopK topk(k);
        for (const Hit& h : hits) topk.add(h.db_index, h.score);
        const std::vector<Hit> got = topk.take();
        const std::vector<Hit> want = oracle_topk(hits, k);
        ASSERT_EQ(got.size(), want.size()) << "k=" << k;
        for (std::size_t i = 0; i < want.size(); ++i) {
            EXPECT_EQ(got[i], want[i]) << "k=" << k << " rank " << i;
        }
    }
}

TEST(TopK, LateTieAtTheFloorStillWinsOnIndex) {
    // A tie arriving after the floor is established must be buffered,
    // not rejected: under the index tie-break a smaller db_index must
    // replace the incumbent at the same score.
    TopK topk(2);
    topk.add(9, 10);
    topk.add(8, 10);
    EXPECT_EQ(topk.kth_score(), 10);
    topk.add(1, 10);  // ties the floor with a better (smaller) index
    const std::vector<Hit> got = topk.take();
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0].db_index, 1u);
    EXPECT_EQ(got[1].db_index, 8u);
}

TEST(TopK, MergeMatchesSingleCollectorOracle) {
    // Per-worker collectors merged at end of scan must equal one
    // collector fed everything — the reduction the engines rely on.
    Rng rng(409);
    const std::vector<Hit> hits = random_hits(rng, 600, -10, 200);
    for (const std::size_t k : {std::size_t{1}, std::size_t{10},
                                std::size_t{100}}) {
        std::vector<TopK> workers(4, TopK(k));
        for (std::size_t i = 0; i < hits.size(); ++i) {
            workers[i % 4].add(hits[i].db_index, hits[i].score);
        }
        TopK merged(k);
        for (TopK& w : workers) merged.merge(std::move(w));
        const std::vector<Hit> got = merged.take();
        const std::vector<Hit> want = oracle_topk(hits, k);
        ASSERT_EQ(got.size(), want.size()) << "k=" << k;
        for (std::size_t i = 0; i < want.size(); ++i) {
            EXPECT_EQ(got[i], want[i]) << "k=" << k << " rank " << i;
        }
    }
}

TEST(TopK, KthScoreAfterMergeIsTheMergedKth) {
    TopK a(3);
    TopK b(3);
    a.add(0, 100);
    a.add(1, 90);
    b.add(2, 80);
    b.add(3, 70);
    EXPECT_EQ(a.kth_score(), TopK::kNoThreshold);
    a.merge(std::move(b));
    EXPECT_EQ(a.kth_score(), 80);
}

TEST(TopK, TakeIsSortedAndBounded) {
    Rng rng(419);
    TopK topk(25);
    for (std::uint32_t i = 0; i < 1000; ++i) {
        topk.add(i, static_cast<Score>(rng.below(500)));
    }
    const std::vector<Hit> got = topk.take();
    ASSERT_EQ(got.size(), 25u);
    for (std::size_t i = 1; i < got.size(); ++i) {
        const bool ordered =
            got[i - 1].score > got[i].score ||
            (got[i - 1].score == got[i].score &&
             got[i - 1].db_index < got[i].db_index);
        EXPECT_TRUE(ordered) << "rank " << i;
    }
}

}  // namespace
}  // namespace swh::engines

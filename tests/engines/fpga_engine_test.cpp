#include "engines/fpga_engine.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

#include "align/sw_scalar.hpp"
#include "db/database.hpp"

namespace swh::engines {
namespace {

const align::ScoreMatrix& blosum() {
    static const align::ScoreMatrix m = align::ScoreMatrix::blosum62();
    return m;
}

EngineConfig config() {
    EngineConfig c;
    c.matrix = &blosum();
    c.gap = {10, 2};
    c.top_k = 5;
    c.isa = simd::best_supported();
    return c;
}

db::Database small_db(std::size_t n = 20, std::uint64_t seed = 21) {
    db::DatabaseSpec spec;
    spec.name = "fpga_test";
    spec.num_sequences = n;
    spec.length.min_len = 30;
    spec.length.max_len = 120;
    spec.seed = seed;
    return db::Database::generate(spec);
}

TEST(FpgaEngine, ShortQueryExactScores) {
    FpgaSimEngine engine(config(), {});
    const db::Database database = small_db();
    Rng rng(22);
    const align::Sequence q = db::random_protein(rng, 100, "q");
    const auto r = engine.execute(q, 0, 0, database, nullptr);
    EXPECT_EQ(engine.segmented_queries(), 0u);
    for (const core::Hit& h : r.hits) {
        EXPECT_EQ(h.score,
                  align::sw_score_affine(q.residues,
                                         database[h.db_index].residues,
                                         blosum(), {10, 2}));
    }
}

TEST(FpgaEngine, LongQueryIsSegmented) {
    FpgaSimEngine::Limits limits;
    limits.max_query_len = 64;
    limits.segment_overlap = 16;
    FpgaSimEngine engine(config(), limits);
    const db::Database database = small_db(10, 23);
    Rng rng(24);
    const align::Sequence q = db::random_protein(rng, 200, "q");
    const auto r = engine.execute(q, 0, 0, database, nullptr);
    EXPECT_EQ(engine.segmented_queries(), 1u);
    // Segment scores can only *underestimate* the full-query score.
    for (const core::Hit& h : r.hits) {
        EXPECT_LE(h.score,
                  align::sw_score_affine(q.residues,
                                         database[h.db_index].residues,
                                         blosum(), {10, 2}));
    }
}

TEST(FpgaEngine, SegmentationFindsAlignmentWithinOneSegment) {
    // A homologous region shorter than a segment is scored exactly even
    // when the query is chopped.
    FpgaSimEngine::Limits limits;
    limits.max_query_len = 64;
    limits.segment_overlap = 16;
    FpgaSimEngine engine(config(), limits);
    Rng rng(25);
    const align::Sequence q = db::random_protein(rng, 200, "q");
    // Subject = exact copy of query residues [80, 110): inside segment 2.
    std::vector<align::Code> motif(q.residues.begin() + 80,
                                   q.residues.begin() + 110);
    db::Database database(
        "planted",
        {align::Sequence{"hit", "", motif}});
    const auto r = engine.execute(q, 0, 0, database, nullptr);
    align::Score self = 0;
    for (const align::Code c : motif) self += blosum().at(c, c);
    ASSERT_EQ(r.hits.size(), 1u);
    EXPECT_EQ(r.hits[0].score, self);
}

TEST(FpgaEngine, SensitivityLossWhenAlignmentSpansSegments) {
    // A motif longer than segment+overlap cannot be recovered in full —
    // the documented sensitivity reduction (paper SS III on [13]).
    FpgaSimEngine::Limits limits;
    limits.max_query_len = 40;
    limits.segment_overlap = 8;
    FpgaSimEngine engine(config(), limits);
    Rng rng(26);
    const align::Sequence q = db::random_protein(rng, 120, "q");
    db::Database database("copy", {align::Sequence{"s", "", q.residues}});
    const auto r = engine.execute(q, 0, 0, database, nullptr);
    const align::Score full = align::sw_score_affine(
        q.residues, q.residues, blosum(), {10, 2});
    ASSERT_EQ(r.hits.size(), 1u);
    EXPECT_LT(r.hits[0].score, full);
    EXPECT_GT(r.hits[0].score, 0);
}

TEST(FpgaEngine, LongSubjectsDelegatedToHost) {
    FpgaSimEngine::Limits limits;
    limits.max_subject_len = 50;
    FpgaSimEngine engine(config(), limits);
    const db::Database database = small_db(20, 27);  // lengths 30..120
    Rng rng(28);
    const align::Sequence q = db::random_protein(rng, 40, "q");
    engine.execute(q, 0, 0, database, nullptr);
    std::uint64_t longer = 0;
    for (const auto& s : database.sequences()) {
        if (s.size() > 50) ++longer;
    }
    EXPECT_EQ(engine.host_delegations(), longer);
    EXPECT_GT(longer, 0u);
}

TEST(FpgaEngine, RejectsBadLimits) {
    FpgaSimEngine::Limits limits;
    limits.max_query_len = 10;
    limits.segment_overlap = 10;
    EXPECT_THROW(FpgaSimEngine(config(), limits), ContractError);
}

}  // namespace
}  // namespace swh::engines

#include "engines/cpu_engine.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

#include <atomic>

#include "align/sw_scalar.hpp"
#include "db/database.hpp"
#include "db/presets.hpp"

namespace swh::engines {
namespace {

const align::ScoreMatrix& blosum() {
    static const align::ScoreMatrix m = align::ScoreMatrix::blosum62();
    return m;
}

EngineConfig config(std::uint64_t grain = 1'000'000) {
    EngineConfig c;
    c.matrix = &blosum();
    c.gap = {10, 2};
    c.top_k = 5;
    c.isa = simd::best_supported();
    c.progress_grain = grain;
    return c;
}

db::Database small_db(std::size_t n = 40, std::uint64_t seed = 1) {
    db::DatabaseSpec spec;
    spec.name = "test";
    spec.num_sequences = n;
    spec.length.min_len = 20;
    spec.length.max_len = 200;
    spec.seed = seed;
    return db::Database::generate(spec);
}

align::Sequence query(std::size_t len = 80, std::uint64_t seed = 2) {
    Rng rng(seed);
    return db::random_protein(rng, len, "q");
}

TEST(CpuEngine, ScoresMatchOracle) {
    CpuEngine engine(config());
    const db::Database database = small_db();
    const align::Sequence q = query();
    const core::TaskResult r = engine.execute(q, 0, 0, database, nullptr);
    EXPECT_EQ(r.cells, q.size() * database.residues());
    ASSERT_EQ(r.hits.size(), 5u);
    // Every reported hit must carry the exact oracle score.
    for (const core::Hit& h : r.hits) {
        EXPECT_EQ(h.score,
                  align::sw_score_affine(q.residues,
                                         database[h.db_index].residues,
                                         blosum(), {10, 2}));
    }
    // Hits are the true top-5: no other subject scores above the last.
    for (std::size_t i = 0; i < database.size(); ++i) {
        const align::Score s = align::sw_score_affine(
            q.residues, database[i].residues, blosum(), {10, 2});
        bool in_hits = false;
        for (const core::Hit& h : r.hits) in_hits |= (h.db_index == i);
        if (!in_hits) EXPECT_LE(s, r.hits.back().score);
    }
}

TEST(CpuEngine, MultiThreadMatchesSingleThread) {
    const db::Database database = small_db(60, 5);
    const align::Sequence q = query(120, 6);
    CpuEngine one(config(), 1);
    CpuEngine four(config(), 4);
    const auto r1 = one.execute(q, 0, 0, database, nullptr);
    const auto r4 = four.execute(q, 0, 0, database, nullptr);
    EXPECT_EQ(r1.cells, r4.cells);
    ASSERT_EQ(r1.hits.size(), r4.hits.size());
    for (std::size_t i = 0; i < r1.hits.size(); ++i) {
        EXPECT_EQ(r1.hits[i], r4.hits[i]);
    }
}

TEST(CpuEngine, PrefilterOnAndOffReturnIdenticalHits) {
    // The funnel's whole contract at engine level: arming the ungapped
    // prefilter changes how much exact work runs, never the hits. Use a
    // planted-family sample so the prefilter genuinely prunes, and both
    // thread counts so the racing threshold is covered too.
    const db::ScanSample sample = db::make_scan_sample(250, {90});
    EngineConfig on = config();
    EngineConfig off = config();
    off.prefilter = false;
    for (const unsigned threads : {1u, 4u}) {
        const auto with = CpuEngine(on, threads)
                              .execute(sample.queries[0], 0, 0,
                                       sample.database, nullptr);
        const auto without = CpuEngine(off, threads)
                                 .execute(sample.queries[0], 0, 0,
                                          sample.database, nullptr);
        ASSERT_EQ(with.hits.size(), without.hits.size());
        for (std::size_t i = 0; i < with.hits.size(); ++i) {
            EXPECT_EQ(with.hits[i], without.hits[i])
                << "threads=" << threads << " rank " << i;
        }
        // Pruned subjects still count their cells, so progress totals
        // and the result's cell count stay the full product.
        EXPECT_EQ(with.cells, without.cells);
    }
}

class CountingObserver final : public ExecutionObserver {
public:
    void on_cells(std::uint64_t delta) override {
        cells_ += delta;
        ++calls_;
    }
    std::uint64_t cells() const { return cells_; }
    int calls() const { return calls_; }

private:
    std::uint64_t cells_ = 0;
    int calls_ = 0;
};

TEST(CpuEngine, ReportsAllCellsThroughObserver) {
    CpuEngine engine(config(/*grain=*/50'000));
    const db::Database database = small_db();
    const align::Sequence q = query();
    CountingObserver obs;
    const auto r = engine.execute(q, 0, 0, database, &obs);
    EXPECT_EQ(obs.cells(), r.cells);
    EXPECT_GT(obs.calls(), 1);  // grain forces multiple notifications
}

class CancelAfter final : public ExecutionObserver {
public:
    explicit CancelAfter(int limit) : limit_(limit) {}
    bool cancelled() const override { return polls_.fetch_add(1) >= limit_; }

private:
    mutable std::atomic<int> polls_{0};
    int limit_;
};

TEST(CpuEngine, CancellationStopsEarly) {
    CpuEngine engine(config());
    const db::Database database = small_db(100, 7);
    const align::Sequence q = query();
    CancelAfter obs(10);
    const auto r = engine.execute(q, 0, 0, database, &obs);
    EXPECT_LT(r.cells, q.size() * database.residues());
}

TEST(CpuEngine, TopKSmallerThanDatabase) {
    EngineConfig c = config();
    c.top_k = 1000;  // more than sequences available
    CpuEngine engine(c);
    const db::Database database = small_db(10, 9);
    const auto r = engine.execute(query(), 0, 0, database, nullptr);
    EXPECT_EQ(r.hits.size(), 10u);
}

TEST(CpuEngine, PropagatesTaskIdentity) {
    CpuEngine engine(config());
    const db::Database database = small_db(5, 11);
    const auto r = engine.execute(query(), 7, 42, database, nullptr);
    EXPECT_EQ(r.query_index, 7u);
    EXPECT_EQ(r.task, 42u);
}

TEST(CpuEngine, RequiresMatrix) {
    EngineConfig c;
    c.matrix = nullptr;
    EXPECT_THROW(CpuEngine{c}, ContractError);
}

}  // namespace
}  // namespace swh::engines

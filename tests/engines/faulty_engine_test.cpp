#include "engines/faulty_engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "db/database.hpp"
#include "db/presets.hpp"
#include "engines/cpu_engine.hpp"

namespace swh::engines {
namespace {

const align::ScoreMatrix& blosum() {
    static const align::ScoreMatrix m = align::ScoreMatrix::blosum62();
    return m;
}

EngineConfig config() {
    EngineConfig c;
    c.matrix = &blosum();
    c.gap = {10, 2};
    c.top_k = 3;
    c.isa = simd::best_supported();
    c.progress_grain = 1'000;  // fine grain: thresholds trigger mid-task
    return c;
}

db::Database test_db() {
    db::DatabaseSpec spec;
    spec.name = "fe";
    spec.num_sequences = 20;
    spec.length.min_len = 20;
    spec.length.max_len = 60;
    spec.seed = 7;
    return db::Database::generate(spec);
}

align::Sequence test_query() { return db::make_query_set(1, 40, 60, 9)[0]; }

std::unique_ptr<ComputeEngine> cpu() {
    return std::make_unique<CpuEngine>(config());
}

FaultyEngine make_faulty(FaultPlan plan) {
    return FaultyEngine(cpu(), plan);
}

/// Minimal observer whose cancellation can be flipped from another
/// thread — what unwedges a Stall fault in these tests.
class FlagObserver final : public ExecutionObserver {
public:
    void on_cells(std::uint64_t) override {}
    bool cancelled() const override { return cancelled_.load(); }
    obs::TraceLane* trace_lane() const override { return nullptr; }
    void cancel() { cancelled_.store(true); }

private:
    std::atomic<bool> cancelled_{false};
};

TEST(FaultyEngine, NoneKindPassesThrough) {
    const db::Database database = test_db();
    const align::Sequence q = test_query();
    const core::TaskResult expected =
        cpu()->execute(q, 0, 0, database, nullptr);

    FaultyEngine engine = make_faulty(FaultPlan{});
    const core::TaskResult got = engine.execute(q, 0, 0, database, nullptr);
    EXPECT_EQ(got.hits, expected.hits);
    EXPECT_EQ(got.cells, expected.cells);
    EXPECT_EQ(engine.faults_fired(), 0u);
}

TEST(FaultyEngine, ThrowFiresRuntimeErrorAfterThreshold) {
    FaultPlan plan;
    plan.kind = FaultKind::Throw;
    plan.after_cells = 1;
    FaultyEngine engine = make_faulty(plan);
    const db::Database database = test_db();
    EXPECT_THROW(engine.execute(test_query(), 0, 0, database, nullptr),
                 std::runtime_error);
    EXPECT_EQ(engine.faults_fired(), 1u);
}

TEST(FaultyEngine, CrashThrowsTheDistinguishedCrashType) {
    FaultPlan plan;
    plan.kind = FaultKind::Crash;
    FaultyEngine engine = make_faulty(plan);
    const db::Database database = test_db();
    EXPECT_THROW(engine.execute(test_query(), 0, 3, database, nullptr),
                 SimulatedCrash);
}

TEST(FaultyEngine, ThresholdBeyondTaskSizeNeverFires) {
    FaultPlan plan;
    plan.kind = FaultKind::Throw;
    plan.after_cells = ~std::uint64_t{0};  // unreachable within one task
    FaultyEngine engine = make_faulty(plan);
    const db::Database database = test_db();
    const align::Sequence q = test_query();
    const core::TaskResult expected =
        cpu()->execute(q, 0, 0, database, nullptr);
    const core::TaskResult got = engine.execute(q, 0, 0, database, nullptr);
    EXPECT_EQ(got.hits, expected.hits);
    EXPECT_EQ(engine.faults_fired(), 0u);
}

TEST(FaultyEngine, MaxFaultsBudgetExhaustsThenPassesThrough) {
    FaultPlan plan;
    plan.kind = FaultKind::Throw;
    plan.max_faults = 2;
    FaultyEngine engine = make_faulty(plan);
    const db::Database database = test_db();
    const align::Sequence q = test_query();
    EXPECT_THROW(engine.execute(q, 0, 0, database, nullptr),
                 std::runtime_error);
    EXPECT_THROW(engine.execute(q, 0, 1, database, nullptr),
                 std::runtime_error);
    EXPECT_EQ(engine.faults_fired(), 2u);
    const core::TaskResult got = engine.execute(q, 0, 2, database, nullptr);
    EXPECT_FALSE(got.hits.empty());
    EXPECT_EQ(engine.faults_fired(), 2u);
}

TEST(FaultyEngine, ZeroProbabilityNeverArms) {
    FaultPlan plan;
    plan.kind = FaultKind::Throw;
    plan.probability = 0.0;
    FaultyEngine engine = make_faulty(plan);
    const db::Database database = test_db();
    const align::Sequence q = test_query();
    for (core::TaskId t = 0; t < 5; ++t) {
        EXPECT_NO_THROW(engine.execute(q, 0, t, database, nullptr));
    }
    EXPECT_EQ(engine.faults_fired(), 0u);
}

TEST(FaultyEngine, ArmingIsDeterministicPerSeed) {
    FaultPlan plan;
    plan.kind = FaultKind::Throw;
    plan.probability = 0.5;
    plan.seed = 0xABCDULL;
    const db::Database database = test_db();
    const align::Sequence q = test_query();

    auto fire_pattern = [&](FaultyEngine& engine) {
        std::vector<bool> fired;
        for (core::TaskId t = 0; t < 12; ++t) {
            bool threw = false;
            try {
                engine.execute(q, 0, t, database, nullptr);
            } catch (const std::runtime_error&) {
                threw = true;
            }
            fired.push_back(threw);
        }
        return fired;
    };

    FaultyEngine a = make_faulty(plan);
    FaultyEngine b = make_faulty(plan);
    const std::vector<bool> pa = fire_pattern(a);
    EXPECT_EQ(pa, fire_pattern(b));
    // A 0.5 coin over 12 tasks fires at least once and skips at least
    // once for any sane generator + this fixed seed.
    EXPECT_NE(std::count(pa.begin(), pa.end(), true), 0);
    EXPECT_NE(std::count(pa.begin(), pa.end(), false), 0);
}

TEST(FaultyEngine, StallHangsUntilObserverCancels) {
    FaultPlan plan;
    plan.kind = FaultKind::Stall;
    plan.stall_poll_s = 0.001;
    FaultyEngine engine = make_faulty(plan);
    const db::Database database = test_db();
    const align::Sequence q = test_query();

    FlagObserver observer;
    std::thread canceller([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        observer.cancel();
    });
    const core::TaskResult partial =
        engine.execute(q, 0, 0, database, &observer);
    canceller.join();
    EXPECT_EQ(engine.faults_fired(), 1u);
    EXPECT_EQ(partial.task, 0u);  // partial result, caller discards it
}

TEST(FaultyEngine, SlowProducesIdenticalResultsSlower) {
    const db::Database database = test_db();
    const align::Sequence q = test_query();
    const core::TaskResult expected =
        cpu()->execute(q, 0, 0, database, nullptr);

    FaultPlan plan;
    plan.kind = FaultKind::Slow;
    plan.slow_factor = 2.0;
    plan.after_cells = 1;
    FaultyEngine engine = make_faulty(plan);
    FlagObserver observer;  // Slow wraps but never cancels
    const core::TaskResult got = engine.execute(q, 0, 0, database, &observer);
    EXPECT_EQ(got.hits, expected.hits);
    EXPECT_EQ(got.cells, expected.cells);
    EXPECT_EQ(engine.faults_fired(), 1u);
}

TEST(FaultyEngine, RejectsInvalidPlans) {
    FaultPlan bad_probability;
    bad_probability.probability = 1.5;
    EXPECT_THROW(make_faulty(bad_probability), std::exception);

    FaultPlan bad_factor;
    bad_factor.slow_factor = 0.5;
    EXPECT_THROW(make_faulty(bad_factor), std::exception);

    FaultPlan bad_poll;
    bad_poll.stall_poll_s = 0.0;
    EXPECT_THROW(make_faulty(bad_poll), std::exception);
}

}  // namespace
}  // namespace swh::engines

#include "io/fastq.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.hpp"

namespace swh::io {
namespace {

using align::Alphabet;

TEST(Fastq, ParsesRecords) {
    std::istringstream in(
        "@read1 first\n"
        "ACGT\n"
        "+\n"
        "IIII\n"
        "@read2\n"
        "GG\n"
        "+read2\n"
        "!~\n");
    const auto recs = read_fastq(in, Alphabet::dna());
    ASSERT_EQ(recs.size(), 2u);
    EXPECT_EQ(recs[0].seq.id, "read1");
    EXPECT_EQ(recs[0].seq.description, "first");
    EXPECT_EQ(Alphabet::dna().decode(recs[0].seq.residues), "ACGT");
    EXPECT_EQ(recs[0].quality, (std::vector<std::uint8_t>{40, 40, 40, 40}));
    EXPECT_EQ(recs[1].quality, (std::vector<std::uint8_t>{0, 93}));
}

TEST(Fastq, RejectsTruncatedRecord) {
    std::istringstream in("@read1\nACGT\n+\n");
    EXPECT_THROW(read_fastq(in, Alphabet::dna()), ParseError);
}

TEST(Fastq, RejectsLengthMismatch) {
    std::istringstream in("@r\nACGT\n+\nIII\n");
    EXPECT_THROW(read_fastq(in, Alphabet::dna()), ParseError);
}

TEST(Fastq, RejectsBadHeader) {
    std::istringstream in(">r\nACGT\n+\nIIII\n");
    EXPECT_THROW(read_fastq(in, Alphabet::dna()), ContractError);
}

TEST(Fastq, RejectsBadSeparator) {
    std::istringstream in("@r\nACGT\n-\nIIII\n");
    EXPECT_THROW(read_fastq(in, Alphabet::dna()), ContractError);
}

TEST(Fastq, RoundTrip) {
    std::vector<FastqRecord> recs(1);
    recs[0].seq = align::Sequence::from_string(Alphabet::dna(), "x",
                                               "ACGTN");
    recs[0].seq.description = "demo read";
    recs[0].quality = {0, 10, 20, 40, 93};
    std::ostringstream out;
    write_fastq(out, recs, Alphabet::dna());
    std::istringstream in(out.str());
    const auto back = read_fastq(in, Alphabet::dna());
    ASSERT_EQ(back.size(), 1u);
    EXPECT_EQ(back[0].seq.id, "x");
    EXPECT_EQ(back[0].seq.description, "demo read");
    EXPECT_EQ(back[0].seq.residues, recs[0].seq.residues);
    EXPECT_EQ(back[0].quality, recs[0].quality);
}

TEST(Fastq, WriteRejectsMismatchedQuality) {
    std::vector<FastqRecord> recs(1);
    recs[0].seq = align::Sequence::from_string(Alphabet::dna(), "x", "AC");
    recs[0].quality = {40};
    std::ostringstream out;
    EXPECT_THROW(write_fastq(out, recs, Alphabet::dna()), ContractError);
}

TEST(Fastq, EmptyStream) {
    std::istringstream in("");
    EXPECT_TRUE(read_fastq(in, Alphabet::dna()).empty());
}

}  // namespace
}  // namespace swh::io

#include "io/indexed.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "io/fasta.hpp"
#include "util/error.hpp"

namespace swh::io {
namespace {

using align::Alphabet;

const char* kFasta =
    ">alpha first\n"
    "MKVL\n"
    "AWHE\n"
    ">beta\n"
    "GG\n"
    ">gamma long one\n"
    "MKVLAWHEQNDRST\n";

class TempDir : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = std::filesystem::temp_directory_path() /
               ("swh_idx_test_" + std::to_string(::getpid()) + "_" +
                ::testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name());
        std::filesystem::create_directories(dir_);
    }
    void TearDown() override { std::filesystem::remove_all(dir_); }

    std::string write_fasta_file(const std::string& name,
                                 const std::string& content) {
        const std::string path = (dir_ / name).string();
        std::ofstream out(path);
        out << content;
        return path;
    }

    std::filesystem::path dir_;
};

TEST(BuildIndex, CountsAndOffsets) {
    std::istringstream in(kFasta);
    const SequenceIndex idx = build_index(in);
    EXPECT_EQ(idx.sequence_count, 3u);
    EXPECT_EQ(idx.max_sequence_length, 14u);
    EXPECT_EQ(idx.total_residues, 8u + 2u + 14u);
    ASSERT_EQ(idx.offsets.size(), 3u);
    EXPECT_EQ(idx.offsets[0], 0u);
    // ">alpha first\n" (13) + "MKVL\n" (5) + "AWHE\n" (5) = 23.
    EXPECT_EQ(idx.offsets[1], 23u);
    EXPECT_EQ(idx.lengths, (std::vector<std::uint64_t>{8, 2, 14}));
}

TEST(BuildIndex, EmptyStream) {
    std::istringstream in("");
    const SequenceIndex idx = build_index(in);
    EXPECT_TRUE(idx.empty());
    EXPECT_EQ(idx.max_sequence_length, 0u);
}

TEST(IndexSerde, RoundTrip) {
    std::istringstream in(kFasta);
    const SequenceIndex idx = build_index(in);
    std::stringstream buf;
    save_index(idx, buf);
    const SequenceIndex back = load_index(buf);
    EXPECT_EQ(back.sequence_count, idx.sequence_count);
    EXPECT_EQ(back.max_sequence_length, idx.max_sequence_length);
    EXPECT_EQ(back.total_residues, idx.total_residues);
    EXPECT_EQ(back.offsets, idx.offsets);
    EXPECT_EQ(back.lengths, idx.lengths);
}

TEST(IndexSerde, RejectsBadMagic) {
    std::istringstream in("NOTANIDX0000000000000000");
    EXPECT_THROW(load_index(in), ParseError);
}

TEST(IndexSerde, RejectsTruncated) {
    std::istringstream in(kFasta);
    const SequenceIndex idx = build_index(in);
    std::stringstream buf;
    save_index(idx, buf);
    std::string bytes = buf.str();
    bytes.resize(bytes.size() / 2);
    std::istringstream cut(bytes);
    EXPECT_THROW(load_index(cut), ParseError);
}

TEST_F(TempDir, IndexedReaderRandomAccess) {
    const std::string path = write_fasta_file("db.fa", kFasta);
    const IndexedFastaReader reader(path, Alphabet::protein());
    EXPECT_EQ(reader.size(), 3u);

    const align::Sequence beta = reader.get(1);
    EXPECT_EQ(beta.id, "beta");
    EXPECT_EQ(Alphabet::protein().decode(beta.residues), "GG");

    const align::Sequence gamma = reader.get(2);
    EXPECT_EQ(gamma.id, "gamma");
    EXPECT_EQ(gamma.description, "long one");
    EXPECT_EQ(gamma.size(), 14u);

    const align::Sequence alpha = reader.get(0);
    EXPECT_EQ(alpha.id, "alpha");
    EXPECT_EQ(Alphabet::protein().decode(alpha.residues), "MKVLAWHE");

    EXPECT_THROW(reader.get(3), ContractError);
}

TEST_F(TempDir, IndexedReaderWritesSidecar) {
    const std::string path = write_fasta_file("db.fa", kFasta);
    {
        const IndexedFastaReader reader(path, Alphabet::protein());
        (void)reader;
    }
    EXPECT_TRUE(std::filesystem::exists(index_path_for(path)));
    // Second open loads the sidecar (and must agree).
    const IndexedFastaReader reader(path, Alphabet::protein());
    EXPECT_EQ(reader.size(), 3u);
    EXPECT_EQ(reader.get(1).id, "beta");
}

// ---- Hostile-index fixtures (regressions for fuzz findings) ------------

namespace {

/// Serialises a hand-built (possibly inconsistent) index without going
/// through save_index, which validates its input.
std::string raw_index(std::uint64_t count, std::uint64_t maxlen,
                      std::uint64_t total,
                      const std::vector<std::uint64_t>& offsets,
                      const std::vector<std::uint64_t>& lengths) {
    std::string out("SWHIDX1\n");
    const auto put = [&out](std::uint64_t v) {
        for (int i = 0; i < 8; ++i)
            out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    };
    put(count);
    put(maxlen);
    put(total);
    for (const std::uint64_t v : offsets) put(v);
    for (const std::uint64_t v : lengths) put(v);
    return out;
}

}  // namespace

TEST(IndexSerde, HugeClaimedCountIsCheapParseError) {
    // Header advertises 2^61 sequences with no table behind it. The
    // loader must fail on the missing bytes, not pre-allocate exabytes
    // from the untrusted count (the original implementation resized
    // offsets/lengths up front).
    std::istringstream in(raw_index(std::uint64_t{1} << 61, 10, 100, {}, {}));
    EXPECT_THROW(load_index(in), ParseError);
}

TEST(IndexSerde, RejectsSummaryDisagreeingWithLengths) {
    // total_residues and max_sequence_length must match the table.
    std::istringstream wrong_total(raw_index(2, 14, 999, {0, 23}, {8, 14}));
    EXPECT_THROW(load_index(wrong_total), ParseError);
    std::istringstream wrong_max(raw_index(2, 99, 22, {0, 23}, {8, 14}));
    EXPECT_THROW(load_index(wrong_max), ParseError);
}

TEST(IndexSerde, RejectsNonIncreasingOffsets) {
    std::istringstream dup(raw_index(2, 14, 22, {23, 23}, {8, 14}));
    EXPECT_THROW(load_index(dup), ParseError);
    std::istringstream back(raw_index(2, 14, 22, {23, 0}, {8, 14}));
    EXPECT_THROW(load_index(back), ParseError);
}

TEST_F(TempDir, StaleSidecarPointingPastEofIsRebuilt) {
    const std::string path = write_fasta_file("db.fa", kFasta);
    {
        // A structurally valid index whose offsets belong to a larger,
        // since-replaced FASTA: last record claimed at byte 10'000.
        std::ofstream out(index_path_for(path), std::ios::binary);
        out << raw_index(2, 5, 9, {0, 10'000}, {4, 5});
    }
    const IndexedFastaReader reader(path, Alphabet::protein());
    EXPECT_EQ(reader.size(), 3u);  // rebuilt from the flat file
    EXPECT_EQ(reader.get(2).id, "gamma");
}

TEST_F(TempDir, IndexPointingAtNonRecordThrowsParseError) {
    const std::string path = write_fasta_file("db.fa", kFasta);
    {
        // In-range offsets that land mid-record (byte 5 is inside
        // alpha's header line, not at a '>').
        std::ofstream out(index_path_for(path), std::ios::binary);
        out << raw_index(2, 5, 9, {5, 30}, {4, 5});
    }
    const IndexedFastaReader reader(path, Alphabet::protein());
    EXPECT_THROW(reader.get(0), ParseError);
}

TEST_F(TempDir, IndexedReaderRebuildsCorruptSidecar) {
    const std::string path = write_fasta_file("db.fa", kFasta);
    {
        std::ofstream bad(index_path_for(path));
        bad << "garbage";
    }
    const IndexedFastaReader reader(path, Alphabet::protein());
    EXPECT_EQ(reader.size(), 3u);
}

TEST_F(TempDir, SliceReadsContiguousRecords) {
    const std::string path = write_fasta_file("db.fa", kFasta);
    const IndexedFastaReader reader(path, Alphabet::protein());
    const auto seqs = reader.slice(1, 2);
    ASSERT_EQ(seqs.size(), 2u);
    EXPECT_EQ(seqs[0].id, "beta");
    EXPECT_EQ(seqs[1].id, "gamma");
    EXPECT_THROW(reader.slice(2, 2), ContractError);
}

TEST_F(TempDir, MatchesSequentialParser) {
    const std::string path = write_fasta_file("db.fa", kFasta);
    const auto sequential = read_fasta_file(path, Alphabet::protein());
    const IndexedFastaReader reader(path, Alphabet::protein());
    ASSERT_EQ(reader.size(), sequential.size());
    for (std::size_t i = 0; i < sequential.size(); ++i) {
        EXPECT_EQ(reader.get(i).id, sequential[i].id);
        EXPECT_EQ(reader.get(i).residues, sequential[i].residues);
    }
}

TEST_F(TempDir, NoTrailingNewline) {
    const std::string path =
        write_fasta_file("db.fa", ">a\nMK\n>b\nVL");  // no final \n
    const IndexedFastaReader reader(path, Alphabet::protein());
    EXPECT_EQ(reader.size(), 2u);
    EXPECT_EQ(Alphabet::protein().decode(reader.get(1).residues), "VL");
    EXPECT_EQ(reader.index().total_residues, 4u);
}

}  // namespace
}  // namespace swh::io

#include "io/fasta.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.hpp"

namespace swh::io {
namespace {

using align::Alphabet;
using align::Sequence;

TEST(Fasta, ParsesRecords) {
    std::istringstream in(
        ">seq1 first protein\n"
        "MKVL\n"
        "AWHE\n"
        "\n"
        ">seq2\n"
        "GGGG\n");
    const auto seqs = read_fasta(in, Alphabet::protein());
    ASSERT_EQ(seqs.size(), 2u);
    EXPECT_EQ(seqs[0].id, "seq1");
    EXPECT_EQ(seqs[0].description, "first protein");
    EXPECT_EQ(Alphabet::protein().decode(seqs[0].residues), "MKVLAWHE");
    EXPECT_EQ(seqs[1].id, "seq2");
    EXPECT_EQ(seqs[1].description, "");
    EXPECT_EQ(seqs[1].size(), 4u);
}

TEST(Fasta, EmptyStreamYieldsNoRecords) {
    std::istringstream in("");
    EXPECT_TRUE(read_fasta(in, Alphabet::protein()).empty());
}

TEST(Fasta, RejectsDataBeforeHeader) {
    std::istringstream in("MKVL\n>seq\nAAAA\n");
    EXPECT_THROW(read_fasta(in, Alphabet::protein()), ParseError);
}

TEST(Fasta, RejectsEmptyHeader) {
    std::istringstream in(">\nAAAA\n");
    EXPECT_THROW(read_fasta(in, Alphabet::protein()), ContractError);
}

TEST(Fasta, UnknownResiduesBecomeWildcard) {
    std::istringstream in(">s\nM3V\n");
    const auto seqs = read_fasta(in, Alphabet::protein());
    EXPECT_EQ(Alphabet::protein().decode(seqs[0].residues), "MXV");
}

TEST(Fasta, LowercaseSequenceAccepted) {
    std::istringstream in(">s\nacgt\n");
    const auto seqs = read_fasta(in, Alphabet::dna());
    EXPECT_EQ(Alphabet::dna().decode(seqs[0].residues), "ACGT");
}

TEST(Fasta, WriteReadRoundTrip) {
    std::vector<Sequence> seqs;
    seqs.push_back(Sequence::from_string(Alphabet::protein(), "a",
                                         "MKVLAWHEQNDRST"));
    seqs.back().description = "some protein";
    seqs.push_back(Sequence::from_string(Alphabet::protein(), "b", "GG"));

    std::ostringstream out;
    write_fasta(out, seqs, Alphabet::protein(), 5);
    std::istringstream in(out.str());
    const auto back = read_fasta(in, Alphabet::protein());
    ASSERT_EQ(back.size(), 2u);
    EXPECT_EQ(back[0].id, "a");
    EXPECT_EQ(back[0].description, "some protein");
    EXPECT_EQ(back[0].residues, seqs[0].residues);
    EXPECT_EQ(back[1].residues, seqs[1].residues);
}

TEST(Fasta, FoldsAtWidth) {
    std::vector<Sequence> seqs = {
        Sequence::from_string(Alphabet::dna(), "x", "ACGTACGTAC")};
    std::ostringstream out;
    write_fasta(out, seqs, Alphabet::dna(), 4);
    EXPECT_EQ(out.str(), ">x\nACGT\nACGT\nAC\n");
}

TEST(Fasta, MissingFileThrows) {
    EXPECT_THROW(read_fasta_file("/nonexistent/path.fa",
                                 Alphabet::protein()),
                 IoError);
}

}  // namespace
}  // namespace swh::io

#include "msa/msa.hpp"

#include <gtest/gtest.h>

#include "align/traceback.hpp"
#include "db/generator.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace swh::msa {
namespace {

using align::Alphabet;
using align::Sequence;

const align::ScoreMatrix& blosum() {
    static const align::ScoreMatrix m = align::ScoreMatrix::blosum62();
    return m;
}

Sequence prot(const char* id, const char* letters) {
    return Sequence::from_string(Alphabet::protein(), id, letters);
}

TEST(Msa, FromSequence) {
    const Msa m = Msa::from_sequence(prot("a", "MKV"));
    EXPECT_EQ(m.size(), 1u);
    EXPECT_EQ(m.columns(), 3u);
    EXPECT_EQ(m.row_string(0, Alphabet::protein()), "MKV");
}

TEST(Msa, ValidateCatchesRaggedRows) {
    Msa m = Msa::from_sequence(prot("a", "MKV"));
    m.ids.push_back("b");
    m.rows.push_back(Alphabet::protein().encode("MK"));
    EXPECT_THROW(m.validate(), ContractError);
}

TEST(Msa, UngappedStripsGaps) {
    Msa m = Msa::from_sequence(prot("a", "MKV"));
    m.rows[0].insert(m.rows[0].begin() + 1, kGapCode);
    EXPECT_EQ(Alphabet::protein().decode(m.ungapped(0)), "MKV");
}

TEST(SumOfPairs, TwoIdenticalRows) {
    const Sequence a = prot("a", "MKV");
    Msa m = Msa::from_sequence(a);
    m.ids.push_back("b");
    m.rows.push_back(m.rows[0]);
    align::Score self = 0;
    for (const align::Code c : m.rows[0]) self += blosum().at(c, c);
    EXPECT_EQ(sum_of_pairs(m, blosum(), 4), self);
}

TEST(SumOfPairs, GapPairsAndColumns) {
    // Rows: M K V / M - V : one residue-gap pair, two matches.
    Msa m = Msa::from_sequence(prot("a", "MKV"));
    m.ids.push_back("b");
    m.rows.push_back({m.rows[0][0], kGapCode, m.rows[0][2]});
    const align::Score expected = blosum().score('M', 'M') +
                                  blosum().score('V', 'V') - 4;
    EXPECT_EQ(sum_of_pairs(m, blosum(), 4), expected);
}

TEST(Profile, SingleSequenceColumnScores) {
    const Msa a = Msa::from_sequence(prot("a", "MK"));
    const Msa b = Msa::from_sequence(prot("b", "MW"));
    const Profile pa(a, blosum());
    const Profile pb(b, blosum());
    EXPECT_DOUBLE_EQ(pa.column_score(0, pb, 0), blosum().score('M', 'M'));
    EXPECT_DOUBLE_EQ(pa.column_score(1, pb, 1), blosum().score('K', 'W'));
}

TEST(Profile, FrequenciesAverage) {
    // Column of M and V, half each, against a single-M profile:
    // 0.5*M/M + 0.5*V/M.
    Msa m = Msa::from_sequence(prot("a", "M"));
    m.ids.push_back("b");
    m.rows.push_back(Alphabet::protein().encode("V"));
    const Profile p(m, blosum());
    const Profile q(Msa::from_sequence(prot("c", "M")), blosum());
    const double expected = 0.5 * blosum().score('M', 'M') +
                            0.5 * blosum().score('V', 'M');
    EXPECT_DOUBLE_EQ(p.column_score(0, q, 0), expected);
}

TEST(AlignProfiles, IdenticalSequencesGiveAllMatches) {
    const Msa a = Msa::from_sequence(prot("a", "MKVLAWHE"));
    const Profile pa(a, blosum());
    const align::Alignment ops = align_profiles(pa, pa, {10, 2});
    EXPECT_EQ(ops.cigar(), "8M");
}

TEST(AlignProfiles, AgreesWithPairwiseNwForSingletons) {
    // Profile-profile alignment of two single-sequence MSAs is exactly
    // pairwise global alignment.
    Rng rng(201);
    for (int iter = 0; iter < 15; ++iter) {
        const auto a = db::random_protein(rng, 10 + rng.below(40));
        const auto b = db::random_protein(rng, 10 + rng.below(40));
        const Profile pa(Msa::from_sequence(a), blosum());
        const Profile pb(Msa::from_sequence(b), blosum());
        const align::Alignment prof = align_profiles(pa, pb, {10, 2});
        const align::Alignment pair = align::nw_align_affine(
            a.residues, b.residues, blosum(), {10, 2});
        EXPECT_EQ(prof.score, pair.score) << "iter " << iter;
    }
}

TEST(MergeMsas, InsertsGapColumns) {
    const Msa a = Msa::from_sequence(prot("a", "MKV"));
    const Msa b = Msa::from_sequence(prot("b", "MV"));
    const Profile pa(a, blosum());
    const Profile pb(b, blosum());
    const align::Alignment ops = align_profiles(pa, pb, {4, 1});
    const Msa merged = merge_msas(a, b, ops);
    EXPECT_EQ(merged.size(), 2u);
    EXPECT_EQ(merged.columns(), 3u);
    // Original residues survive un-reordered.
    EXPECT_EQ(Alphabet::protein().decode(merged.ungapped(0)), "MKV");
    EXPECT_EQ(Alphabet::protein().decode(merged.ungapped(1)), "MV");
}

}  // namespace
}  // namespace swh::msa

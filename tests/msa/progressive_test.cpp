#include "msa/progressive.hpp"

#include <gtest/gtest.h>

#include "db/generator.hpp"
#include "msa/distance.hpp"
#include "msa/guide_tree.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace swh::msa {
namespace {

using align::Alphabet;
using align::Sequence;

const align::ScoreMatrix& blosum() {
    static const align::ScoreMatrix m = align::ScoreMatrix::blosum62();
    return m;
}

/// A family of related sequences: one ancestor plus mutated copies.
std::vector<Sequence> family(std::size_t members, std::size_t len,
                             std::uint64_t seed) {
    Rng rng(seed);
    std::vector<Sequence> seqs;
    const Sequence ancestor = db::random_protein(rng, len, "ancestor");
    seqs.push_back(ancestor);
    for (std::size_t i = 1; i < members; ++i) {
        Sequence s = db::mutate(ancestor, Alphabet::protein(),
                                db::MutationModel{0.08, 0.01, 0.01}, rng);
        s.id = "member_" + std::to_string(i);
        seqs.push_back(std::move(s));
    }
    return seqs;
}

TEST(Distance, IdenticalSequencesAtZero) {
    Rng rng(301);
    const Sequence a = db::random_protein(rng, 80, "a");
    const std::vector<Sequence> seqs = {a, a};
    const DistanceMatrix d = compute_distances(seqs, blosum());
    EXPECT_DOUBLE_EQ(d.at(0, 1), 0.0);
    EXPECT_DOUBLE_EQ(d.at(0, 0), 0.0);
}

TEST(Distance, RelatedCloserThanUnrelated) {
    Rng rng(303);
    const Sequence a = db::random_protein(rng, 120, "a");
    Sequence close = db::mutate(a, Alphabet::protein(),
                                db::MutationModel{0.05, 0.01, 0.01}, rng);
    const Sequence far = db::random_protein(rng, 120, "far");
    const std::vector<Sequence> seqs = {a, std::move(close), far};
    const DistanceMatrix d = compute_distances(seqs, blosum());
    EXPECT_LT(d.at(0, 1), 0.3);
    EXPECT_GT(d.at(0, 2), 0.7);
    EXPECT_LT(d.at(0, 1), d.at(0, 2));
}

TEST(Distance, SymmetricAccessors) {
    DistanceMatrix d(3);
    d.set(0, 2, 0.5);
    EXPECT_DOUBLE_EQ(d.at(2, 0), 0.5);
    d.set(2, 1, 0.25);
    EXPECT_DOUBLE_EQ(d.at(1, 2), 0.25);
    EXPECT_THROW(d.at(0, 3), ContractError);
}

TEST(Distance, DistributedMatchesSerial) {
    const std::vector<Sequence> seqs = family(6, 60, 307);
    const DistanceMatrix serial = compute_distances(seqs, blosum());
    const DistanceMatrix dist =
        compute_distances_distributed(seqs, blosum(), {}, 2);
    for (std::size_t i = 0; i < seqs.size(); ++i) {
        for (std::size_t j = 0; j < seqs.size(); ++j) {
            EXPECT_NEAR(dist.at(i, j), serial.at(i, j), 1e-12)
                << i << "," << j;
        }
    }
}

TEST(Upgma, JoinsClosestPairFirst) {
    DistanceMatrix d(3);
    d.set(0, 1, 0.1);
    d.set(0, 2, 0.8);
    d.set(1, 2, 0.9);
    const GuideTree tree = upgma(d);
    ASSERT_EQ(tree.nodes.size(), 5u);
    // First internal node (index 3) merges leaves 0 and 1.
    const auto& first = tree.nodes[3];
    EXPECT_TRUE((first.left == 0 && first.right == 1) ||
                (first.left == 1 && first.right == 0));
    EXPECT_DOUBLE_EQ(first.height, 0.05);
    EXPECT_EQ(tree.root(), 4);
}

TEST(Upgma, NewickContainsAllIds) {
    DistanceMatrix d(3);
    d.set(0, 1, 0.2);
    d.set(0, 2, 0.6);
    d.set(1, 2, 0.6);
    const GuideTree tree = upgma(d);
    const std::string nwk = tree.newick({"alpha", "beta", "gamma"});
    EXPECT_NE(nwk.find("alpha"), std::string::npos);
    EXPECT_NE(nwk.find("beta"), std::string::npos);
    EXPECT_NE(nwk.find("gamma"), std::string::npos);
    EXPECT_EQ(nwk.find("(alpha,beta)"), 1u);  // closest pair joined first
}

TEST(Upgma, SingleLeaf) {
    const GuideTree tree = upgma(DistanceMatrix(1));
    EXPECT_EQ(tree.nodes.size(), 1u);
    EXPECT_EQ(tree.root(), 0);
}

TEST(Progressive, PreservesSequences) {
    const std::vector<Sequence> seqs = family(5, 70, 311);
    const Msa msa = progressive_align(seqs, blosum());
    ASSERT_EQ(msa.size(), seqs.size());
    // Every input sequence appears ungapped in some row (rows may be
    // reordered by the tree).
    for (const Sequence& s : seqs) {
        bool found = false;
        for (std::size_t r = 0; r < msa.size(); ++r) {
            if (msa.ids[r] == s.id) {
                EXPECT_EQ(msa.ungapped(r), s.residues);
                found = true;
            }
        }
        EXPECT_TRUE(found) << s.id;
    }
}

TEST(Progressive, IdenticalSequencesNeedNoGaps) {
    Rng rng(313);
    const Sequence a = db::random_protein(rng, 50, "a");
    std::vector<Sequence> seqs;
    for (int i = 0; i < 4; ++i) {
        Sequence s = a;
        s.id = "copy_" + std::to_string(i);
        seqs.push_back(std::move(s));
    }
    const Msa msa = progressive_align(seqs, blosum());
    EXPECT_EQ(msa.columns(), 50u);
}

TEST(Progressive, FamilyAlignsBetterThanShuffledColumns) {
    const std::vector<Sequence> seqs = family(6, 80, 317);
    const Msa msa = progressive_align(seqs, blosum());
    const align::Score sp = sum_of_pairs(msa, blosum(), 4);

    // Baseline: stack the raw sequences left-aligned with no attempt at
    // alignment (pad with gaps on the right).
    Msa naive;
    std::size_t width = 0;
    for (const Sequence& s : seqs) width = std::max(width, s.size());
    for (const Sequence& s : seqs) {
        naive.ids.push_back(s.id);
        auto row = s.residues;
        row.resize(width, kGapCode);
        naive.rows.push_back(std::move(row));
    }
    const align::Score naive_sp = sum_of_pairs(naive, blosum(), 4);
    EXPECT_GT(sp, naive_sp);
}

TEST(Progressive, DistributedDistanceStageEndToEnd) {
    const std::vector<Sequence> seqs = family(5, 60, 319);
    ProgressiveOptions options;
    options.distributed_distances = true;
    options.slave_sses = 2;
    const Msa msa = progressive_align(seqs, blosum(), options);
    EXPECT_EQ(msa.size(), 5u);
    for (std::size_t r = 0; r < msa.size(); ++r) {
        EXPECT_FALSE(msa.ungapped(r).empty());
    }
}

TEST(Progressive, SingleSequence) {
    Rng rng(321);
    const std::vector<Sequence> seqs = {db::random_protein(rng, 30, "s")};
    const Msa msa = progressive_align(seqs, blosum());
    EXPECT_EQ(msa.size(), 1u);
    EXPECT_EQ(msa.columns(), 30u);
}

}  // namespace
}  // namespace swh::msa

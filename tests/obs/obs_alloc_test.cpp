// Allocation audit for the trace hot path. This test binary replaces the
// global allocation functions with counting versions (which is why it is
// its own test target): emitting onto a registered TraceLane must never
// touch the heap — neither when the recorder is disabled (the near-zero
// overhead guarantee) nor in enabled steady state (the ring is
// preallocated; events carry only static-storage name pointers).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace {

std::atomic<std::uint64_t> g_allocs{0};

void* counted_alloc(std::size_t size, std::size_t align) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    void* p = nullptr;
    if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                       size == 0 ? 1 : size) != 0) {
        throw std::bad_alloc();
    }
    return p;
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size, 16); }
void* operator new[](std::size_t size) { return counted_alloc(size, 16); }
void* operator new(std::size_t size, std::align_val_t align) {
    return counted_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
    return counted_alloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
    std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
    std::free(p);
}

namespace swh::obs {
namespace {

TEST(ObsAllocation, DisabledRecorderEmitIsAllocationFree) {
    TraceRecorder recorder(TraceRecorder::kDefaultLaneCapacity,
                           /*enabled=*/false);
    TraceLane& lane = recorder.lane("off");

    const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
    for (int i = 0; i < 10'000; ++i) {
        lane.emit(EventKind::Progress, 0, kNoTask,
                  static_cast<double>(i));
        lane.span_begin("task", static_cast<core::TaskId>(i));
        lane.span_end("task", static_cast<core::TaskId>(i));
    }
    const std::uint64_t after = g_allocs.load(std::memory_order_relaxed);
    EXPECT_EQ(after, before) << "disabled emit allocated";
    EXPECT_EQ(lane.size(), 0u);
}

TEST(ObsAllocation, EnabledEmitIsAllocationFree) {
    TraceRecorder recorder(/*lane_capacity=*/1024);
    TraceLane& lane = recorder.lane("hot");

    // Includes wrap-around: 10k emits through a 1k ring exercise the
    // drop-oldest path as well as the plain push path.
    const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
    for (int i = 0; i < 10'000; ++i) {
        lane.emit(EventKind::Progress, 0, kNoTask,
                  static_cast<double>(i));
        lane.span_begin("kernel", static_cast<core::TaskId>(i));
        lane.span_end("kernel", static_cast<core::TaskId>(i));
    }
    const std::uint64_t after = g_allocs.load(std::memory_order_relaxed);
    EXPECT_EQ(after, before) << "enabled emit allocated";
    EXPECT_EQ(lane.size(), 1024u);
    EXPECT_EQ(lane.dropped(), 3 * 10'000u - 1024u);
}

TEST(ObsAllocation, CounterAndGaugeRecordingIsAllocationFree) {
    MetricsRegistry registry;
    Counter& c = registry.counter("c");  // handle resolution may allocate
    Gauge& g = registry.gauge("g");
    Histogram& h = registry.histogram("h");
    h.record(1.0);  // histogram recording only locks, never allocates

    const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
    for (int i = 0; i < 10'000; ++i) {
        c.add();
        g.set(static_cast<double>(i));
        h.record(static_cast<double>(i));
    }
    const std::uint64_t after = g_allocs.load(std::memory_order_relaxed);
    EXPECT_EQ(after, before) << "metric recording allocated";
    EXPECT_EQ(c.value(), 10'000u);
}

}  // namespace
}  // namespace swh::obs

// Balance-auditor coverage: the busy/comm/idle decomposition, critical
// path, straggler identification, and dropped-event propagation on
// hand-built traces with known answers, plus the determinism contract
// on real DES runs (identical seeded simulations must produce
// byte-identical reports).

#include "obs/balance.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/sched_log.hpp"
#include "sim/simulator.hpp"

namespace swh::obs {
namespace {

TraceEvent ev(double t, EventKind kind, core::PeId pe,
              core::TaskId task = kNoTask, double value = 0.0,
              const char* name = nullptr) {
    return TraceEvent{t, kind, pe, task, value, name};
}

TraceLaneData lane(std::string label, std::vector<TraceEvent> events,
                   std::uint64_t dropped = 0) {
    TraceLaneData l;
    l.label = std::move(label);
    l.events = std::move(events);
    l.dropped = dropped;
    return l;
}

TEST(Balance, EmptyTraceYieldsZeroReport) {
    const BalanceReport rep = analyze_balance(Trace{});
    EXPECT_EQ(rep.pe_count, 0u);
    EXPECT_EQ(rep.horizon_s, 0.0);
    EXPECT_EQ(rep.straggler, BalanceReport::kNoStraggler);
    EXPECT_TRUE(rep.critical_path.empty());
    EXPECT_FALSE(rep.to_text().empty());  // still renders
}

TEST(Balance, DecomposesBusyCommIdleAgainstAssignments) {
    // pe 7: task 1 assigned at 0.2, runs [1, 4]; task 2 assigned at
    // 4.5, runs [5, 9]. Horizon forced to 10.
    Trace trace;
    trace.lanes.push_back(lane(
        "master", {ev(0.2, EventKind::TaskAssigned, 7, 1),
                   ev(4.5, EventKind::TaskAssigned, 7, 2)}));
    trace.lanes.push_back(lane(
        "gpu0", {ev(1.0, EventKind::SpanBegin, 7, 1, 0.0, "task"),
                 ev(4.0, EventKind::SpanEnd, 7, 1, 0.0, "task"),
                 ev(5.0, EventKind::SpanBegin, 7, 2, 0.0, "task"),
                 ev(9.0, EventKind::SpanEnd, 7, 2, 0.0, "task")}));
    BalanceOptions opts;
    opts.horizon_s = 10.0;
    const BalanceReport rep = analyze_balance(trace, opts);

    ASSERT_EQ(rep.pe_count, 1u);
    const BalancePe& pe = rep.pes[0];
    EXPECT_EQ(pe.label, "gpu0");
    EXPECT_EQ(pe.pe, 7u);
    EXPECT_DOUBLE_EQ(pe.busy_s, 7.0);
    // Span 1: assignment landed 0.8 s before the span opened (all of it
    // inside the [0, 1] gap). Span 2: 0.5 s after the previous end.
    EXPECT_NEAR(pe.comm_s, 0.8 + 0.5, 1e-12);
    EXPECT_NEAR(pe.idle_s, 10.0 - 7.0 - 1.3, 1e-12);
    EXPECT_EQ(pe.tasks_accepted, 2u);
    EXPECT_EQ(pe.tasks_aborted, 0u);
    EXPECT_DOUBLE_EQ(rep.ideal_makespan_s, 7.0);
    EXPECT_DOUBLE_EQ(rep.imbalance_ratio, 1.0);  // single PE
    EXPECT_NEAR(rep.efficiency, 0.7, 1e-12);
}

TEST(Balance, NoAssignmentRecordMeansGapIsPlainIdle) {
    Trace trace;
    trace.lanes.push_back(lane(
        "sse0", {ev(2.0, EventKind::SpanBegin, 3, 0, 0.0, "task"),
                 ev(6.0, EventKind::SpanEnd, 3, 0, 0.0, "task")}));
    BalanceOptions opts;
    opts.horizon_s = 8.0;
    const BalanceReport rep = analyze_balance(trace, opts);
    ASSERT_EQ(rep.pe_count, 1u);
    EXPECT_DOUBLE_EQ(rep.pes[0].comm_s, 0.0);
    EXPECT_DOUBLE_EQ(rep.pes[0].idle_s, 4.0);
}

TEST(Balance, AbortedAndUnmatchedSpansCountAsAborted) {
    Trace trace;
    trace.lanes.push_back(lane(
        "sse0",
        {ev(0.0, EventKind::SpanBegin, 1, 4, 0.0, "task"),
         ev(2.0, EventKind::SpanEnd, 1, 4, 1.0, "task"),  // outcome 1
         ev(3.0, EventKind::SpanBegin, 1, 5, 0.0, "task"),
         ev(4.0, EventKind::Progress, 1, kNoTask, 10.0)}));  // never ends
    const BalanceReport rep = analyze_balance(trace);
    ASSERT_EQ(rep.pe_count, 1u);
    EXPECT_EQ(rep.pes[0].tasks_accepted, 0u);
    EXPECT_EQ(rep.pes[0].tasks_aborted, 2u);
    // The unmatched begin closes at the lane's last timestamp.
    EXPECT_DOUBLE_EQ(rep.pes[0].last_end_s, 4.0);
    EXPECT_DOUBLE_EQ(rep.pes[0].busy_s, 2.0 + 1.0);
}

TEST(Balance, ReplicaEventsAttributeToTheReceivingPe) {
    Trace trace;
    trace.lanes.push_back(lane(
        "master", {ev(1.0, EventKind::ReplicaIssued, 2, 9)}));
    trace.lanes.push_back(lane(
        "gpu0", {ev(1.5, EventKind::SpanBegin, 2, 9, 0.0, "task"),
                 ev(2.5, EventKind::SpanEnd, 2, 9, 0.0, "task")}));
    const BalanceReport rep = analyze_balance(trace);
    ASSERT_EQ(rep.pe_count, 1u);
    EXPECT_EQ(rep.pes[0].replicas_received, 1u);
    // A ReplicaIssued record also supplies the dispatch-gap evidence.
    EXPECT_NEAR(rep.pes[0].comm_s, 0.5, 1e-12);
}

TEST(Balance, CriticalPathChainsAcrossLanesAndRecordsWaits) {
    // t0 on lane A [0, 5], then t1 on lane B [5.2, 9]; an unrelated
    // short span elsewhere must not enter the chain.
    Trace trace;
    trace.lanes.push_back(lane(
        "A", {ev(0.0, EventKind::SpanBegin, 0, 0, 0.0, "task"),
              ev(5.0, EventKind::SpanEnd, 0, 0, 0.0, "task")}));
    trace.lanes.push_back(lane(
        "B", {ev(5.2, EventKind::SpanBegin, 1, 1, 0.0, "task"),
              ev(9.0, EventKind::SpanEnd, 1, 1, 0.0, "task")}));
    trace.lanes.push_back(lane(
        "C", {ev(0.0, EventKind::SpanBegin, 2, 2, 0.0, "task"),
              ev(2.0, EventKind::SpanEnd, 2, 2, 0.0, "task")}));
    const BalanceReport rep = analyze_balance(trace);

    ASSERT_EQ(rep.critical_path.size(), 2u);
    EXPECT_EQ(rep.critical_path[0].task, 0u);
    EXPECT_EQ(rep.critical_path[1].task, 1u);
    EXPECT_DOUBLE_EQ(rep.critical_path[0].wait_s, 0.0);
    EXPECT_NEAR(rep.critical_path[1].wait_s, 0.2, 1e-12);
    EXPECT_NEAR(rep.critical_path_s, 9.0, 1e-12);
    EXPECT_NEAR(rep.critical_coverage, 1.0, 1e-9);
}

TEST(Balance, CriticalPathStopsAtArrivalBoundGaps) {
    // A 4 s gap with the default 5%-of-horizon tolerance (0.45 s): the
    // late span was arrival-bound, so the chain is just that span.
    Trace trace;
    trace.lanes.push_back(lane(
        "A", {ev(0.0, EventKind::SpanBegin, 0, 0, 0.0, "task"),
              ev(1.0, EventKind::SpanEnd, 0, 0, 0.0, "task"),
              ev(5.0, EventKind::SpanBegin, 0, 1, 0.0, "task"),
              ev(9.0, EventKind::SpanEnd, 0, 1, 0.0, "task")}));
    const BalanceReport rep = analyze_balance(trace);
    ASSERT_EQ(rep.critical_path.size(), 1u);
    EXPECT_EQ(rep.critical_path[0].task, 1u);
    EXPECT_NEAR(rep.critical_path_s, 4.0, 1e-12);
}

TEST(Balance, CellsComeFromLabelsOrProgressIntegration) {
    Trace trace;
    trace.lanes.push_back(lane(
        "known", {ev(0.0, EventKind::SpanBegin, 0, 0, 0.0, "task"),
                  ev(10.0, EventKind::SpanEnd, 0, 0, 0.0, "task")}));
    trace.lanes.push_back(lane(
        "unknown", {ev(0.0, EventKind::SpanBegin, 1, 1, 0.0, "task"),
                    ev(2.0, EventKind::Progress, 1, kNoTask, 100.0),
                    ev(4.0, EventKind::Progress, 1, kNoTask, 50.0),
                    ev(10.0, EventKind::SpanEnd, 1, 1, 0.0, "task")}));
    BalanceOptions opts;
    opts.cells_by_label.emplace_back("known", 5000.0);
    const BalanceReport rep = analyze_balance(trace, opts);
    ASSERT_EQ(rep.pe_count, 2u);
    EXPECT_DOUBLE_EQ(rep.pes[0].cells, 5000.0);
    EXPECT_DOUBLE_EQ(rep.pes[0].cells_per_second, 500.0);
    // Fallback: 100 c/s over [0, 2] + 50 c/s over [2, 4].
    EXPECT_NEAR(rep.pes[1].cells, 200.0 + 100.0, 1e-9);
}

TEST(Balance, StragglerIsLatestFinisherWithItsTail) {
    Trace trace;
    trace.lanes.push_back(lane(
        "fast", {ev(0.0, EventKind::SpanBegin, 0, 0, 0.0, "task"),
                 ev(6.0, EventKind::SpanEnd, 0, 0, 0.0, "task")}));
    trace.lanes.push_back(lane(
        "slow", {ev(0.0, EventKind::SpanBegin, 1, 1, 0.0, "task"),
                 ev(9.5, EventKind::SpanEnd, 1, 1, 0.0, "task")}));
    const BalanceReport rep = analyze_balance(trace);
    ASSERT_EQ(rep.straggler, 1u);
    EXPECT_NEAR(rep.straggler_tail_s, 3.5, 1e-12);
    EXPECT_NE(rep.to_text().find("straggler: slow"), std::string::npos);
}

TEST(Balance, DroppedEventCountsSurviveIntoTheReport) {
    Trace trace;
    trace.lanes.push_back(lane(
        "sse0",
        {ev(0.0, EventKind::SpanBegin, 0, 0, 0.0, "task"),
         ev(1.0, EventKind::SpanEnd, 0, 0, 0.0, "task")},
        /*dropped=*/3));
    const BalanceReport rep = analyze_balance(trace);
    EXPECT_EQ(rep.dropped_events, 3u);
    EXPECT_NE(rep.to_text().find("dropped 3"), std::string::npos);
    EXPECT_NE(rep.to_json().find("\"dropped_events\": 3"),
              std::string::npos);
}

// ---- DES integration: determinism and agreement with the simulator's
// own accounting ----------------------------------------------------------

sim::PeModelSpec pe_spec(std::string label, double gcups,
                         core::PeKind kind = core::PeKind::SseCore) {
    sim::PeModelSpec spec;
    spec.label = std::move(label);
    spec.kind = kind;
    spec.peak_gcups = gcups;
    return spec;
}

sim::SimConfig fig5_config() {
    // The paper's Fig. 5 worked example: 20 equal tasks on 1 GPU (6x)
    // + 3 SSE cores, PSS + workload adjustment.
    sim::SimConfig cfg;
    cfg.sched.replicate_only_if_faster = true;
    cfg.policy = core::make_pss;
    cfg.notify_period_s = 0.25;
    cfg.db_residues = 1'000'000;
    cfg.query_lengths.assign(20, 6'000);
    cfg.pes.push_back(pe_spec("GPU1", 6.0, core::PeKind::Gpu));
    cfg.pes.push_back(pe_spec("SSE1", 1.0));
    cfg.pes.push_back(pe_spec("SSE2", 1.0));
    cfg.pes.push_back(pe_spec("SSE3", 1.0));
    return cfg;
}

BalanceReport analyze_fig5(std::string* text = nullptr,
                           std::string* json = nullptr) {
    sim::SimConfig cfg = fig5_config();
    SchedEventLog log;
    cfg.observer = &log;
    const sim::SimReport r = sim::simulate(cfg);
    BalanceOptions opts;
    opts.horizon_s = r.all_idle_time;
    for (const sim::PeReport& pe : r.pes) {
        opts.cells_by_label.emplace_back(pe.label,
                                         static_cast<double>(pe.cells));
    }
    const BalanceReport rep =
        analyze_balance(sim::to_trace(r, cfg.pes, log.take()), opts);
    if (text != nullptr) *text = rep.to_text();
    if (json != nullptr) *json = rep.to_json();
    return rep;
}

TEST(BalanceDes, IdenticalSimulationsProduceByteIdenticalReports) {
    std::string text1, json1, text2, json2;
    analyze_fig5(&text1, &json1);
    analyze_fig5(&text2, &json2);
    EXPECT_EQ(text1, text2);
    EXPECT_EQ(json1, json2);
}

TEST(BalanceDes, BusySecondsMatchTheSimulatorsOwnAccounting) {
    sim::SimConfig cfg = fig5_config();
    SchedEventLog log;
    cfg.observer = &log;
    const sim::SimReport r = sim::simulate(cfg);
    BalanceOptions opts;
    opts.horizon_s = r.all_idle_time;
    const BalanceReport rep =
        analyze_balance(sim::to_trace(r, cfg.pes, log.take()), opts);

    ASSERT_EQ(rep.pe_count, r.pes.size());
    for (std::size_t p = 0; p < r.pes.size(); ++p) {
        EXPECT_EQ(rep.pes[p].label, r.pes[p].label);
        EXPECT_NEAR(rep.pes[p].busy_s, r.pes[p].busy_seconds, 1e-9)
            << r.pes[p].label;
    }
    // Every PE row stays inside the horizon.
    for (const BalancePe& pe : rep.pes) {
        EXPECT_GE(pe.idle_s, 0.0);
        EXPECT_LE(pe.busy_s + pe.comm_s,
                  rep.horizon_s * (1.0 + 1e-9));
    }
}

TEST(BalanceDes, Fig5AuditMatchesThePapersWorkedExample) {
    const BalanceReport rep = analyze_fig5();
    ASSERT_EQ(rep.pe_count, 4u);
    // The GPU does 14 of the 20 tasks (incl. the t20 replica); each SSE
    // core gets 2-3. One replica is issued, to the GPU.
    EXPECT_EQ(rep.pes[0].tasks_accepted, 14u);
    EXPECT_EQ(rep.pes[0].replicas_received, 1u);
    EXPECT_GT(rep.imbalance_ratio, 1.0);
    EXPECT_LT(rep.imbalance_ratio, 1.5);
    EXPECT_GT(rep.efficiency, 0.7);
    // The chain that bounds the run covers (nearly) the whole horizon.
    EXPECT_GT(rep.critical_coverage, 0.9);
    EXPECT_FALSE(rep.critical_path.empty());
}

TEST(BalanceDes, WeightLogRecordsPssTrajectories) {
    sim::SimConfig cfg = fig5_config();
    SchedEventLog events;
    WeightLog weights;
    SchedFanout fanout;
    fanout.add(&events);
    fanout.add(&weights);
    ASSERT_EQ(fanout.size(), 2u);
    cfg.observer = &fanout;
    (void)sim::simulate(cfg);

    ASSERT_FALSE(weights.empty());
    // One sample per Progress event the scheduler saw.
    std::size_t progress_events = 0;
    for (const TraceEvent& e : events.lane().events) {
        if (e.kind == EventKind::Progress) ++progress_events;
    }
    EXPECT_EQ(weights.samples().size(), progress_events);

    const std::string csv = weights.csv({});
    EXPECT_EQ(csv.rfind("pe,label,t_seconds,realised_cps,estimate_cps,"
                        "rel_error\n", 0),
              0u);
    // Once the estimator has history, samples carry a prior estimate;
    // under the DES's steady rates it should track realised closely.
    bool seen_prior = false;
    for (const WeightSample& s : weights.samples()) {
        EXPECT_GT(s.realised_cps, 0.0);
        if (s.prior_estimate_cps > 0.0) {
            seen_prior = true;
            EXPECT_NEAR(s.prior_estimate_cps / s.realised_cps, 1.0, 0.5);
        }
    }
    EXPECT_TRUE(seen_prior);
}

}  // namespace
}  // namespace swh::obs

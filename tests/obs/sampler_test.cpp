// PeriodicSampler: tick cadence, stop idempotence, destructor join,
// and snapshot visibility of concurrent counter updates.

#include "obs/sampler.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace swh::obs {
namespace {

TEST(Sampler, TicksAndDeliversSnapshots) {
    MetricsRegistry reg;
    reg.counter("n").add(7);
    std::atomic<std::uint64_t> seen{0};
    std::atomic<bool> value_ok{true};
    PeriodicSampler sampler(reg, 0.01,
                            [&](const MetricsSnapshot& snap, double elapsed) {
                                if (snap.counter("n") != 7) value_ok = false;
                                if (elapsed < 0.0) value_ok = false;
                                seen.fetch_add(1);
                            });
    // Wait for at least two ticks (generous budget for slow CI).
    for (int i = 0; i < 500 && seen.load() < 2; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    sampler.stop();
    EXPECT_GE(seen.load(), 2u);
    EXPECT_EQ(sampler.ticks(), seen.load());
    EXPECT_TRUE(value_ok.load());
}

TEST(Sampler, StopIsIdempotentAndStopsTicking) {
    MetricsRegistry reg;
    PeriodicSampler sampler(reg, 0.005, [](const MetricsSnapshot&, double) {});
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    sampler.stop();
    const std::uint64_t at_stop = sampler.ticks();
    sampler.stop();  // second stop is a no-op
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    EXPECT_EQ(sampler.ticks(), at_stop);
}

TEST(Sampler, StopBeforeFirstTickIsClean) {
    MetricsRegistry reg;
    std::atomic<std::uint64_t> seen{0};
    {
        PeriodicSampler sampler(
            reg, 10.0,
            [&](const MetricsSnapshot&, double) { seen.fetch_add(1); });
        // Destructor must join promptly despite the 10 s period.
    }
    EXPECT_EQ(seen.load(), 0u);
}

TEST(Sampler, SeesConcurrentUpdates) {
    MetricsRegistry reg;
    Counter& c = reg.counter("live");
    std::atomic<std::uint64_t> last{0};
    PeriodicSampler sampler(reg, 0.005,
                            [&](const MetricsSnapshot& snap, double) {
                                last.store(snap.counter("live"));
                            });
    for (int i = 0; i < 1000; ++i) {
        c.add();
        if (i % 100 == 0) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
    }
    for (int i = 0; i < 500 && last.load() == 0; ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    sampler.stop();
    EXPECT_GT(last.load(), 0u);
    EXPECT_LE(last.load(), 1000u);
}

TEST(Sampler, RejectsNonPositivePeriodAndNullCallback) {
    MetricsRegistry reg;
    EXPECT_THROW(PeriodicSampler(reg, 0.0,
                                 [](const MetricsSnapshot&, double) {}),
                 ContractError);
    EXPECT_THROW(PeriodicSampler(reg, 1.0, nullptr), ContractError);
}

}  // namespace
}  // namespace swh::obs

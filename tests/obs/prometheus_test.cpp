// Prometheus text-exposition coverage: name sanitisation, counter
// `_total` convention, histogram bucket cumulativeness and sum/count
// consistency, quantile gauge series, and a line-level round-trip
// check that every non-comment line parses as `name[{labels}] value`.

#include "obs/prometheus.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace swh::obs {
namespace {

std::vector<std::string> lines_of(const std::string& text) {
    std::vector<std::string> lines;
    std::istringstream is(text);
    for (std::string line; std::getline(is, line);) lines.push_back(line);
    return lines;
}

TEST(Prometheus, CountersGainTotalSuffixAndSanitisedNames) {
    MetricsRegistry reg;
    reg.counter("sched.tasks.assigned").add(42);
    const std::string text = prometheus_text(reg.snapshot());
    EXPECT_NE(text.find("# TYPE swh_sched_tasks_assigned_total counter\n"),
              std::string::npos);
    EXPECT_NE(text.find("swh_sched_tasks_assigned_total 42\n"),
              std::string::npos);
}

TEST(Prometheus, GaugesExportWithCustomPrefix) {
    MetricsRegistry reg;
    reg.gauge("engine.cpu.filter.tau").set(137.0);
    const std::string text = prometheus_text(reg.snapshot(), "x");
    EXPECT_NE(text.find("# TYPE x_engine_cpu_filter_tau gauge\n"),
              std::string::npos);
    EXPECT_NE(text.find("x_engine_cpu_filter_tau 137\n"), std::string::npos);
}

TEST(Prometheus, HistogramBucketsAreCumulativeWithPowerOfTwoBounds) {
    MetricsRegistry reg;
    Histogram& h = reg.histogram("task.seconds");
    for (const double v : {1.5, 3.0, 3.5, 12.0}) h.record(v);
    const std::string text = prometheus_text(reg.snapshot());

    // 1.5 lands in [1,2) (le=2), 3.0 and 3.5 in [2,4) (le=4), 12 in
    // [8,16) (le=16); cumulative counts 1, 3, 4, then +Inf = 4.
    EXPECT_NE(text.find("swh_task_seconds_bucket{le=\"2\"} 1\n"),
              std::string::npos);
    EXPECT_NE(text.find("swh_task_seconds_bucket{le=\"4\"} 3\n"),
              std::string::npos);
    EXPECT_NE(text.find("swh_task_seconds_bucket{le=\"16\"} 4\n"),
              std::string::npos);
    EXPECT_NE(text.find("swh_task_seconds_bucket{le=\"+Inf\"} 4\n"),
              std::string::npos);
    EXPECT_NE(text.find("swh_task_seconds_count 4\n"), std::string::npos);
    // _sum = mean * count = 1.5 + 3 + 3.5 + 12 = 20.
    EXPECT_NE(text.find("swh_task_seconds_sum 20\n"), std::string::npos);
    // The pre-estimated quantiles ride along as a gauge series.
    EXPECT_NE(text.find("# TYPE swh_task_seconds_quantile gauge\n"),
              std::string::npos);
    EXPECT_NE(text.find("swh_task_seconds_quantile{quantile=\"0.95\"} "),
              std::string::npos);
}

TEST(Prometheus, EveryLineIsACommentOrParsesAsNameValue) {
    MetricsRegistry reg;
    reg.counter("a.b").add(1);
    reg.gauge("c.d-e").set(-2.5);
    Histogram& h = reg.histogram("f.g");
    for (int i = 1; i <= 100; ++i) h.record(static_cast<double>(i));
    const std::string text = prometheus_text(reg.snapshot());

    for (const std::string& line : lines_of(text)) {
        ASSERT_FALSE(line.empty());
        if (line.rfind("# TYPE ", 0) == 0) continue;
        // name{labels} value  |  name value
        const std::size_t space = line.rfind(' ');
        ASSERT_NE(space, std::string::npos) << line;
        const std::string name = line.substr(0, space);
        const std::string value = line.substr(space + 1);
        for (const char c : name.substr(0, name.find('{'))) {
            const bool ok = (c >= 'a' && c <= 'z') ||
                            (c >= 'A' && c <= 'Z') ||
                            (c >= '0' && c <= '9') || c == '_' || c == ':';
            EXPECT_TRUE(ok) << "bad metric-name char '" << c << "' in "
                            << line;
        }
        if (value != "+Inf" && value != "-Inf" && value != "NaN") {
            EXPECT_NO_THROW((void)std::stod(value)) << line;
        }
    }
}

TEST(Prometheus, BucketCountsSumToTotalCount) {
    MetricsRegistry reg;
    Histogram& h = reg.histogram("x");
    for (int i = 0; i < 1000; ++i) h.record(0.001 * (i + 1));
    const MetricsSnapshot snap = reg.snapshot();
    const std::string text = prometheus_text(snap);

    // The last finite bucket's cumulative count must equal _count (the
    // +Inf bucket adds nothing for in-range samples).
    std::uint64_t last_cumulative = 0;
    for (const std::string& line : lines_of(text)) {
        if (line.find("_bucket{le=\"") == std::string::npos) continue;
        if (line.find("+Inf") != std::string::npos) continue;
        last_cumulative = std::stoull(line.substr(line.rfind(' ') + 1));
    }
    EXPECT_EQ(last_cumulative, 1000u);
}

TEST(Prometheus, EmptySnapshotProducesEmptyText) {
    EXPECT_TRUE(prometheus_text(MetricsSnapshot{}).empty());
}

}  // namespace
}  // namespace swh::obs

#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

namespace swh::obs {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, LastWriteWins) {
    Gauge g;
    EXPECT_EQ(g.value(), 0.0);
    g.set(1.5);
    g.set(-3.0);
    EXPECT_EQ(g.value(), -3.0);
}

TEST(Histogram, ExactMomentsAndBucketedPercentiles) {
    Histogram h;
    for (const double v : {1.0, 2.0, 4.0, 8.0}) h.record(v);
    const HistogramSummary s = h.summary("x");

    EXPECT_EQ(s.name, "x");
    EXPECT_EQ(s.count, 4u);
    EXPECT_DOUBLE_EQ(s.min, 1.0);
    EXPECT_DOUBLE_EQ(s.max, 8.0);
    EXPECT_DOUBLE_EQ(s.mean, 3.75);
    // One sample per power-of-two bucket, ascending.
    ASSERT_EQ(s.buckets.size(), 4u);
    for (std::size_t i = 1; i < s.buckets.size(); ++i) {
        EXPECT_GT(s.buckets[i].exp2, s.buckets[i - 1].exp2);
        EXPECT_EQ(s.buckets[i].count, 1u);
    }
    // Percentile estimates stay inside the observed range and ordered.
    EXPECT_GE(s.p50, s.min);
    EXPECT_LE(s.p50, s.p90);
    EXPECT_LE(s.p90, s.p99);
    EXPECT_LE(s.p99, s.max);
}

TEST(Histogram, TinyAndHugeValuesClampIntoEdgeBuckets) {
    Histogram h;
    h.record(0.0);     // non-positive -> lowest bucket
    h.record(1e-300);  // below 2^kMinExp -> lowest bucket
    h.record(1e300);   // above the top -> highest bucket
    const HistogramSummary s = h.summary("edge");
    EXPECT_EQ(s.count, 3u);
    ASSERT_EQ(s.buckets.size(), 2u);
    EXPECT_EQ(s.buckets.front().count, 2u);
    EXPECT_EQ(s.buckets.back().count, 1u);
    EXPECT_GE(s.p50, s.min);
    EXPECT_LE(s.p99, s.max);
}

TEST(Histogram, EmptySummaryIsAllZero) {
    const Histogram h;
    const HistogramSummary s = h.summary("empty");
    EXPECT_EQ(s.count, 0u);
    EXPECT_EQ(s.mean, 0.0);
    EXPECT_EQ(s.p50, 0.0);
    EXPECT_TRUE(s.buckets.empty());
}

TEST(MetricsRegistry, HandlesAreStableAndNamed) {
    MetricsRegistry reg;
    Counter& a = reg.counter("a");
    Counter& again = reg.counter("a");
    EXPECT_EQ(&a, &again);  // get-or-create returns the same object
    a.add(7);
    reg.gauge("g").set(2.5);
    reg.histogram("h").record(3.0);

    const MetricsSnapshot snap = reg.snapshot();
    EXPECT_EQ(snap.counter("a"), 7u);
    EXPECT_EQ(snap.counter("missing"), 0u);
    ASSERT_NE(snap.histogram("h"), nullptr);
    EXPECT_EQ(snap.histogram("h")->count, 1u);
    EXPECT_EQ(snap.histogram("missing"), nullptr);
    ASSERT_EQ(snap.gauges.size(), 1u);
    EXPECT_EQ(snap.gauges[0].second, 2.5);
}

TEST(MetricsRegistry, ConcurrentRecordingIsExact) {
    MetricsRegistry reg;
    constexpr int kThreads = 8;
    constexpr int kPerThread = 10'000;
    std::vector<std::thread> pool;
    for (int t = 0; t < kThreads; ++t) {
        pool.emplace_back([&reg] {
            // Handles resolved once per thread, as the registry docs ask.
            Counter& c = reg.counter("hits");
            Histogram& h = reg.histogram("vals");
            for (int i = 0; i < kPerThread; ++i) {
                c.add();
                h.record(1.0);
            }
        });
    }
    for (std::thread& t : pool) t.join();

    const MetricsSnapshot snap = reg.snapshot();
    EXPECT_EQ(snap.counter("hits"),
              static_cast<std::uint64_t>(kThreads) * kPerThread);
    ASSERT_NE(snap.histogram("vals"), nullptr);
    EXPECT_EQ(snap.histogram("vals")->count,
              static_cast<std::uint64_t>(kThreads) * kPerThread);
    EXPECT_DOUBLE_EQ(snap.histogram("vals")->mean, 1.0);
}

TEST(MetricsSnapshot, EmptyAndJson) {
    MetricsRegistry reg;
    EXPECT_TRUE(reg.snapshot().empty());

    reg.counter("n").add(3);
    reg.histogram("d").record(0.5);
    const std::string json = reg.snapshot().to_json();
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("\"n\": 3"), std::string::npos);
    EXPECT_NE(json.find("\"histograms\""), std::string::npos);
    EXPECT_NE(json.find("\"d\""), std::string::npos);
}

}  // namespace
}  // namespace swh::obs

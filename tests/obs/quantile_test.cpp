// Histogram quantile accuracy against a sorted oracle. The estimator
// walks the log2 buckets to the target rank and interpolates linearly
// inside the containing bucket, then clamps to the exact observed
// [min, max] — so the estimate always lands in the same power-of-two
// bucket as the true order statistic, which bounds the relative error:
// est/true ∈ (1/2, 2) for positive samples. These tests pin that bound
// on adversarially wide distributions, plus the Welford edge cases
// (single sample, all-equal, negative values).

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace swh::obs {
namespace {

/// Oracle: the sample at 1-based rank ceil(p/100 * n), matching the
/// estimator's "first bucket whose cumulative count reaches the
/// target" rank convention.
double oracle_percentile(std::vector<double> sorted, double p) {
    const double target = p / 100.0 * static_cast<double>(sorted.size());
    std::size_t rank = static_cast<std::size_t>(std::ceil(target));
    if (rank == 0) rank = 1;
    rank = std::min(rank, sorted.size());
    return sorted[rank - 1];
}

/// Records every sample, then checks p50/p90/p95/p99 against the
/// oracle under the proven bucket bound.
void check_distribution(const std::vector<double>& samples) {
    Histogram h;
    for (const double v : samples) h.record(v);
    const HistogramSummary s = h.summary("x");

    std::vector<double> sorted = samples;
    std::sort(sorted.begin(), sorted.end());

    const std::pair<double, double> cases[] = {
        {50.0, s.p50}, {90.0, s.p90}, {95.0, s.p95}, {99.0, s.p99}};
    for (const auto& [p, est] : cases) {
        const double truth = oracle_percentile(sorted, p);
        ASSERT_GT(truth, 0.0);
        const double ratio = est / truth;
        EXPECT_GE(ratio, 0.5) << "p" << p << " est " << est << " true "
                              << truth;
        EXPECT_LE(ratio, 2.0) << "p" << p << " est " << est << " true "
                              << truth;
        // And always inside the observed range (the clamp).
        EXPECT_GE(est, s.min);
        EXPECT_LE(est, s.max);
    }
}

TEST(Quantile, UniformSamplesStayWithinTheBucketBound) {
    Rng rng(1);
    std::vector<double> samples;
    for (int i = 0; i < 10'000; ++i) samples.push_back(rng.uniform(0.5, 80.0));
    check_distribution(samples);
}

TEST(Quantile, HeavyTailedSamplesStayWithinTheBucketBound) {
    // 20 powers-of-two of dynamic range — the task-duration shape the
    // registry actually sees (microseconds to minutes).
    Rng rng(2);
    std::vector<double> samples;
    for (int i = 0; i < 10'000; ++i) {
        samples.push_back(std::exp2(rng.uniform(-5.0, 15.0)));
    }
    check_distribution(samples);
}

TEST(Quantile, BimodalSamplesStayWithinTheBucketBound) {
    // The hybrid platform's signature shape: a fast-GPU mode and a
    // slow-SSE mode far apart.
    Rng rng(3);
    std::vector<double> samples;
    for (int i = 0; i < 5'000; ++i) {
        samples.push_back(i % 4 == 0 ? rng.uniform(0.9, 1.1)
                                     : rng.uniform(58.0, 62.0));
    }
    check_distribution(samples);
}

TEST(Quantile, ExactWithinOneBucketThanksToTheClamp) {
    // All samples inside one power-of-two bucket: min == max-ish, and
    // the clamp pins every percentile into the observed range.
    Histogram h;
    for (int i = 0; i < 100; ++i) h.record(5.0 + 0.001 * i);
    const HistogramSummary s = h.summary("x");
    EXPECT_GE(s.p50, 5.0);
    EXPECT_LE(s.p99, 5.099);
}

TEST(Quantile, SingleSampleIsItsOwnEverything) {
    Histogram h;
    h.record(3.25);
    const HistogramSummary s = h.summary("x");
    EXPECT_EQ(s.count, 1u);
    EXPECT_DOUBLE_EQ(s.min, 3.25);
    EXPECT_DOUBLE_EQ(s.max, 3.25);
    EXPECT_DOUBLE_EQ(s.mean, 3.25);
    EXPECT_DOUBLE_EQ(s.stdev, 0.0);
    // The clamp collapses every percentile onto the sample.
    EXPECT_DOUBLE_EQ(s.p50, 3.25);
    EXPECT_DOUBLE_EQ(s.p95, 3.25);
    EXPECT_DOUBLE_EQ(s.p99, 3.25);
}

TEST(Quantile, AllEqualSamplesHaveZeroSpread) {
    Histogram h;
    for (int i = 0; i < 1'000; ++i) h.record(7.0);
    const HistogramSummary s = h.summary("x");
    EXPECT_DOUBLE_EQ(s.mean, 7.0);
    EXPECT_NEAR(s.stdev, 0.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.p50, 7.0);
    EXPECT_DOUBLE_EQ(s.p95, 7.0);
    EXPECT_DOUBLE_EQ(s.p99, 7.0);
    ASSERT_EQ(s.buckets.size(), 1u);
    EXPECT_EQ(s.buckets[0].count, 1'000u);
}

TEST(Quantile, NegativeSamplesLandInTheLowestBucketAndClampToRange) {
    // The histogram documents non-negative samples, but a buggy caller
    // must not corrupt it: negatives land in bucket 0 and the Welford
    // moments stay exact.
    Histogram h;
    for (const double v : {-4.0, -2.0, -1.0, 1.0}) h.record(v);
    const HistogramSummary s = h.summary("x");
    EXPECT_EQ(s.count, 4u);
    EXPECT_DOUBLE_EQ(s.min, -4.0);
    EXPECT_DOUBLE_EQ(s.max, 1.0);
    EXPECT_DOUBLE_EQ(s.mean, -1.5);
    // Percentile estimates stay inside the observed range.
    for (const double p : {s.p50, s.p90, s.p95, s.p99}) {
        EXPECT_GE(p, -4.0);
        EXPECT_LE(p, 1.0);
    }
}

TEST(Quantile, P95SitsBetweenP90AndP99) {
    Rng rng(4);
    Histogram h;
    for (int i = 0; i < 10'000; ++i) {
        h.record(std::exp2(rng.uniform(0.0, 10.0)));
    }
    const HistogramSummary s = h.summary("x");
    EXPECT_LE(s.p50, s.p90);
    EXPECT_LE(s.p90, s.p95);
    EXPECT_LE(s.p95, s.p99);
    EXPECT_LE(s.p99, s.max);
}

}  // namespace
}  // namespace swh::obs

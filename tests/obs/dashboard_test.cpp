// Dashboard frame rendering from a synthetic MetricsSnapshot: per-PE
// rate bars, counters in the header, funnel and queue lines, and
// graceful absence of everything when the snapshot is empty.

#include "obs/dashboard.hpp"

#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.hpp"

namespace swh::obs {
namespace {

MetricsSnapshot synthetic() {
    MetricsRegistry reg;
    reg.gauge("sched.pe.0.rate_cps").set(6.0e9);
    reg.gauge("sched.pe.1.rate_cps").set(1.0e9);
    reg.counter("sched.pe.0.accepted").add(14);
    reg.counter("sched.pe.1.accepted").add(3);
    reg.counter("sched.replicas_issued").add(1);
    reg.counter("sched.completions_accepted").add(17);
    reg.gauge("engine.cpu.filter.tau").set(87.0);
    reg.counter("engine.cpu.filter.pruned").add(900);
    reg.counter("engine.cpu.subjects_interseq").add(100);
    reg.counter("engine.cpu.subjects_striped").add(0);
    Histogram& depth = reg.histogram("channel.master_inbox.depth");
    for (int i = 0; i < 10; ++i) depth.record(2.0);
    return reg.snapshot();
}

TEST(Dashboard, RendersPeRowsWithLabelsAndRates) {
    DashboardOptions opts;
    opts.pe_labels = {"GPU1", "SSE1"};
    opts.elapsed_s = 12.5;
    const std::string frame = render_dashboard(synthetic(), opts);
    EXPECT_NE(frame.find("GPU1"), std::string::npos);
    EXPECT_NE(frame.find("SSE1"), std::string::npos);
    EXPECT_NE(frame.find("GCUPS"), std::string::npos);
    // Header carries elapsed time and acceptance totals.
    EXPECT_NE(frame.find("12.5"), std::string::npos);
    EXPECT_FALSE(frame.empty());
    EXPECT_EQ(frame.back(), '\n');
}

TEST(Dashboard, UnknownPesGetFallbackLabels) {
    const std::string frame = render_dashboard(synthetic(), {});
    EXPECT_NE(frame.find("pe0"), std::string::npos);
    EXPECT_NE(frame.find("pe1"), std::string::npos);
}

TEST(Dashboard, ShowsFunnelThresholdWhenArmed) {
    const std::string frame = render_dashboard(synthetic(), {});
    EXPECT_NE(frame.find("87"), std::string::npos);  // tau value
}

TEST(Dashboard, EmptySnapshotRendersAFrameWithoutPeRows) {
    const std::string frame = render_dashboard(MetricsSnapshot{}, {});
    EXPECT_FALSE(frame.empty());
    EXPECT_EQ(frame.find("pe0"), std::string::npos);
}

TEST(Dashboard, RespectsExplicitFullScale) {
    DashboardOptions opts;
    opts.full_scale_gcups = 10.0;
    opts.bar_columns = 20;
    const std::string a = render_dashboard(synthetic(), opts);
    opts.full_scale_gcups = 100.0;
    const std::string b = render_dashboard(synthetic(), opts);
    EXPECT_NE(a, b);  // same data, different axis scale
}

}  // namespace
}  // namespace swh::obs

#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "db/database.hpp"
#include "db/presets.hpp"
#include "engines/cpu_engine.hpp"
#include "obs/metrics.hpp"
#include "runtime/hybrid_runtime.hpp"

namespace swh::obs {
namespace {

// ---- Minimal JSON parser (round-trip check only) ------------------------
// Enough of RFC 8259 to load what export_chrome_json writes: objects,
// arrays, strings with the escapes json_escape emits, and numbers.

struct JsonValue {
    enum class Type { Null, Number, String, Array, Object };
    Type type = Type::Null;
    double number = 0.0;
    std::string str;
    std::vector<JsonValue> array;
    std::map<std::string, JsonValue> object;

    const JsonValue& at(const std::string& key) const {
        const auto it = object.find(key);
        if (it == object.end()) {
            throw std::runtime_error("missing key: " + key);
        }
        return it->second;
    }
    bool has(const std::string& key) const {
        return object.count(key) > 0;
    }
};

class JsonParser {
public:
    explicit JsonParser(std::string text) : s_(std::move(text)) {}

    JsonValue parse() {
        JsonValue v = value();
        skip_ws();
        if (i_ != s_.size()) throw std::runtime_error("trailing JSON");
        return v;
    }

private:
    void skip_ws() {
        while (i_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[i_]))) {
            ++i_;
        }
    }
    char peek() {
        skip_ws();
        if (i_ >= s_.size()) throw std::runtime_error("unexpected end");
        return s_[i_];
    }
    void expect(char c) {
        if (peek() != c) {
            throw std::runtime_error(std::string("expected '") + c +
                                     "' got '" + s_[i_] + "'");
        }
        ++i_;
    }

    JsonValue value() {
        const char c = peek();
        if (c == '{') return object();
        if (c == '[') return array();
        if (c == '"') return string_value();
        return number();
    }

    JsonValue object() {
        expect('{');
        JsonValue v;
        v.type = JsonValue::Type::Object;
        if (peek() == '}') {
            ++i_;
            return v;
        }
        while (true) {
            JsonValue key = string_value();
            expect(':');
            v.object.emplace(key.str, value());
            if (peek() == ',') {
                ++i_;
                continue;
            }
            expect('}');
            return v;
        }
    }

    JsonValue array() {
        expect('[');
        JsonValue v;
        v.type = JsonValue::Type::Array;
        if (peek() == ']') {
            ++i_;
            return v;
        }
        while (true) {
            v.array.push_back(value());
            if (peek() == ',') {
                ++i_;
                continue;
            }
            expect(']');
            return v;
        }
    }

    JsonValue string_value() {
        expect('"');
        JsonValue v;
        v.type = JsonValue::Type::String;
        while (i_ < s_.size() && s_[i_] != '"') {
            char c = s_[i_++];
            if (c == '\\') {
                if (i_ >= s_.size()) {
                    throw std::runtime_error("bad escape");
                }
                const char e = s_[i_++];
                switch (e) {
                    case 'n': c = '\n'; break;
                    case 't': c = '\t'; break;
                    case 'u':
                        c = static_cast<char>(
                            std::stoi(s_.substr(i_, 4), nullptr, 16));
                        i_ += 4;
                        break;
                    default: c = e;
                }
            }
            v.str.push_back(c);
        }
        expect('"');
        return v;
    }

    JsonValue number() {
        const std::size_t start = i_;
        while (i_ < s_.size() &&
               (std::isdigit(static_cast<unsigned char>(s_[i_])) ||
                s_[i_] == '-' || s_[i_] == '+' || s_[i_] == '.' ||
                s_[i_] == 'e' || s_[i_] == 'E')) {
            ++i_;
        }
        if (i_ == start) throw std::runtime_error("bad number");
        JsonValue v;
        v.type = JsonValue::Type::Number;
        v.number = std::stod(s_.substr(start, i_ - start));
        return v;
    }

    const std::string s_;
    std::size_t i_ = 0;
};

// ---- Fixtures ------------------------------------------------------------

const align::ScoreMatrix& blosum() {
    static const align::ScoreMatrix m = align::ScoreMatrix::blosum62();
    return m;
}

/// Runs 8 queries against a small database on 4 concurrent CPU slaves
/// with tracing + metrics on; returns the drained trace and the report.
struct TracedRun {
    Trace trace;
    runtime::RunReport report;
    std::size_t n_queries = 0;
};

TracedRun traced_run() {
    db::DatabaseSpec spec;
    spec.name = "obs";
    spec.num_sequences = 30;
    spec.length.min_len = 20;
    spec.length.max_len = 80;
    spec.seed = 61;
    const db::Database database = db::Database::generate(spec);
    const auto queries = db::make_query_set(8, 30, 90, 63);

    engines::EngineConfig config;
    config.matrix = &blosum();
    config.gap = {10, 2};
    config.top_k = 3;
    config.isa = simd::best_supported();
    config.progress_grain = 100'000;

    TraceRecorder recorder;
    MetricsRegistry registry;
    config.metrics = &registry;

    runtime::RuntimeOptions options;
    options.notify_period_s = 0.01;
    options.top_k = 3;
    options.trace = &recorder;
    options.metrics = &registry;

    runtime::HybridRuntime rt(database, queries, options);
    std::vector<runtime::SlaveSpec> slaves;
    for (int i = 0; i < 4; ++i) {
        slaves.push_back(runtime::SlaveSpec{
            "sse" + std::to_string(i),
            std::make_unique<engines::CpuEngine>(config)});
    }
    TracedRun out;
    out.report = rt.run(std::move(slaves), core::make_pss());
    out.trace = recorder.drain();
    out.n_queries = queries.size();
    return out;
}

const TracedRun& shared_run() {
    static const TracedRun run = traced_run();
    return run;
}

const TraceLaneData* find_lane(const Trace& trace, const std::string& label) {
    for (const TraceLaneData& lane : trace.lanes) {
        if (lane.label == label) return &lane;
    }
    return nullptr;
}

// ---- Tests ---------------------------------------------------------------

TEST(TraceRecorder, ConcurrentRunKeepsPerLaneOrderAndBalance) {
    const TracedRun& run = shared_run();
    ASSERT_FALSE(run.trace.lanes.empty());

    std::size_t task_spans = 0;
    for (const TraceLaneData& lane : run.trace.lanes) {
        EXPECT_EQ(lane.dropped, 0u) << lane.label;
        // Strict per-lane ordering: one thread (or one lock) per lane.
        double prev = 0.0;
        std::size_t begins = 0;
        std::size_t ends = 0;
        std::vector<const char*> open;
        for (const TraceEvent& e : lane.events) {
            EXPECT_GE(e.t, prev) << "out-of-order event in " << lane.label;
            prev = e.t;
            if (e.kind == EventKind::SpanBegin) {
                ++begins;
                open.push_back(e.name);
            } else if (e.kind == EventKind::SpanEnd) {
                ++ends;
                // LIFO nesting: an end always closes the innermost span.
                ASSERT_FALSE(open.empty()) << lane.label;
                EXPECT_STREQ(e.name, open.back());
                open.pop_back();
                if (std::string(e.name) == "task") ++task_spans;
            }
        }
        EXPECT_EQ(begins, ends) << "unbalanced spans in " << lane.label;
        EXPECT_TRUE(open.empty());
    }
    // Every query ran as a task span on some slave at least once
    // (replicas can add more).
    EXPECT_GE(task_spans, run.n_queries);

    // Each of the 4 slaves has its own lane carrying task + kernel spans.
    for (int i = 0; i < 4; ++i) {
        const TraceLaneData* lane =
            find_lane(run.trace, "sse" + std::to_string(i));
        ASSERT_NE(lane, nullptr);
    }
}

TEST(TraceRecorder, MasterLaneCarriesTaskLifecycle) {
    const TracedRun& run = shared_run();
    const TraceLaneData* master = find_lane(run.trace, "master");
    ASSERT_NE(master, nullptr);

    std::set<core::TaskId> assigned;
    std::size_t accepted = 0;
    std::size_t registered = 0;
    for (const TraceEvent& e : master->events) {
        if (e.kind == EventKind::TaskAssigned ||
            e.kind == EventKind::ReplicaIssued) {
            assigned.insert(e.task);
        }
        if (e.kind == EventKind::CompletedAccepted) ++accepted;
        if (e.kind == EventKind::SlaveRegistered) ++registered;
    }
    EXPECT_EQ(assigned.size(), run.n_queries);  // every task assigned
    EXPECT_EQ(accepted, run.n_queries);         // exactly one winner each
    EXPECT_EQ(registered, 4u);
}

TEST(TraceRecorder, RunReportCarriesMetricsSnapshot) {
    const TracedRun& run = shared_run();
    const MetricsSnapshot& m = run.report.metrics;
    ASSERT_FALSE(m.empty());

    // At least one non-empty package was handed out (how the 8 tasks
    // split across the 4 slaves is timing-dependent).
    EXPECT_GE(m.counter("sched.packages"), 1u);
    const HistogramSummary* dur = m.histogram("task.duration_s.sse");
    ASSERT_NE(dur, nullptr);
    // One duration sample per executed task span (accepted + discarded
    // + cancelled all ran through a slave).
    EXPECT_GE(dur->count, run.n_queries);
    EXPECT_GT(dur->mean, 0.0);
    EXPECT_LE(dur->min, dur->p50);
    EXPECT_LE(dur->p50, dur->max);

    ASSERT_NE(m.histogram("channel.master_inbox.depth"), nullptr);
    EXPECT_GT(m.counter("engine.cpu.runs8") + m.counter("engine.cpu.runs16") +
                  m.counter("engine.cpu.runs32"),
              0u);

    // Satellite: per-kind cell accounting adds up to the run totals.
    std::uint64_t kind_accepted = 0;
    for (const runtime::KindCells& kc : run.report.cells_by_kind()) {
        kind_accepted += kc.cells_accepted;
    }
    EXPECT_EQ(kind_accepted, run.report.accepted_cells);

    // to_json parses back and contains the counters section.
    JsonParser parser(m.to_json());
    const JsonValue parsed = parser.parse();
    EXPECT_TRUE(parsed.has("counters"));
    EXPECT_TRUE(parsed.has("histograms"));
}

TEST(TraceExport, ChromeJsonRoundTrips) {
    const TracedRun& run = shared_run();
    const std::string json = chrome_json(run.trace);

    JsonParser parser(json);
    const JsonValue root = parser.parse();
    const JsonValue& events = root.at("traceEvents");
    ASSERT_EQ(events.type, JsonValue::Type::Array);

    // Metadata: one thread_name record per lane, names matching.
    std::map<double, std::string> tid_names;
    std::size_t begins = 0;
    std::size_t ends = 0;
    std::size_t instants = 0;
    for (const JsonValue& e : events.array) {
        const std::string ph = e.at("ph").str;
        if (ph == "M") {
            EXPECT_EQ(e.at("name").str, "thread_name");
            tid_names[e.at("tid").number] =
                e.at("args").at("name").str;
            continue;
        }
        EXPECT_TRUE(e.has("ts"));
        EXPECT_EQ(e.at("pid").number, 0.0);
        if (ph == "B") ++begins;
        if (ph == "E") ++ends;
        if (ph == "i") {
            ++instants;
            EXPECT_EQ(e.at("s").str, "t");  // thread-scoped instant
        }
    }
    ASSERT_EQ(tid_names.size(), run.trace.lanes.size());
    for (std::size_t i = 0; i < run.trace.lanes.size(); ++i) {
        EXPECT_EQ(tid_names[static_cast<double>(i)],
                  run.trace.lanes[i].label);
    }
    EXPECT_EQ(begins, ends);
    EXPECT_GE(begins, run.n_queries);  // at least the task spans
    EXPECT_GT(instants, 0u);           // progress/lifecycle marks

    // Total: metadata + one record per captured event.
    EXPECT_EQ(events.array.size(),
              run.trace.lanes.size() + run.trace.total_events());
}

TEST(TraceExport, CsvHasHeaderAndOneRowPerEvent) {
    const TracedRun& run = shared_run();
    std::ostringstream os;
    export_csv(run.trace, os);
    const std::string csv = os.str();

    std::istringstream in(csv);
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(line, "lane,label,t_seconds,kind,pe,task,value,name");
    std::size_t rows = 0;
    bool footer_seen = false;
    while (std::getline(in, line)) {
        if (line.empty()) continue;
        // The `# dropped_events,N` footer is a comment, not a row.
        if (line.front() == '#') {
            footer_seen = true;
            continue;
        }
        ++rows;
    }
    EXPECT_EQ(rows, run.trace.total_events());
    EXPECT_TRUE(footer_seen);
}

TEST(TraceExport, GanttRendersOneRowPerSpanLane) {
    const TracedRun& run = shared_run();
    const std::string gantt =
        render_trace_gantt(run.trace, /*time_step=*/0.001);
    // The four slave lanes carry spans; channel lanes don't get rows.
    for (int i = 0; i < 4; ++i) {
        EXPECT_NE(gantt.find("sse" + std::to_string(i)), std::string::npos);
    }
    EXPECT_EQ(gantt.find("chan:"), std::string::npos);
}

TEST(TraceRecorder, DisabledRecorderCapturesNothing) {
    TraceRecorder recorder(TraceRecorder::kDefaultLaneCapacity,
                           /*enabled=*/false);
    TraceLane& lane = recorder.lane("idle");
    for (int i = 0; i < 100; ++i) {
        lane.emit(EventKind::Progress, 0, kNoTask, 1.0);
        lane.span_begin("task", 1);
        lane.span_end("task", 1);
    }
    const Trace trace = recorder.drain();
    ASSERT_EQ(trace.lanes.size(), 1u);
    EXPECT_TRUE(trace.lanes[0].events.empty());
    EXPECT_EQ(trace.lanes[0].dropped, 0u);
}

TEST(TraceRecorder, FullLaneDropsOldestAndCounts) {
    TraceRecorder recorder(/*lane_capacity=*/4);
    TraceLane& lane = recorder.lane("tiny");
    for (std::uint32_t i = 0; i < 10; ++i) {
        lane.emit(EventKind::Progress, i);
    }
    EXPECT_EQ(lane.dropped(), 6u);
    const Trace trace = recorder.drain();
    ASSERT_EQ(trace.lanes[0].events.size(), 4u);
    // Oldest dropped: the survivors are the most recent four emits.
    EXPECT_EQ(trace.lanes[0].events.front().pe, 6u);
    EXPECT_EQ(trace.lanes[0].events.back().pe, 9u);
}

TEST(TraceRecorder, HandcraftedTraceExportsLikeACapturedOne) {
    // The simulator/bench path: build a Trace by hand on virtual time.
    Trace trace;
    TraceLaneData lane;
    lane.label = "GPU1";
    lane.events.push_back(
        TraceEvent{0.0, EventKind::SpanBegin, 0, 7, 0.0, "task"});
    lane.events.push_back(
        TraceEvent{2.0, EventKind::SpanEnd, 0, 7, 0.0, "task"});
    trace.lanes.push_back(std::move(lane));

    JsonParser parser(chrome_json(trace));
    const JsonValue root = parser.parse();
    EXPECT_EQ(root.at("traceEvents").array.size(), 3u);  // M + B + E

    const std::string gantt = render_trace_gantt(trace, 1.0);
    EXPECT_NE(gantt.find("GPU1"), std::string::npos);
    EXPECT_NE(gantt.find("77"), std::string::npos);  // task 7, two columns
}

}  // namespace
}  // namespace swh::obs

// Multi-process transport equivalence (ISSUE 10 tentpole): the socket
// runtime — RemoteMaster plus run_remote_slave over real loopback TCP —
// must produce top-k hits bit-identical to both the in-process threaded
// runtime and the serial reference, healthy or faulted. The slaves run
// as threads here (same code path as the swhybrid_slave process; only
// main() differs), so sanitizers see the whole exchange.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <thread>
#include <vector>

#include "align/sw_scalar.hpp"
#include "db/database.hpp"
#include "db/presets.hpp"
#include "engines/cpu_engine.hpp"
#include "engines/faulty_engine.hpp"
#include "runtime/hybrid_runtime.hpp"
#include "runtime/remote.hpp"

namespace swh::runtime {
namespace {

const align::ScoreMatrix& blosum() {
    static const align::ScoreMatrix m = align::ScoreMatrix::blosum62();
    return m;
}

db::Database test_db(std::size_t n = 30, std::uint64_t seed = 31) {
    db::DatabaseSpec spec;
    spec.name = "sock";
    spec.num_sequences = n;
    spec.length.min_len = 20;
    spec.length.max_len = 80;
    spec.seed = seed;
    return db::Database::generate(spec);
}

std::vector<align::Sequence> test_queries(std::size_t n = 8) {
    return db::make_query_set(n, 30, 90, 33);
}

// Serial oracle: the fault-free baseline every transport must match.
std::vector<std::vector<core::Hit>> reference_hits(
    const db::Database& database,
    const std::vector<align::Sequence>& queries, std::size_t k) {
    std::vector<std::vector<core::Hit>> out;
    for (const auto& q : queries) {
        std::vector<core::Hit> hits;
        for (std::size_t i = 0; i < database.size(); ++i) {
            hits.push_back(core::Hit{
                static_cast<std::uint32_t>(i),
                align::sw_score_affine(q.residues, database[i].residues,
                                       blosum(), {10, 2})});
        }
        std::sort(hits.begin(), hits.end(),
                  [](const core::Hit& a, const core::Hit& b) {
                      if (a.score != b.score) return a.score > b.score;
                      return a.db_index < b.db_index;
                  });
        hits.resize(std::min(hits.size(), k));
        out.push_back(std::move(hits));
    }
    return out;
}

RemoteEngineFactory cpu_factory(engines::FaultPlan* plan = nullptr) {
    return [plan](const net::wire::Welcome& welcome)
               -> std::unique_ptr<engines::ComputeEngine> {
        engines::EngineConfig config;
        config.matrix = &blosum();
        config.gap = {10, 2};
        config.top_k = welcome.top_k;  // master-owned, from the handshake
        config.isa = simd::best_supported();
        std::unique_ptr<engines::ComputeEngine> engine =
            std::make_unique<engines::CpuEngine>(config);
        if (plan != nullptr) {
            engine = std::make_unique<engines::FaultyEngine>(
                std::move(engine), *plan);
        }
        return engine;
    };
}

/// Runs a RemoteMaster against `n` slave threads dialling loopback TCP.
RunReport run_socket(const db::Database& database,
                     const std::vector<align::Sequence>& queries,
                     RemoteMasterOptions options,
                     std::vector<RemoteEngineFactory> factories,
                     std::vector<RemoteSlaveResult>* slave_results = nullptr,
                     std::vector<RemoteSlaveOptions> slave_options = {}) {
    options.expect_slaves = factories.size();
    RemoteMaster master(database, queries, options);
    const std::uint16_t port = master.listen();
    std::vector<RemoteSlaveResult> results(factories.size());
    std::vector<std::thread> slaves;
    for (std::size_t i = 0; i < factories.size(); ++i) {
        slaves.emplace_back([&, i] {
            RemoteSlaveOptions so = i < slave_options.size()
                                        ? slave_options[i]
                                        : RemoteSlaveOptions{};
            so.port = port;
            so.label = "remote" + std::to_string(i);
            results[i] =
                run_remote_slave(database, queries, so, factories[i]);
        });
    }
    RunReport report = master.run(core::make_self_scheduling());
    for (auto& t : slaves) t.join();
    if (slave_results != nullptr) *slave_results = std::move(results);
    return report;
}

TEST(SocketRuntime, LoopbackMatchesInProcessAndReference) {
    const db::Database database = test_db();
    const auto queries = test_queries();
    const auto reference = reference_hits(database, queries, 3);

    RuntimeOptions ro;
    ro.top_k = 3;
    ro.notify_period_s = 0.01;
    ro.sched.workload_adjust = true;

    // In-process threaded baseline.
    engines::EngineConfig config;
    config.matrix = &blosum();
    config.gap = {10, 2};
    config.top_k = 3;
    config.isa = simd::best_supported();
    HybridRuntime rt(database, queries, ro);
    std::vector<SlaveSpec> specs;
    specs.push_back(
        {"sse0", std::make_unique<engines::CpuEngine>(config)});
    specs.push_back(
        {"sse1", std::make_unique<engines::CpuEngine>(config)});
    const RunReport inproc =
        rt.run(std::move(specs), core::make_self_scheduling());

    // Same workload over loopback TCP, two slave endpoints.
    RemoteMasterOptions mo;
    mo.runtime = ro;
    std::vector<RemoteSlaveResult> slave_results;
    const RunReport socket =
        run_socket(database, queries, mo, {cpu_factory(), cpu_factory()},
                   &slave_results);

    EXPECT_EQ(socket.hits, reference);
    EXPECT_EQ(socket.hits, inproc.hits);
    EXPECT_TRUE(socket.failed_tasks.empty());
    ASSERT_EQ(slave_results.size(), 2u);
    for (const RemoteSlaveResult& r : slave_results) {
        EXPECT_TRUE(r.connected) << r.error;
        EXPECT_TRUE(r.error.empty()) << r.error;
        EXPECT_EQ(r.welcome.top_k, 3u);
        EXPECT_FALSE(r.report.crashed);
    }
    ASSERT_EQ(socket.slaves.size(), 2u);
    // Labels/kinds came over the wire in the Hello.
    EXPECT_EQ(socket.slaves[0].label, "remote0");
    EXPECT_EQ(socket.slaves[1].label, "remote1");
}

// The PR-5 fault machinery over sockets: engine failures are retried,
// a stalled inbound queue is tolerated, and the hits stay bit-identical.
TEST(SocketRuntime, EngineFaultsAndChannelStallStayBitIdentical) {
    const db::Database database = test_db();
    const auto queries = test_queries();
    const auto reference = reference_hits(database, queries, 3);

    RuntimeOptions ro;
    ro.top_k = 3;
    ro.notify_period_s = 0.01;
    ro.liveness_timeout_s = 2.0;
    ro.heartbeat_period_s = 0.05;
    ro.max_task_retries = 10;
    ro.retry_backoff_s = 0.002;

    engines::FaultPlan plan;
    plan.kind = engines::FaultKind::Throw;
    plan.after_cells = 30'000;
    plan.seed = 99;

    RemoteMasterOptions mo;
    mo.runtime = ro;
    RemoteSlaveOptions stalled;
    stalled.inbox_stall_s = 0.002;
    std::vector<RemoteSlaveResult> slave_results;
    const RunReport report = run_socket(
        database, queries, mo, {cpu_factory(&plan), cpu_factory()},
        &slave_results, {stalled, RemoteSlaveOptions{}});

    EXPECT_EQ(report.hits, reference);
    EXPECT_TRUE(report.failed_tasks.empty());
    EXPECT_GT(report.task_failures, 0u)
        << "the faulty engine should have failed at least once";
}

// A slave process crashing mid-task over a socket: the link goes quiet,
// liveness declares it dead, its tasks are requeued on the survivor,
// and the hits still match the oracle.
TEST(SocketRuntime, SlaveCrashOverSocketIsRecoveredBitIdentical) {
    const db::Database database = test_db();
    const auto queries = test_queries();
    const auto reference = reference_hits(database, queries, 3);

    RuntimeOptions ro;
    ro.top_k = 3;
    ro.notify_period_s = 0.01;
    ro.liveness_timeout_s = 0.25;
    ro.heartbeat_period_s = 0.05;
    ro.retry_backoff_s = 0.005;

    engines::FaultPlan plan;
    plan.kind = engines::FaultKind::Crash;
    plan.after_cells = 50'000;

    RemoteMasterOptions mo;
    mo.runtime = ro;
    std::vector<RemoteSlaveResult> slave_results;
    const RunReport report =
        run_socket(database, queries, mo,
                   {cpu_factory(&plan), cpu_factory()}, &slave_results);

    EXPECT_EQ(report.hits, reference);
    EXPECT_TRUE(report.failed_tasks.empty());
    EXPECT_GE(report.slaves_presumed_dead, 1u);
    ASSERT_EQ(slave_results.size(), 2u);
    EXPECT_TRUE(slave_results[0].report.crashed);
    EXPECT_FALSE(slave_results[1].report.crashed);
}

// Lossy slave->master channel faults apply to decoded socket traffic
// exactly as in-process: dropped messages are recovered by liveness +
// replication and the result stays bit-identical.
TEST(SocketRuntime, LossyMasterInboxStaysBitIdentical) {
    const db::Database database = test_db();
    const auto queries = test_queries(6);
    const auto reference = reference_hits(database, queries, 3);

    RuntimeOptions ro;
    ro.top_k = 3;
    ro.notify_period_s = 0.01;
    ro.liveness_timeout_s = 0.3;
    ro.heartbeat_period_s = 0.05;
    ro.retry_backoff_s = 0.005;
    ro.master_link_faults.drop_prob = 0.10;
    ro.master_link_faults.seed = 4242;

    RemoteMasterOptions mo;
    mo.runtime = ro;
    const RunReport report = run_socket(database, queries, mo,
                                        {cpu_factory(), cpu_factory()});
    EXPECT_EQ(report.hits, reference);
    EXPECT_TRUE(report.failed_tasks.empty());
}

}  // namespace
}  // namespace swh::runtime

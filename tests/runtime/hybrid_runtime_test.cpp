#include "runtime/hybrid_runtime.hpp"

#include <gtest/gtest.h>

#include "align/sw_scalar.hpp"
#include "db/database.hpp"
#include "db/presets.hpp"
#include "engines/cpu_engine.hpp"
#include "engines/sim_gpu_engine.hpp"
#include "engines/throttled_engine.hpp"

namespace swh::runtime {
namespace {

const align::ScoreMatrix& blosum() {
    static const align::ScoreMatrix m = align::ScoreMatrix::blosum62();
    return m;
}

engines::EngineConfig engine_config() {
    engines::EngineConfig c;
    c.matrix = &blosum();
    c.gap = {10, 2};
    c.top_k = 3;
    c.isa = simd::best_supported();
    c.progress_grain = 100'000;
    return c;
}

db::Database test_db(std::size_t n = 30, std::uint64_t seed = 31) {
    db::DatabaseSpec spec;
    spec.name = "rt";
    spec.num_sequences = n;
    spec.length.min_len = 20;
    spec.length.max_len = 80;
    spec.seed = seed;
    return db::Database::generate(spec);
}

std::vector<align::Sequence> test_queries(std::size_t n = 8) {
    return db::make_query_set(n, 30, 90, 33);
}

std::unique_ptr<engines::ComputeEngine> cpu_engine() {
    return std::make_unique<engines::CpuEngine>(engine_config());
}

RuntimeOptions fast_options() {
    RuntimeOptions o;
    o.notify_period_s = 0.01;
    o.top_k = 3;
    return o;
}

// Reference: serially computed top-k hits per query.
std::vector<std::vector<core::Hit>> reference_hits(
    const db::Database& database, const std::vector<align::Sequence>& queries,
    std::size_t k) {
    std::vector<std::vector<core::Hit>> out;
    for (const auto& q : queries) {
        std::vector<core::Hit> hits;
        for (std::size_t i = 0; i < database.size(); ++i) {
            hits.push_back(core::Hit{
                static_cast<std::uint32_t>(i),
                align::sw_score_affine(q.residues, database[i].residues,
                                       blosum(), {10, 2})});
        }
        std::sort(hits.begin(), hits.end(),
                  [](const core::Hit& a, const core::Hit& b) {
                      if (a.score != b.score) return a.score > b.score;
                      return a.db_index < b.db_index;
                  });
        hits.resize(std::min(hits.size(), k));
        out.push_back(std::move(hits));
    }
    return out;
}

TEST(HybridRuntime, SingleSlaveMatchesSerialReference) {
    const db::Database database = test_db();
    const auto queries = test_queries();
    HybridRuntime rt(database, queries, fast_options());
    std::vector<SlaveSpec> slaves;
    slaves.push_back(SlaveSpec{"sse0", cpu_engine()});
    const RunReport report = rt.run(std::move(slaves), core::make_pss());

    EXPECT_EQ(report.hits, reference_hits(database, queries, 3));
    EXPECT_EQ(report.accepted_cells, report.computed_cells);
    EXPECT_EQ(report.slaves[0].results_accepted, queries.size());
    EXPECT_GT(report.gcups, 0.0);
}

TEST(HybridRuntime, HeterogeneousSlavesProduceSameHits) {
    const db::Database database = test_db(40, 35);
    const auto queries = test_queries(10);
    HybridRuntime rt(database, queries, fast_options());
    std::vector<SlaveSpec> slaves;
    slaves.push_back(SlaveSpec{
        "gpu0", std::make_unique<engines::SimGpuEngine>(
                    engine_config(), engines::GpuDeviceModel{}, false)});
    slaves.push_back(SlaveSpec{"sse0", cpu_engine()});
    slaves.push_back(SlaveSpec{"sse1", cpu_engine()});
    const RunReport report = rt.run(std::move(slaves), core::make_pss());

    EXPECT_EQ(report.hits, reference_hits(database, queries, 3));
    std::size_t total_accepted = 0;
    for (const SlaveReport& s : report.slaves) {
        total_accepted += s.results_accepted;
    }
    EXPECT_EQ(total_accepted, queries.size());
}

TEST(HybridRuntime, WorkloadAdjustmentRacesToTheFastPe) {
    // One deliberately slow slave and one fast one: the fast one must be
    // able to steal (replicate) the slow slave's straggler task, and the
    // duplicate completion must be discarded, not double-merged.
    const db::Database database = test_db(20, 37);
    const auto queries = test_queries(4);
    RuntimeOptions options = fast_options();
    options.sched.workload_adjust = true;
    HybridRuntime rt(database, queries, options);

    std::vector<SlaveSpec> slaves;
    // Slow: ~20x slower than the plain engine.
    const std::uint64_t db_res = database.residues();
    const double slow_gcups =
        static_cast<double>(queries[0].size()) * db_res / 0.4 / 1e9;
    slaves.push_back(SlaveSpec{
        "slow", std::make_unique<engines::ThrottledEngine>(cpu_engine(),
                                                           slow_gcups)});
    slaves.push_back(SlaveSpec{"fast", cpu_engine()});
    const RunReport report = rt.run(std::move(slaves), core::make_pss());

    EXPECT_EQ(report.hits, reference_hits(database, queries, 3));
    // Duplicates may or may not occur depending on timing; when they do,
    // computed > accepted and the discard counters agree.
    EXPECT_GE(report.computed_cells, report.accepted_cells);
    std::size_t discarded = 0;
    for (const SlaveReport& s : report.slaves) {
        discarded += s.results_discarded;
    }
    EXPECT_EQ(discarded, report.completions_discarded);
}

TEST(HybridRuntime, CancelLosersStopsReplicas) {
    const db::Database database = test_db(20, 39);
    const auto queries = test_queries(4);
    RuntimeOptions options = fast_options();
    options.sched.workload_adjust = true;
    options.sched.cancel_losers = true;
    HybridRuntime rt(database, queries, options);

    std::vector<SlaveSpec> slaves;
    const double slow_gcups = static_cast<double>(queries[0].size()) *
                              database.residues() / 0.5 / 1e9;
    slaves.push_back(SlaveSpec{
        "slow", std::make_unique<engines::ThrottledEngine>(cpu_engine(),
                                                           slow_gcups)});
    slaves.push_back(SlaveSpec{"fast", cpu_engine()});
    const RunReport report = rt.run(std::move(slaves), core::make_pss());
    EXPECT_EQ(report.hits, reference_hits(database, queries, 3));
}

TEST(HybridRuntime, SelfSchedulingPolicyCompletesEverything) {
    const db::Database database = test_db(25, 41);
    const auto queries = test_queries(6);
    HybridRuntime rt(database, queries, fast_options());
    std::vector<SlaveSpec> slaves;
    slaves.push_back(SlaveSpec{"a", cpu_engine()});
    slaves.push_back(SlaveSpec{"b", cpu_engine()});
    const RunReport report =
        rt.run(std::move(slaves), core::make_self_scheduling());
    EXPECT_EQ(report.hits, reference_hits(database, queries, 3));
}

TEST(HybridRuntime, LateJoinerContributes) {
    const db::Database database = test_db(25, 43);
    const auto queries = test_queries(8);
    HybridRuntime rt(database, queries, fast_options());
    std::vector<SlaveSpec> slaves;
    slaves.push_back(SlaveSpec{"early", cpu_engine()});
    SlaveSpec late{"late", cpu_engine()};
    late.join_delay_s = 0.05;
    slaves.push_back(std::move(late));
    const RunReport report = rt.run(std::move(slaves), core::make_pss());
    EXPECT_EQ(report.hits, reference_hits(database, queries, 3));
}

TEST(HybridRuntime, EarlyLeaverTasksAreRescued) {
    const db::Database database = test_db(25, 45);
    const auto queries = test_queries(8);
    RuntimeOptions options = fast_options();
    HybridRuntime rt(database, queries, options);
    std::vector<SlaveSpec> slaves;
    SlaveSpec leaver{"leaver", cpu_engine()};
    leaver.leave_after_tasks = 1;
    slaves.push_back(std::move(leaver));
    slaves.push_back(SlaveSpec{"stayer", cpu_engine()});
    const RunReport report = rt.run(std::move(slaves), core::make_pss());
    EXPECT_EQ(report.hits, reference_hits(database, queries, 3));
    EXPECT_TRUE(report.slaves[0].left_early);
    EXPECT_GE(report.slaves[1].results_accepted, 7u);
}

TEST(HybridRuntime, ChannelLatencyDoesNotBreakProtocol) {
    const db::Database database = test_db(15, 47);
    const auto queries = test_queries(4);
    RuntimeOptions options = fast_options();
    options.channel_delay_s = 0.005;
    HybridRuntime rt(database, queries, options);
    std::vector<SlaveSpec> slaves;
    slaves.push_back(SlaveSpec{"a", cpu_engine()});
    slaves.push_back(SlaveSpec{"b", cpu_engine()});
    const RunReport report = rt.run(std::move(slaves), core::make_pss());
    EXPECT_EQ(report.hits, reference_hits(database, queries, 3));
}

}  // namespace
}  // namespace swh::runtime

// Protocol stress: many slaves, many tiny tasks, chatty policies —
// hammers the message layer (registration storms, NoWorkYet parking,
// replica races, cancellations) far harder than the functional tests.

#include <gtest/gtest.h>

#include "align/sw_scalar.hpp"
#include "db/database.hpp"
#include "db/presets.hpp"
#include "engines/cpu_engine.hpp"
#include "engines/throttled_engine.hpp"
#include "runtime/hybrid_runtime.hpp"

namespace swh::runtime {
namespace {

const align::ScoreMatrix& blosum() {
    static const align::ScoreMatrix m = align::ScoreMatrix::blosum62();
    return m;
}

engines::EngineConfig tiny_config() {
    engines::EngineConfig c;
    c.matrix = &blosum();
    c.gap = {10, 2};
    c.top_k = 2;
    c.isa = simd::best_supported();
    c.progress_grain = 10'000;
    return c;
}

db::Database tiny_db(std::uint64_t seed) {
    db::DatabaseSpec spec;
    spec.name = "stress";
    spec.num_sequences = 8;
    spec.length.min_len = 15;
    spec.length.max_len = 40;
    spec.seed = seed;
    return db::Database::generate(spec);
}

struct StressCase {
    std::size_t slaves;
    std::size_t queries;
    bool cancel_losers;
    bool self_scheduling;
};

class RuntimeStressTest : public ::testing::TestWithParam<StressCase> {};

INSTANTIATE_TEST_SUITE_P(
    Matrix, RuntimeStressTest,
    ::testing::Values(StressCase{8, 40, false, true},
                      StressCase{8, 40, true, true},
                      StressCase{6, 30, false, false},
                      StressCase{6, 30, true, false},
                      StressCase{12, 24, true, true}),
    [](const auto& info) {
        const StressCase& c = info.param;
        return "s" + std::to_string(c.slaves) + "_q" +
               std::to_string(c.queries) + (c.cancel_losers ? "_can" : "") +
               (c.self_scheduling ? "_ss" : "_pss");
    });

TEST_P(RuntimeStressTest, CompletesWithExactResults) {
    const StressCase& c = GetParam();
    const db::Database database = tiny_db(1234);
    const auto queries = db::make_query_set(c.queries, 15, 50, 77);

    RuntimeOptions options;
    options.notify_period_s = 0.002;  // notification storm
    options.top_k = 2;
    options.sched.workload_adjust = true;
    options.sched.cancel_losers = c.cancel_losers;
    HybridRuntime rt(database, queries, options);

    std::vector<SlaveSpec> slaves;
    for (std::size_t i = 0; i < c.slaves; ++i) {
        // Alternate fast and very slow slaves to provoke replica races.
        std::unique_ptr<engines::ComputeEngine> engine =
            std::make_unique<engines::CpuEngine>(tiny_config());
        if (i % 2 == 1) {
            engine = std::make_unique<engines::ThrottledEngine>(
                std::move(engine), /*gcups=*/0.0002);
        }
        slaves.push_back(
            SlaveSpec{"s" + std::to_string(i), std::move(engine)});
    }
    const RunReport report = rt.run(
        std::move(slaves), c.self_scheduling ? core::make_self_scheduling()
                                             : core::make_pss());

    // Exactness despite all the racing: every query's best hit matches
    // the serial oracle.
    for (std::size_t q = 0; q < queries.size(); ++q) {
        align::Score best = 0;
        for (std::size_t i = 0; i < database.size(); ++i) {
            best = std::max(best, align::sw_score_affine(
                                      queries[q].residues,
                                      database[i].residues, blosum(),
                                      {10, 2}));
        }
        ASSERT_FALSE(report.hits[q].empty()) << "query " << q;
        EXPECT_EQ(report.hits[q][0].score, best) << "query " << q;
    }
    // Conservation: accepted == one per query; discards match counters.
    std::size_t accepted = 0, discarded = 0;
    for (const SlaveReport& s : report.slaves) {
        accepted += s.results_accepted;
        discarded += s.results_discarded;
    }
    EXPECT_EQ(accepted, queries.size());
    EXPECT_EQ(discarded, report.completions_discarded);
}

}  // namespace
}  // namespace swh::runtime

// Runtime-vs-simulator balance crosscheck (the tentpole's acceptance
// gate): the same Fig.-5-shaped workload — 20 equal tasks on one fast
// PE (6x) and three slow PEs (1x) — executed both by the threaded
// runtime (real threads, throttled engines) and by the DES (virtual
// time), audited through the one shared analyze_balance() path. The
// two executions are different machines entirely, so the agreement
// tolerance is deliberately loose (documented in DESIGN.md): the audit
// must tell the same qualitative story, not reproduce timestamps.
//
// Also hosts the obs-overhead invariant: a run with the full
// observability stack on must return bit-identical top-k hits to the
// same run with it off.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "db/database.hpp"
#include "db/presets.hpp"
#include "engines/cpu_engine.hpp"
#include "engines/throttled_engine.hpp"
#include "obs/balance.hpp"
#include "obs/sched_log.hpp"
#include "obs/trace.hpp"
#include "runtime/hybrid_runtime.hpp"
#include "sim/simulator.hpp"

namespace swh::runtime {
namespace {

constexpr double kFastGcups = 0.002;  // 2e6 cells/s — ~45 ms per task
constexpr double kSlowGcups = kFastGcups / 6.0;
constexpr std::size_t kTasks = 20;

const align::ScoreMatrix& blosum() {
    static const align::ScoreMatrix m = align::ScoreMatrix::blosum62();
    return m;
}

engines::EngineConfig engine_config(obs::MetricsRegistry* metrics = nullptr) {
    engines::EngineConfig c;
    c.matrix = &blosum();
    c.gap = {10, 2};
    c.top_k = 3;
    c.isa = simd::best_supported();
    c.progress_grain = 10'000;
    c.metrics = metrics;
    return c;
}

db::Database test_db() {
    db::DatabaseSpec spec;
    spec.name = "xc";
    spec.num_sequences = 30;
    spec.length.min_len = 40;
    spec.length.max_len = 60;
    spec.seed = 71;
    return db::Database::generate(spec);
}

std::vector<align::Sequence> equal_queries() {
    // Equal task sizes, like Fig. 5's 20 identical tasks.
    auto queries = db::make_query_set(kTasks, 60, 60, 77);
    return queries;
}

std::vector<SlaveSpec> throttled_platform(
    obs::MetricsRegistry* metrics = nullptr) {
    std::vector<SlaveSpec> slaves;
    slaves.push_back(SlaveSpec{
        "gpu0", std::make_unique<engines::ThrottledEngine>(
                    std::make_unique<engines::CpuEngine>(
                        engine_config(metrics)),
                    kFastGcups, 0.0, "fast")});
    for (int i = 0; i < 3; ++i) {
        slaves.push_back(SlaveSpec{
            "sse" + std::to_string(i),
            std::make_unique<engines::ThrottledEngine>(
                std::make_unique<engines::CpuEngine>(engine_config(metrics)),
                kSlowGcups, 0.0, "slow")});
    }
    return slaves;
}

RuntimeOptions crosscheck_options() {
    RuntimeOptions o;
    o.notify_period_s = 0.02;
    o.top_k = 3;
    o.sched.replicate_only_if_faster = true;
    return o;
}

obs::BalanceReport runtime_balance() {
    const db::Database database = test_db();
    obs::TraceRecorder recorder;
    RuntimeOptions options = crosscheck_options();
    options.trace = &recorder;
    HybridRuntime rt(database, equal_queries(), options);
    const RunReport report =
        rt.run(throttled_platform(), core::make_pss());

    obs::BalanceOptions bopts;
    bopts.horizon_s = report.wall_seconds;
    for (const SlaveReport& s : report.slaves) {
        bopts.cells_by_label.emplace_back(
            s.label, static_cast<double>(s.cells_computed));
    }
    return obs::analyze_balance(recorder.drain(), bopts);
}

obs::BalanceReport des_balance() {
    const db::Database database = test_db();
    const auto queries = equal_queries();
    sim::SimConfig cfg;
    cfg.sched.replicate_only_if_faster = true;
    cfg.policy = core::make_pss;
    cfg.notify_period_s = 0.02;
    cfg.db_residues = database.residues();
    for (const auto& q : queries) cfg.query_lengths.push_back(q.size());
    sim::PeModelSpec fast;
    fast.label = "gpu0";
    fast.kind = core::PeKind::Gpu;
    fast.peak_gcups = kFastGcups;
    cfg.pes.push_back(fast);
    for (int i = 0; i < 3; ++i) {
        sim::PeModelSpec slow;
        slow.label = "sse" + std::to_string(i);
        slow.kind = core::PeKind::SseCore;
        slow.peak_gcups = kSlowGcups;
        cfg.pes.push_back(slow);
    }
    obs::SchedEventLog log;
    cfg.observer = &log;
    const sim::SimReport r = sim::simulate(cfg);

    obs::BalanceOptions bopts;
    bopts.horizon_s = r.all_idle_time;
    for (const sim::PeReport& pe : r.pes) {
        bopts.cells_by_label.emplace_back(pe.label,
                                          static_cast<double>(pe.cells));
    }
    return obs::analyze_balance(sim::to_trace(r, cfg.pes, log.take()), bopts);
}

TEST(BalanceCrosscheck, RuntimeAndSimulatorAgreeOnTheFig5Workload) {
    const obs::BalanceReport rt = runtime_balance();
    const obs::BalanceReport des = des_balance();

    ASSERT_EQ(rt.pe_count, 4u);
    ASSERT_EQ(des.pe_count, 4u);

    // Same qualitative story. Imbalance ratio within the documented
    // tolerance (DESIGN.md: |runtime − DES| ≤ 0.4 — thread scheduling,
    // notify quantisation, and engine startup all perturb the runtime).
    EXPECT_NEAR(rt.imbalance_ratio, des.imbalance_ratio, 0.4);
    // Both runs must be reasonably efficient and attribute the bulk of
    // the tasks to the fast PE.
    EXPECT_GT(rt.efficiency, 0.5);
    EXPECT_GT(des.efficiency, 0.5);
    EXPECT_GT(rt.pes[0].tasks_accepted, rt.pes[1].tasks_accepted);
    EXPECT_GT(des.pes[0].tasks_accepted, des.pes[1].tasks_accepted);
    // The audited horizon covers the whole run and the critical chain
    // is non-trivial in both.
    EXPECT_GT(rt.critical_coverage, 0.5);
    EXPECT_GT(des.critical_coverage, 0.5);
    EXPECT_FALSE(rt.critical_path.empty());
    EXPECT_FALSE(des.critical_path.empty());
    // Every task completed exactly once (accepted) somewhere.
    std::size_t rt_accepted = 0, des_accepted = 0;
    for (const obs::BalancePe& pe : rt.pes) {
        rt_accepted += pe.tasks_accepted;
    }
    for (const obs::BalancePe& pe : des.pes) {
        des_accepted += pe.tasks_accepted;
    }
    EXPECT_GE(rt_accepted, kTasks);
    EXPECT_GE(des_accepted, kTasks);
}

TEST(BalanceCrosscheck, FullObservabilityStackDoesNotChangeTheHits) {
    const db::Database database = test_db();
    const auto queries = equal_queries();

    // Plain run: observability off.
    HybridRuntime plain(database, queries, crosscheck_options());
    const RunReport base = plain.run(throttled_platform(), core::make_pss());

    // Instrumented run: trace recorder, metrics registry (incl. engine
    // counters), and a weight-trajectory observer all on.
    obs::TraceRecorder recorder;
    obs::MetricsRegistry metrics;
    obs::WeightLog weights;
    RuntimeOptions options = crosscheck_options();
    options.trace = &recorder;
    options.metrics = &metrics;
    options.sched_observer = &weights;
    HybridRuntime instrumented(database, queries, options);
    const RunReport traced =
        instrumented.run(throttled_platform(&metrics), core::make_pss());

    // Top-k hits must be bit-identical: observation must not perturb
    // the computation.
    ASSERT_EQ(base.hits.size(), traced.hits.size());
    for (std::size_t q = 0; q < base.hits.size(); ++q) {
        ASSERT_EQ(base.hits[q].size(), traced.hits[q].size()) << "query " << q;
        for (std::size_t i = 0; i < base.hits[q].size(); ++i) {
            EXPECT_EQ(base.hits[q][i].db_index, traced.hits[q][i].db_index);
            EXPECT_EQ(base.hits[q][i].score, traced.hits[q][i].score);
        }
    }
    // The instrumented run actually observed things.
    EXPECT_FALSE(weights.empty());
    EXPECT_GT(recorder.drain().total_events(), 0u);
    EXPECT_EQ(traced.metrics.counter("obs.trace.dropped"), 0u);
}

}  // namespace
}  // namespace swh::runtime

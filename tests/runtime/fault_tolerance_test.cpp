// Fault-injection coverage for the fault-tolerant master loop (ISSUE 5):
// slave crashes, engine exceptions with retry budgets, permanent stalls,
// liveness false positives, lossy channels. Every test here hangs forever
// (or std::terminates) on the pre-fix runtime — the ctest TIMEOUT
// property is what turns the old deadlock into a failure.

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "align/sw_scalar.hpp"
#include "db/database.hpp"
#include "db/presets.hpp"
#include "engines/cpu_engine.hpp"
#include "engines/faulty_engine.hpp"
#include "engines/throttled_engine.hpp"
#include "obs/trace.hpp"
#include "runtime/hybrid_runtime.hpp"

namespace swh::runtime {
namespace {

const align::ScoreMatrix& blosum() {
    static const align::ScoreMatrix m = align::ScoreMatrix::blosum62();
    return m;
}

engines::EngineConfig engine_config(std::uint64_t progress_grain = 100'000) {
    engines::EngineConfig c;
    c.matrix = &blosum();
    c.gap = {10, 2};
    c.top_k = 3;
    c.isa = simd::best_supported();
    c.progress_grain = progress_grain;
    return c;
}

db::Database test_db(std::size_t n = 30, std::uint64_t seed = 31) {
    db::DatabaseSpec spec;
    spec.name = "ft";
    spec.num_sequences = n;
    spec.length.min_len = 20;
    spec.length.max_len = 80;
    spec.seed = seed;
    return db::Database::generate(spec);
}

std::vector<align::Sequence> test_queries(std::size_t n = 8) {
    return db::make_query_set(n, 30, 90, 33);
}

std::unique_ptr<engines::ComputeEngine> cpu_engine() {
    return std::make_unique<engines::CpuEngine>(engine_config());
}

std::unique_ptr<engines::ComputeEngine> faulty(engines::FaultPlan plan) {
    return std::make_unique<engines::FaultyEngine>(cpu_engine(), plan);
}

/// Options with liveness on: the fault-tolerant mode under test.
RuntimeOptions fault_tolerant_options(double timeout_s = 0.25) {
    RuntimeOptions o;
    o.notify_period_s = 0.01;
    o.top_k = 3;
    o.sched.workload_adjust = true;
    o.liveness_timeout_s = timeout_s;
    o.heartbeat_period_s = timeout_s / 5.0;
    o.retry_backoff_s = 0.005;
    return o;
}

// Reference: serially computed top-k hits per query — the fault-free
// baseline every faulted run must still match bit-identically.
std::vector<std::vector<core::Hit>> reference_hits(
    const db::Database& database, const std::vector<align::Sequence>& queries,
    std::size_t k) {
    std::vector<std::vector<core::Hit>> out;
    for (const auto& q : queries) {
        std::vector<core::Hit> hits;
        for (std::size_t i = 0; i < database.size(); ++i) {
            hits.push_back(core::Hit{
                static_cast<std::uint32_t>(i),
                align::sw_score_affine(q.residues, database[i].residues,
                                       blosum(), {10, 2})});
        }
        std::sort(hits.begin(), hits.end(),
                  [](const core::Hit& a, const core::Hit& b) {
                      if (a.score != b.score) return a.score > b.score;
                      return a.db_index < b.db_index;
                  });
        hits.resize(std::min(hits.size(), k));
        out.push_back(std::move(hits));
    }
    return out;
}

std::size_t total_accepted(const RunReport& report) {
    std::size_t total = 0;
    for (const SlaveReport& s : report.slaves) total += s.results_accepted;
    return total;
}

TEST(FaultTolerance, SlaveCrashMidTaskIsRecoveredBitIdentical) {
    // A slave dying mid-task without deregistering deadlocked the old
    // blocking-recv master forever. With liveness on, the master must
    // declare it dead, requeue its task, and finish with hits identical
    // to the fault-free reference.
    const db::Database database = test_db();
    const auto queries = test_queries();
    HybridRuntime rt(database, queries, fault_tolerant_options());

    engines::FaultPlan crash;
    crash.kind = engines::FaultKind::Crash;
    crash.after_cells = 1;  // crash mid-task, after real work happened
    std::vector<SlaveSpec> slaves;
    slaves.push_back(SlaveSpec{"crash0", faulty(crash)});
    slaves.push_back(SlaveSpec{"sse0", cpu_engine()});
    slaves.push_back(SlaveSpec{"sse1", cpu_engine()});
    const RunReport report = rt.run(std::move(slaves), core::make_pss());

    EXPECT_EQ(report.hits, reference_hits(database, queries, 3));
    EXPECT_TRUE(report.failed_tasks.empty());
    EXPECT_EQ(report.slaves_presumed_dead, 1u);
    EXPECT_TRUE(report.slaves[0].crashed);
    EXPECT_TRUE(report.slaves[0].presumed_dead);
    EXPECT_EQ(total_accepted(report), queries.size());
}

TEST(FaultTolerance, EngineThrowIsRetriedToCompletion) {
    // Engine exceptions used to unwind out of the slave thread and
    // std::terminate the process. Now they become MsgTaskFailed and the
    // master retries the task after a backoff. Liveness stays off here:
    // containment must work on its own.
    const db::Database database = test_db();
    const auto queries = test_queries();
    RuntimeOptions options;
    options.notify_period_s = 0.01;
    options.top_k = 3;
    options.retry_backoff_s = 0.005;
    HybridRuntime rt(database, queries, options);

    engines::FaultPlan flaky;
    flaky.kind = engines::FaultKind::Throw;
    flaky.max_faults = 2;
    std::vector<SlaveSpec> slaves;
    slaves.push_back(SlaveSpec{"flaky0", faulty(flaky)});
    slaves.push_back(SlaveSpec{"sse0", cpu_engine()});
    const RunReport report = rt.run(std::move(slaves), core::make_pss());

    EXPECT_EQ(report.hits, reference_hits(database, queries, 3));
    EXPECT_TRUE(report.failed_tasks.empty());
    EXPECT_EQ(report.task_failures, 2u);
    EXPECT_EQ(report.slaves[0].engine_failures, 2u);
    EXPECT_FALSE(report.slaves[0].crashed);
    EXPECT_EQ(total_accepted(report), queries.size());
}

TEST(FaultTolerance, RetryExhaustionSurfacesFailedTasksWithoutAborting) {
    // Every execution of every task throws. The run must still terminate,
    // spending exactly max_task_retries + 1 attempts per task, and
    // surface each one in failed_tasks instead of aborting.
    const db::Database database = test_db();
    const auto queries = test_queries(4);
    RuntimeOptions options;
    options.notify_period_s = 0.01;
    options.top_k = 3;
    options.max_task_retries = 1;
    options.retry_backoff_s = 0.001;
    HybridRuntime rt(database, queries, options);

    engines::FaultPlan hopeless;
    hopeless.kind = engines::FaultKind::Throw;
    std::vector<SlaveSpec> slaves;
    slaves.push_back(SlaveSpec{"doomed0", faulty(hopeless)});
    const RunReport report =
        rt.run(std::move(slaves), core::make_self_scheduling());

    ASSERT_EQ(report.failed_tasks.size(), queries.size());
    for (const RunReport::FailedTask& f : report.failed_tasks) {
        EXPECT_EQ(f.failures, 2u);  // first attempt + one retry
        EXPECT_NE(f.last_error.find("injected throw fault"),
                  std::string::npos);
    }
    EXPECT_EQ(report.task_failures, 2 * queries.size());
    EXPECT_EQ(report.slaves[0].engine_failures, 2 * queries.size());
    for (const auto& hits : report.hits) EXPECT_TRUE(hits.empty());
    EXPECT_EQ(total_accepted(report), 0u);
}

TEST(FaultTolerance, StalledSlaveIsDeclaredDeadAndWorkRescued) {
    // A permanently wedged engine never sends anything again. The
    // liveness timeout must reclaim its task; closing its inbox is the
    // cooperative kill that unwedges the stall so the thread can join.
    const db::Database database = test_db();
    const auto queries = test_queries();
    HybridRuntime rt(database, queries, fault_tolerant_options(0.2));

    engines::FaultPlan stall;
    stall.kind = engines::FaultKind::Stall;
    stall.max_faults = 1;
    std::vector<SlaveSpec> slaves;
    slaves.push_back(SlaveSpec{"stall0", faulty(stall)});
    slaves.push_back(SlaveSpec{"sse0", cpu_engine()});
    const RunReport report = rt.run(std::move(slaves), core::make_pss());

    EXPECT_EQ(report.hits, reference_hits(database, queries, 3));
    EXPECT_TRUE(report.failed_tasks.empty());
    EXPECT_EQ(report.slaves_presumed_dead, 1u);
    EXPECT_TRUE(report.slaves[0].presumed_dead);
    EXPECT_EQ(total_accepted(report), queries.size());
}

/// Takes a long nap before computing, forwarding neither progress nor
/// cancellation polls: from the master's side it is indistinguishable
/// from a dead slave, but it eventually delivers a (late) result.
class SleepyEngine final : public engines::ComputeEngine {
public:
    SleepyEngine(std::unique_ptr<engines::ComputeEngine> inner,
                 double sleep_s)
        : inner_(std::move(inner)), sleep_s_(sleep_s) {}

    std::string_view name() const override { return "sleepy"; }
    core::PeKind kind() const override { return inner_->kind(); }

    core::TaskResult execute(const align::Sequence& query,
                             std::uint32_t query_index, core::TaskId task,
                             const db::Database& database,
                             engines::ExecutionObserver*) override {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(sleep_s_));
        return inner_->execute(query, query_index, task, database, nullptr);
    }

private:
    std::unique_ptr<engines::ComputeEngine> inner_;
    double sleep_s_;
};

TEST(FaultTolerance, LateCompletionFromPresumedDeadSlaveIsDiscarded) {
    // Liveness false positive: the slave was slow, not dead. Its task is
    // requeued and recomputed elsewhere; when its own completion finally
    // arrives it must be discarded — double-merging would corrupt the
    // top-k lists.
    const db::Database database = test_db();
    const auto queries = test_queries();
    RuntimeOptions options = fault_tolerant_options(0.15);
    options.heartbeat_period_s = 0.03;
    HybridRuntime rt(database, queries, options);

    // Size the steady worker so it is still busy (and the master loop
    // still alive) when the sleepy slave's late TaskDone lands at ~0.5s.
    std::uint64_t db_residues = 0;
    for (std::size_t i = 0; i < database.size(); ++i) {
        db_residues += database[i].residues.size();
    }
    std::uint64_t query_residues = 0;
    for (const auto& q : queries) query_residues += q.residues.size();
    const double total_cells =
        static_cast<double>(db_residues) * static_cast<double>(query_residues);
    const double worker_gcups = total_cells / 1.2 / 1e9;

    std::vector<SlaveSpec> slaves;
    slaves.push_back(SlaveSpec{
        "sleepy0", std::make_unique<SleepyEngine>(cpu_engine(), 0.5)});
    slaves.push_back(SlaveSpec{
        "worker0",
        std::make_unique<engines::ThrottledEngine>(
            std::make_unique<engines::CpuEngine>(engine_config(2'000)),
            worker_gcups, 0.0, "worker")});
    const RunReport report = rt.run(std::move(slaves), core::make_pss());

    EXPECT_EQ(report.hits, reference_hits(database, queries, 3));
    EXPECT_TRUE(report.failed_tasks.empty());
    EXPECT_EQ(report.slaves_presumed_dead, 1u);
    EXPECT_TRUE(report.slaves[0].presumed_dead);
    EXPECT_EQ(report.late_completions_discarded, 1u);
    EXPECT_EQ(report.slaves[0].results_discarded, 1u);
    EXPECT_EQ(report.slaves[0].results_accepted, 0u);
    // The worker alone produced every accepted result.
    EXPECT_EQ(report.slaves[1].results_accepted, queries.size());
}

TEST(FaultTolerance, HalfFaultySlavesMatchFaultFreeBaseline) {
    // The acceptance scenario: faults on half the slaves — one crash
    // without deregistering, one engine-throw, one permanent stall —
    // must complete in bounded wall time, report the faults, and produce
    // top-k hits identical to a fault-free run.
    const db::Database database = test_db(40, 35);
    const auto queries = test_queries(10);

    RuntimeOptions healthy_options;
    healthy_options.notify_period_s = 0.01;
    healthy_options.top_k = 3;
    HybridRuntime baseline_rt(database, queries, healthy_options);
    std::vector<SlaveSpec> baseline_slaves;
    for (int i = 0; i < 3; ++i) {
        baseline_slaves.push_back(
            SlaveSpec{"sse" + std::to_string(i), cpu_engine()});
    }
    const RunReport baseline =
        baseline_rt.run(std::move(baseline_slaves), core::make_pss());

    HybridRuntime rt(database, queries, fault_tolerant_options());
    engines::FaultPlan crash;
    crash.kind = engines::FaultKind::Crash;
    crash.after_cells = 1;
    engines::FaultPlan flaky;
    flaky.kind = engines::FaultKind::Throw;
    flaky.max_faults = 2;
    engines::FaultPlan stall;
    stall.kind = engines::FaultKind::Stall;
    stall.max_faults = 1;
    std::vector<SlaveSpec> slaves;
    slaves.push_back(SlaveSpec{"crash0", faulty(crash)});
    slaves.push_back(SlaveSpec{"flaky0", faulty(flaky)});
    slaves.push_back(SlaveSpec{"stall0", faulty(stall)});
    for (int i = 0; i < 3; ++i) {
        slaves.push_back(SlaveSpec{"sse" + std::to_string(i), cpu_engine()});
    }
    const RunReport report = rt.run(std::move(slaves), core::make_pss());

    EXPECT_EQ(report.hits, baseline.hits);
    EXPECT_EQ(report.hits, reference_hits(database, queries, 3));
    EXPECT_TRUE(report.failed_tasks.empty());
    EXPECT_EQ(report.slaves_presumed_dead, 2u);  // crash + stall
    EXPECT_TRUE(report.slaves[0].presumed_dead);
    EXPECT_TRUE(report.slaves[0].crashed);
    EXPECT_TRUE(report.slaves[2].presumed_dead);
    EXPECT_GE(report.task_failures, 1u);
    EXPECT_EQ(total_accepted(report), queries.size());
}

TEST(FaultTolerance, DroppedMessagesAreHealedByLivenessAndReissue) {
    // A lossy slave->master link loses Registers, WorkRequests, TaskDones
    // and heartbeats at random. Re-registration, heartbeat work-polling
    // and lost-completion re-issue must together still drive the run to
    // the exact reference hits.
    const db::Database database = test_db();
    const auto queries = test_queries();
    RuntimeOptions options = fault_tolerant_options(0.2);
    options.heartbeat_period_s = 0.04;
    options.master_link_faults.drop_prob = 0.1;
    options.master_link_faults.seed = 0xD20BULL;
    HybridRuntime rt(database, queries, options);

    std::vector<SlaveSpec> slaves;
    for (int i = 0; i < 3; ++i) {
        slaves.push_back(SlaveSpec{"sse" + std::to_string(i), cpu_engine()});
    }
    const RunReport report = rt.run(std::move(slaves), core::make_pss());

    EXPECT_EQ(report.hits, reference_hits(database, queries, 3));
    EXPECT_TRUE(report.failed_tasks.empty());
}

TEST(FaultTolerance, LinkStallsDelayButNeverKillHealthySlaves) {
    // Symmetric delivery stalls well below the liveness timeout must not
    // produce false positives.
    const db::Database database = test_db();
    const auto queries = test_queries();
    RuntimeOptions options = fault_tolerant_options(0.3);
    options.master_link_faults.stall_s = 0.02;
    options.slave_link_stall_s = 0.02;
    HybridRuntime rt(database, queries, options);

    std::vector<SlaveSpec> slaves;
    slaves.push_back(SlaveSpec{"sse0", cpu_engine()});
    slaves.push_back(SlaveSpec{"sse1", cpu_engine()});
    const RunReport report = rt.run(std::move(slaves), core::make_pss());

    EXPECT_EQ(report.hits, reference_hits(database, queries, 3));
    EXPECT_EQ(report.slaves_presumed_dead, 0u);
    EXPECT_TRUE(report.failed_tasks.empty());
}

TEST(FaultTolerance, LeaverWithCancelledTasksKeepsAccountingConsistent) {
    // A slow slave leaves after its first completion while holding a
    // chunked batch; replicas race it and cancel_losers cancels what it
    // still queues. Completion accounting must stay exact through the
    // leave (satellite: closed-inbox exits must not silently skip the
    // finished_slaves bookkeeping).
    const db::Database database = test_db();
    const auto queries = test_queries();
    RuntimeOptions options;
    options.notify_period_s = 0.01;
    options.top_k = 3;
    options.sched.workload_adjust = true;
    options.sched.cancel_losers = true;
    HybridRuntime rt(database, queries, options);

    // The leaver is the *fastest* slave so it deterministically finishes
    // its first task (and leaves) while the throttled peers are still on
    // theirs; the chunk it abandons is requeued and later causes replica
    // races + cancellations among the remaining slaves.
    std::uint64_t db_residues = 0;
    for (std::size_t i = 0; i < database.size(); ++i) {
        db_residues += database[i].residues.size();
    }
    const double slow_gcups =
        60.0 * static_cast<double>(db_residues) / 0.02 / 1e9;

    std::vector<SlaveSpec> slaves;
    slaves.push_back(
        SlaveSpec{"leaver0", cpu_engine(), 0.0, /*leave_after_tasks=*/1});
    for (int i = 0; i < 2; ++i) {
        slaves.push_back(SlaveSpec{
            "slow" + std::to_string(i),
            std::make_unique<engines::ThrottledEngine>(
                std::make_unique<engines::CpuEngine>(engine_config(2'000)),
                slow_gcups, 0.0, "slow")});
    }
    const RunReport report = rt.run(
        std::move(slaves), core::make_chunked_self_scheduling(3));

    EXPECT_EQ(report.hits, reference_hits(database, queries, 3));
    EXPECT_TRUE(report.slaves[0].left_early);
    EXPECT_EQ(total_accepted(report), queries.size());
    std::size_t total_discarded = 0;
    for (const SlaveReport& s : report.slaves) {
        total_discarded += s.results_discarded;
    }
    EXPECT_EQ(total_discarded, report.completions_discarded +
                                   report.late_completions_discarded);
    EXPECT_TRUE(report.failed_tasks.empty());
}

TEST(FaultTolerance, FaultMetricsAndTraceEventsAreEmitted) {
    // runtime.faults.* metrics and the SlavePresumedDead trace event
    // must record what the run survived.
    const db::Database database = test_db();
    const auto queries = test_queries(4);
    obs::TraceRecorder trace;
    obs::MetricsRegistry metrics;
    RuntimeOptions options = fault_tolerant_options(0.2);
    options.trace = &trace;
    options.metrics = &metrics;
    // No replication: the failed task must wait out its retry backoff
    // (a replica rescuing it first would make the retry stale and the
    // TaskFailed scheduler event legitimately unobservable).
    options.sched.workload_adjust = false;
    HybridRuntime rt(database, queries, options);

    engines::FaultPlan crash;
    crash.kind = engines::FaultKind::Crash;
    crash.after_cells = 1;
    engines::FaultPlan flaky;
    flaky.kind = engines::FaultKind::Throw;
    flaky.max_faults = 1;
    std::vector<SlaveSpec> slaves;
    slaves.push_back(SlaveSpec{"crash0", faulty(crash)});
    slaves.push_back(SlaveSpec{"flaky0", faulty(flaky)});
    slaves.push_back(SlaveSpec{"sse0", cpu_engine()});
    const RunReport report = rt.run(std::move(slaves), core::make_pss());

    EXPECT_EQ(report.hits, reference_hits(database, queries, 3));
    EXPECT_EQ(report.metrics.counter("runtime.faults.slaves_presumed_dead"),
              1u);
    EXPECT_EQ(report.metrics.counter("runtime.faults.engine_failures"), 1u);
    EXPECT_GE(report.metrics.counter("runtime.faults.retries"), 1u);

    bool saw_dead_event = false;
    bool saw_failed_event = false;
    const obs::Trace t = trace.drain();
    for (const auto& lane : t.lanes) {
        for (const auto& ev : lane.events) {
            if (ev.kind == obs::EventKind::SlavePresumedDead) {
                saw_dead_event = true;
            }
            if (ev.kind == obs::EventKind::TaskFailed) saw_failed_event = true;
        }
    }
    EXPECT_TRUE(saw_dead_event);
    EXPECT_TRUE(saw_failed_event);
}

}  // namespace
}  // namespace swh::runtime

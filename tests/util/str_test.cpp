#include "util/str.hpp"

#include <gtest/gtest.h>

namespace swh {
namespace {

TEST(Split, Basic) {
    EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
    EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
    EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
    EXPECT_EQ(split("x", ','), (std::vector<std::string>{"x"}));
}

TEST(SplitWs, SkipsRuns) {
    EXPECT_EQ(split_ws("  a\t b \n c "),
              (std::vector<std::string>{"a", "b", "c"}));
    EXPECT_TRUE(split_ws("   ").empty());
}

TEST(Trim, Basic) {
    EXPECT_EQ(trim("  hi  "), "hi");
    EXPECT_EQ(trim(""), "");
    EXPECT_EQ(trim(" \t\n "), "");
    EXPECT_EQ(trim("x"), "x");
}

TEST(StartsWith, Basic) {
    EXPECT_TRUE(starts_with("hello", "he"));
    EXPECT_TRUE(starts_with("hello", ""));
    EXPECT_FALSE(starts_with("he", "hello"));
}

TEST(ToUpper, Basic) { EXPECT_EQ(to_upper("AcGt"), "ACGT"); }

TEST(WithThousands, Basic) {
    EXPECT_EQ(with_thousands(0), "0");
    EXPECT_EQ(with_thousands(999), "999");
    EXPECT_EQ(with_thousands(1000), "1,000");
    EXPECT_EQ(with_thousands(1234567), "1,234,567");
    EXPECT_EQ(with_thousands(-1234), "-1,234");
}

TEST(FormatDouble, Basic) {
    EXPECT_EQ(format_double(3.14159, 2), "3.14");
    EXPECT_EQ(format_double(2.0, 0), "2");
}

TEST(FormatDuration, Ranges) {
    EXPECT_EQ(format_duration(4.214), "4.21s");
    EXPECT_EQ(format_duration(123), "2m03s");
    EXPECT_EQ(format_duration(3723), "1h02m03s");
}

}  // namespace
}  // namespace swh

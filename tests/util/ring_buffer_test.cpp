#include "util/ring_buffer.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace swh {
namespace {

TEST(RingBuffer, StartsEmpty) {
    RingBuffer<int> rb(3);
    EXPECT_TRUE(rb.empty());
    EXPECT_EQ(rb.size(), 0u);
    EXPECT_EQ(rb.capacity(), 3u);
}

TEST(RingBuffer, RejectsZeroCapacity) {
    EXPECT_THROW(RingBuffer<int>(0), ContractError);
}

TEST(RingBuffer, FillsThenOverwritesOldest) {
    RingBuffer<int> rb(3);
    rb.push(1);
    rb.push(2);
    rb.push(3);
    EXPECT_TRUE(rb.full());
    rb.push(4);  // evicts 1
    EXPECT_EQ(rb.size(), 3u);
    EXPECT_EQ(rb[0], 2);
    EXPECT_EQ(rb[1], 3);
    EXPECT_EQ(rb[2], 4);
    EXPECT_EQ(rb.newest(), 4);
}

TEST(RingBuffer, ManyWraps) {
    RingBuffer<int> rb(4);
    for (int i = 0; i < 100; ++i) rb.push(i);
    EXPECT_EQ(rb.to_vector(), (std::vector<int>{96, 97, 98, 99}));
}

TEST(RingBuffer, IndexOutOfRangeThrows) {
    RingBuffer<int> rb(2);
    rb.push(1);
    EXPECT_THROW(rb[1], ContractError);
    EXPECT_THROW(RingBuffer<int>(2).newest(), ContractError);
}

TEST(RingBuffer, Clear) {
    RingBuffer<int> rb(2);
    rb.push(1);
    rb.push(2);
    rb.clear();
    EXPECT_TRUE(rb.empty());
    rb.push(9);
    EXPECT_EQ(rb.newest(), 9);
}

}  // namespace
}  // namespace swh

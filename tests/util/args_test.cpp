#include "util/args.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace swh {
namespace {

std::vector<const char*> argv_of(std::initializer_list<const char*> args) {
    return {args};
}

TEST(ArgParser, DefaultsApply) {
    ArgParser p("tool", "test tool");
    p.add_option("threads", "worker count", "4");
    p.add_flag("verbose", "talk more");
    const auto argv = argv_of({"tool"});
    ASSERT_TRUE(p.parse(static_cast<int>(argv.size()), argv.data()));
    EXPECT_EQ(p.get("threads"), "4");
    EXPECT_EQ(p.get_int("threads"), 4);
    EXPECT_FALSE(p.get_flag("verbose"));
}

TEST(ArgParser, ParsesSeparateAndEqualsForms) {
    ArgParser p("tool", "t");
    p.add_option("a", "", "0");
    p.add_option("b", "", "0");
    const auto argv = argv_of({"tool", "--a", "1", "--b=2"});
    ASSERT_TRUE(p.parse(static_cast<int>(argv.size()), argv.data()));
    EXPECT_EQ(p.get_int("a"), 1);
    EXPECT_EQ(p.get_int("b"), 2);
}

TEST(ArgParser, FlagsAndPositionals) {
    ArgParser p("tool", "t");
    p.add_flag("fast", "");
    p.add_positional("input", "input file");
    p.add_positional("output", "output file", "out.txt");
    const auto argv = argv_of({"tool", "--fast", "in.fa"});
    ASSERT_TRUE(p.parse(static_cast<int>(argv.size()), argv.data()));
    EXPECT_TRUE(p.get_flag("fast"));
    EXPECT_EQ(p.get("input"), "in.fa");
    EXPECT_EQ(p.get("output"), "out.txt");
}

TEST(ArgParser, MissingRequiredPositionalThrows) {
    ArgParser p("tool", "t");
    p.add_positional("input", "input file");
    const auto argv = argv_of({"tool"});
    EXPECT_THROW(p.parse(static_cast<int>(argv.size()), argv.data()),
                 ContractError);
}

TEST(ArgParser, UnknownOptionThrows) {
    ArgParser p("tool", "t");
    const auto argv = argv_of({"tool", "--bogus", "1"});
    EXPECT_THROW(p.parse(static_cast<int>(argv.size()), argv.data()),
                 ContractError);
}

TEST(ArgParser, MissingValueThrows) {
    ArgParser p("tool", "t");
    p.add_option("n", "", "1");
    const auto argv = argv_of({"tool", "--n"});
    EXPECT_THROW(p.parse(static_cast<int>(argv.size()), argv.data()),
                 ContractError);
}

TEST(ArgParser, FlagRejectsValue) {
    ArgParser p("tool", "t");
    p.add_flag("f", "");
    const auto argv = argv_of({"tool", "--f=yes"});
    EXPECT_THROW(p.parse(static_cast<int>(argv.size()), argv.data()),
                 ContractError);
}

TEST(ArgParser, NumericValidation) {
    ArgParser p("tool", "t");
    p.add_option("n", "", "abc");
    p.add_option("x", "", "1.5");
    const auto argv = argv_of({"tool"});
    ASSERT_TRUE(p.parse(static_cast<int>(argv.size()), argv.data()));
    EXPECT_THROW(p.get_int("n"), ContractError);
    EXPECT_DOUBLE_EQ(p.get_double("x"), 1.5);
}

TEST(ArgParser, HelpReturnsFalse) {
    ArgParser p("tool", "t");
    const auto argv = argv_of({"tool", "--help"});
    EXPECT_FALSE(p.parse(static_cast<int>(argv.size()), argv.data()));
}

TEST(ArgParser, HelpTextMentionsEverything) {
    ArgParser p("tool", "does things");
    p.add_option("alpha", "the alpha", "7");
    p.add_flag("quick", "go fast");
    p.add_positional("file", "the file");
    const std::string h = p.help();
    EXPECT_NE(h.find("does things"), std::string::npos);
    EXPECT_NE(h.find("--alpha"), std::string::npos);
    EXPECT_NE(h.find("--quick"), std::string::npos);
    EXPECT_NE(h.find("file"), std::string::npos);
    EXPECT_NE(h.find("default: 7"), std::string::npos);
}

}  // namespace
}  // namespace swh

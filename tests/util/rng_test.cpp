#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "util/error.hpp"

namespace swh {
namespace {

TEST(Rng, DeterministicForSameSeed) {
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next() == b.next()) ++equal;
    }
    EXPECT_LT(equal, 2);
}

TEST(Rng, BelowStaysInRange) {
    Rng rng(7);
    for (int i = 0; i < 10'000; ++i) {
        EXPECT_LT(rng.below(13), 13u);
    }
}

TEST(Rng, BelowOneIsAlwaysZero) {
    Rng rng(7);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowRejectsZero) {
    Rng rng(7);
    EXPECT_THROW(rng.below(0), ContractError);
}

TEST(Rng, BelowCoversAllValues) {
    Rng rng(99);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) seen.insert(rng.below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, RangeInclusive) {
    Rng rng(11);
    bool hit_lo = false, hit_hi = false;
    for (int i = 0; i < 5000; ++i) {
        const std::int64_t v = rng.range(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        hit_lo |= (v == -3);
        hit_hi |= (v == 3);
    }
    EXPECT_TRUE(hit_lo);
    EXPECT_TRUE(hit_hi);
}

TEST(Rng, UniformInUnitInterval) {
    Rng rng(5);
    double sum = 0.0;
    for (int i = 0; i < 10'000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10'000, 0.5, 0.02);
}

TEST(Rng, NormalMoments) {
    Rng rng(17);
    double sum = 0.0, sq = 0.0;
    const int n = 20'000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal();
        sum += x;
        sq += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.05);
    EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, WeightedIndexRespectsWeights) {
    Rng rng(23);
    const double w[3] = {1.0, 0.0, 3.0};
    int counts[3] = {0, 0, 0};
    for (int i = 0; i < 20'000; ++i) ++counts[rng.weighted_index(w, 3)];
    EXPECT_EQ(counts[1], 0);
    EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.3);
}

TEST(Rng, WeightedIndexRejectsAllZero) {
    Rng rng(1);
    const double w[2] = {0.0, 0.0};
    EXPECT_THROW(rng.weighted_index(w, 2), ContractError);
}

TEST(Rng, SplitStreamsAreIndependent) {
    Rng parent(42);
    Rng c1 = parent.split();
    Rng c2 = parent.split();
    int equal = 0;
    for (int i = 0; i < 64; ++i) {
        if (c1.next() == c2.next()) ++equal;
    }
    EXPECT_LT(equal, 2);
}

TEST(Rng, SplitIsDeterministic) {
    Rng p1(42), p2(42);
    Rng c1 = p1.split();
    Rng c2 = p2.split();
    for (int i = 0; i < 32; ++i) EXPECT_EQ(c1.next(), c2.next());
}

}  // namespace
}  // namespace swh

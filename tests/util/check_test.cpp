// Failure-path coverage for the leveled contract subsystem: the
// structured report must carry the expression verbatim, the captured
// operand values, the source location, and the installing thread's
// PE/task context.

#include "util/check.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "util/error.hpp"

namespace swh::check {
namespace {

TEST(Check, PassingCheckIsSilent) {
    EXPECT_NO_THROW(SWH_CHECK(1 + 1 == 2, "arithmetic"));
    EXPECT_NO_THROW(SWH_CHECK_EQ(2 + 2, 4, "arithmetic"));
}

TEST(Check, FailureThrowsCheckFailureWithStructuredReport) {
    try {
        SWH_CHECK(false, "the message");
        FAIL() << "SWH_CHECK(false) did not throw";
    } catch (const CheckFailure& e) {
        const FailureReport& r = e.report();
        EXPECT_EQ(r.expression, "false");
        EXPECT_EQ(r.message, "the message");
        EXPECT_NE(r.file.find("check_test.cpp"), std::string::npos);
        EXPECT_GT(r.line, 0u);
        EXPECT_FALSE(r.function.empty());
        EXPECT_TRUE(r.operands.empty());
        // Outside any ScopedContext.
        EXPECT_EQ(r.pe, -1);
        EXPECT_EQ(r.task, -1);
    }
}

TEST(Check, FailureIsAContractErrorForExistingCatchSites) {
    EXPECT_THROW(SWH_CHECK(false, "compat"), swh::ContractError);
    EXPECT_THROW(SWH_CHECK_EQ(1, 2, "compat"), swh::ContractError);
}

TEST(Check, ComparisonFormCapturesBothOperands) {
    const int ready = 3;
    const int executing = 5;
    try {
        SWH_CHECK_EQ(ready, executing, "tally mismatch");
        FAIL() << "SWH_CHECK_EQ did not throw";
    } catch (const CheckFailure& e) {
        const FailureReport& r = e.report();
        EXPECT_EQ(r.expression, "ready == executing");
        ASSERT_EQ(r.operands.size(), 2u);
        EXPECT_EQ(r.operands[0].expr, "ready");
        EXPECT_EQ(r.operands[0].value, "3");
        EXPECT_EQ(r.operands[1].expr, "executing");
        EXPECT_EQ(r.operands[1].value, "5");
        // what() renders the same report.
        const std::string what = e.what();
        EXPECT_NE(what.find("ready == executing"), std::string::npos);
        EXPECT_NE(what.find("tally mismatch"), std::string::npos);
        EXPECT_NE(what.find("ready = 3"), std::string::npos);
        EXPECT_NE(what.find("executing = 5"), std::string::npos);
    }
}

TEST(Check, ComparisonOperandsEvaluateOnce) {
    int calls = 0;
    const auto next = [&calls] { return ++calls; };
    EXPECT_THROW(SWH_CHECK_EQ(next(), 7, "side effects"), CheckFailure);
    EXPECT_EQ(calls, 1);
}

TEST(Check, ScopedContextTagsFailuresOnThisThread) {
    const ScopedContext ctx(4, 17);
    try {
        SWH_CHECK(false, "inside context");
        FAIL();
    } catch (const CheckFailure& e) {
        EXPECT_EQ(e.report().pe, 4);
        EXPECT_EQ(e.report().task, 17);
        const std::string what = e.what();
        EXPECT_NE(what.find("pe=4"), std::string::npos);
        EXPECT_NE(what.find("task=17"), std::string::npos);
    }
}

TEST(Check, ScopedContextNestsAndRestores) {
    EXPECT_EQ(current_context(), (std::pair<std::int64_t, std::int64_t>{
                                     -1, -1}));
    {
        const ScopedContext outer(1, 10);
        EXPECT_EQ(current_context().first, 1);
        {
            const ScopedContext inner(2, 20);
            EXPECT_EQ(current_context(),
                      (std::pair<std::int64_t, std::int64_t>{2, 20}));
        }
        EXPECT_EQ(current_context(),
                  (std::pair<std::int64_t, std::int64_t>{1, 10}));
    }
    EXPECT_EQ(current_context().first, -1);
}

TEST(Check, ContextIsThreadLocal) {
    const ScopedContext ctx(8, 80);
    std::pair<std::int64_t, std::int64_t> seen{0, 0};
    std::thread([&seen] { seen = current_context(); }).join();
    EXPECT_EQ(seen.first, -1);
    EXPECT_EQ(seen.second, -1);
    EXPECT_EQ(current_context().first, 8);
}

TEST(Check, DcheckLevelMatchesBuildConfiguration) {
    if (dchecks_enabled()) {
        EXPECT_THROW(SWH_DCHECK(false, "debug check"), CheckFailure);
        EXPECT_THROW(SWH_DCHECK_EQ(1, 2, "debug check"), CheckFailure);
    } else {
        EXPECT_NO_THROW(SWH_DCHECK(false, "compiled out"));
        EXPECT_NO_THROW(SWH_DCHECK_EQ(1, 2, "compiled out"));
    }
}

TEST(Check, InvariantLevelMatchesBuildConfiguration) {
    int sweeps = 0;
    SWH_AUDIT_SWEEP(++sweeps);
    if (audit_enabled()) {
        EXPECT_EQ(sweeps, 1);
        EXPECT_THROW(SWH_INVARIANT(false, "audit"), CheckFailure);
    } else {
        EXPECT_EQ(sweeps, 0);
        EXPECT_NO_THROW(SWH_INVARIANT(false, "compiled out"));
    }
}

TEST(Check, ReprHandlesCommonTypes) {
    EXPECT_EQ(detail::repr(true), "true");
    EXPECT_EQ(detail::repr(false), "false");
    EXPECT_EQ(detail::repr(42), "42");
    EXPECT_EQ(detail::repr(std::uint8_t{7}), "7");  // numeric, not a char
    EXPECT_EQ(detail::repr(std::string("abc")), "abc");
    struct Opaque {};
    EXPECT_EQ(detail::repr(Opaque{}), "<unprintable>");
}

}  // namespace
}  // namespace swh::check

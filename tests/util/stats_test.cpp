#include "util/stats.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace swh {
namespace {

TEST(RunningStats, Empty) {
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownSample) {
    RunningStats s;
    for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Mean, Basic) {
    const std::vector<double> xs = {1.0, 2.0, 3.0};
    EXPECT_DOUBLE_EQ(mean(xs), 2.0);
    EXPECT_DOUBLE_EQ(mean(std::vector<double>{}), 0.0);
}

TEST(WeightedMean, Basic) {
    const std::vector<double> xs = {1.0, 3.0};
    const std::vector<double> ws = {1.0, 3.0};
    EXPECT_DOUBLE_EQ(weighted_mean(xs, ws), 2.5);
}

TEST(WeightedMean, RejectsMismatch) {
    const std::vector<double> xs = {1.0};
    const std::vector<double> ws = {1.0, 2.0};
    EXPECT_THROW(weighted_mean(xs, ws), ContractError);
}

TEST(WeightedMean, RejectsZeroTotal) {
    const std::vector<double> xs = {1.0};
    const std::vector<double> ws = {0.0};
    EXPECT_THROW(weighted_mean(xs, ws), ContractError);
}

TEST(RecencyWeightedMean, NewestDominates) {
    // weights 1,2,3 for 0,0,6 -> 18/6 = 3
    const std::vector<double> xs = {0.0, 0.0, 6.0};
    EXPECT_DOUBLE_EQ(recency_weighted_mean(xs), 3.0);
}

TEST(RecencyWeightedMean, SingleSample) {
    const std::vector<double> xs = {4.2};
    EXPECT_DOUBLE_EQ(recency_weighted_mean(xs), 4.2);
}

TEST(RecencyWeightedMean, ConstantSeries) {
    const std::vector<double> xs = {5.0, 5.0, 5.0, 5.0};
    EXPECT_DOUBLE_EQ(recency_weighted_mean(xs), 5.0);
}

TEST(RecencyWeightedMean, EmptyIsZero) {
    // Summary paths (histogram export) call this unconditionally, so an
    // empty window must degrade like mean() instead of throwing.
    EXPECT_DOUBLE_EQ(recency_weighted_mean(std::vector<double>{}), 0.0);
}

TEST(Percentile, Interpolates) {
    std::vector<double> xs = {10.0, 20.0, 30.0, 40.0};
    EXPECT_DOUBLE_EQ(percentile(xs, 0), 10.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 100), 40.0);
    EXPECT_DOUBLE_EQ(percentile(xs, 50), 25.0);
}

TEST(Percentile, EmptyIsZero) {
    EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
}

TEST(Percentile, SingleSampleEveryP) {
    for (const double p : {0.0, 37.5, 50.0, 99.0, 100.0}) {
        EXPECT_DOUBLE_EQ(percentile({7.5}, p), 7.5);
    }
}

TEST(Percentile, RejectsOutOfRangePEvenWhenEmpty) {
    EXPECT_THROW(percentile({}, -1), ContractError);
    EXPECT_THROW(percentile({}, 101), ContractError);
    EXPECT_THROW(percentile({1.0}, 100.5), ContractError);
}

TEST(Geomean, Basic) {
    const std::vector<double> xs = {1.0, 4.0};
    EXPECT_NEAR(geomean(xs), 2.0, 1e-12);
}

TEST(Geomean, RejectsNonPositive) {
    const std::vector<double> xs = {1.0, 0.0};
    EXPECT_THROW(geomean(xs), ContractError);
}

}  // namespace
}  // namespace swh

#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.hpp"

namespace swh {
namespace {

TEST(TextTable, RendersAlignedCells) {
    TextTable t({"name", "value"});
    t.add_row({"alpha", "1"});
    t.add_row({"b", "22"});
    const std::string out = t.render();
    EXPECT_NE(out.find("| alpha |     1 |"), std::string::npos);
    EXPECT_NE(out.find("| b     |    22 |"), std::string::npos);
}

TEST(TextTable, RuleInsertsSeparator) {
    TextTable t({"c"});
    t.add_row({"1"});
    t.add_rule();
    t.add_row({"2"});
    const std::string out = t.render();
    // header rule + top + bottom + the explicit one = 4 horizontal lines
    std::size_t rules = 0, pos = 0;
    while ((pos = out.find("+--", pos)) != std::string::npos) {
        ++rules;
        pos += 3;
    }
    EXPECT_EQ(rules, 4u);
}

TEST(TextTable, RejectsWrongWidth) {
    TextTable t({"a", "b"});
    EXPECT_THROW(t.add_row({"only-one"}), ContractError);
}

TEST(CsvWriter, QuotesSpecialCells) {
    std::ostringstream os;
    CsvWriter csv(os);
    csv.row({"plain", "with,comma", "with\"quote"});
    EXPECT_EQ(os.str(), "plain,\"with,comma\",\"with\"\"quote\"\n");
}

}  // namespace
}  // namespace swh

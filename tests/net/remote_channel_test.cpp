#include "net/remote_channel.hpp"

#include <gtest/gtest.h>

#include <sys/socket.h>

#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "net/channel.hpp"
#include "net/stream.hpp"
#include "net/wire.hpp"

namespace swh::net {
namespace {

// A connected pair: the "slave" end wrapped in a SlaveRemoteChannel,
// the "master" end held raw so tests can write arbitrary frames.
struct Pair {
    std::shared_ptr<StreamTransport> master;
    std::unique_ptr<SlaveRemoteChannel> slave;

    explicit Pair(double delivery_delay_s = 0.0) {
        auto [a, b] = socket_pair();
        master = std::make_shared<StreamTransport>(std::move(a));
        slave = std::make_unique<SlaveRemoteChannel>(
            std::make_shared<StreamTransport>(std::move(b)),
            delivery_delay_s);
    }
};

void send_slave_msg(StreamTransport& t, const SlaveMsg& msg) {
    std::vector<std::uint8_t> frame;
    wire::encode(msg, frame);
    ASSERT_TRUE(t.send_frame(frame));
}

TEST(RemoteChannel, RoundTripBothDirections) {
    Pair p;
    // Master -> slave: frames decode into the slave's inbox.
    send_slave_msg(*p.master, MsgCancel{42});
    send_slave_msg(*p.master, MsgAssign{{{7, 3, 900}}});
    auto m1 = p.slave->recv();
    ASSERT_TRUE(m1.has_value());
    EXPECT_EQ(std::get<MsgCancel>(*m1).task, 42u);
    auto m2 = p.slave->recv();
    ASSERT_TRUE(m2.has_value());
    ASSERT_EQ(std::get<MsgAssign>(*m2).tasks.size(), 1u);
    EXPECT_EQ(std::get<MsgAssign>(*m2).tasks[0].id, 7u);

    // Slave -> master: channel.send produces a decodable frame.
    p.slave->send(MsgTaskFailed{1, 9, "broke"});
    auto body = p.master->recv_frame();
    ASSERT_TRUE(body.has_value());
    auto decoded = wire::decode_master(body->data(), body->size());
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(std::get<MsgTaskFailed>(*decoded).what, "broke");
}

// The inbound path runs through a real Channel, so the PR-5 machinery
// (depth gauges, seeded fault injection) applies to socket traffic.
TEST(RemoteChannel, ObserverSeesSocketTraffic) {
    struct Gauge : ChannelObserver {
        std::size_t sends = 0, recvs = 0;
        void on_send(std::size_t) override { ++sends; }
        void on_recv(std::size_t) override { ++recvs; }
    };
    Pair p;
    Gauge gauge;
    p.slave->set_observer(&gauge);
    send_slave_msg(*p.master, MsgNoWorkYet{});
    send_slave_msg(*p.master, MsgShutdown{});
    ASSERT_TRUE(p.slave->recv().has_value());
    ASSERT_TRUE(p.slave->recv().has_value());
    EXPECT_EQ(gauge.sends, 2u);
    EXPECT_EQ(gauge.recvs, 2u);
}

TEST(RemoteChannel, InjectedDropsApplyToSocketTraffic) {
    Pair p;
    p.slave->inject_faults({/*drop_prob=*/1.0, /*stall_s=*/0.0, 1234});
    send_slave_msg(*p.master, MsgShutdown{});
    // Deterministically dropped on delivery: never becomes visible.
    EXPECT_FALSE(p.slave->recv_for(0.1).has_value());
    EXPECT_GE(p.slave->dropped(), 1u);
}

// Peer EOF closes the inbox: pending messages drain, then nullopt —
// the same close/drain contract as the in-process Channel.
TEST(RemoteChannel, PeerEofDrainsThenCloses) {
    Pair p;
    send_slave_msg(*p.master, MsgCancel{5});
    p.master->shutdown();
    auto first = p.slave->recv();
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(std::get<MsgCancel>(*first).task, 5u);
    EXPECT_FALSE(p.slave->recv().has_value());
    EXPECT_TRUE(p.slave->closed());
}

// One malformed frame poisons the connection (decode reason preserved);
// the process survives and the channel closes like a dead link.
TEST(RemoteChannel, MalformedFramePoisonsConnection) {
    Pair p;
    // A well-framed body (valid length prefix) whose tag is garbage.
    std::vector<std::uint8_t> garbage(4);
    const std::uint32_t len = 3;
    std::memcpy(garbage.data(), &len, 4);
    garbage.insert(garbage.end(), {wire::kWireVersion, 0xEE, 1});
    ASSERT_TRUE(p.master->send_frame(garbage));
    EXPECT_FALSE(p.slave->recv().has_value());
    EXPECT_TRUE(p.slave->closed());
    EXPECT_NE(p.slave->transport().last_error().find("decode"),
              std::string::npos)
        << p.slave->transport().last_error();
}

// An oversized length prefix is rejected before any buffering.
// StreamTransport has no raw-write surface by design, so the broken
// peer is emulated with a bare socket.
TEST(RemoteChannel, OversizedLengthPrefixPoisonsConnection) {
    auto [a, b] = socket_pair();
    StreamTransport victim(std::move(b));
    const std::uint32_t huge = wire::kMaxFrameBytes + 1;
    std::uint8_t raw[4];
    std::memcpy(raw, &huge, 4);  // test host is little-endian
    ASSERT_EQ(::send(a.fd(), raw, sizeof raw, 0),
              static_cast<ssize_t>(sizeof raw));
    EXPECT_FALSE(victim.recv_frame().has_value());
    EXPECT_FALSE(victim.ok());
    EXPECT_NE(victim.last_error().find("length"), std::string::npos)
        << victim.last_error();
}

// Sends after close are counted drops, mirroring the ISSUE-10
// shutdown-race fix on the in-process Channel.
TEST(RemoteChannel, SendAfterCloseIsCountedDrop) {
    Pair p;
    p.slave->close();
    const std::size_t before = p.slave->dropped();
    p.slave->send(MsgHeartbeat{0});
    EXPECT_EQ(p.slave->dropped(), before + 1);
}

// Concurrent senders may interleave frames but never tear them: every
// frame decodes, none are lost.
TEST(RemoteChannel, ConcurrentSendsDoNotTearFrames) {
    Pair p;
    constexpr int kPerThread = 200;
    std::vector<std::thread> writers;
    for (int t = 0; t < 4; ++t) {
        writers.emplace_back([&p, t] {
            for (int i = 0; i < kPerThread; ++i) {
                p.slave->send(
                    MsgProgress{static_cast<core::PeId>(t), 1.0 + i});
            }
        });
    }
    std::size_t got = 0;
    while (got < 4 * kPerThread) {
        auto body = p.master->recv_frame();
        ASSERT_TRUE(body.has_value()) << p.master->last_error();
        std::string why;
        auto msg = wire::decode_master(body->data(), body->size(), &why);
        ASSERT_TRUE(msg.has_value()) << why;
        ASSERT_TRUE(std::holds_alternative<MsgProgress>(*msg));
        ++got;
    }
    for (auto& w : writers) w.join();
}

// The master-side pump: frames from several transports feed one shared
// inbox; an admission filter rejects (and counts) impersonated PeIds.
TEST(RemoteChannel, FrameReceiverFiltersIntoSharedInbox) {
    Channel<MasterMsg> inbox;
    auto [a1, b1] = socket_pair();
    auto remote1 = std::make_shared<StreamTransport>(std::move(a1));
    StreamTransport slave1(std::move(b1));
    FrameReceiver<MasterBound> pump(
        remote1, inbox, /*close_sink_on_exit=*/false,
        [](const MasterMsg& m) {
            return std::visit([](const auto& x) { return x.pe; }, m) == 0u;
        });
    std::vector<std::uint8_t> frame;
    wire::encode(MasterMsg{MsgHeartbeat{0}}, frame);
    ASSERT_TRUE(slave1.send_frame(frame));
    frame.clear();
    wire::encode(MasterMsg{MsgHeartbeat{7}}, frame);  // impersonator
    ASSERT_TRUE(slave1.send_frame(frame));
    auto msg = inbox.recv();
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ(std::get<MsgHeartbeat>(*msg).pe, 0u);
    slave1.shutdown();
    pump.stop();
    EXPECT_EQ(pump.rejected(), 1u);
    // Shared inbox stays open after one pump exits.
    EXPECT_FALSE(inbox.closed());
}

TEST(RemoteChannel, TcpLoopbackConnectAndExchange) {
    std::uint16_t port = 0;
    Socket listener = tcp_listen(port);
    ASSERT_TRUE(listener.valid());
    ASSERT_NE(port, 0);
    std::thread dialler([port] {
        auto sock = tcp_connect("127.0.0.1", port, 5.0);
        ASSERT_TRUE(sock.has_value());
        StreamTransport t(std::move(*sock));
        std::vector<std::uint8_t> frame;
        wire::encode(MasterMsg{MsgWorkRequest{3}}, frame);
        ASSERT_TRUE(t.send_frame(frame));
        auto reply = t.recv_frame();
        ASSERT_TRUE(reply.has_value());
        auto msg = wire::decode_slave(reply->data(), reply->size());
        ASSERT_TRUE(msg.has_value());
        EXPECT_TRUE(std::holds_alternative<MsgShutdown>(*msg));
    });
    auto accepted = tcp_accept(listener, 5.0);
    ASSERT_TRUE(accepted.has_value());
    StreamTransport t(std::move(*accepted));
    auto body = t.recv_frame();
    ASSERT_TRUE(body.has_value());
    auto msg = wire::decode_master(body->data(), body->size());
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ(std::get<MsgWorkRequest>(*msg).pe, 3u);
    std::vector<std::uint8_t> frame;
    wire::encode(SlaveMsg{MsgShutdown{}}, frame);
    ASSERT_TRUE(t.send_frame(frame));
    dialler.join();
}

}  // namespace
}  // namespace swh::net

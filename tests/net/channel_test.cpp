#include "net/channel.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

#include <string>
#include <thread>

#include "util/timer.hpp"

namespace swh::net {
namespace {

TEST(Channel, SendRecvInOrder) {
    Channel<int> ch;
    ch.send(1);
    ch.send(2);
    EXPECT_EQ(ch.recv().value(), 1);
    EXPECT_EQ(ch.recv().value(), 2);
}

TEST(Channel, TryRecvEmpty) {
    Channel<int> ch;
    EXPECT_FALSE(ch.try_recv().has_value());
    ch.send(3);
    EXPECT_EQ(ch.try_recv().value(), 3);
}

TEST(Channel, CloseDrainsThenNullopt) {
    Channel<int> ch;
    ch.send(1);
    ch.close();
    EXPECT_EQ(ch.recv().value(), 1);
    EXPECT_FALSE(ch.recv().has_value());
    // Post-close sends are lost like a dead link loses them — counted,
    // never delivered, never fatal (ISSUE 10 shutdown-race fix).
    ch.send(2);
    EXPECT_EQ(ch.dropped(), 1u);
    EXPECT_FALSE(ch.recv().has_value());
}

// Regression (ISSUE 10): a slave's late MsgHeartbeat/MsgDeregister racing
// the master's close() must be a counted drop, not a process abort.
TEST(Channel, SendRacingCloseIsCountedDrop) {
    Channel<int> ch;
    std::thread closer([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        ch.close();
    });
    std::size_t sent = 0;
    for (int i = 0; i < 10'000 && !ch.closed(); ++i) {
        ch.send(i);  // some of these race the close; none may throw
        ++sent;
    }
    closer.join();
    ch.send(-1);  // guaranteed post-close
    ++sent;
    std::size_t drained = 0;
    while (ch.recv().has_value()) ++drained;
    EXPECT_EQ(drained + ch.dropped(), sent);
    EXPECT_GE(ch.dropped(), 1u);
}

TEST(Channel, BlockingRecvWakesOnSend) {
    Channel<std::string> ch;
    std::thread producer([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(30));
        ch.send("hello");
    });
    const auto msg = ch.recv();
    producer.join();
    EXPECT_EQ(msg.value(), "hello");
}

TEST(Channel, ManyProducersOneConsumer) {
    Channel<int> ch;
    constexpr int kPerProducer = 200;
    std::vector<std::thread> producers;
    for (int p = 0; p < 4; ++p) {
        producers.emplace_back([&ch, p] {
            for (int i = 0; i < kPerProducer; ++i) ch.send(p);
        });
    }
    int received = 0;
    int counts[4] = {0, 0, 0, 0};
    while (received < 4 * kPerProducer) {
        ++counts[ch.recv().value()];
        ++received;
    }
    for (std::thread& t : producers) t.join();
    for (const int c : counts) EXPECT_EQ(c, kPerProducer);
}

TEST(Channel, DeliveryDelayHoldsMessages) {
    Channel<int> ch(0.05);
    ch.send(42);
    EXPECT_FALSE(ch.try_recv().has_value());  // not deliverable yet
    Timer t;
    EXPECT_EQ(ch.recv().value(), 42);
    EXPECT_GE(t.seconds(), 0.035);  // waited for the latency window
}

TEST(Channel, RejectsNegativeDelay) {
    EXPECT_THROW(Channel<int>(-1.0), swh::ContractError);
}

// Regression for the notify_one() send path: a consumer already blocked
// in recv() when messages arrive on a delayed channel must be woken by
// the (single) notify, wait out the latency window of the head message,
// and then drain everything in order — no lost-wakeup hang.
TEST(Channel, DelayedDeliveryWakesBlockedConsumer) {
    Channel<int> ch(0.04);
    Timer t;
    std::thread producer([&] {
        for (int i = 1; i <= 3; ++i) {
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
            ch.send(i);
        }
    });
    EXPECT_EQ(ch.recv().value(), 1);  // blocked before the first send
    EXPECT_GE(t.seconds(), 0.045);    // 10 ms until send + 40 ms latency
    EXPECT_EQ(ch.recv().value(), 2);
    EXPECT_EQ(ch.recv().value(), 3);
    producer.join();
}

TEST(Channel, RecvForTimesOutOnSilence) {
    Channel<int> ch;
    Timer t;
    EXPECT_FALSE(ch.recv_for(0.03).has_value());
    EXPECT_GE(t.seconds(), 0.025);
}

TEST(Channel, RecvForDeliversImmediatelyAvailableMessage) {
    Channel<int> ch;
    ch.send(7);
    Timer t;
    EXPECT_EQ(ch.recv_for(5.0).value(), 7);
    EXPECT_LT(t.seconds(), 1.0);  // did not wait out the deadline
}

TEST(Channel, RecvForWakesOnSendBeforeDeadline) {
    Channel<int> ch;
    std::thread producer([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        ch.send(9);
    });
    EXPECT_EQ(ch.recv_for(5.0).value(), 9);
    producer.join();
}

TEST(Channel, RecvForDrainsBacklogOfClosedChannel) {
    Channel<int> ch;
    ch.send(1);
    ch.close();
    EXPECT_TRUE(ch.closed());
    EXPECT_EQ(ch.recv_for(0.01).value(), 1);
    // Drained and closed: returns immediately, no deadline wait.
    Timer t;
    EXPECT_FALSE(ch.recv_for(5.0).has_value());
    EXPECT_LT(t.seconds(), 1.0);
}

TEST(Channel, RecvForWaitsOutDeliveryDelayWithinDeadline) {
    Channel<int> ch(0.03);
    ch.send(5);
    EXPECT_FALSE(ch.recv_for(0.005).has_value());  // deadline < latency
    EXPECT_EQ(ch.recv_for(5.0).value(), 5);
}

TEST(Channel, DropFaultDiscardsDeterministically) {
    ChannelFaults faults;
    faults.drop_prob = 0.5;
    faults.seed = 0xFA17ULL;

    auto surviving = [&] {
        Channel<int> ch;
        ch.inject_faults(faults);
        std::vector<int> got;
        for (int i = 0; i < 64; ++i) ch.send(i);
        while (auto m = ch.try_recv()) got.push_back(*m);
        EXPECT_EQ(got.size() + ch.dropped(), 64u);
        return got;
    };

    const std::vector<int> a = surviving();
    const std::vector<int> b = surviving();
    EXPECT_EQ(a, b);  // same seed, same losses
    EXPECT_FALSE(a.empty());
    EXPECT_LT(a.size(), 64u);
}

// Regression (ISSUE 10): per-message fault stalls can make a later-sent
// entry deliverable before the queue head. recv/recv_for/try_recv must
// deliver the earliest-ready entry — waiting on front().ready alone let
// recv_for time out (and the master declare a slave dead) while a
// deliverable message sat behind the stalled head.
TEST(Channel, StalledHeadDoesNotBlockFreshTail) {
    Channel<int> ch;
    ChannelFaults stall;
    stall.stall_s = 0.5;
    ch.inject_faults(stall);
    ch.send(1);  // stalled head: deliverable only after 500 ms
    ch.inject_faults(ChannelFaults{});
    ch.send(2);  // fresh tail: deliverable immediately
    // try_recv and a short recv_for must both see the tail now.
    Timer t;
    EXPECT_EQ(ch.recv_for(0.05).value(), 2);
    EXPECT_LT(t.seconds(), 0.4);  // did not wait out the stalled head
    EXPECT_FALSE(ch.try_recv().has_value());  // head still in flight
    EXPECT_EQ(ch.recv().value(), 1);          // ...but never lost
    EXPECT_GE(t.seconds(), 0.4);
}

TEST(Channel, TryRecvDeliversEarliestReadyEntry) {
    Channel<int> ch;
    ChannelFaults stall;
    stall.stall_s = 0.5;
    ch.inject_faults(stall);
    ch.send(1);
    ch.inject_faults(ChannelFaults{});
    ch.send(2);
    EXPECT_EQ(ch.try_recv().value(), 2);
}

TEST(Channel, StallFaultDelaysDelivery) {
    Channel<int> ch;
    ChannelFaults faults;
    faults.stall_s = 0.04;
    ch.inject_faults(faults);
    ch.send(11);
    EXPECT_FALSE(ch.try_recv().has_value());  // still in flight
    Timer t;
    EXPECT_EQ(ch.recv().value(), 11);
    EXPECT_GE(t.seconds(), 0.025);
}

TEST(Channel, FaultsCanBeDisarmed) {
    Channel<int> ch;
    ChannelFaults faults;
    faults.drop_prob = 1.0;
    ch.inject_faults(faults);
    ch.send(1);
    EXPECT_EQ(ch.dropped(), 1u);
    ch.inject_faults(ChannelFaults{});
    ch.send(2);
    EXPECT_EQ(ch.try_recv().value(), 2);
    EXPECT_EQ(ch.dropped(), 1u);
}

TEST(Channel, RejectsInvalidFaultPlans) {
    Channel<int> ch;
    ChannelFaults negative_drop;
    negative_drop.drop_prob = -0.1;
    EXPECT_THROW(ch.inject_faults(negative_drop), swh::ContractError);
    ChannelFaults excess_drop;
    excess_drop.drop_prob = 1.5;
    EXPECT_THROW(ch.inject_faults(excess_drop), swh::ContractError);
    ChannelFaults negative_stall;
    negative_stall.stall_s = -1.0;
    EXPECT_THROW(ch.inject_faults(negative_stall), swh::ContractError);
}

TEST(Channel, ObserverSeesQueueDepths) {
    struct Recorder final : public ChannelObserver {
        std::vector<std::size_t> sends;
        std::vector<std::size_t> recvs;
        void on_send(std::size_t depth_after) override {
            sends.push_back(depth_after);
        }
        void on_recv(std::size_t depth_after) override {
            recvs.push_back(depth_after);
        }
    } recorder;

    Channel<int> ch;
    ch.set_observer(&recorder);
    ch.send(1);
    ch.send(2);
    EXPECT_EQ(ch.recv().value(), 1);
    EXPECT_EQ(ch.try_recv().value(), 2);
    ch.set_observer(nullptr);
    ch.send(3);  // no longer observed

    EXPECT_EQ(recorder.sends, (std::vector<std::size_t>{1, 2}));
    EXPECT_EQ(recorder.recvs, (std::vector<std::size_t>{1, 0}));
}

}  // namespace
}  // namespace swh::net

#include "net/wire.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <string>
#include <vector>

namespace swh::net {
namespace {

// encode() appends a complete frame: u32 LE body_len, then the body the
// decoders take. These helpers split one encoded frame back apart.
std::uint32_t frame_len(const std::vector<std::uint8_t>& frame) {
    EXPECT_GE(frame.size(), 4u);
    std::uint32_t len = 0;
    std::memcpy(&len, frame.data(), 4);  // test host is little-endian
    return len;
}

const std::uint8_t* body(const std::vector<std::uint8_t>& frame) {
    return frame.data() + 4;
}

std::size_t body_size(const std::vector<std::uint8_t>& frame) {
    return frame.size() - 4;
}

template <typename Msg>
std::vector<std::uint8_t> encode_one(const Msg& msg) {
    std::vector<std::uint8_t> frame;
    wire::encode(msg, frame);
    EXPECT_EQ(frame_len(frame), body_size(frame))
        << "length prefix must cover exactly the body";
    EXPECT_LE(body_size(frame), wire::kMaxFrameBytes);
    return frame;
}

MasterMsg roundtrip_master(const MasterMsg& msg) {
    const auto frame = encode_one(msg);
    std::string why;
    auto decoded = wire::decode_master(body(frame), body_size(frame), &why);
    EXPECT_TRUE(decoded.has_value()) << why;
    return *decoded;
}

SlaveMsg roundtrip_slave(const SlaveMsg& msg) {
    const auto frame = encode_one(msg);
    std::string why;
    auto decoded = wire::decode_slave(body(frame), body_size(frame), &why);
    EXPECT_TRUE(decoded.has_value()) << why;
    return *decoded;
}

// Every MasterMsg alternative survives encode -> decode bit-exactly,
// including negative scores (two's complement on the wire) and an empty
// hit list.
TEST(Wire, RoundTripEveryMasterAlternative) {
    {
        const auto m = roundtrip_master(
            MsgRegister{7, core::PeKind::Gpu});
        const auto& r = std::get<MsgRegister>(m);
        EXPECT_EQ(r.pe, 7u);
        EXPECT_EQ(r.kind, core::PeKind::Gpu);
    }
    {
        const auto m = roundtrip_master(MsgWorkRequest{3});
        EXPECT_EQ(std::get<MsgWorkRequest>(m).pe, 3u);
    }
    {
        const auto m = roundtrip_master(MsgProgress{2, 1.25e9});
        const auto& p = std::get<MsgProgress>(m);
        EXPECT_EQ(p.pe, 2u);
        EXPECT_EQ(p.cells_per_second, 1.25e9);
    }
    {
        core::TaskResult result;
        result.task = 41;
        result.query_index = 5;
        result.cells = 0x1122334455667788ULL;
        result.hits = {{9, 250}, {0, 0}, {123456, -17}};
        const auto m = roundtrip_master(MsgTaskDone{1, 41, result});
        const auto& d = std::get<MsgTaskDone>(m);
        EXPECT_EQ(d.pe, 1u);
        EXPECT_EQ(d.task, 41u);
        EXPECT_EQ(d.result.task, result.task);
        EXPECT_EQ(d.result.query_index, result.query_index);
        EXPECT_EQ(d.result.cells, result.cells);
        EXPECT_EQ(d.result.hits, result.hits);
    }
    {
        core::TaskResult empty;
        const auto m = roundtrip_master(MsgTaskDone{0, 0, empty});
        EXPECT_TRUE(std::get<MsgTaskDone>(m).result.hits.empty());
    }
    {
        const auto m = roundtrip_master(MsgDeregister{6});
        EXPECT_EQ(std::get<MsgDeregister>(m).pe, 6u);
    }
    {
        const auto m = roundtrip_master(MsgHeartbeat{4});
        EXPECT_EQ(std::get<MsgHeartbeat>(m).pe, 4u);
    }
    {
        const auto m = roundtrip_master(
            MsgTaskFailed{2, 99, "engine exploded: code 7"});
        const auto& f = std::get<MsgTaskFailed>(m);
        EXPECT_EQ(f.pe, 2u);
        EXPECT_EQ(f.task, 99u);
        EXPECT_EQ(f.what, "engine exploded: code 7");
    }
}

TEST(Wire, RoundTripEverySlaveAlternative) {
    {
        const auto m = roundtrip_slave(MsgAssign{
            {{1, 0, 1000}, {2, 1, 2000}, {0xFFFFFFFF, 0xFFFFFFFF,
              std::numeric_limits<std::uint64_t>::max()}}});
        const auto& a = std::get<MsgAssign>(m);
        ASSERT_EQ(a.tasks.size(), 3u);
        EXPECT_EQ(a.tasks[1].id, 2u);
        EXPECT_EQ(a.tasks[1].query_index, 1u);
        EXPECT_EQ(a.tasks[1].cells, 2000u);
        EXPECT_EQ(a.tasks[2].cells,
                  std::numeric_limits<std::uint64_t>::max());
    }
    {
        const auto m = roundtrip_slave(MsgAssign{{}});
        EXPECT_TRUE(std::get<MsgAssign>(m).tasks.empty());
    }
    {
        const auto m = roundtrip_slave(MsgNoWorkYet{});
        EXPECT_TRUE(std::holds_alternative<MsgNoWorkYet>(m));
    }
    {
        const auto m = roundtrip_slave(MsgCancel{77});
        EXPECT_EQ(std::get<MsgCancel>(m).task, 77u);
    }
    {
        const auto m = roundtrip_slave(MsgShutdown{});
        EXPECT_TRUE(std::holds_alternative<MsgShutdown>(m));
    }
}

TEST(Wire, RoundTripHandshake) {
    const wire::Hello hello{core::PeKind::Fpga, "fpga-node-3"};
    const auto hframe = encode_one(hello);
    std::string why;
    auto h = wire::decode_hello(body(hframe), body_size(hframe), &why);
    ASSERT_TRUE(h.has_value()) << why;
    EXPECT_EQ(*h, hello);

    wire::Welcome welcome;
    welcome.pe = 2;
    welcome.top_k = 25;
    welcome.notify_period_s = 0.125;
    welcome.heartbeat_period_s = 0.0625;
    welcome.liveness = true;
    const auto wframe = encode_one(welcome);
    auto w = wire::decode_welcome(body(wframe), body_size(wframe), &why);
    ASSERT_TRUE(w.has_value()) << why;
    EXPECT_EQ(*w, welcome);
}

// The decode-time string bound (ISSUE 10 satellite): a hostile or buggy
// MsgTaskFailed::what cannot balloon master memory — both the encoder
// and the decoder clamp at kMaxStringBytes with the marker appended.
TEST(Wire, OversizedWhatIsBoundedWithMarker) {
    const std::string huge(3 * wire::kMaxStringBytes, 'x');
    const auto m = roundtrip_master(MsgTaskFailed{0, 1, huge});
    const std::string& got = std::get<MsgTaskFailed>(m).what;
    EXPECT_EQ(got.size(), wire::kMaxStringBytes);
    const std::string marker = wire::kTruncationMarker;
    ASSERT_GT(got.size(), marker.size());
    EXPECT_EQ(got.substr(got.size() - marker.size()), marker);
    EXPECT_EQ(got.substr(0, 16), huge.substr(0, 16));

    // Exactly at the bound: no truncation, no marker.
    const std::string fits(wire::kMaxStringBytes, 'y');
    const auto m2 = roundtrip_master(MsgTaskFailed{0, 1, fits});
    EXPECT_EQ(std::get<MsgTaskFailed>(m2).what, fits);
}

// Strictness sweep: EVERY strict prefix of every alternative's body is
// rejected (truncation can never silently yield a shorter message), and
// one trailing byte is rejected too.
TEST(Wire, TruncatedAndPaddedBodiesAreRejected) {
    std::vector<std::vector<std::uint8_t>> frames;
    for (const MasterMsg& m : std::vector<MasterMsg>{
             MsgRegister{1, core::PeKind::SseCore}, MsgWorkRequest{1},
             MsgProgress{1, 2.0},
             MsgTaskDone{1, 2, core::TaskResult{2, 0, 10, {{3, 4}}}},
             MsgDeregister{1}, MsgHeartbeat{1},
             MsgTaskFailed{1, 2, "boom"}}) {
        frames.push_back(encode_one(m));
    }
    for (const SlaveMsg& m : std::vector<SlaveMsg>{
             MsgAssign{{{1, 0, 100}}}, MsgNoWorkYet{}, MsgCancel{5},
             MsgShutdown{}}) {
        frames.push_back(encode_one(m));
    }
    for (const auto& frame : frames) {
        const std::uint8_t tag = frame[5];
        const bool is_master = tag < 0x20;
        for (std::size_t cut = 0; cut < body_size(frame); ++cut) {
            std::string why;
            const bool ok =
                is_master
                    ? wire::decode_master(body(frame), cut, &why).has_value()
                    : wire::decode_slave(body(frame), cut, &why).has_value();
            EXPECT_FALSE(ok) << "tag " << int(tag) << " prefix " << cut
                             << " of " << body_size(frame);
            EXPECT_FALSE(why.empty());
        }
        std::vector<std::uint8_t> padded(body(frame),
                                         body(frame) + body_size(frame));
        padded.push_back(0);
        std::string why;
        const bool ok =
            is_master
                ? wire::decode_master(padded.data(), padded.size(), &why)
                      .has_value()
                : wire::decode_slave(padded.data(), padded.size(), &why)
                      .has_value();
        EXPECT_FALSE(ok) << "trailing byte accepted for tag " << int(tag);
    }
}

TEST(Wire, BadVersionRejected) {
    auto frame = encode_one(MasterMsg{MsgHeartbeat{1}});
    frame[4] = wire::kWireVersion + 1;
    std::string why;
    EXPECT_FALSE(
        wire::decode_master(body(frame), body_size(frame), &why).has_value());
    EXPECT_NE(why.find("version"), std::string::npos) << why;
}

TEST(Wire, UnknownAndCrossDirectionTagsRejected) {
    auto frame = encode_one(MasterMsg{MsgHeartbeat{1}});
    frame[5] = 0xFF;
    std::string why;
    EXPECT_FALSE(
        wire::decode_master(body(frame), body_size(frame), &why).has_value());

    // A slave-bound frame handed to the master decoder (mis-wired
    // endpoint) fails at the tag, not by misparsing the payload.
    const auto cancel = encode_one(SlaveMsg{MsgCancel{5}});
    EXPECT_FALSE(wire::decode_master(body(cancel), body_size(cancel), &why)
                     .has_value());
    EXPECT_NE(why.find("tag"), std::string::npos) << why;
    const auto reg =
        encode_one(MasterMsg{MsgRegister{0, core::PeKind::SseCore}});
    EXPECT_FALSE(
        wire::decode_slave(body(reg), body_size(reg), &why).has_value());
    // Handshake tags are not valid inside either stream.
    const auto hello = encode_one(wire::Hello{core::PeKind::SseCore, "x"});
    EXPECT_FALSE(wire::decode_master(body(hello), body_size(hello), &why)
                     .has_value());
    EXPECT_FALSE(wire::decode_slave(body(hello), body_size(hello), &why)
                     .has_value());
}

// A forged element count must be rejected by comparison against the
// bytes actually present — before any allocation happens.
TEST(Wire, ForgedVectorCountRejected) {
    auto frame = encode_one(SlaveMsg{MsgAssign{{{1, 0, 100}}}});
    // Body: version u8, tag u8, then the task count u32 at offset 2.
    const std::uint32_t forged = 0x00FFFFFF;
    std::memcpy(frame.data() + 4 + 2, &forged, 4);
    std::string why;
    EXPECT_FALSE(
        wire::decode_slave(body(frame), body_size(frame), &why).has_value());
    EXPECT_FALSE(why.empty());

    auto done = encode_one(
        MasterMsg{MsgTaskDone{1, 2, core::TaskResult{2, 0, 10, {{3, 4}}}}});
    // Body: version, tag, pe u32, task u32, result{task u32, query u32,
    // cells u64} -> hit count u32 at offset 2 + 4 + 4 + 4 + 4 + 8 = 26.
    std::memcpy(done.data() + 4 + 26, &forged, 4);
    EXPECT_FALSE(
        wire::decode_master(body(done), body_size(done), &why).has_value());
}

TEST(Wire, NonFiniteDoubleRejected) {
    for (const std::uint64_t bits :
         {0x7FF0000000000000ULL,    // +inf
          0xFFF0000000000000ULL,    // -inf
          0x7FF8000000000000ULL}) {  // quiet NaN
        auto frame = encode_one(MasterMsg{MsgProgress{1, 1.0}});
        // Body: version, tag, pe u32 -> f64 at offset 6.
        std::memcpy(frame.data() + 4 + 6, &bits, 8);
        std::string why;
        EXPECT_FALSE(wire::decode_master(body(frame), body_size(frame), &why)
                         .has_value());
        EXPECT_NE(why.find("finite"), std::string::npos) << why;
    }
}

TEST(Wire, OutOfRangeEnumBytesRejected) {
    auto reg = encode_one(MasterMsg{MsgRegister{1, core::PeKind::Fpga}});
    // Body: version, tag, pe u32, kind u8 at offset 6.
    reg[4 + 6] = 3;  // one past PeKind::Fpga
    std::string why;
    EXPECT_FALSE(
        wire::decode_master(body(reg), body_size(reg), &why).has_value());

    wire::Welcome welcome;
    auto w = encode_one(welcome);
    // Body: version, tag, pe u32, top_k u32, two f64s, liveness u8 at
    // offset 2 + 4 + 4 + 8 + 8 = 26.
    w[4 + 26] = 2;  // bool must be exactly 0 or 1
    EXPECT_FALSE(
        wire::decode_welcome(body(w), body_size(w), &why).has_value());
}

TEST(Wire, BadHelloMagicRejected) {
    auto frame = encode_one(wire::Hello{core::PeKind::SseCore, "peer"});
    frame[4 + 2] ^= 0x5A;  // corrupt the magic (offset 2, after ver+tag)
    std::string why;
    EXPECT_FALSE(
        wire::decode_hello(body(frame), body_size(frame), &why).has_value());
    EXPECT_NE(why.find("magic"), std::string::npos) << why;
}

// Wire stability: the encoding is a protocol, not an implementation
// detail. Golden bytes for one representative message; if this breaks,
// kWireVersion must be bumped.
TEST(Wire, GoldenHeartbeatFrame) {
    const auto frame = encode_one(MasterMsg{MsgHeartbeat{0x01020304}});
    const std::vector<std::uint8_t> expected = {
        0x06, 0x00, 0x00, 0x00,  // body_len = 6
        0x01,                    // version
        0x06,                    // Tag::kHeartbeat
        0x04, 0x03, 0x02, 0x01,  // pe, little-endian
    };
    EXPECT_EQ(frame, expected);
}

}  // namespace
}  // namespace swh::net

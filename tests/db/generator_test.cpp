#include "db/generator.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "align/sw_scalar.hpp"
#include "db/database.hpp"

namespace swh::db {
namespace {

using align::Alphabet;

TEST(LengthModel, SamplesWithinBounds) {
    LengthModel lm;
    lm.min_len = 50;
    lm.max_len = 500;
    Rng rng(1);
    for (int i = 0; i < 2000; ++i) {
        const std::size_t len = lm.sample(rng);
        EXPECT_GE(len, 50u);
        EXPECT_LE(len, 500u);
    }
}

TEST(LengthModel, ApproxMeanTracksLogMean) {
    LengthModel lm;
    lm.log_mean = std::log(300.0);
    lm.log_stdev = 0.3;
    lm.min_len = 10;
    lm.max_len = 5000;
    // Lognormal mean = exp(mu + sigma^2/2) ~ 313.8.
    EXPECT_NEAR(lm.approx_mean(), 314.0, 20.0);
}

TEST(RandomProtein, UsesOnlyRealAminoAcids) {
    Rng rng(2);
    const auto seq = random_protein(rng, 5000);
    ASSERT_EQ(seq.size(), 5000u);
    for (const align::Code c : seq.residues) EXPECT_LT(c, 20);
}

TEST(RandomProtein, FrequenciesRoughlyRobinson) {
    Rng rng(3);
    std::map<align::Code, int> counts;
    const auto seq = random_protein(rng, 100'000);
    for (const align::Code c : seq.residues) ++counts[c];
    // Leucine (code for 'L') should be the most common residue (~9%).
    const align::Code leu = Alphabet::protein().encode('L');
    EXPECT_NEAR(counts[leu] / 100'000.0, 0.090, 0.01);
    // Tryptophan the rarest (~1.3%).
    const align::Code trp = Alphabet::protein().encode('W');
    EXPECT_NEAR(counts[trp] / 100'000.0, 0.013, 0.005);
}

TEST(GenerateDatabase, DeterministicForSeed) {
    DatabaseSpec spec;
    spec.name = "t";
    spec.num_sequences = 50;
    spec.seed = 77;
    const auto a = generate_database(spec);
    const auto b = generate_database(spec);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].residues, b[i].residues);
    }
}

TEST(GenerateDatabase, PrefixStableUnderCount) {
    // Record i must not depend on how many records follow it.
    DatabaseSpec small, large;
    small.name = large.name = "t";
    small.seed = large.seed = 5;
    small.num_sequences = 10;
    large.num_sequences = 30;
    const auto a = generate_database(small);
    const auto b = generate_database(large);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].residues, b[i].residues) << i;
    }
}

TEST(Database, CachesResidueTotal) {
    DatabaseSpec spec;
    spec.name = "t";
    spec.num_sequences = 20;
    spec.seed = 9;
    const Database database = Database::generate(spec);
    EXPECT_EQ(database.size(), 20u);
    std::uint64_t total = 0;
    for (const auto& s : database.sequences()) total += s.size();
    EXPECT_EQ(database.residues(), total);
    EXPECT_GT(total, 0u);
}

TEST(Mutate, ZeroRatesIsIdentity) {
    Rng rng(11);
    const auto seq = random_protein(rng, 200);
    const auto out =
        mutate(seq, Alphabet::protein(), MutationModel{0, 0, 0}, rng);
    EXPECT_EQ(out.residues, seq.residues);
}

TEST(Mutate, SubstitutionsChangeResidues) {
    Rng rng(13);
    const auto seq = random_protein(rng, 1000);
    const auto out = mutate(seq, Alphabet::protein(),
                            MutationModel{0.2, 0.0, 0.0}, rng);
    ASSERT_EQ(out.size(), seq.size());
    std::size_t diff = 0;
    for (std::size_t i = 0; i < seq.size(); ++i) {
        if (out.residues[i] != seq.residues[i]) ++diff;
    }
    EXPECT_NEAR(static_cast<double>(diff) / 1000.0, 0.2, 0.05);
}

TEST(Mutate, HomologScoresHigherThanRandom) {
    Rng rng(17);
    const align::ScoreMatrix m = align::ScoreMatrix::blosum62();
    const auto seq = random_protein(rng, 300);
    const auto homolog = mutate(seq, Alphabet::protein(),
                                MutationModel{0.1, 0.02, 0.02}, rng);
    const auto unrelated = random_protein(rng, 300);
    const align::Score hom_score =
        align::sw_score_affine(seq.residues, homolog.residues, m, {10, 2});
    const align::Score rnd_score = align::sw_score_affine(
        seq.residues, unrelated.residues, m, {10, 2});
    EXPECT_GT(hom_score, 4 * rnd_score);
}

}  // namespace
}  // namespace swh::db

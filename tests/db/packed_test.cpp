#include "db/packed.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <thread>
#include <vector>

#include "db/database.hpp"
#include "util/error.hpp"

namespace swh::db {
namespace {

db::Database make_db(std::size_t n = 30, std::uint64_t seed = 3) {
    DatabaseSpec spec;
    spec.name = "packed-test";
    spec.num_sequences = n;
    spec.length.min_len = 10;
    spec.length.max_len = 300;
    spec.seed = seed;
    return Database::generate(spec);
}

TEST(PackedDatabase, ArenaMatchesSequences) {
    const Database database = make_db();
    const PackedDatabase packed = PackedDatabase::pack(database.sequences());
    ASSERT_EQ(packed.size(), database.size());
    EXPECT_EQ(packed.residues(), database.residues());
    std::size_t max_len = 0;
    for (std::size_t i = 0; i < database.size(); ++i) {
        const auto& seq = database[i].residues;
        const auto sub = packed.subject(i);
        ASSERT_EQ(sub.size(), seq.size());
        EXPECT_TRUE(std::equal(sub.begin(), sub.end(), seq.begin()));
        max_len = std::max(max_len, seq.size());
    }
    EXPECT_EQ(packed.max_length(), max_len);
}

TEST(PackedDatabase, ArenaIs64ByteAligned) {
    const Database database = make_db(5);
    const PackedDatabase packed = PackedDatabase::pack(database.sequences());
    // The arena is laid out in scan order, so the first scanned subject
    // sits at the (64-byte-aligned) arena base.
    const auto* base = packed.subject(packed.scan_order()[0]).data();
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(base) % 64, 0u);
}

TEST(PackedDatabase, ArenaIsContiguousInScanOrder) {
    const Database database = make_db(40, 11);
    const PackedDatabase packed = PackedDatabase::pack(database.sequences());
    const auto order = packed.scan_order();
    const align::Code* expect =
        packed.size() ? packed.subject(order[0]).data() : nullptr;
    for (const std::uint32_t idx : order) {
        const auto sub = packed.subject(idx);
        EXPECT_EQ(sub.data(), expect) << "gap in scan-order arena layout";
        expect = sub.data() + sub.size();
    }
}

TEST(PackedDatabase, ScanOrderIsLengthSortedPermutation) {
    const Database database = make_db(50, 9);
    const PackedDatabase packed = PackedDatabase::pack(database.sequences());
    const auto order = packed.scan_order();
    ASSERT_EQ(order.size(), packed.size());
    std::vector<bool> seen(packed.size(), false);
    for (std::size_t slot = 0; slot < order.size(); ++slot) {
        ASSERT_LT(order[slot], packed.size());
        EXPECT_FALSE(seen[order[slot]]) << "duplicate index in scan order";
        seen[order[slot]] = true;
        if (slot > 0) {
            const std::uint32_t prev = order[slot - 1];
            const std::uint32_t cur = order[slot];
            // Longest first; equal lengths keep original index order.
            EXPECT_TRUE(packed.length(prev) > packed.length(cur) ||
                        (packed.length(prev) == packed.length(cur) &&
                         prev < cur));
        }
    }
}

TEST(PackedDatabase, MaxCodeReflectsArenaContents) {
    const Database database = make_db(20, 11);
    const PackedDatabase packed = PackedDatabase::pack(database.sequences());
    align::Code expected = 0;
    for (const auto& s : database.sequences()) {
        for (const align::Code c : s.residues) expected = std::max(expected, c);
    }
    EXPECT_EQ(packed.max_code(), expected);
    // Generated proteins use the 20 standard residues of the 24-letter
    // protein alphabet.
    EXPECT_LT(packed.max_code(), align::Alphabet::protein().size());
}

TEST(PackedDatabase, EmptyDatabase) {
    const PackedDatabase packed = PackedDatabase::pack({});
    EXPECT_EQ(packed.size(), 0u);
    EXPECT_EQ(packed.residues(), 0u);
    const align::PackedSubjects v = packed.view();
    EXPECT_EQ(v.count, 0u);
}

TEST(PackedDatabase, DatabaseCachesPackedForm) {
    const Database database = make_db(10, 13);
    const PackedDatabase* first = &database.packed();
    EXPECT_EQ(first, &database.packed());
    // Copies share the cache (sequences are immutable).
    const Database copy = database;  // NOLINT(performance-unnecessary-copy)
    EXPECT_EQ(first, &copy.packed());
}

TEST(PackedDatabase, ConcurrentPackedAccessIsSafe) {
    const Database database = make_db(40, 17);
    std::vector<const PackedDatabase*> seen(8, nullptr);
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < seen.size(); ++t) {
        threads.emplace_back([&database, &seen, t] {
            seen[t] = &database.packed();
        });
    }
    for (auto& th : threads) th.join();
    for (const PackedDatabase* p : seen) EXPECT_EQ(p, seen[0]);
    EXPECT_EQ(seen[0]->residues(), database.residues());
}

TEST(PackedDatabase, ScanOrderTieBreakIsBitReproducible) {
    // Many equal-length subjects: ties must keep ascending original
    // index, and packing twice must give the identical permutation —
    // scan output order (and thus cohort membership) is reproducible
    // run to run.
    std::vector<align::Sequence> seqs;
    for (int i = 0; i < 200; ++i) {
        const auto len = static_cast<std::size_t>(20 + (i % 4) * 10);
        seqs.push_back(align::Sequence{
            "t" + std::to_string(i), "",
            std::vector<align::Code>(len, static_cast<align::Code>(i % 20))});
    }
    const PackedDatabase a = PackedDatabase::pack(seqs);
    const PackedDatabase b = PackedDatabase::pack(seqs);
    ASSERT_EQ(a.scan_order().size(), seqs.size());
    EXPECT_TRUE(std::equal(a.scan_order().begin(), a.scan_order().end(),
                           b.scan_order().begin()));
    const auto order = a.scan_order();
    for (std::size_t slot = 1; slot < order.size(); ++slot) {
        const std::uint32_t prev = order[slot - 1];
        const std::uint32_t cur = order[slot];
        if (a.length(prev) == a.length(cur)) {
            EXPECT_LT(prev, cur) << "equal-length tie broke out of order";
        } else {
            EXPECT_GT(a.length(prev), a.length(cur));
        }
    }
}

TEST(InterleavedChunksTest, CohortLayoutMatchesScanOrder) {
    const Database database = make_db(75, 19);
    const PackedDatabase packed = PackedDatabase::pack(database.sequences());
    constexpr int kLanes = 16;
    const InterleavedChunks& chunks = packed.interleaved(kLanes);
    EXPECT_EQ(chunks.lanes(), kLanes);
    const auto order = packed.scan_order();
    const std::size_t expect_cohorts =
        (packed.size() + kLanes - 1) / static_cast<std::size_t>(kLanes);
    ASSERT_EQ(chunks.cohort_count(), expect_cohorts);

    const align::InterleavedCohorts v = chunks.view();
    ASSERT_EQ(v.count, expect_cohorts);
    EXPECT_EQ(v.lanes, kLanes);
    EXPECT_EQ(v.pad_code, align::InterseqProfile::kPadCode);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.arena) % 64, 0u);

    for (std::size_t c = 0; c < v.count; ++c) {
        const align::CohortDesc& d = v.cohorts[c];
        EXPECT_EQ(d.first_slot, c * kLanes);
        const std::size_t members =
            std::min<std::size_t>(kLanes, packed.size() - d.first_slot);
        EXPECT_EQ(d.lanes_used, members);
        // Longest-first scan order: the first member is the longest, so
        // its length is the column count.
        EXPECT_EQ(d.columns, packed.length(order[d.first_slot]));
        std::uint64_t residues = 0;
        for (std::size_t l = 0; l < members; ++l) {
            const std::uint32_t idx = order[d.first_slot + l];
            const auto sub = packed.subject(idx);
            residues += sub.size();
            EXPECT_LE(sub.size(), d.columns);
            for (std::size_t j = 0; j < d.columns; ++j) {
                const align::Code got =
                    v.arena[d.offset + j * kLanes + l];
                if (j < sub.size()) {
                    EXPECT_EQ(got, sub[j])
                        << "cohort " << c << " lane " << l << " col " << j;
                } else {
                    EXPECT_EQ(got, align::InterseqProfile::kPadCode)
                        << "cohort " << c << " lane " << l << " col " << j;
                }
            }
        }
        EXPECT_EQ(d.residues, residues);
        // Absent lanes of the tail cohort are pure padding.
        for (std::size_t l = members; l < kLanes; ++l) {
            for (std::size_t j = 0; j < d.columns; ++j) {
                EXPECT_EQ(v.arena[d.offset + j * kLanes + l],
                          align::InterseqProfile::kPadCode);
            }
        }
    }
}

TEST(InterleavedChunksTest, CachedPerWidthAndThreadSafe) {
    const Database database = make_db(40, 23);
    const PackedDatabase packed = PackedDatabase::pack(database.sequences());
    const InterleavedChunks* w16 = &packed.interleaved(16);
    const InterleavedChunks* w32 = &packed.interleaved(32);
    EXPECT_NE(w16, w32);
    EXPECT_EQ(w16, &packed.interleaved(16));
    EXPECT_EQ(w32, &packed.interleaved(32));

    std::vector<const InterleavedChunks*> seen(8, nullptr);
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < seen.size(); ++t) {
        threads.emplace_back([&packed, &seen, t] {
            seen[t] = &packed.interleaved(64);
        });
    }
    for (auto& th : threads) th.join();
    for (const InterleavedChunks* p : seen) EXPECT_EQ(p, seen[0]);
}

TEST(InterleavedChunksTest, EmptyDatabaseYieldsNoCohorts) {
    const PackedDatabase packed = PackedDatabase::pack({});
    const InterleavedChunks& chunks = packed.interleaved(16);
    EXPECT_EQ(chunks.cohort_count(), 0u);
    EXPECT_EQ(chunks.view().count, 0u);
}

}  // namespace
}  // namespace swh::db

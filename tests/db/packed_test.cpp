#include "db/packed.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <thread>
#include <vector>

#include "db/database.hpp"
#include "util/error.hpp"

namespace swh::db {
namespace {

db::Database make_db(std::size_t n = 30, std::uint64_t seed = 3) {
    DatabaseSpec spec;
    spec.name = "packed-test";
    spec.num_sequences = n;
    spec.length.min_len = 10;
    spec.length.max_len = 300;
    spec.seed = seed;
    return Database::generate(spec);
}

TEST(PackedDatabase, ArenaMatchesSequences) {
    const Database database = make_db();
    const PackedDatabase packed = PackedDatabase::pack(database.sequences());
    ASSERT_EQ(packed.size(), database.size());
    EXPECT_EQ(packed.residues(), database.residues());
    std::size_t max_len = 0;
    for (std::size_t i = 0; i < database.size(); ++i) {
        const auto& seq = database[i].residues;
        const auto sub = packed.subject(i);
        ASSERT_EQ(sub.size(), seq.size());
        EXPECT_TRUE(std::equal(sub.begin(), sub.end(), seq.begin()));
        max_len = std::max(max_len, seq.size());
    }
    EXPECT_EQ(packed.max_length(), max_len);
}

TEST(PackedDatabase, ArenaIs64ByteAligned) {
    const Database database = make_db(5);
    const PackedDatabase packed = PackedDatabase::pack(database.sequences());
    // The arena is laid out in scan order, so the first scanned subject
    // sits at the (64-byte-aligned) arena base.
    const auto* base = packed.subject(packed.scan_order()[0]).data();
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(base) % 64, 0u);
}

TEST(PackedDatabase, ArenaIsContiguousInScanOrder) {
    const Database database = make_db(40, 11);
    const PackedDatabase packed = PackedDatabase::pack(database.sequences());
    const auto order = packed.scan_order();
    const align::Code* expect =
        packed.size() ? packed.subject(order[0]).data() : nullptr;
    for (const std::uint32_t idx : order) {
        const auto sub = packed.subject(idx);
        EXPECT_EQ(sub.data(), expect) << "gap in scan-order arena layout";
        expect = sub.data() + sub.size();
    }
}

TEST(PackedDatabase, ScanOrderIsLengthSortedPermutation) {
    const Database database = make_db(50, 9);
    const PackedDatabase packed = PackedDatabase::pack(database.sequences());
    const auto order = packed.scan_order();
    ASSERT_EQ(order.size(), packed.size());
    std::vector<bool> seen(packed.size(), false);
    for (std::size_t slot = 0; slot < order.size(); ++slot) {
        ASSERT_LT(order[slot], packed.size());
        EXPECT_FALSE(seen[order[slot]]) << "duplicate index in scan order";
        seen[order[slot]] = true;
        if (slot > 0) {
            const std::uint32_t prev = order[slot - 1];
            const std::uint32_t cur = order[slot];
            // Longest first; equal lengths keep original index order.
            EXPECT_TRUE(packed.length(prev) > packed.length(cur) ||
                        (packed.length(prev) == packed.length(cur) &&
                         prev < cur));
        }
    }
}

TEST(PackedDatabase, MaxCodeReflectsArenaContents) {
    const Database database = make_db(20, 11);
    const PackedDatabase packed = PackedDatabase::pack(database.sequences());
    align::Code expected = 0;
    for (const auto& s : database.sequences()) {
        for (const align::Code c : s.residues) expected = std::max(expected, c);
    }
    EXPECT_EQ(packed.max_code(), expected);
    // Generated proteins use the 20 standard residues of the 24-letter
    // protein alphabet.
    EXPECT_LT(packed.max_code(), align::Alphabet::protein().size());
}

TEST(PackedDatabase, EmptyDatabase) {
    const PackedDatabase packed = PackedDatabase::pack({});
    EXPECT_EQ(packed.size(), 0u);
    EXPECT_EQ(packed.residues(), 0u);
    const align::PackedSubjects v = packed.view();
    EXPECT_EQ(v.count, 0u);
}

TEST(PackedDatabase, DatabaseCachesPackedForm) {
    const Database database = make_db(10, 13);
    const PackedDatabase* first = &database.packed();
    EXPECT_EQ(first, &database.packed());
    // Copies share the cache (sequences are immutable).
    const Database copy = database;  // NOLINT(performance-unnecessary-copy)
    EXPECT_EQ(first, &copy.packed());
}

TEST(PackedDatabase, ConcurrentPackedAccessIsSafe) {
    const Database database = make_db(40, 17);
    std::vector<const PackedDatabase*> seen(8, nullptr);
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < seen.size(); ++t) {
        threads.emplace_back([&database, &seen, t] {
            seen[t] = &database.packed();
        });
    }
    for (auto& th : threads) th.join();
    for (const PackedDatabase* p : seen) EXPECT_EQ(p, seen[0]);
    EXPECT_EQ(seen[0]->residues(), database.residues());
}

}  // namespace
}  // namespace swh::db

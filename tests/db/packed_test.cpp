#include "db/packed.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "db/database.hpp"
#include "util/error.hpp"

namespace swh::db {
namespace {

db::Database make_db(std::size_t n = 30, std::uint64_t seed = 3) {
    DatabaseSpec spec;
    spec.name = "packed-test";
    spec.num_sequences = n;
    spec.length.min_len = 10;
    spec.length.max_len = 300;
    spec.seed = seed;
    return Database::generate(spec);
}

TEST(PackedDatabase, ArenaMatchesSequences) {
    const Database database = make_db();
    const PackedDatabase packed = PackedDatabase::pack(database.sequences());
    ASSERT_EQ(packed.size(), database.size());
    EXPECT_EQ(packed.residues(), database.residues());
    std::size_t max_len = 0;
    for (std::size_t i = 0; i < database.size(); ++i) {
        const auto& seq = database[i].residues;
        const auto sub = packed.subject(i);
        ASSERT_EQ(sub.size(), seq.size());
        EXPECT_TRUE(std::equal(sub.begin(), sub.end(), seq.begin()));
        max_len = std::max(max_len, seq.size());
    }
    EXPECT_EQ(packed.max_length(), max_len);
}

TEST(PackedDatabase, ArenaIs64ByteAligned) {
    const Database database = make_db(5);
    const PackedDatabase packed = PackedDatabase::pack(database.sequences());
    // The arena is laid out in scan order, so the first scanned subject
    // sits at the (64-byte-aligned) arena base.
    const auto* base = packed.subject(packed.scan_order()[0]).data();
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(base) % 64, 0u);
}

TEST(PackedDatabase, ArenaIsContiguousInScanOrder) {
    const Database database = make_db(40, 11);
    const PackedDatabase packed = PackedDatabase::pack(database.sequences());
    const auto order = packed.scan_order();
    const align::Code* expect =
        packed.size() ? packed.subject(order[0]).data() : nullptr;
    for (const std::uint32_t idx : order) {
        const auto sub = packed.subject(idx);
        EXPECT_EQ(sub.data(), expect) << "gap in scan-order arena layout";
        expect = sub.data() + sub.size();
    }
}

TEST(PackedDatabase, ScanOrderIsLengthSortedPermutation) {
    const Database database = make_db(50, 9);
    const PackedDatabase packed = PackedDatabase::pack(database.sequences());
    const auto order = packed.scan_order();
    ASSERT_EQ(order.size(), packed.size());
    std::vector<bool> seen(packed.size(), false);
    for (std::size_t slot = 0; slot < order.size(); ++slot) {
        ASSERT_LT(order[slot], packed.size());
        EXPECT_FALSE(seen[order[slot]]) << "duplicate index in scan order";
        seen[order[slot]] = true;
        if (slot > 0) {
            const std::uint32_t prev = order[slot - 1];
            const std::uint32_t cur = order[slot];
            // Longest first; equal lengths keep original index order.
            EXPECT_TRUE(packed.length(prev) > packed.length(cur) ||
                        (packed.length(prev) == packed.length(cur) &&
                         prev < cur));
        }
    }
}

TEST(PackedDatabase, MaxCodeReflectsArenaContents) {
    const Database database = make_db(20, 11);
    const PackedDatabase packed = PackedDatabase::pack(database.sequences());
    align::Code expected = 0;
    for (const auto& s : database.sequences()) {
        for (const align::Code c : s.residues) expected = std::max(expected, c);
    }
    EXPECT_EQ(packed.max_code(), expected);
    // Generated proteins use the 20 standard residues of the 24-letter
    // protein alphabet.
    EXPECT_LT(packed.max_code(), align::Alphabet::protein().size());
}

TEST(PackedDatabase, EmptyDatabase) {
    const PackedDatabase packed = PackedDatabase::pack({});
    EXPECT_EQ(packed.size(), 0u);
    EXPECT_EQ(packed.residues(), 0u);
    const align::PackedSubjects v = packed.view();
    EXPECT_EQ(v.count, 0u);
}

TEST(PackedDatabase, DatabaseCachesPackedForm) {
    const Database database = make_db(10, 13);
    const PackedDatabase* first = &database.packed();
    EXPECT_EQ(first, &database.packed());
    // Copies share the cache (sequences are immutable).
    const Database copy = database;  // NOLINT(performance-unnecessary-copy)
    EXPECT_EQ(first, &copy.packed());
}

TEST(PackedDatabase, ConcurrentPackedAccessIsSafe) {
    const Database database = make_db(40, 17);
    std::vector<const PackedDatabase*> seen(8, nullptr);
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < seen.size(); ++t) {
        threads.emplace_back([&database, &seen, t] {
            seen[t] = &database.packed();
        });
    }
    for (auto& th : threads) th.join();
    for (const PackedDatabase* p : seen) EXPECT_EQ(p, seen[0]);
    EXPECT_EQ(seen[0]->residues(), database.residues());
}

TEST(PackedDatabase, ScanOrderTieBreakIsBitReproducible) {
    // Many equal-length subjects: ties must keep ascending original
    // index, and packing twice must give the identical permutation —
    // scan output order (and thus cohort membership) is reproducible
    // run to run.
    std::vector<align::Sequence> seqs;
    for (int i = 0; i < 200; ++i) {
        const auto len = static_cast<std::size_t>(20 + (i % 4) * 10);
        seqs.push_back(align::Sequence{
            "t" + std::to_string(i), "",
            std::vector<align::Code>(len, static_cast<align::Code>(i % 20))});
    }
    const PackedDatabase a = PackedDatabase::pack(seqs);
    const PackedDatabase b = PackedDatabase::pack(seqs);
    ASSERT_EQ(a.scan_order().size(), seqs.size());
    EXPECT_TRUE(std::equal(a.scan_order().begin(), a.scan_order().end(),
                           b.scan_order().begin()));
    const auto order = a.scan_order();
    for (std::size_t slot = 1; slot < order.size(); ++slot) {
        const std::uint32_t prev = order[slot - 1];
        const std::uint32_t cur = order[slot];
        if (a.length(prev) == a.length(cur)) {
            EXPECT_LT(prev, cur) << "equal-length tie broke out of order";
        } else {
            EXPECT_GT(a.length(prev), a.length(cur));
        }
    }
}

/// Structural invariants every interleaved layout must satisfy,
/// whatever mix of natural and compacted cohorts the lengths produce:
/// each subject packed exactly once, arena contents matching the
/// subject through the slots table, fill bars respected.
void check_layout(const PackedDatabase& packed, int lanes) {
    const InterleavedChunks& chunks = packed.interleaved(lanes);
    EXPECT_EQ(chunks.lanes(), lanes);
    const auto order = packed.scan_order();
    const align::InterleavedCohorts v = chunks.view();
    EXPECT_EQ(v.count, chunks.cohort_count());
    EXPECT_EQ(v.lanes, lanes);
    EXPECT_EQ(v.pad_code, align::InterseqProfile::kPadCode);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(v.arena) % 64, 0u);
    if (packed.size() > 0) {
        ASSERT_NE(v.slots, nullptr);
        ASSERT_EQ(chunks.slots().size(), packed.size());
    }

    const std::uint64_t w = static_cast<std::uint64_t>(lanes);
    std::vector<int> seen(packed.size(), 0);
    std::size_t compacted = 0;
    for (std::size_t c = 0; c < v.count; ++c) {
        const align::CohortDesc& d = v.cohorts[c];
        if (c > 0) {
            // Longest-first cohort order keeps claim balancing.
            EXPECT_LE(d.columns, v.cohorts[c - 1].columns);
        }
        ASSERT_GE(d.lanes_used, 1u);
        ASSERT_LE(d.lanes_used, w);
        const bool is_compacted =
            (d.flags & align::CohortDesc::kCompacted) != 0;
        compacted += is_compacted ? 1 : 0;
        if (!is_compacted) {
            // Natural cohorts survive only at full width and above the
            // full-width fill bar; anything else must be re-packed.
            EXPECT_EQ(d.lanes_used, w);
            EXPECT_GE(d.residues * 100,
                      std::uint64_t{d.columns} * w *
                          InterleavedChunks::kCohortFillPct);
        } else {
            // Compacted cohorts hold the bar against their own used
            // lane count (1-subject outlier cohorts pass trivially).
            EXPECT_GE(d.residues * 100, std::uint64_t{d.columns} *
                                            d.lanes_used *
                                            InterleavedChunks::kCohortFillPct);
        }
        std::uint64_t residues = 0;
        for (std::uint32_t l = 0; l < d.lanes_used; ++l) {
            const std::uint32_t slot = v.slots[d.first_slot + l];
            ASSERT_LT(slot, packed.size());
            ++seen[slot];
            const std::uint32_t idx = order[slot];
            const auto sub = packed.subject(idx);
            residues += sub.size();
            EXPECT_LE(sub.size(), d.columns);
            // The longest member leads, so columns is exact.
            if (l == 0) {
                EXPECT_EQ(d.columns, sub.size());
            }
            for (std::size_t j = 0; j < d.columns; ++j) {
                const align::Code got = v.arena[d.offset + j * w + l];
                if (j < sub.size()) {
                    EXPECT_EQ(got, sub[j])
                        << "cohort " << c << " lane " << l << " col " << j;
                } else {
                    EXPECT_EQ(got, align::InterseqProfile::kPadCode)
                        << "cohort " << c << " lane " << l << " col " << j;
                }
            }
        }
        EXPECT_EQ(d.residues, residues);
        // Absent lanes are pure padding: the kernels always run the
        // cohort at full width.
        for (std::uint64_t l = d.lanes_used; l < w; ++l) {
            for (std::size_t j = 0; j < d.columns; ++j) {
                EXPECT_EQ(v.arena[d.offset + j * w + l],
                          align::InterseqProfile::kPadCode);
            }
        }
    }
    EXPECT_EQ(compacted, chunks.compacted_cohorts());
    for (std::size_t s = 0; s < seen.size(); ++s) {
        EXPECT_EQ(seen[s], 1) << "scan slot " << s
                              << " not packed exactly once";
    }
}

TEST(InterleavedChunksTest, CohortLayoutMatchesScanOrder) {
    const Database database = make_db(75, 19);
    const PackedDatabase packed = PackedDatabase::pack(database.sequences());
    check_layout(packed, 16);
    check_layout(packed, 64);
}

TEST(InterleavedChunksTest, UniformLengthsStayNaturalCohorts) {
    // Equal lengths fill every natural cohort to 100%: nothing but the
    // sub-width tail should be re-packed.
    std::vector<align::Sequence> seqs;
    for (int i = 0; i < 70; ++i) {
        seqs.push_back(align::Sequence{
            "u" + std::to_string(i), "", std::vector<align::Code>(80, 3)});
    }
    const PackedDatabase packed = PackedDatabase::pack(seqs);
    constexpr int kLanes = 16;
    const InterleavedChunks& chunks = packed.interleaved(kLanes);
    // 70 = 4 full natural cohorts + a 6-subject compacted tail.
    EXPECT_EQ(chunks.cohort_count(), 5u);
    EXPECT_EQ(chunks.compacted_cohorts(), 1u);
    check_layout(packed, kLanes);
}

TEST(InterleavedChunksTest, RaggedLengthsCompactIntoDenseCohorts) {
    // A length cliff inside what would be one natural cohort: 8
    // subjects of 400 followed by 58 of 40. The natural W-stride group
    // mixing them fills 8*400+8*40 / 16*400 = 55% < 75%, so the whole
    // head must be re-packed into dense length-adjacent cohorts.
    std::vector<align::Sequence> seqs;
    for (int i = 0; i < 8; ++i) {
        seqs.push_back(align::Sequence{
            "long" + std::to_string(i), "",
            std::vector<align::Code>(400, 5)});
    }
    for (int i = 0; i < 58; ++i) {
        seqs.push_back(align::Sequence{
            "short" + std::to_string(i), "",
            std::vector<align::Code>(40, 7)});
    }
    const PackedDatabase packed = PackedDatabase::pack(seqs);
    constexpr int kLanes = 16;
    const InterleavedChunks& chunks = packed.interleaved(kLanes);
    check_layout(packed, kLanes);
    EXPECT_GE(chunks.compacted_cohorts(), 2u);
    // The 400-column cohort must not run at the full natural width (16
    // lanes would be 55% fill): the re-pack stops adding 40-residue
    // tag-alongs once aggregate fill would drop below the bar. The
    // bulk of the short subjects land in dense natural 40-column
    // cohorts instead.
    const align::InterleavedCohorts v = chunks.view();
    bool long_cohort = false, natural_short = false;
    for (std::size_t c = 0; c < v.count; ++c) {
        const align::CohortDesc& d = v.cohorts[c];
        if (d.columns == 400) {
            long_cohort = true;
            EXPECT_LT(d.lanes_used, 16u);
            EXPECT_NE(d.flags & align::CohortDesc::kCompacted, 0u);
        }
        if (d.columns == 40 &&
            (d.flags & align::CohortDesc::kCompacted) == 0) {
            natural_short = true;
        }
    }
    EXPECT_TRUE(long_cohort);
    EXPECT_TRUE(natural_short);
}

TEST(InterleavedChunksTest, IsolatedOutlierGetsSingleSubjectCohort) {
    // One 2000-residue outlier over a sea of 50-residue subjects: the
    // greedy re-pack cannot pair anything with it without collapsing
    // fill, so it must ride alone.
    std::vector<align::Sequence> seqs;
    seqs.push_back(align::Sequence{
        "outlier", "", std::vector<align::Code>(2000, 2)});
    for (int i = 0; i < 33; ++i) {
        seqs.push_back(align::Sequence{
            "bg" + std::to_string(i), "", std::vector<align::Code>(50, 9)});
    }
    const PackedDatabase packed = PackedDatabase::pack(seqs);
    constexpr int kLanes = 16;
    const InterleavedChunks& chunks = packed.interleaved(kLanes);
    check_layout(packed, kLanes);
    const align::InterleavedCohorts v = chunks.view();
    bool found = false;
    for (std::size_t c = 0; c < v.count; ++c) {
        const align::CohortDesc& d = v.cohorts[c];
        if (d.columns == 2000) {
            found = true;
            EXPECT_EQ(d.lanes_used, 1u);
            EXPECT_NE(d.flags & align::CohortDesc::kCompacted, 0u);
        }
    }
    EXPECT_TRUE(found);
}

TEST(InterleavedChunksTest, CachedPerWidthAndThreadSafe) {
    const Database database = make_db(40, 23);
    const PackedDatabase packed = PackedDatabase::pack(database.sequences());
    const InterleavedChunks* w16 = &packed.interleaved(16);
    const InterleavedChunks* w32 = &packed.interleaved(32);
    EXPECT_NE(w16, w32);
    EXPECT_EQ(w16, &packed.interleaved(16));
    EXPECT_EQ(w32, &packed.interleaved(32));

    std::vector<const InterleavedChunks*> seen(8, nullptr);
    std::vector<std::thread> threads;
    for (std::size_t t = 0; t < seen.size(); ++t) {
        threads.emplace_back([&packed, &seen, t] {
            seen[t] = &packed.interleaved(64);
        });
    }
    for (auto& th : threads) th.join();
    for (const InterleavedChunks* p : seen) EXPECT_EQ(p, seen[0]);
}

TEST(InterleavedChunksTest, EmptyDatabaseYieldsNoCohorts) {
    const PackedDatabase packed = PackedDatabase::pack({});
    const InterleavedChunks& chunks = packed.interleaved(16);
    EXPECT_EQ(chunks.cohort_count(), 0u);
    EXPECT_EQ(chunks.view().count, 0u);
}

}  // namespace
}  // namespace swh::db

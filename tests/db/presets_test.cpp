#include "db/presets.hpp"

#include <gtest/gtest.h>

#include "db/database.hpp"
#include "util/error.hpp"

namespace swh::db {
namespace {

TEST(Presets, TableTwoRoster) {
    const auto& presets = table2_presets();
    ASSERT_EQ(presets.size(), 5u);
    EXPECT_EQ(presets[0].name, "Ensembl Dog");
    EXPECT_EQ(presets[0].num_sequences, 25'160u);
    EXPECT_EQ(presets[1].num_sequences, 32'971u);
    EXPECT_EQ(presets[2].num_sequences, 34'705u);
    EXPECT_EQ(presets[3].num_sequences, 29'437u);
    EXPECT_EQ(presets[4].name, "UniProtKB/SwissProt");
    EXPECT_EQ(presets[4].num_sequences, 537'505u);
}

TEST(Presets, SwissProtIsLargestByFar) {
    const auto& presets = table2_presets();
    const std::uint64_t swiss = presets[4].total_residues();
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_GT(swiss, 8 * presets[i].total_residues());
    }
}

TEST(Presets, LookupByName) {
    EXPECT_EQ(preset_by_name("swissprot").num_sequences, 537'505u);
    EXPECT_EQ(preset_by_name("Ensembl Dog").num_sequences, 25'160u);
    EXPECT_EQ(preset_by_name("rat").num_sequences, 32'971u);
    EXPECT_THROW(preset_by_name("zebrafish"), ContractError);
}

TEST(Presets, ScaledSpecShrinksSequenceCount) {
    const DatabasePreset& dog = table2_presets()[0];
    const DatabaseSpec spec = dog.spec(0.01, 1);
    EXPECT_EQ(spec.num_sequences, 251u);
    EXPECT_THROW(dog.spec(0.0), ContractError);
    EXPECT_THROW(dog.spec(1.5), ContractError);
}

TEST(Presets, GeneratedScaledDbTracksMeanLength) {
    const DatabasePreset& dog = table2_presets()[0];
    const Database database = Database::generate(dog.spec(0.02, 3));
    const double mean = static_cast<double>(database.residues()) /
                        static_cast<double>(database.size());
    EXPECT_NEAR(mean, dog.mean_length, dog.mean_length * 0.25);
}

TEST(QuerySet, PaperWorkloadShape) {
    const auto queries = make_query_set();
    ASSERT_EQ(queries.size(), 40u);
    EXPECT_EQ(queries.front().size(), 100u);
    EXPECT_EQ(queries.back().size(), 5000u);
    // Linearly spaced: deltas all within rounding of each other.
    for (std::size_t i = 1; i < queries.size(); ++i) {
        const auto delta = queries[i].size() - queries[i - 1].size();
        EXPECT_NEAR(static_cast<double>(delta), 4900.0 / 39.0, 1.0) << i;
    }
}

TEST(QuerySet, SingleQueryGetsMinLength) {
    const auto queries = make_query_set(1, 100, 5000, 1);
    ASSERT_EQ(queries.size(), 1u);
    EXPECT_EQ(queries[0].size(), 100u);
}

TEST(QuerySet, Deterministic) {
    const auto a = make_query_set(5, 100, 500, 7);
    const auto b = make_query_set(5, 100, 500, 7);
    for (std::size_t i = 0; i < 5; ++i) {
        EXPECT_EQ(a[i].residues, b[i].residues);
    }
}

}  // namespace
}  // namespace swh::db

#include "swhybrid.hpp"
#include <gtest/gtest.h>
namespace swh {
namespace {
// Smoke test: the umbrella header compiles and exposes the main types.
TEST(Umbrella, ExposesPublicApi) {
    const align::ScoreMatrix m = align::ScoreMatrix::blosum62();
    EXPECT_EQ(m.score('A', 'A'), 4);
    EXPECT_TRUE(simd::is_supported(simd::IsaLevel::Scalar));
    EXPECT_EQ(core::make_pss()->name(), "PSS");
    EXPECT_EQ(db::table2_presets().size(), 5u);
}
}  // namespace
}  // namespace swh

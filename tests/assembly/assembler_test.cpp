#include "assembly/assembler.hpp"

#include <gtest/gtest.h>

#include "assembly/read_sim.hpp"
#include "util/error.hpp"

namespace swh::assembly {
namespace {

using align::Alphabet;
using align::Sequence;

std::vector<Sequence> reads_of(const std::vector<SimulatedRead>& sim) {
    std::vector<Sequence> out;
    out.reserve(sim.size());
    for (const SimulatedRead& r : sim) out.push_back(r.record.seq);
    return out;
}

/// Identity fraction between contig and reference via simple best-shift
/// matching (reads are indel-free so a plain sweep suffices).
double best_identity(const std::vector<align::Code>& contig,
                     const Sequence& reference) {
    double best = 0.0;
    const auto& ref = reference.residues;
    for (std::size_t shift = 0;
         shift + contig.size() <= ref.size() || shift == 0; ++shift) {
        if (shift + contig.size() > ref.size()) break;
        std::size_t same = 0;
        for (std::size_t i = 0; i < contig.size(); ++i) {
            if (contig[i] == ref[shift + i]) ++same;
        }
        best = std::max(best,
                        static_cast<double>(same) /
                            static_cast<double>(contig.size()));
    }
    return best;
}

TEST(ReadSim, CoverageAndLengths) {
    const Sequence ref = random_reference(1'000, 11);
    ReadSimSpec spec;
    spec.coverage = 8.0;
    spec.read_len = 100;
    const auto reads = simulate_reads(ref, spec);
    EXPECT_EQ(reads.size(), 80u);
    for (const SimulatedRead& r : reads) {
        EXPECT_EQ(r.record.seq.size(), 100u);
        EXPECT_LE(r.true_position + 100, ref.size());
        // Error-free reads must match the reference exactly.
        for (std::size_t i = 0; i < 100; ++i) {
            EXPECT_EQ(r.record.seq.residues[i],
                      ref.residues[r.true_position + i]);
        }
    }
}

TEST(ReadSim, ErrorRateApproximatelyRespected) {
    const Sequence ref = random_reference(2'000, 13);
    ReadSimSpec spec;
    spec.coverage = 5.0;
    spec.read_len = 100;
    spec.error_rate = 0.05;
    const auto reads = simulate_reads(ref, spec);
    std::size_t diffs = 0, total = 0;
    for (const SimulatedRead& r : reads) {
        for (std::size_t i = 0; i < r.record.seq.size(); ++i) {
            total++;
            if (r.record.seq.residues[i] !=
                ref.residues[r.true_position + i]) {
                ++diffs;
            }
        }
    }
    EXPECT_NEAR(static_cast<double>(diffs) / static_cast<double>(total),
                0.05, 0.01);
}

TEST(ReadSim, RejectsBadSpecs) {
    const Sequence ref = random_reference(100, 1);
    ReadSimSpec spec;
    spec.read_len = 5;
    EXPECT_THROW(simulate_reads(ref, spec), ContractError);
    spec.read_len = 200;
    EXPECT_THROW(simulate_reads(ref, spec), ContractError);
}

TEST(Assembler, PerfectReadsReconstructReference) {
    const Sequence ref = random_reference(800, 17);
    ReadSimSpec spec;
    spec.coverage = 12.0;
    spec.read_len = 80;
    spec.seed = 18;
    const auto reads = reads_of(simulate_reads(ref, spec));

    AssemblyOptions options;
    options.threads = 2;
    const AssemblyResult result = assemble(reads, options);

    ASSERT_FALSE(result.contigs.empty());
    // Dense error-free coverage should give one dominant contig close to
    // the reference length, matching it (almost) exactly.
    const Contig& big = result.contigs.front();
    EXPECT_GT(big.consensus.size(), ref.size() * 9 / 10);
    EXPECT_LE(big.consensus.size(), ref.size());
    EXPECT_GT(best_identity(big.consensus, ref), 0.999);
    EXPECT_GT(result.overlaps_used, reads.size() / 2);
}

TEST(Assembler, NoisyReadsStillAssemble) {
    const Sequence ref = random_reference(600, 19);
    ReadSimSpec spec;
    spec.coverage = 15.0;
    spec.read_len = 80;
    spec.error_rate = 0.02;
    spec.seed = 20;
    const auto reads = reads_of(simulate_reads(ref, spec));

    AssemblyOptions options;
    options.min_score = 60;  // tolerate a few mismatches per overlap
    const AssemblyResult result = assemble(reads, options);

    ASSERT_FALSE(result.contigs.empty());
    const Contig& big = result.contigs.front();
    EXPECT_GT(big.consensus.size(), ref.size() / 2);
    // Majority consensus must push identity well above the raw read
    // error rate.
    EXPECT_GT(best_identity(big.consensus, ref), 0.99);
}

TEST(Assembler, DisjointFragmentsStaySeparate) {
    // Reads from two unrelated references must never merge.
    const Sequence ref_a = random_reference(300, 23);
    const Sequence ref_b = random_reference(300, 29);
    ReadSimSpec spec;
    spec.coverage = 8.0;
    spec.read_len = 60;
    auto reads = reads_of(simulate_reads(ref_a, spec));
    spec.seed = 31;
    const auto more = reads_of(simulate_reads(ref_b, spec));
    reads.insert(reads.end(), more.begin(), more.end());

    const AssemblyResult result = assemble(reads);
    ASSERT_GE(result.contigs.size(), 2u);
    const double id_a = best_identity(result.contigs[0].consensus, ref_a);
    const double id_b = best_identity(result.contigs[0].consensus, ref_b);
    // The largest contig belongs cleanly to exactly one reference.
    EXPECT_GT(std::max(id_a, id_b), 0.99);
    EXPECT_LT(std::min(id_a, id_b), 0.8);
}

TEST(Assembler, SingleReadIsItsOwnContig) {
    const Sequence ref = random_reference(100, 37);
    std::vector<Sequence> reads = {
        Sequence{"only", "", ref.residues}};
    const AssemblyResult result = assemble(reads);
    ASSERT_EQ(result.contigs.size(), 1u);
    EXPECT_EQ(result.contigs[0].consensus, ref.residues);
    EXPECT_EQ(result.overlaps_used, 0u);
}

TEST(Assembler, N50Statistic) {
    AssemblyResult r;
    for (const std::size_t len : {500u, 300u, 200u}) {
        Contig c;
        c.consensus.resize(len);
        r.contigs.push_back(std::move(c));
    }
    // total 1000; cumulative 500 >= 500 at the first contig.
    EXPECT_EQ(r.n50(), 500u);
    EXPECT_EQ(r.largest_contig(), 500u);
    EXPECT_EQ(AssemblyResult{}.n50(), 0u);
}

TEST(Assembler, ThreadedOverlapStageMatchesSerial) {
    const Sequence ref = random_reference(400, 41);
    ReadSimSpec spec;
    spec.coverage = 6.0;
    spec.read_len = 60;
    const auto reads = reads_of(simulate_reads(ref, spec));
    AssemblyOptions serial;
    AssemblyOptions threaded;
    threaded.threads = 4;
    const auto e1 = find_overlaps(reads, serial);
    const auto e2 = find_overlaps(reads, threaded);
    ASSERT_EQ(e1.size(), e2.size());
    for (std::size_t i = 0; i < e1.size(); ++i) {
        EXPECT_EQ(e1[i].a, e2[i].a);
        EXPECT_EQ(e1[i].b, e2[i].b);
        EXPECT_EQ(e1[i].overlap.score, e2[i].overlap.score);
    }
}

}  // namespace
}  // namespace swh::assembly

#include "align/alignment.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace swh::align {
namespace {

Alignment simple_alignment() {
    Alignment a;
    a.score = 4;
    a.s_begin = 0;
    a.s_end = 9;
    a.t_begin = 0;
    a.t_end = 8;
    // ACTTGTCCG vs A-TTGTCAG (the paper's Fig. 1 shape).
    a.ops = {AlignOp::Match,  AlignOp::Delete, AlignOp::Match,
             AlignOp::Match,  AlignOp::Match,  AlignOp::Match,
             AlignOp::Match,  AlignOp::Match,  AlignOp::Match};
    return a;
}

TEST(Alignment, Cigar) {
    const Alignment a = simple_alignment();
    EXPECT_EQ(a.cigar(), "1M1D7M");
}

TEST(Alignment, CigarEmpty) { EXPECT_EQ(Alignment{}.cigar(), ""); }

TEST(ScoreAlignment, LinearMatchesPaperFigure1) {
    const Alphabet& d = Alphabet::dna();
    const ScoreMatrix m = ScoreMatrix::match_mismatch(d, 1, -1, 0);
    const auto s = d.encode("ACTTGTCCG");
    const auto t = d.encode("ATTGTCAG");
    const Alignment a = simple_alignment();
    // 7 matches, 1 mismatch (C vs A), 1 gap: 7 - 1 - 2 = 4.
    EXPECT_EQ(score_alignment_linear(a, s, t, m, 2), 4);
}

TEST(ScoreAlignment, AffineChargesOpenOncePerRun) {
    const Alphabet& d = Alphabet::dna();
    const ScoreMatrix m = ScoreMatrix::match_mismatch(d, 1, -1, 0);
    const auto s = d.encode("AATTAA");
    const auto t = d.encode("AAAA");
    Alignment a;
    a.s_end = 6;
    a.t_end = 4;
    a.ops = {AlignOp::Match, AlignOp::Match, AlignOp::Delete,
             AlignOp::Delete, AlignOp::Match, AlignOp::Match};
    // 4 matches - (open + 2*ext) with open=3, ext=1 -> 4 - 5 = -1.
    EXPECT_EQ(score_alignment_affine(a, s, t, m, {3, 1}), -1);
}

TEST(ScoreAlignment, LeadingGapChargesOpen) {
    const Alphabet& d = Alphabet::dna();
    const ScoreMatrix m = ScoreMatrix::match_mismatch(d, 1, -1, 0);
    const auto s = d.encode("A");
    const auto t = d.encode("CA");
    Alignment a;
    a.s_end = 1;
    a.t_end = 2;
    a.ops = {AlignOp::Insert, AlignOp::Match};
    EXPECT_EQ(score_alignment_affine(a, s, t, m, {3, 1}), 1 - 4);
}

TEST(ScoreAlignment, ValidatesConsumedRanges) {
    const Alphabet& d = Alphabet::dna();
    const ScoreMatrix m = ScoreMatrix::match_mismatch(d, 1, -1, 0);
    const auto s = d.encode("AC");
    const auto t = d.encode("AC");
    Alignment a;
    a.s_end = 2;
    a.t_end = 2;
    a.ops = {AlignOp::Match};  // consumes 1, range says 2
    EXPECT_THROW(score_alignment_affine(a, s, t, m, {3, 1}), ContractError);
}

TEST(FormatAlignment, ThreeLineView) {
    const Alphabet& d = Alphabet::dna();
    const auto s = d.encode("ACTTGTCCG");
    const auto t = d.encode("ATTGTCAG");
    const std::string view =
        format_alignment(simple_alignment(), d, s, t, 60);
    EXPECT_EQ(view,
              "ACTTGTCCG\n"
              "| ||||| |\n"
              "A-TTGTCAG\n");
}

TEST(FormatAlignment, WrapsLongAlignments) {
    const Alphabet& d = Alphabet::dna();
    const auto s = d.encode("ACGTACGT");
    Alignment a;
    a.s_end = 8;
    a.t_end = 8;
    a.ops.assign(8, AlignOp::Match);
    const std::string view = format_alignment(a, d, s, s, 4);
    // Two blocks of three lines separated by a blank line.
    EXPECT_EQ(view,
              "ACGT\n||||\nACGT\n\nACGT\n||||\nACGT\n");
}

}  // namespace
}  // namespace swh::align

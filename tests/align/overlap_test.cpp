#include "align/overlap.hpp"

#include <gtest/gtest.h>

#include "db/generator.hpp"
#include "util/rng.hpp"

namespace swh::align {
namespace {

const ScoreMatrix& dna5() {
    static const ScoreMatrix m =
        ScoreMatrix::match_mismatch(Alphabet::dna(), 5, -4, 0);
    return m;
}

std::vector<Code> dna(const char* s) { return Alphabet::dna().encode(s); }

TEST(Overlap, PerfectDovetail) {
    // a = XXXX|COMMON, b = COMMON|YYYY with a 6-base overlap.
    const auto a = dna("TTTTACGACG");
    const auto b = dna("ACGACGCCCC");
    const Overlap ov = overlap_align(a, b, dna5(), {8, 6});
    EXPECT_EQ(ov.score, 6 * 5);
    EXPECT_EQ(ov.a_begin, 4u);
    EXPECT_EQ(ov.b_end, 6u);
}

TEST(Overlap, NoOverlapScoresZero) {
    const auto a = dna("AAAAAAAA");
    const auto b = dna("CCCCCCCC");
    const Overlap ov = overlap_align(a, b, dna5(), {8, 6});
    EXPECT_EQ(ov.score, 0);
    EXPECT_EQ(ov.b_end, 0u);
}

TEST(Overlap, ContainedPrefixCountsFully) {
    // b is entirely a suffix of a: overlap covers all of b.
    const auto a = dna("GGGGACGT");
    const auto b = dna("ACGT");
    const Overlap ov = overlap_align(a, b, dna5(), {8, 6});
    EXPECT_EQ(ov.score, 4 * 5);
    EXPECT_EQ(ov.a_begin, 4u);
    EXPECT_EQ(ov.b_end, 4u);
}

TEST(Overlap, ToleratesOneMismatch) {
    // 8-base overlap with one substitution: 7*5 - 4 = 31.
    const auto a = dna("TTTTACGTACGA");
    const auto b = dna("ACGTACGG" "CCCC");
    const Overlap ov = overlap_align(a, b, dna5(), {8, 6});
    // The last overlap base mismatches (A vs G): either include it
    // (7*5-4=31) or stop before it — but stopping breaks the dovetail
    // (overlap must reach a's end), so a gap or mismatch is forced.
    EXPECT_EQ(ov.b_end, 8u);
    EXPECT_EQ(ov.score, 7 * 5 - 4);
}

TEST(Overlap, AsymmetricDirectionality) {
    // a's suffix matches b's prefix but not vice versa.
    const auto a = dna("TTTTACGACG");
    const auto b = dna("ACGACGCCCC");
    const Overlap forward = overlap_align(a, b, dna5(), {8, 6});
    const Overlap backward = overlap_align(b, a, dna5(), {8, 6});
    EXPECT_GT(forward.score, backward.score);
}

TEST(Overlap, EmptyInputs) {
    const std::vector<Code> empty;
    const auto a = dna("ACGT");
    EXPECT_EQ(overlap_align(empty, a, dna5(), {8, 6}).score, 0);
    EXPECT_EQ(overlap_align(a, empty, dna5(), {8, 6}).score, 0);
}

TEST(Overlap, OpsCoverTheOverlapRegion) {
    Rng rng(401);
    for (int iter = 0; iter < 20; ++iter) {
        const auto shared = db::random_dna(rng, 30).residues;
        auto a = db::random_dna(rng, 40).residues;
        a.insert(a.end(), shared.begin(), shared.end());
        auto b = shared;
        const auto tail = db::random_dna(rng, 40).residues;
        b.insert(b.end(), tail.begin(), tail.end());
        const OverlapAlignment oa =
            overlap_align_ops(a, b, dna5(), {8, 6});
        ASSERT_GT(oa.overlap.b_end, 0u) << "iter " << iter;
        // Ops must consume exactly a[a_begin..end) and b[0..b_end).
        std::size_t consumed_a = 0, consumed_b = 0;
        for (const AlignOp op : oa.ops) {
            if (op != AlignOp::Insert) ++consumed_a;
            if (op != AlignOp::Delete) ++consumed_b;
        }
        EXPECT_EQ(consumed_a, a.size() - oa.overlap.a_begin);
        EXPECT_EQ(consumed_b, oa.overlap.b_end);
    }
}

TEST(Overlap, RandomPairsScoreBoundedByPerfect) {
    Rng rng(403);
    for (int iter = 0; iter < 20; ++iter) {
        const auto a = db::random_dna(rng, 50 + rng.below(50)).residues;
        const auto b = db::random_dna(rng, 50 + rng.below(50)).residues;
        const Overlap ov = overlap_align(a, b, dna5(), {8, 6});
        EXPECT_GE(ov.score, 0);
        EXPECT_LE(ov.score,
                  5 * static_cast<Score>(std::min(a.size(), b.size())));
        EXPECT_LE(ov.a_begin, a.size());
        EXPECT_LE(ov.b_end, b.size());
    }
}

}  // namespace
}  // namespace swh::align

// Golden equivalence of the packed two-pass scan pipeline against the
// seed per-sequence StripedAligner::score path, across every ISA level
// this host supports — including forced-overflow subjects that push the
// scan into pass 2 (i16) and the scalar int32 fallback — plus a
// concurrency test with a shared scanner and per-thread scratch.

#include "align/db_scan.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "align/sw_scalar.hpp"
#include "db/database.hpp"
#include "db/packed.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace swh::align {
namespace {

const ScoreMatrix& blosum() {
    static const ScoreMatrix m = ScoreMatrix::blosum62();
    return m;
}

constexpr GapPenalty kGap{10, 2};

std::vector<simd::IsaLevel> supported_levels() {
    std::vector<simd::IsaLevel> levels;
    for (const simd::IsaLevel isa :
         {simd::IsaLevel::Scalar, simd::IsaLevel::SSE2, simd::IsaLevel::AVX2,
          simd::IsaLevel::AVX512}) {
        if (simd::is_supported(isa)) levels.push_back(isa);
    }
    return levels;
}

/// Mixed database: generated sequences plus a long planted copy of the
/// overflow query, so the u8 kernel saturates on at least one subject.
db::Database golden_db(const Sequence& planted) {
    db::DatabaseSpec spec;
    spec.name = "golden";
    spec.num_sequences = 60;
    spec.length.min_len = 10;
    spec.length.max_len = 220;
    spec.seed = 23;
    auto seqs = db::generate_database(spec);
    seqs.insert(seqs.begin() + 7, planted);
    return db::Database("golden", std::move(seqs));
}

/// Scans the whole packed database with one worker and returns scores
/// indexed by original database index.
std::vector<Score> scan_scores(const StripedAligner& aligner,
                               const db::Database& database,
                               std::size_t chunk = 16) {
    DatabaseScanner scanner(aligner, database.packed().view(), chunk);
    std::vector<Score> scores(database.size(), -1);
    ScanScratch scratch;
    const bool completed = scanner.run_worker(
        scratch, [&](std::uint32_t idx, std::uint32_t len, Score s) {
            EXPECT_EQ(len, database[idx].size());
            EXPECT_EQ(scores[idx], -1) << "subject emitted twice";
            scores[idx] = s;
            return true;
        });
    EXPECT_TRUE(completed);
    return scores;
}

TEST(DatabaseScanner, GoldenEquivalenceAcrossIsaLevels) {
    Rng rng(71);
    const Sequence planted = db::random_protein(rng, 400, "planted");
    const db::Database database = golden_db(planted);

    Rng qrng(72);
    const std::vector<Sequence> queries = {
        db::random_protein(qrng, 80, "short"),
        db::random_protein(qrng, 250, "medium"),
        planted,  // identical to a subject: u8 overflow, pass 2 settles
    };

    for (const simd::IsaLevel isa : supported_levels()) {
        for (const Sequence& q : queries) {
            const StripedAligner aligner(q.residues, blosum(), kGap, isa);
            const std::vector<Score> packed_scores =
                scan_scores(aligner, database);
            for (std::size_t i = 0; i < database.size(); ++i) {
                // Seed path: per-sequence score() with inline escalation.
                EXPECT_EQ(packed_scores[i],
                          aligner.score(database[i].residues))
                    << "isa=" << simd::to_string(isa) << " query=" << q.id
                    << " subject=" << i;
            }
            // Every settled subject was counted exactly once per scan
            // (scan + seed rescore above = 2 passes over the database).
            const auto st = aligner.stats();
            EXPECT_EQ(st.runs8 + st.runs16 + st.runs32, 2 * database.size());
        }
    }
}

TEST(DatabaseScanner, PlantedSubjectExercisesPass2) {
    Rng rng(81);
    const Sequence planted = db::random_protein(rng, 400, "planted");
    const db::Database database = golden_db(planted);
    const StripedAligner aligner(planted.residues, blosum(), kGap);
    const std::vector<Score> scores = scan_scores(aligner, database);
    // The planted copy sits at index 7 and must carry the exact oracle
    // score, which is far above the 8-bit ceiling.
    const Score oracle = sw_score_affine(planted.residues, planted.residues,
                                         blosum(), kGap);
    EXPECT_GT(oracle, 255);
    EXPECT_EQ(scores[7], oracle);
    EXPECT_GE(aligner.stats().runs16 + aligner.stats().runs32, 1u);
}

TEST(DatabaseScanner, Int32FallbackMatchesOracle) {
    // match=11 over a 3200-residue identical pair: score ~35200 saturates
    // even the i16 kernel, forcing the scalar int32 rescore (through the
    // shared scratch) inside pass 2.
    const ScoreMatrix matrix =
        ScoreMatrix::match_mismatch(Alphabet::protein(), 11, -4);
    Rng rng(91);
    const Sequence big = db::random_protein(rng, 3200, "big");
    std::vector<Sequence> seqs;
    seqs.push_back(db::random_protein(rng, 50, "small-a"));
    seqs.push_back(big);
    seqs.push_back(db::random_protein(rng, 70, "small-b"));
    const db::Database database("overflow32", std::move(seqs));

    const StripedAligner aligner(big.residues, matrix, kGap);
    const std::vector<Score> scores = scan_scores(aligner, database);
    const Score oracle =
        sw_score_affine(big.residues, big.residues, matrix, kGap);
    EXPECT_GT(oracle, 32767);
    EXPECT_EQ(scores[1], oracle);
    EXPECT_GE(aligner.stats().runs32, 1u);
    for (std::size_t i : {std::size_t{0}, std::size_t{2}}) {
        EXPECT_EQ(scores[i],
                  sw_score_affine(big.residues, database[i].residues, matrix,
                                  kGap));
    }
}

TEST(DatabaseScanner, ConcurrentWorkersMatchSequential) {
    db::DatabaseSpec spec;
    spec.name = "conc";
    spec.num_sequences = 200;
    spec.length.min_len = 15;
    spec.length.max_len = 250;
    spec.seed = 31;
    const db::Database database = db::Database::generate(spec);
    Rng rng(32);
    const Sequence q = db::random_protein(rng, 150, "q");

    const StripedAligner aligner(q.residues, blosum(), kGap);
    DatabaseScanner scanner(aligner, database.packed().view(), /*chunk=*/8);

    std::vector<Score> scores(database.size(), -1);
    std::atomic<std::size_t> emitted{0};
    std::vector<std::thread> workers;
    for (int w = 0; w < 4; ++w) {
        workers.emplace_back([&] {
            ScanScratch scratch;  // per-thread, shared profiles
            scanner.run_worker(
                scratch, [&](std::uint32_t idx, std::uint32_t, Score s) {
                    scores[idx] = s;  // distinct idx per emit: no race
                    emitted.fetch_add(1, std::memory_order_relaxed);
                    return true;
                });
        });
    }
    for (auto& t : workers) t.join();

    EXPECT_EQ(emitted.load(), database.size());
    for (std::size_t i = 0; i < database.size(); ++i) {
        EXPECT_EQ(scores[i], aligner.score(database[i].residues))
            << "subject " << i;
    }
}

TEST(DatabaseScanner, EmitFalseCancelsScan) {
    const db::Database database = golden_db(Sequence{"p", "", {0, 1, 2}});
    Rng rng(41);
    const Sequence q = db::random_protein(rng, 60, "q");
    const StripedAligner aligner(q.residues, blosum(), kGap);
    DatabaseScanner scanner(aligner, database.packed().view(), /*chunk=*/4);
    ScanScratch scratch;
    int emits = 0;
    const bool completed =
        scanner.run_worker(scratch, [&](std::uint32_t, std::uint32_t, Score) {
            return ++emits < 5;
        });
    EXPECT_FALSE(completed);
    EXPECT_EQ(emits, 5);
}

TEST(DatabaseScanner, RejectsResiduesOutsideAlphabet) {
    // A DNA-alphabet matrix (5 symbols) cannot scan protein residues:
    // the pack-time max_code check must reject the pairing up front.
    std::vector<Sequence> seqs;
    seqs.push_back(Sequence{"bad", "", {0, 3, 19}});
    const db::Database database("bad", std::move(seqs));
    const ScoreMatrix dna_matrix =
        ScoreMatrix::match_mismatch(Alphabet::dna(), 5, -4);
    const StripedAligner aligner({0, 1, 2}, dna_matrix, kGap);
    EXPECT_THROW(DatabaseScanner(aligner, database.packed().view()),
                 ContractError);
}

}  // namespace
}  // namespace swh::align

// Golden equivalence of the packed two-pass scan pipeline against the
// seed per-sequence StripedAligner::score path, across every ISA level
// this host supports — including forced-overflow subjects that push the
// scan into pass 2 (i16) and the scalar int32 fallback — plus a
// concurrency test with a shared scanner and per-thread scratch.

#include "align/db_scan.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "align/sw_scalar.hpp"
#include "db/database.hpp"
#include "db/packed.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace swh::align {
namespace {

const ScoreMatrix& blosum() {
    static const ScoreMatrix m = ScoreMatrix::blosum62();
    return m;
}

constexpr GapPenalty kGap{10, 2};

std::vector<simd::IsaLevel> supported_levels() {
    std::vector<simd::IsaLevel> levels;
    for (const simd::IsaLevel isa :
         {simd::IsaLevel::Scalar, simd::IsaLevel::SSE2, simd::IsaLevel::AVX2,
          simd::IsaLevel::AVX512}) {
        if (simd::is_supported(isa)) levels.push_back(isa);
    }
    return levels;
}

/// Mixed database: generated sequences plus a long planted copy of the
/// overflow query, so the u8 kernel saturates on at least one subject.
db::Database golden_db(const Sequence& planted) {
    db::DatabaseSpec spec;
    spec.name = "golden";
    spec.num_sequences = 60;
    spec.length.min_len = 10;
    spec.length.max_len = 220;
    spec.seed = 23;
    auto seqs = db::generate_database(spec);
    seqs.insert(seqs.begin() + 7, planted);
    return db::Database("golden", std::move(seqs));
}

/// Scans the whole packed database with one worker and returns scores
/// indexed by original database index.
std::vector<Score> scan_scores(const StripedAligner& aligner,
                               const db::Database& database,
                               std::size_t chunk = 16) {
    DatabaseScanner scanner(aligner, database.packed().view(), chunk);
    std::vector<Score> scores(database.size(), -1);
    ScanScratch scratch;
    const bool completed = scanner.run_worker(
        scratch, [&](std::uint32_t idx, std::uint32_t len, Score s) {
            EXPECT_EQ(len, database[idx].size());
            EXPECT_EQ(scores[idx], -1) << "subject emitted twice";
            scores[idx] = s;
            return true;
        });
    EXPECT_TRUE(completed);
    return scores;
}

TEST(DatabaseScanner, GoldenEquivalenceAcrossIsaLevels) {
    Rng rng(71);
    const Sequence planted = db::random_protein(rng, 400, "planted");
    const db::Database database = golden_db(planted);

    Rng qrng(72);
    const std::vector<Sequence> queries = {
        db::random_protein(qrng, 80, "short"),
        db::random_protein(qrng, 250, "medium"),
        planted,  // identical to a subject: u8 overflow, pass 2 settles
    };

    for (const simd::IsaLevel isa : supported_levels()) {
        for (const Sequence& q : queries) {
            const StripedAligner aligner(q.residues, blosum(), kGap, isa);
            const std::vector<Score> packed_scores =
                scan_scores(aligner, database);
            for (std::size_t i = 0; i < database.size(); ++i) {
                // Seed path: per-sequence score() with inline escalation.
                EXPECT_EQ(packed_scores[i],
                          aligner.score(database[i].residues))
                    << "isa=" << simd::to_string(isa) << " query=" << q.id
                    << " subject=" << i;
            }
            // Every settled subject was counted exactly once per scan
            // (scan + seed rescore above = 2 passes over the database).
            const auto st = aligner.stats();
            EXPECT_EQ(st.runs8 + st.runs16 + st.runs32, 2 * database.size());
        }
    }
}

TEST(DatabaseScanner, PlantedSubjectExercisesPass2) {
    Rng rng(81);
    const Sequence planted = db::random_protein(rng, 400, "planted");
    const db::Database database = golden_db(planted);
    const StripedAligner aligner(planted.residues, blosum(), kGap);
    const std::vector<Score> scores = scan_scores(aligner, database);
    // The planted copy sits at index 7 and must carry the exact oracle
    // score, which is far above the 8-bit ceiling.
    const Score oracle = sw_score_affine(planted.residues, planted.residues,
                                         blosum(), kGap);
    EXPECT_GT(oracle, 255);
    EXPECT_EQ(scores[7], oracle);
    EXPECT_GE(aligner.stats().runs16 + aligner.stats().runs32, 1u);
}

TEST(DatabaseScanner, Int32FallbackMatchesOracle) {
    // match=11 over a 3200-residue identical pair: score ~35200 saturates
    // even the i16 kernel, forcing the scalar int32 rescore (through the
    // shared scratch) inside pass 2.
    const ScoreMatrix matrix =
        ScoreMatrix::match_mismatch(Alphabet::protein(), 11, -4);
    Rng rng(91);
    const Sequence big = db::random_protein(rng, 3200, "big");
    std::vector<Sequence> seqs;
    seqs.push_back(db::random_protein(rng, 50, "small-a"));
    seqs.push_back(big);
    seqs.push_back(db::random_protein(rng, 70, "small-b"));
    const db::Database database("overflow32", std::move(seqs));

    const StripedAligner aligner(big.residues, matrix, kGap);
    const std::vector<Score> scores = scan_scores(aligner, database);
    const Score oracle =
        sw_score_affine(big.residues, big.residues, matrix, kGap);
    EXPECT_GT(oracle, 32767);
    EXPECT_EQ(scores[1], oracle);
    EXPECT_GE(aligner.stats().runs32, 1u);
    for (std::size_t i : {std::size_t{0}, std::size_t{2}}) {
        EXPECT_EQ(scores[i],
                  sw_score_affine(big.residues, database[i].residues, matrix,
                                  kGap));
    }
}

TEST(DatabaseScanner, ConcurrentWorkersMatchSequential) {
    db::DatabaseSpec spec;
    spec.name = "conc";
    spec.num_sequences = 200;
    spec.length.min_len = 15;
    spec.length.max_len = 250;
    spec.seed = 31;
    const db::Database database = db::Database::generate(spec);
    Rng rng(32);
    const Sequence q = db::random_protein(rng, 150, "q");

    const StripedAligner aligner(q.residues, blosum(), kGap);
    DatabaseScanner scanner(aligner, database.packed().view(), /*chunk=*/8);

    std::vector<Score> scores(database.size(), -1);
    std::atomic<std::size_t> emitted{0};
    std::vector<std::thread> workers;
    for (int w = 0; w < 4; ++w) {
        workers.emplace_back([&] {
            ScanScratch scratch;  // per-thread, shared profiles
            scanner.run_worker(
                scratch, [&](std::uint32_t idx, std::uint32_t, Score s) {
                    scores[idx] = s;  // distinct idx per emit: no race
                    emitted.fetch_add(1, std::memory_order_relaxed);
                    return true;
                });
        });
    }
    for (auto& t : workers) t.join();

    EXPECT_EQ(emitted.load(), database.size());
    for (std::size_t i = 0; i < database.size(); ++i) {
        EXPECT_EQ(scores[i], aligner.score(database[i].residues))
            << "subject " << i;
    }
}

TEST(DatabaseScanner, EmitFalseCancelsScan) {
    const db::Database database = golden_db(Sequence{"p", "", {0, 1, 2}});
    Rng rng(41);
    const Sequence q = db::random_protein(rng, 60, "q");
    const StripedAligner aligner(q.residues, blosum(), kGap);
    DatabaseScanner scanner(aligner, database.packed().view(), /*chunk=*/4);
    ScanScratch scratch;
    int emits = 0;
    const bool completed =
        scanner.run_worker(scratch, [&](std::uint32_t, std::uint32_t, Score) {
            return ++emits < 5;
        });
    EXPECT_FALSE(completed);
    EXPECT_EQ(emits, 5);
}

/// Cohort-mode variant of scan_scores: attaches the lane-interleaved
/// layout so pass 1 dispatches between the inter-sequence and striped
/// kernels.
std::vector<Score> cohort_scan_scores(const StripedAligner& aligner,
                                      const db::Database& database,
                                      DatabaseScanner::DispatchStats* stats) {
    const db::PackedDatabase& packed = database.packed();
    DatabaseScanner scanner(
        aligner, packed.view(), /*chunk=*/64,
        packed.interleaved(lanes_u8(aligner.isa())).view());
    EXPECT_TRUE(scanner.cohort_mode());
    std::vector<Score> scores(database.size(), -1);
    ScanScratch scratch;
    const bool completed = scanner.run_worker(
        scratch, [&](std::uint32_t idx, std::uint32_t len, Score s) {
            EXPECT_EQ(len, database[idx].size());
            EXPECT_EQ(scores[idx], -1) << "subject emitted twice";
            scores[idx] = s;
            return true;
        });
    EXPECT_TRUE(completed);
    if (stats != nullptr) *stats = scanner.dispatch_stats();
    return scores;
}

TEST(DatabaseScanner, InterseqScanMatchesStripedAcrossIsaLevels) {
    Rng rng(171);
    const Sequence planted = db::random_protein(rng, 400, "planted");
    // Enough sequences that even 64-wide cohorts hold near-equal
    // lengths (so some pass the fill gate), while the planted copy and
    // the length spread still exercise the striped fallback and pass 2.
    db::DatabaseSpec spec;
    spec.name = "golden-cohort";
    spec.num_sequences = 500;
    spec.length.min_len = 30;
    spec.length.max_len = 240;
    spec.seed = 24;
    auto seqs = db::generate_database(spec);
    seqs.insert(seqs.begin() + 7, planted);
    const db::Database database("golden-cohort", std::move(seqs));

    Rng qrng(172);
    const std::vector<Sequence> queries = {
        db::random_protein(qrng, 60, "short"),
        db::random_protein(qrng, 180, "medium"),
        planted,  // identical to a subject: overflow lanes hit pass 2
    };

    for (const simd::IsaLevel isa : supported_levels()) {
        for (const Sequence& q : queries) {
            const StripedAligner aligner(q.residues, blosum(), kGap, isa);
            ASSERT_NE(aligner.interseq(), nullptr);
            DatabaseScanner::DispatchStats ds;
            const std::vector<Score> scores =
                cohort_scan_scores(aligner, database, &ds);
            for (std::size_t i = 0; i < database.size(); ++i) {
                EXPECT_EQ(scores[i], aligner.score(database[i].residues))
                    << "isa=" << simd::to_string(isa) << " query=" << q.id
                    << " subject=" << i;
            }
            // Every subject went through exactly one pass-1 kernel, and
            // the short queries must actually use the new kernel.
            EXPECT_EQ(ds.subjects_interseq + ds.subjects_compacted +
                          ds.subjects_striped,
                      database.size());
            EXPECT_GE(ds.cohorts_interseq, 1u)
                << "isa=" << simd::to_string(isa) << " query=" << q.id;
            const auto st = aligner.stats();
            EXPECT_EQ(st.runs8 + st.runs16 + st.runs32, 2 * database.size());
        }
    }
}

TEST(DatabaseScanner, LongQueryDispatchesTiledInterseq) {
    // Past kInterseqTileRows the cohorts must keep inter-sequence
    // coverage through the query-tiled kernel instead of falling back
    // to striped (the pre-tiling behaviour this test used to pin).
    db::DatabaseSpec spec;
    spec.name = "long-q";
    spec.num_sequences = 200;
    spec.length.min_len = 90;
    spec.length.max_len = 130;
    spec.seed = 57;
    const db::Database database = db::Database::generate(spec);
    Rng rng(58);
    const Sequence q =
        db::random_protein(rng, 2 * kInterseqTileRows + 1, "long");
    const StripedAligner aligner(q.residues, blosum(), kGap);
    DatabaseScanner::DispatchStats ds;
    const std::vector<Score> scores =
        cohort_scan_scores(aligner, database, &ds);
    EXPECT_GT(ds.cohorts_interseq, 0u);
    EXPECT_GT(ds.cohorts_tiled, 0u);
    EXPECT_GT(ds.subjects_interseq + ds.subjects_compacted, 0u);
    for (std::size_t i = 0; i < database.size(); ++i) {
        EXPECT_EQ(scores[i], aligner.score(database[i].residues));
    }
}

TEST(DatabaseScanner, ConcurrentCohortWorkersMatchSequential) {
    db::DatabaseSpec spec;
    spec.name = "conc-cohort";
    spec.num_sequences = 300;
    spec.length.min_len = 15;
    spec.length.max_len = 250;
    spec.seed = 61;
    const db::Database database = db::Database::generate(spec);
    Rng rng(62);
    const Sequence q = db::random_protein(rng, 120, "q");

    const StripedAligner aligner(q.residues, blosum(), kGap);
    const db::PackedDatabase& packed = database.packed();
    DatabaseScanner scanner(
        aligner, packed.view(), /*chunk=*/32,
        packed.interleaved(lanes_u8(aligner.isa())).view());

    std::vector<Score> scores(database.size(), -1);
    std::atomic<std::size_t> emitted{0};
    std::vector<std::thread> workers;
    for (int w = 0; w < 4; ++w) {
        workers.emplace_back([&] {
            ScanScratch scratch;
            scanner.run_worker(
                scratch, [&](std::uint32_t idx, std::uint32_t, Score s) {
                    scores[idx] = s;
                    emitted.fetch_add(1, std::memory_order_relaxed);
                    return true;
                });
        });
    }
    for (auto& t : workers) t.join();

    EXPECT_EQ(emitted.load(), database.size());
    for (std::size_t i = 0; i < database.size(); ++i) {
        EXPECT_EQ(scores[i], aligner.score(database[i].residues))
            << "subject " << i;
    }
    const DatabaseScanner::DispatchStats ds = scanner.dispatch_stats();
    EXPECT_EQ(ds.subjects_interseq + ds.subjects_compacted +
                  ds.subjects_striped,
              database.size());
}

TEST(DatabaseScanner, EmitFalseCancelsMidCohortAcrossWorkers) {
    db::DatabaseSpec spec;
    spec.name = "cancel-cohort";
    spec.num_sequences = 400;
    spec.length.min_len = 20;
    spec.length.max_len = 200;
    spec.seed = 67;
    const db::Database database = db::Database::generate(spec);
    Rng rng(68);
    const Sequence q = db::random_protein(rng, 80, "q");
    const StripedAligner aligner(q.residues, blosum(), kGap);
    const db::PackedDatabase& packed = database.packed();
    DatabaseScanner scanner(
        aligner, packed.view(), /*chunk=*/16,
        packed.interleaved(lanes_u8(aligner.isa())).view());

    // The stop threshold (5) is below one cohort's lane count, so the
    // first worker to hit it cancels mid-cohort: it must settle no
    // further lanes of that cohort (nor its deferred batch).
    constexpr std::size_t kStopAfter = 5;
    constexpr int kWorkers = 4;
    std::atomic<std::size_t> emitted{0};
    std::vector<std::thread> workers;
    std::vector<char> completed(kWorkers, 1);
    for (int w = 0; w < kWorkers; ++w) {
        workers.emplace_back([&, w] {
            ScanScratch scratch;
            completed[static_cast<std::size_t>(w)] =
                scanner.run_worker(
                    scratch, [&](std::uint32_t, std::uint32_t, Score) {
                        return emitted.fetch_add(
                                   1, std::memory_order_relaxed) +
                                   1 <
                               kStopAfter;
                    })
                    ? 1
                    : 0;
        });
    }
    for (auto& t : workers) t.join();

    // Each worker settles at most one subject past the shared threshold
    // before its own emit returns false; nobody scans to completion.
    EXPECT_GE(emitted.load(), kStopAfter);
    EXPECT_LE(emitted.load(), kStopAfter + kWorkers);
    EXPECT_LT(emitted.load(), database.size());
    bool any_cancelled = false;
    for (const char c : completed) any_cancelled |= (c == 0);
    EXPECT_TRUE(any_cancelled);
}

TEST(DatabaseScanner, RejectsCohortWidthMismatch) {
    db::DatabaseSpec spec;
    spec.name = "mismatch";
    spec.num_sequences = 20;
    spec.length.min_len = 10;
    spec.length.max_len = 50;
    spec.seed = 71;
    const db::Database database = db::Database::generate(spec);
    Rng rng(72);
    const Sequence q = db::random_protein(rng, 40, "q");
    const StripedAligner aligner(q.residues, blosum(), kGap);
    const db::PackedDatabase& packed = database.packed();
    // A width the aligner's ISA does not use (u8 lane counts are
    // 16/32/64, never 8).
    const InterleavedCohorts wrong = packed.interleaved(8).view();
    EXPECT_THROW(
        DatabaseScanner(aligner, packed.view(), /*chunk=*/16, wrong),
        ContractError);
}

TEST(DatabaseScanner, RejectsResiduesOutsideAlphabet) {
    // A DNA-alphabet matrix (5 symbols) cannot scan protein residues:
    // the pack-time max_code check must reject the pairing up front.
    std::vector<Sequence> seqs;
    seqs.push_back(Sequence{"bad", "", {0, 3, 19}});
    const db::Database database("bad", std::move(seqs));
    const ScoreMatrix dna_matrix =
        ScoreMatrix::match_mismatch(Alphabet::dna(), 5, -4);
    const StripedAligner aligner({0, 1, 2}, dna_matrix, kGap);
    EXPECT_THROW(DatabaseScanner(aligner, database.packed().view()),
                 ContractError);
}

}  // namespace
}  // namespace swh::align

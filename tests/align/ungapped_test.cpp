// The gap-slack prefilter kernels (align/ungapped.hpp): the SIMD
// chain-bound kernels must match the scalar reference per lane across
// every ISA level this host supports — including row-range tiles — and
// the bound itself must dominate the exact gapped score on every pair,
// which is the property the scan funnel's pruning soundness rests on.

#include "align/ungapped.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "align/interseq.hpp"
#include "align/striped.hpp"
#include "align/sw_scalar.hpp"
#include "db/generator.hpp"
#include "util/rng.hpp"

namespace swh::align {
namespace {

const ScoreMatrix& blosum() {
    static const ScoreMatrix m = ScoreMatrix::blosum62();
    return m;
}

constexpr GapPenalty kGap{10, 2};

std::vector<simd::IsaLevel> supported_levels() {
    std::vector<simd::IsaLevel> levels;
    for (const simd::IsaLevel isa :
         {simd::IsaLevel::Scalar, simd::IsaLevel::SSE2, simd::IsaLevel::AVX2,
          simd::IsaLevel::AVX512}) {
        if (simd::is_supported(isa)) levels.push_back(isa);
    }
    return levels;
}

std::vector<Code> interleave(const std::vector<std::vector<Code>>& subjects,
                             int lanes, std::size_t columns) {
    std::vector<Code> cols(columns * static_cast<std::size_t>(lanes),
                           InterseqProfile::kPadCode);
    for (std::size_t l = 0; l < subjects.size(); ++l) {
        for (std::size_t j = 0; j < subjects[l].size(); ++j) {
            cols[j * static_cast<std::size_t>(lanes) + l] = subjects[l][j];
        }
    }
    return cols;
}

std::vector<std::vector<Code>> random_subjects(Rng& rng, std::size_t n,
                                               std::size_t min_len,
                                               std::size_t max_len) {
    std::vector<std::vector<Code>> subjects;
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t len = min_len + rng.below(max_len - min_len + 1);
        subjects.push_back(
            db::random_protein(rng, len, "s" + std::to_string(i)).residues);
    }
    return subjects;
}

TEST(UngappedBound, DominatesExactGappedScoreOnRandomPairs) {
    // The whole design hinges on this inequality: the monotone-row
    // chain bound T* is an upper bound on the affine-gapped score for
    // every (query, subject) pair, so a lane pruned because its bound
    // falls below the running k-th best provably cannot enter the
    // top-k.
    Rng rng(211);
    for (int trial = 0; trial < 40; ++trial) {
        const std::size_t qlen = 10 + rng.below(240);
        const std::size_t slen = 5 + rng.below(400);
        const auto q = db::random_protein(rng, qlen, "q").residues;
        const auto s = db::random_protein(rng, slen, "s").residues;
        const Score bound = sw_ungapped_scalar(q, s, blosum(), kGap);
        const Score exact = sw_score_affine(q, s, blosum(), kGap);
        EXPECT_GE(bound, exact) << "trial " << trial << " qlen=" << qlen
                                << " slen=" << slen;
        EXPECT_GE(bound, 0);
    }
}

TEST(UngappedBound, DominatesOnHomologousPairs) {
    // Homologs (what the prefilter must NOT prune) score far above the
    // background; the bound has to track them from above too.
    Rng rng(213);
    db::MutationModel model;
    model.substitution_rate = 0.10;
    for (int trial = 0; trial < 10; ++trial) {
        const auto anchor = db::random_protein(rng, 150, "a");
        const auto hom =
            db::mutate(anchor, Alphabet::protein(), model, rng);
        const Score bound = sw_ungapped_scalar(anchor.residues, hom.residues,
                                               blosum(), kGap);
        const Score exact = sw_score_affine(anchor.residues, hom.residues,
                                            blosum(), kGap);
        EXPECT_GE(bound, exact);
        EXPECT_GT(exact, 100);  // the pair is a genuine homolog
    }
}

TEST(UngappedBound, TileSumDominatesGappedScore) {
    // Row-chunked form used for long queries: bounding disjoint query
    // row ranges separately and summing stays a sound upper bound
    // (splitting any alignment at tile boundaries yields legal
    // sub-chains, one per tile).
    Rng rng(217);
    const auto q = db::random_protein(rng, 300, "q").residues;
    for (int trial = 0; trial < 10; ++trial) {
        const auto s =
            db::random_protein(rng, 40 + rng.below(300), "s").residues;
        const Score exact = sw_score_affine(q, s, blosum(), kGap);
        for (const std::size_t rows : {64u, 100u, 256u}) {
            Score sum = 0;
            for (std::size_t r0 = 0; r0 < q.size(); r0 += rows) {
                const std::size_t n = std::min(rows, q.size() - r0);
                sum += sw_ungapped_scalar(
                    std::span<const Code>(q).subspan(r0, n), s, blosum(),
                    kGap);
            }
            EXPECT_GE(sum, exact) << "rows=" << rows << " trial=" << trial;
        }
    }
}

TEST(UngappedKernels, U8MatchesScalarAcrossIsaLevels) {
    Rng rng(221);
    const auto q = db::random_protein(rng, 120, "q").residues;
    const InterseqProfile prof = build_interseq_profile(q, blosum());

    for (const simd::IsaLevel isa : supported_levels()) {
        const int W = lanes_u8(isa);
        Rng srng(isa == simd::IsaLevel::Scalar ? 11u : 12u);
        const auto subjects =
            random_subjects(srng, static_cast<std::size_t>(W), 5, 200);
        std::size_t columns = 0;
        for (const auto& s : subjects) columns = std::max(columns, s.size());
        const std::vector<Code> cols = interleave(subjects, W, columns);

        ScanScratch scratch;
        std::uint8_t bound8[64];
        const std::uint64_t sat = sw_ungapped_interseq_u8(
            prof, cols.data(), columns, kGap, isa, scratch, bound8);
        for (int l = 0; l < W; ++l) {
            if ((sat >> l) & 1) continue;  // no trusted bound claimed
            EXPECT_EQ(static_cast<Score>(bound8[l]),
                      sw_ungapped_scalar(q, subjects[static_cast<std::size_t>(
                                                l)],
                                         blosum(), kGap))
                << "isa=" << simd::to_string(isa) << " lane=" << l;
        }
    }
}

TEST(UngappedKernels, I16MatchesScalarAcrossIsaLevels) {
    Rng rng(223);
    // Long enough that the u8 kernel saturates on self-similar lanes
    // while i16 still bounds them exactly.
    const auto q = db::random_protein(rng, 300, "q").residues;
    const InterseqProfile prof = build_interseq_profile(q, blosum());

    for (const simd::IsaLevel isa : supported_levels()) {
        const int W = lanes_u8(isa);
        Rng srng(isa == simd::IsaLevel::AVX512 ? 13u : 14u);
        std::vector<std::vector<Code>> subjects =
            random_subjects(srng, static_cast<std::size_t>(W), 20, 350);
        subjects[0] = q;  // self-match: saturates u8, not i16

        std::size_t columns = 0;
        for (const auto& s : subjects) columns = std::max(columns, s.size());
        const std::vector<Code> cols = interleave(subjects, W, columns);

        ScanScratch scratch;
        std::uint8_t bound8[64];
        const std::uint64_t sat8 = sw_ungapped_interseq_u8(
            prof, cols.data(), columns, kGap, isa, scratch, bound8);
        EXPECT_TRUE(sat8 & 1) << simd::to_string(isa);

        std::int16_t bound16[64];
        const std::uint64_t sat16 = sw_ungapped_interseq_i16(
            prof, cols.data(), columns, kGap, isa, scratch, bound16);
        for (int l = 0; l < W; ++l) {
            if ((sat16 >> l) & 1) continue;
            const Score ref = sw_ungapped_scalar(
                q, subjects[static_cast<std::size_t>(l)], blosum(), kGap);
            EXPECT_EQ(static_cast<Score>(bound16[l]), ref)
                << "isa=" << simd::to_string(isa) << " lane=" << l;
            // Absent saturation the u8 and i16 kernels compute the
            // identical function.
            if (((sat8 >> l) & 1) == 0) {
                EXPECT_EQ(static_cast<Score>(bound8[l]), ref);
            }
        }
    }
}

TEST(UngappedKernels, RowRangeMatchesScalarOnQuerySlice) {
    // The tiled prefilter calls the kernel with [row_begin, row_end)
    // sub-ranges of the query; each call must equal the scalar bound of
    // that query slice, so the per-lane tile sums inherit the tile-sum
    // soundness proof.
    Rng rng(227);
    const auto q = db::random_protein(rng, 210, "q").residues;
    const InterseqProfile prof = build_interseq_profile(q, blosum());

    for (const simd::IsaLevel isa : supported_levels()) {
        const int W = lanes_u8(isa);
        Rng srng(17);
        const auto subjects =
            random_subjects(srng, static_cast<std::size_t>(W), 10, 150);
        std::size_t columns = 0;
        for (const auto& s : subjects) columns = std::max(columns, s.size());
        const std::vector<Code> cols = interleave(subjects, W, columns);

        ScanScratch scratch;
        std::uint8_t bound8[64];
        constexpr std::size_t kRows = 70;
        for (std::size_t r0 = 0; r0 < q.size() + kRows; r0 += kRows) {
            const std::uint64_t sat = sw_ungapped_interseq_u8(
                prof, cols.data(), columns, kGap, isa, scratch, bound8, r0,
                r0 + kRows);
            if (r0 >= q.size()) {
                // Fully out-of-range tile: clean zeros, no saturation.
                EXPECT_EQ(sat, 0u);
                for (int l = 0; l < W; ++l) EXPECT_EQ(bound8[l], 0);
                continue;
            }
            const std::size_t n = std::min(kRows, q.size() - r0);
            for (int l = 0; l < W; ++l) {
                if ((sat >> l) & 1) continue;
                EXPECT_EQ(
                    static_cast<Score>(bound8[l]),
                    sw_ungapped_scalar(
                        std::span<const Code>(q).subspan(r0, n),
                        subjects[static_cast<std::size_t>(l)], blosum(),
                        kGap))
                    << "isa=" << simd::to_string(isa) << " lane=" << l
                    << " r0=" << r0;
            }
        }
    }
}

TEST(UngappedKernels, BoundDominatesStripedExactPerLane) {
    // End-to-end per-lane check of the pruning inequality in the exact
    // layout the scanner uses: kernel bound >= striped exact score for
    // every non-saturated lane.
    Rng rng(229);
    const auto q = db::random_protein(rng, 100, "q").residues;
    const InterseqProfile prof = build_interseq_profile(q, blosum());

    for (const simd::IsaLevel isa : supported_levels()) {
        const int W = lanes_u8(isa);
        const auto subjects =
            random_subjects(rng, static_cast<std::size_t>(W), 10, 250);
        std::size_t columns = 0;
        for (const auto& s : subjects) columns = std::max(columns, s.size());
        const std::vector<Code> cols = interleave(subjects, W, columns);

        ScanScratch scratch;
        std::uint8_t bound8[64];
        const std::uint64_t sat = sw_ungapped_interseq_u8(
            prof, cols.data(), columns, kGap, isa, scratch, bound8);
        const Profile8 p8 = build_profile8(q, blosum(), W);
        for (int l = 0; l < W; ++l) {
            if ((sat >> l) & 1) continue;
            const StripedResult r = sw_striped_u8(
                p8, subjects[static_cast<std::size_t>(l)], kGap, isa);
            if (r.overflow) continue;
            EXPECT_GE(static_cast<Score>(bound8[l]), r.score)
                << "isa=" << simd::to_string(isa) << " lane=" << l;
        }
    }
}

TEST(UngappedKernels, LanesAtLeastMatchesScalarComparison) {
    for (const simd::IsaLevel isa : supported_levels()) {
        const int W = lanes_u8(isa);
        std::uint8_t vals[64] = {};
        Rng rng(233);
        for (int l = 0; l < W; ++l) {
            vals[l] = static_cast<std::uint8_t>(rng.below(256));
        }
        for (const std::uint8_t floor :
             {std::uint8_t{0}, std::uint8_t{1}, vals[0], std::uint8_t{255}}) {
            const std::uint64_t mask = lanes_at_least(vals, floor, isa);
            for (int l = 0; l < W; ++l) {
                EXPECT_EQ(((mask >> l) & 1) != 0, vals[l] >= floor)
                    << "isa=" << simd::to_string(isa) << " lane=" << l
                    << " floor=" << int{floor};
            }
        }
    }
}

TEST(UngappedKernels, EmptyQueryAndEmptyCohortAreClean) {
    ScanScratch scratch;
    std::uint8_t bound8[64];
    std::int16_t bound16[64];
    std::vector<Code> cols(64, InterseqProfile::kPadCode);

    const InterseqProfile empty_prof =
        build_interseq_profile({}, blosum());
    EXPECT_EQ(sw_ungapped_interseq_u8(empty_prof, cols.data(), 1, kGap,
                                      simd::IsaLevel::Scalar, scratch,
                                      bound8),
              0u);
    for (int l = 0; l < 16; ++l) EXPECT_EQ(bound8[l], 0);

    Rng rng(239);
    const auto q = db::random_protein(rng, 25, "q").residues;
    const InterseqProfile prof = build_interseq_profile(q, blosum());
    EXPECT_EQ(sw_ungapped_interseq_u8(prof, cols.data(), 0, kGap,
                                      simd::IsaLevel::Scalar, scratch,
                                      bound8),
              0u);
    EXPECT_EQ(sw_ungapped_interseq_i16(prof, cols.data(), 0, kGap,
                                       simd::IsaLevel::Scalar, scratch,
                                       bound16),
              0u);
    for (int l = 0; l < 16; ++l) {
        EXPECT_EQ(bound8[l], 0);
        EXPECT_EQ(bound16[l], 0);
    }
    EXPECT_EQ(sw_ungapped_scalar({}, {}, blosum(), kGap), 0);
}

}  // namespace
}  // namespace swh::align

#include "align/local_align.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

#include "align/sw_scalar.hpp"
#include "align/traceback.hpp"
#include "db/generator.hpp"
#include "util/rng.hpp"

namespace swh::align {
namespace {

TEST(SwLowMem, AgreesWithFullTracebackScore) {
    Rng rng(29);
    const ScoreMatrix m = ScoreMatrix::blosum62();
    for (int iter = 0; iter < 25; ++iter) {
        const auto a = db::random_protein(rng, 10 + rng.below(120)).residues;
        const auto b = db::random_protein(rng, 10 + rng.below(120)).residues;
        const Alignment full = sw_align_affine(a, b, m, {10, 2});
        const Alignment low = sw_align_affine_lowmem(a, b, m, {10, 2});
        EXPECT_EQ(low.score, full.score) << "iter " << iter;
        if (!low.ops.empty()) {
            EXPECT_EQ(score_alignment_affine(low, a, b, m, {10, 2}),
                      low.score)
                << "iter " << iter;
        }
    }
}

TEST(SwLowMem, FindsPlantedHomology) {
    Rng rng(31);
    const ScoreMatrix m = ScoreMatrix::blosum62();
    const auto query = db::random_protein(rng, 60).residues;
    auto subject = db::random_protein(rng, 300).residues;
    subject.insert(subject.begin() + 150, query.begin(), query.end());
    const Alignment a = sw_align_affine_lowmem(query, subject, m, {10, 2});
    Score self = 0;
    for (const Code c : query) self += m.at(c, c);
    EXPECT_EQ(a.score, self);
    // The reported region must cover the planted copy.
    EXPECT_LE(a.t_begin, 150u);
    EXPECT_GE(a.t_end, 150u + query.size());
}

TEST(SwLowMem, EmptyResultOnNoSimilarity) {
    const Alphabet& d = Alphabet::dna();
    const ScoreMatrix m = ScoreMatrix::match_mismatch(d, 1, -1, 0);
    const auto s = d.encode("AAAA");
    const auto t = d.encode("CCCC");
    const Alignment a = sw_align_affine_lowmem(s, t, m, {3, 1});
    EXPECT_EQ(a.score, 0);
    EXPECT_TRUE(a.ops.empty());
}

TEST(SwLowMem, RespectsRectangleCap) {
    Rng rng(37);
    const ScoreMatrix m = ScoreMatrix::blosum62();
    const auto a = db::random_protein(rng, 400).residues;
    // Aligning a to itself has a 400x400 footprint; cap below that.
    EXPECT_THROW(sw_align_affine_lowmem(a, a, m, {10, 2}, 100 * 100),
                 ContractError);
}

TEST(SwLowMem, FootprintRectangleIsSmall) {
    // The alignment footprint (not the full |s| x |t| product) bounds the
    // quadratic stage: a short planted motif inside two long random
    // sequences must pass even with a tight cap.
    Rng rng(41);
    const ScoreMatrix m = ScoreMatrix::blosum62();
    const auto motif = db::random_protein(rng, 30).residues;
    auto s = db::random_protein(rng, 1500).residues;
    auto t = db::random_protein(rng, 1500).residues;
    s.insert(s.begin() + 700, motif.begin(), motif.end());
    t.insert(t.begin() + 200, motif.begin(), motif.end());
    // 1500x1500 = 2.25M cells would overflow a 40k cap, but the motif
    // rectangle (~30x30 plus noise) must not. Give some slack: random
    // flanks can extend the optimum slightly.
    const Alignment a = sw_align_affine_lowmem(s, t, m, {10, 2}, 400 * 400);
    Score self = 0;
    for (const Code c : motif) self += m.at(c, c);
    EXPECT_GE(a.score, self);
}

}  // namespace
}  // namespace swh::align

// Golden equivalence of the inter-sequence scan kernels against the
// scalar oracle and the striped kernels, across every ISA level this
// host supports. The kernels promise BIT-identical scores and overflow
// flags to the striped kernels (same saturating arithmetic per cell),
// so every comparison below is exact — including saturated lanes,
// padded lanes, and partial cohorts.

#include "align/interseq.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "align/striped.hpp"
#include "align/sw_scalar.hpp"
#include "db/generator.hpp"
#include "util/rng.hpp"

namespace swh::align {
namespace {

const ScoreMatrix& blosum() {
    static const ScoreMatrix m = ScoreMatrix::blosum62();
    return m;
}

constexpr GapPenalty kGap{10, 2};

std::vector<simd::IsaLevel> supported_levels() {
    std::vector<simd::IsaLevel> levels;
    for (const simd::IsaLevel isa :
         {simd::IsaLevel::Scalar, simd::IsaLevel::SSE2, simd::IsaLevel::AVX2,
          simd::IsaLevel::AVX512}) {
        if (simd::is_supported(isa)) levels.push_back(isa);
    }
    return levels;
}

/// Column-major interleave of up to W subjects into a cohort of
/// `columns` columns, short/absent lanes padded with the sentinel.
std::vector<Code> interleave(const std::vector<std::vector<Code>>& subjects,
                             int lanes, std::size_t columns) {
    std::vector<Code> cols(columns * static_cast<std::size_t>(lanes),
                           InterseqProfile::kPadCode);
    for (std::size_t l = 0; l < subjects.size(); ++l) {
        for (std::size_t j = 0; j < subjects[l].size(); ++j) {
            cols[j * static_cast<std::size_t>(lanes) + l] = subjects[l][j];
        }
    }
    return cols;
}

std::vector<std::vector<Code>> random_subjects(Rng& rng, std::size_t n,
                                               std::size_t min_len,
                                               std::size_t max_len) {
    std::vector<std::vector<Code>> subjects;
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t len =
            min_len + rng.below(max_len - min_len + 1);
        subjects.push_back(
            db::random_protein(rng, len, "s" + std::to_string(i)).residues);
    }
    return subjects;
}

TEST(InterseqSupport, AcceptsEveryBuiltinAlphabet) {
    // The gate (alphabet < pad sentinel, biased range inside u8) is
    // defensive: every constructible matrix today passes — entries are
    // int8-bounded, so max + bias <= 127 + 128 = 255, and all factory
    // alphabets are <= 24 symbols. Pin that down so a future alphabet
    // bigger than the 5-bit code space gets caught by the gate, not by
    // a silent pad-code collision.
    EXPECT_TRUE(interseq_supported(blosum()));
    EXPECT_TRUE(interseq_supported(
        ScoreMatrix::match_mismatch(Alphabet::dna(), 5, -4)));
    EXPECT_TRUE(interseq_supported(
        ScoreMatrix::match_mismatch(Alphabet::protein(), 127, -128)));
    EXPECT_LT(Alphabet::protein().size(),
              std::size_t{InterseqProfile::kPadCode});
}

TEST(InterseqProfileTest, RowsHoldBiasedScoresAndPadDecays) {
    Rng rng(7);
    const std::vector<Code> q = db::random_protein(rng, 37, "q").residues;
    const InterseqProfile p = build_interseq_profile(q, blosum());
    EXPECT_EQ(p.query_len, q.size());
    EXPECT_EQ(p.bias, blosum().bias());
    for (std::size_t i = 0; i < q.size(); ++i) {
        const std::uint8_t* row = p.row(i);
        EXPECT_EQ(reinterpret_cast<std::uintptr_t>(row) %
                      InterseqProfile::kStride,
                  0u);
        for (Code a = 0; a < p.symbols; ++a) {
            EXPECT_EQ(row[a], blosum().at(q[i], a) + p.bias);
        }
        // Pad sentinel (and every unused slot) holds the worst biased
        // score, so padded lanes can only decay.
        EXPECT_EQ(row[InterseqProfile::kPadCode], 0);
    }
}

TEST(InterseqKernels, U8MatchesStripedAndOracleAcrossIsaLevels) {
    Rng rng(101);
    const std::vector<Code> q = db::random_protein(rng, 120, "q").residues;
    const InterseqProfile prof = build_interseq_profile(q, blosum());

    for (const simd::IsaLevel isa : supported_levels()) {
        const int W = lanes_u8(isa);
        Rng srng(isa == simd::IsaLevel::Scalar ? 5u : 6u);
        // Length-diverse cohort: exercises early lane retirement.
        const auto subjects = random_subjects(
            srng, static_cast<std::size_t>(W), 5, 180);
        std::size_t columns = 0;
        for (const auto& s : subjects) columns = std::max(columns, s.size());
        const std::vector<Code> cols = interleave(subjects, W, columns);

        ScanScratch scratch;
        std::uint8_t lane_best[64];
        const std::uint64_t ovf = sw_interseq_u8(prof, cols.data(), columns,
                                                 kGap, isa, scratch, lane_best);

        const Profile8 p8 = build_profile8(q, blosum(), W);
        for (int l = 0; l < W; ++l) {
            const StripedResult r = sw_striped_u8(p8, subjects[l], kGap, isa);
            EXPECT_EQ(static_cast<Score>(lane_best[l]), r.score)
                << "isa=" << simd::to_string(isa) << " lane=" << l;
            EXPECT_EQ(((ovf >> l) & 1) != 0, r.overflow)
                << "isa=" << simd::to_string(isa) << " lane=" << l;
            if (!r.overflow) {
                EXPECT_EQ(static_cast<Score>(lane_best[l]),
                          sw_score_affine(q, subjects[l], blosum(), kGap));
            }
        }
    }
}

TEST(InterseqKernels, U8OverflowMaskFlagsSaturatedLanes) {
    Rng rng(103);
    // A long self-match saturates u8 (score >> 255 - bias).
    const std::vector<Code> q = db::random_protein(rng, 400, "q").residues;
    const InterseqProfile prof = build_interseq_profile(q, blosum());

    for (const simd::IsaLevel isa : supported_levels()) {
        const int W = lanes_u8(isa);
        std::vector<std::vector<Code>> subjects =
            random_subjects(rng, static_cast<std::size_t>(W), 30, 60);
        subjects[1] = q;                        // planted overflow lane
        subjects[static_cast<std::size_t>(W) - 1] = q;
        std::size_t columns = 0;
        for (const auto& s : subjects) columns = std::max(columns, s.size());
        const std::vector<Code> cols = interleave(subjects, W, columns);

        ScanScratch scratch;
        std::uint8_t lane_best[64];
        const std::uint64_t ovf = sw_interseq_u8(prof, cols.data(), columns,
                                                 kGap, isa, scratch, lane_best);
        EXPECT_TRUE((ovf >> 1) & 1) << simd::to_string(isa);
        EXPECT_TRUE((ovf >> (W - 1)) & 1) << simd::to_string(isa);

        const Profile8 p8 = build_profile8(q, blosum(), W);
        for (int l = 0; l < W; ++l) {
            const StripedResult r = sw_striped_u8(p8, subjects[l], kGap, isa);
            EXPECT_EQ(((ovf >> l) & 1) != 0, r.overflow)
                << "isa=" << simd::to_string(isa) << " lane=" << l;
            EXPECT_EQ(static_cast<Score>(lane_best[l]), r.score)
                << "isa=" << simd::to_string(isa) << " lane=" << l;
        }
    }
}

TEST(InterseqKernels, PartialCohortPaddedLanesStayRetired) {
    Rng rng(105);
    const std::vector<Code> q = db::random_protein(rng, 90, "q").residues;
    const InterseqProfile prof = build_interseq_profile(q, blosum());

    for (const simd::IsaLevel isa : supported_levels()) {
        const int W = lanes_u8(isa);
        // Only 3 real subjects: the remaining lanes are pure padding.
        const auto subjects = random_subjects(rng, 3, 40, 100);
        std::size_t columns = 0;
        for (const auto& s : subjects) columns = std::max(columns, s.size());
        const std::vector<Code> cols = interleave(subjects, W, columns);

        ScanScratch scratch;
        std::uint8_t lane_best[64];
        const std::uint64_t ovf = sw_interseq_u8(prof, cols.data(), columns,
                                                 kGap, isa, scratch, lane_best);
        for (std::size_t l = 0; l < 3; ++l) {
            EXPECT_EQ(static_cast<Score>(lane_best[l]),
                      sw_score_affine(q, subjects[l], blosum(), kGap));
        }
        for (int l = 3; l < W; ++l) {
            EXPECT_EQ(lane_best[l], 0) << "pad lane " << l;
            EXPECT_FALSE((ovf >> l) & 1) << "pad lane " << l;
        }
    }
}

TEST(InterseqKernels, I16MatchesStripedIncludingOverflowMask) {
    Rng rng(107);
    // match=60 over a 600-residue self-match scores 36000 > 32767: the
    // planted lane must trip the i16 overflow mask while the random
    // lanes stay exact.
    const std::vector<Code> q = db::random_protein(rng, 600, "q").residues;
    const ScoreMatrix matrix =
        ScoreMatrix::match_mismatch(Alphabet::protein(), 60, -4);

    const InterseqProfile prof = build_interseq_profile(q, matrix);

    for (const simd::IsaLevel isa : supported_levels()) {
        const int W = lanes_u8(isa);
        std::vector<std::vector<Code>> subjects =
            random_subjects(rng, static_cast<std::size_t>(W), 100, 400);
        subjects[2] = q;  // saturates i16
        std::size_t columns = 0;
        for (const auto& s : subjects) columns = std::max(columns, s.size());
        const std::vector<Code> cols = interleave(subjects, W, columns);

        ScanScratch scratch;
        std::int16_t lane_best[64];
        const std::uint64_t ovf = sw_interseq_i16(
            prof, cols.data(), columns, kGap, isa, scratch, lane_best);

        const Profile16 p16 = build_profile16(q, matrix, lanes_i16(isa));
        bool any_overflow = false;
        for (int l = 0; l < W; ++l) {
            const StripedResult r = sw_striped_i16(p16, subjects[l], kGap, isa);
            EXPECT_EQ(static_cast<Score>(lane_best[l]), r.score)
                << "isa=" << simd::to_string(isa) << " lane=" << l;
            EXPECT_EQ(((ovf >> l) & 1) != 0, r.overflow)
                << "isa=" << simd::to_string(isa) << " lane=" << l;
            any_overflow |= r.overflow;
            if (!r.overflow) {
                EXPECT_EQ(static_cast<Score>(lane_best[l]),
                          sw_score_affine(q, subjects[l], matrix, kGap));
            }
        }
        EXPECT_TRUE(any_overflow) << simd::to_string(isa);
    }
}

TEST(InterseqKernels, EmptyQueryAndEmptyCohortAreClean) {
    const std::vector<Code> q;
    const InterseqProfile prof = build_interseq_profile(q, blosum());
    ScanScratch scratch;
    std::uint8_t lane_best[64];
    std::vector<Code> cols(64, InterseqProfile::kPadCode);
    EXPECT_EQ(sw_interseq_u8(prof, cols.data(), 1, kGap,
                             simd::IsaLevel::Scalar, scratch, lane_best),
              0u);
    for (int l = 0; l < 16; ++l) EXPECT_EQ(lane_best[l], 0);

    Rng rng(9);
    const std::vector<Code> q2 = db::random_protein(rng, 20, "q2").residues;
    const InterseqProfile prof2 = build_interseq_profile(q2, blosum());
    EXPECT_EQ(sw_interseq_u8(prof2, cols.data(), 0, kGap,
                             simd::IsaLevel::Scalar, scratch, lane_best),
              0u);
    for (int l = 0; l < 16; ++l) EXPECT_EQ(lane_best[l], 0);
}

}  // namespace
}  // namespace swh::align

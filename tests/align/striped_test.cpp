#include "align/striped.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

#include <vector>

#include "align/striped_kernels.hpp"
#include "align/sw_scalar.hpp"
#include "db/generator.hpp"
#include "simd/simd.hpp"
#include "util/rng.hpp"

namespace swh::align {
namespace {

std::vector<simd::IsaLevel> supported_levels() {
    std::vector<simd::IsaLevel> out = {simd::IsaLevel::Scalar};
    if (simd::is_supported(simd::IsaLevel::SSE2))
        out.push_back(simd::IsaLevel::SSE2);
    if (simd::is_supported(simd::IsaLevel::AVX2))
        out.push_back(simd::IsaLevel::AVX2);
    if (simd::is_supported(simd::IsaLevel::AVX512))
        out.push_back(simd::IsaLevel::AVX512);
    return out;
}

class StripedIsaTest : public ::testing::TestWithParam<simd::IsaLevel> {};

INSTANTIATE_TEST_SUITE_P(
    AllIsas, StripedIsaTest, ::testing::ValuesIn(supported_levels()),
    [](const ::testing::TestParamInfo<simd::IsaLevel>& info) {
        return simd::to_string(info.param);
    });

TEST_P(StripedIsaTest, U8MatchesOracleOnRandomPairs) {
    const simd::IsaLevel isa = GetParam();
    Rng rng(101);
    const ScoreMatrix m = ScoreMatrix::blosum62();
    const GapPenalty gap{10, 2};
    for (int iter = 0; iter < 60; ++iter) {
        const auto q =
            db::random_protein(rng, 1 + rng.below(90)).residues;
        const auto d =
            db::random_protein(rng, 1 + rng.below(200)).residues;
        const Profile8 p = build_profile8(q, m, lanes_u8(isa));
        const StripedResult r = sw_striped_u8(p, d, gap, isa);
        ASSERT_FALSE(r.overflow) << "random short pairs should not saturate";
        EXPECT_EQ(r.score, sw_score_affine(q, d, m, gap)) << "iter " << iter;
    }
}

TEST_P(StripedIsaTest, I16MatchesOracleOnRandomPairs) {
    const simd::IsaLevel isa = GetParam();
    Rng rng(103);
    const ScoreMatrix m = ScoreMatrix::blosum62();
    const GapPenalty gap{10, 2};
    for (int iter = 0; iter < 60; ++iter) {
        const auto q =
            db::random_protein(rng, 1 + rng.below(150)).residues;
        const auto d =
            db::random_protein(rng, 1 + rng.below(300)).residues;
        const Profile16 p = build_profile16(q, m, lanes_i16(isa));
        const StripedResult r = sw_striped_i16(p, d, gap, isa);
        ASSERT_FALSE(r.overflow);
        EXPECT_EQ(r.score, sw_score_affine(q, d, m, gap)) << "iter " << iter;
    }
}

// The always-generic scratch kernel, bypassing the register-blocked
// dispatch that sw_striped_u8 applies for small segment counts.
StripedResult generic_u8(const Profile8& p, std::span<const Code> db,
                         GapPenalty gap, simd::IsaLevel isa) {
    ScanScratch scratch;
    switch (isa) {
        case simd::IsaLevel::Scalar:
            return detail::striped_u8<simd::U8x16s>(p, db, gap, scratch);
#if defined(__SSE2__)
        case simd::IsaLevel::SSE2:
            return detail::striped_u8<simd::U8x16>(p, db, gap, scratch);
#endif
#if defined(__AVX2__)
        case simd::IsaLevel::AVX2:
            return detail::striped_u8<simd::U8x32>(p, db, gap, scratch);
#endif
#if defined(__AVX512BW__)
        case simd::IsaLevel::AVX512:
            return detail::striped_u8<simd::U8x64>(p, db, gap, scratch);
#endif
        default:
            SWH_REQUIRE(false, "ISA level not compiled in");
            return {};
    }
}

TEST_P(StripedIsaTest, RegisterBlockedU8MatchesGenericKernel) {
    // Query lengths spanning segment counts 1..10 at every lane width:
    // both the register-blocked instantiations (seg <= 8) and the
    // generic fallback must produce identical scores and overflow flags.
    const simd::IsaLevel isa = GetParam();
    Rng rng(111);
    const ScoreMatrix m = ScoreMatrix::blosum62();
    const GapPenalty gap{10, 2};
    const int lanes = lanes_u8(isa);
    for (int seg = 1; seg <= 10; ++seg) {
        const std::size_t qlen =
            static_cast<std::size_t>(seg * lanes) - rng.below(lanes);
        const auto q = db::random_protein(rng, qlen).residues;
        const Profile8 p = build_profile8(q, m, lanes);
        ASSERT_EQ(p.seg_len, static_cast<std::size_t>(seg));
        for (int iter = 0; iter < 8; ++iter) {
            const auto d =
                db::random_protein(rng, 1 + rng.below(300)).residues;
            const StripedResult auto_r = sw_striped_u8(p, d, gap, isa);
            const StripedResult gen_r = generic_u8(p, d, gap, isa);
            EXPECT_EQ(auto_r.score, gen_r.score)
                << "seg " << seg << " iter " << iter;
            EXPECT_EQ(auto_r.overflow, gen_r.overflow)
                << "seg " << seg << " iter " << iter;
        }
    }
}

TEST_P(StripedIsaTest, U8DetectsOverflowOnSelfAlignment) {
    // A 60-residue tryptophan run self-aligns at 60*11 = 660 > 255.
    const simd::IsaLevel isa = GetParam();
    const ScoreMatrix m = ScoreMatrix::blosum62();
    const std::vector<Code> w(60, Alphabet::protein().encode('W'));
    const Profile8 p = build_profile8(w, m, lanes_u8(isa));
    const StripedResult r = sw_striped_u8(p, w, {10, 2}, isa);
    EXPECT_TRUE(r.overflow);
}

TEST_P(StripedIsaTest, I16HandlesScoresBeyond255) {
    const simd::IsaLevel isa = GetParam();
    const ScoreMatrix m = ScoreMatrix::blosum62();
    const std::vector<Code> w(60, Alphabet::protein().encode('W'));
    const Profile16 p = build_profile16(w, m, lanes_i16(isa));
    const StripedResult r = sw_striped_i16(p, w, {10, 2}, isa);
    ASSERT_FALSE(r.overflow);
    EXPECT_EQ(r.score, 660);
}

TEST_P(StripedIsaTest, HandlesGapHeavyOptimum) {
    // Force an optimum that needs F-loop propagation across segments: a
    // long query vs a subject that matches its two ends only.
    const simd::IsaLevel isa = GetParam();
    Rng rng(107);
    const ScoreMatrix m = ScoreMatrix::blosum62();
    const GapPenalty gap{2, 1};  // cheap gaps encourage long deletions
    for (int iter = 0; iter < 25; ++iter) {
        const auto head = db::random_protein(rng, 25).residues;
        const auto tail = db::random_protein(rng, 25).residues;
        std::vector<Code> q = head;
        const auto middle =
            db::random_protein(rng, 30 + rng.below(60)).residues;
        q.insert(q.end(), middle.begin(), middle.end());
        q.insert(q.end(), tail.begin(), tail.end());
        std::vector<Code> d = head;
        d.insert(d.end(), tail.begin(), tail.end());
        const Profile16 p = build_profile16(q, m, lanes_i16(isa));
        const StripedResult r = sw_striped_i16(p, d, gap, isa);
        ASSERT_FALSE(r.overflow);
        EXPECT_EQ(r.score, sw_score_affine(q, d, m, gap)) << "iter " << iter;
    }
}

TEST_P(StripedIsaTest, ZeroGapExtensionTerminates) {
    const simd::IsaLevel isa = GetParam();
    Rng rng(109);
    const ScoreMatrix m = ScoreMatrix::blosum62();
    const GapPenalty gap{4, 0};
    for (int iter = 0; iter < 10; ++iter) {
        const auto q = db::random_protein(rng, 40).residues;
        const auto d = db::random_protein(rng, 80).residues;
        const Profile16 p = build_profile16(q, m, lanes_i16(isa));
        const StripedResult r = sw_striped_i16(p, d, gap, isa);
        EXPECT_EQ(r.score, sw_score_affine(q, d, m, gap)) << "iter " << iter;
    }
}

TEST_P(StripedIsaTest, QueryShorterThanOneVector) {
    const simd::IsaLevel isa = GetParam();
    const ScoreMatrix m = ScoreMatrix::blosum62();
    const auto q = Alphabet::protein().encode("MK");
    const auto d = Alphabet::protein().encode("AMKA");
    const Profile8 p = build_profile8(q, m, lanes_u8(isa));
    const StripedResult r = sw_striped_u8(p, d, {10, 2}, isa);
    EXPECT_EQ(r.score, sw_score_affine(q, d, m, {10, 2}));
}

TEST_P(StripedIsaTest, EmptyInputsScoreZero) {
    const simd::IsaLevel isa = GetParam();
    const ScoreMatrix m = ScoreMatrix::blosum62();
    const std::vector<Code> empty;
    const auto q = Alphabet::protein().encode("MKV");
    const Profile8 pe = build_profile8(empty, m, lanes_u8(isa));
    EXPECT_EQ(sw_striped_u8(pe, q, {10, 2}, isa).score, 0);
    const Profile8 pq = build_profile8(q, m, lanes_u8(isa));
    EXPECT_EQ(sw_striped_u8(pq, empty, {10, 2}, isa).score, 0);
}

TEST_P(StripedIsaTest, AlignerEscalatesAndMatchesOracle) {
    const simd::IsaLevel isa = GetParam();
    Rng rng(113);
    const ScoreMatrix m = ScoreMatrix::blosum62();
    const GapPenalty gap{10, 2};

    // Mix benign subjects with one that overflows 8 bits.
    const auto q = db::random_protein(rng, 120).residues;
    std::vector<std::vector<Code>> subjects;
    for (int i = 0; i < 10; ++i) {
        subjects.push_back(db::random_protein(rng, 150).residues);
    }
    std::vector<Code> strong = q;  // exact copy: self-score ~ 120*5 > 255
    subjects.push_back(strong);

    const StripedAligner aligner(q, m, gap, isa);
    for (const auto& d : subjects) {
        EXPECT_EQ(aligner.score(d), sw_score_affine(q, d, m, gap));
    }
    const StripedAligner::Stats st = aligner.stats();
    EXPECT_GE(st.runs8, 10u);
    EXPECT_GE(st.runs16, 1u);  // the exact copy escalated
}

TEST(StripedAllIsas, AgreeWithEachOther) {
    Rng rng(127);
    const ScoreMatrix m = ScoreMatrix::blosum62();
    const GapPenalty gap{10, 2};
    const auto levels = supported_levels();
    for (int iter = 0; iter < 20; ++iter) {
        const auto q = db::random_protein(rng, 5 + rng.below(100)).residues;
        const auto d = db::random_protein(rng, 5 + rng.below(200)).residues;
        std::vector<Score> scores;
        for (const simd::IsaLevel isa : levels) {
            const StripedAligner aligner(q, m, gap, isa);
            scores.push_back(aligner.score(d));
        }
        for (std::size_t i = 1; i < scores.size(); ++i) {
            EXPECT_EQ(scores[i], scores[0])
                << "iter " << iter << " isa " << simd::to_string(levels[i]);
        }
    }
}

TEST(StripedProfile, LayoutMatchesDefinition) {
    // Check the striped layout directly: entry (a, i, l) must equal
    // matrix(query[l*seg+i], a) + bias.
    const ScoreMatrix m = ScoreMatrix::blosum62();
    const auto q = Alphabet::protein().encode("MKVLAWHEQNDRST");
    const int lanes = 4;  // deliberately small to exercise padding
    const Profile8 p = build_profile8(q, m, lanes);
    EXPECT_EQ(p.seg_len, (q.size() + 3) / 4);
    for (Code a = 0; a < 24; ++a) {
        const std::uint8_t* row = p.row(a);
        for (std::size_t i = 0; i < p.seg_len; ++i) {
            for (int l = 0; l < lanes; ++l) {
                const std::size_t pos = static_cast<std::size_t>(l) *
                                            p.seg_len + i;
                const int expected =
                    pos < q.size() ? m.at(q[pos], a) + p.bias : 0;
                EXPECT_EQ(row[i * lanes + l], expected);
            }
        }
    }
}

TEST(StripedProfile, ExtremeMatrixStillFits8Bit) {
    // int8-constrained entries always fit the biased 8-bit profile:
    // max + bias <= 127 + 128 = 255. Check the widest possible matrix.
    ScoreMatrix m(Alphabet::dna(), "wide");
    for (Code a = 0; a < 5; ++a)
        for (Code b = 0; b < 5; ++b) m.set(a, b, a == b ? 127 : -128);
    const auto q = Alphabet::dna().encode("ACGT");
    const Profile8 p = build_profile8(q, m, 16);
    EXPECT_EQ(p.bias, 128);
    EXPECT_EQ(p.max_entry, 255);
    // The kernel must immediately flag overflow risk on such a matrix.
    const auto d = Alphabet::dna().encode("ACGT");
    const StripedResult r =
        sw_striped_u8(p, d, {2, 1}, simd::IsaLevel::Scalar);
    EXPECT_TRUE(r.overflow);
}

}  // namespace
}  // namespace swh::align

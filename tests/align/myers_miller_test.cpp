#include "align/myers_miller.hpp"

#include <gtest/gtest.h>

#include "align/traceback.hpp"
#include "db/generator.hpp"
#include "util/rng.hpp"

namespace swh::align {
namespace {

const ScoreMatrix& blosum() {
    static const ScoreMatrix m = ScoreMatrix::blosum62();
    return m;
}

std::vector<Code> dna(const char* s) { return Alphabet::dna().encode(s); }

TEST(MyersMiller, MatchesQuadraticScoreOnRandomPairs) {
    Rng rng(71);
    for (int iter = 0; iter < 60; ++iter) {
        const auto a = db::random_protein(rng, 1 + rng.below(90)).residues;
        const auto b = db::random_protein(rng, 1 + rng.below(90)).residues;
        const GapPenalty gap{static_cast<Score>(rng.below(12)),
                             static_cast<Score>(1 + rng.below(3))};
        const Alignment quad = nw_align_affine(a, b, blosum(), gap);
        const Alignment lin = nw_align_affine_linear(a, b, blosum(), gap);
        EXPECT_EQ(lin.score, quad.score)
            << "iter " << iter << " gap " << gap.open << "/" << gap.extend;
        EXPECT_EQ(lin.s_end, a.size());
        EXPECT_EQ(lin.t_end, b.size());
    }
}

TEST(MyersMiller, GapHeavyPairs) {
    // Very different lengths force long gap runs across split
    // boundaries — the case the tb/te bookkeeping exists for.
    Rng rng(73);
    for (int iter = 0; iter < 40; ++iter) {
        const auto a =
            db::random_protein(rng, 1 + rng.below(15)).residues;
        const auto b =
            db::random_protein(rng, 40 + rng.below(80)).residues;
        const GapPenalty gap{static_cast<Score>(rng.below(15)),
                             static_cast<Score>(1 + rng.below(2))};
        EXPECT_EQ(nw_align_affine_linear(a, b, blosum(), gap).score,
                  nw_align_affine(a, b, blosum(), gap).score)
            << "iter " << iter;
        EXPECT_EQ(nw_align_affine_linear(b, a, blosum(), gap).score,
                  nw_align_affine(b, a, blosum(), gap).score)
            << "iter(sw) " << iter;
    }
}

TEST(MyersMiller, InsertionInMiddle) {
    // s = t with a block deleted: the optimum is matches + one long
    // vertical gap, likely crossing the recursion midpoint.
    Rng rng(79);
    for (const std::size_t gap_len : {1u, 2u, 5u, 17u, 40u}) {
        const auto t = db::random_protein(rng, 100).residues;
        std::vector<Code> s(t.begin(), t.begin() + 50 - gap_len / 2);
        s.insert(s.end(), t.begin() + 50 + (gap_len + 1) / 2, t.end());
        const GapPenalty gap{11, 1};
        const Alignment lin =
            nw_align_affine_linear(s, t, blosum(), gap);
        EXPECT_EQ(lin.score, nw_align_affine(s, t, blosum(), gap).score)
            << "gap_len " << gap_len;
    }
}

TEST(MyersMiller, EmptySides) {
    const auto a = dna("ACGT");
    const std::vector<Code> empty;
    const ScoreMatrix m = ScoreMatrix::match_mismatch(Alphabet::dna(), 1,
                                                      -1, 0);
    const Alignment del = nw_align_affine_linear(a, empty, m, {3, 1});
    EXPECT_EQ(del.cigar(), "4D");
    EXPECT_EQ(del.score, -(3 + 4));
    const Alignment ins = nw_align_affine_linear(empty, a, m, {3, 1});
    EXPECT_EQ(ins.cigar(), "4I");
    EXPECT_EQ(nw_align_affine_linear(empty, empty, m, {3, 1}).score, 0);
}

TEST(MyersMiller, SingleResidueCases) {
    const ScoreMatrix m = ScoreMatrix::match_mismatch(Alphabet::dna(), 2,
                                                      -1, 0);
    const auto a = dna("A");
    const auto accc = dna("CCAC");
    // Best: insert CC, match A, insert C: -(3+2) + 2 - (3+1) = -7 ... or
    // compare against the quadratic reference rather than hand-math.
    const Alignment lin = nw_align_affine_linear(a, accc, m, {3, 1});
    EXPECT_EQ(lin.score, nw_align_affine(a, accc, m, {3, 1}).score);
}

TEST(MyersMiller, IdenticalSequencesAllMatches) {
    Rng rng(83);
    const auto a = db::random_protein(rng, 200).residues;
    const Alignment lin = nw_align_affine_linear(a, a, blosum(), {10, 2});
    EXPECT_EQ(lin.cigar(), "200M");
}

TEST(MyersMiller, DnaMatchMismatchGrid) {
    // Parameter sweep across gap models on DNA.
    Rng rng(89);
    const ScoreMatrix m = ScoreMatrix::match_mismatch(Alphabet::dna(), 1,
                                                      -1, 0);
    for (const Score open : {0, 1, 4, 10}) {
        for (const Score ext : {1, 2}) {
            for (int iter = 0; iter < 8; ++iter) {
                const auto a =
                    db::random_dna(rng, 1 + rng.below(60)).residues;
                const auto b =
                    db::random_dna(rng, 1 + rng.below(60)).residues;
                EXPECT_EQ(
                    nw_align_affine_linear(a, b, m, {open, ext}).score,
                    nw_align_affine(a, b, m, {open, ext}).score)
                    << open << "/" << ext << " iter " << iter;
            }
        }
    }
}

}  // namespace
}  // namespace swh::align

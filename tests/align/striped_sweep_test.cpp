// Property sweep: the striped kernels must agree with the scalar Gotoh
// oracle for every (gap model, ISA, alphabet) combination, not just the
// BLOSUM62 defaults. Parameterised across the full grid.

#include <gtest/gtest.h>

#include <tuple>

#include "align/striped.hpp"
#include "align/sw_scalar.hpp"
#include "db/generator.hpp"
#include "util/rng.hpp"

namespace swh::align {
namespace {

struct SweepCase {
    simd::IsaLevel isa;
    Score open;
    Score extend;
    bool dna;
};

std::vector<SweepCase> sweep_grid() {
    std::vector<simd::IsaLevel> isas = {simd::IsaLevel::Scalar};
    for (const auto level :
         {simd::IsaLevel::SSE2, simd::IsaLevel::AVX2,
          simd::IsaLevel::AVX512}) {
        if (simd::is_supported(level)) isas.push_back(level);
    }
    std::vector<SweepCase> out;
    for (const simd::IsaLevel isa : isas) {
        for (const Score open : {0, 1, 5, 10, 40}) {
            for (const Score extend : {1, 2, 7}) {
                for (const bool dna : {false, true}) {
                    out.push_back(SweepCase{isa, open, extend, dna});
                }
            }
        }
    }
    return out;
}

class StripedSweepTest : public ::testing::TestWithParam<SweepCase> {};

INSTANTIATE_TEST_SUITE_P(
    Grid, StripedSweepTest, ::testing::ValuesIn(sweep_grid()),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
        const SweepCase& c = info.param;
        return std::string(simd::to_string(c.isa)) + "_o" +
               std::to_string(c.open) + "_e" + std::to_string(c.extend) +
               (c.dna ? "_dna" : "_prot");
    });

TEST_P(StripedSweepTest, AlignerMatchesOracle) {
    const SweepCase& c = GetParam();
    const ScoreMatrix matrix =
        c.dna ? ScoreMatrix::match_mismatch(Alphabet::dna(), 5, -4, 0)
              : ScoreMatrix::blosum62();
    const GapPenalty gap{c.open, c.extend};
    Rng rng(0xABCD ^ (static_cast<std::uint64_t>(c.open) << 8) ^
            static_cast<std::uint64_t>(c.extend));
    for (int iter = 0; iter < 12; ++iter) {
        const auto q =
            c.dna ? db::random_dna(rng, 1 + rng.below(120)).residues
                  : db::random_protein(rng, 1 + rng.below(120)).residues;
        const auto d =
            c.dna ? db::random_dna(rng, 1 + rng.below(250)).residues
                  : db::random_protein(rng, 1 + rng.below(250)).residues;
        const StripedAligner aligner(q, matrix, gap, c.isa);
        EXPECT_EQ(aligner.score(d), sw_score_affine(q, d, matrix, gap))
            << "iter " << iter;
    }
}

TEST_P(StripedSweepTest, HomologousPairEscalatesCorrectly) {
    // A long shared region pushes u8 into overflow for most gap models;
    // the escalation path must still land on the oracle score.
    const SweepCase& c = GetParam();
    const ScoreMatrix matrix =
        c.dna ? ScoreMatrix::match_mismatch(Alphabet::dna(), 5, -4, 0)
              : ScoreMatrix::blosum62();
    const GapPenalty gap{c.open, c.extend};
    Rng rng(0x5151);
    const auto q = c.dna ? db::random_dna(rng, 150).residues
                         : db::random_protein(rng, 150).residues;
    auto d = q;  // exact copy: self score >> 255 for these matrices
    const StripedAligner aligner(q, matrix, gap, c.isa);
    EXPECT_EQ(aligner.score(d), sw_score_affine(q, d, matrix, gap));
}

}  // namespace
}  // namespace swh::align

// Steady-state allocation audit for the scan hot path. This test binary
// replaces the global allocation functions with counting versions
// (which is why it is its own test target): once a worker's ScanScratch
// has warmed up to the largest subject, StripedAligner::score() and the
// DatabaseScanner two-pass loop must not touch the heap at all.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "align/db_scan.hpp"
#include "align/striped.hpp"
#include "db/database.hpp"
#include "db/packed.hpp"
#include "engines/topk.hpp"
#include "util/rng.hpp"

namespace {

std::atomic<std::uint64_t> g_allocs{0};

void* counted_alloc(std::size_t size, std::size_t align) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    void* p = nullptr;
    if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                       size == 0 ? 1 : size) != 0) {
        throw std::bad_alloc();
    }
    return p;
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size, 16); }
void* operator new[](std::size_t size) { return counted_alloc(size, 16); }
void* operator new(std::size_t size, std::align_val_t align) {
    return counted_alloc(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
    return counted_alloc(size, static_cast<std::size_t>(align));
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
    std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
    std::free(p);
}

namespace swh::align {
namespace {

db::Database alloc_test_db() {
    db::DatabaseSpec spec;
    spec.name = "alloc";
    spec.num_sequences = 50;
    spec.length.min_len = 20;
    spec.length.max_len = 400;
    spec.seed = 51;
    return db::Database::generate(spec);
}

TEST(ScanAllocation, ScoreIsAllocationFreeInSteadyState) {
    const db::Database database = alloc_test_db();
    Rng rng(52);
    const Sequence q = db::random_protein(rng, 200, "q");
    const ScoreMatrix matrix = ScoreMatrix::blosum62();
    const StripedAligner aligner(q.residues, matrix, {10, 2});

    // Warm-up pass grows the thread-local scratch to the largest subject.
    Score warm = 0;
    for (const auto& s : database.sequences()) {
        warm = std::max(warm, aligner.score(s.residues));
    }

    const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
    Score best = 0;
    for (int rep = 0; rep < 3; ++rep) {
        for (const auto& s : database.sequences()) {
            best = std::max(best, aligner.score(s.residues));
        }
    }
    const std::uint64_t after = g_allocs.load(std::memory_order_relaxed);
    EXPECT_EQ(after, before) << "score() allocated in steady state";
    EXPECT_EQ(best, warm);
}

TEST(ScanAllocation, ScannerPass1IsAllocationFreeAfterWarmup) {
    const db::Database database = alloc_test_db();
    Rng rng(53);
    const Sequence q = db::random_protein(rng, 120, "q");
    const ScoreMatrix matrix = ScoreMatrix::blosum62();
    const StripedAligner aligner(q.residues, matrix, {10, 2});
    const db::PackedDatabase& packed = database.packed();

    DatabaseScanner scanner(aligner, packed.view());
    ScanScratch scratch;
    // Warm-up: run one full scan (grows scratch + overflow vector).
    scanner.run_worker(scratch,
                       [](std::uint32_t, std::uint32_t, Score) { return true; });

    // Steady state: per-subject scoring through a warm scratch must not
    // allocate. (The scanner's per-call overflow list is the only
    // remaining allocation site and stays empty for this query.)
    const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
    Score best = 0;
    for (std::size_t i = 0; i < packed.size(); ++i) {
        const StripedResult r =
            aligner.score_u8(packed.subject(i), scratch, /*trusted=*/true);
        ASSERT_FALSE(r.overflow);
        best = std::max(best, r.score);
    }
    const std::uint64_t after = g_allocs.load(std::memory_order_relaxed);
    EXPECT_EQ(after, before) << "pass-1 scan allocated in steady state";
    EXPECT_GT(best, 0);
}

TEST(ScanAllocation, TopKAddNeverAllocates) {
    // The collector reserves its full trim window (2k + 16) up front,
    // so the per-subject add() path never grows the vector — trims
    // shrink it back before capacity is reached.
    engines::TopK topk(10);
    const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
    for (std::uint32_t i = 0; i < 10'000; ++i) {
        topk.add(i, static_cast<Score>(i % 997));
    }
    const std::uint64_t after = g_allocs.load(std::memory_order_relaxed);
    EXPECT_EQ(after, before) << "TopK::add allocated";
}

TEST(ScanAllocation, EnginePathIsAllocationFreeAfterWarmup) {
    // The engine's per-subject path — cohort-mode scanner emit into a
    // TopK collector — end to end, including the inter-sequence kernel
    // through a warm scratch.
    const db::Database database = alloc_test_db();
    Rng rng(54);
    const Sequence q = db::random_protein(rng, 150, "q");
    const ScoreMatrix matrix = ScoreMatrix::blosum62();
    const StripedAligner aligner(q.residues, matrix, {10, 2});
    const db::PackedDatabase& packed = database.packed();

    DatabaseScanner scanner(
        aligner, packed.view(), DatabaseScanner::kDefaultChunk,
        packed.interleaved(lanes_u8(aligner.isa())).view());
    ASSERT_TRUE(scanner.cohort_mode());
    ScanScratch scratch;
    engines::TopK topk(10);
    // Warm-up scan grows the scratch to the largest cohort.
    scanner.run_worker(scratch,
                       [&](std::uint32_t idx, std::uint32_t, Score s) {
                           topk.add(idx, s);
                           return true;
                       });

    scanner.reset();
    const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
    std::size_t emitted = 0;
    const bool completed = scanner.run_worker(
        scratch, [&](std::uint32_t idx, std::uint32_t, Score s) {
            topk.add(idx, s);
            ++emitted;
            return true;
        });
    const std::uint64_t after = g_allocs.load(std::memory_order_relaxed);
    EXPECT_TRUE(completed);
    EXPECT_EQ(emitted, database.size());
    EXPECT_EQ(after, before) << "engine scan path allocated in steady state";
}

}  // namespace
}  // namespace swh::align

#include "simd/simd.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstring>

#include "util/rng.hpp"

namespace swh::simd {
namespace {

// Compares an intrinsic-backed vector type V against the scalar
// emulation E (same lane count) on random inputs for every operation the
// kernels use.
template <class V, class E>
void check_backend_agreement(std::uint64_t seed) {
    static_assert(V::kLanes == E::kLanes);
    using Lane = typename V::lane_type;
    Rng rng(seed);
    for (int iter = 0; iter < 200; ++iter) {
        std::array<Lane, V::kLanes> a{}, b{};
        for (int i = 0; i < V::kLanes; ++i) {
            a[i] = static_cast<Lane>(rng.next());
            b[i] = static_cast<Lane>(rng.next());
        }
        const V va = V::load(a.data()), vb = V::load(b.data());
        const E ea = E::load(a.data()), eb = E::load(b.data());

        auto expect_same = [&](V got, E want, const char* op) {
            std::array<Lane, V::kLanes> g{}, w{};
            got.store(g.data());
            want.store(w.data());
            EXPECT_EQ(g, w) << op << " iter " << iter;
        };
        expect_same(adds(va, vb), adds(ea, eb), "adds");
        expect_same(subs(va, vb), subs(ea, eb), "subs");
        expect_same(vmax(va, vb), vmax(ea, eb), "vmax");
        expect_same(va.shl_lane(), ea.shl_lane(), "shl_lane");
        EXPECT_EQ(any_gt(va, vb), any_gt(ea, eb)) << "any_gt iter " << iter;
        EXPECT_EQ(va.hmax(), ea.hmax()) << "hmax iter " << iter;
    }
}

#if defined(__SSE2__)
TEST(SimdBackends, Sse2U8MatchesScalar) {
    if (!is_supported(IsaLevel::SSE2)) GTEST_SKIP();
    check_backend_agreement<U8x16, U8xN<16>>(1);
}

TEST(SimdBackends, Sse2I16MatchesScalar) {
    if (!is_supported(IsaLevel::SSE2)) GTEST_SKIP();
    check_backend_agreement<I16x8, I16xN<8>>(2);
}
#endif

#if defined(__AVX2__)
TEST(SimdBackends, Avx2U8MatchesScalar) {
    if (!is_supported(IsaLevel::AVX2)) GTEST_SKIP();
    check_backend_agreement<U8x32, U8xN<32>>(3);
}

TEST(SimdBackends, Avx2I16MatchesScalar) {
    if (!is_supported(IsaLevel::AVX2)) GTEST_SKIP();
    check_backend_agreement<I16x16, I16xN<16>>(4);
}
#endif

#if defined(__AVX512BW__)
TEST(SimdBackends, Avx512U8MatchesScalar) {
    if (!is_supported(IsaLevel::AVX512)) GTEST_SKIP();
    check_backend_agreement<U8x64, U8xN<64>>(5);
}

TEST(SimdBackends, Avx512I16MatchesScalar) {
    if (!is_supported(IsaLevel::AVX512)) GTEST_SKIP();
    check_backend_agreement<I16x32, I16xN<32>>(6);
}
#endif

TEST(SimdScalar, ShlLaneInsertsZero) {
    U8xN<4> v;
    v.lane = {1, 2, 3, 4};
    const auto s = v.shl_lane();
    EXPECT_EQ(s.lane, (std::array<std::uint8_t, 4>{0, 1, 2, 3}));
}

TEST(SimdScalar, SaturatingOps) {
    U8xN<2> a, b;
    a.lane = {250, 3};
    b.lane = {10, 5};
    EXPECT_EQ(adds(a, b).lane, (std::array<std::uint8_t, 2>{255, 8}));
    EXPECT_EQ(subs(a, b).lane, (std::array<std::uint8_t, 2>{240, 0}));

    I16xN<2> c, d;
    c.lane = {32000, -32000};
    d.lane = {1000, 1000};
    EXPECT_EQ(adds(c, d).lane, (std::array<std::int16_t, 2>{32767, -31000}));
    EXPECT_EQ(subs(c, d).lane, (std::array<std::int16_t, 2>{31000, -32768}));
}

TEST(SimdScalar, AnyGtEdgeCases) {
    U8xN<2> a, b;
    a.lane = {5, 5};
    b.lane = {5, 5};
    EXPECT_FALSE(any_gt(a, b));
    a.lane = {5, 6};
    EXPECT_TRUE(any_gt(a, b));

    I16xN<2> c, d;
    c.lane = {-1, 0};
    d.lane = {0, 0};
    EXPECT_FALSE(any_gt(c, d));
    c.lane = {1, -5};
    EXPECT_TRUE(any_gt(c, d));
}

TEST(SimdArch, BestSupportedIsSupported) {
    EXPECT_TRUE(is_supported(best_supported()));
    EXPECT_TRUE(is_supported(IsaLevel::Scalar));
}

TEST(SimdArch, ToStringNames) {
    EXPECT_STREQ(to_string(IsaLevel::Scalar), "scalar");
    EXPECT_STREQ(to_string(IsaLevel::SSE2), "sse2");
    EXPECT_STREQ(to_string(IsaLevel::AVX2), "avx2");
    EXPECT_STREQ(to_string(IsaLevel::AVX512), "avx512");
}

}  // namespace
}  // namespace swh::simd

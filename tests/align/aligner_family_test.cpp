// Cross-aligner invariants: the aligner family forms a hierarchy of
// constraint relaxations, so their scores must be totally ordered for
// any input pair:
//
//   local (SW)  >=  overlap (dovetail)  >=  global (NW)
//   local       >=  banded local        (band restricts paths)
//   local       ==  striped == lowmem == full traceback
//   global      ==  Myers-Miller linear space
//
// Violations of any of these caught real bugs during development.

#include <gtest/gtest.h>

#include "align/banded.hpp"
#include "align/local_align.hpp"
#include "align/myers_miller.hpp"
#include "align/overlap.hpp"
#include "align/striped.hpp"
#include "align/sw_scalar.hpp"
#include "align/traceback.hpp"
#include "db/generator.hpp"
#include "util/rng.hpp"

namespace swh::align {
namespace {

struct Pair {
    std::vector<Code> a, b;
};

std::vector<Pair> random_pairs() {
    Rng rng(0xFA111);
    std::vector<Pair> out;
    for (int i = 0; i < 15; ++i) {
        out.push_back(Pair{
            db::random_protein(rng, 5 + rng.below(90)).residues,
            db::random_protein(rng, 5 + rng.below(90)).residues});
    }
    // Related pairs (shared block) stress the orderings harder.
    for (int i = 0; i < 10; ++i) {
        const auto shared = db::random_protein(rng, 30).residues;
        Pair p;
        p.a = db::random_protein(rng, 20).residues;
        p.a.insert(p.a.end(), shared.begin(), shared.end());
        p.b = shared;
        const auto tail = db::random_protein(rng, 25).residues;
        p.b.insert(p.b.end(), tail.begin(), tail.end());
        out.push_back(std::move(p));
    }
    return out;
}

class AlignerFamilyTest : public ::testing::TestWithParam<GapPenalty> {};

INSTANTIATE_TEST_SUITE_P(Gaps, AlignerFamilyTest,
                         ::testing::Values(GapPenalty{10, 2},
                                           GapPenalty{1, 1},
                                           GapPenalty{25, 3}),
                         [](const auto& info) {
                             return "o" + std::to_string(info.param.open) +
                                    "e" +
                                    std::to_string(info.param.extend);
                         });

TEST_P(AlignerFamilyTest, ScoreHierarchyHolds) {
    const GapPenalty gap = GetParam();
    const ScoreMatrix m = ScoreMatrix::blosum62();
    for (const Pair& p : random_pairs()) {
        const Score local = sw_score_affine(p.a, p.b, m, gap);
        const Score over = overlap_align(p.a, p.b, m, gap).score;
        const Score global = nw_align_affine(p.a, p.b, m, gap).score;

        // Each model is a restriction of the one above it.
        EXPECT_GE(local, over);
        EXPECT_GE(over, global);

        // Band restricts the local search space.
        EXPECT_GE(local, sw_score_banded(p.a, p.b, m, gap, 0, 3));
    }
}

TEST_P(AlignerFamilyTest, EquivalentImplementationsAgree) {
    const GapPenalty gap = GetParam();
    const ScoreMatrix m = ScoreMatrix::blosum62();
    for (const Pair& p : random_pairs()) {
        const Score local = sw_score_affine(p.a, p.b, m, gap);

        const StripedAligner striped(p.a, m, gap);
        EXPECT_EQ(striped.score(p.b), local);

        EXPECT_EQ(sw_align_affine(p.a, p.b, m, gap).score, local);
        EXPECT_EQ(sw_align_affine_lowmem(p.a, p.b, m, gap).score, local);
        EXPECT_EQ(sw_score_banded(p.a, p.b, m, gap, 0,
                                  full_band_width(p.a.size(), p.b.size())),
                  local);

        const Score global = nw_align_affine(p.a, p.b, m, gap).score;
        EXPECT_EQ(nw_align_affine_linear(p.a, p.b, m, gap).score, global);
    }
}

TEST_P(AlignerFamilyTest, SelfAlignmentIsTheCeiling) {
    const GapPenalty gap = GetParam();
    const ScoreMatrix m = ScoreMatrix::blosum62();
    Rng rng(0xCE11);
    for (int i = 0; i < 10; ++i) {
        const auto a = db::random_protein(rng, 10 + rng.below(60)).residues;
        Score self = 0;
        for (const Code c : a) self += m.at(c, c);
        // Self alignment achieves the diagonal sum everywhere in the
        // family, and no other subject can beat it.
        EXPECT_EQ(sw_score_affine(a, a, m, gap), self);
        EXPECT_EQ(nw_align_affine(a, a, m, gap).score, self);
        EXPECT_EQ(overlap_align(a, a, m, gap).score, self);
        const auto other =
            db::random_protein(rng, 10 + rng.below(60)).residues;
        EXPECT_LE(sw_score_affine(a, other, m, gap), self);
    }
}

}  // namespace
}  // namespace swh::align

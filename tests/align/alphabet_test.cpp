#include "align/alphabet.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace swh::align {
namespace {

TEST(Alphabet, ProteinBasics) {
    const Alphabet& p = Alphabet::protein();
    EXPECT_EQ(p.size(), 24u);
    EXPECT_EQ(p.symbols(), "ARNDCQEGHILKMFPSTWYVBZX*");
    EXPECT_EQ(p.encode('A'), 0);
    EXPECT_EQ(p.encode('a'), 0);
    EXPECT_EQ(p.encode('R'), 1);
    EXPECT_EQ(p.decode(0), 'A');
    EXPECT_EQ(p.decode(p.wildcard()), 'X');
}

TEST(Alphabet, UnknownMapsToWildcard) {
    const Alphabet& p = Alphabet::protein();
    EXPECT_EQ(p.encode('7'), p.wildcard());
    EXPECT_EQ(p.encode(' '), p.wildcard());
    EXPECT_FALSE(p.contains('7'));
}

TEST(Alphabet, ProteinAliases) {
    const Alphabet& p = Alphabet::protein();
    EXPECT_EQ(p.encode('J'), p.encode('L'));  // Leu/Ile ambiguity
    EXPECT_EQ(p.encode('U'), p.encode('C'));  // selenocysteine
    EXPECT_EQ(p.encode('O'), p.encode('K'));  // pyrrolysine
    EXPECT_TRUE(p.contains('J'));
}

TEST(Alphabet, DnaAcceptsUracil) {
    const Alphabet& d = Alphabet::dna();
    EXPECT_EQ(d.encode('U'), d.encode('T'));
    EXPECT_EQ(d.encode('u'), d.encode('T'));
    EXPECT_EQ(d.encode('N'), d.wildcard());
}

TEST(Alphabet, RnaAcceptsThymine) {
    const Alphabet& r = Alphabet::rna();
    EXPECT_EQ(r.encode('T'), r.encode('U'));
}

TEST(Alphabet, RoundTrip) {
    const Alphabet& p = Alphabet::protein();
    const std::string s = "MKVLAW";
    EXPECT_EQ(p.decode(p.encode(s)), s);
}

TEST(Alphabet, EncodeStringHandlesCase) {
    const Alphabet& d = Alphabet::dna();
    const auto codes = d.encode("acgt");
    EXPECT_EQ(d.decode(codes), "ACGT");
}

TEST(Alphabet, DecodeRejectsOutOfRange) {
    EXPECT_THROW(Alphabet::dna().decode(200), ContractError);
}

}  // namespace
}  // namespace swh::align

#include "align/score_matrix.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "util/error.hpp"

namespace swh::align {
namespace {

TEST(Blosum62, KnownValues) {
    const ScoreMatrix m = ScoreMatrix::blosum62();
    EXPECT_EQ(m.score('A', 'A'), 4);
    EXPECT_EQ(m.score('W', 'W'), 11);
    EXPECT_EQ(m.score('W', 'A'), -3);
    EXPECT_EQ(m.score('E', 'D'), 2);
    EXPECT_EQ(m.score('C', 'C'), 9);
    EXPECT_EQ(m.score('A', 'R'), -1);
    EXPECT_EQ(m.score('*', '*'), 1);
    EXPECT_EQ(m.score('X', 'X'), -1);
}

TEST(Blosum62, IsSymmetric) {
    EXPECT_TRUE(ScoreMatrix::blosum62().is_symmetric());
}

TEST(Blosum62, Extrema) {
    const ScoreMatrix m = ScoreMatrix::blosum62();
    EXPECT_EQ(m.max_score(), 11);  // W/W
    EXPECT_EQ(m.min_score(), -4);
    EXPECT_EQ(m.bias(), 4);
}

TEST(MatchMismatch, Values) {
    const ScoreMatrix m =
        ScoreMatrix::match_mismatch(Alphabet::dna(), 1, -1, 0);
    EXPECT_EQ(m.score('A', 'A'), 1);
    EXPECT_EQ(m.score('A', 'C'), -1);
    EXPECT_EQ(m.score('A', 'N'), 0);
    EXPECT_EQ(m.score('N', 'N'), 0);
    EXPECT_TRUE(m.is_symmetric());
}

TEST(ScoreMatrix, SetRejectsNonInt8) {
    ScoreMatrix m(Alphabet::dna(), "t");
    EXPECT_THROW(m.set(0, 0, 200), ContractError);
    EXPECT_THROW(m.set(0, 0, -200), ContractError);
}

TEST(ScoreMatrix, NcbiStreamRoundTrip) {
    // Serialise a small matrix by hand and parse it back.
    std::istringstream in(
        "# comment line\n"
        "   A  C  G  T  N\n"
        "A  2 -1 -1 -1  0\n"
        "C -1  2 -1 -1  0\n"
        "G -1 -1  2 -1  0\n"
        "T -1 -1 -1  2  0\n"
        "N  0  0  0  0  0\n");
    const ScoreMatrix m =
        ScoreMatrix::from_ncbi_stream(Alphabet::dna(), in, "dna2");
    EXPECT_EQ(m.score('A', 'A'), 2);
    EXPECT_EQ(m.score('G', 'T'), -1);
    EXPECT_EQ(m.score('N', 'A'), 0);
    EXPECT_TRUE(m.is_symmetric());
}

TEST(ScoreMatrix, NcbiStringRoundTripsBlosum62) {
    const ScoreMatrix original = ScoreMatrix::blosum62();
    std::istringstream in(original.to_ncbi_string());
    const ScoreMatrix back =
        ScoreMatrix::from_ncbi_stream(Alphabet::protein(), in, "back");
    for (Code a = 0; a < 24; ++a) {
        for (Code b = 0; b < 24; ++b) {
            ASSERT_EQ(back.at(a, b), original.at(a, b))
                << int(a) << "," << int(b);
        }
    }
    EXPECT_EQ(back.min_score(), original.min_score());
    EXPECT_EQ(back.max_score(), original.max_score());
}

TEST(ScoreMatrix, NcbiStreamRejectsBadRow) {
    std::istringstream in(
        "A C\n"
        "A 1\n");  // missing one column
    EXPECT_THROW(
        ScoreMatrix::from_ncbi_stream(Alphabet::dna(), in, "bad"),
        ContractError);
}

TEST(ScoreMatrix, NcbiStreamRejectsEmpty) {
    std::istringstream in("# nothing\n");
    EXPECT_THROW(
        ScoreMatrix::from_ncbi_stream(Alphabet::dna(), in, "empty"),
        ContractError);
}

TEST(ScoreMatrix, NcbiStreamRejectsNonNumeric) {
    std::istringstream in(
        "A C\n"
        "A 1 x\n"
        "C x 1\n");
    EXPECT_THROW(
        ScoreMatrix::from_ncbi_stream(Alphabet::dna(), in, "nn"),
        ParseError);
}

}  // namespace
}  // namespace swh::align

#include "align/banded.hpp"

#include <gtest/gtest.h>

#include "align/sw_scalar.hpp"
#include "db/generator.hpp"
#include "util/rng.hpp"

namespace swh::align {
namespace {

const ScoreMatrix& blosum() {
    static const ScoreMatrix m = ScoreMatrix::blosum62();
    return m;
}

TEST(Banded, FullBandMatchesOracle) {
    Rng rng(51);
    for (int iter = 0; iter < 30; ++iter) {
        const auto a = db::random_protein(rng, 1 + rng.below(80)).residues;
        const auto b = db::random_protein(rng, 1 + rng.below(80)).residues;
        const Score full = sw_score_affine(a, b, blosum(), {10, 2});
        const Score banded = sw_score_banded(
            a, b, blosum(), {10, 2}, 0,
            full_band_width(a.size(), b.size()));
        EXPECT_EQ(banded, full) << "iter " << iter;
    }
}

TEST(Banded, NeverExceedsUnbanded) {
    Rng rng(53);
    for (int iter = 0; iter < 30; ++iter) {
        const auto a = db::random_protein(rng, 40).residues;
        const auto b = db::random_protein(rng, 40).residues;
        const Score full = sw_score_affine(a, b, blosum(), {10, 2});
        for (const std::size_t w : {0u, 2u, 5u, 10u}) {
            EXPECT_LE(sw_score_banded(a, b, blosum(), {10, 2}, 0, w), full)
                << "iter " << iter << " width " << w;
        }
    }
}

TEST(Banded, MonotoneInWidth) {
    Rng rng(55);
    const auto a = db::random_protein(rng, 60).residues;
    const auto b = db::random_protein(rng, 60).residues;
    Score prev = 0;
    for (const std::size_t w : {0u, 1u, 2u, 4u, 8u, 16u, 32u, 120u}) {
        const Score s = sw_score_banded(a, b, blosum(), {10, 2}, 0, w);
        EXPECT_GE(s, prev) << "width " << w;
        prev = s;
    }
    EXPECT_EQ(prev, sw_score_affine(a, b, blosum(), {10, 2}));
}

TEST(Banded, FindsOnDiagonalHomology) {
    // Identical sequences: the optimum sits on the main diagonal, so
    // even width 0 recovers the full self-score.
    Rng rng(57);
    const auto a = db::random_protein(rng, 100).residues;
    Score self = 0;
    for (const Code c : a) self += blosum().at(c, c);
    EXPECT_EQ(sw_score_banded(a, a, blosum(), {10, 2}, 0, 0), self);
}

TEST(Banded, DiagShiftRelocatesTheBand) {
    // Plant the query at offset 50 in the subject: the optimum lives on
    // diagonal j - i = 50.
    Rng rng(59);
    const auto q = db::random_protein(rng, 40).residues;
    auto subj = db::random_protein(rng, 50).residues;
    subj.insert(subj.end(), q.begin(), q.end());
    Score self = 0;
    for (const Code c : q) self += blosum().at(c, c);
    // Band around the wrong diagonal misses it...
    EXPECT_LT(sw_score_banded(q, subj, blosum(), {10, 2}, 0, 5), self);
    // ...around the right one nails it.
    EXPECT_EQ(sw_score_banded(q, subj, blosum(), {10, 2}, 50, 5), self);
}

TEST(Banded, BandOffMatrixGivesZero) {
    Rng rng(61);
    const auto a = db::random_protein(rng, 20).residues;
    const auto b = db::random_protein(rng, 20).residues;
    EXPECT_EQ(sw_score_banded(a, b, blosum(), {10, 2}, 1000, 2), 0);
}

TEST(Banded, EmptyInputs) {
    const std::vector<Code> empty;
    const auto a = Alphabet::protein().encode("MKV");
    EXPECT_EQ(sw_score_banded(empty, a, blosum(), {10, 2}, 0, 5), 0);
    EXPECT_EQ(sw_score_banded(a, empty, blosum(), {10, 2}, 0, 5), 0);
}

TEST(Banded, GappedOptimumWithinBand) {
    // Subject = query with a small insertion; a band of width >= the
    // indel size recovers the full gapped score.
    Rng rng(63);
    const auto q = db::random_protein(rng, 60).residues;
    auto subj = q;
    const auto ins = db::random_protein(rng, 3).residues;
    subj.insert(subj.begin() + 30, ins.begin(), ins.end());
    const Score full = sw_score_affine(q, subj, blosum(), {10, 2});
    EXPECT_EQ(sw_score_banded(q, subj, blosum(), {10, 2}, 0, 4), full);
}

}  // namespace
}  // namespace swh::align

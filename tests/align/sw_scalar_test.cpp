#include "align/sw_scalar.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

#include "db/generator.hpp"
#include "util/rng.hpp"

namespace swh::align {
namespace {

const ScoreMatrix& dna_matrix() {
    static const ScoreMatrix m =
        ScoreMatrix::match_mismatch(Alphabet::dna(), 1, -1, 0);
    return m;
}

std::vector<Code> dna(const char* s) { return Alphabet::dna().encode(s); }
std::vector<Code> prot(const char* s) {
    return Alphabet::protein().encode(s);
}

// The paper's Fig. 2: SW similarity matrix between GCTGACCT (rows) and
// GAAGCTA (columns) with ma=+1, mi=-1, g=-2; optimal local score is 3
// (the common prefix run G-C-T).
TEST(SwLinear, PaperFigure2Score) {
    const auto s = dna("GCTGACCT");
    const auto t = dna("GAAGCTA");
    EXPECT_EQ(sw_score_linear(s, t, dna_matrix(), 2), 3);
}

TEST(SwLinear, MatrixMatchesLowMemScore) {
    const auto s = dna("GCTGACCT");
    const auto t = dna("GAAGCTA");
    const DpMatrix dp = sw_matrix_linear(s, t, dna_matrix(), 2);
    EXPECT_EQ(dp.rows, s.size() + 1);
    EXPECT_EQ(dp.cols, t.size() + 1);
    Score best = 0;
    for (const Score v : dp.h) best = std::max(best, v);
    EXPECT_EQ(best, 3);
    // Boundary row/column must stay zero.
    for (std::size_t j = 0; j < dp.cols; ++j) EXPECT_EQ(dp.at(0, j), 0);
    for (std::size_t i = 0; i < dp.rows; ++i) EXPECT_EQ(dp.at(i, 0), 0);
}

TEST(SwLinear, EmptySequences) {
    const auto s = dna("ACGT");
    const std::vector<Code> empty;
    EXPECT_EQ(sw_score_linear(s, empty, dna_matrix(), 2), 0);
    EXPECT_EQ(sw_score_linear(empty, s, dna_matrix(), 2), 0);
    EXPECT_EQ(sw_score_linear(empty, empty, dna_matrix(), 2), 0);
}

TEST(SwLinear, IdenticalSequences) {
    const auto s = dna("ACGTACGT");
    EXPECT_EQ(sw_score_linear(s, s, dna_matrix(), 2), 8);
}

TEST(SwLinear, NoSimilarity) {
    const auto s = dna("AAAA");
    const auto t = dna("CCCC");
    EXPECT_EQ(sw_score_linear(s, t, dna_matrix(), 2), 0);
}

TEST(SwAffine, IdenticalProteins) {
    const ScoreMatrix m = ScoreMatrix::blosum62();
    const auto s = prot("MKVLAWHEQ");
    Score self = 0;
    for (const Code c : s) self += m.at(c, c);
    EXPECT_EQ(sw_score_affine(s, s, m, {10, 2}), self);
}

TEST(SwAffine, LocalScoreNeverNegative) {
    const ScoreMatrix m = ScoreMatrix::blosum62();
    const auto s = prot("WWWW");
    const auto t = prot("PPPP");
    EXPECT_EQ(sw_score_affine(s, t, m, {10, 2}), 0);
}

TEST(SwAffine, GapCheaperThanDoubleMismatch) {
    // ACGTT vs ACTT: best is ACGTT / AC-TT with one gap:
    // 4 matches - (open+ext) = 4 - 3 = 1 ... vs alignment without gap
    // ACGT/ACTT = 3 - 1 = 2. With gap open 0 the gapped one wins.
    const auto s = dna("ACGTT");
    const auto t = dna("ACTT");
    EXPECT_EQ(sw_score_affine(s, t, dna_matrix(), {0, 1}), 3);  // 4 - 1
    EXPECT_EQ(sw_score_affine(s, t, dna_matrix(), {5, 1}), 2);  // ungapped
}

TEST(SwAffine, GapVersusMismatchTradeoff) {
    // s = AAAACCAAAA vs t = AAAAAAAA. Candidate optima: skip the CC with
    // one 2-gap (8 matches - open - 2*ext), or align an 8-window with two
    // mismatches (6 - 2 = 4).
    const auto s = dna("AAAACCAAAA");
    const auto t = dna("AAAAAAAA");
    // Cheap open: the single long gap wins: 8 - (1 + 2) = 5.
    EXPECT_EQ(sw_score_affine(s, t, dna_matrix(), {1, 1}), 5);
    // Expensive open: gaps are hopeless; mismatch alignment wins with 4.
    EXPECT_EQ(sw_score_affine(s, t, dna_matrix(), {10, 1}), 4);
}

TEST(SwAffine, MatchesLinearWhenOpenIsZero) {
    // affine(open=0, ext=g) == linear(g) for all inputs.
    Rng rng(321);
    const ScoreMatrix m = ScoreMatrix::blosum62();
    for (int iter = 0; iter < 40; ++iter) {
        const auto a =
            db::random_protein(rng, 1 + rng.below(60)).residues;
        const auto b =
            db::random_protein(rng, 1 + rng.below(60)).residues;
        const Score g = static_cast<Score>(1 + rng.below(4));
        EXPECT_EQ(sw_score_affine(a, b, m, {0, g}),
                  sw_score_linear(a, b, m, g))
            << "iter " << iter;
    }
}

TEST(SwAffine, SymmetricArguments) {
    // SW score is symmetric for a symmetric matrix.
    Rng rng(99);
    const ScoreMatrix m = ScoreMatrix::blosum62();
    for (int iter = 0; iter < 20; ++iter) {
        const auto a = db::random_protein(rng, 1 + rng.below(80)).residues;
        const auto b = db::random_protein(rng, 1 + rng.below(80)).residues;
        EXPECT_EQ(sw_score_affine(a, b, m, {10, 2}),
                  sw_score_affine(b, a, m, {10, 2}));
    }
}

TEST(SwAffine, MonotoneInGapPenalty) {
    Rng rng(7);
    const ScoreMatrix m = ScoreMatrix::blosum62();
    for (int iter = 0; iter < 20; ++iter) {
        const auto a = db::random_protein(rng, 30).residues;
        const auto b = db::random_protein(rng, 30).residues;
        const Score cheap = sw_score_affine(a, b, m, {2, 1});
        const Score dear = sw_score_affine(a, b, m, {12, 3});
        EXPECT_GE(cheap, dear);
    }
}

TEST(SwEnd, ReportsEndOfBestAlignment) {
    // Plant an exact copy of the query inside a random subject.
    Rng rng(5);
    const ScoreMatrix m = ScoreMatrix::blosum62();
    const auto query = db::random_protein(rng, 25).residues;
    auto subject = db::random_protein(rng, 40).residues;
    subject.insert(subject.begin() + 10, query.begin(), query.end());
    const LocalEnd end = sw_end_affine(query, subject, m, {10, 2});
    Score self = 0;
    for (const Code c : query) self += m.at(c, c);
    EXPECT_EQ(end.score, self);
    EXPECT_EQ(end.s_end, query.size() - 1);
    EXPECT_EQ(end.t_end, 10 + query.size() - 1);
}

TEST(SwAffine, RejectsNegativePenalties) {
    const auto s = dna("ACGT");
    EXPECT_THROW(sw_score_affine(s, s, dna_matrix(), {-1, 2}),
                 ContractError);
    EXPECT_THROW(sw_score_linear(s, s, dna_matrix(), -2), ContractError);
}

}  // namespace
}  // namespace swh::align

// Golden equivalence of the three-stage funnel scan (ungapped prefilter
// + exact rescore) against the exhaustive scan: the surviving top-k
// must be BIT-identical for every ISA level this host supports, every
// k, and the adversarial shapes that stress the threshold policy —
// all-identical scores, ties exactly at the threshold, empty and tiny
// databases, k larger than the database — plus a concurrency test with
// cohort-mode claiming and a shared rising threshold.
//
// The suite name starts with "DatabaseScanner" so the CI TSan job's
// test filter picks it up alongside the plain scanner suite.

#include "align/db_scan.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "db/database.hpp"
#include "db/packed.hpp"
#include "db/presets.hpp"
#include "engines/topk.hpp"
#include "util/rng.hpp"

namespace swh::align {
namespace {

const ScoreMatrix& blosum() {
    static const ScoreMatrix m = ScoreMatrix::blosum62();
    return m;
}

constexpr GapPenalty kGap{10, 2};

std::vector<simd::IsaLevel> supported_levels() {
    std::vector<simd::IsaLevel> levels;
    for (const simd::IsaLevel isa :
         {simd::IsaLevel::Scalar, simd::IsaLevel::SSE2, simd::IsaLevel::AVX2,
          simd::IsaLevel::AVX512}) {
        if (simd::is_supported(isa)) levels.push_back(isa);
    }
    return levels;
}

/// Exhaustive oracle: cohort-mode scan with the prefilter unarmed,
/// every score routed through the same TopK policy the funnel uses.
std::vector<core::Hit> exhaustive_topk(const StripedAligner& aligner,
                                       const db::Database& database,
                                       std::size_t k) {
    const db::PackedDatabase& packed = database.packed();
    DatabaseScanner scanner(
        aligner, packed.view(), DatabaseScanner::kDefaultChunk,
        packed.interleaved(lanes_u8(aligner.isa())).view());
    engines::TopK topk(k);
    ScanScratch scratch;
    EXPECT_TRUE(scanner.run_worker(
        scratch, [&](std::uint32_t idx, std::uint32_t, Score s) {
            topk.add(idx, s);
            return true;
        }));
    return topk.take();
}

struct FunnelRun {
    std::vector<core::Hit> hits;
    DatabaseScanner::FilterStats filter;
    DatabaseScanner::DispatchStats dispatch;
    std::uint64_t emitted = 0;
    std::uint64_t pruned_calls = 0;
};

/// Funnel scan: prefilter armed with the running k-th best fed back
/// through a CAS-max, exactly like engines::CpuEngine does.
FunnelRun funnel_topk(const StripedAligner& aligner,
                      const db::Database& database, std::size_t k) {
    const db::PackedDatabase& packed = database.packed();
    std::atomic<Score> tau{engines::TopK::kNoThreshold};
    DatabaseScanner scanner(
        aligner, packed.view(), DatabaseScanner::kDefaultChunk,
        packed.interleaved(lanes_u8(aligner.isa())).view(), &tau);
    engines::TopK topk(k);
    FunnelRun run;
    ScanScratch scratch;
    EXPECT_TRUE(scanner.run_worker(
        scratch,
        [&](std::uint32_t idx, std::uint32_t, Score s) {
            topk.add(idx, s);
            ++run.emitted;
            const Score kth = topk.kth_score();
            Score cur = tau.load(std::memory_order_relaxed);
            while (kth > cur && !tau.compare_exchange_weak(
                                    cur, kth, std::memory_order_relaxed)) {
            }
            return true;
        },
        [&](std::uint32_t, std::uint32_t) {
            ++run.pruned_calls;
            return true;
        }));
    run.hits = topk.take();
    run.filter = scanner.filter_stats();
    run.dispatch = scanner.dispatch_stats();
    return run;
}

void expect_same_hits(const std::vector<core::Hit>& got,
                      const std::vector<core::Hit>& want,
                      const std::string& label) {
    ASSERT_EQ(got.size(), want.size()) << label;
    for (std::size_t i = 0; i < want.size(); ++i) {
        EXPECT_EQ(got[i].db_index, want[i].db_index)
            << label << " rank " << i;
        EXPECT_EQ(got[i].score, want[i].score) << label << " rank " << i;
    }
}

TEST(DatabaseScannerFunnel, TopKBitIdenticalAcrossIsaLevelsAndK) {
    // Planted-family database: background noise plus homologs of the
    // query, the shape the funnel is built for — the family feeds the
    // threshold and the background gets pruned.
    const db::ScanSample sample = db::make_scan_sample(300, {100});
    std::uint64_t total_pruned = 0;
    for (const simd::IsaLevel isa : supported_levels()) {
        const StripedAligner aligner(sample.queries[0].residues, blosum(),
                                     kGap, isa);
        for (const std::size_t k : {std::size_t{1}, std::size_t{10},
                                    std::size_t{100}}) {
            const std::vector<core::Hit> want =
                exhaustive_topk(aligner, sample.database, k);
            ASSERT_EQ(want.size(), k);
            const FunnelRun run = funnel_topk(aligner, sample.database, k);
            expect_same_hits(run.hits, want,
                             "isa=" + std::string(simd::to_string(isa)) +
                                 " k=" + std::to_string(k));
            // Accounting: every subject is either settled or reported
            // pruned, exactly once.
            EXPECT_EQ(run.emitted + run.pruned_calls,
                      sample.database.size());
            EXPECT_EQ(run.pruned_calls, run.filter.subjects_pruned);
            total_pruned += run.filter.subjects_pruned;
        }
    }
    // The funnel must actually funnel on this workload, not just match.
    EXPECT_GT(total_pruned, 0u);
}

TEST(DatabaseScannerFunnel, LongQueryTiledRepackBitIdentical) {
    // A multi-tile query (4+ tiles of kInterseqTileRows) drives the
    // query-tiled inter-sequence kernels, and the armed prefilter's
    // surviving lanes go through the compaction re-pack instead of the
    // striped fallback. Both paths must keep the funnel's bit-identity
    // promise — and must actually be exercised, not silently skipped.
    const std::size_t qlen = 4 * kInterseqTileRows + 53;
    const db::ScanSample sample = db::make_scan_sample(300, {qlen});
    // Coverage is asserted in aggregate: at wide lane counts a 300-
    // sequence database is legitimately too ragged for the full-width
    // fill bar (all-striped is the right economic call there), but the
    // narrower levels must prove the tiled and re-pack paths ran.
    std::uint64_t tiled_cohorts = 0, repack_or_striped = 0, pruned = 0;
    for (const simd::IsaLevel isa : supported_levels()) {
        const StripedAligner aligner(sample.queries[0].residues, blosum(),
                                     kGap, isa);
        for (const std::size_t k : {std::size_t{1}, std::size_t{25}}) {
            const std::vector<core::Hit> want =
                exhaustive_topk(aligner, sample.database, k);
            ASSERT_EQ(want.size(), k);
            const FunnelRun run = funnel_topk(aligner, sample.database, k);
            expect_same_hits(run.hits, want,
                             "isa=" + std::string(simd::to_string(isa)) +
                                 " k=" + std::to_string(k));
            EXPECT_EQ(run.emitted + run.pruned_calls,
                      sample.database.size());
            EXPECT_EQ(run.pruned_calls, run.filter.subjects_pruned);
            // Every subject settles on exactly one of the three paths
            // or is pruned — no double counting, no loss.
            EXPECT_EQ(run.dispatch.subjects_interseq +
                          run.dispatch.subjects_compacted +
                          run.dispatch.subjects_striped +
                          run.filter.subjects_pruned,
                      sample.database.size());
            // A long query must never disable interseq by length
            // alone: any cohort the scan ran on the inter-sequence
            // kernels must have been tiled.
            EXPECT_EQ(run.dispatch.cohorts_tiled,
                      run.dispatch.cohorts_interseq);
            tiled_cohorts += run.dispatch.cohorts_tiled;
            repack_or_striped +=
                run.dispatch.repacks + run.dispatch.subjects_striped;
            pruned += run.filter.subjects_pruned;
        }
    }
    EXPECT_GT(tiled_cohorts, 0u);
    EXPECT_GT(pruned, 0u);
    // Thinned-out survivor cohorts went through the re-pack (or, for
    // sub-bar remainders, per-subject striped) instead of being masked.
    EXPECT_GT(repack_or_striped, 0u);
}

TEST(DatabaseScannerFunnel, AllIdenticalScoresKeepEveryTie) {
    // Every subject is the same sequence, so every exact score ties the
    // threshold exactly. The strict-inequality prune policy must keep
    // them all: the top-k is then decided purely by the db_index
    // tie-break, identical to the exhaustive scan.
    Rng rng(307);
    const Sequence s = db::random_protein(rng, 60, "twin");
    std::vector<Sequence> seqs(130, s);
    const db::Database database("twins", std::move(seqs));
    const Sequence q = db::random_protein(rng, 70, "q");

    for (const simd::IsaLevel isa : supported_levels()) {
        const StripedAligner aligner(q.residues, blosum(), kGap, isa);
        for (const std::size_t k : {std::size_t{1}, std::size_t{10}}) {
            const std::vector<core::Hit> want =
                exhaustive_topk(aligner, database, k);
            const FunnelRun run = funnel_topk(aligner, database, k);
            expect_same_hits(run.hits, want, "twins k=" + std::to_string(k));
            // Nothing scores strictly below the threshold, so nothing
            // may be pruned.
            EXPECT_EQ(run.filter.subjects_pruned, 0u);
            EXPECT_EQ(run.emitted, database.size());
            for (std::size_t i = 0; i < run.hits.size(); ++i) {
                EXPECT_EQ(run.hits[i].db_index, i);  // index tie-break
            }
        }
    }
}

TEST(DatabaseScannerFunnel, TiesAtThresholdSurviveAmongBackground) {
    // Two planted twins tie at the exact top score over a pruned
    // background with k = 2: the second twin arrives when the
    // threshold already equals its score, so a non-strict prune would
    // drop it.
    db::DatabaseSpec spec;
    spec.name = "ties";
    spec.num_sequences = 200;
    spec.length.min_len = 30;
    spec.length.max_len = 90;
    spec.seed = 311;
    auto seqs = db::generate_database(spec);
    Rng rng(313);
    const Sequence q = db::random_protein(rng, 64, "q");
    Sequence twin = q;
    twin.id = "twin-a";
    seqs.insert(seqs.begin() + 11, twin);
    twin.id = "twin-b";
    seqs.insert(seqs.begin() + 171, twin);
    const db::Database database("ties", std::move(seqs));

    for (const simd::IsaLevel isa : supported_levels()) {
        const StripedAligner aligner(q.residues, blosum(), kGap, isa);
        const std::vector<core::Hit> want =
            exhaustive_topk(aligner, database, 2);
        EXPECT_EQ(want[0].score, want[1].score);
        EXPECT_EQ(want[0].db_index, 11u);
        EXPECT_EQ(want[1].db_index, 171u);
        const FunnelRun run = funnel_topk(aligner, database, 2);
        expect_same_hits(run.hits, want,
                         "isa=" + std::string(simd::to_string(isa)));
    }
}

TEST(DatabaseScannerFunnel, EmptyAndTinyDatabases) {
    Rng rng(317);
    const Sequence q = db::random_protein(rng, 50, "q");
    const StripedAligner aligner(q.residues, blosum(), kGap);

    const db::Database empty("empty", {});
    const FunnelRun none = funnel_topk(aligner, empty, 10);
    EXPECT_TRUE(none.hits.empty());
    EXPECT_EQ(none.emitted, 0u);
    EXPECT_EQ(none.pruned_calls, 0u);

    // k exceeds the database: the threshold never materializes
    // (kth_score stays kNoThreshold), so nothing may be pruned and all
    // subjects are returned.
    std::vector<Sequence> few;
    for (int i = 0; i < 5; ++i) {
        few.push_back(db::random_protein(rng, 20 + i * 13, "t"));
    }
    const db::Database tiny("tiny", std::move(few));
    const std::vector<core::Hit> want = exhaustive_topk(aligner, tiny, 100);
    EXPECT_EQ(want.size(), tiny.size());
    const FunnelRun run = funnel_topk(aligner, tiny, 100);
    expect_same_hits(run.hits, want, "tiny");
    EXPECT_EQ(run.filter.subjects_pruned, 0u);
    EXPECT_EQ(run.emitted, tiny.size());
}

TEST(DatabaseScannerFunnel, ThresholdWithoutCohortsIsInert) {
    // A threshold feed without a cohort layout cannot arm the
    // prefilter (the ungapped kernels share the cohort geometry);
    // the scan must degrade to the plain exhaustive two-pass.
    const db::ScanSample sample = db::make_scan_sample(120, {80});
    const StripedAligner aligner(sample.queries[0].residues, blosum(), kGap);
    const db::PackedDatabase& packed = sample.database.packed();
    std::atomic<Score> tau{1000000};  // would prune everything if armed
    DatabaseScanner scanner(aligner, packed.view(),
                            DatabaseScanner::kDefaultChunk, {}, &tau);
    EXPECT_FALSE(scanner.prefilter_armed());
    engines::TopK topk(10);
    ScanScratch scratch;
    std::uint64_t emitted = 0;
    EXPECT_TRUE(scanner.run_worker(
        scratch, [&](std::uint32_t idx, std::uint32_t, Score s) {
            topk.add(idx, s);
            ++emitted;
            return true;
        }));
    EXPECT_EQ(emitted, sample.database.size());
    EXPECT_EQ(scanner.filter_stats().cohorts_filtered, 0u);
    expect_same_hits(topk.take(),
                     exhaustive_topk(aligner, sample.database, 10),
                     "inert threshold");
}

TEST(DatabaseScannerFunnel, ConcurrentWorkersBitIdentical) {
    // Four workers claim cohorts from the shared cursor and race the
    // rising threshold; per-worker collectors merge at the end. The
    // worker-local k-th best published through the shared CAS-max is a
    // sound global threshold, so the merged top-k must still be
    // bit-identical to the exhaustive oracle.
    const db::ScanSample sample = db::make_scan_sample(400, {120});
    const StripedAligner aligner(sample.queries[0].residues, blosum(), kGap);
    const std::vector<core::Hit> want =
        exhaustive_topk(aligner, sample.database, 10);

    for (int round = 0; round < 3; ++round) {
        const db::PackedDatabase& packed = sample.database.packed();
        std::atomic<Score> tau{engines::TopK::kNoThreshold};
        DatabaseScanner scanner(
            aligner, packed.view(), /*chunk=*/64,
            packed.interleaved(lanes_u8(aligner.isa())).view(), &tau);
        constexpr int kWorkers = 4;
        std::vector<engines::TopK> collectors(kWorkers, engines::TopK(10));
        std::atomic<std::uint64_t> settled{0};
        std::atomic<std::uint64_t> pruned{0};
        std::vector<std::thread> workers;
        for (int w = 0; w < kWorkers; ++w) {
            workers.emplace_back([&, w] {
                ScanScratch scratch;
                scanner.run_worker(
                    scratch,
                    [&](std::uint32_t idx, std::uint32_t, Score s) {
                        collectors[static_cast<std::size_t>(w)].add(idx, s);
                        settled.fetch_add(1, std::memory_order_relaxed);
                        const Score kth =
                            collectors[static_cast<std::size_t>(w)]
                                .kth_score();
                        Score cur = tau.load(std::memory_order_relaxed);
                        while (kth > cur &&
                               !tau.compare_exchange_weak(
                                   cur, kth, std::memory_order_relaxed)) {
                        }
                        return true;
                    },
                    [&](std::uint32_t, std::uint32_t) {
                        pruned.fetch_add(1, std::memory_order_relaxed);
                        return true;
                    });
            });
        }
        for (auto& t : workers) t.join();

        EXPECT_EQ(settled.load() + pruned.load(), sample.database.size());
        engines::TopK merged(10);
        for (auto& c : collectors) merged.merge(std::move(c));
        expect_same_hits(merged.take(), want,
                         "round " + std::to_string(round));
    }
}

}  // namespace
}  // namespace swh::align

// Golden equivalence of the query-tiled inter-sequence kernels. The
// tiled variants promise BIT-identical scores and overflow masks to
// the untiled kernels (and hence to the striped kernels and the scalar
// oracle): tiling changes the order cells are visited in, not the
// dataflow, and every op is per-cell saturating. The suite pins that
// promise down across every supported ISA, right at the tile
// boundaries (qlen one below / at / one above a tile multiple), with
// saturation that must be carried across tiles, and with carried-state
// reuse between calls.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "align/interseq.hpp"
#include "align/striped.hpp"
#include "align/sw_scalar.hpp"
#include "db/generator.hpp"
#include "util/rng.hpp"

namespace swh::align {
namespace {

const ScoreMatrix& blosum() {
    static const ScoreMatrix m = ScoreMatrix::blosum62();
    return m;
}

constexpr GapPenalty kGap{10, 2};

std::vector<simd::IsaLevel> supported_levels() {
    std::vector<simd::IsaLevel> levels;
    for (const simd::IsaLevel isa :
         {simd::IsaLevel::Scalar, simd::IsaLevel::SSE2, simd::IsaLevel::AVX2,
          simd::IsaLevel::AVX512}) {
        if (simd::is_supported(isa)) levels.push_back(isa);
    }
    return levels;
}

std::vector<Code> interleave(const std::vector<std::vector<Code>>& subjects,
                             int lanes, std::size_t columns) {
    std::vector<Code> cols(columns * static_cast<std::size_t>(lanes),
                           InterseqProfile::kPadCode);
    for (std::size_t l = 0; l < subjects.size(); ++l) {
        for (std::size_t j = 0; j < subjects[l].size(); ++j) {
            cols[j * static_cast<std::size_t>(lanes) + l] = subjects[l][j];
        }
    }
    return cols;
}

std::vector<std::vector<Code>> random_subjects(Rng& rng, std::size_t n,
                                               std::size_t min_len,
                                               std::size_t max_len) {
    std::vector<std::vector<Code>> subjects;
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t len = min_len + rng.below(max_len - min_len + 1);
        subjects.push_back(
            db::random_protein(rng, len, "s" + std::to_string(i)).residues);
    }
    return subjects;
}

TEST(InterseqTileCount, BalancedTileBoundaries) {
    EXPECT_EQ(interseq_tile_count(0), 1u);
    EXPECT_EQ(interseq_tile_count(1), 1u);
    EXPECT_EQ(interseq_tile_count(kInterseqTileRows - 1), 1u);
    EXPECT_EQ(interseq_tile_count(kInterseqTileRows), 1u);
    EXPECT_EQ(interseq_tile_count(kInterseqTileRows + 1), 2u);
    EXPECT_EQ(interseq_tile_count(2 * kInterseqTileRows), 2u);
    EXPECT_EQ(interseq_tile_count(2 * kInterseqTileRows + 1), 3u);
    EXPECT_EQ(interseq_tile_count(4 * kInterseqTileRows + 7), 5u);
}

TEST(InterseqTiledKernels, U8BitIdenticalToUntiledAtTileBoundaries) {
    // One query row below, at, and above each tile boundary, plus a
    // multi-tile length with a ragged last tile: the carried H/F hand-
    // off is exercised with full, exactly-full, and barely-spilling
    // tiles. 2048 + 7 also covers the ISSUE's original boundary set.
    const std::size_t qlens[] = {
        kInterseqTileRows - 1,     kInterseqTileRows,
        kInterseqTileRows + 1,     2 * kInterseqTileRows,
        2 * kInterseqTileRows + 1, 2048 + 7};
    std::uint32_t seed = 211;
    for (const std::size_t qlen : qlens) {
        Rng rng(seed++);
        const std::vector<Code> q =
            db::random_protein(rng, qlen, "q").residues;
        const InterseqProfile prof = build_interseq_profile(q, blosum());

        for (const simd::IsaLevel isa : supported_levels()) {
            const int W = lanes_u8(isa);
            Rng srng(seed + static_cast<std::uint32_t>(W));
            const auto subjects = random_subjects(
                srng, static_cast<std::size_t>(W), 5, 180);
            std::size_t columns = 0;
            for (const auto& s : subjects) {
                columns = std::max(columns, s.size());
            }
            const std::vector<Code> cols = interleave(subjects, W, columns);

            ScanScratch scratch;
            std::uint8_t flat_best[64];
            const std::uint64_t flat_ovf = sw_interseq_u8(
                prof, cols.data(), columns, kGap, isa, scratch, flat_best);

            InterseqColumnState state;
            std::uint8_t tiled_best[64];
            const std::uint64_t tiled_ovf =
                sw_interseq_u8_tiled(prof, cols.data(), columns, kGap, isa,
                                     scratch, state, tiled_best);

            EXPECT_EQ(tiled_ovf, flat_ovf)
                << "isa=" << simd::to_string(isa) << " qlen=" << qlen;
            const Profile8 p8 = build_profile8(q, blosum(), W);
            for (int l = 0; l < W; ++l) {
                EXPECT_EQ(tiled_best[l], flat_best[l])
                    << "isa=" << simd::to_string(isa) << " qlen=" << qlen
                    << " lane=" << l;
                const StripedResult r =
                    sw_striped_u8(p8, subjects[l], kGap, isa);
                EXPECT_EQ(static_cast<Score>(tiled_best[l]), r.score)
                    << "isa=" << simd::to_string(isa) << " qlen=" << qlen
                    << " lane=" << l;
                EXPECT_EQ(((tiled_ovf >> l) & 1) != 0, r.overflow)
                    << "isa=" << simd::to_string(isa) << " qlen=" << qlen
                    << " lane=" << l;
            }
        }
    }
}

TEST(InterseqTiledKernels, U8SaturationCarriesAcrossTiles) {
    Rng rng(223);
    // A 3-tile self-match: the score climbs past u8 saturation well
    // before the final tile, so the saturated H rows — and the
    // overflow verdict — must survive the inter-tile hand-off.
    const std::size_t qlen = 2 * kInterseqTileRows + 100;
    const std::vector<Code> q = db::random_protein(rng, qlen, "q").residues;
    const InterseqProfile prof = build_interseq_profile(q, blosum());

    for (const simd::IsaLevel isa : supported_levels()) {
        const int W = lanes_u8(isa);
        std::vector<std::vector<Code>> subjects =
            random_subjects(rng, static_cast<std::size_t>(W), 30, 60);
        subjects[0] = q;  // planted overflow lane
        subjects[static_cast<std::size_t>(W) - 1] = q;
        std::size_t columns = 0;
        for (const auto& s : subjects) columns = std::max(columns, s.size());
        const std::vector<Code> cols = interleave(subjects, W, columns);

        ScanScratch scratch;
        InterseqColumnState state;
        std::uint8_t flat_best[64];
        std::uint8_t tiled_best[64];
        const std::uint64_t flat_ovf = sw_interseq_u8(
            prof, cols.data(), columns, kGap, isa, scratch, flat_best);
        const std::uint64_t tiled_ovf = sw_interseq_u8_tiled(
            prof, cols.data(), columns, kGap, isa, scratch, state,
            tiled_best);

        EXPECT_EQ(tiled_ovf, flat_ovf) << simd::to_string(isa);
        EXPECT_TRUE((tiled_ovf >> 0) & 1) << simd::to_string(isa);
        EXPECT_TRUE((tiled_ovf >> (W - 1)) & 1) << simd::to_string(isa);
        for (int l = 0; l < W; ++l) {
            EXPECT_EQ(tiled_best[l], flat_best[l])
                << "isa=" << simd::to_string(isa) << " lane=" << l;
        }
    }
}

TEST(InterseqTiledKernels, I16BitIdenticalToUntiledAndStriped) {
    Rng rng(227);
    // Wide-lane rescue path for long queries: i16 carried state is a
    // [lo,hi] half-vector pair per column, escalated consistently from
    // the u8 layout. One planted self-match lane saturates even i16 —
    // its self score is ~60 * qlen, so qlen must clear 32767 / 60
    // regardless of where the tile boundary sits.
    const std::size_t qlen =
        std::max<std::size_t>(2 * kInterseqTileRows + 31, 560);
    const std::vector<Code> q = db::random_protein(rng, qlen, "q").residues;
    const ScoreMatrix matrix =
        ScoreMatrix::match_mismatch(Alphabet::protein(), 60, -4);
    const InterseqProfile prof = build_interseq_profile(q, matrix);

    for (const simd::IsaLevel isa : supported_levels()) {
        const int W = lanes_u8(isa);
        std::vector<std::vector<Code>> subjects =
            random_subjects(rng, static_cast<std::size_t>(W), 100, 400);
        subjects[2] = q;  // saturates i16
        std::size_t columns = 0;
        for (const auto& s : subjects) columns = std::max(columns, s.size());
        const std::vector<Code> cols = interleave(subjects, W, columns);

        ScanScratch scratch;
        InterseqColumnState state;
        std::int16_t flat_best[64];
        std::int16_t tiled_best[64];
        const std::uint64_t flat_ovf = sw_interseq_i16(
            prof, cols.data(), columns, kGap, isa, scratch, flat_best);
        const std::uint64_t tiled_ovf = sw_interseq_i16_tiled(
            prof, cols.data(), columns, kGap, isa, scratch, state,
            tiled_best);

        EXPECT_EQ(tiled_ovf, flat_ovf) << simd::to_string(isa);
        const Profile16 p16 = build_profile16(q, matrix, lanes_i16(isa));
        bool any_overflow = false;
        for (int l = 0; l < W; ++l) {
            EXPECT_EQ(tiled_best[l], flat_best[l])
                << "isa=" << simd::to_string(isa) << " lane=" << l;
            const StripedResult r =
                sw_striped_i16(p16, subjects[l], kGap, isa);
            EXPECT_EQ(static_cast<Score>(tiled_best[l]), r.score)
                << "isa=" << simd::to_string(isa) << " lane=" << l;
            EXPECT_EQ(((tiled_ovf >> l) & 1) != 0, r.overflow)
                << "isa=" << simd::to_string(isa) << " lane=" << l;
            any_overflow |= r.overflow;
            if (!r.overflow) {
                EXPECT_EQ(static_cast<Score>(tiled_best[l]),
                          sw_score_affine(q, subjects[l], matrix, kGap));
            }
        }
        EXPECT_TRUE(any_overflow) << simd::to_string(isa);
    }
}

TEST(InterseqTiledKernels, I16LoHalfHintBitIdentical) {
    // The scanner's 8 -> 16 escalation batches often fill at most half
    // a cohort's lanes; the lanes_used hint then compiles out the
    // all-pad hi half-vectors. The used lanes' scores and overflow
    // bits must be bit-identical to the full-width kernel, untiled and
    // tiled, and the skipped lanes must report score 0.
    Rng rng(233);
    for (const std::size_t qlen :
         {kInterseqTileRows - 3, 2 * kInterseqTileRows + 77}) {
        const std::vector<Code> q =
            db::random_protein(rng, qlen, "q").residues;
        const InterseqProfile prof = build_interseq_profile(q, blosum());

        for (const simd::IsaLevel isa : supported_levels()) {
            const int W = lanes_u8(isa);
            const auto used = static_cast<std::size_t>(W) / 2;
            auto subjects = random_subjects(rng, used, 40, 300);
            subjects.resize(static_cast<std::size_t>(W));  // hi half pad
            std::size_t columns = 0;
            for (const auto& s : subjects) {
                columns = std::max(columns, s.size());
            }
            const std::vector<Code> cols = interleave(subjects, W, columns);

            ScanScratch scratch;
            InterseqColumnState state;
            std::int16_t full[64], lo[64];
            const std::uint64_t full_ovf = sw_interseq_i16(
                prof, cols.data(), columns, kGap, isa, scratch, full);
            const std::uint64_t lo_ovf =
                sw_interseq_i16(prof, cols.data(), columns, kGap, isa,
                                scratch, lo, used);
            EXPECT_EQ(lo_ovf, full_ovf)
                << "isa=" << simd::to_string(isa) << " qlen=" << qlen;
            for (int l = 0; l < W; ++l) {
                const std::int16_t want =
                    l < static_cast<int>(used) ? full[l] : std::int16_t{0};
                EXPECT_EQ(lo[l], want)
                    << "isa=" << simd::to_string(isa) << " qlen=" << qlen
                    << " lane=" << l;
            }

            std::int16_t tiled_full[64], tiled_lo[64];
            const std::uint64_t tf_ovf =
                sw_interseq_i16_tiled(prof, cols.data(), columns, kGap, isa,
                                      scratch, state, tiled_full);
            const std::uint64_t tl_ovf =
                sw_interseq_i16_tiled(prof, cols.data(), columns, kGap, isa,
                                      scratch, state, tiled_lo, used);
            EXPECT_EQ(tf_ovf, full_ovf)
                << "isa=" << simd::to_string(isa) << " qlen=" << qlen;
            EXPECT_EQ(tl_ovf, full_ovf)
                << "isa=" << simd::to_string(isa) << " qlen=" << qlen;
            for (int l = 0; l < W; ++l) {
                EXPECT_EQ(tiled_full[l], full[l])
                    << "isa=" << simd::to_string(isa) << " qlen=" << qlen
                    << " lane=" << l;
                const std::int16_t want =
                    l < static_cast<int>(used) ? full[l] : std::int16_t{0};
                EXPECT_EQ(tiled_lo[l], want)
                    << "isa=" << simd::to_string(isa) << " qlen=" << qlen
                    << " lane=" << l;
            }
        }
    }
}

TEST(InterseqTiledKernels, ColumnStateReusableAcrossCallsAndSizes) {
    // One InterseqColumnState serves a whole worker: back-to-back
    // cohorts of different widths and column counts must each score as
    // if the state were fresh — no carry-over between calls, capacity
    // grows monotonically.
    Rng rng(229);
    const std::size_t qlen = kInterseqTileRows + 200;
    const std::vector<Code> q = db::random_protein(rng, qlen, "q").residues;
    const InterseqProfile prof = build_interseq_profile(q, blosum());

    for (const simd::IsaLevel isa : supported_levels()) {
        const int W = lanes_u8(isa);
        ScanScratch scratch;
        InterseqColumnState shared;
        // Big cohort first, then a small one, then the big one again:
        // the small call must not poison the big call's carried state.
        const auto big = random_subjects(
            rng, static_cast<std::size_t>(W), 150, 300);
        const auto small = random_subjects(rng, 2, 10, 30);
        std::size_t big_cols = 0, small_cols = 0;
        for (const auto& s : big) big_cols = std::max(big_cols, s.size());
        for (const auto& s : small) {
            small_cols = std::max(small_cols, s.size());
        }
        const std::vector<Code> big_iv = interleave(big, W, big_cols);
        const std::vector<Code> small_iv = interleave(small, W, small_cols);

        std::uint8_t first[64], again[64], fresh[64];
        const std::uint64_t ovf_first = sw_interseq_u8_tiled(
            prof, big_iv.data(), big_cols, kGap, isa, scratch, shared,
            first);
        sw_interseq_u8_tiled(prof, small_iv.data(), small_cols, kGap, isa,
                             scratch, shared, again);
        const std::uint64_t ovf_again = sw_interseq_u8_tiled(
            prof, big_iv.data(), big_cols, kGap, isa, scratch, shared,
            again);
        InterseqColumnState pristine;
        const std::uint64_t ovf_fresh = sw_interseq_u8_tiled(
            prof, big_iv.data(), big_cols, kGap, isa, scratch, pristine,
            fresh);

        EXPECT_EQ(ovf_again, ovf_first) << simd::to_string(isa);
        EXPECT_EQ(ovf_fresh, ovf_first) << simd::to_string(isa);
        for (int l = 0; l < W; ++l) {
            EXPECT_EQ(again[l], first[l])
                << "isa=" << simd::to_string(isa) << " lane=" << l;
            EXPECT_EQ(fresh[l], first[l])
                << "isa=" << simd::to_string(isa) << " lane=" << l;
        }
    }
}

}  // namespace
}  // namespace swh::align

#include "align/evalue.hpp"

#include <gtest/gtest.h>

#include "align/sw_scalar.hpp"
#include "db/generator.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace swh::align {
namespace {

const GumbelParams& params() {
    static const GumbelParams p =
        fit_gumbel(ScoreMatrix::blosum62(), {10, 2});
    return p;
}

TEST(Gumbel, FitProducesSaneParameters) {
    const GumbelParams& p = params();
    // Gapped BLOSUM62 lambda is typically 0.2-0.35; K is 0.01-0.2.
    EXPECT_GT(p.lambda, 0.1);
    EXPECT_LT(p.lambda, 0.6);
    EXPECT_GT(p.k, 1e-4);
    EXPECT_LT(p.k, 2.0);
}

TEST(Gumbel, FitIsDeterministic) {
    const GumbelParams a = fit_gumbel(ScoreMatrix::blosum62(), {10, 2});
    const GumbelParams b = fit_gumbel(ScoreMatrix::blosum62(), {10, 2});
    EXPECT_DOUBLE_EQ(a.lambda, b.lambda);
    EXPECT_DOUBLE_EQ(a.k, b.k);
}

TEST(Gumbel, EvalueMonotoneInScore) {
    const GumbelParams& p = params();
    double prev = 1e300;
    for (Score s = 20; s <= 200; s += 20) {
        const double e = p.evalue(s, 300, 100'000);
        EXPECT_LT(e, prev);
        prev = e;
    }
}

TEST(Gumbel, EvalueScalesWithSearchSpace) {
    const GumbelParams& p = params();
    const double small = p.evalue(80, 300, 1'000);
    const double big = p.evalue(80, 300, 1'000'000);
    EXPECT_NEAR(big / small, 1000.0, 1e-6);
}

TEST(Gumbel, BitScoreMonotone) {
    const GumbelParams& p = params();
    EXPECT_LT(p.bit_score(50), p.bit_score(100));
}

TEST(Gumbel, PvalueInUnitInterval) {
    const GumbelParams& p = params();
    for (Score s = 10; s <= 400; s += 30) {
        const double pv = p.pvalue(s, 200, 200);
        EXPECT_GE(pv, 0.0);
        EXPECT_LE(pv, 1.0);
    }
}

TEST(Gumbel, NullScoresAreInsignificant) {
    // Random pair scores should mostly land at E >> 1 for a database-
    // sized search space.
    Rng rng(91);
    const ScoreMatrix m = ScoreMatrix::blosum62();
    const GumbelParams& p = params();
    int significant = 0;
    for (int i = 0; i < 30; ++i) {
        const auto a = db::random_protein(rng, 200).residues;
        const auto b = db::random_protein(rng, 200).residues;
        const Score s = sw_score_affine(a, b, m, {10, 2});
        if (p.evalue(s, 200, 10'000'000) < 0.01) ++significant;
    }
    EXPECT_LE(significant, 1);
}

TEST(Gumbel, HomologsAreSignificant) {
    Rng rng(93);
    const ScoreMatrix m = ScoreMatrix::blosum62();
    const GumbelParams& p = params();
    const auto a = db::random_protein(rng, 200);
    const auto hom = db::mutate(a, Alphabet::protein(),
                                db::MutationModel{0.15, 0.02, 0.02}, rng);
    const Score s =
        sw_score_affine(a.residues, hom.residues, m, {10, 2});
    EXPECT_LT(p.evalue(s, 200, 10'000'000), 1e-6);
}

TEST(Gumbel, CalibrationSelfConsistent) {
    // By construction of the fit, P(S >= median of fit sample) should
    // be roughly 0.5 at the fit's own m x n. Check the fitted CDF puts
    // a fresh null sample's scores in a plausible band.
    Rng rng(97);
    const ScoreMatrix m = ScoreMatrix::blosum62();
    const GumbelParams& p = params();
    int above_median = 0;
    const int n = 60;
    for (int i = 0; i < n; ++i) {
        const auto a = db::random_protein(rng, p.fit_m).residues;
        const auto b = db::random_protein(rng, p.fit_n).residues;
        const Score s = sw_score_affine(a, b, m, {10, 2});
        if (p.pvalue(s, p.fit_m, p.fit_n) < 0.5) ++above_median;
    }
    // Binomial(60, 0.5): 3-sigma band is about 30 +- 12.
    EXPECT_GT(above_median, 15);
    EXPECT_LT(above_median, 45);
}

TEST(Gumbel, RejectsBadOptions) {
    GumbelFitOptions opt;
    opt.samples = 3;
    EXPECT_THROW(fit_gumbel(ScoreMatrix::blosum62(), {10, 2}, opt),
                 ContractError);
    EXPECT_THROW(
        fit_gumbel(ScoreMatrix::match_mismatch(Alphabet::dna(), 1, -1, 0),
                   {10, 2}),
        ContractError);
}

}  // namespace
}  // namespace swh::align

#include "align/traceback.hpp"

#include <gtest/gtest.h>

#include "align/sw_scalar.hpp"
#include "db/generator.hpp"
#include "util/rng.hpp"

namespace swh::align {
namespace {

const ScoreMatrix& dna_matrix() {
    static const ScoreMatrix m =
        ScoreMatrix::match_mismatch(Alphabet::dna(), 1, -1, 0);
    return m;
}

std::vector<Code> dna(const char* s) { return Alphabet::dna().encode(s); }

// Paper Fig. 1: global alignment of ACTTGTCCG vs ATTGTCAG with ma=+1,
// mi=-1, g=-2 scores 4.
TEST(NwLinear, PaperFigure1) {
    const auto s = dna("ACTTGTCCG");
    const auto t = dna("ATTGTCAG");
    const Alignment a = nw_align_linear(s, t, dna_matrix(), 2);
    EXPECT_EQ(a.score, 4);
    EXPECT_EQ(a.s_begin, 0u);
    EXPECT_EQ(a.s_end, s.size());
    EXPECT_EQ(a.t_begin, 0u);
    EXPECT_EQ(a.t_end, t.size());
    EXPECT_EQ(score_alignment_linear(a, s, t, dna_matrix(), 2), 4);
}

// Paper Fig. 2: local alignment of GCTGACCT vs GAAGCTA scores 3, the
// shared GCT run.
TEST(SwLinearTraceback, PaperFigure2) {
    const auto s = dna("GCTGACCT");
    const auto t = dna("GAAGCTA");
    const Alignment a = sw_align_linear(s, t, dna_matrix(), 2);
    EXPECT_EQ(a.score, 3);
    EXPECT_EQ(a.cigar(), "3M");
    EXPECT_EQ(a.s_begin, 0u);
    EXPECT_EQ(a.s_end, 3u);
    EXPECT_EQ(a.t_begin, 3u);
    EXPECT_EQ(a.t_end, 6u);
}

TEST(SwLinearTraceback, EmptyWhenNothingAligns) {
    const auto s = dna("AAAA");
    const auto t = dna("CCCC");
    const Alignment a = sw_align_linear(s, t, dna_matrix(), 2);
    EXPECT_EQ(a.score, 0);
    EXPECT_TRUE(a.ops.empty());
}

TEST(SwAffineTraceback, ScoreMatchesScoreOnlyKernel) {
    Rng rng(11);
    const ScoreMatrix m = ScoreMatrix::blosum62();
    for (int iter = 0; iter < 30; ++iter) {
        const auto a = db::random_protein(rng, 1 + rng.below(70)).residues;
        const auto b = db::random_protein(rng, 1 + rng.below(70)).residues;
        const GapPenalty gap{static_cast<Score>(rng.below(12)),
                             static_cast<Score>(1 + rng.below(3))};
        const Alignment al = sw_align_affine(a, b, m, gap);
        EXPECT_EQ(al.score, sw_score_affine(a, b, m, gap)) << "iter " << iter;
        if (!al.ops.empty()) {
            // The reported ops must re-score to the DP score.
            EXPECT_EQ(score_alignment_affine(al, a, b, m, gap), al.score)
                << "iter " << iter;
        }
    }
}

TEST(SwAffineTraceback, LocalAlignmentStartsAndEndsOnMatches) {
    // A maximal local alignment never starts or ends with a gap op.
    Rng rng(13);
    const ScoreMatrix m = ScoreMatrix::blosum62();
    for (int iter = 0; iter < 30; ++iter) {
        const auto a = db::random_protein(rng, 20 + rng.below(40)).residues;
        const auto b = db::random_protein(rng, 20 + rng.below(40)).residues;
        const Alignment al = sw_align_affine(a, b, m, {10, 2});
        if (al.ops.empty()) continue;
        EXPECT_EQ(al.ops.front(), AlignOp::Match);
        EXPECT_EQ(al.ops.back(), AlignOp::Match);
    }
}

TEST(NwAffineTraceback, ConsumesBothSequences) {
    Rng rng(17);
    const ScoreMatrix m = ScoreMatrix::blosum62();
    for (int iter = 0; iter < 30; ++iter) {
        const auto a = db::random_protein(rng, 1 + rng.below(50)).residues;
        const auto b = db::random_protein(rng, 1 + rng.below(50)).residues;
        const GapPenalty gap{static_cast<Score>(rng.below(12)),
                             static_cast<Score>(1 + rng.below(3))};
        const Alignment al = nw_align_affine(a, b, m, gap);
        EXPECT_EQ(al.s_end, a.size());
        EXPECT_EQ(al.t_end, b.size());
        EXPECT_EQ(score_alignment_affine(al, a, b, m, gap), al.score)
            << "iter " << iter;
    }
}

TEST(NwAffineTraceback, GlobalScoreUpperBoundedByLocal) {
    Rng rng(19);
    const ScoreMatrix m = ScoreMatrix::blosum62();
    for (int iter = 0; iter < 20; ++iter) {
        const auto a = db::random_protein(rng, 1 + rng.below(50)).residues;
        const auto b = db::random_protein(rng, 1 + rng.below(50)).residues;
        EXPECT_LE(nw_align_affine(a, b, m, {10, 2}).score,
                  sw_score_affine(a, b, m, {10, 2}));
    }
}

TEST(NwAffineTraceback, AllGapsWhenOneSideEmpty) {
    const auto s = dna("ACGT");
    const std::vector<Code> empty;
    const Alignment a = nw_align_affine(s, empty, dna_matrix(), {3, 1});
    EXPECT_EQ(a.cigar(), "4D");
    EXPECT_EQ(a.score, -(3 + 4 * 1));
    const Alignment b = nw_align_affine(empty, s, dna_matrix(), {3, 1});
    EXPECT_EQ(b.cigar(), "4I");
}

TEST(NwLinear, PrefersDiagonalOnTies) {
    // Identical sequences must come back as pure matches.
    const auto s = dna("ACGTACGT");
    const Alignment a = nw_align_linear(s, s, dna_matrix(), 2);
    EXPECT_EQ(a.cigar(), "8M");
    EXPECT_EQ(a.score, 8);
}

}  // namespace
}  // namespace swh::align

#include "core/results.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace swh::core {
namespace {

TEST(ResultMerger, KeepsTopKDescending) {
    ResultMerger merger(1, 3);
    TaskResult r;
    r.query_index = 0;
    r.cells = 100;
    r.hits = {{0, 10}, {1, 50}, {2, 30}, {3, 40}, {4, 20}};
    merger.add(r);
    const auto& hits = merger.hits_for(0);
    ASSERT_EQ(hits.size(), 3u);
    EXPECT_EQ(hits[0], (Hit{1, 50}));
    EXPECT_EQ(hits[1], (Hit{3, 40}));
    EXPECT_EQ(hits[2], (Hit{2, 30}));
    EXPECT_EQ(merger.total_cells(), 100u);
    EXPECT_EQ(merger.results_merged(), 1u);
}

TEST(ResultMerger, MergesAcrossResults) {
    ResultMerger merger(2, 2);
    TaskResult a;
    a.query_index = 0;
    a.hits = {{0, 5}};
    TaskResult b;
    b.query_index = 0;
    b.hits = {{1, 9}, {2, 1}};
    merger.add(a);
    merger.add(b);
    const auto& hits = merger.hits_for(0);
    ASSERT_EQ(hits.size(), 2u);
    EXPECT_EQ(hits[0].score, 9);
    EXPECT_EQ(hits[1].score, 5);
    EXPECT_TRUE(merger.hits_for(1).empty());
}

TEST(ResultMerger, TiesBreakByDbIndex) {
    ResultMerger merger(1, 2);
    TaskResult r;
    r.query_index = 0;
    r.hits = {{7, 5}, {2, 5}, {9, 5}};
    merger.add(r);
    const auto& hits = merger.hits_for(0);
    EXPECT_EQ(hits[0].db_index, 2u);
    EXPECT_EQ(hits[1].db_index, 7u);
}

TEST(ResultMerger, RejectsUnknownQuery) {
    ResultMerger merger(1, 2);
    TaskResult r;
    r.query_index = 5;
    EXPECT_THROW(merger.add(r), ContractError);
    EXPECT_THROW(merger.hits_for(2), ContractError);
}

TEST(MakeTasks, CellsAreQueryTimesDb) {
    const auto tasks = make_tasks_from_lengths({100, 250}, 1'000'000);
    ASSERT_EQ(tasks.size(), 2u);
    EXPECT_EQ(tasks[0].id, 0u);
    EXPECT_EQ(tasks[0].query_index, 0u);
    EXPECT_EQ(tasks[0].cells, 100u * 1'000'000u);
    EXPECT_EQ(tasks[1].cells, 250u * 1'000'000u);
}

}  // namespace
}  // namespace swh::core

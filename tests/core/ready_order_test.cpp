#include <gtest/gtest.h>

#include "core/scheduler.hpp"
#include "core/task_table.hpp"

namespace swh::core {
namespace {

std::vector<Task> sized_tasks() {
    // cells: 10, 50, 30, 50
    return {Task{0, 0, 10}, Task{1, 1, 50}, Task{2, 2, 30},
            Task{3, 3, 50}};
}

TEST(ReadyOrder, FifoHandsOutByTaskId) {
    TaskTable t(sized_tasks(), ReadyOrder::FifoById);
    EXPECT_EQ(t.acquire_ready(0).value(), 0u);
    EXPECT_EQ(t.acquire_ready(0).value(), 1u);
    EXPECT_EQ(t.acquire_ready(0).value(), 2u);
    EXPECT_EQ(t.acquire_ready(0).value(), 3u);
}

TEST(ReadyOrder, LargestFirstHandsOutByCells) {
    TaskTable t(sized_tasks(), ReadyOrder::LargestFirst);
    // 50-cell tasks first (ties by id), then 30, then 10.
    EXPECT_EQ(t.acquire_ready(0).value(), 1u);
    EXPECT_EQ(t.acquire_ready(0).value(), 3u);
    EXPECT_EQ(t.acquire_ready(0).value(), 2u);
    EXPECT_EQ(t.acquire_ready(0).value(), 0u);
}

TEST(ReadyOrder, ReleasedTaskStillJumpsTheQueue) {
    TaskTable t(sized_tasks(), ReadyOrder::LargestFirst);
    const TaskId first = t.acquire_ready(0).value();
    t.release(first, 0);
    // Release puts it at the front regardless of ordering policy (it was
    // already in flight; re-issue promptly).
    EXPECT_EQ(t.acquire_ready(1).value(), first);
}

TEST(ReadyOrder, SchedulerOptionFlowsThrough) {
    SchedulerOptions options;
    options.ready_order = ReadyOrder::LargestFirst;
    SchedulerCore sched(sized_tasks(), make_self_scheduling(), options);
    sched.register_slave(0, PeKind::Gpu);
    EXPECT_EQ(sched.on_work_request(0, 0.0), std::vector<TaskId>{1});
}

}  // namespace
}  // namespace swh::core

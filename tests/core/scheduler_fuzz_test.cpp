// Randomised stress test for SchedulerCore: a synthetic driver delivers
// arbitrary (but protocol-legal) interleavings of work requests,
// progress notifications, completions, joins and leaves, and checks the
// global invariants that must survive any schedule:
//   * the run always terminates with every task Finished;
//   * each task is accepted exactly once, by a PE that was executing it;
//   * table counters stay consistent throughout;
//   * a PE never holds the same task twice;
//   * replicas only ever duplicate Executing tasks.

#include <gtest/gtest.h>

#include <deque>
#include <map>
#include <set>

#include "core/results.hpp"
#include "core/scheduler.hpp"
#include "util/rng.hpp"

namespace swh::core {
namespace {

struct FuzzParams {
    std::uint64_t seed;
    std::size_t tasks;
    std::size_t slaves;
    bool adjust;
    bool cancel;
    int policy;  // 0 SS, 1 PSS, 2 chunked, 3 fixed, 4 wfixed
};

std::unique_ptr<AllocationPolicy> make_policy(int which) {
    switch (which) {
        case 0:
            return make_self_scheduling();
        case 1:
            return make_pss();
        case 2:
            return make_chunked_self_scheduling(3);
        case 3:
            return make_fixed();
        default:
            return make_wfixed(
                {{PeKind::Gpu, 8.0}, {PeKind::SseCore, 1.0}});
    }
}

class SchedulerFuzzTest : public ::testing::TestWithParam<FuzzParams> {};

TEST_P(SchedulerFuzzTest, InvariantsHoldUnderRandomSchedules) {
    const FuzzParams fp = GetParam();
    Rng rng(fp.seed);

    std::vector<Task> tasks;
    for (std::size_t i = 0; i < fp.tasks; ++i) {
        tasks.push_back(Task{static_cast<TaskId>(i),
                             static_cast<std::uint32_t>(i),
                             1'000 + rng.below(100'000)});
    }
    SchedulerOptions options;
    options.workload_adjust = fp.adjust;
    options.cancel_losers = fp.cancel;
    options.omega = 1 + rng.below(16);
    SchedulerCore sched(tasks, make_policy(fp.policy), options);

    struct SlaveMirror {
        std::deque<TaskId> queue;
        bool active = true;
    };
    std::map<PeId, SlaveMirror> slaves;
    for (PeId pe = 0; pe < fp.slaves; ++pe) {
        sched.register_slave(pe,
                             pe % 3 == 0 ? PeKind::Gpu : PeKind::SseCore);
        slaves[pe] = SlaveMirror{};
    }
    PeId next_pe = static_cast<PeId>(fp.slaves);

    std::map<TaskId, PeId> winners;
    std::set<TaskId> accepted;
    double now = 0.0;
    std::size_t idle_rounds = 0;

    const auto check_counts = [&] {
        ASSERT_EQ(sched.ready_count() + sched.executing_count() +
                      sched.finished_count(),
                  sched.total_tasks());
        // Full structural sweep (what SWH_AUDIT runs after every event).
        ASSERT_NO_THROW(sched.check_invariants());
    };

    while (!sched.all_done()) {
        now += 0.1;
        // Pick a random live slave.
        std::vector<PeId> live;
        for (const auto& [pe, m] : slaves) {
            if (m.active) live.push_back(pe);
        }
        ASSERT_FALSE(live.empty()) << "all slaves left with work pending";
        const PeId pe = live[rng.below(live.size())];
        SlaveMirror& mirror = slaves[pe];

        const std::uint64_t dice = rng.below(100);
        if (mirror.queue.empty() || dice < 20) {
            // Work request (idle slaves must ask; busy ones may too —
            // the real runtime doesn't, but the core must tolerate it).
            if (mirror.queue.empty()) {
                const std::vector<TaskId> got =
                    sched.on_work_request(pe, now);
                for (const TaskId t : got) {
                    // Never the same task twice for one PE.
                    ASSERT_EQ(std::count(mirror.queue.begin(),
                                         mirror.queue.end(), t),
                              0);
                    ASSERT_NE(sched.task_state(t), TaskState::Ready);
                    mirror.queue.push_back(t);
                }
                if (got.empty()) {
                    ++idle_rounds;
                    ASSERT_LT(idle_rounds, 100'000u) << "livelock";
                } else {
                    idle_rounds = 0;
                }
            }
        } else if (dice < 70) {
            // Complete the front task.
            const TaskId t = mirror.queue.front();
            mirror.queue.pop_front();
            const auto result = sched.on_task_complete(pe, t, now);
            if (result.accepted) {
                ASSERT_EQ(accepted.count(t), 0u)
                    << "task accepted twice";
                accepted.insert(t);
                winners[t] = pe;
                ASSERT_EQ(sched.task_winner(t), pe);
            }
            for (const PeId loser : result.cancelled) {
                auto& lq = slaves[loser].queue;
                std::erase(lq, t);
            }
        } else if (dice < 90) {
            sched.on_progress(pe, now, 1'000.0 + rng.uniform() * 1e6);
        } else if (dice < 95 && live.size() > 1) {
            // Leave: abandon everything.
            sched.deregister_slave(pe, now);
            mirror.active = false;
            mirror.queue.clear();
        } else {
            // Join a fresh slave.
            sched.register_slave(next_pe, PeKind::SseCore);
            slaves[next_pe] = SlaveMirror{};
            ++next_pe;
        }
        check_counts();
    }

    EXPECT_EQ(accepted.size(), fp.tasks);
    EXPECT_EQ(sched.finished_count(), fp.tasks);
    for (const auto& [t, pe] : winners) {
        EXPECT_EQ(sched.task_winner(t), pe);
    }
}

std::vector<FuzzParams> fuzz_matrix() {
    std::vector<FuzzParams> out;
    std::uint64_t seed = 1000;
    for (const bool adjust : {false, true}) {
        for (const bool cancel : {false, true}) {
            for (int policy = 0; policy < 5; ++policy) {
                out.push_back(FuzzParams{seed++, 25, 4, adjust, cancel,
                                         policy});
            }
        }
    }
    // A few bigger instances on the paper's configuration.
    for (int i = 0; i < 5; ++i) {
        out.push_back(FuzzParams{seed++, 100, 8, true, false, 1});
    }
    return out;
}

INSTANTIATE_TEST_SUITE_P(Random, SchedulerFuzzTest,
                         ::testing::ValuesIn(fuzz_matrix()),
                         [](const auto& info) {
                             const FuzzParams& p = info.param;
                             return "seed" + std::to_string(p.seed) +
                                    "_p" + std::to_string(p.policy) +
                                    (p.adjust ? "_adj" : "_noadj") +
                                    (p.cancel ? "_can" : "_nocan");
                         });

}  // namespace
}  // namespace swh::core

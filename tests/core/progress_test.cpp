#include "core/progress.hpp"

#include <gtest/gtest.h>

namespace swh::core {
namespace {

TEST(ProgressHistory, StartsEmpty) {
    ProgressHistory h(4);
    EXPECT_FALSE(h.has_history());
    EXPECT_EQ(h.rate(), 0.0);
    EXPECT_EQ(h.omega(), 4u);
}

TEST(ProgressHistory, SingleSample) {
    ProgressHistory h(4);
    h.record(2e9);
    EXPECT_TRUE(h.has_history());
    EXPECT_DOUBLE_EQ(h.rate(), 2e9);
}

TEST(ProgressHistory, RecencyWeighting) {
    ProgressHistory h(3);
    h.record(0.0);
    h.record(0.0);
    h.record(6.0);
    // weights 1,2,3 -> 18/6 = 3.
    EXPECT_DOUBLE_EQ(h.rate(), 3.0);
}

TEST(ProgressHistory, WindowEvictsOldest) {
    ProgressHistory h(2);
    h.record(100.0);
    h.record(4.0);
    h.record(4.0);  // evicts 100
    EXPECT_DOUBLE_EQ(h.rate(), 4.0);
}

TEST(ProgressHistory, SmallOmegaReactsFaster) {
    ProgressHistory fast(2), slow(16);
    for (int i = 0; i < 16; ++i) {
        fast.record(10.0);
        slow.record(10.0);
    }
    // The PE slows down to 1.0 (the paper's Fig. 8 local-load case).
    for (int i = 0; i < 2; ++i) {
        fast.record(1.0);
        slow.record(1.0);
    }
    EXPECT_LT(fast.rate(), slow.rate());
    EXPECT_DOUBLE_EQ(fast.rate(), 1.0);  // window fully replaced
}

TEST(ProgressHistory, IgnoresNegativeSamples) {
    ProgressHistory h(4);
    h.record(-5.0);
    EXPECT_FALSE(h.has_history());
}

}  // namespace
}  // namespace swh::core

#include "core/policy.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace swh::core {
namespace {

SlaveView slave(PeId id, PeKind kind, double rate) {
    SlaveView v;
    v.id = id;
    v.kind = kind;
    v.rate = rate;
    v.has_rate = rate > 0.0;
    return v;
}

TEST(SelfScheduling, AlwaysOne) {
    auto p = make_self_scheduling();
    const std::vector<SlaveView> all = {slave(0, PeKind::Gpu, 6e9),
                                        slave(1, PeKind::SseCore, 1e9)};
    EXPECT_EQ(p->batch_size(all[0], all, 10, 20), 1u);
    EXPECT_EQ(p->batch_size(all[1], all, 10, 20), 1u);
    EXPECT_EQ(p->batch_size(all[0], all, 0, 20), 0u);
    EXPECT_EQ(p->name(), "SS");
}

TEST(ChunkedSelfScheduling, FixedChunk) {
    auto p = make_chunked_self_scheduling(4);
    const std::vector<SlaveView> all = {slave(0, PeKind::SseCore, 1e9)};
    EXPECT_EQ(p->batch_size(all[0], all, 10, 10), 4u);
    EXPECT_EQ(p->batch_size(all[0], all, 3, 10), 3u);  // clamped
    EXPECT_THROW(make_chunked_self_scheduling(0), ContractError);
}

TEST(Pss, FirstAllocationIsOne) {
    auto p = make_pss();
    const std::vector<SlaveView> all = {slave(0, PeKind::Gpu, 0.0),
                                        slave(1, PeKind::SseCore, 0.0)};
    EXPECT_EQ(p->batch_size(all[0], all, 20, 20), 1u);
}

TEST(Pss, PaperExampleSixToOne) {
    // Paper Fig. 5: GPU is 6x an SSE core => Phi = 6.
    auto p = make_pss();
    const std::vector<SlaveView> all = {slave(0, PeKind::Gpu, 6e9),
                                        slave(1, PeKind::SseCore, 1e9),
                                        slave(2, PeKind::SseCore, 1e9),
                                        slave(3, PeKind::SseCore, 1e9)};
    EXPECT_EQ(p->batch_size(all[0], all, 16, 20), 6u);
    EXPECT_EQ(p->batch_size(all[1], all, 16, 20), 1u);
}

TEST(Pss, ClampsToReady) {
    auto p = make_pss();
    const std::vector<SlaveView> all = {slave(0, PeKind::Gpu, 10e9),
                                        slave(1, PeKind::SseCore, 1e9)};
    EXPECT_EQ(p->batch_size(all[0], all, 3, 20), 3u);
}

TEST(Pss, SlowestGetsOne) {
    auto p = make_pss();
    const std::vector<SlaveView> all = {slave(0, PeKind::Gpu, 6e9),
                                        slave(1, PeKind::SseCore, 1e9)};
    EXPECT_EQ(p->batch_size(all[1], all, 20, 20), 1u);
}

TEST(Pss, RoundsRatio) {
    auto p = make_pss();
    const std::vector<SlaveView> all = {slave(0, PeKind::Gpu, 2.6e9),
                                        slave(1, PeKind::SseCore, 1e9)};
    EXPECT_EQ(p->batch_size(all[0], all, 20, 20), 3u);
}

TEST(Fixed, EvenSplitOncePerPe) {
    auto p = make_fixed();
    const std::vector<SlaveView> all = {slave(0, PeKind::SseCore, 1e9),
                                        slave(1, PeKind::SseCore, 1e9),
                                        slave(2, PeKind::SseCore, 1e9)};
    // 10 tasks over 3 PEs: 4 + 3 + 3.
    EXPECT_EQ(p->batch_size(all[0], all, 10, 10), 4u);
    EXPECT_EQ(p->batch_size(all[1], all, 6, 10), 3u);
    EXPECT_EQ(p->batch_size(all[2], all, 3, 10), 3u);
    // Second request gets nothing.
    EXPECT_EQ(p->batch_size(all[0], all, 0, 10), 0u);
}

TEST(WFixed, SplitsByDeclaredPower) {
    auto p = make_wfixed({{PeKind::Gpu, 6.0}, {PeKind::SseCore, 1.0}});
    const std::vector<SlaveView> all = {slave(0, PeKind::Gpu, 0.0),
                                        slave(1, PeKind::SseCore, 0.0),
                                        slave(2, PeKind::SseCore, 0.0)};
    // weights 6,1,1 over 16 tasks -> 12, 2, 2.
    EXPECT_EQ(p->batch_size(all[0], all, 16, 16), 12u);
    EXPECT_EQ(p->batch_size(all[1], all, 4, 16), 2u);
    // Last served PE mops up the remainder.
    EXPECT_EQ(p->batch_size(all[2], all, 2, 16), 2u);
    EXPECT_EQ(p->batch_size(all[0], all, 0, 16), 0u);
}

TEST(WFixed, RejectsNonPositivePower) {
    EXPECT_THROW(make_wfixed({{PeKind::Gpu, 0.0}}), ContractError);
}

// Regression: shares must be computed against the membership at the
// FIRST request. Evaluating the live roster per request mis-split the
// pool whenever a slave registered late (join_delay_s).
TEST(Fixed, LateJoinerDoesNotSkewTheSplit) {
    auto p = make_fixed();
    const std::vector<SlaveView> initial = {slave(0, PeKind::SseCore, 1e9),
                                            slave(1, PeKind::SseCore, 1e9)};
    // 11 tasks over the 2 snapshot PEs: 6 + 5.
    EXPECT_EQ(p->batch_size(initial[0], initial, 11, 11), 6u);

    // PE 2 joins after the split was taken: the live roster grows, but
    // PE 1's share must still be judged against the snapshot of 2.
    const std::vector<SlaveView> grown = {slave(0, PeKind::SseCore, 1e9),
                                          slave(1, PeKind::SseCore, 1e9),
                                          slave(2, PeKind::SseCore, 1e9)};
    EXPECT_EQ(p->batch_size(grown[2], grown, 5, 11), 0u);  // late joiner
    EXPECT_EQ(p->batch_size(grown[1], grown, 5, 11), 5u);
    // Nothing left over, and repeat requests stay empty.
    EXPECT_EQ(p->batch_size(grown[0], grown, 0, 11), 0u);
    EXPECT_EQ(p->batch_size(grown[2], grown, 0, 11), 0u);
}

TEST(WFixed, LateJoinerDoesNotStealTheMopUp) {
    auto p = make_wfixed({{PeKind::Gpu, 6.0}, {PeKind::SseCore, 1.0}});
    const std::vector<SlaveView> initial = {slave(0, PeKind::Gpu, 0.0),
                                            slave(1, PeKind::SseCore, 0.0)};
    // Weights 6,1 over 14 tasks: the GPU gets 12.
    EXPECT_EQ(p->batch_size(initial[0], initial, 14, 14), 12u);

    // A late joiner must neither receive a share nor count towards the
    // "last snapshot slave mops up the remainder" condition.
    const std::vector<SlaveView> grown = {slave(0, PeKind::Gpu, 0.0),
                                          slave(1, PeKind::SseCore, 0.0),
                                          slave(2, PeKind::SseCore, 0.0)};
    EXPECT_EQ(p->batch_size(grown[2], grown, 2, 14), 0u);
    // PE 1 is the last *snapshot* slave served: it mops up everything.
    EXPECT_EQ(p->batch_size(grown[1], grown, 2, 14), 2u);
}

}  // namespace
}  // namespace swh::core

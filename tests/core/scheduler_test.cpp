#include "core/scheduler.hpp"

#include <gtest/gtest.h>

#include "core/results.hpp"
#include "util/error.hpp"

namespace swh::core {
namespace {

std::vector<Task> equal_tasks(std::size_t n, std::uint64_t cells = 6'000) {
    std::vector<Task> tasks;
    for (std::size_t i = 0; i < n; ++i) {
        tasks.push_back(Task{static_cast<TaskId>(i),
                             static_cast<std::uint32_t>(i), cells});
    }
    return tasks;
}

SchedulerOptions opts(bool adjust = true) {
    SchedulerOptions o;
    o.workload_adjust = adjust;
    return o;
}

TEST(Scheduler, FirstAllocationOneTaskPerSlave) {
    SchedulerCore s(equal_tasks(10), make_pss(), opts());
    s.register_slave(0, PeKind::Gpu);
    s.register_slave(1, PeKind::SseCore);
    EXPECT_EQ(s.on_work_request(0, 0.0).size(), 1u);
    EXPECT_EQ(s.on_work_request(1, 0.0).size(), 1u);
    EXPECT_EQ(s.ready_count(), 8u);
}

TEST(Scheduler, PssGrowsBatchWithObservedSpeed) {
    SchedulerCore s(equal_tasks(20), make_pss(), opts());
    s.register_slave(0, PeKind::Gpu);
    s.register_slave(1, PeKind::SseCore);
    s.on_work_request(0, 0.0);
    s.on_work_request(1, 0.0);
    s.on_progress(0, 0.5, 6'000.0);  // GPU: 6000 cells/s
    s.on_progress(1, 0.5, 1'000.0);  // SSE: 1000 cells/s
    s.on_task_complete(0, 0, 1.0);
    const auto batch = s.on_work_request(0, 1.0);
    EXPECT_EQ(batch.size(), 6u);  // Phi = 6000/1000
}

TEST(Scheduler, UnknownSlaveThrows) {
    SchedulerCore s(equal_tasks(2), make_pss(), opts());
    EXPECT_THROW(s.on_work_request(0, 0.0), ContractError);
    EXPECT_THROW(s.on_progress(0, 0.0, 1.0), ContractError);
}

TEST(Scheduler, DuplicateRegistrationThrows) {
    SchedulerCore s(equal_tasks(2), make_pss(), opts());
    s.register_slave(0, PeKind::Gpu);
    EXPECT_THROW(s.register_slave(0, PeKind::Gpu), ContractError);
}

TEST(Scheduler, WorkloadAdjustReplicatesLastTask) {
    SchedulerCore s(equal_tasks(2), make_self_scheduling(), opts(true));
    s.register_slave(0, PeKind::Gpu);
    s.register_slave(1, PeKind::SseCore);
    s.on_work_request(0, 0.0);  // task 0
    s.on_work_request(1, 0.0);  // task 1
    s.on_progress(0, 0.5, 6'000.0);
    s.on_progress(1, 0.5, 1'000.0);
    s.on_task_complete(0, 0, 1.0);
    // No ready tasks remain; task 1 is still executing on the slow PE.
    const auto replica = s.on_work_request(0, 1.0);
    ASSERT_EQ(replica.size(), 1u);
    EXPECT_EQ(replica[0], 1u);
    EXPECT_EQ(s.replicas_issued(), 1u);
    EXPECT_EQ(s.task_executors(1), (std::vector<PeId>{1, 0}));
    // First finisher wins; the loser's completion is discarded.
    EXPECT_TRUE(s.on_task_complete(0, 1, 2.0).accepted);
    EXPECT_FALSE(s.on_task_complete(1, 1, 6.0).accepted);
    EXPECT_EQ(s.completions_discarded(), 1u);
    EXPECT_TRUE(s.all_done());
}

TEST(Scheduler, NoReplicationWhenDisabled) {
    SchedulerCore s(equal_tasks(2), make_self_scheduling(), opts(false));
    s.register_slave(0, PeKind::Gpu);
    s.register_slave(1, PeKind::SseCore);
    s.on_work_request(0, 0.0);
    s.on_work_request(1, 0.0);
    s.on_task_complete(0, 0, 1.0);
    EXPECT_TRUE(s.on_work_request(0, 1.0).empty());
    EXPECT_EQ(s.replicas_issued(), 0u);
}

TEST(Scheduler, NeverReplicatesToCurrentExecutor) {
    SchedulerCore s(equal_tasks(1), make_self_scheduling(), opts(true));
    s.register_slave(0, PeKind::Gpu);
    s.on_work_request(0, 0.0);  // task 0 executing on 0
    // Same PE asking again must not receive its own task as a replica.
    EXPECT_TRUE(s.on_work_request(0, 0.5).empty());
}

TEST(Scheduler, ReplicatesTaskWithLatestExpectedCompletion) {
    // Two executing tasks; PE 1 is much slower, so its task is the
    // replication target.
    SchedulerCore s(equal_tasks(2, 10'000), make_self_scheduling(),
                    opts(true));
    s.register_slave(0, PeKind::SseCore);
    s.register_slave(1, PeKind::SseCore);
    s.register_slave(2, PeKind::Gpu);
    s.on_work_request(0, 0.0);  // task 0
    s.on_work_request(1, 0.0);  // task 1
    s.on_progress(0, 0.5, 10'000.0);  // finishes ~t=1
    s.on_progress(1, 0.5, 100.0);     // finishes ~t=100
    const auto replica = s.on_work_request(2, 0.6);
    ASSERT_EQ(replica.size(), 1u);
    EXPECT_EQ(replica[0], 1u);
}

TEST(Scheduler, ReplicateOnlyIfFasterGate) {
    SchedulerOptions o = opts(true);
    o.replicate_only_if_faster = true;
    SchedulerCore s(equal_tasks(2, 10'000), make_self_scheduling(), o);
    s.register_slave(0, PeKind::SseCore);
    s.register_slave(1, PeKind::SseCore);
    s.register_slave(2, PeKind::SseCore);
    s.on_work_request(0, 0.0);
    s.on_work_request(1, 0.0);
    s.on_progress(0, 0.5, 1'000.0);
    s.on_progress(1, 0.5, 1'000.0);
    s.on_progress(2, 0.5, 1'000.0);
    // PE 2 is equally fast and task 1 is already half done on PE 1 —
    // restarting from scratch cannot beat the current owner.
    EXPECT_TRUE(s.on_work_request(2, 5.0).empty());
}

TEST(Scheduler, CancelLosersListsOtherExecutors) {
    SchedulerOptions o = opts(true);
    o.cancel_losers = true;
    SchedulerCore s(equal_tasks(1), make_self_scheduling(), o);
    s.register_slave(0, PeKind::SseCore);
    s.register_slave(1, PeKind::Gpu);
    s.on_work_request(0, 0.0);
    const auto replica = s.on_work_request(1, 0.5);
    ASSERT_EQ(replica.size(), 1u);
    const auto result = s.on_task_complete(1, 0, 1.0);
    EXPECT_TRUE(result.accepted);
    EXPECT_EQ(result.cancelled, std::vector<PeId>{0});
    // The cancelled executor's queue is already purged.
    EXPECT_TRUE(s.queue_of(0).empty());
}

TEST(Scheduler, DeregisterReturnsTasksToReady) {
    SchedulerCore s(equal_tasks(3), make_chunked_self_scheduling(3),
                    opts(true));
    s.register_slave(0, PeKind::SseCore);
    s.register_slave(1, PeKind::SseCore);
    EXPECT_EQ(s.on_work_request(0, 0.0).size(), 3u);
    s.deregister_slave(0, 1.0);
    EXPECT_EQ(s.ready_count(), 3u);
    EXPECT_FALSE(s.is_registered(0));
    // The surviving slave can pick them all up.
    EXPECT_EQ(s.on_work_request(1, 1.0).size(), 3u);
}

TEST(Scheduler, FixedPolicyStarvationValve) {
    // Fixed hands everything out in round one; if tasks come back (node
    // leave) a later request must still obtain them.
    SchedulerCore s(equal_tasks(4), make_fixed(), opts(false));
    s.register_slave(0, PeKind::SseCore);
    s.register_slave(1, PeKind::SseCore);
    EXPECT_EQ(s.on_work_request(0, 0.0).size(), 2u);
    EXPECT_EQ(s.on_work_request(1, 0.0).size(), 2u);
    s.deregister_slave(0, 1.0);  // its 2 tasks return to ready
    EXPECT_EQ(s.ready_count(), 2u);
    s.on_task_complete(1, 2, 2.0);
    s.on_task_complete(1, 3, 3.0);
    // Fixed would answer 0, but the valve gives one task per request.
    EXPECT_EQ(s.on_work_request(1, 3.0).size(), 1u);
}

TEST(Scheduler, QueueTracking) {
    SchedulerCore s(equal_tasks(5), make_chunked_self_scheduling(3),
                    opts(true));
    s.register_slave(0, PeKind::SseCore);
    const auto batch = s.on_work_request(0, 0.0);
    EXPECT_EQ(s.queue_of(0), batch);
    s.on_task_complete(0, batch[0], 1.0);
    EXPECT_EQ(s.queue_of(0).size(), 2u);
}

TEST(Scheduler, RateEstimateReflectsHistory) {
    SchedulerCore s(equal_tasks(2), make_pss(), opts());
    s.register_slave(0, PeKind::SseCore);
    EXPECT_EQ(s.rate_estimate(0), 0.0);
    s.on_progress(0, 0.5, 2'000.0);
    EXPECT_DOUBLE_EQ(s.rate_estimate(0), 2'000.0);
}

// The paper's Fig. 5 worked example at the scheduler level: 20 tasks of
// 1 s (GPU) / 6 s (SSE); with the adjustment mechanism the GPU re-runs
// the straggler task t20 and the application completes at 14 s instead
// of 18 s. Timing is driven by tests/sim (the DES); here we check the
// decision sequence.
TEST(Scheduler, PaperFigure5DecisionSequence) {
    SchedulerCore s(equal_tasks(20, 6'000), make_pss(), opts(true));
    s.register_slave(0, PeKind::Gpu);       // 6000 cells/s
    for (PeId pe = 1; pe <= 3; ++pe) s.register_slave(pe, PeKind::SseCore);

    // t=0: one task each.
    EXPECT_EQ(s.on_work_request(0, 0.0), std::vector<TaskId>{0});
    EXPECT_EQ(s.on_work_request(1, 0.0), std::vector<TaskId>{1});
    EXPECT_EQ(s.on_work_request(2, 0.0), std::vector<TaskId>{2});
    EXPECT_EQ(s.on_work_request(3, 0.0), std::vector<TaskId>{3});

    // Early notifications establish the 6:1 ratio.
    s.on_progress(0, 0.5, 6'000.0);
    for (PeId pe = 1; pe <= 3; ++pe) s.on_progress(pe, 0.5, 1'000.0);

    // t=1: GPU finishes and gets 6 tasks (t5..t10 in paper numbering).
    s.on_task_complete(0, 0, 1.0);
    EXPECT_EQ(s.on_work_request(0, 1.0),
              (std::vector<TaskId>{4, 5, 6, 7, 8, 9}));

    // t=6: the SSEs finish and get one task each.
    for (PeId pe = 1; pe <= 3; ++pe) {
        s.on_progress(pe, 6.0, 1'000.0);
        s.on_task_complete(pe, pe, 6.0);
        EXPECT_EQ(s.on_work_request(pe, 6.0).size(), 1u);
    }

    // t=7: GPU finishes its 6 and gets 6 more.
    s.on_progress(0, 7.0, 6'000.0);
    for (TaskId t = 4; t <= 9; ++t) s.on_task_complete(0, t, 7.0);
    EXPECT_EQ(s.on_work_request(0, 7.0),
              (std::vector<TaskId>{13, 14, 15, 16, 17, 18}));

    // t=12: SSEs finish; only one ready task remains (19). SSE1 takes it.
    for (PeId pe = 1; pe <= 3; ++pe) {
        s.on_progress(pe, 12.0, 1'000.0);
        s.on_task_complete(pe, pe + 9, 12.0);
    }
    EXPECT_EQ(s.on_work_request(1, 12.0), std::vector<TaskId>{19});

    // t=13: GPU drains; the adjustment hands it the executing task 19.
    for (TaskId t = 13; t <= 18; ++t) s.on_task_complete(0, t, 13.0);
    EXPECT_EQ(s.on_work_request(0, 13.0), std::vector<TaskId>{19});
    EXPECT_EQ(s.replicas_issued(), 1u);

    // t=14: GPU wins the race; SSE1's later completion is discarded.
    EXPECT_TRUE(s.on_task_complete(0, 19, 14.0).accepted);
    EXPECT_TRUE(s.all_done());
    EXPECT_FALSE(s.on_task_complete(1, 19, 18.0).accepted);
}

TEST(Scheduler, FailedTaskWithRetryReturnsToReadyFront) {
    SchedulerCore s(equal_tasks(3), make_self_scheduling(), opts());
    s.register_slave(0, PeKind::SseCore);
    ASSERT_EQ(s.on_work_request(0, 0.0), std::vector<TaskId>{0});

    const auto out = s.on_task_failed(0, 0, 1.0, /*allow_retry=*/true);
    EXPECT_FALSE(out.stale);
    EXPECT_TRUE(out.requeued);
    EXPECT_FALSE(out.abandoned);
    EXPECT_EQ(s.tasks_failed(), 1u);
    EXPECT_EQ(s.task_state(0), TaskState::Ready);
    EXPECT_TRUE(s.queue_of(0).empty());
    // Requeued at the ready front: the next request picks it up first.
    EXPECT_EQ(s.on_work_request(0, 2.0), std::vector<TaskId>{0});
}

TEST(Scheduler, FailedTaskWithoutRetryIsAbandoned) {
    SchedulerCore s(equal_tasks(2), make_self_scheduling(), opts());
    s.register_slave(0, PeKind::SseCore);
    ASSERT_EQ(s.on_work_request(0, 0.0), std::vector<TaskId>{0});

    const auto out = s.on_task_failed(0, 0, 1.0, /*allow_retry=*/false);
    EXPECT_TRUE(out.abandoned);
    EXPECT_FALSE(out.requeued);
    EXPECT_EQ(s.tasks_abandoned(), 1u);
    EXPECT_EQ(s.task_state(0), TaskState::Finished);
    EXPECT_TRUE(s.task_abandoned(0));

    // The other task completes normally; the run still settles.
    ASSERT_EQ(s.on_work_request(0, 2.0), std::vector<TaskId>{1});
    EXPECT_TRUE(s.on_task_complete(0, 1, 3.0).accepted);
    EXPECT_TRUE(s.all_done());
}

TEST(Scheduler, AbandonWithLiveReplicaLetsTheReplicaWin) {
    SchedulerCore s(equal_tasks(1), make_self_scheduling(), opts(true));
    s.register_slave(0, PeKind::SseCore);
    s.register_slave(1, PeKind::SseCore);
    ASSERT_EQ(s.on_work_request(0, 0.0), std::vector<TaskId>{0});
    s.on_progress(0, 0.5, 1'000.0);
    s.on_progress(1, 0.5, 1'000.0);
    ASSERT_EQ(s.on_work_request(1, 0.5), std::vector<TaskId>{0});  // replica

    // PE 0 exhausts its retry budget, but PE 1 still runs the task: the
    // abandonment must not settle it.
    const auto out = s.on_task_failed(0, 0, 1.0, /*allow_retry=*/false);
    EXPECT_FALSE(out.abandoned);
    EXPECT_EQ(s.task_state(0), TaskState::Executing);
    EXPECT_FALSE(s.all_done());
    EXPECT_TRUE(s.on_task_complete(1, 0, 2.0).accepted);
    EXPECT_FALSE(s.task_abandoned(0));
    EXPECT_TRUE(s.all_done());
}

TEST(Scheduler, StaleFailureReportsAreIgnored) {
    SchedulerCore s(equal_tasks(2), make_self_scheduling(), opts());
    s.register_slave(0, PeKind::SseCore);
    s.register_slave(1, PeKind::SseCore);
    ASSERT_EQ(s.on_work_request(0, 0.0), std::vector<TaskId>{0});

    // Not the executor / not executing / unregistered: all stale no-ops.
    EXPECT_TRUE(s.on_task_failed(1, 0, 1.0, true).stale);
    EXPECT_TRUE(s.on_task_failed(0, 1, 1.0, true).stale);
    s.on_task_complete(0, 0, 2.0);
    EXPECT_TRUE(s.on_task_failed(0, 0, 3.0, true).stale);
    s.deregister_slave(1, 3.0);
    EXPECT_TRUE(s.on_task_failed(1, 1, 3.0, true).stale);
    EXPECT_EQ(s.tasks_failed(), 0u);
}

}  // namespace
}  // namespace swh::core

#include "core/task_table.hpp"

#include <gtest/gtest.h>

#include "util/error.hpp"

namespace swh::core {
namespace {

std::vector<Task> make_n(std::size_t n) {
    std::vector<Task> tasks;
    for (std::size_t i = 0; i < n; ++i) {
        tasks.push_back(Task{static_cast<TaskId>(i),
                             static_cast<std::uint32_t>(i), 100});
    }
    return tasks;
}

TEST(TaskTable, InitialState) {
    TaskTable t(make_n(3));
    EXPECT_EQ(t.total(), 3u);
    EXPECT_EQ(t.ready_count(), 3u);
    EXPECT_EQ(t.executing_count(), 0u);
    EXPECT_EQ(t.finished_count(), 0u);
    EXPECT_FALSE(t.all_finished());
    EXPECT_EQ(t.state(0), TaskState::Ready);
}

TEST(TaskTable, RejectsNonDenseIds) {
    std::vector<Task> tasks = {Task{5, 0, 1}};
    EXPECT_THROW(TaskTable{tasks}, ContractError);
}

TEST(TaskTable, AcquireIsFifo) {
    TaskTable t(make_n(3));
    EXPECT_EQ(t.acquire_ready(0).value(), 0u);
    EXPECT_EQ(t.acquire_ready(1).value(), 1u);
    EXPECT_EQ(t.state(0), TaskState::Executing);
    EXPECT_EQ(t.executors(0), std::vector<PeId>{0});
    EXPECT_EQ(t.ready_count(), 1u);
    EXPECT_EQ(t.executing_count(), 2u);
}

TEST(TaskTable, AcquireExhausts) {
    TaskTable t(make_n(1));
    EXPECT_TRUE(t.acquire_ready(0).has_value());
    EXPECT_FALSE(t.acquire_ready(1).has_value());
}

TEST(TaskTable, CompleteFirstWins) {
    TaskTable t(make_n(1));
    t.acquire_ready(0);
    t.add_replica(0, 1);
    EXPECT_EQ(t.executors(0), (std::vector<PeId>{0, 1}));
    EXPECT_TRUE(t.complete(0, 1));   // replica wins
    EXPECT_FALSE(t.complete(0, 0));  // original loses
    EXPECT_EQ(t.winner(0), 1u);
    EXPECT_TRUE(t.all_finished());
}

TEST(TaskTable, ReplicaRules) {
    TaskTable t(make_n(2));
    EXPECT_THROW(t.add_replica(0, 1), ContractError);  // still ready
    t.acquire_ready(0);
    EXPECT_THROW(t.add_replica(0, 0), ContractError);  // same PE
    t.add_replica(0, 1);
    EXPECT_TRUE(t.is_executor(0, 1));
    t.complete(0, 0);
    EXPECT_THROW(t.add_replica(0, 2), ContractError);  // finished
}

TEST(TaskTable, CompleteFromNonExecutorThrows) {
    TaskTable t(make_n(1));
    t.acquire_ready(0);
    EXPECT_THROW(t.complete(0, 9), ContractError);
}

TEST(TaskTable, ReleaseReturnsSoleTaskToReadyFront) {
    TaskTable t(make_n(2));
    t.acquire_ready(0);  // task 0
    t.release(0, 0);
    EXPECT_EQ(t.state(0), TaskState::Ready);
    EXPECT_EQ(t.ready_count(), 2u);
    // Released task re-issues before the untouched task 1.
    EXPECT_EQ(t.acquire_ready(1).value(), 0u);
}

TEST(TaskTable, ReleaseKeepsTaskExecutingIfReplicated) {
    TaskTable t(make_n(1));
    t.acquire_ready(0);
    t.add_replica(0, 1);
    t.release(0, 0);
    EXPECT_EQ(t.state(0), TaskState::Executing);
    EXPECT_EQ(t.executors(0), std::vector<PeId>{1});
}

TEST(TaskTable, ExecutingTasksSnapshot) {
    TaskTable t(make_n(3));
    t.acquire_ready(0);
    t.acquire_ready(1);
    t.complete(0, 0);
    EXPECT_EQ(t.executing_tasks(), std::vector<TaskId>{1});
}

TEST(TaskTable, StaleReadyQueueEntriesSkipped) {
    // release() pushes to the queue front; acquire later must skip
    // anything no longer Ready.
    TaskTable t(make_n(2));
    t.acquire_ready(0);          // 0 executing
    t.release(0, 0);             // 0 ready again (front)
    t.acquire_ready(1);          // takes 0
    EXPECT_EQ(t.acquire_ready(2).value(), 1u);
    EXPECT_FALSE(t.acquire_ready(3).has_value());
}

}  // namespace
}  // namespace swh::core

// Coverage for the simulator's observability surfaces: Gantt spans,
// rate traces, assignment latency, and report accounting.

#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "util/error.hpp"

namespace swh::sim {
namespace {

PeModelSpec pe(std::string label, double gcups,
               core::PeKind kind = core::PeKind::SseCore) {
    PeModelSpec spec;
    spec.label = std::move(label);
    spec.kind = kind;
    spec.peak_gcups = gcups;
    return spec;
}

SimConfig basic(std::size_t tasks = 8) {
    SimConfig cfg;
    cfg.policy = core::make_pss;
    cfg.db_residues = 1'000'000;
    cfg.query_lengths.assign(tasks, 1'000);  // 1 GCUP-second each
    cfg.pes = {pe("A", 1.0), pe("B", 1.0)};
    return cfg;
}

TEST(SimTrace, SpansTileEachPeWithoutOverlap) {
    const SimReport r = simulate(basic());
    for (std::size_t p = 0; p < 2; ++p) {
        std::vector<TaskSpan> mine;
        for (const TaskSpan& s : r.spans) {
            if (s.pe == p) mine.push_back(s);
        }
        std::sort(mine.begin(), mine.end(),
                  [](const TaskSpan& a, const TaskSpan& b) {
                      return a.start < b.start;
                  });
        for (std::size_t i = 1; i < mine.size(); ++i) {
            EXPECT_GE(mine[i].start, mine[i - 1].end - 1e-9)
                << "pe " << p << " span " << i;
        }
    }
}

TEST(SimTrace, AcceptedSpansCoverEveryTaskOnce) {
    const SimReport r = simulate(basic());
    std::vector<int> accepted(8, 0);
    for (const TaskSpan& s : r.spans) {
        if (s.accepted) ++accepted[s.task];
        EXPECT_GE(s.end, s.start);
    }
    for (const int count : accepted) EXPECT_EQ(count, 1);
}

TEST(SimTrace, BusySecondsMatchSpanLengths) {
    const SimReport r = simulate(basic());
    for (std::size_t p = 0; p < 2; ++p) {
        double span_total = 0.0;
        for (const TaskSpan& s : r.spans) {
            if (s.pe == p) span_total += s.end - s.start;
        }
        EXPECT_NEAR(r.pes[p].busy_seconds, span_total, 1e-6);
    }
}

TEST(SimTrace, RateSamplesMatchNominalSpeed) {
    SimConfig cfg = basic(6);
    cfg.notify_period_s = 0.5;
    const SimReport r = simulate(cfg);
    ASSERT_FALSE(r.rates.empty());
    for (const RateSample& s : r.rates) {
        EXPECT_NEAR(s.gcups, 1.0, 0.05) << "t=" << s.time;
    }
}

TEST(SimTrace, AssignLatencyDelaysEveryStart) {
    SimConfig cfg = basic(4);
    cfg.assign_latency_s = 0.5;
    const SimReport r = simulate(cfg);
    // First task on each PE cannot start before the reply lands.
    double first_start = 1e18;
    for (const TaskSpan& s : r.spans) {
        first_start = std::min(first_start, s.start);
    }
    EXPECT_GE(first_start, 0.5 - 1e-9);
    // Serial arithmetic: 4 tasks x 1 s on 2 PEs + at least 2 round trips
    // per PE.
    EXPECT_GE(r.makespan, 2.0 + 2 * 0.5 - 1e-9);
}

TEST(SimTrace, GanttMarksAbortedSpans) {
    SimConfig cfg;
    cfg.sched.cancel_losers = true;
    cfg.policy = core::make_self_scheduling;
    cfg.db_residues = 1'000'000;
    cfg.query_lengths = {10'000, 10'000};
    cfg.pes = {pe("slow", 0.1), pe("fast", 10.0, core::PeKind::Gpu)};
    const SimReport r = simulate(cfg);
    const std::string gantt = render_gantt(r, cfg.pes, 1.0);
    EXPECT_NE(gantt.find('x'), std::string::npos);  // aborted replica
}

TEST(SimTrace, ReportCountsReplicaDuplicates) {
    // Without cancellation the loser finishes and its result is
    // discarded: computed > accepted.
    SimConfig cfg;
    cfg.policy = core::make_self_scheduling;
    cfg.db_residues = 1'000'000;
    cfg.query_lengths = {10'000, 10'000};
    cfg.pes = {pe("slow", 0.1), pe("fast", 10.0, core::PeKind::Gpu)};
    const SimReport r = simulate(cfg);
    EXPECT_EQ(r.completions_discarded, 1u);
    EXPECT_GT(r.computed_cells, r.accepted_cells);
    EXPECT_GT(r.all_idle_time, r.makespan);
}

TEST(SimTrace, LptOrderingInSimulation) {
    SimConfig cfg;
    cfg.sched.ready_order = core::ReadyOrder::LargestFirst;
    cfg.policy = core::make_self_scheduling;
    cfg.db_residues = 1'000'000;
    cfg.query_lengths = {1'000, 9'000, 5'000};
    cfg.pes = {pe("A", 1.0)};
    const SimReport r = simulate(cfg);
    // Single PE: spans must run 9k, 5k, 1k in that order.
    ASSERT_EQ(r.spans.size(), 3u);
    EXPECT_EQ(r.spans[0].task, 1u);
    EXPECT_EQ(r.spans[1].task, 2u);
    EXPECT_EQ(r.spans[2].task, 0u);
}

}  // namespace
}  // namespace swh::sim

#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/error.hpp"

namespace swh::sim {
namespace {

PeModelSpec flat_pe(std::string label, core::PeKind kind, double gcups) {
    PeModelSpec pe;
    pe.label = std::move(label);
    pe.kind = kind;
    pe.peak_gcups = gcups;
    pe.task_overhead_s = 0.0;
    return pe;
}

/// The paper's Fig. 5 platform: 1 GPU at 6 "units" and 3 SSE cores at 1,
/// 20 equal tasks that take 1 s on the GPU.
SimConfig figure5_config(bool adjust) {
    SimConfig cfg;
    cfg.sched.workload_adjust = adjust;
    // Match the figure: an equally-slow SSE does not re-run t20; only the
    // faster GPU does.
    cfg.sched.replicate_only_if_faster = true;
    cfg.policy = core::make_pss;
    cfg.notify_period_s = 0.25;
    cfg.db_residues = 1'000'000;
    // 20 tasks x 6000 query residues -> 6e9 cells = 1 s at 6 GCUPS.
    cfg.query_lengths.assign(20, 6'000);
    cfg.pes = {flat_pe("GPU1", core::PeKind::Gpu, 6.0),
               flat_pe("SSE1", core::PeKind::SseCore, 1.0),
               flat_pe("SSE2", core::PeKind::SseCore, 1.0),
               flat_pe("SSE3", core::PeKind::SseCore, 1.0)};
    return cfg;
}

TEST(SimFigure5, WithAdjustmentCompletesAt14s) {
    const SimReport r = simulate(figure5_config(true));
    EXPECT_NEAR(r.makespan, 14.0, 0.3);
    EXPECT_GE(r.replicas_issued, 1u);
    EXPECT_EQ(r.accepted_cells, std::uint64_t{20} * 6'000 * 1'000'000);
}

TEST(SimFigure5, WithoutAdjustmentCompletesAt18s) {
    const SimReport r = simulate(figure5_config(false));
    EXPECT_NEAR(r.makespan, 18.0, 0.3);
    EXPECT_EQ(r.replicas_issued, 0u);
}

TEST(SimFigure5, GanttRendersAllPes) {
    const SimConfig cfg = figure5_config(true);
    const SimReport r = simulate(cfg);
    const std::string gantt = render_gantt(r, cfg.pes, 0.5);
    EXPECT_NE(gantt.find("GPU1"), std::string::npos);
    EXPECT_NE(gantt.find("SSE3"), std::string::npos);
}

TEST(Sim, Deterministic) {
    const SimReport a = simulate(figure5_config(true));
    const SimReport b = simulate(figure5_config(true));
    EXPECT_EQ(a.makespan, b.makespan);
    ASSERT_EQ(a.spans.size(), b.spans.size());
    for (std::size_t i = 0; i < a.spans.size(); ++i) {
        EXPECT_EQ(a.spans[i].task, b.spans[i].task);
        EXPECT_EQ(a.spans[i].pe, b.spans[i].pe);
        EXPECT_DOUBLE_EQ(a.spans[i].start, b.spans[i].start);
        EXPECT_DOUBLE_EQ(a.spans[i].end, b.spans[i].end);
    }
}

TEST(Sim, HomogeneousScalingIsNearLinear) {
    // Table III's shape: k SSE cores -> ~k x speedup.
    auto makespan_with = [](std::size_t cores) {
        SimConfig cfg;
        cfg.policy = core::make_pss;
        cfg.db_residues = 10'000'000;
        cfg.query_lengths.assign(40, 1'000);
        for (std::size_t i = 0; i < cores; ++i) {
            cfg.pes.push_back(flat_pe("SSE" + std::to_string(i),
                                      core::PeKind::SseCore, 2.0));
        }
        return simulate(cfg).makespan;
    };
    const double t1 = makespan_with(1);
    const double t2 = makespan_with(2);
    const double t4 = makespan_with(4);
    EXPECT_NEAR(t1 / t2, 2.0, 0.25);
    EXPECT_NEAR(t1 / t4, 4.0, 0.6);
}

TEST(Sim, SerialMakespanMatchesArithmetic) {
    SimConfig cfg;
    cfg.policy = core::make_self_scheduling;
    cfg.db_residues = 1'000'000;
    cfg.query_lengths = {1'000, 2'000, 3'000};  // 1, 2, 3 GCUP-seconds
    cfg.pes = {flat_pe("S", core::PeKind::SseCore, 1.0)};
    const SimReport r = simulate(cfg);
    // (1 + 2 + 3) e9 cells at 1 GCUPS.
    EXPECT_NEAR(r.makespan, 6.0, 1e-6);
    EXPECT_EQ(r.pes[0].results_accepted, 3u);
}

TEST(Sim, TaskOverheadCounts) {
    SimConfig cfg;
    cfg.policy = core::make_self_scheduling;
    cfg.db_residues = 1'000'000;
    cfg.query_lengths = {1'000, 1'000};
    PeModelSpec pe = flat_pe("S", core::PeKind::SseCore, 1.0);
    pe.task_overhead_s = 0.5;
    cfg.pes = {pe};
    const SimReport r = simulate(cfg);
    EXPECT_NEAR(r.makespan, 2.0 + 2 * 0.5, 1e-6);
}

TEST(Sim, LoadEventSlowsPeAndPssAdapts) {
    // Fig. 8's shape: introduce 50% local load on one of four cores.
    auto run = [](bool loaded) {
        SimConfig cfg;
        cfg.policy = core::make_pss;
        cfg.notify_period_s = 0.5;
        cfg.db_residues = 10'000'000;
        cfg.query_lengths.assign(40, 1'000);
        for (int i = 0; i < 4; ++i) {
            cfg.pes.push_back(flat_pe("C" + std::to_string(i),
                                      core::PeKind::SseCore, 2.0));
        }
        if (loaded) {
            // Halve core 0's speed at 30% of the dedicated makespan.
            cfg.load_events = {LoadEvent{15.0, 0, 0.5}};
        }
        return simulate(cfg);
    };
    const double dedicated = run(false).makespan;
    const double loaded = run(true).makespan;
    EXPECT_GT(loaded, dedicated);
    // Losing half of one of four cores late in the run must cost far
    // less than the 12.5% steady-state capacity loss would suggest.
    EXPECT_LT(loaded, dedicated * 1.25);
}

TEST(Sim, RateSamplesTrackLoadChange) {
    SimConfig cfg;
    cfg.policy = core::make_self_scheduling;
    cfg.notify_period_s = 0.5;
    cfg.db_residues = 1'000'000;
    cfg.query_lengths.assign(10, 10'000);  // 10 x 10 s at 1 GCUPS
    cfg.pes = {flat_pe("C0", core::PeKind::SseCore, 1.0)};
    cfg.load_events = {LoadEvent{50.0, 0, 0.5}};
    const SimReport r = simulate(cfg);
    double early = 0.0, late = 0.0;
    int early_n = 0, late_n = 0;
    for (const RateSample& s : r.rates) {
        if (s.time < 49.0) {
            early += s.gcups;
            ++early_n;
        } else if (s.time > 52.0) {
            late += s.gcups;
            ++late_n;
        }
    }
    ASSERT_GT(early_n, 0);
    ASSERT_GT(late_n, 0);
    EXPECT_NEAR(early / early_n, 1.0, 0.05);
    EXPECT_NEAR(late / late_n, 0.5, 0.05);
}

TEST(Sim, LeaveEventRescuesTasks) {
    SimConfig cfg;
    cfg.policy = [] { return core::make_chunked_self_scheduling(5); };
    cfg.db_residues = 1'000'000;
    cfg.query_lengths.assign(10, 1'000);
    cfg.pes = {flat_pe("A", core::PeKind::SseCore, 1.0),
               flat_pe("B", core::PeKind::SseCore, 1.0)};
    cfg.leave_events = {LeaveEvent{1.5, 0}};
    const SimReport r = simulate(cfg);
    EXPECT_EQ(r.accepted_cells, std::uint64_t{10} * 1'000 * 1'000'000);
    EXPECT_GE(r.pes[0].tasks_aborted, 1u);
    EXPECT_GE(r.pes[1].results_accepted, 7u);
}

TEST(Sim, JoinEventAddsCapacity) {
    auto run = [](bool with_join) {
        SimConfig cfg;
        cfg.policy = core::make_pss;
        cfg.db_residues = 10'000'000;
        cfg.query_lengths.assign(20, 1'000);
        cfg.pes = {flat_pe("A", core::PeKind::SseCore, 1.0)};
        if (with_join) {
            cfg.join_events = {
                JoinEvent{1.0, flat_pe("J", core::PeKind::Gpu, 10.0)}};
        }
        return simulate(cfg).makespan;
    };
    EXPECT_LT(run(true), 0.6 * run(false));
}

TEST(Sim, CancelLosersFreesThePe) {
    SimConfig cfg;
    cfg.sched.cancel_losers = true;
    cfg.policy = core::make_self_scheduling;
    cfg.db_residues = 1'000'000;
    cfg.query_lengths = {10'000, 10'000};
    cfg.pes = {flat_pe("slow", core::PeKind::SseCore, 0.1),
               flat_pe("fast", core::PeKind::Gpu, 10.0)};
    const SimReport r = simulate(cfg);
    // The fast PE re-runs the slow PE's task and wins; the slow PE's
    // replica is aborted rather than run to completion.
    bool aborted = false;
    for (const TaskSpan& s : r.spans) aborted |= s.aborted;
    EXPECT_TRUE(aborted);
    EXPECT_EQ(r.completions_discarded, 0u);
    EXPECT_NEAR(r.all_idle_time, r.makespan, 1e-9);
}

TEST(Sim, RejectsEmptyPlatform) {
    SimConfig cfg;
    cfg.db_residues = 1;
    cfg.query_lengths = {10};
    EXPECT_THROW(simulate(cfg), ContractError);
}

TEST(Sim, MaxTimeGuard) {
    SimConfig cfg;
    cfg.policy = core::make_self_scheduling;
    cfg.db_residues = 1'000'000'000;
    cfg.query_lengths = {1'000'000};
    cfg.pes = {flat_pe("S", core::PeKind::SseCore, 0.001)};
    cfg.max_time = 10.0;  // task needs 1e15/1e6 s — way beyond
    EXPECT_THROW(simulate(cfg), ContractError);
}

}  // namespace
}  // namespace swh::sim

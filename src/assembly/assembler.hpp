#pragma once

#include <cstdint>
#include <vector>

#include "align/overlap.hpp"
#include "align/score_matrix.hpp"
#include "align/sequence.hpp"

namespace swh::assembly {

/// Greedy overlap-layout-consensus assembler configuration.
struct AssemblyOptions {
    align::Score match = 5;
    align::Score mismatch = -4;
    /// Near-prohibitive: the read model is substitution-only, and a
    /// single indel-shifted overlap corrupts every downstream offset in
    /// the layout. Gapped consensus would be needed to relax this.
    align::GapPenalty gap{100, 10};
    std::size_t min_overlap = 20; ///< bases of dovetail required
    /// Minimum overlap score; the default demands ~85% identity over
    /// min_overlap matched bases.
    align::Score min_score = 75;
    unsigned threads = 1;  ///< worker threads for the O(n^2) overlap stage
};

/// One read-vs-read dovetail candidate (suffix of read a, prefix of b).
struct OverlapEdge {
    std::size_t a = 0;
    std::size_t b = 0;
    align::Overlap overlap;
};

struct Contig {
    std::vector<align::Code> consensus;
    std::vector<std::size_t> read_ids;   ///< layout order
    std::vector<std::size_t> offsets;    ///< read start in contig coords
};

struct AssemblyResult {
    std::vector<Contig> contigs;  ///< longest first
    std::size_t overlap_candidates = 0;  ///< edges above threshold
    std::size_t overlaps_used = 0;       ///< edges in the final layout

    /// Length of the longest contig (0 when empty).
    std::size_t largest_contig() const {
        return contigs.empty() ? 0 : contigs.front().consensus.size();
    }
    /// Standard N50 statistic over contig lengths.
    std::size_t n50() const;
};

/// Computes all dovetail overlaps (a != b) with at least `min_overlap`
/// aligned prefix bases of b and score >= min_score.
std::vector<OverlapEdge> find_overlaps(
    const std::vector<align::Sequence>& reads,
    const AssemblyOptions& options);

/// Greedy OLC: pick overlap edges best-first, chain reads (one
/// successor / one predecessor, no cycles), then call a per-column
/// majority consensus over the pileup. Handles substitution errors;
/// indel errors would need gapped consensus (documented limitation).
AssemblyResult assemble(const std::vector<align::Sequence>& reads,
                        const AssemblyOptions& options = {});

}  // namespace swh::assembly

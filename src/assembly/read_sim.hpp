#pragma once

#include <cstdint>
#include <vector>

#include "align/sequence.hpp"
#include "io/fastq.hpp"
#include "util/rng.hpp"

namespace swh::assembly {

/// Shotgun-sequencing simulator parameters. Reads are sampled uniformly
/// from the forward strand (single-stranded model — a documented
/// simplification; real assemblers also handle reverse complements).
struct ReadSimSpec {
    double coverage = 10.0;       ///< mean bases sampled per reference base
    std::size_t read_len = 100;
    double error_rate = 0.0;      ///< per-base substitution probability
    std::uint64_t seed = 1;
};

struct SimulatedRead {
    io::FastqRecord record;
    std::size_t true_position = 0;  ///< origin in the reference
};

/// Samples reads from `reference` (a DNA sequence). Quality scores are
/// derived from the error rate (constant Phred). Read count is
/// ceil(coverage * |ref| / read_len); every position is coverable
/// because starts are uniform over [0, |ref| - read_len].
std::vector<SimulatedRead> simulate_reads(const align::Sequence& reference,
                                          const ReadSimSpec& spec);

/// Generates a random DNA reference of the given length.
align::Sequence random_reference(std::size_t length, std::uint64_t seed);

}  // namespace swh::assembly

#include "assembly/assembler.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <numeric>
#include <thread>

#include "align/alphabet.hpp"
#include "util/error.hpp"

namespace swh::assembly {

using align::Code;
using align::Score;

std::size_t AssemblyResult::n50() const {
    std::size_t total = 0;
    for (const Contig& c : contigs) total += c.consensus.size();
    if (total == 0) return 0;
    std::size_t acc = 0;
    for (const Contig& c : contigs) {  // contigs are longest-first
        acc += c.consensus.size();
        if (2 * acc >= total) return c.consensus.size();
    }
    return contigs.back().consensus.size();
}

std::vector<OverlapEdge> find_overlaps(
    const std::vector<align::Sequence>& reads,
    const AssemblyOptions& options) {
    SWH_REQUIRE(options.threads >= 1, "need at least one thread");
    SWH_REQUIRE(options.min_overlap > 0, "min_overlap must be positive");
    const align::ScoreMatrix matrix = align::ScoreMatrix::match_mismatch(
        align::Alphabet::dna(), options.match, options.mismatch, 0);

    const std::size_t n = reads.size();
    std::vector<std::vector<OverlapEdge>> per_thread(options.threads);
    std::atomic<std::size_t> next{0};

    auto worker = [&](unsigned wid) {
        while (true) {
            const std::size_t a = next.fetch_add(1);
            if (a >= n) break;
            for (std::size_t b = 0; b < n; ++b) {
                if (a == b) continue;
                const align::Overlap ov = align::overlap_align(
                    reads[a].residues, reads[b].residues, matrix,
                    options.gap);
                if (ov.b_end >= options.min_overlap &&
                    ov.score >= options.min_score) {
                    per_thread[wid].push_back(OverlapEdge{a, b, ov});
                }
            }
        }
    };
    std::vector<std::thread> pool;
    for (unsigned w = 1; w < options.threads; ++w)
        pool.emplace_back(worker, w);
    worker(0);
    for (std::thread& t : pool) t.join();

    std::vector<OverlapEdge> edges;
    for (auto& part : per_thread) {
        edges.insert(edges.end(), part.begin(), part.end());
    }
    // Best-first; deterministic tie-break by read ids.
    std::sort(edges.begin(), edges.end(),
              [](const OverlapEdge& x, const OverlapEdge& y) {
                  if (x.overlap.score != y.overlap.score)
                      return x.overlap.score > y.overlap.score;
                  if (x.a != y.a) return x.a < y.a;
                  return x.b < y.b;
              });
    return edges;
}

namespace {

/// Union-find for cycle prevention during greedy chaining.
class UnionFind {
public:
    explicit UnionFind(std::size_t n) : parent_(n) {
        std::iota(parent_.begin(), parent_.end(), std::size_t{0});
    }
    std::size_t find(std::size_t x) {
        while (parent_[x] != x) {
            parent_[x] = parent_[parent_[x]];
            x = parent_[x];
        }
        return x;
    }
    void merge(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

private:
    std::vector<std::size_t> parent_;
};

}  // namespace

AssemblyResult assemble(const std::vector<align::Sequence>& reads,
                        const AssemblyOptions& options) {
    SWH_REQUIRE(!reads.empty(), "no reads to assemble");
    AssemblyResult result;
    const std::vector<OverlapEdge> edges = find_overlaps(reads, options);
    result.overlap_candidates = edges.size();

    // Greedy chaining: each read gets at most one successor and one
    // predecessor; an edge inside one chain would close a cycle.
    constexpr std::size_t kNone = ~std::size_t{0};
    const std::size_t n = reads.size();
    std::vector<std::size_t> next(n, kNone), prev(n, kNone);
    std::vector<align::Overlap> next_overlap(n);
    UnionFind uf(n);
    for (const OverlapEdge& e : edges) {
        if (next[e.a] != kNone || prev[e.b] != kNone) continue;
        if (uf.find(e.a) == uf.find(e.b)) continue;  // would cycle
        next[e.a] = e.b;
        next_overlap[e.a] = e.overlap;
        prev[e.b] = e.a;
        uf.merge(e.a, e.b);
        ++result.overlaps_used;
    }

    // Layout + pileup consensus per chain.
    for (std::size_t start = 0; start < n; ++start) {
        if (prev[start] != kNone) continue;  // interior of a chain
        Contig contig;
        std::size_t offset = 0;
        for (std::size_t r = start; r != kNone; r = next[r]) {
            contig.read_ids.push_back(r);
            contig.offsets.push_back(offset);
            if (next[r] != kNone) {
                // The successor starts where the dovetail begins in r.
                offset += next_overlap[r].a_begin;
            }
        }
        std::size_t length = 0;
        for (std::size_t k = 0; k < contig.read_ids.size(); ++k) {
            length = std::max(length, contig.offsets[k] +
                                          reads[contig.read_ids[k]].size());
        }
        // Majority vote per column (substitution errors only; reads have
        // no indels, so offsets are exact).
        std::vector<std::array<std::uint32_t, 5>> votes(
            length, std::array<std::uint32_t, 5>{});
        for (std::size_t k = 0; k < contig.read_ids.size(); ++k) {
            const align::Sequence& read = reads[contig.read_ids[k]];
            for (std::size_t p = 0; p < read.size(); ++p) {
                const Code c = read.residues[p];
                votes[contig.offsets[k] + p][std::min<Code>(c, 4)]++;
            }
        }
        contig.consensus.resize(length);
        for (std::size_t col = 0; col < length; ++col) {
            std::size_t best = 0;
            for (std::size_t c = 1; c < 5; ++c) {
                if (votes[col][c] > votes[col][best]) best = c;
            }
            contig.consensus[col] = static_cast<Code>(best);
        }
        result.contigs.push_back(std::move(contig));
    }

    std::sort(result.contigs.begin(), result.contigs.end(),
              [](const Contig& a, const Contig& b) {
                  return a.consensus.size() > b.consensus.size();
              });
    return result;
}

}  // namespace swh::assembly

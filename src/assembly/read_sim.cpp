#include "assembly/read_sim.hpp"

#include <algorithm>
#include <cmath>

#include "db/generator.hpp"
#include "util/error.hpp"

namespace swh::assembly {

align::Sequence random_reference(std::size_t length, std::uint64_t seed) {
    Rng rng(seed);
    return db::random_dna(rng, length, "reference");
}

std::vector<SimulatedRead> simulate_reads(const align::Sequence& reference,
                                          const ReadSimSpec& spec) {
    SWH_REQUIRE(spec.read_len >= 10, "reads too short to assemble");
    SWH_REQUIRE(reference.size() >= spec.read_len,
                "reference shorter than one read");
    SWH_REQUIRE(spec.coverage > 0.0, "coverage must be positive");
    SWH_REQUIRE(spec.error_rate >= 0.0 && spec.error_rate < 0.5,
                "error rate out of range");

    const auto count = static_cast<std::size_t>(std::ceil(
        spec.coverage * static_cast<double>(reference.size()) /
        static_cast<double>(spec.read_len)));
    // Phred score of the per-base error rate (capped for error-free).
    const int phred =
        spec.error_rate > 0.0
            ? std::min(93, static_cast<int>(std::lround(
                               -10.0 * std::log10(spec.error_rate))))
            : 60;

    Rng rng(spec.seed);
    std::vector<SimulatedRead> reads;
    reads.reserve(count);
    const std::size_t max_start = reference.size() - spec.read_len;
    for (std::size_t r = 0; r < count; ++r) {
        const std::size_t start = rng.below(max_start + 1);
        SimulatedRead read;
        read.true_position = start;
        read.record.seq.id = "read_" + std::to_string(r);
        read.record.seq.residues.assign(
            reference.residues.begin() +
                static_cast<std::ptrdiff_t>(start),
            reference.residues.begin() +
                static_cast<std::ptrdiff_t>(start + spec.read_len));
        for (align::Code& base : read.record.seq.residues) {
            if (spec.error_rate > 0.0 && rng.uniform() < spec.error_rate) {
                align::Code repl = base;
                while (repl == base) {
                    repl = static_cast<align::Code>(rng.below(4));
                }
                base = repl;
            }
        }
        read.record.quality.assign(spec.read_len,
                                   static_cast<std::uint8_t>(phred));
        reads.push_back(std::move(read));
    }
    return reads;
}

}  // namespace swh::assembly

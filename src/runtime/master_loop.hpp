#pragma once

// Protocol loop of the master, factored out of HybridRuntime (ISSUE
// 10): the deadline-driven message pump, PE lifecycle states, liveness
// sweep, parked retries with exponential backoff, lost-completion
// recovery, and replica cancellation — shared verbatim between the
// threaded runtime and the multi-process socket runtime so the PR-5
// fault machinery is exercised identically over both transports.

#include <cstddef>
#include <vector>

#include "core/results.hpp"
#include "core/scheduler.hpp"
#include "net/channel.hpp"
#include "net/messages.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/hybrid_runtime.hpp"
#include "util/timer.hpp"

namespace swh::runtime {

/// The master loop's downlink to one slave. The threaded runtime backs
/// it with the slave's shared-inbox Channel; the socket runtime encodes
/// frames onto that slave's connection.
class SlaveLink {
public:
    virtual ~SlaveLink() = default;

    virtual void send(net::SlaveMsg msg) = 0;

    /// Cooperative kill for a slave the liveness layer gave up on: make
    /// its blocked recv unblock and its cancellation poll fire
    /// (threaded: mark abandoned + close the inbox; socket: shut the
    /// connection down).
    virtual void abandon() = 0;
};

/// Optional fault-metric sinks (null = off), pre-resolved by the caller
/// so the loop never touches a registry.
struct MasterLoopCounters {
    obs::Counter* engine_failures = nullptr;
    obs::Counter* retries = nullptr;
    obs::Counter* presumed_dead = nullptr;
    obs::Counter* late_discards = nullptr;
    obs::Counter* heartbeats = nullptr;
};

struct MasterLoopConfig {
    /// 0 disables liveness — the original immortal-slave assumption.
    double liveness_timeout_s = 0.0;
    /// Enables lost-completion recovery on serve (only needed when the
    /// slave->master link can drop messages).
    bool lossy_master_link = false;
    std::size_t max_task_retries = 3;
    double retry_backoff_s = 0.01;
    double retry_backoff_max_s = 1.0;
};

/// Runs the master protocol until every slave has finished (shutdown,
/// left, or presumed dead). Consumes `inbox`; replies go out through
/// `links` (index = PeId). Fills the scheduler-derived fields of
/// `report` — per-slave accept/discard stats, fault counters,
/// replicas_issued, completions_discarded, failed_tasks — leaving
/// wall_seconds/gcups/hits/metrics and slave-side stats to the caller.
/// `clock` must be the timebase the scheduler observations use.
void run_master_loop(core::SchedulerCore& sched, core::ResultMerger& merger,
                     net::Channel<net::MasterMsg>& inbox,
                     const std::vector<SlaveLink*>& links,
                     const Timer& clock, const MasterLoopConfig& config,
                     const MasterLoopCounters& counters,
                     obs::TraceLane* master_lane, RunReport& report);

}  // namespace swh::runtime

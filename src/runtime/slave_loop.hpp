#pragma once

// Protocol loop of one slave PE, factored out of HybridRuntime (ISSUE
// 10) so the identical logic — work requests, progress notifications,
// cancellation polling, engine-failure containment, heartbeats — drives
// both an in-process slave thread and a swhybrid_slave OS process over
// the socket transport.

#include <optional>
#include <vector>

#include "align/sequence.hpp"
#include "db/database.hpp"
#include "engines/engine.hpp"
#include "net/messages.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/hybrid_runtime.hpp"

namespace swh::runtime {

/// The slave loop's view of its two links: the uplink to the master and
/// its own inbox. The threaded runtime backs this with a pair of
/// net::Channel; the socket runtime with a net::SlaveRemoteChannel.
class SlaveEndpoint {
public:
    virtual ~SlaveEndpoint() = default;

    virtual void send(net::MasterMsg msg) = 0;
    virtual std::optional<net::SlaveMsg> recv() = 0;
    virtual std::optional<net::SlaveMsg> recv_for(double timeout_s) = 0;
    virtual std::optional<net::SlaveMsg> try_recv() = 0;
    virtual bool inbox_closed() = 0;

    /// Invoked when the loop observes a closed inbox and is about to
    /// exit (right before the farewell MsgDeregister). The threaded
    /// runtime asserts the close was master-initiated; the socket
    /// runtime treats it as a dropped connection.
    virtual void on_inbox_closed_exit() {}
};

struct SlaveLoopConfig {
    core::PeId pe = 0;
    double notify_period_s = 0.2;
    /// When true the loop beacons MsgHeartbeat every heartbeat_period_s
    /// while idle-blocked (and re-sends its registration until the
    /// master has spoken to it at all); when false idle waits block
    /// indefinitely — the original immortal-slave behaviour.
    bool liveness = false;
    double heartbeat_period_s = 0.05;
    /// After this many accepted completions the slave deregisters,
    /// abandoning whatever is queued (0 = stays to the end).
    std::size_t leave_after_tasks = 0;
    obs::TraceLane* lane = nullptr;
    obs::Histogram* duration_hist = nullptr;
};

/// Runs the slave protocol to completion: register, request work,
/// execute, report, until MsgShutdown / early leave / master
/// abandonment. Engine exceptions become MsgTaskFailed (the loop
/// survives them); engines::SimulatedCrash makes the loop vanish
/// silently with report.crashed set, exactly like a dead process.
void run_slave_loop(SlaveEndpoint& endpoint, engines::ComputeEngine& engine,
                    const std::vector<align::Sequence>& queries,
                    const db::Database& database,
                    const SlaveLoopConfig& config, SlaveReport& report);

}  // namespace swh::runtime

#include "runtime/slave_loop.hpp"

#include <set>
#include <string>
#include <utility>
#include <variant>

#include "engines/faulty_engine.hpp"
#include "util/annotations.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace swh::runtime {

using core::PeId;
using core::TaskId;

namespace {

/// Slave-side execution observer: converts engine cell counts into
/// periodic MsgProgress notifications (which double as liveness
/// heartbeats while busy) and services master messages that arrive
/// mid-execution — cancellations, pushed assignments, and the "you're
/// gone" signal of a closed inbox.
class SlaveObserver final : public engines::ExecutionObserver {
public:
    SlaveObserver(PeId pe, TaskId current, double notify_period_s,
                  SlaveEndpoint& endpoint, std::set<TaskId>& cancelled_queue,
                  std::vector<core::Task>& pending_assigns,
                  obs::TraceLane* lane)
        : pe_(pe),
          current_(current),
          period_(notify_period_s),
          endpoint_(endpoint),
          cancelled_queue_(cancelled_queue),
          pending_assigns_(pending_assigns),
          lane_(lane) {}

    void on_cells(std::uint64_t cells_delta) override {
        // ISSUE 5 satellite fix: cells_/since_notify_ used to be mutated
        // unguarded here while cancelled() documents multi-threaded
        // polling — everything mutable now serialises on mu_.
        const swh::LockGuard lock(mu_);
        cells_ += cells_delta;
        const double elapsed = since_notify_.seconds();
        if (elapsed >= period_ && cells_ > 0) {
            endpoint_.send(net::MsgProgress{
                pe_, static_cast<double>(cells_) / elapsed});
            cells_ = 0;
            since_notify_.reset();
        }
    }

    bool cancelled() const override {
        // Engines may poll from several worker threads.
        const swh::LockGuard lock(mu_);
        drain_inbox_locked();
        return cancelled_current_;
    }

    bool cancelled_current() const {
        const swh::LockGuard lock(mu_);
        return cancelled_current_;
    }

    bool saw_shutdown() const {
        const swh::LockGuard lock(mu_);
        return shutdown_;
    }

    /// The slave thread's trace lane, so engines nest kernel spans
    /// inside this slave's task span.
    obs::TraceLane* trace_lane() const override { return lane_; }

    /// Rate over the whole task, for a final notification on completion.
    void send_final_rate() {
        const swh::LockGuard lock(mu_);
        const double elapsed = since_notify_.seconds();
        if (cells_ > 0 && elapsed > 0.0) {
            endpoint_.send(net::MsgProgress{
                pe_, static_cast<double>(cells_) / elapsed});
        }
    }

private:
    void drain_inbox_locked() const SWH_REQUIRES(mu_) {
        while (auto msg = endpoint_.try_recv()) {
            if (const auto* cancel = std::get_if<net::MsgCancel>(&*msg)) {
                if (cancel->task == current_) {
                    cancelled_current_ = true;
                } else {
                    cancelled_queue_.insert(cancel->task);
                }
            } else if (const auto* assign =
                           std::get_if<net::MsgAssign>(&*msg)) {
                // The master served a heartbeat that raced our previous
                // request; queue the package for after this task.
                pending_assigns_.insert(pending_assigns_.end(),
                                        assign->tasks.begin(),
                                        assign->tasks.end());
            } else if (std::holds_alternative<net::MsgShutdown>(*msg)) {
                shutdown_ = true;
                cancelled_current_ = true;
            } else if (std::holds_alternative<net::MsgNoWorkYet>(*msg)) {
                // Stale reply to a duplicated request; ignore.
            }
        }
        // A closed inbox is the master's "you're gone" (presumed dead,
        // or the end-of-run drain): stop the engine cooperatively. This
        // is what unwedges a permanently stalled engine.
        if (endpoint_.inbox_closed()) cancelled_current_ = true;
    }

    const PeId pe_;
    const TaskId current_;
    const double period_;
    SlaveEndpoint& endpoint_;
    /// Written under mu_ while the engine runs; the slave thread reads
    /// them lock-free only after execute() returns (the engine joins its
    /// pollers before returning, which orders those accesses).
    std::set<TaskId>& cancelled_queue_;
    std::vector<core::Task>& pending_assigns_;
    mutable swh::Mutex mu_;
    mutable bool cancelled_current_ SWH_GUARDED_BY(mu_) = false;
    mutable bool shutdown_ SWH_GUARDED_BY(mu_) = false;
    mutable std::uint64_t cells_ SWH_GUARDED_BY(mu_) = 0;
    mutable Timer since_notify_ SWH_GUARDED_BY(mu_);
    obs::TraceLane* const lane_;
};

}  // namespace

void run_slave_loop(SlaveEndpoint& endpoint, engines::ComputeEngine& engine,
                    const std::vector<align::Sequence>& queries,
                    const db::Database& database,
                    const SlaveLoopConfig& config, SlaveReport& report) {
    const PeId pe = config.pe;
    endpoint.send(net::MsgRegister{pe, engine.kind()});

    // ISSUE 5 satellite fix: the old code silently `return`ed here on a
    // closed inbox, leaving the master's finished_slaves count short and
    // the run deadlocked. The inbox now only closes when the master
    // already wrote this slave off (presumed dead, end-of-run drain, or
    // — over sockets — a dropped connection); we still notify it for
    // the audit trail.
    auto exit_on_closed_inbox = [&] {
        endpoint.on_inbox_closed_exit();
        endpoint.send(net::MsgDeregister{pe});
    };

    std::vector<core::Task> batch;
    std::set<TaskId> cancelled_queue;
    std::vector<core::Task> pending_assigns;
    std::size_t completions = 0;
    bool heard_from_master = false;
    while (true) {
        if (batch.empty() && !pending_assigns.empty()) {
            batch = std::move(pending_assigns);
            pending_assigns.clear();
        }
        if (batch.empty()) {
            endpoint.send(net::MsgWorkRequest{pe});
            bool got_batch = false;
            while (!got_batch) {
                std::optional<net::SlaveMsg> msg =
                    config.liveness
                        ? endpoint.recv_for(config.heartbeat_period_s)
                        : endpoint.recv();
                if (!msg) {
                    if (endpoint.inbox_closed()) {
                        exit_on_closed_inbox();
                        return;
                    }
                    // recv_for timed out: beacon liveness. Until the
                    // master has spoken to us at all, re-send the
                    // registration instead — the first Register (or the
                    // work request after it) may have been dropped by an
                    // injected link fault.
                    if (heard_from_master) {
                        endpoint.send(net::MsgHeartbeat{pe});
                    } else {
                        endpoint.send(net::MsgRegister{pe, engine.kind()});
                        endpoint.send(net::MsgWorkRequest{pe});
                    }
                    continue;
                }
                heard_from_master = true;
                if (const auto* assign = std::get_if<net::MsgAssign>(&*msg)) {
                    batch = assign->tasks;
                    got_batch = true;
                } else if (std::holds_alternative<net::MsgShutdown>(*msg)) {
                    return;
                } else if (const auto* cancel =
                               std::get_if<net::MsgCancel>(&*msg)) {
                    // Cancellation for a task we already finished or
                    // never started; nothing to do.
                    (void)cancel;
                } else if (std::holds_alternative<net::MsgNoWorkYet>(*msg)) {
                    // Keep blocking; the master will push.
                }
            }
        }

        const core::Task task_meta = batch.front();
        const TaskId t = task_meta.id;
        batch.erase(batch.begin());
        if (cancelled_queue.erase(t) > 0) {
            ++report.tasks_cancelled;
            continue;  // master already released it
        }
        // Over a real transport the index arrives off the wire, so it is
        // validated against this process's query set rather than trusted.
        SWH_CHECK_LT(task_meta.query_index, queries.size(),
                     "assigned task references an unknown query");
        const align::Sequence& query = queries[task_meta.query_index];

        // Contract failures raised while this task runs carry the
        // slave/task ids in their report.
        const check::ScopedContext check_ctx(pe, t);
        SlaveObserver slave_obs(pe, t, config.notify_period_s, endpoint,
                                cancelled_queue, pending_assigns,
                                config.lane);
        if (config.lane != nullptr) config.lane->span_begin("task", t, pe);
        Timer task_timer;
        core::TaskResult result;
        bool failed = false;
        std::string failure;
        // Containment (ISSUE 5): an engine exception used to unwind out
        // of this thread and std::terminate the process. It now becomes
        // MsgTaskFailed and the slave soldiers on. The one exception
        // that stays fatal-by-design is SimulatedCrash — fault injection
        // for "the PE vanished", which only the master's liveness
        // timeout can handle.
        try {
            result = engine.execute(query, task_meta.query_index, t,
                                    database, &slave_obs);
        } catch (const engines::SimulatedCrash&) {
            report.crashed = true;
            if (config.lane != nullptr) {
                config.lane->span_end("task", t, 1.0, pe);
            }
            return;  // die silently: no MsgDeregister, no cleanup
        } catch (const std::exception& e) {
            failed = true;
            failure = e.what();
        } catch (...) {
            failed = true;
            failure = "unknown engine failure";
        }
        const double task_seconds = task_timer.seconds();
        report.cells_computed += result.cells;

        const bool was_cancelled = slave_obs.cancelled_current();
        if (config.duration_hist != nullptr) {
            config.duration_hist->record(task_seconds);
        }
        if (config.lane != nullptr) {
            config.lane->span_end("task", t,
                                  (was_cancelled || failed) ? 1.0 : 0.0, pe);
        }

        if (failed) {
            ++report.engine_failures;
            endpoint.send(net::MsgTaskFailed{pe, t, failure});
        } else if (was_cancelled) {
            ++report.tasks_cancelled;
        } else {
            slave_obs.send_final_rate();
            endpoint.send(net::MsgTaskDone{pe, t, std::move(result)});
            ++completions;
        }

        if (endpoint.inbox_closed()) {
            exit_on_closed_inbox();
            return;
        }
        if (slave_obs.saw_shutdown()) return;

        if (config.leave_after_tasks > 0 &&
            completions >= config.leave_after_tasks) {
            // Abandon whatever is still queued and leave the platform.
            report.left_early = true;
            endpoint.send(net::MsgDeregister{pe});
            return;
        }
    }
}

}  // namespace swh::runtime

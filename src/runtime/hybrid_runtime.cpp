#include "runtime/hybrid_runtime.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <limits>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <utility>

#include "engines/faulty_engine.hpp"
#include "net/channel.hpp"
#include "net/messages.hpp"
#include "obs/sched_log.hpp"
#include "obs/trace.hpp"
#include "obs/tracers.hpp"
#include "util/annotations.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace swh::runtime {

using core::PeId;
using core::TaskId;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Slave-side execution observer: converts engine cell counts into
/// periodic MsgProgress notifications (which double as liveness
/// heartbeats while busy) and services master messages that arrive
/// mid-execution — cancellations, pushed assignments, and the "you're
/// gone" signal of a closed inbox.
class SlaveObserver final : public engines::ExecutionObserver {
public:
    SlaveObserver(PeId pe, TaskId current, double notify_period_s,
                  net::Channel<net::MasterMsg>& to_master,
                  net::Channel<net::SlaveMsg>& inbox,
                  std::set<TaskId>& cancelled_queue,
                  std::vector<core::Task>& pending_assigns,
                  obs::TraceLane* lane)
        : pe_(pe),
          current_(current),
          period_(notify_period_s),
          to_master_(to_master),
          inbox_(inbox),
          cancelled_queue_(cancelled_queue),
          pending_assigns_(pending_assigns),
          lane_(lane) {}

    void on_cells(std::uint64_t cells_delta) override {
        // ISSUE 5 satellite fix: cells_/since_notify_ used to be mutated
        // unguarded here while cancelled() documents multi-threaded
        // polling — everything mutable now serialises on mu_.
        const swh::LockGuard lock(mu_);
        cells_ += cells_delta;
        const double elapsed = since_notify_.seconds();
        if (elapsed >= period_ && cells_ > 0) {
            to_master_.send(net::MsgProgress{
                pe_, static_cast<double>(cells_) / elapsed});
            cells_ = 0;
            since_notify_.reset();
        }
    }

    bool cancelled() const override {
        // Engines may poll from several worker threads.
        const swh::LockGuard lock(mu_);
        drain_inbox_locked();
        return cancelled_current_;
    }

    bool cancelled_current() const {
        const swh::LockGuard lock(mu_);
        return cancelled_current_;
    }

    bool saw_shutdown() const {
        const swh::LockGuard lock(mu_);
        return shutdown_;
    }

    /// The slave thread's trace lane, so engines nest kernel spans
    /// inside this slave's task span.
    obs::TraceLane* trace_lane() const override { return lane_; }

    /// Rate over the whole task, for a final notification on completion.
    void send_final_rate() {
        const swh::LockGuard lock(mu_);
        const double elapsed = since_notify_.seconds();
        if (cells_ > 0 && elapsed > 0.0) {
            to_master_.send(net::MsgProgress{
                pe_, static_cast<double>(cells_) / elapsed});
        }
    }

private:
    void drain_inbox_locked() const SWH_REQUIRES(mu_) {
        while (auto msg = inbox_.try_recv()) {
            if (const auto* cancel = std::get_if<net::MsgCancel>(&*msg)) {
                if (cancel->task == current_) {
                    cancelled_current_ = true;
                } else {
                    cancelled_queue_.insert(cancel->task);
                }
            } else if (const auto* assign =
                           std::get_if<net::MsgAssign>(&*msg)) {
                // The master served a heartbeat that raced our previous
                // request; queue the package for after this task.
                pending_assigns_.insert(pending_assigns_.end(),
                                        assign->tasks.begin(),
                                        assign->tasks.end());
            } else if (std::holds_alternative<net::MsgShutdown>(*msg)) {
                shutdown_ = true;
                cancelled_current_ = true;
            } else if (std::holds_alternative<net::MsgNoWorkYet>(*msg)) {
                // Stale reply to a duplicated request; ignore.
            }
        }
        // A closed inbox is the master's "you're gone" (presumed dead,
        // or the end-of-run drain): stop the engine cooperatively. This
        // is what unwedges a permanently stalled engine.
        if (inbox_.closed()) cancelled_current_ = true;
    }

    const PeId pe_;
    const TaskId current_;
    const double period_;
    net::Channel<net::MasterMsg>& to_master_;
    net::Channel<net::SlaveMsg>& inbox_;
    /// Written under mu_ while the engine runs; the slave thread reads
    /// them lock-free only after execute() returns (the engine joins its
    /// pollers before returning, which orders those accesses).
    std::set<TaskId>& cancelled_queue_;
    std::vector<core::Task>& pending_assigns_;
    mutable swh::Mutex mu_;
    mutable bool cancelled_current_ SWH_GUARDED_BY(mu_) = false;
    mutable bool shutdown_ SWH_GUARDED_BY(mu_) = false;
    mutable std::uint64_t cells_ SWH_GUARDED_BY(mu_) = 0;
    mutable Timer since_notify_ SWH_GUARDED_BY(mu_);
    obs::TraceLane* const lane_;
};

struct SlaveShared {
    net::Channel<net::SlaveMsg> inbox;
    SlaveReport report;
    /// Set by the master right before it closes `inbox` mid-run (the
    /// liveness layer gave up on this slave). Lets the slave's exit path
    /// assert the inbox never closes outside a master-initiated drain.
    std::atomic<bool> abandoned_by_master{false};

    explicit SlaveShared(double delay) : inbox(delay) {}
};

/// Master-side lifecycle of one slave. Exactly one transition out of
/// Active increments finished_slaves, which is what makes the master
/// loop's termination condition immune to duplicate/late messages.
enum class PeState : std::uint8_t {
    Unseen,    ///< never registered (thread may not have started yet)
    Active,    ///< registered and presumed alive
    Shutdown,  ///< sent MsgShutdown (all tasks finished)
    Dead,      ///< liveness timeout expired; tasks were requeued
    Left,      ///< sent MsgDeregister (leave_after_tasks)
};

}  // namespace

HybridRuntime::HybridRuntime(const db::Database& database,
                             std::vector<align::Sequence> queries,
                             RuntimeOptions options)
    : database_(&database),
      queries_(std::move(queries)),
      options_(options) {
    SWH_CHECK(!queries_.empty(), "query set must be non-empty");
    SWH_CHECK_GT(options_.notify_period_s, 0.0,
                 "notify period must be positive");
    SWH_CHECK_GE(options_.liveness_timeout_s, 0.0,
                 "liveness timeout must be non-negative");
    if (options_.liveness_timeout_s > 0.0) {
        SWH_CHECK_GT(options_.heartbeat_period_s, 0.0,
                     "heartbeat period must be positive");
        SWH_CHECK_LT(options_.heartbeat_period_s,
                     options_.liveness_timeout_s,
                     "heartbeats slower than the liveness timeout would "
                     "declare every idle slave dead");
    }
    SWH_CHECK_GT(options_.retry_backoff_s, 0.0,
                 "retry backoff must be positive");
    SWH_CHECK_GE(options_.retry_backoff_max_s, options_.retry_backoff_s,
                 "backoff cap below the backoff base");
    SWH_CHECK(options_.master_link_faults.drop_prob == 0.0 ||
                  options_.liveness_timeout_s > 0.0,
              "dropping slave->master messages requires liveness "
              "timeouts, or a lost Register/TaskDone deadlocks the run");
}

RunReport HybridRuntime::run(std::vector<SlaveSpec> slaves,
                             std::unique_ptr<core::AllocationPolicy> policy) {
    SWH_CHECK(!slaves.empty(), "need at least one slave");
    const std::size_t n = slaves.size();
    const bool liveness = options_.liveness_timeout_s > 0.0;

    core::SchedulerCore sched(
        core::make_tasks(queries_, database_->residues()), std::move(policy),
        options_.sched);
    core::ResultMerger merger(queries_.size(), options_.top_k);

    net::Channel<net::MasterMsg> master_inbox(options_.channel_delay_s);
    if (options_.master_link_faults.drop_prob > 0.0 ||
        options_.master_link_faults.stall_s > 0.0) {
        master_inbox.inject_faults(options_.master_link_faults);
    }
    std::vector<std::unique_ptr<SlaveShared>> shared;
    shared.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        shared.push_back(
            std::make_unique<SlaveShared>(options_.channel_delay_s));
        shared.back()->report.label = slaves[i].label;
        shared.back()->report.kind = slaves[i].engine->kind();
        if (options_.slave_link_stall_s > 0.0) {
            shared.back()->inbox.inject_faults(net::ChannelFaults{
                0.0, options_.slave_link_stall_s,
                options_.master_link_faults.seed + i});
        }
    }
    /// Set before the master closes slave inboxes at end of run.
    std::atomic<bool> draining{false};

    // ---- Observability wiring (all optional) ----------------------------
    // Lanes and metric handles are resolved here, before any thread
    // starts, so the hot paths only ever touch pre-resolved pointers.
    obs::TraceRecorder* const rec = options_.trace;
    obs::MetricsRegistry* const metrics = options_.metrics;
    if (rec != nullptr) rec->reset_epoch();

    // One master lane shared by the scheduler tracer and the runtime's
    // own fault events (TraceRecorder::lane() creates a fresh lane per
    // call, so resolving it twice would split the timeline row).
    obs::TraceLane* const master_lane =
        rec != nullptr ? &rec->lane("master") : nullptr;
    obs::SchedTracer sched_tracer(master_lane, metrics);
    obs::SchedFanout sched_fanout;
    if (rec != nullptr || metrics != nullptr) {
        sched_fanout.add(&sched_tracer);
    }
    // Caller-supplied observer (e.g. an obs::WeightLog recording the
    // PSS weight trajectory) shares the scheduler's observer slot with
    // the tracer through the fanout. Either alone skips the fanout hop.
    if (options_.sched_observer != nullptr) {
        sched_fanout.add(options_.sched_observer);
    }
    if (sched_fanout.size() == 1 && options_.sched_observer != nullptr) {
        sched.set_observer(options_.sched_observer);
    } else if (sched_fanout.size() == 1) {
        sched.set_observer(&sched_tracer);
    } else if (!sched_fanout.empty()) {
        sched.set_observer(&sched_fanout);
    }
    obs::ChannelTracer master_chan_tracer(
        rec != nullptr ? &rec->lane("chan:master") : nullptr,
        metrics != nullptr
            ? &metrics->histogram("channel.master_inbox.depth")
            : nullptr);
    if (rec != nullptr || metrics != nullptr) {
        master_inbox.set_observer(&master_chan_tracer);
    }
    obs::Counter* const m_engine_failures =
        metrics != nullptr
            ? &metrics->counter("runtime.faults.engine_failures")
            : nullptr;
    obs::Counter* const m_retries =
        metrics != nullptr ? &metrics->counter("runtime.faults.retries")
                           : nullptr;
    obs::Counter* const m_presumed_dead =
        metrics != nullptr
            ? &metrics->counter("runtime.faults.slaves_presumed_dead")
            : nullptr;
    obs::Counter* const m_late_discards =
        metrics != nullptr
            ? &metrics->counter("runtime.faults.late_completions_discarded")
            : nullptr;
    obs::Counter* const m_heartbeats =
        metrics != nullptr ? &metrics->counter("runtime.faults.heartbeats")
                           : nullptr;

    std::vector<obs::TraceLane*> slave_lanes(n, nullptr);
    std::vector<obs::Histogram*> slave_duration(n, nullptr);
    std::vector<std::unique_ptr<obs::ChannelTracer>> chan_tracers;
    obs::Histogram* const slave_depth =
        metrics != nullptr ? &metrics->histogram("channel.slave_inbox.depth")
                           : nullptr;
    if (rec != nullptr || metrics != nullptr) {
        for (std::size_t i = 0; i < n; ++i) {
            if (rec != nullptr) {
                slave_lanes[i] = &rec->lane(slaves[i].label);
            }
            if (metrics != nullptr) {
                slave_duration[i] = &metrics->histogram(
                    std::string("task.duration_s.") +
                    core::to_string(slaves[i].engine->kind()));
            }
            chan_tracers.push_back(std::make_unique<obs::ChannelTracer>(
                rec != nullptr ? &rec->lane("chan:" + slaves[i].label)
                               : nullptr,
                slave_depth));
            shared[i]->inbox.set_observer(chan_tracers.back().get());
        }
    }

    Timer clock;

    // ---- Slave threads --------------------------------------------------
    auto slave_main = [&](PeId pe) {
        SlaveSpec& spec = slaves[pe];
        SlaveShared& sh = *shared[pe];
        obs::TraceLane* const lane = slave_lanes[pe];
        obs::Histogram* const duration_hist = slave_duration[pe];
        if (spec.join_delay_s > 0.0) {
            std::this_thread::sleep_for(
                std::chrono::duration<double>(spec.join_delay_s));
        }
        master_inbox.send(net::MsgRegister{pe, spec.engine->kind()});

        // ISSUE 5 satellite fix: the old code silently `return`ed here
        // on a closed inbox, leaving finished_slaves short and the
        // master deadlocked. The inbox now only closes when the master
        // already wrote this slave off (presumed dead) or the run is
        // draining; we still notify it for the audit trail.
        auto exit_on_closed_inbox = [&] {
            SWH_INVARIANT(draining.load() || sh.abandoned_by_master.load(),
                          "slave inbox closed outside a master-initiated "
                          "drain");
            master_inbox.send(net::MsgDeregister{pe});
        };

        std::vector<core::Task> batch;
        std::set<TaskId> cancelled_queue;
        std::vector<core::Task> pending_assigns;
        std::size_t completions = 0;
        bool heard_from_master = false;
        while (true) {
            if (batch.empty() && !pending_assigns.empty()) {
                batch = std::move(pending_assigns);
                pending_assigns.clear();
            }
            if (batch.empty()) {
                master_inbox.send(net::MsgWorkRequest{pe});
                bool got_batch = false;
                while (!got_batch) {
                    std::optional<net::SlaveMsg> msg =
                        liveness
                            ? sh.inbox.recv_for(options_.heartbeat_period_s)
                            : sh.inbox.recv();
                    if (!msg) {
                        if (sh.inbox.closed()) {
                            exit_on_closed_inbox();
                            return;
                        }
                        // recv_for timed out: beacon liveness. Until the
                        // master has spoken to us at all, re-send the
                        // registration instead — the first Register (or
                        // the work request after it) may have been
                        // dropped by an injected link fault.
                        if (heard_from_master) {
                            master_inbox.send(net::MsgHeartbeat{pe});
                        } else {
                            master_inbox.send(
                                net::MsgRegister{pe, spec.engine->kind()});
                            master_inbox.send(net::MsgWorkRequest{pe});
                        }
                        continue;
                    }
                    heard_from_master = true;
                    if (const auto* assign =
                            std::get_if<net::MsgAssign>(&*msg)) {
                        batch = assign->tasks;
                        got_batch = true;
                    } else if (std::holds_alternative<net::MsgShutdown>(
                                   *msg)) {
                        return;
                    } else if (const auto* cancel =
                                   std::get_if<net::MsgCancel>(&*msg)) {
                        // Cancellation for a task we already finished or
                        // never started; nothing to do.
                        (void)cancel;
                    } else if (std::holds_alternative<net::MsgNoWorkYet>(
                                   *msg)) {
                        // Keep blocking; the master will push.
                    }
                }
            }

            const core::Task task_meta = batch.front();
            const TaskId t = task_meta.id;
            batch.erase(batch.begin());
            if (cancelled_queue.erase(t) > 0) {
                ++sh.report.tasks_cancelled;
                continue;  // master already released it
            }
            const align::Sequence& query = queries_[task_meta.query_index];

            // Contract failures raised while this task runs carry the
            // slave/task ids in their report.
            const check::ScopedContext check_ctx(pe, t);
            SlaveObserver slave_obs(pe, t, options_.notify_period_s,
                                    master_inbox, sh.inbox, cancelled_queue,
                                    pending_assigns, lane);
            if (lane != nullptr) lane->span_begin("task", t, pe);
            Timer task_timer;
            core::TaskResult result;
            bool failed = false;
            std::string failure;
            // Containment (ISSUE 5): an engine exception used to unwind
            // out of this thread and std::terminate the process. It now
            // becomes MsgTaskFailed and the slave soldiers on. The one
            // exception that stays fatal-by-design is SimulatedCrash —
            // fault injection for "the PE vanished", which only the
            // master's liveness timeout can handle.
            try {
                result = spec.engine->execute(
                    query, task_meta.query_index, t, *database_, &slave_obs);
            } catch (const engines::SimulatedCrash&) {
                sh.report.crashed = true;
                if (lane != nullptr) lane->span_end("task", t, 1.0, pe);
                return;  // die silently: no MsgDeregister, no cleanup
            } catch (const std::exception& e) {
                failed = true;
                failure = e.what();
            } catch (...) {
                failed = true;
                failure = "unknown engine failure";
            }
            const double task_seconds = task_timer.seconds();
            sh.report.cells_computed += result.cells;

            const bool was_cancelled = slave_obs.cancelled_current();
            if (duration_hist != nullptr) duration_hist->record(task_seconds);
            if (lane != nullptr) {
                lane->span_end("task", t,
                               (was_cancelled || failed) ? 1.0 : 0.0, pe);
            }

            if (failed) {
                ++sh.report.engine_failures;
                master_inbox.send(net::MsgTaskFailed{pe, t, failure});
            } else if (was_cancelled) {
                ++sh.report.tasks_cancelled;
            } else {
                slave_obs.send_final_rate();
                master_inbox.send(net::MsgTaskDone{pe, t, std::move(result)});
                ++completions;
            }

            if (sh.inbox.closed()) {
                exit_on_closed_inbox();
                return;
            }
            if (slave_obs.saw_shutdown()) return;

            if (spec.leave_after_tasks > 0 &&
                completions >= spec.leave_after_tasks) {
                // Abandon whatever is still queued and leave the platform.
                sh.report.left_early = true;
                master_inbox.send(net::MsgDeregister{pe});
                return;
            }
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(n);
    for (PeId pe = 0; pe < n; ++pe) threads.emplace_back(slave_main, pe);

    // ---- Master (this thread) -------------------------------------------
    RunReport report;
    report.slaves.resize(n);
    std::vector<PeState> pe_state(n, PeState::Unseen);
    std::vector<double> last_heard(n, 0.0);
    std::set<PeId> waiting;  ///< starved slaves owed an Assign/Shutdown
    std::set<std::pair<PeId, TaskId>> cancelled_inflight;
    std::size_t finished_slaves = 0;
    // Completions that raced a cancellation message; the scheduler never
    // sees them but they are discarded results all the same.
    std::size_t raced_discards = 0;

    // Engine-failure bookkeeping: per-task counts drive the retry budget
    // and the final failed-task report; parked retries hold a failed
    // task back for an exponential-backoff interval before requeueing
    // (during which a replica may still rescue it).
    struct FailureRecord {
        std::size_t failures = 0;
        std::string last_error;
    };
    std::map<TaskId, FailureRecord> failure_log;
    struct ParkedRetry {
        double due = 0.0;
        PeId pe = 0;
        TaskId task = 0;
    };
    std::vector<ParkedRetry> parked;
    std::set<std::pair<PeId, TaskId>> parked_keys;

    auto serve = [&](PeId pe) {
        if (!sched.is_registered(pe)) return;  // raced with deregister
        if (options_.master_link_faults.drop_prob > 0.0) {
            // Lost-completion recovery: serve() only ever targets an
            // idle slave, so any Executing task the scheduler still
            // shows queued on it (minus parked retries) lost its
            // TaskDone/TaskFailed to the lossy link — re-issue it for
            // recomputation. Without this, a task whose completions all
            // dropped can end up executing on *every* slave, leaving no
            // one eligible to replicate it and the run stuck. If the
            // original was merely slow rather than lost, the duplicate
            // completion is discarded by the executor guard below.
            std::vector<core::Task> lost;
            for (const TaskId t : sched.queue_of(pe)) {
                if (parked_keys.count({pe, t}) != 0) continue;
                if (sched.task_state(t) != core::TaskState::Executing)
                    continue;
                lost.push_back(sched.task(t));
            }
            if (!lost.empty()) {
                shared[pe]->inbox.send(net::MsgAssign{std::move(lost)});
                return;
            }
        }
        const std::vector<TaskId> assigned =
            sched.on_work_request(pe, clock.seconds());
        if (!assigned.empty()) {
            std::vector<core::Task> with_meta;
            with_meta.reserve(assigned.size());
            for (const TaskId t : assigned)
                with_meta.push_back(sched.task(t));
            shared[pe]->inbox.send(net::MsgAssign{std::move(with_meta)});
        } else if (sched.all_done()) {
            shared[pe]->inbox.send(net::MsgShutdown{});
            pe_state[pe] = PeState::Shutdown;
            ++finished_slaves;
        } else {
            shared[pe]->inbox.send(net::MsgNoWorkYet{});
            waiting.insert(pe);
        }
    };

    auto retry_waiting = [&] {
        const std::set<PeId> snapshot = std::exchange(waiting, {});
        for (const PeId pe : snapshot) serve(pe);
    };

    auto declare_dead = [&](PeId pe, double now) {
        pe_state[pe] = PeState::Dead;
        report.slaves[pe].presumed_dead = true;
        ++report.slaves_presumed_dead;
        waiting.erase(pe);
        if (sched.is_registered(pe)) {
            // Requeues everything the slave held; replication semantics
            // already deduplicate if it turns out to be alive after all.
            sched.deregister_slave(pe, now);
        }
        if (master_lane != nullptr) {
            master_lane->emit(obs::EventKind::SlavePresumedDead, pe);
        }
        if (m_presumed_dead != nullptr) m_presumed_dead->add();
        // Closing the inbox is the cooperative kill signal: a stalled
        // engine polling cancellation unwedges, an idle-blocked slave
        // wakes and exits. It also guarantees we can join the thread.
        shared[pe]->abandoned_by_master.store(true);
        shared[pe]->inbox.close();
        ++finished_slaves;
        retry_waiting();  // its tasks are Ready again
    };

    auto record_failure = [&](PeId pe, TaskId task,
                              const std::string& what, double now) {
        ++report.task_failures;
        ++report.slaves[pe].engine_failures;
        if (m_engine_failures != nullptr) m_engine_failures->add();
        FailureRecord& log = failure_log[task];
        ++log.failures;
        log.last_error = what;
        if (log.failures > options_.max_task_retries) {
            // Budget spent: settle the task as failed (unless a replica
            // is still running and may yet win).
            sched.on_task_failed(pe, task, now, /*allow_retry=*/false);
            retry_waiting();  // all_done may have just become true
        } else {
            const double backoff = std::min(
                options_.retry_backoff_max_s,
                options_.retry_backoff_s *
                    static_cast<double>(std::size_t{1}
                                        << (log.failures - 1)));
            parked.push_back(ParkedRetry{now + backoff, pe, task});
            parked_keys.insert({pe, task});
            if (m_retries != nullptr) m_retries->add();
        }
    };

    while (finished_slaves < n) {
        // Deadline-driven wait (the tentpole): the old blocking recv()
        // deadlocked forever when a slave died silently. Wake at the
        // earliest of (a) the next parked retry falling due, (b) the
        // next possible liveness expiry; block indefinitely only when
        // neither exists (then the old semantics apply unchanged).
        double wait = kInf;
        {
            const double now = clock.seconds();
            for (const ParkedRetry& p : parked) {
                wait = std::min(wait, p.due - now);
            }
            if (liveness) {
                for (PeId pe = 0; pe < n; ++pe) {
                    if (pe_state[pe] != PeState::Active) continue;
                    wait = std::min(wait, last_heard[pe] +
                                              options_.liveness_timeout_s -
                                              now);
                }
            }
        }
        std::optional<net::MasterMsg> msg =
            wait == kInf ? master_inbox.recv()
                         : master_inbox.recv_for(std::max(wait, 1e-4));
        SWH_CHECK(msg.has_value() || !master_inbox.closed(),
                  "master inbox closed prematurely");
        const double now = clock.seconds();

        if (msg.has_value()) {
            // Any message is proof of life.
            const PeId from =
                std::visit([](const auto& m) { return m.pe; }, *msg);
            SWH_CHECK_LT(from, n, "message from an unknown PE");
            if (pe_state[from] == PeState::Active) last_heard[from] = now;

            if (const auto* reg = std::get_if<net::MsgRegister>(&*msg)) {
                // Idempotent: a slave that never heard back re-sends its
                // registration (the first may have been dropped).
                // Post-death or post-shutdown registers are ignored.
                if (pe_state[reg->pe] == PeState::Unseen) {
                    pe_state[reg->pe] = PeState::Active;
                    last_heard[reg->pe] = now;
                    sched.register_slave(reg->pe, reg->kind);
                }
            } else if (const auto* req =
                           std::get_if<net::MsgWorkRequest>(&*msg)) {
                if (pe_state[req->pe] == PeState::Active) serve(req->pe);
            } else if (const auto* prog =
                           std::get_if<net::MsgProgress>(&*msg)) {
                if (pe_state[prog->pe] == PeState::Active &&
                    sched.is_registered(prog->pe)) {
                    sched.on_progress(prog->pe, now, prog->cells_per_second);
                }
            } else if (const auto* hb =
                           std::get_if<net::MsgHeartbeat>(&*msg)) {
                if (m_heartbeats != nullptr) m_heartbeats->add();
                // Heartbeats double as an idle-work poll: one arrives
                // only from an idle-blocked slave, so if the master
                // doesn't have it parked in `waiting` its WorkRequest
                // must have been lost — serve it now (self-healing).
                if (pe_state[hb->pe] == PeState::Active &&
                    waiting.count(hb->pe) == 0) {
                    serve(hb->pe);
                }
            } else if (auto* done = std::get_if<net::MsgTaskDone>(&*msg)) {
                report.computed_cells += done->result.cells;
                const auto key = std::make_pair(done->pe, done->task);
                if (pe_state[done->pe] != PeState::Active) {
                    // Liveness false positive: the slave was slow, not
                    // dead. Its tasks were already requeued; treat the
                    // late completion exactly like a raced cancellation
                    // — discard, never double-merge.
                    ++report.slaves[done->pe].results_discarded;
                    report.slaves[done->pe].cells_discarded +=
                        done->result.cells;
                    ++report.late_completions_discarded;
                    if (m_late_discards != nullptr) m_late_discards->add();
                } else if (cancelled_inflight.erase(key) > 0) {
                    // The slave finished before our cancellation reached
                    // it; the scheduler already released the replica.
                    ++report.slaves[done->pe].results_discarded;
                    report.slaves[done->pe].cells_discarded +=
                        done->result.cells;
                    ++raced_discards;
                } else if ([&] {
                               const std::vector<PeId> exec =
                                   sched.task_executors(done->task);
                               return std::find(exec.begin(), exec.end(),
                                                done->pe) == exec.end();
                           }()) {
                    // Executor guard: the slave no longer holds this
                    // task — a duplicate completion from lost-done
                    // recovery, its original having been slow rather
                    // than lost. Discard like a raced cancellation.
                    ++report.slaves[done->pe].results_discarded;
                    report.slaves[done->pe].cells_discarded +=
                        done->result.cells;
                    ++raced_discards;
                } else {
                    const core::SchedulerCore::CompletionResult cr =
                        sched.on_task_complete(done->pe, done->task, now);
                    if (cr.accepted) {
                        report.accepted_cells += done->result.cells;
                        ++report.slaves[done->pe].results_accepted;
                        report.slaves[done->pe].cells_accepted +=
                            done->result.cells;
                        merger.add(done->result);
                    } else {
                        ++report.slaves[done->pe].results_discarded;
                        report.slaves[done->pe].cells_discarded +=
                            done->result.cells;
                    }
                    for (const PeId loser : cr.cancelled) {
                        shared[loser]->inbox.send(
                            net::MsgCancel{done->task});
                        cancelled_inflight.insert({loser, done->task});
                    }
                }
                retry_waiting();
            } else if (const auto* fail =
                           std::get_if<net::MsgTaskFailed>(&*msg)) {
                if (pe_state[fail->pe] == PeState::Active) {
                    record_failure(fail->pe, fail->task, fail->what, now);
                }
            } else if (const auto* dereg =
                           std::get_if<net::MsgDeregister>(&*msg)) {
                // Only an Active slave's leave counts; the deregister a
                // presumed-dead slave sends on its way out (or a
                // duplicate) must not double-increment finished_slaves.
                if (pe_state[dereg->pe] == PeState::Active) {
                    pe_state[dereg->pe] = PeState::Left;
                    waiting.erase(dereg->pe);
                    sched.deregister_slave(dereg->pe, now);
                    ++finished_slaves;
                    retry_waiting();  // its tasks may be Ready again
                }
            }
        }

        // Parked retries falling due: requeue through the scheduler.
        // on_task_failed is stale-tolerant — if the pairing dissolved
        // meanwhile (replica won, slave died and was deregistered, task
        // already requeued), the call is a no-op.
        if (!parked.empty()) {
            std::vector<ParkedRetry> still_parked;
            bool requeued = false;
            for (const ParkedRetry& p : parked) {
                if (p.due > now) {
                    still_parked.push_back(p);
                    continue;
                }
                parked_keys.erase({p.pe, p.task});
                const core::SchedulerCore::FailureOutcome out =
                    sched.on_task_failed(p.pe, p.task, now,
                                         /*allow_retry=*/true);
                requeued = requeued || out.requeued;
            }
            parked = std::move(still_parked);
            if (requeued) retry_waiting();
        }

        // Liveness sweep: any Active slave silent past the timeout is
        // declared dead and its work reclaimed.
        if (liveness) {
            for (PeId pe = 0; pe < n; ++pe) {
                if (pe_state[pe] != PeState::Active) continue;
                if (now - last_heard[pe] >= options_.liveness_timeout_s) {
                    declare_dead(pe, now);
                }
            }
        }
    }

    // End-of-run drain: close every inbox so any straggler thread (e.g.
    // a false-positive "dead" slave still finishing its task) unwedges
    // and exits; then the joins below are guaranteed to complete.
    draining.store(true);
    for (std::size_t i = 0; i < n; ++i) {
        if (!shared[i]->inbox.closed()) shared[i]->inbox.close();
    }
    for (std::thread& t : threads) t.join();
    SWH_AUDIT_SWEEP(sched.check_invariants());

    report.wall_seconds = clock.seconds();
    report.gcups =
        align::gcups(report.accepted_cells, report.wall_seconds);
    report.replicas_issued = sched.replicas_issued();
    report.completions_discarded =
        sched.completions_discarded() + raced_discards;
    // Surface every task the run gave up on: abandoned by the retry
    // budget, or left unfinished because no live slave remained.
    for (TaskId t = 0; t < sched.total_tasks(); ++t) {
        const bool unfinished =
            sched.task_state(t) != core::TaskState::Finished;
        if (!unfinished && !sched.task_abandoned(t)) continue;
        RunReport::FailedTask failed;
        failed.task = t;
        failed.query_index = sched.task(t).query_index;
        const auto it = failure_log.find(t);
        if (it != failure_log.end()) {
            failed.failures = it->second.failures;
            failed.last_error = it->second.last_error;
        } else {
            failed.last_error = "no live slave remained";
        }
        report.failed_tasks.push_back(std::move(failed));
    }
    for (std::size_t i = 0; i < n; ++i) {
        SlaveReport merged = shared[i]->report;
        merged.results_accepted = report.slaves[i].results_accepted;
        merged.results_discarded = report.slaves[i].results_discarded;
        merged.cells_accepted = report.slaves[i].cells_accepted;
        merged.cells_discarded = report.slaves[i].cells_discarded;
        merged.presumed_dead = report.slaves[i].presumed_dead;
        merged.engine_failures =
            std::max(merged.engine_failures,
                     report.slaves[i].engine_failures);
        report.slaves[i] = std::move(merged);
    }
    report.hits.reserve(queries_.size());
    for (std::size_t q = 0; q < queries_.size(); ++q) {
        report.hits.push_back(merger.hits_for(q));
    }
    // Ring overflow must be visible in the metrics, not just buried in
    // the drained lanes: a truncated trace silently skews any analysis
    // built on it. Counted after the joins so every lane has quiesced;
    // created even at zero so dashboards can rely on its presence.
    if (metrics != nullptr && rec != nullptr) {
        metrics->counter("obs.trace.dropped").add(rec->dropped_total());
    }
    if (metrics != nullptr) report.metrics = metrics->snapshot();
    return report;
}

std::vector<KindCells> RunReport::cells_by_kind() const {
    std::vector<KindCells> out;
    for (const SlaveReport& s : slaves) {
        auto it = std::find_if(
            out.begin(), out.end(),
            [&](const KindCells& k) { return k.kind == s.kind; });
        if (it == out.end()) {
            out.push_back(KindCells{s.kind, 0, 0});
            it = std::prev(out.end());
        }
        it->cells_accepted += s.cells_accepted;
        it->cells_discarded += s.cells_discarded;
    }
    return out;
}

}  // namespace swh::runtime

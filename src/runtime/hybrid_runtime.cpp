#include "runtime/hybrid_runtime.hpp"

#include <algorithm>
#include <chrono>
#include <set>
#include <string>
#include <thread>
#include <utility>

#include "net/channel.hpp"
#include "net/messages.hpp"
#include "obs/trace.hpp"
#include "obs/tracers.hpp"
#include "util/annotations.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace swh::runtime {

using core::PeId;
using core::TaskId;

namespace {

/// Slave-side execution observer: converts engine cell counts into
/// periodic MsgProgress notifications and services MsgCancel messages
/// that arrive while the slave is busy computing.
class SlaveObserver final : public engines::ExecutionObserver {
public:
    SlaveObserver(PeId pe, TaskId current, double notify_period_s,
                  net::Channel<net::MasterMsg>& to_master,
                  net::Channel<net::SlaveMsg>& inbox,
                  std::set<TaskId>& cancelled_queue,
                  obs::TraceLane* lane)
        : pe_(pe),
          current_(current),
          period_(notify_period_s),
          to_master_(to_master),
          inbox_(inbox),
          cancelled_queue_(cancelled_queue),
          lane_(lane) {}

    void on_cells(std::uint64_t cells_delta) override {
        cells_ += cells_delta;
        const double elapsed = since_notify_.seconds();
        if (elapsed >= period_ && cells_ > 0) {
            to_master_.send(net::MsgProgress{
                pe_, static_cast<double>(cells_) / elapsed});
            cells_ = 0;
            since_notify_.reset();
        }
    }

    bool cancelled() const override {
        // Engines may poll from several worker threads.
        const swh::LockGuard lock(mu_);
        while (auto msg = inbox_.try_recv()) {
            const auto* cancel = std::get_if<net::MsgCancel>(&*msg);
            SWH_CHECK(cancel != nullptr,
                      "only cancellations may arrive mid-execution");
            if (cancel->task == current_) {
                cancelled_current_ = true;
            } else {
                cancelled_queue_.insert(cancel->task);
            }
        }
        return cancelled_current_;
    }

    bool cancelled_current() const {
        const swh::LockGuard lock(mu_);
        return cancelled_current_;
    }

    /// The slave thread's trace lane, so engines nest kernel spans
    /// inside this slave's task span.
    obs::TraceLane* trace_lane() const override { return lane_; }

    /// Rate over the whole task, for a final notification on completion.
    void send_final_rate() {
        const double elapsed = since_notify_.seconds();
        if (cells_ > 0 && elapsed > 0.0) {
            to_master_.send(net::MsgProgress{
                pe_, static_cast<double>(cells_) / elapsed});
        }
    }

private:
    PeId pe_;
    TaskId current_;
    double period_;
    net::Channel<net::MasterMsg>& to_master_;
    net::Channel<net::SlaveMsg>& inbox_;
    /// Written under mu_ while the engine runs; the slave thread reads
    /// it lock-free only after execute() returns (the engine joins its
    /// pollers before returning, which orders those accesses).
    std::set<TaskId>& cancelled_queue_;
    mutable swh::Mutex mu_;
    mutable bool cancelled_current_ SWH_GUARDED_BY(mu_) = false;
    std::uint64_t cells_ = 0;
    Timer since_notify_;
    obs::TraceLane* lane_;
};

struct SlaveShared {
    net::Channel<net::SlaveMsg> inbox;
    SlaveReport report;

    explicit SlaveShared(double delay) : inbox(delay) {}
};

}  // namespace

HybridRuntime::HybridRuntime(const db::Database& database,
                             std::vector<align::Sequence> queries,
                             RuntimeOptions options)
    : database_(&database),
      queries_(std::move(queries)),
      options_(options) {
    SWH_CHECK(!queries_.empty(), "query set must be non-empty");
    SWH_CHECK_GT(options_.notify_period_s, 0.0,
                 "notify period must be positive");
}

RunReport HybridRuntime::run(std::vector<SlaveSpec> slaves,
                             std::unique_ptr<core::AllocationPolicy> policy) {
    SWH_CHECK(!slaves.empty(), "need at least one slave");
    const std::size_t n = slaves.size();

    core::SchedulerCore sched(
        core::make_tasks(queries_, database_->residues()), std::move(policy),
        options_.sched);
    core::ResultMerger merger(queries_.size(), options_.top_k);

    net::Channel<net::MasterMsg> master_inbox(options_.channel_delay_s);
    std::vector<std::unique_ptr<SlaveShared>> shared;
    shared.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        shared.push_back(
            std::make_unique<SlaveShared>(options_.channel_delay_s));
        shared.back()->report.label = slaves[i].label;
        shared.back()->report.kind = slaves[i].engine->kind();
    }

    // ---- Observability wiring (all optional) ----------------------------
    // Lanes and metric handles are resolved here, before any thread
    // starts, so the hot paths only ever touch pre-resolved pointers.
    obs::TraceRecorder* const rec = options_.trace;
    obs::MetricsRegistry* const metrics = options_.metrics;
    if (rec != nullptr) rec->reset_epoch();

    obs::SchedTracer sched_tracer(
        rec != nullptr ? &rec->lane("master") : nullptr, metrics);
    if (rec != nullptr || metrics != nullptr) {
        sched.set_observer(&sched_tracer);
    }
    obs::ChannelTracer master_chan_tracer(
        rec != nullptr ? &rec->lane("chan:master") : nullptr,
        metrics != nullptr
            ? &metrics->histogram("channel.master_inbox.depth")
            : nullptr);
    if (rec != nullptr || metrics != nullptr) {
        master_inbox.set_observer(&master_chan_tracer);
    }

    std::vector<obs::TraceLane*> slave_lanes(n, nullptr);
    std::vector<obs::Histogram*> slave_duration(n, nullptr);
    std::vector<std::unique_ptr<obs::ChannelTracer>> chan_tracers;
    obs::Histogram* const slave_depth =
        metrics != nullptr ? &metrics->histogram("channel.slave_inbox.depth")
                           : nullptr;
    if (rec != nullptr || metrics != nullptr) {
        for (std::size_t i = 0; i < n; ++i) {
            if (rec != nullptr) {
                slave_lanes[i] = &rec->lane(slaves[i].label);
            }
            if (metrics != nullptr) {
                slave_duration[i] = &metrics->histogram(
                    std::string("task.duration_s.") +
                    core::to_string(slaves[i].engine->kind()));
            }
            chan_tracers.push_back(std::make_unique<obs::ChannelTracer>(
                rec != nullptr ? &rec->lane("chan:" + slaves[i].label)
                               : nullptr,
                slave_depth));
            shared[i]->inbox.set_observer(chan_tracers.back().get());
        }
    }

    Timer clock;

    // ---- Slave threads --------------------------------------------------
    auto slave_main = [&](PeId pe) {
        SlaveSpec& spec = slaves[pe];
        SlaveShared& sh = *shared[pe];
        obs::TraceLane* const lane = slave_lanes[pe];
        obs::Histogram* const duration_hist = slave_duration[pe];
        if (spec.join_delay_s > 0.0) {
            std::this_thread::sleep_for(
                std::chrono::duration<double>(spec.join_delay_s));
        }
        master_inbox.send(net::MsgRegister{pe, spec.engine->kind()});

        std::vector<core::Task> batch;
        std::set<TaskId> cancelled_queue;
        std::size_t completions = 0;
        while (true) {
            if (batch.empty()) {
                master_inbox.send(net::MsgWorkRequest{pe});
                bool got_batch = false;
                while (!got_batch) {
                    std::optional<net::SlaveMsg> msg = sh.inbox.recv();
                    if (!msg) return;  // channel closed: defensive exit
                    if (const auto* assign =
                            std::get_if<net::MsgAssign>(&*msg)) {
                        batch = assign->tasks;
                        got_batch = true;
                    } else if (std::holds_alternative<net::MsgShutdown>(
                                   *msg)) {
                        return;
                    } else if (const auto* cancel =
                                   std::get_if<net::MsgCancel>(&*msg)) {
                        // Cancellation for a task we already finished or
                        // never started; nothing to do.
                        (void)cancel;
                    }
                    // MsgNoWorkYet: keep blocking; the master will push.
                }
            }

            const core::Task task_meta = batch.front();
            const TaskId t = task_meta.id;
            batch.erase(batch.begin());
            if (cancelled_queue.erase(t) > 0) {
                ++sh.report.tasks_cancelled;
                continue;  // master already released it
            }
            const align::Sequence& query = queries_[task_meta.query_index];

            // Contract failures raised while this task runs carry the
            // slave/task ids in their report.
            const check::ScopedContext check_ctx(pe, t);
            SlaveObserver slave_obs(pe, t, options_.notify_period_s,
                                    master_inbox, sh.inbox, cancelled_queue,
                                    lane);
            if (lane != nullptr) lane->span_begin("task", t, pe);
            Timer task_timer;
            core::TaskResult result = spec.engine->execute(
                query, task_meta.query_index, t, *database_, &slave_obs);
            const double task_seconds = task_timer.seconds();
            sh.report.cells_computed += result.cells;

            const bool was_cancelled = slave_obs.cancelled_current();
            if (duration_hist != nullptr) duration_hist->record(task_seconds);
            if (lane != nullptr) {
                lane->span_end("task", t, was_cancelled ? 1.0 : 0.0, pe);
            }

            if (was_cancelled) {
                ++sh.report.tasks_cancelled;
            } else {
                slave_obs.send_final_rate();
                master_inbox.send(net::MsgTaskDone{pe, t, std::move(result)});
                ++completions;
            }

            if (spec.leave_after_tasks > 0 &&
                completions >= spec.leave_after_tasks) {
                // Abandon whatever is still queued and leave the platform.
                sh.report.left_early = true;
                master_inbox.send(net::MsgDeregister{pe});
                return;
            }
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(n);
    for (PeId pe = 0; pe < n; ++pe) threads.emplace_back(slave_main, pe);

    // ---- Master (this thread) -------------------------------------------
    RunReport report;
    report.slaves.resize(n);
    std::set<PeId> waiting;  ///< starved slaves owed an Assign/Shutdown
    std::set<std::pair<PeId, TaskId>> cancelled_inflight;
    std::size_t finished_slaves = 0;
    // Completions that raced a cancellation message; the scheduler never
    // sees them but they are discarded results all the same.
    std::size_t raced_discards = 0;

    auto serve = [&](PeId pe) {
        if (!sched.is_registered(pe)) return;  // raced with deregister
        const std::vector<TaskId> assigned =
            sched.on_work_request(pe, clock.seconds());
        if (!assigned.empty()) {
            std::vector<core::Task> with_meta;
            with_meta.reserve(assigned.size());
            for (const TaskId t : assigned)
                with_meta.push_back(sched.task(t));
            shared[pe]->inbox.send(net::MsgAssign{std::move(with_meta)});
        } else if (sched.all_done()) {
            shared[pe]->inbox.send(net::MsgShutdown{});
            ++finished_slaves;
        } else {
            shared[pe]->inbox.send(net::MsgNoWorkYet{});
            waiting.insert(pe);
        }
    };

    auto retry_waiting = [&] {
        const std::set<PeId> snapshot = std::exchange(waiting, {});
        for (const PeId pe : snapshot) serve(pe);
    };

    while (finished_slaves < n) {
        std::optional<net::MasterMsg> msg = master_inbox.recv();
        SWH_CHECK(msg.has_value(), "master inbox closed prematurely");
        const double now = clock.seconds();

        if (const auto* reg = std::get_if<net::MsgRegister>(&*msg)) {
            sched.register_slave(reg->pe, reg->kind);
        } else if (const auto* req = std::get_if<net::MsgWorkRequest>(&*msg)) {
            serve(req->pe);
        } else if (const auto* prog = std::get_if<net::MsgProgress>(&*msg)) {
            if (sched.is_registered(prog->pe)) {
                sched.on_progress(prog->pe, now, prog->cells_per_second);
            }
        } else if (auto* done = std::get_if<net::MsgTaskDone>(&*msg)) {
            report.computed_cells += done->result.cells;
            const auto key = std::make_pair(done->pe, done->task);
            if (cancelled_inflight.erase(key) > 0) {
                // The slave finished before our cancellation reached it;
                // the scheduler already released the replica.
                ++report.slaves[done->pe].results_discarded;
                report.slaves[done->pe].cells_discarded += done->result.cells;
                ++raced_discards;
            } else {
                const core::SchedulerCore::CompletionResult cr =
                    sched.on_task_complete(done->pe, done->task, now);
                if (cr.accepted) {
                    report.accepted_cells += done->result.cells;
                    ++report.slaves[done->pe].results_accepted;
                    report.slaves[done->pe].cells_accepted +=
                        done->result.cells;
                    merger.add(done->result);
                } else {
                    ++report.slaves[done->pe].results_discarded;
                    report.slaves[done->pe].cells_discarded +=
                        done->result.cells;
                }
                for (const PeId loser : cr.cancelled) {
                    shared[loser]->inbox.send(net::MsgCancel{done->task});
                    cancelled_inflight.insert({loser, done->task});
                }
            }
            retry_waiting();
        } else if (const auto* dereg =
                       std::get_if<net::MsgDeregister>(&*msg)) {
            sched.deregister_slave(dereg->pe, now);
            ++finished_slaves;
            retry_waiting();  // its tasks may be Ready again
        }
    }

    for (std::thread& t : threads) t.join();
    SWH_AUDIT_SWEEP(sched.check_invariants());

    report.wall_seconds = clock.seconds();
    report.gcups =
        align::gcups(report.accepted_cells, report.wall_seconds);
    report.replicas_issued = sched.replicas_issued();
    report.completions_discarded =
        sched.completions_discarded() + raced_discards;
    for (std::size_t i = 0; i < n; ++i) {
        SlaveReport merged = shared[i]->report;
        merged.results_accepted = report.slaves[i].results_accepted;
        merged.results_discarded = report.slaves[i].results_discarded;
        merged.cells_accepted = report.slaves[i].cells_accepted;
        merged.cells_discarded = report.slaves[i].cells_discarded;
        report.slaves[i] = std::move(merged);
    }
    report.hits.reserve(queries_.size());
    for (std::size_t q = 0; q < queries_.size(); ++q) {
        report.hits.push_back(merger.hits_for(q));
    }
    if (metrics != nullptr) report.metrics = metrics->snapshot();
    return report;
}

std::vector<KindCells> RunReport::cells_by_kind() const {
    std::vector<KindCells> out;
    for (const SlaveReport& s : slaves) {
        auto it = std::find_if(
            out.begin(), out.end(),
            [&](const KindCells& k) { return k.kind == s.kind; });
        if (it == out.end()) {
            out.push_back(KindCells{s.kind, 0, 0});
            it = std::prev(out.end());
        }
        it->cells_accepted += s.cells_accepted;
        it->cells_discarded += s.cells_discarded;
    }
    return out;
}

}  // namespace swh::runtime

#include "runtime/hybrid_runtime.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <utility>

#include "net/channel.hpp"
#include "net/messages.hpp"
#include "obs/sched_log.hpp"
#include "obs/trace.hpp"
#include "obs/tracers.hpp"
#include "runtime/master_loop.hpp"
#include "runtime/slave_loop.hpp"
#include "util/annotations.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace swh::runtime {

using core::PeId;

namespace {

struct SlaveShared {
    net::Channel<net::SlaveMsg> inbox;
    SlaveReport report;
    /// Set by the master right before it closes `inbox` mid-run (the
    /// liveness layer gave up on this slave). Lets the slave's exit path
    /// assert the inbox never closes outside a master-initiated drain.
    std::atomic<bool> abandoned_by_master{false};

    explicit SlaveShared(double delay) : inbox(delay) {}
};

/// In-process SlaveEndpoint: uplink through the shared master inbox,
/// downlink through this slave's own Channel. The protocol itself lives
/// in run_slave_loop (runtime/slave_loop.cpp) — identical over sockets.
class ThreadedSlaveEndpoint final : public SlaveEndpoint {
public:
    ThreadedSlaveEndpoint(net::Channel<net::MasterMsg>& to_master,
                          SlaveShared& shared,
                          const std::atomic<bool>& draining)
        : to_master_(to_master), shared_(shared), draining_(draining) {}

    void send(net::MasterMsg msg) override {
        to_master_.send(std::move(msg));
    }
    std::optional<net::SlaveMsg> recv() override {
        return shared_.inbox.recv();
    }
    std::optional<net::SlaveMsg> recv_for(double timeout_s) override {
        return shared_.inbox.recv_for(timeout_s);
    }
    std::optional<net::SlaveMsg> try_recv() override {
        return shared_.inbox.try_recv();
    }
    bool inbox_closed() override { return shared_.inbox.closed(); }

    void on_inbox_closed_exit() override {
        SWH_INVARIANT(draining_.load() ||
                          shared_.abandoned_by_master.load(),
                      "slave inbox closed outside a master-initiated drain");
    }

private:
    net::Channel<net::MasterMsg>& to_master_;
    SlaveShared& shared_;
    const std::atomic<bool>& draining_;
};

/// In-process SlaveLink: the master writes straight into the slave's
/// shared inbox; abandoning closes it (the cooperative kill signal).
class ThreadedSlaveLink final : public SlaveLink {
public:
    explicit ThreadedSlaveLink(SlaveShared& shared) : shared_(shared) {}

    void send(net::SlaveMsg msg) override {
        shared_.inbox.send(std::move(msg));
    }
    void abandon() override {
        shared_.abandoned_by_master.store(true);
        shared_.inbox.close();
    }

private:
    SlaveShared& shared_;
};

}  // namespace

HybridRuntime::HybridRuntime(const db::Database& database,
                             std::vector<align::Sequence> queries,
                             RuntimeOptions options)
    : database_(&database),
      queries_(std::move(queries)),
      options_(options) {
    SWH_CHECK(!queries_.empty(), "query set must be non-empty");
    SWH_CHECK_GT(options_.notify_period_s, 0.0,
                 "notify period must be positive");
    SWH_CHECK_GE(options_.liveness_timeout_s, 0.0,
                 "liveness timeout must be non-negative");
    if (options_.liveness_timeout_s > 0.0) {
        SWH_CHECK_GT(options_.heartbeat_period_s, 0.0,
                     "heartbeat period must be positive");
        SWH_CHECK_LT(options_.heartbeat_period_s,
                     options_.liveness_timeout_s,
                     "heartbeats slower than the liveness timeout would "
                     "declare every idle slave dead");
    }
    SWH_CHECK_GT(options_.retry_backoff_s, 0.0,
                 "retry backoff must be positive");
    SWH_CHECK_GE(options_.retry_backoff_max_s, options_.retry_backoff_s,
                 "backoff cap below the backoff base");
    SWH_CHECK(options_.master_link_faults.drop_prob == 0.0 ||
                  options_.liveness_timeout_s > 0.0,
              "dropping slave->master messages requires liveness "
              "timeouts, or a lost Register/TaskDone deadlocks the run");
}

RunReport HybridRuntime::run(std::vector<SlaveSpec> slaves,
                             std::unique_ptr<core::AllocationPolicy> policy) {
    SWH_CHECK(!slaves.empty(), "need at least one slave");
    const std::size_t n = slaves.size();

    core::SchedulerCore sched(
        core::make_tasks(queries_, database_->residues()), std::move(policy),
        options_.sched);
    core::ResultMerger merger(queries_.size(), options_.top_k);

    net::Channel<net::MasterMsg> master_inbox(options_.channel_delay_s);
    if (options_.master_link_faults.drop_prob > 0.0 ||
        options_.master_link_faults.stall_s > 0.0) {
        master_inbox.inject_faults(options_.master_link_faults);
    }
    std::vector<std::unique_ptr<SlaveShared>> shared;
    shared.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        shared.push_back(
            std::make_unique<SlaveShared>(options_.channel_delay_s));
        shared.back()->report.label = slaves[i].label;
        shared.back()->report.kind = slaves[i].engine->kind();
        if (options_.slave_link_stall_s > 0.0) {
            shared.back()->inbox.inject_faults(net::ChannelFaults{
                0.0, options_.slave_link_stall_s,
                options_.master_link_faults.seed + i});
        }
    }
    /// Set before the master closes slave inboxes at end of run.
    std::atomic<bool> draining{false};

    // ---- Observability wiring (all optional) ----------------------------
    // Lanes and metric handles are resolved here, before any thread
    // starts, so the hot paths only ever touch pre-resolved pointers.
    obs::TraceRecorder* const rec = options_.trace;
    obs::MetricsRegistry* const metrics = options_.metrics;
    if (rec != nullptr) rec->reset_epoch();

    // One master lane shared by the scheduler tracer and the runtime's
    // own fault events (TraceRecorder::lane() creates a fresh lane per
    // call, so resolving it twice would split the timeline row).
    obs::TraceLane* const master_lane =
        rec != nullptr ? &rec->lane("master") : nullptr;
    obs::SchedTracer sched_tracer(master_lane, metrics);
    obs::SchedFanout sched_fanout;
    if (rec != nullptr || metrics != nullptr) {
        sched_fanout.add(&sched_tracer);
    }
    // Caller-supplied observer (e.g. an obs::WeightLog recording the
    // PSS weight trajectory) shares the scheduler's observer slot with
    // the tracer through the fanout. Either alone skips the fanout hop.
    if (options_.sched_observer != nullptr) {
        sched_fanout.add(options_.sched_observer);
    }
    if (sched_fanout.size() == 1 && options_.sched_observer != nullptr) {
        sched.set_observer(options_.sched_observer);
    } else if (sched_fanout.size() == 1) {
        sched.set_observer(&sched_tracer);
    } else if (!sched_fanout.empty()) {
        sched.set_observer(&sched_fanout);
    }
    obs::ChannelTracer master_chan_tracer(
        rec != nullptr ? &rec->lane("chan:master") : nullptr,
        metrics != nullptr
            ? &metrics->histogram("channel.master_inbox.depth")
            : nullptr);
    if (rec != nullptr || metrics != nullptr) {
        master_inbox.set_observer(&master_chan_tracer);
    }
    MasterLoopCounters counters;
    if (metrics != nullptr) {
        counters.engine_failures =
            &metrics->counter("runtime.faults.engine_failures");
        counters.retries = &metrics->counter("runtime.faults.retries");
        counters.presumed_dead =
            &metrics->counter("runtime.faults.slaves_presumed_dead");
        counters.late_discards =
            &metrics->counter("runtime.faults.late_completions_discarded");
        counters.heartbeats =
            &metrics->counter("runtime.faults.heartbeats");
    }

    std::vector<obs::TraceLane*> slave_lanes(n, nullptr);
    std::vector<obs::Histogram*> slave_duration(n, nullptr);
    std::vector<std::unique_ptr<obs::ChannelTracer>> chan_tracers;
    obs::Histogram* const slave_depth =
        metrics != nullptr ? &metrics->histogram("channel.slave_inbox.depth")
                           : nullptr;
    if (rec != nullptr || metrics != nullptr) {
        for (std::size_t i = 0; i < n; ++i) {
            if (rec != nullptr) {
                slave_lanes[i] = &rec->lane(slaves[i].label);
            }
            if (metrics != nullptr) {
                slave_duration[i] = &metrics->histogram(
                    std::string("task.duration_s.") +
                    core::to_string(slaves[i].engine->kind()));
            }
            chan_tracers.push_back(std::make_unique<obs::ChannelTracer>(
                rec != nullptr ? &rec->lane("chan:" + slaves[i].label)
                               : nullptr,
                slave_depth));
            shared[i]->inbox.set_observer(chan_tracers.back().get());
        }
    }

    Timer clock;

    // ---- Slave threads --------------------------------------------------
    auto slave_main = [&](PeId pe) {
        SlaveSpec& spec = slaves[pe];
        SlaveShared& sh = *shared[pe];
        if (spec.join_delay_s > 0.0) {
            std::this_thread::sleep_for(
                std::chrono::duration<double>(spec.join_delay_s));
        }
        ThreadedSlaveEndpoint endpoint(master_inbox, sh, draining);
        SlaveLoopConfig config;
        config.pe = pe;
        config.notify_period_s = options_.notify_period_s;
        config.liveness = options_.liveness_timeout_s > 0.0;
        config.heartbeat_period_s = options_.heartbeat_period_s;
        config.leave_after_tasks = spec.leave_after_tasks;
        config.lane = slave_lanes[pe];
        config.duration_hist = slave_duration[pe];
        run_slave_loop(endpoint, *spec.engine, queries_, *database_, config,
                       sh.report);
    };

    std::vector<std::thread> threads;
    threads.reserve(n);
    for (PeId pe = 0; pe < n; ++pe) threads.emplace_back(slave_main, pe);

    // ---- Master (this thread) -------------------------------------------
    RunReport report;
    std::vector<std::unique_ptr<ThreadedSlaveLink>> link_storage;
    std::vector<SlaveLink*> links;
    link_storage.reserve(n);
    links.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        link_storage.push_back(std::make_unique<ThreadedSlaveLink>(*shared[i]));
        links.push_back(link_storage.back().get());
    }
    MasterLoopConfig master_config;
    master_config.liveness_timeout_s = options_.liveness_timeout_s;
    master_config.lossy_master_link =
        options_.master_link_faults.drop_prob > 0.0;
    master_config.max_task_retries = options_.max_task_retries;
    master_config.retry_backoff_s = options_.retry_backoff_s;
    master_config.retry_backoff_max_s = options_.retry_backoff_max_s;
    run_master_loop(sched, merger, master_inbox, links, clock, master_config,
                    counters, master_lane, report);

    // End-of-run drain: close every inbox so any straggler thread (e.g.
    // a false-positive "dead" slave still finishing its task) unwedges
    // and exits; then the joins below are guaranteed to complete.
    draining.store(true);
    for (std::size_t i = 0; i < n; ++i) {
        if (!shared[i]->inbox.closed()) shared[i]->inbox.close();
    }
    for (std::thread& t : threads) t.join();
    SWH_AUDIT_SWEEP(sched.check_invariants());

    report.wall_seconds = clock.seconds();
    report.gcups =
        align::gcups(report.accepted_cells, report.wall_seconds);
    for (std::size_t i = 0; i < n; ++i) {
        SlaveReport merged = shared[i]->report;
        merged.results_accepted = report.slaves[i].results_accepted;
        merged.results_discarded = report.slaves[i].results_discarded;
        merged.cells_accepted = report.slaves[i].cells_accepted;
        merged.cells_discarded = report.slaves[i].cells_discarded;
        merged.presumed_dead = report.slaves[i].presumed_dead;
        merged.engine_failures =
            std::max(merged.engine_failures,
                     report.slaves[i].engine_failures);
        report.slaves[i] = std::move(merged);
    }
    report.hits.reserve(queries_.size());
    for (std::size_t q = 0; q < queries_.size(); ++q) {
        report.hits.push_back(merger.hits_for(q));
    }
    // Ring overflow must be visible in the metrics, not just buried in
    // the drained lanes: a truncated trace silently skews any analysis
    // built on it. Counted after the joins so every lane has quiesced;
    // created even at zero so dashboards can rely on its presence.
    if (metrics != nullptr && rec != nullptr) {
        metrics->counter("obs.trace.dropped").add(rec->dropped_total());
    }
    if (metrics != nullptr) report.metrics = metrics->snapshot();
    return report;
}

std::vector<KindCells> RunReport::cells_by_kind() const {
    std::vector<KindCells> out;
    for (const SlaveReport& s : slaves) {
        auto it = std::find_if(
            out.begin(), out.end(),
            [&](const KindCells& k) { return k.kind == s.kind; });
        if (it == out.end()) {
            out.push_back(KindCells{s.kind, 0, 0});
            it = std::prev(out.end());
        }
        it->cells_accepted += s.cells_accepted;
        it->cells_discarded += s.cells_discarded;
    }
    return out;
}

}  // namespace swh::runtime

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/policy.hpp"
#include "core/results.hpp"
#include "core/scheduler.hpp"
#include "db/database.hpp"
#include "engines/engine.hpp"
#include "net/channel.hpp"
#include "obs/metrics.hpp"

namespace swh::obs {
class TraceRecorder;
}  // namespace swh::obs

namespace swh::runtime {

/// One slave PE of the hybrid platform: an engine plus optional dynamic-
/// membership behaviour (the paper's future-work join/leave extension).
struct SlaveSpec {
    std::string label;
    std::unique_ptr<engines::ComputeEngine> engine;
    /// Seconds after run start before this slave registers (late join).
    double join_delay_s = 0.0;
    /// After this many accepted+discarded completions the slave
    /// deregisters, abandoning any queued tasks (0 = stays to the end).
    std::size_t leave_after_tasks = 0;
};

struct RuntimeOptions {
    core::SchedulerOptions sched;
    /// Progress-notification cadence the slaves aim for.
    double notify_period_s = 0.2;
    std::size_t top_k = 10;
    /// Simulated link latency applied to every message.
    double channel_delay_s = 0.0;
    /// Optional trace recorder: when set, the run emits per-slave task
    /// spans, scheduler events, and channel depth samples into it.
    /// Non-owning; the recorder must outlive run().
    obs::TraceRecorder* trace = nullptr;
    /// Optional metrics sink (task-duration histograms, scheduler
    /// counters, channel depth). Non-owning; null = off.
    obs::MetricsRegistry* metrics = nullptr;
    /// Optional extra scheduler-decision observer (e.g. an
    /// obs::WeightLog recording PSS weight trajectories), fanned out
    /// alongside the built-in SchedTracer. Callbacks arrive on the
    /// master thread with the scheduler mutex held — the observer must
    /// not re-enter the scheduler. Non-owning; must outlive run().
    core::SchedObserver* sched_observer = nullptr;

    // ---- Fault tolerance (ISSUE 5) --------------------------------------

    /// Declare a slave dead after this long without any message from it,
    /// deregister it, and requeue its tasks. 0 disables liveness — the
    /// original immortal-slave assumption, under which a slave dying
    /// without MsgDeregister deadlocks the master.
    double liveness_timeout_s = 0.0;
    /// How often an idle-blocked slave beacons MsgHeartbeat (busy slaves
    /// piggyback liveness on MsgProgress). Only used when liveness is on;
    /// keep it well below liveness_timeout_s.
    double heartbeat_period_s = 0.05;
    /// Engine-failure retries per task before it is abandoned and
    /// surfaced in RunReport::failed_tasks (the run never aborts).
    std::size_t max_task_retries = 3;
    /// Exponential backoff between retries of one task: first retry
    /// waits retry_backoff_s, doubling up to retry_backoff_max_s.
    double retry_backoff_s = 0.01;
    double retry_backoff_max_s = 1.0;
    /// Fault injection on the slave->master link (message drops and/or
    /// delivery stall). Drops require liveness_timeout_s > 0: recovery
    /// from a lost Register/WorkRequest/TaskDone is the liveness and
    /// replication machinery's job.
    net::ChannelFaults master_link_faults;
    /// Extra delivery stall on every master->slave link. Drops are never
    /// injected in that direction — losing Assign/Shutdown control
    /// messages would break termination, not test fault tolerance.
    double slave_link_stall_s = 0.0;
};

struct SlaveReport {
    std::string label;
    core::PeKind kind = core::PeKind::SseCore;
    std::size_t results_accepted = 0;
    std::size_t results_discarded = 0;  ///< lost replica races
    std::size_t tasks_cancelled = 0;    ///< abandoned mid-run
    std::uint64_t cells_computed = 0;
    /// Cells of this slave's completions the master accepted (first
    /// finisher of the task) vs discarded (lost replica races, including
    /// completions that raced a cancellation).
    std::uint64_t cells_accepted = 0;
    std::uint64_t cells_discarded = 0;
    bool left_early = false;
    /// Engine exceptions this slave contained and reported as
    /// MsgTaskFailed (the thread survived them all).
    std::size_t engine_failures = 0;
    /// The master declared this slave dead after liveness_timeout_s of
    /// silence and requeued its tasks.
    bool presumed_dead = false;
    /// The slave thread died mid-task without deregistering (simulated
    /// crash) — the failure mode only liveness timeouts can recover.
    bool crashed = false;
};

/// Accepted/discarded cell totals aggregated over all slaves of one
/// PE kind — the paper's per-device-class useful-vs-wasted work split.
struct KindCells {
    core::PeKind kind = core::PeKind::SseCore;
    std::uint64_t cells_accepted = 0;
    std::uint64_t cells_discarded = 0;
};

struct RunReport {
    /// A task the run could not complete: its retry budget was spent (or
    /// no live slave remained). Surfaced here instead of aborting; the
    /// query's hits may be missing or partial.
    struct FailedTask {
        core::TaskId task = 0;
        std::uint32_t query_index = 0;
        std::size_t failures = 0;  ///< engine failures recorded for it
        std::string last_error;
    };

    double wall_seconds = 0.0;
    std::uint64_t accepted_cells = 0;  ///< counted once per task
    std::uint64_t computed_cells = 0;  ///< includes replica duplicates
    double gcups = 0.0;                ///< accepted_cells / wall
    std::size_t replicas_issued = 0;
    std::size_t completions_discarded = 0;
    /// MsgTaskFailed reports the master accepted (stale ones excluded).
    std::size_t task_failures = 0;
    /// Slaves deregistered by the liveness timeout.
    std::size_t slaves_presumed_dead = 0;
    /// MsgTaskDone from presumed-dead slaves, discarded like raced
    /// cancellations (never double-merged).
    std::size_t late_completions_discarded = 0;
    /// Tasks given up on, in task order. Empty on a healthy run.
    std::vector<FailedTask> failed_tasks;
    std::vector<SlaveReport> slaves;
    /// Top-k hits per query (index-aligned with the query set).
    std::vector<std::vector<core::Hit>> hits;
    /// Snapshot of RuntimeOptions::metrics taken after the run (empty
    /// when no registry was attached).
    obs::MetricsSnapshot metrics;

    /// Per-PeKind accepted/discarded cell totals, in kind order.
    std::vector<KindCells> cells_by_kind() const;
};

/// The threaded master/slave execution environment (paper Fig. 4): the
/// calling thread runs the master (sequence acquisition, task allocation,
/// result merging); each SlaveSpec becomes a slave thread that registers,
/// requests work, executes tasks on its engine, and streams progress
/// notifications. All master decisions are delegated to SchedulerCore —
/// the same logic the discrete-event simulator drives.
class HybridRuntime {
public:
    HybridRuntime(const db::Database& database,
                  std::vector<align::Sequence> queries,
                  RuntimeOptions options);

    /// Blocks until every task is finished and every slave has exited.
    RunReport run(std::vector<SlaveSpec> slaves,
                  std::unique_ptr<core::AllocationPolicy> policy);

private:
    const db::Database* database_;
    std::vector<align::Sequence> queries_;
    RuntimeOptions options_;
};

}  // namespace swh::runtime

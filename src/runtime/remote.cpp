#include "runtime/remote.hpp"

#include <memory>
#include <utility>
#include <variant>
#include <vector>

#include "core/results.hpp"
#include "core/scheduler.hpp"
#include "net/channel.hpp"
#include "net/remote_channel.hpp"
#include "obs/trace.hpp"
#include "obs/tracers.hpp"
#include "runtime/master_loop.hpp"
#include "runtime/slave_loop.hpp"
#include "util/check.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace swh::runtime {

using core::PeId;

namespace {

/// Master's downlink to one remote slave: encode onto its connection.
/// A send after the link broke is simply lost — exactly what the
/// liveness machinery is built to recover from.
class RemoteSlaveLink final : public SlaveLink {
public:
    explicit RemoteSlaveLink(std::shared_ptr<net::StreamTransport> transport)
        : transport_(std::move(transport)) {}

    void send(net::SlaveMsg msg) override {
        std::vector<std::uint8_t> frame;
        net::wire::encode(msg, frame);
        transport_->send_frame(frame);
    }

    void abandon() override {
        // Shutting the connection down is the cooperative kill: the
        // slave's FrameReceiver sees EOF and closes its inbox, which its
        // cancellation poll treats as "you're gone".
        transport_->shutdown();
    }

private:
    std::shared_ptr<net::StreamTransport> transport_;
};

/// Slave-side SlaveEndpoint over the remote channel.
class RemoteEndpoint final : public SlaveEndpoint {
public:
    explicit RemoteEndpoint(net::SlaveRemoteChannel& channel)
        : channel_(channel) {}

    void send(net::MasterMsg msg) override { channel_.send(msg); }
    std::optional<net::SlaveMsg> recv() override { return channel_.recv(); }
    std::optional<net::SlaveMsg> recv_for(double timeout_s) override {
        return channel_.recv_for(timeout_s);
    }
    std::optional<net::SlaveMsg> try_recv() override {
        return channel_.try_recv();
    }
    bool inbox_closed() override { return channel_.closed(); }
    // on_inbox_closed_exit(): over a socket a closed inbox can also mean
    // the connection dropped, so no master-initiated-drain invariant.

private:
    net::SlaveRemoteChannel& channel_;
};

void validate_runtime_options(const RuntimeOptions& options) {
    SWH_CHECK_GT(options.notify_period_s, 0.0,
                 "notify period must be positive");
    SWH_CHECK_GE(options.liveness_timeout_s, 0.0,
                 "liveness timeout must be non-negative");
    if (options.liveness_timeout_s > 0.0) {
        SWH_CHECK_GT(options.heartbeat_period_s, 0.0,
                     "heartbeat period must be positive");
        SWH_CHECK_LT(options.heartbeat_period_s, options.liveness_timeout_s,
                     "heartbeats slower than the liveness timeout would "
                     "declare every idle slave dead");
    }
    SWH_CHECK_GT(options.retry_backoff_s, 0.0,
                 "retry backoff must be positive");
    SWH_CHECK_GE(options.retry_backoff_max_s, options.retry_backoff_s,
                 "backoff cap below the backoff base");
    SWH_CHECK(options.master_link_faults.drop_prob == 0.0 ||
                  options.liveness_timeout_s > 0.0,
              "dropping slave->master messages requires liveness "
              "timeouts, or a lost Register/TaskDone deadlocks the run");
}

}  // namespace

RemoteMaster::RemoteMaster(const db::Database& database,
                           std::vector<align::Sequence> queries,
                           RemoteMasterOptions options)
    : database_(&database),
      queries_(std::move(queries)),
      options_(std::move(options)) {
    SWH_CHECK(!queries_.empty(), "query set must be non-empty");
    SWH_CHECK_GT(options_.expect_slaves, std::size_t{0},
                 "need at least one slave");
    validate_runtime_options(options_.runtime);
}

RemoteMaster::~RemoteMaster() = default;

std::uint16_t RemoteMaster::listen() {
    if (!listening_) {
        listener_ = net::tcp_listen(options_.port);
        listening_ = true;
    }
    return options_.port;
}

RunReport RemoteMaster::run(std::unique_ptr<core::AllocationPolicy> policy) {
    listen();
    const std::size_t n = options_.expect_slaves;
    const RuntimeOptions& rt = options_.runtime;

    core::SchedulerCore sched(
        core::make_tasks(queries_, database_->residues()), std::move(policy),
        rt.sched);
    core::ResultMerger merger(queries_.size(), rt.top_k);

    // The shared master inbox is a real net::Channel fed by one decode
    // pump per connection, so delivery delay, fault injection, and depth
    // observation behave exactly as in-process.
    net::Channel<net::MasterMsg> master_inbox(rt.channel_delay_s);
    if (rt.master_link_faults.drop_prob > 0.0 ||
        rt.master_link_faults.stall_s > 0.0) {
        master_inbox.inject_faults(rt.master_link_faults);
    }

    obs::TraceRecorder* const rec = rt.trace;
    obs::MetricsRegistry* const metrics = rt.metrics;
    if (rec != nullptr) rec->reset_epoch();
    obs::TraceLane* const master_lane =
        rec != nullptr ? &rec->lane("master") : nullptr;
    obs::SchedTracer sched_tracer(master_lane, metrics);
    if (rec != nullptr || metrics != nullptr) {
        sched.set_observer(&sched_tracer);
    }
    obs::ChannelTracer master_chan_tracer(
        rec != nullptr ? &rec->lane("chan:master") : nullptr,
        metrics != nullptr
            ? &metrics->histogram("channel.master_inbox.depth")
            : nullptr);
    if (rec != nullptr || metrics != nullptr) {
        master_inbox.set_observer(&master_chan_tracer);
    }
    MasterLoopCounters counters;
    if (metrics != nullptr) {
        counters.engine_failures =
            &metrics->counter("runtime.faults.engine_failures");
        counters.retries = &metrics->counter("runtime.faults.retries");
        counters.presumed_dead =
            &metrics->counter("runtime.faults.slaves_presumed_dead");
        counters.late_discards =
            &metrics->counter("runtime.faults.late_completions_discarded");
        counters.heartbeats =
            &metrics->counter("runtime.faults.heartbeats");
    }

    // ---- Accept + handshake ---------------------------------------------
    std::vector<std::shared_ptr<net::StreamTransport>> transports;
    std::vector<net::wire::Hello> hellos;
    Timer accept_clock;
    while (transports.size() < n) {
        const double remaining =
            options_.accept_timeout_s - accept_clock.seconds();
        if (remaining <= 0.0) {
            throw swh::IoError("timed out waiting for slaves to connect");
        }
        auto sock = net::tcp_accept(listener_, remaining);
        if (!sock.has_value()) continue;  // re-check the deadline
        auto transport =
            std::make_shared<net::StreamTransport>(std::move(*sock));
        const auto body = transport->recv_frame();
        if (!body.has_value()) continue;  // peer vanished pre-handshake
        const auto hello =
            net::wire::decode_hello(body->data(), body->size());
        if (!hello.has_value()) continue;  // not a swhybrid slave; drop
        net::wire::Welcome welcome;
        welcome.pe = static_cast<PeId>(transports.size());
        welcome.top_k = static_cast<std::uint32_t>(rt.top_k);
        welcome.notify_period_s = rt.notify_period_s;
        welcome.heartbeat_period_s = rt.heartbeat_period_s;
        welcome.liveness = rt.liveness_timeout_s > 0.0;
        std::vector<std::uint8_t> frame;
        net::wire::encode(welcome, frame);
        if (!transport->send_frame(frame)) continue;
        transports.push_back(std::move(transport));
        hellos.push_back(*hello);
    }

    // One decode pump per connection into the shared inbox. The pump
    // never closes the shared sink (one slave's EOF must not close the
    // others' channel) and refuses frames whose PeId is not the one this
    // connection was welcomed as — a forged or corrupted id must not
    // reach the scheduler's contracts.
    std::vector<std::unique_ptr<net::FrameReceiver<net::MasterBound>>>
        receivers;
    std::vector<std::unique_ptr<RemoteSlaveLink>> link_storage;
    std::vector<SlaveLink*> links;
    receivers.reserve(n);
    link_storage.reserve(n);
    links.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const PeId expected = static_cast<PeId>(i);
        receivers.push_back(
            std::make_unique<net::FrameReceiver<net::MasterBound>>(
                transports[i], master_inbox,
                /*close_sink_on_exit=*/false,
                [expected](const net::MasterMsg& msg) {
                    return std::visit([](const auto& m) { return m.pe; },
                                      msg) == expected;
                }));
        link_storage.push_back(
            std::make_unique<RemoteSlaveLink>(transports[i]));
        links.push_back(link_storage.back().get());
    }

    Timer clock;
    RunReport report;
    MasterLoopConfig config;
    config.liveness_timeout_s = rt.liveness_timeout_s;
    config.lossy_master_link = rt.master_link_faults.drop_prob > 0.0;
    config.max_task_retries = rt.max_task_retries;
    config.retry_backoff_s = rt.retry_backoff_s;
    config.retry_backoff_max_s = rt.retry_backoff_max_s;
    run_master_loop(sched, merger, master_inbox, links, clock, config,
                    counters, master_lane, report);

    // End-of-run drain: every slave already got Shutdown (or was
    // abandoned); shutting the transports down unblocks the pumps so
    // their threads join.
    for (auto& transport : transports) transport->shutdown();
    for (auto& receiver : receivers) receiver->stop();
    SWH_AUDIT_SWEEP(sched.check_invariants());

    report.wall_seconds = clock.seconds();
    report.gcups = align::gcups(report.accepted_cells, report.wall_seconds);
    for (std::size_t i = 0; i < n; ++i) {
        report.slaves[i].label = hellos[i].label;
        report.slaves[i].kind = hellos[i].kind;
    }
    report.hits.reserve(queries_.size());
    for (std::size_t q = 0; q < queries_.size(); ++q) {
        report.hits.push_back(merger.hits_for(q));
    }
    if (metrics != nullptr && rec != nullptr) {
        metrics->counter("obs.trace.dropped").add(rec->dropped_total());
    }
    if (metrics != nullptr) report.metrics = metrics->snapshot();
    return report;
}

RemoteSlaveResult run_remote_slave(
    const db::Database& database,
    const std::vector<align::Sequence>& queries,
    const RemoteSlaveOptions& options, const RemoteEngineFactory& factory) {
    RemoteSlaveResult result;
    result.report.label = options.label;
    result.report.kind = options.kind;

    auto sock =
        net::tcp_connect(options.host, options.port, options.connect_timeout_s);
    if (!sock.has_value()) {
        result.error = "could not connect to master";
        return result;
    }
    auto transport = std::make_shared<net::StreamTransport>(std::move(*sock));

    std::vector<std::uint8_t> frame;
    net::wire::encode(net::wire::Hello{options.kind, options.label}, frame);
    if (!transport->send_frame(frame)) {
        result.error = "handshake send failed: " + transport->last_error();
        return result;
    }
    const auto body = transport->recv_frame();
    if (!body.has_value()) {
        result.error = "handshake reply lost: " + transport->last_error();
        return result;
    }
    std::string why;
    const auto welcome =
        net::wire::decode_welcome(body->data(), body->size(), &why);
    if (!welcome.has_value()) {
        result.error = "malformed Welcome: " + why;
        return result;
    }
    result.connected = true;
    result.welcome = *welcome;

    auto engine = factory(*welcome);
    SWH_CHECK(engine != nullptr, "engine factory returned null");

    net::SlaveRemoteChannel channel(transport, options.inbox_delay_s);
    if (options.inbox_stall_s > 0.0) {
        channel.inject_faults(
            net::ChannelFaults{0.0, options.inbox_stall_s,
                               0x5EEDF00DULL + welcome->pe});
    }
    RemoteEndpoint endpoint(channel);
    SlaveLoopConfig config;
    config.pe = welcome->pe;
    config.notify_period_s = welcome->notify_period_s;
    config.liveness = welcome->liveness;
    config.heartbeat_period_s = welcome->heartbeat_period_s;
    run_slave_loop(endpoint, *engine, queries, database, config,
                   result.report);
    channel.close();
    return result;
}

}  // namespace swh::runtime

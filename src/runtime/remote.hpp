#pragma once

// Multi-process master/slave bootstrap over the socket transport (ISSUE
// 10 tentpole): RemoteMaster accepts slave connections, handshakes them
// (Hello -> Welcome), and drives the exact run_master_loop the threaded
// runtime uses; run_remote_slave connects, handshakes, and drives the
// exact run_slave_loop. The scheduler, PR-5 fault machinery, and result
// merging are byte-for-byte the same code — only the Channel backing
// differs — which is what keeps the socket run bit-identical in top-k
// to the in-process runtime.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "align/sequence.hpp"
#include "core/policy.hpp"
#include "db/database.hpp"
#include "engines/engine.hpp"
#include "net/stream.hpp"
#include "net/wire.hpp"
#include "runtime/hybrid_runtime.hpp"

namespace swh::runtime {

struct RemoteMasterOptions {
    /// The same knob set the threaded runtime takes; top_k /
    /// notify_period_s / heartbeat_period_s / liveness are pushed to
    /// every slave in its Welcome so the processes cannot diverge.
    /// channel_delay_s and master_link_faults apply to the master's
    /// inbox exactly as in-process (the frames pass through a real
    /// net::Channel after decode).
    RuntimeOptions runtime;
    /// TCP port to listen on (loopback); 0 picks a free port — read it
    /// back from listen().
    std::uint16_t port = 0;
    /// The run starts once this many slaves have handshaken.
    std::size_t expect_slaves = 1;
    /// Give up on missing slaves after this long (IoError).
    double accept_timeout_s = 30.0;
};

/// Master side of the multi-process runtime. Usage: construct, call
/// listen() (so slaves have a port to dial), start the slave processes,
/// then run().
class RemoteMaster {
public:
    RemoteMaster(const db::Database& database,
                 std::vector<align::Sequence> queries,
                 RemoteMasterOptions options);
    ~RemoteMaster();

    /// Binds + listens on loopback and returns the bound port.
    std::uint16_t listen();

    /// Accepts and handshakes expect_slaves connections, assigns PeIds
    /// in connection order, and blocks in the shared master loop until
    /// every task is finished and every slave has exited. RunReport
    /// carries the master-side view; slave-side stats (cells computed,
    /// cancellations survived) live in each slave process's own report.
    RunReport run(std::unique_ptr<core::AllocationPolicy> policy);

private:
    const db::Database* database_;
    std::vector<align::Sequence> queries_;
    RemoteMasterOptions options_;
    net::Socket listener_;
    bool listening_ = false;
};

struct RemoteSlaveOptions {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;
    /// Reporting metadata sent in the Hello (must match the engine the
    /// factory builds).
    std::string label = "remote";
    core::PeKind kind = core::PeKind::SseCore;
    /// Keeps redialling until the master's listener appears.
    double connect_timeout_s = 10.0;
    /// Fault injection on this slave's inbound (master->slave) queue —
    /// the socket equivalent of RuntimeOptions::slave_link_stall_s.
    double inbox_stall_s = 0.0;
    double inbox_delay_s = 0.0;
};

struct RemoteSlaveResult {
    bool connected = false;
    /// Set when the session ended abnormally (handshake refused, link
    /// error); empty on a clean shutdown.
    std::string error;
    /// The master's handshake reply (valid when connected).
    net::wire::Welcome welcome;
    SlaveReport report;
};

/// Builds the engine AFTER the handshake, so options the master owns
/// (top_k above all) reach the engine config instead of diverging.
using RemoteEngineFactory =
    std::function<std::unique_ptr<engines::ComputeEngine>(
        const net::wire::Welcome&)>;

/// Slave side of the multi-process runtime: dial, handshake, run the
/// shared slave loop until shutdown or abandonment, report.
RemoteSlaveResult run_remote_slave(
    const db::Database& database,
    const std::vector<align::Sequence>& queries,
    const RemoteSlaveOptions& options, const RemoteEngineFactory& factory);

}  // namespace swh::runtime

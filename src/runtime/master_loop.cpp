#include "runtime/master_loop.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <variant>

#include "util/check.hpp"

namespace swh::runtime {

using core::PeId;
using core::TaskId;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Master-side lifecycle of one slave. Exactly one transition out of
/// Active increments finished_slaves, which is what makes the master
/// loop's termination condition immune to duplicate/late messages.
enum class PeState : std::uint8_t {
    Unseen,    ///< never registered (thread/process may not be up yet)
    Active,    ///< registered and presumed alive
    Shutdown,  ///< sent MsgShutdown (all tasks finished)
    Dead,      ///< liveness timeout expired; tasks were requeued
    Left,      ///< sent MsgDeregister (leave_after_tasks)
};

}  // namespace

void run_master_loop(core::SchedulerCore& sched, core::ResultMerger& merger,
                     net::Channel<net::MasterMsg>& inbox,
                     const std::vector<SlaveLink*>& links,
                     const Timer& clock, const MasterLoopConfig& config,
                     const MasterLoopCounters& counters,
                     obs::TraceLane* master_lane, RunReport& report) {
    const std::size_t n = links.size();
    const bool liveness = config.liveness_timeout_s > 0.0;
    report.slaves.resize(n);

    std::vector<PeState> pe_state(n, PeState::Unseen);
    std::vector<double> last_heard(n, 0.0);
    std::set<PeId> waiting;  ///< starved slaves owed an Assign/Shutdown
    std::set<std::pair<PeId, TaskId>> cancelled_inflight;
    std::size_t finished_slaves = 0;
    // Completions that raced a cancellation message; the scheduler never
    // sees them but they are discarded results all the same.
    std::size_t raced_discards = 0;

    // Engine-failure bookkeeping: per-task counts drive the retry budget
    // and the final failed-task report; parked retries hold a failed
    // task back for an exponential-backoff interval before requeueing
    // (during which a replica may still rescue it).
    struct FailureRecord {
        std::size_t failures = 0;
        std::string last_error;
    };
    std::map<TaskId, FailureRecord> failure_log;
    struct ParkedRetry {
        double due = 0.0;
        PeId pe = 0;
        TaskId task = 0;
    };
    std::vector<ParkedRetry> parked;
    std::set<std::pair<PeId, TaskId>> parked_keys;

    auto serve = [&](PeId pe) {
        if (!sched.is_registered(pe)) return;  // raced with deregister
        if (config.lossy_master_link) {
            // Lost-completion recovery: serve() only ever targets an
            // idle slave, so any Executing task the scheduler still
            // shows queued on it (minus parked retries) lost its
            // TaskDone/TaskFailed to the lossy link — re-issue it for
            // recomputation. Without this, a task whose completions all
            // dropped can end up executing on *every* slave, leaving no
            // one eligible to replicate it and the run stuck. If the
            // original was merely slow rather than lost, the duplicate
            // completion is discarded by the executor guard below.
            std::vector<core::Task> lost;
            for (const TaskId t : sched.queue_of(pe)) {
                if (parked_keys.count({pe, t}) != 0) continue;
                if (sched.task_state(t) != core::TaskState::Executing)
                    continue;
                lost.push_back(sched.task(t));
            }
            if (!lost.empty()) {
                links[pe]->send(net::MsgAssign{std::move(lost)});
                return;
            }
        }
        const std::vector<TaskId> assigned =
            sched.on_work_request(pe, clock.seconds());
        if (!assigned.empty()) {
            std::vector<core::Task> with_meta;
            with_meta.reserve(assigned.size());
            for (const TaskId t : assigned) with_meta.push_back(sched.task(t));
            links[pe]->send(net::MsgAssign{std::move(with_meta)});
        } else if (sched.all_done()) {
            links[pe]->send(net::MsgShutdown{});
            pe_state[pe] = PeState::Shutdown;
            ++finished_slaves;
        } else {
            links[pe]->send(net::MsgNoWorkYet{});
            waiting.insert(pe);
        }
    };

    auto retry_waiting = [&] {
        const std::set<PeId> snapshot = std::exchange(waiting, {});
        for (const PeId pe : snapshot) serve(pe);
    };

    auto declare_dead = [&](PeId pe, double now) {
        pe_state[pe] = PeState::Dead;
        report.slaves[pe].presumed_dead = true;
        ++report.slaves_presumed_dead;
        waiting.erase(pe);
        if (sched.is_registered(pe)) {
            // Requeues everything the slave held; replication semantics
            // already deduplicate if it turns out to be alive after all.
            sched.deregister_slave(pe, now);
        }
        if (master_lane != nullptr) {
            master_lane->emit(obs::EventKind::SlavePresumedDead, pe);
        }
        if (counters.presumed_dead != nullptr) counters.presumed_dead->add();
        // Abandoning the link is the cooperative kill signal: a stalled
        // engine polling cancellation unwedges, an idle-blocked slave
        // wakes and exits. It also guarantees the caller can join/reap.
        links[pe]->abandon();
        ++finished_slaves;
        retry_waiting();  // its tasks are Ready again
    };

    auto record_failure = [&](PeId pe, TaskId task, const std::string& what,
                              double now) {
        ++report.task_failures;
        ++report.slaves[pe].engine_failures;
        if (counters.engine_failures != nullptr) {
            counters.engine_failures->add();
        }
        FailureRecord& log = failure_log[task];
        ++log.failures;
        log.last_error = what;
        if (log.failures > config.max_task_retries) {
            // Budget spent: settle the task as failed (unless a replica
            // is still running and may yet win).
            sched.on_task_failed(pe, task, now, /*allow_retry=*/false);
            retry_waiting();  // all_done may have just become true
        } else {
            const double backoff = std::min(
                config.retry_backoff_max_s,
                config.retry_backoff_s *
                    static_cast<double>(std::size_t{1}
                                        << (log.failures - 1)));
            parked.push_back(ParkedRetry{now + backoff, pe, task});
            parked_keys.insert({pe, task});
            if (counters.retries != nullptr) counters.retries->add();
        }
    };

    while (finished_slaves < n) {
        // Deadline-driven wait (ISSUE 5 tentpole): the old blocking
        // recv() deadlocked forever when a slave died silently. Wake at
        // the earliest of (a) the next parked retry falling due, (b) the
        // next possible liveness expiry; block indefinitely only when
        // neither exists (then the old semantics apply unchanged).
        double wait = kInf;
        {
            const double now = clock.seconds();
            for (const ParkedRetry& p : parked) {
                wait = std::min(wait, p.due - now);
            }
            if (liveness) {
                for (PeId pe = 0; pe < n; ++pe) {
                    if (pe_state[pe] != PeState::Active) continue;
                    wait = std::min(wait, last_heard[pe] +
                                              config.liveness_timeout_s -
                                              now);
                }
            }
        }
        std::optional<net::MasterMsg> msg =
            wait == kInf ? inbox.recv()
                         : inbox.recv_for(std::max(wait, 1e-4));
        SWH_CHECK(msg.has_value() || !inbox.closed(),
                  "master inbox closed prematurely");
        const double now = clock.seconds();

        if (msg.has_value()) {
            // Any message is proof of life.
            const PeId from =
                std::visit([](const auto& m) { return m.pe; }, *msg);
            SWH_CHECK_LT(from, n, "message from an unknown PE");
            if (pe_state[from] == PeState::Active) last_heard[from] = now;

            if (const auto* reg = std::get_if<net::MsgRegister>(&*msg)) {
                // Idempotent: a slave that never heard back re-sends its
                // registration (the first may have been dropped).
                // Post-death or post-shutdown registers are ignored.
                if (pe_state[reg->pe] == PeState::Unseen) {
                    pe_state[reg->pe] = PeState::Active;
                    last_heard[reg->pe] = now;
                    sched.register_slave(reg->pe, reg->kind);
                }
            } else if (const auto* req =
                           std::get_if<net::MsgWorkRequest>(&*msg)) {
                if (pe_state[req->pe] == PeState::Active) serve(req->pe);
            } else if (const auto* prog =
                           std::get_if<net::MsgProgress>(&*msg)) {
                if (pe_state[prog->pe] == PeState::Active &&
                    sched.is_registered(prog->pe)) {
                    sched.on_progress(prog->pe, now, prog->cells_per_second);
                }
            } else if (const auto* hb =
                           std::get_if<net::MsgHeartbeat>(&*msg)) {
                if (counters.heartbeats != nullptr) counters.heartbeats->add();
                // Heartbeats double as an idle-work poll: one arrives
                // only from an idle-blocked slave, so if the master
                // doesn't have it parked in `waiting` its WorkRequest
                // must have been lost — serve it now (self-healing).
                if (pe_state[hb->pe] == PeState::Active &&
                    waiting.count(hb->pe) == 0) {
                    serve(hb->pe);
                }
            } else if (auto* done = std::get_if<net::MsgTaskDone>(&*msg)) {
                report.computed_cells += done->result.cells;
                const auto key = std::make_pair(done->pe, done->task);
                if (pe_state[done->pe] != PeState::Active) {
                    // Liveness false positive: the slave was slow, not
                    // dead. Its tasks were already requeued; treat the
                    // late completion exactly like a raced cancellation
                    // — discard, never double-merge.
                    ++report.slaves[done->pe].results_discarded;
                    report.slaves[done->pe].cells_discarded +=
                        done->result.cells;
                    ++report.late_completions_discarded;
                    if (counters.late_discards != nullptr) {
                        counters.late_discards->add();
                    }
                } else if (cancelled_inflight.erase(key) > 0) {
                    // The slave finished before our cancellation reached
                    // it; the scheduler already released the replica.
                    ++report.slaves[done->pe].results_discarded;
                    report.slaves[done->pe].cells_discarded +=
                        done->result.cells;
                    ++raced_discards;
                } else if ([&] {
                               const std::vector<PeId> exec =
                                   sched.task_executors(done->task);
                               return std::find(exec.begin(), exec.end(),
                                                done->pe) == exec.end();
                           }()) {
                    // Executor guard: the slave no longer holds this
                    // task — a duplicate completion from lost-done
                    // recovery, its original having been slow rather
                    // than lost. Discard like a raced cancellation.
                    ++report.slaves[done->pe].results_discarded;
                    report.slaves[done->pe].cells_discarded +=
                        done->result.cells;
                    ++raced_discards;
                } else {
                    const core::SchedulerCore::CompletionResult cr =
                        sched.on_task_complete(done->pe, done->task, now);
                    if (cr.accepted) {
                        report.accepted_cells += done->result.cells;
                        ++report.slaves[done->pe].results_accepted;
                        report.slaves[done->pe].cells_accepted +=
                            done->result.cells;
                        merger.add(done->result);
                    } else {
                        ++report.slaves[done->pe].results_discarded;
                        report.slaves[done->pe].cells_discarded +=
                            done->result.cells;
                    }
                    for (const PeId loser : cr.cancelled) {
                        links[loser]->send(net::MsgCancel{done->task});
                        cancelled_inflight.insert({loser, done->task});
                    }
                }
                retry_waiting();
            } else if (const auto* fail =
                           std::get_if<net::MsgTaskFailed>(&*msg)) {
                if (pe_state[fail->pe] == PeState::Active) {
                    record_failure(fail->pe, fail->task, fail->what, now);
                }
            } else if (const auto* dereg =
                           std::get_if<net::MsgDeregister>(&*msg)) {
                // Only an Active slave's leave counts; the deregister a
                // presumed-dead slave sends on its way out (or a
                // duplicate) must not double-increment finished_slaves.
                if (pe_state[dereg->pe] == PeState::Active) {
                    pe_state[dereg->pe] = PeState::Left;
                    waiting.erase(dereg->pe);
                    sched.deregister_slave(dereg->pe, now);
                    ++finished_slaves;
                    retry_waiting();  // its tasks may be Ready again
                }
            }
        }

        // Parked retries falling due: requeue through the scheduler.
        // on_task_failed is stale-tolerant — if the pairing dissolved
        // meanwhile (replica won, slave died and was deregistered, task
        // already requeued), the call is a no-op.
        if (!parked.empty()) {
            std::vector<ParkedRetry> still_parked;
            bool requeued = false;
            for (const ParkedRetry& p : parked) {
                if (p.due > now) {
                    still_parked.push_back(p);
                    continue;
                }
                parked_keys.erase({p.pe, p.task});
                const core::SchedulerCore::FailureOutcome out =
                    sched.on_task_failed(p.pe, p.task, now,
                                         /*allow_retry=*/true);
                requeued = requeued || out.requeued;
            }
            parked = std::move(still_parked);
            if (requeued) retry_waiting();
        }

        // Liveness sweep: any Active slave silent past the timeout is
        // declared dead and its work reclaimed.
        if (liveness) {
            for (PeId pe = 0; pe < n; ++pe) {
                if (pe_state[pe] != PeState::Active) continue;
                if (now - last_heard[pe] >= config.liveness_timeout_s) {
                    declare_dead(pe, now);
                }
            }
        }
    }

    report.replicas_issued = sched.replicas_issued();
    report.completions_discarded =
        sched.completions_discarded() + raced_discards;
    // Surface every task the run gave up on: abandoned by the retry
    // budget, or left unfinished because no live slave remained.
    for (TaskId t = 0; t < sched.total_tasks(); ++t) {
        const bool unfinished =
            sched.task_state(t) != core::TaskState::Finished;
        if (!unfinished && !sched.task_abandoned(t)) continue;
        RunReport::FailedTask failed;
        failed.task = t;
        failed.query_index = sched.task(t).query_index;
        const auto it = failure_log.find(t);
        if (it != failure_log.end()) {
            failed.failures = it->second.failures;
            failed.last_error = it->second.last_error;
        } else {
            failed.last_error = "no live slave remained";
        }
        report.failed_tasks.push_back(std::move(failed));
    }
}

}  // namespace swh::runtime

#pragma once

#include <cstdint>
#include <string>

namespace swh::core {

using TaskId = std::uint32_t;
using PeId = std::uint32_t;

constexpr PeId kInvalidPe = ~PeId{0};

/// Kind of processing element, as in the paper's hybrid platform. The
/// scheduler itself is kind-agnostic (it learns speeds from observed
/// progress); the kind is kept for reporting and for the WFixed baseline,
/// which distributes by *declared* power per kind (Meng & Chaudhary).
enum class PeKind : std::uint8_t { SseCore, Gpu, Fpga };

const char* to_string(PeKind kind);

/// Task lifecycle (paper SS IV-A.3): ready -> executing -> finished.
/// With the workload-adjustment mechanism a task can be Executing on
/// several PEs at once; the first completion moves it to Finished.
enum class TaskState : std::uint8_t { Ready, Executing, Finished };

const char* to_string(TaskState state);

/// One work unit: compare one query sequence against the whole database
/// (the paper's very coarse-grained decomposition, SS IV).
struct Task {
    TaskId id = 0;
    std::uint32_t query_index = 0;
    std::uint64_t cells = 0;  ///< |query| x database residues

    friend bool operator==(const Task&, const Task&) = default;
};

}  // namespace swh::core

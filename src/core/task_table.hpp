#pragma once

#include <optional>
#include <vector>

#include "core/types.hpp"

namespace swh::core {

/// Order in which ready tasks are handed out.
enum class ReadyOrder : std::uint8_t {
    FifoById,      ///< query-file order — the paper's behaviour
    LargestFirst,  ///< LPT: most cells first (shrinks the straggler tail)
};

/// Bookkeeping for the task pool: states, executor sets (replicas), and
/// completion winners. Single-threaded by design — SchedulerCore owns one
/// and serialises access; drivers provide their own synchronisation.
class TaskTable {
public:
    explicit TaskTable(std::vector<Task> tasks,
                       ReadyOrder order = ReadyOrder::FifoById);

    std::size_t total() const { return entries_.size(); }
    std::size_t ready_count() const { return ready_count_; }
    std::size_t executing_count() const { return executing_count_; }
    std::size_t finished_count() const { return finished_count_; }
    bool all_finished() const { return finished_count_ == entries_.size(); }

    const Task& task(TaskId id) const;
    TaskState state(TaskId id) const;

    /// PEs currently holding the task (first is the original assignee).
    const std::vector<PeId>& executors(TaskId id) const;

    /// PE whose completion was accepted; kInvalidPe if not finished.
    PeId winner(TaskId id) const;

    /// Pops the next ready task (FIFO over task id, i.e. query-file
    /// order, as the paper's master hands them out) and marks it
    /// executing on `pe`.
    std::optional<TaskId> acquire_ready(PeId pe);

    /// Adds `pe` as an extra executor of an already-executing task
    /// (workload adjustment). Fails if the task is not Executing or the
    /// PE already executes it.
    void add_replica(TaskId id, PeId pe);

    /// True if `pe` currently appears among the task's executors.
    bool is_executor(TaskId id, PeId pe) const;

    /// Records a completion. Returns true if this was the first finisher
    /// (the result is accepted); false for a losing replica, whose result
    /// the master discards.
    bool complete(TaskId id, PeId pe);

    /// Removes `pe` from a task's executor set without completing it
    /// (replica cancelled, or node left). If no executors remain and the
    /// task is not finished, it returns to Ready (and to the ready
    /// queue's front, so it is re-issued promptly).
    void release(TaskId id, PeId pe);

    /// Gives up on a task whose retry budget is exhausted: removes `pe`
    /// from the executor set and, if that left the task with no
    /// executors, settles it as Finished *without* a winner (the run
    /// reports it as failed instead of aborting). Returns true when the
    /// task was abandoned; false when other replicas are still running
    /// and may yet finish it.
    bool abandon(TaskId id, PeId pe);

    /// True if the task was settled by abandon() rather than a winner.
    bool abandoned(TaskId id) const;

    /// Ids of all tasks currently in the Executing state.
    std::vector<TaskId> executing_tasks() const;

    /// Full-table sweep of the task-lifecycle invariants (paper SS
    /// IV-A.3): state tallies match a fresh scan and sum to the total;
    /// Ready tasks have no executors and sit in the ready queue;
    /// Executing tasks have at least one executor, no duplicates, and
    /// no winner; Finished tasks have a winner settled exactly once.
    /// Throws swh::check::CheckFailure on violation. Cheap enough for
    /// tests to call directly; SWH_AUDIT builds run it automatically
    /// after every mutation.
    void check_invariants() const;

private:
    struct Entry {
        Task task;
        TaskState state = TaskState::Ready;
        std::vector<PeId> executors;
        PeId winner = kInvalidPe;
        bool abandoned = false;  ///< Finished with no winner (retries spent)
    };

    Entry& entry(TaskId id);
    const Entry& entry(TaskId id) const;

    std::vector<Entry> entries_;
    std::vector<TaskId> ready_queue_;  ///< front = next to hand out
    std::size_t ready_count_ = 0;
    std::size_t executing_count_ = 0;
    std::size_t finished_count_ = 0;
};

}  // namespace swh::core

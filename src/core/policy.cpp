#include "core/policy.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "util/error.hpp"

namespace swh::core {

namespace {

class SelfScheduling final : public AllocationPolicy {
public:
    std::string_view name() const override { return "SS"; }

    std::size_t batch_size(const SlaveView&, std::span<const SlaveView>,
                           std::size_t ready_remaining,
                           std::size_t) override {
        return ready_remaining > 0 ? 1 : 0;
    }
};

class ChunkedSelfScheduling final : public AllocationPolicy {
public:
    explicit ChunkedSelfScheduling(std::size_t chunk) : chunk_(chunk) {
        SWH_REQUIRE(chunk > 0, "chunk size must be positive");
    }

    std::string_view name() const override { return "ChunkedSS"; }

    std::size_t batch_size(const SlaveView&, std::span<const SlaveView>,
                           std::size_t ready_remaining,
                           std::size_t) override {
        return std::min(chunk_, ready_remaining);
    }

private:
    std::size_t chunk_;
};

class Pss final : public AllocationPolicy {
public:
    std::string_view name() const override { return "PSS"; }

    std::size_t batch_size(const SlaveView& requester,
                           std::span<const SlaveView> all,
                           std::size_t ready_remaining,
                           std::size_t) override {
        if (ready_remaining == 0) return 0;
        // First-allocation round: no observed speed yet -> one task.
        if (!requester.has_rate || requester.rate <= 0.0) return 1;
        double min_rate = std::numeric_limits<double>::infinity();
        for (const SlaveView& s : all) {
            if (s.has_rate && s.rate > 0.0) min_rate = std::min(min_rate, s.rate);
        }
        // Phi(p_i, P) = requester rate / slowest observed rate.
        const double phi = requester.rate / min_rate;
        const auto batch = static_cast<std::size_t>(
            std::max<long long>(1, std::llround(phi)));
        return std::min(batch, ready_remaining);
    }
};

class Fixed final : public AllocationPolicy {
public:
    std::string_view name() const override { return "Fixed"; }

    std::size_t batch_size(const SlaveView& requester,
                           std::span<const SlaveView> all,
                           std::size_t ready_remaining,
                           std::size_t total_tasks) override {
        // Shares are computed against the membership at the FIRST
        // request, captured once. Evaluating `all.size()` per request
        // mis-splits when slaves register late (join_delay_s): early
        // requesters would be sized against a smaller p and the pool
        // over-allocated to whoever asked first.
        if (!snapshot_taken_) {
            snapshot_taken_ = true;
            for (const SlaveView& s : all) snapshot_.insert(s.id);
        }
        if (served_.count(requester.id) != 0) return 0;
        served_.insert(requester.id);
        // A late joiner missed the static split; it gets nothing here
        // (the scheduler's safety valve feeds it single tasks if work
        // ever returns to Ready).
        if (snapshot_.count(requester.id) == 0) return 0;
        ++snapshot_served_;
        const std::size_t p = std::max<std::size_t>(1, snapshot_.size());
        // Even split with the remainder spread over the first requesters.
        std::size_t share = total_tasks / p;
        if (snapshot_served_ <= total_tasks % p) ++share;
        return std::min(share, ready_remaining);
    }

private:
    bool snapshot_taken_ = false;
    std::set<PeId> snapshot_;  ///< membership at the first request
    std::size_t snapshot_served_ = 0;
    std::set<PeId> served_;
};

class WFixed final : public AllocationPolicy {
public:
    explicit WFixed(std::map<PeKind, double> power)
        : power_(std::move(power)) {
        for (const auto& [kind, w] : power_) {
            SWH_REQUIRE(w > 0.0, "declared power must be positive");
        }
    }

    std::string_view name() const override { return "WFixed"; }

    std::size_t batch_size(const SlaveView& requester,
                           std::span<const SlaveView> all,
                           std::size_t ready_remaining,
                           std::size_t total_tasks) override {
        // Same late-joiner hazard as Fixed: both the total declared
        // power and the "last slave mops up" condition must be judged
        // against the first-request membership, not the live roster —
        // otherwise a join_delay_s slave inflates `all.size()` so the
        // mop-up never fires, or an early slave mops up the whole
        // remainder before the snapshot peers were served.
        if (!snapshot_taken_) {
            snapshot_taken_ = true;
            for (const SlaveView& s : all) snapshot_.emplace(s.id, s.kind);
        }
        if (served_.count(requester.id) != 0) return 0;
        served_.insert(requester.id);
        if (snapshot_.count(requester.id) == 0) return 0;  // late joiner
        ++snapshot_served_;
        double total_w = 0.0;
        for (const auto& [id, kind] : snapshot_) total_w += weight(kind);
        SWH_REQUIRE(total_w > 0.0, "no declared power for any slave");
        const double share = static_cast<double>(total_tasks) *
                             weight(requester.kind) / total_w;
        auto batch =
            static_cast<std::size_t>(std::max<long long>(0, std::llround(share)));
        // The last snapshot slave to be served mops up rounding leftovers.
        if (snapshot_served_ == snapshot_.size()) batch = ready_remaining;
        return std::min(std::max<std::size_t>(batch, 1), ready_remaining);
    }

private:
    double weight(PeKind kind) const {
        const auto it = power_.find(kind);
        return it != power_.end() ? it->second : 1.0;
    }

    std::map<PeKind, double> power_;
    bool snapshot_taken_ = false;
    std::map<PeId, PeKind> snapshot_;  ///< membership at the first request
    std::size_t snapshot_served_ = 0;
    std::set<PeId> served_;
};

}  // namespace

std::unique_ptr<AllocationPolicy> make_self_scheduling() {
    return std::make_unique<SelfScheduling>();
}

std::unique_ptr<AllocationPolicy> make_chunked_self_scheduling(
    std::size_t chunk) {
    return std::make_unique<ChunkedSelfScheduling>(chunk);
}

std::unique_ptr<AllocationPolicy> make_pss() { return std::make_unique<Pss>(); }

std::unique_ptr<AllocationPolicy> make_fixed() {
    return std::make_unique<Fixed>();
}

std::unique_ptr<AllocationPolicy> make_wfixed(
    std::map<PeKind, double> declared_power) {
    return std::make_unique<WFixed>(std::move(declared_power));
}

}  // namespace swh::core

#include "core/results.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace swh::core {

ResultMerger::ResultMerger(std::size_t num_queries, std::size_t top_k)
    : top_k_(top_k), per_query_(num_queries) {
    SWH_REQUIRE(top_k > 0, "top_k must be positive");
}

void ResultMerger::add(const TaskResult& result) {
    SWH_REQUIRE(result.query_index < per_query_.size(),
                "result for unknown query");
    std::vector<Hit>& hits = per_query_[result.query_index];
    hits.insert(hits.end(), result.hits.begin(), result.hits.end());
    std::sort(hits.begin(), hits.end(), [](const Hit& a, const Hit& b) {
        if (a.score != b.score) return a.score > b.score;
        return a.db_index < b.db_index;
    });
    if (hits.size() > top_k_) hits.resize(top_k_);
    total_cells_ += result.cells;
    ++results_merged_;
}

const std::vector<Hit>& ResultMerger::hits_for(std::size_t query_index) const {
    SWH_REQUIRE(query_index < per_query_.size(), "query index out of range");
    return per_query_[query_index];
}

std::vector<Task> make_tasks(const std::vector<align::Sequence>& queries,
                             std::uint64_t db_residues) {
    std::vector<std::size_t> lengths;
    lengths.reserve(queries.size());
    for (const align::Sequence& q : queries) lengths.push_back(q.size());
    return make_tasks_from_lengths(lengths, db_residues);
}

std::vector<Task> make_tasks_from_lengths(
    const std::vector<std::size_t>& query_lengths,
    std::uint64_t db_residues) {
    std::vector<Task> tasks;
    tasks.reserve(query_lengths.size());
    for (std::size_t i = 0; i < query_lengths.size(); ++i) {
        Task t;
        t.id = static_cast<TaskId>(i);
        t.query_index = static_cast<std::uint32_t>(i);
        t.cells = align::cell_count(query_lengths[i], db_residues);
        tasks.push_back(t);
    }
    return tasks;
}

}  // namespace swh::core

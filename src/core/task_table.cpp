#include "core/task_table.hpp"

#include <algorithm>
#include <deque>

#include "util/error.hpp"

namespace swh::core {

TaskTable::TaskTable(std::vector<Task> tasks, ReadyOrder order) {
    entries_.reserve(tasks.size());
    ready_queue_.reserve(tasks.size());
    for (std::size_t i = 0; i < tasks.size(); ++i) {
        SWH_REQUIRE(tasks[i].id == i, "task ids must be dense 0..N-1");
        entries_.push_back(Entry{tasks[i], TaskState::Ready, {}, kInvalidPe});
        ready_queue_.push_back(tasks[i].id);
    }
    if (order == ReadyOrder::LargestFirst) {
        std::sort(ready_queue_.begin(), ready_queue_.end(),
                  [this](TaskId a, TaskId b) {
                      if (entries_[a].task.cells != entries_[b].task.cells)
                          return entries_[a].task.cells >
                                 entries_[b].task.cells;
                      return a < b;
                  });
    }
    ready_count_ = entries_.size();
}

TaskTable::Entry& TaskTable::entry(TaskId id) {
    SWH_REQUIRE(id < entries_.size(), "task id out of range");
    return entries_[id];
}

const TaskTable::Entry& TaskTable::entry(TaskId id) const {
    SWH_REQUIRE(id < entries_.size(), "task id out of range");
    return entries_[id];
}

const Task& TaskTable::task(TaskId id) const { return entry(id).task; }

TaskState TaskTable::state(TaskId id) const { return entry(id).state; }

const std::vector<PeId>& TaskTable::executors(TaskId id) const {
    return entry(id).executors;
}

PeId TaskTable::winner(TaskId id) const { return entry(id).winner; }

std::optional<TaskId> TaskTable::acquire_ready(PeId pe) {
    while (!ready_queue_.empty()) {
        const TaskId id = ready_queue_.front();
        ready_queue_.erase(ready_queue_.begin());
        Entry& e = entry(id);
        if (e.state != TaskState::Ready) continue;  // stale queue entry
        e.state = TaskState::Executing;
        e.executors.push_back(pe);
        --ready_count_;
        ++executing_count_;
        return id;
    }
    return std::nullopt;
}

void TaskTable::add_replica(TaskId id, PeId pe) {
    Entry& e = entry(id);
    SWH_REQUIRE(e.state == TaskState::Executing,
                "can only replicate an executing task");
    SWH_REQUIRE(!is_executor(id, pe), "PE already executes this task");
    e.executors.push_back(pe);
}

bool TaskTable::is_executor(TaskId id, PeId pe) const {
    const auto& ex = entry(id).executors;
    return std::find(ex.begin(), ex.end(), pe) != ex.end();
}

bool TaskTable::complete(TaskId id, PeId pe) {
    Entry& e = entry(id);
    SWH_REQUIRE(is_executor(id, pe), "completion from a non-executor PE");
    std::erase(e.executors, pe);
    if (e.state == TaskState::Finished) {
        return false;  // a faster replica already won
    }
    SWH_REQUIRE(e.state == TaskState::Executing,
                "completion of a non-executing task");
    e.state = TaskState::Finished;
    e.winner = pe;
    --executing_count_;
    ++finished_count_;
    return true;
}

void TaskTable::release(TaskId id, PeId pe) {
    Entry& e = entry(id);
    SWH_REQUIRE(is_executor(id, pe), "release from a non-executor PE");
    std::erase(e.executors, pe);
    if (e.state == TaskState::Executing && e.executors.empty()) {
        e.state = TaskState::Ready;
        --executing_count_;
        ++ready_count_;
        ready_queue_.insert(ready_queue_.begin(), id);
    }
}

std::vector<TaskId> TaskTable::executing_tasks() const {
    std::vector<TaskId> out;
    out.reserve(executing_count_);
    for (const Entry& e : entries_) {
        if (e.state == TaskState::Executing) out.push_back(e.task.id);
    }
    return out;
}

}  // namespace swh::core

#include "core/task_table.hpp"

#include <algorithm>
#include <deque>
#include <set>

#include "util/check.hpp"

namespace swh::core {

TaskTable::TaskTable(std::vector<Task> tasks, ReadyOrder order) {
    entries_.reserve(tasks.size());
    ready_queue_.reserve(tasks.size());
    for (std::size_t i = 0; i < tasks.size(); ++i) {
        SWH_CHECK_EQ(tasks[i].id, i, "task ids must be dense 0..N-1");
        entries_.push_back(Entry{tasks[i], TaskState::Ready, {}, kInvalidPe});
        ready_queue_.push_back(tasks[i].id);
    }
    if (order == ReadyOrder::LargestFirst) {
        std::sort(ready_queue_.begin(), ready_queue_.end(),
                  [this](TaskId a, TaskId b) {
                      if (entries_[a].task.cells != entries_[b].task.cells)
                          return entries_[a].task.cells >
                                 entries_[b].task.cells;
                      return a < b;
                  });
    }
    ready_count_ = entries_.size();
    SWH_AUDIT_SWEEP(check_invariants());
}

TaskTable::Entry& TaskTable::entry(TaskId id) {
    SWH_CHECK_LT(id, entries_.size(), "task id out of range");
    return entries_[id];
}

const TaskTable::Entry& TaskTable::entry(TaskId id) const {
    SWH_CHECK_LT(id, entries_.size(), "task id out of range");
    return entries_[id];
}

const Task& TaskTable::task(TaskId id) const { return entry(id).task; }

TaskState TaskTable::state(TaskId id) const { return entry(id).state; }

const std::vector<PeId>& TaskTable::executors(TaskId id) const {
    return entry(id).executors;
}

PeId TaskTable::winner(TaskId id) const { return entry(id).winner; }

std::optional<TaskId> TaskTable::acquire_ready(PeId pe) {
    while (!ready_queue_.empty()) {
        const TaskId id = ready_queue_.front();
        ready_queue_.erase(ready_queue_.begin());
        Entry& e = entry(id);
        if (e.state != TaskState::Ready) continue;  // stale queue entry
        SWH_DCHECK(e.executors.empty(),
                   "a Ready task must not have executors");
        e.state = TaskState::Executing;
        e.executors.push_back(pe);
        --ready_count_;
        ++executing_count_;
        SWH_AUDIT_SWEEP(check_invariants());
        return id;
    }
    return std::nullopt;
}

void TaskTable::add_replica(TaskId id, PeId pe) {
    Entry& e = entry(id);
    SWH_CHECK_EQ(e.state, TaskState::Executing,
                 "replication only targets executing tasks");
    SWH_CHECK(!is_executor(id, pe), "PE already executes this task");
    e.executors.push_back(pe);
    SWH_AUDIT_SWEEP(check_invariants());
}

bool TaskTable::is_executor(TaskId id, PeId pe) const {
    const auto& ex = entry(id).executors;
    return std::find(ex.begin(), ex.end(), pe) != ex.end();
}

bool TaskTable::complete(TaskId id, PeId pe) {
    Entry& e = entry(id);
    SWH_CHECK(is_executor(id, pe), "completion from a non-executor PE");
    std::erase(e.executors, pe);
    if (e.state == TaskState::Finished) {
        // First-finisher-wins settled this task already; the loser's
        // result is discarded.
        SWH_DCHECK_NE(e.winner, kInvalidPe,
                      "finished task must have a winner");
        return false;
    }
    SWH_CHECK_EQ(e.state, TaskState::Executing,
                 "completion of a non-executing task");
    SWH_DCHECK_EQ(e.winner, kInvalidPe,
                  "first-finisher-wins must settle exactly once");
    e.state = TaskState::Finished;
    e.winner = pe;
    --executing_count_;
    ++finished_count_;
    SWH_AUDIT_SWEEP(check_invariants());
    return true;
}

void TaskTable::release(TaskId id, PeId pe) {
    Entry& e = entry(id);
    SWH_CHECK(is_executor(id, pe), "release from a non-executor PE");
    std::erase(e.executors, pe);
    if (e.state == TaskState::Executing && e.executors.empty()) {
        e.state = TaskState::Ready;
        --executing_count_;
        ++ready_count_;
        ready_queue_.insert(ready_queue_.begin(), id);
    }
    SWH_AUDIT_SWEEP(check_invariants());
}

bool TaskTable::abandon(TaskId id, PeId pe) {
    Entry& e = entry(id);
    SWH_CHECK(is_executor(id, pe), "abandon from a non-executor PE");
    SWH_CHECK_EQ(e.state, TaskState::Executing,
                 "abandon of a non-executing task");
    std::erase(e.executors, pe);
    if (!e.executors.empty()) {
        // A replica is still running; first-finisher-wins may yet
        // settle the task normally, so don't write it off.
        SWH_AUDIT_SWEEP(check_invariants());
        return false;
    }
    e.state = TaskState::Finished;
    e.abandoned = true;  // winner stays kInvalidPe
    --executing_count_;
    ++finished_count_;
    SWH_AUDIT_SWEEP(check_invariants());
    return true;
}

bool TaskTable::abandoned(TaskId id) const { return entry(id).abandoned; }

std::vector<TaskId> TaskTable::executing_tasks() const {
    std::vector<TaskId> out;
    out.reserve(executing_count_);
    for (const Entry& e : entries_) {
        if (e.state == TaskState::Executing) out.push_back(e.task.id);
    }
    return out;
}

void TaskTable::check_invariants() const {
    std::size_t ready = 0, executing = 0, finished = 0;
    for (const Entry& e : entries_) {
        const std::set<PeId> uniq(e.executors.begin(), e.executors.end());
        SWH_CHECK_EQ(uniq.size(), e.executors.size(),
                     "duplicate executor for one task");
        switch (e.state) {
            case TaskState::Ready:
                ++ready;
                SWH_CHECK_EQ(e.executors.size(), std::size_t{0},
                             "no task may be both ready and executing");
                SWH_CHECK_EQ(e.winner, kInvalidPe,
                             "a Ready task cannot have a winner");
                SWH_CHECK(std::find(ready_queue_.begin(), ready_queue_.end(),
                                    e.task.id) != ready_queue_.end(),
                          "Ready task missing from the ready queue");
                break;
            case TaskState::Executing:
                ++executing;
                SWH_CHECK_GE(e.executors.size(), std::size_t{1},
                             "an Executing task needs an executor");
                SWH_CHECK_EQ(e.winner, kInvalidPe,
                             "winner set before completion");
                break;
            case TaskState::Finished:
                ++finished;
                if (e.abandoned) {
                    SWH_CHECK_EQ(e.winner, kInvalidPe,
                                 "an abandoned task cannot have a winner");
                    SWH_CHECK_EQ(e.executors.size(), std::size_t{0},
                                 "abandonment settles only an empty "
                                 "executor set");
                } else {
                    SWH_CHECK_NE(e.winner, kInvalidPe,
                                 "a Finished task needs a winner");
                }
                break;
        }
    }
    SWH_CHECK_EQ(ready, ready_count_, "ready tally out of sync");
    SWH_CHECK_EQ(executing, executing_count_, "executing tally out of sync");
    SWH_CHECK_EQ(finished, finished_count_, "finished tally out of sync");
    SWH_CHECK_EQ(ready + executing + finished, entries_.size(),
                 "task states must partition the table");
}

}  // namespace swh::core

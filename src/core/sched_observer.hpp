#pragma once

#include <cstddef>

#include "core/types.hpp"

namespace swh::core {

/// Observer of the master's scheduling decisions. SchedulerCore stays
/// thread/clock/IO-free: it only reports what it decided, with the
/// caller-supplied `now`, on the thread that delivered the event (the
/// threaded runtime's master thread, or the simulator's event loop).
/// Implementations live outside core (see obs::SchedTracer); every
/// callback has an empty default so observers override only what they
/// need. Callbacks must not re-enter the scheduler.
class SchedObserver {
public:
    virtual ~SchedObserver() = default;

    virtual void on_slave_registered(PeId pe, PeKind kind) {
        (void)pe;
        (void)kind;
    }

    virtual void on_slave_deregistered(PeId pe, double now) {
        (void)pe;
        (void)now;
    }

    /// One work package handed out: `tasks` ids were assigned together.
    /// `replica` marks a workload-adjustment package (a task re-assigned
    /// while still executing elsewhere).
    virtual void on_package_sized(PeId pe, std::size_t tasks, bool replica,
                                  double now) {
        (void)pe;
        (void)tasks;
        (void)replica;
        (void)now;
    }

    virtual void on_task_assigned(PeId pe, TaskId task, double now) {
        (void)pe;
        (void)task;
        (void)now;
    }

    virtual void on_replica_issued(PeId pe, TaskId task, double now) {
        (void)pe;
        (void)task;
        (void)now;
    }

    /// A progress notification was folded into the slave's history.
    /// `prior_estimate` is the recency-weighted rate the scheduler held
    /// *before* this sample (0 = no history yet) — the delta against
    /// `cells_per_second` is the estimate's realised error.
    virtual void on_progress(PeId pe, double now, double cells_per_second,
                             double prior_estimate) {
        (void)pe;
        (void)now;
        (void)cells_per_second;
        (void)prior_estimate;
    }

    virtual void on_task_completed(PeId pe, TaskId task, bool accepted,
                                   double now) {
        (void)pe;
        (void)task;
        (void)accepted;
        (void)now;
    }

    /// A loser replica was told to abandon `task` (cancel_losers mode).
    virtual void on_task_cancelled(PeId pe, TaskId task, double now) {
        (void)pe;
        (void)task;
        (void)now;
    }

    /// `pe` reported an engine failure while executing `task`.
    /// `abandoned` = the retry budget is spent and no replica is still
    /// running, so the task settles as failed instead of requeueing.
    virtual void on_task_failed(PeId pe, TaskId task, bool abandoned,
                                double now) {
        (void)pe;
        (void)task;
        (void)abandoned;
        (void)now;
    }
};

}  // namespace swh::core

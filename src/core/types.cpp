#include "core/types.hpp"

namespace swh::core {

const char* to_string(PeKind kind) {
    switch (kind) {
        case PeKind::SseCore:
            return "sse";
        case PeKind::Gpu:
            return "gpu";
        case PeKind::Fpga:
            return "fpga";
    }
    return "?";
}

const char* to_string(TaskState state) {
    switch (state) {
        case TaskState::Ready:
            return "ready";
        case TaskState::Executing:
            return "executing";
        case TaskState::Finished:
            return "finished";
    }
    return "?";
}

}  // namespace swh::core

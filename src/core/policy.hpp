#pragma once

#include <map>
#include <memory>
#include <span>
#include <string_view>

#include "core/types.hpp"

namespace swh::core {

/// What a policy may inspect about each registered slave when sizing a
/// work package.
struct SlaveView {
    PeId id = 0;
    PeKind kind = PeKind::SseCore;
    double rate = 0.0;       ///< recency-weighted cells/s; 0 if unknown
    bool has_rate = false;
    std::size_t queued = 0;  ///< tasks currently assigned and unfinished
};

/// Task-allocation policy: how many tasks to hand a requesting slave.
/// Policies may be stateful (Fixed/WFixed serve each PE once). The
/// scheduler clamps the answer to the number of ready tasks.
class AllocationPolicy {
public:
    virtual ~AllocationPolicy() = default;

    virtual std::string_view name() const = 0;

    /// `total_tasks` is the size of the whole task pool (static);
    /// `ready_remaining` the tasks still in the Ready state.
    virtual std::size_t batch_size(const SlaveView& requester,
                                   std::span<const SlaveView> all,
                                   std::size_t ready_remaining,
                                   std::size_t total_tasks) = 0;
};

/// Self-Scheduling (SS): one task per request. Maximum idle time bounded
/// by one task on the slowest slave, at the cost of one master round-trip
/// per task (paper SS IV-A.1).
std::unique_ptr<AllocationPolicy> make_self_scheduling();

/// SS with a fixed chunk size > 1 (Rognes-style chunked self-scheduling,
/// related-work baseline).
std::unique_ptr<AllocationPolicy> make_chunked_self_scheduling(
    std::size_t chunk);

/// PSS (paper SS IV-A.2): package size = SS allocation x Phi(p_i, P),
/// where Phi is the requester's recency-weighted rate divided by the
/// slowest observed rate, rounded, at least 1. A slave with no history
/// yet gets 1 task (the paper's "first allocation" round).
std::unique_ptr<AllocationPolicy> make_pss();

/// Fixed (Singh & Aruni baseline): the pool is split evenly across the
/// slaves present at the first request; later requests get nothing.
std::unique_ptr<AllocationPolicy> make_fixed();

/// WFixed (Meng & Chaudhary baseline): like Fixed but proportional to a
/// declared static power per PE kind (from a configuration file in the
/// original; a map here).
std::unique_ptr<AllocationPolicy> make_wfixed(
    std::map<PeKind, double> declared_power);

}  // namespace swh::core

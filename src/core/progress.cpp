#include "core/progress.hpp"

#include "util/stats.hpp"

namespace swh::core {

double ProgressHistory::rate() const {
    if (window_.empty()) return 0.0;
    const std::vector<double> xs = window_.to_vector();
    return recency_weighted_mean(xs);
}

}  // namespace swh::core

#pragma once

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "core/policy.hpp"
#include "core/progress.hpp"
#include "core/sched_observer.hpp"
#include "core/task_table.hpp"
#include "core/types.hpp"

namespace swh::core {

/// Scheduler configuration (paper SS IV-A).
struct SchedulerOptions {
    /// The workload-adjustment mechanism: when a slave asks for work and
    /// no ready task exists, re-assign a task still executing elsewhere.
    bool workload_adjust = true;

    /// Extension (after Ino et al. [15]): when a replica wins, tell the
    /// remaining executors to abandon the task. Off = paper behaviour
    /// (losers finish and their results are discarded).
    bool cancel_losers = false;

    /// Extension ablation: only replicate a task if the idle PE's
    /// estimated completion beats the current owner's estimate. Off =
    /// paper behaviour (idle PEs always get an executing task).
    bool replicate_only_if_faster = false;

    /// Progress-history window Omega (paper SS IV-A.2).
    std::size_t omega = 8;

    /// Ready-queue order. The paper hands tasks out in query-file order
    /// (FifoById); LargestFirst is the classic LPT heuristic ablation —
    /// it shrinks the straggler tail the adjustment mechanism exists
    /// to absorb.
    ReadyOrder ready_order = ReadyOrder::FifoById;
};

/// The master's decision logic, as a pure event-driven state machine.
///
/// Every behaviour of the paper's master lives here: first-allocation
/// rounds, policy-sized packages, the ready/executing/finished task
/// table, and the workload-adjustment replication. The class has no
/// threads, clocks, or I/O — callers (the threaded runtime and the
/// discrete-event simulator) deliver events with an explicit timestamp
/// `now` (seconds on the caller's clock, only used for remaining-work
/// estimates). This is what lets the simulated experiments exercise the
/// same scheduler that runs for real.
///
/// Not thread-safe; the threaded runtime serialises event delivery.
class SchedulerCore {
public:
    SchedulerCore(std::vector<Task> tasks,
                  std::unique_ptr<AllocationPolicy> policy,
                  SchedulerOptions options);

    /// Attaches a decision observer (nullptr detaches). Non-owning; the
    /// observer must outlive the scheduler or be detached first. Events
    /// are reported synchronously on the thread delivering them.
    void set_observer(SchedObserver* observer) { observer_ = observer; }

    // ---- Slave membership -------------------------------------------

    void register_slave(PeId pe, PeKind kind);

    /// Node leave (future-work extension): tasks the PE held alone go
    /// back to Ready; replicas elsewhere keep running.
    void deregister_slave(PeId pe, double now);

    bool is_registered(PeId pe) const;

    // ---- Events -------------------------------------------------------

    /// A slave asks for work. Returns the assigned task ids, in the order
    /// the slave should execute them. Empty result: nothing to assign
    /// right now (the driver should retry after the next completion, or
    /// stop if all_done()).
    std::vector<TaskId> on_work_request(PeId pe, double now);

    /// Periodic progress notification: observed processing speed in
    /// cells/second since the previous notification.
    void on_progress(PeId pe, double now, double cells_per_second);

    struct CompletionResult {
        bool accepted = false;  ///< first finisher; results are kept
        /// Executors told to abandon the task (only when cancel_losers).
        std::vector<PeId> cancelled;
    };

    CompletionResult on_task_complete(PeId pe, TaskId task, double now);

    // ---- Introspection ------------------------------------------------

    bool all_done() const { return table_.all_finished(); }
    const TaskTable& tasks() const { return table_; }
    const AllocationPolicy& policy() const { return *policy_; }
    const SchedulerOptions& options() const { return options_; }

    /// Current recency-weighted rate estimate for a slave (0 = unknown).
    double rate_estimate(PeId pe) const;

    /// Tasks currently assigned to a slave, execution order.
    std::vector<TaskId> queue_of(PeId pe) const;

    std::size_t replicas_issued() const { return replicas_issued_; }
    std::size_t completions_discarded() const {
        return completions_discarded_;
    }

private:
    struct Slave {
        PeKind kind;
        ProgressHistory history;
        std::deque<TaskId> queue;    ///< front = running now
        double front_started = 0.0;  ///< when the front task began
    };

    Slave& slave(PeId pe);
    const Slave& slave(PeId pe) const;

    std::vector<SlaveView> views() const;

    /// Fallback rate when a slave has no history: mean of known rates,
    /// else 1 (only relative magnitudes matter for the estimates).
    double effective_rate(const Slave& s) const;

    /// Estimated completion time of task `t` on slave `q` given queue
    /// position; +inf if it cannot be estimated.
    double estimated_completion(PeId q, TaskId t, double now) const;

    /// Picks the executing task worth replicating onto `pe`, if any.
    std::optional<TaskId> pick_replica(PeId pe, double now) const;

    void remove_from_queue(PeId pe, TaskId task, double now);

    TaskTable table_;
    std::unique_ptr<AllocationPolicy> policy_;
    SchedulerOptions options_;
    SchedObserver* observer_ = nullptr;
    std::map<PeId, Slave> slaves_;
    std::size_t replicas_issued_ = 0;
    std::size_t completions_discarded_ = 0;
};

}  // namespace swh::core

#pragma once

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "core/policy.hpp"
#include "core/progress.hpp"
#include "core/sched_observer.hpp"
#include "core/task_table.hpp"
#include "core/types.hpp"
#include "util/annotations.hpp"

namespace swh::core {

/// Scheduler configuration (paper SS IV-A).
struct SchedulerOptions {
    /// The workload-adjustment mechanism: when a slave asks for work and
    /// no ready task exists, re-assign a task still executing elsewhere.
    bool workload_adjust = true;

    /// Extension (after Ino et al. [15]): when a replica wins, tell the
    /// remaining executors to abandon the task. Off = paper behaviour
    /// (losers finish and their results are discarded).
    bool cancel_losers = false;

    /// Extension ablation: only replicate a task if the idle PE's
    /// estimated completion beats the current owner's estimate. Off =
    /// paper behaviour (idle PEs always get an executing task).
    bool replicate_only_if_faster = false;

    /// Progress-history window Omega (paper SS IV-A.2).
    std::size_t omega = 8;

    /// Ready-queue order. The paper hands tasks out in query-file order
    /// (FifoById); LargestFirst is the classic LPT heuristic ablation —
    /// it shrinks the straggler tail the adjustment mechanism exists
    /// to absorb.
    ReadyOrder ready_order = ReadyOrder::FifoById;
};

/// The master's decision logic, as an event-driven state machine.
///
/// Every behaviour of the paper's master lives here: first-allocation
/// rounds, policy-sized packages, the ready/executing/finished task
/// table, and the workload-adjustment replication. The class has no
/// threads, clocks, or I/O — callers (the threaded runtime and the
/// discrete-event simulator) deliver events with an explicit timestamp
/// `now` (seconds on the caller's clock, only used for remaining-work
/// estimates). This is what lets the simulated experiments exercise the
/// same scheduler that runs for real.
///
/// Thread-safe: every event and introspection call serialises on an
/// internal mutex (annotated for Clang -Wthread-safety, so unguarded
/// access to the task table or slave map is a compile error). The
/// threaded runtime delivers all events from the master thread, so the
/// lock is uncontended there; the lock makes the serialisation a
/// checked property instead of a calling convention.
class SchedulerCore {
public:
    SchedulerCore(std::vector<Task> tasks,
                  std::unique_ptr<AllocationPolicy> policy,
                  SchedulerOptions options);

    /// Attaches a decision observer (nullptr detaches). Non-owning; the
    /// observer must outlive the scheduler or be detached first. Events
    /// are reported synchronously, with the scheduler mutex held — the
    /// observer must not call back into the scheduler.
    void set_observer(SchedObserver* observer) SWH_EXCLUDES(mu_);

    // ---- Slave membership -------------------------------------------

    void register_slave(PeId pe, PeKind kind) SWH_EXCLUDES(mu_);

    /// Node leave (future-work extension): tasks the PE held alone go
    /// back to Ready; replicas elsewhere keep running.
    void deregister_slave(PeId pe, double now) SWH_EXCLUDES(mu_);

    bool is_registered(PeId pe) const SWH_EXCLUDES(mu_);

    // ---- Events -------------------------------------------------------

    /// A slave asks for work. Returns the assigned task ids, in the order
    /// the slave should execute them. Empty result: nothing to assign
    /// right now (the driver should retry after the next completion, or
    /// stop if all_done()).
    std::vector<TaskId> on_work_request(PeId pe, double now)
        SWH_EXCLUDES(mu_);

    /// Periodic progress notification: observed processing speed in
    /// cells/second since the previous notification.
    void on_progress(PeId pe, double now, double cells_per_second)
        SWH_EXCLUDES(mu_);

    struct CompletionResult {
        bool accepted = false;  ///< first finisher; results are kept
        /// Executors told to abandon the task (only when cancel_losers).
        std::vector<PeId> cancelled;
    };

    CompletionResult on_task_complete(PeId pe, TaskId task, double now)
        SWH_EXCLUDES(mu_);

    struct FailureOutcome {
        /// The report referred to a pairing that no longer exists (PE
        /// deregistered, task already settled or not held by the PE) —
        /// nothing changed, like a raced cancellation.
        bool stale = false;
        bool requeued = false;   ///< task went back to Ready for retry
        bool abandoned = false;  ///< retry budget spent; settled as failed
    };

    /// `pe` failed to execute `task` (engine exception). With
    /// `allow_retry` the task is released back to Ready (front of the
    /// queue); otherwise it is abandoned — settled as Finished with no
    /// winner so the run terminates and reports it as failed. Either
    /// way, a replica still running elsewhere keeps the task Executing.
    FailureOutcome on_task_failed(PeId pe, TaskId task, double now,
                                  bool allow_retry) SWH_EXCLUDES(mu_);

    // ---- Introspection ------------------------------------------------
    // Each call takes the scheduler mutex and returns a copy, so results
    // are consistent snapshots even against concurrent event delivery.

    bool all_done() const SWH_EXCLUDES(mu_);

    std::size_t total_tasks() const SWH_EXCLUDES(mu_);
    std::size_t ready_count() const SWH_EXCLUDES(mu_);
    std::size_t executing_count() const SWH_EXCLUDES(mu_);
    std::size_t finished_count() const SWH_EXCLUDES(mu_);

    Task task(TaskId id) const SWH_EXCLUDES(mu_);
    TaskState task_state(TaskId id) const SWH_EXCLUDES(mu_);
    /// PE whose completion was accepted; kInvalidPe if not finished.
    PeId task_winner(TaskId id) const SWH_EXCLUDES(mu_);
    /// True if the task was settled by retry exhaustion (no winner).
    bool task_abandoned(TaskId id) const SWH_EXCLUDES(mu_);
    /// PEs currently holding the task (first is the original assignee).
    std::vector<PeId> task_executors(TaskId id) const SWH_EXCLUDES(mu_);

    const SchedulerOptions& options() const { return options_; }

    /// Current recency-weighted rate estimate for a slave (0 = unknown).
    double rate_estimate(PeId pe) const SWH_EXCLUDES(mu_);

    /// Tasks currently assigned to a slave, execution order.
    std::vector<TaskId> queue_of(PeId pe) const SWH_EXCLUDES(mu_);

    std::size_t replicas_issued() const SWH_EXCLUDES(mu_);
    std::size_t completions_discarded() const SWH_EXCLUDES(mu_);
    std::size_t tasks_failed() const SWH_EXCLUDES(mu_);
    std::size_t tasks_abandoned() const SWH_EXCLUDES(mu_);

    /// Sweeps the task-table invariants plus the scheduler-level ones:
    /// every queued task of a live slave is held by that slave and is
    /// not Ready, and no slave queue contains duplicates. Throws
    /// swh::check::CheckFailure on violation. SWH_AUDIT builds run it
    /// automatically after every event.
    void check_invariants() const SWH_EXCLUDES(mu_);

private:
    struct Slave {
        PeKind kind;
        ProgressHistory history;
        std::deque<TaskId> queue;    ///< front = running now
        double front_started = 0.0;  ///< when the front task began
    };

    Slave& slave(PeId pe) SWH_REQUIRES(mu_);
    const Slave& slave(PeId pe) const SWH_REQUIRES(mu_);

    std::vector<SlaveView> views() const SWH_REQUIRES(mu_);

    /// Fallback rate when a slave has no history: mean of known rates,
    /// else 1 (only relative magnitudes matter for the estimates).
    double effective_rate(const Slave& s) const SWH_REQUIRES(mu_);

    /// Estimated completion time of task `t` on slave `q` given queue
    /// position; +inf if it cannot be estimated.
    double estimated_completion(PeId q, TaskId t, double now) const
        SWH_REQUIRES(mu_);

    /// Picks the executing task worth replicating onto `pe`, if any.
    std::optional<TaskId> pick_replica(PeId pe, double now) const
        SWH_REQUIRES(mu_);

    void remove_from_queue(PeId pe, TaskId task, double now)
        SWH_REQUIRES(mu_);

    void check_invariants_locked() const SWH_REQUIRES(mu_);

    mutable swh::Mutex mu_;
    TaskTable table_ SWH_GUARDED_BY(mu_);
    std::unique_ptr<AllocationPolicy> policy_ SWH_PT_GUARDED_BY(mu_);
    const SchedulerOptions options_;  ///< immutable after construction
    SchedObserver* observer_ SWH_GUARDED_BY(mu_) = nullptr;
    std::map<PeId, Slave> slaves_ SWH_GUARDED_BY(mu_);
    std::size_t replicas_issued_ SWH_GUARDED_BY(mu_) = 0;
    std::size_t completions_discarded_ SWH_GUARDED_BY(mu_) = 0;
    std::size_t tasks_failed_ SWH_GUARDED_BY(mu_) = 0;
    std::size_t tasks_abandoned_ SWH_GUARDED_BY(mu_) = 0;
};

}  // namespace swh::core

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "align/score_matrix.hpp"
#include "align/sequence.hpp"
#include "core/types.hpp"

namespace swh::core {

/// One query-vs-database-sequence score produced by a slave.
struct Hit {
    std::uint32_t db_index = 0;
    align::Score score = 0;

    friend bool operator==(const Hit&, const Hit&) = default;
};

/// Payload of a completed task: the best hits of one query against the
/// whole database.
struct TaskResult {
    TaskId task = 0;
    std::uint32_t query_index = 0;
    std::uint64_t cells = 0;       ///< DP cells the slave actually updated
    std::vector<Hit> hits;         ///< descending score

    friend bool operator==(const TaskResult&, const TaskResult&) = default;
};

/// Master-side result merging ("merge results" box in the paper's Fig.
/// 4): keeps the top-k hits per query. Replica duplicates never reach
/// here — the scheduler only accepts the first completion of a task.
class ResultMerger {
public:
    ResultMerger(std::size_t num_queries, std::size_t top_k);

    void add(const TaskResult& result);

    /// Hits for one query, best first.
    const std::vector<Hit>& hits_for(std::size_t query_index) const;

    std::uint64_t total_cells() const { return total_cells_; }
    std::size_t results_merged() const { return results_merged_; }

private:
    std::size_t top_k_;
    std::vector<std::vector<Hit>> per_query_;
    std::uint64_t total_cells_ = 0;
    std::size_t results_merged_ = 0;
};

/// Builds the task pool for a query set against a database of
/// `db_residues` total residues: task i = query i vs the whole database,
/// cells = |query_i| x db_residues (paper SS IV).
std::vector<Task> make_tasks(const std::vector<align::Sequence>& queries,
                             std::uint64_t db_residues);

/// Same, from query lengths only (for the simulator, which never touches
/// residue data).
std::vector<Task> make_tasks_from_lengths(
    const std::vector<std::size_t>& query_lengths, std::uint64_t db_residues);

}  // namespace swh::core

#pragma once

#include "util/ring_buffer.hpp"

namespace swh::core {

/// Per-slave processing-speed estimator (paper SS IV-A.2): keeps the last
/// Omega progress notifications (cells/second samples) and summarises
/// them with a recency-weighted mean. Small Omega reacts fast to load
/// changes; large Omega smooths noise.
class ProgressHistory {
public:
    explicit ProgressHistory(std::size_t omega) : window_(omega) {}

    void record(double cells_per_second) {
        if (cells_per_second >= 0.0) window_.push(cells_per_second);
    }

    bool has_history() const { return !window_.empty(); }

    /// Recency-weighted mean rate; 0 when no history yet.
    double rate() const;

    std::size_t omega() const { return window_.capacity(); }
    std::size_t samples() const { return window_.size(); }

private:
    RingBuffer<double> window_;
};

}  // namespace swh::core

#include "core/scheduler.hpp"

#include <algorithm>
#include <limits>
#include <set>

#include "util/check.hpp"

namespace swh::core {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}

SchedulerCore::SchedulerCore(std::vector<Task> tasks,
                             std::unique_ptr<AllocationPolicy> policy,
                             SchedulerOptions options)
    : table_(std::move(tasks), options.ready_order),
      policy_(std::move(policy)),
      options_(options) {
    SWH_CHECK(policy_ != nullptr, "scheduler needs a policy");
    SWH_CHECK_GT(options_.omega, std::size_t{0}, "omega must be positive");
}

void SchedulerCore::set_observer(SchedObserver* observer) {
    const swh::LockGuard lock(mu_);
    observer_ = observer;
}

SchedulerCore::Slave& SchedulerCore::slave(PeId pe) {
    const auto it = slaves_.find(pe);
    SWH_CHECK(it != slaves_.end(), "unknown slave PE");
    return it->second;
}

const SchedulerCore::Slave& SchedulerCore::slave(PeId pe) const {
    const auto it = slaves_.find(pe);
    SWH_CHECK(it != slaves_.end(), "unknown slave PE");
    return it->second;
}

void SchedulerCore::register_slave(PeId pe, PeKind kind) {
    const swh::LockGuard lock(mu_);
    SWH_CHECK(slaves_.find(pe) == slaves_.end(), "slave already registered");
    slaves_.emplace(pe,
                    Slave{kind, ProgressHistory(options_.omega), {}, 0.0});
    if (observer_ != nullptr) observer_->on_slave_registered(pe, kind);
    SWH_AUDIT_SWEEP(check_invariants_locked());
}

void SchedulerCore::deregister_slave(PeId pe, double now) {
    const swh::LockGuard lock(mu_);
    const check::ScopedContext ctx(pe, -1);
    Slave& s = slave(pe);
    for (const TaskId t : s.queue) {
        table_.release(t, pe);
    }
    slaves_.erase(pe);
    if (observer_ != nullptr) observer_->on_slave_deregistered(pe, now);
    SWH_AUDIT_SWEEP(check_invariants_locked());
}

bool SchedulerCore::is_registered(PeId pe) const {
    const swh::LockGuard lock(mu_);
    return slaves_.find(pe) != slaves_.end();
}

std::vector<SlaveView> SchedulerCore::views() const {
    std::vector<SlaveView> out;
    out.reserve(slaves_.size());
    for (const auto& [id, s] : slaves_) {
        out.push_back(SlaveView{id, s.kind, s.history.rate(),
                                s.history.has_history(), s.queue.size()});
    }
    return out;
}

double SchedulerCore::effective_rate(const Slave& s) const {
    if (s.history.has_history() && s.history.rate() > 0.0)
        return s.history.rate();
    double sum = 0.0;
    std::size_t n = 0;
    for (const auto& [id, other] : slaves_) {
        if (other.history.has_history() && other.history.rate() > 0.0) {
            sum += other.history.rate();
            ++n;
        }
    }
    return n > 0 ? sum / static_cast<double>(n) : 1.0;
}

double SchedulerCore::estimated_completion(PeId q, TaskId t,
                                           double now) const {
    const Slave& s = slave(q);
    const double rate = effective_rate(s);
    if (rate <= 0.0) return kInf;
    double work = 0.0;  // cells still to process before t finishes on q
    bool found = false;
    for (std::size_t i = 0; i < s.queue.size(); ++i) {
        const TaskId id = s.queue[i];
        double cells = static_cast<double>(table_.task(id).cells);
        if (i == 0) {
            // The front task has been running since front_started.
            const double done = (now - s.front_started) * rate;
            cells = std::max(0.0, cells - done);
        }
        work += cells;
        if (id == t) {
            found = true;
            break;
        }
    }
    if (!found) return kInf;
    return now + work / rate;
}

std::optional<TaskId> SchedulerCore::pick_replica(PeId pe,
                                                  double now) const {
    // Among tasks still executing elsewhere that this PE has not already
    // been given, take the one expected to finish last — the task most
    // likely to stall the application tail (paper SS IV-A.3).
    std::optional<TaskId> best;
    double best_ect = -kInf;
    for (const TaskId t : table_.executing_tasks()) {
        if (table_.is_executor(t, pe)) continue;
        double ect = kInf;
        for (const PeId q : table_.executors(t)) {
            ect = std::min(ect, estimated_completion(q, t, now));
        }
        if (options_.replicate_only_if_faster) {
            const Slave& me = slave(pe);
            const double my_rate = effective_rate(me);
            const double my_ect =
                my_rate > 0.0
                    ? now + static_cast<double>(table_.task(t).cells) / my_rate
                    : kInf;
            if (my_ect >= ect) continue;
        }
        if (ect > best_ect) {
            best_ect = ect;
            best = t;
        }
    }
    return best;
}

std::vector<TaskId> SchedulerCore::on_work_request(PeId pe, double now) {
    const swh::LockGuard lock(mu_);
    const check::ScopedContext ctx(pe, -1);
    Slave& s = slave(pe);
    std::vector<TaskId> assigned;

    const std::vector<SlaveView> all = views();
    const SlaveView* me = nullptr;
    for (const SlaveView& v : all) {
        if (v.id == pe) me = &v;
    }
    SWH_CHECK(me != nullptr, "requester missing from views");

    std::size_t batch = policy_->batch_size(
        *me, all, table_.ready_count(), table_.total());
    // Safety valve: static-split policies (Fixed/WFixed) allocate nothing
    // on a second request, but tasks can return to Ready when a node
    // leaves. A starved request must not orphan them.
    if (batch == 0 && table_.ready_count() > 0) batch = 1;
    for (std::size_t i = 0; i < batch; ++i) {
        const std::optional<TaskId> t = table_.acquire_ready(pe);
        if (!t) break;
        assigned.push_back(*t);
    }

    // Workload adjustment: no ready task was available for this request,
    // so hand out a task that is still executing on a (slower) PE.
    bool replica = false;
    if (assigned.empty() && options_.workload_adjust &&
        table_.ready_count() == 0 && !table_.all_finished()) {
        if (const std::optional<TaskId> t = pick_replica(pe, now)) {
            table_.add_replica(*t, pe);
            assigned.push_back(*t);
            ++replicas_issued_;
            replica = true;
        }
    }

    if (!assigned.empty()) {
        if (s.queue.empty()) s.front_started = now;
        for (const TaskId t : assigned) s.queue.push_back(t);
        if (observer_ != nullptr) {
            observer_->on_package_sized(pe, assigned.size(), replica, now);
            for (const TaskId t : assigned) {
                if (replica) {
                    observer_->on_replica_issued(pe, t, now);
                } else {
                    observer_->on_task_assigned(pe, t, now);
                }
            }
        }
    }
    SWH_AUDIT_SWEEP(check_invariants_locked());
    return assigned;
}

void SchedulerCore::on_progress(PeId pe, double now,
                                double cells_per_second) {
    const swh::LockGuard lock(mu_);
    const check::ScopedContext ctx(pe, -1);
    Slave& s = slave(pe);
    const double prior = s.history.rate();
    s.history.record(cells_per_second);
    if (observer_ != nullptr) {
        observer_->on_progress(pe, now, cells_per_second, prior);
    }
}

void SchedulerCore::remove_from_queue(PeId pe, TaskId task, double now) {
    Slave& s = slave(pe);
    const auto it = std::find(s.queue.begin(), s.queue.end(), task);
    if (it == s.queue.end()) return;
    const bool was_front = it == s.queue.begin();
    s.queue.erase(it);
    if (was_front) s.front_started = now;
}

SchedulerCore::CompletionResult SchedulerCore::on_task_complete(
    PeId pe, TaskId task, double now) {
    const swh::LockGuard lock(mu_);
    const check::ScopedContext ctx(pe, task);
    CompletionResult result;
    result.accepted = table_.complete(task, pe);
    if (!result.accepted) ++completions_discarded_;
    remove_from_queue(pe, task, now);
    if (observer_ != nullptr) {
        observer_->on_task_completed(pe, task, result.accepted, now);
    }

    if (result.accepted && options_.cancel_losers) {
        // Copy: release() mutates the executor list we iterate.
        const std::vector<PeId> losers = table_.executors(task);
        for (const PeId loser : losers) {
            table_.release(task, loser);
            remove_from_queue(loser, task, now);
            result.cancelled.push_back(loser);
            if (observer_ != nullptr) {
                observer_->on_task_cancelled(loser, task, now);
            }
        }
    }
    SWH_AUDIT_SWEEP(check_invariants_locked());
    return result;
}

SchedulerCore::FailureOutcome SchedulerCore::on_task_failed(
    PeId pe, TaskId task, double now, bool allow_retry) {
    const swh::LockGuard lock(mu_);
    const check::ScopedContext ctx(pe, task);
    FailureOutcome out;
    // Stale report: the PE was deregistered (presumed dead, or left) or
    // no longer holds the task (a replica won and it was cancelled, or
    // the pairing was already settled). Same treatment as a raced
    // cancellation: ignore it.
    if (slaves_.find(pe) == slaves_.end() ||
        table_.state(task) != TaskState::Executing ||
        !table_.is_executor(task, pe)) {
        out.stale = true;
        return out;
    }
    ++tasks_failed_;
    remove_from_queue(pe, task, now);
    if (allow_retry) {
        // Back to the ready queue's front (only if no replica is still
        // running — release() keeps the task Executing otherwise).
        table_.release(task, pe);
        out.requeued = table_.state(task) == TaskState::Ready;
    } else {
        out.abandoned = table_.abandon(task, pe);
        if (out.abandoned) ++tasks_abandoned_;
    }
    if (observer_ != nullptr) {
        observer_->on_task_failed(pe, task, out.abandoned, now);
    }
    SWH_AUDIT_SWEEP(check_invariants_locked());
    return out;
}

bool SchedulerCore::all_done() const {
    const swh::LockGuard lock(mu_);
    return table_.all_finished();
}

std::size_t SchedulerCore::total_tasks() const {
    const swh::LockGuard lock(mu_);
    return table_.total();
}

std::size_t SchedulerCore::ready_count() const {
    const swh::LockGuard lock(mu_);
    return table_.ready_count();
}

std::size_t SchedulerCore::executing_count() const {
    const swh::LockGuard lock(mu_);
    return table_.executing_count();
}

std::size_t SchedulerCore::finished_count() const {
    const swh::LockGuard lock(mu_);
    return table_.finished_count();
}

Task SchedulerCore::task(TaskId id) const {
    const swh::LockGuard lock(mu_);
    return table_.task(id);
}

TaskState SchedulerCore::task_state(TaskId id) const {
    const swh::LockGuard lock(mu_);
    return table_.state(id);
}

PeId SchedulerCore::task_winner(TaskId id) const {
    const swh::LockGuard lock(mu_);
    return table_.winner(id);
}

bool SchedulerCore::task_abandoned(TaskId id) const {
    const swh::LockGuard lock(mu_);
    return table_.abandoned(id);
}

std::vector<PeId> SchedulerCore::task_executors(TaskId id) const {
    const swh::LockGuard lock(mu_);
    return table_.executors(id);
}

double SchedulerCore::rate_estimate(PeId pe) const {
    const swh::LockGuard lock(mu_);
    return slave(pe).history.rate();
}

std::vector<TaskId> SchedulerCore::queue_of(PeId pe) const {
    const swh::LockGuard lock(mu_);
    const Slave& s = slave(pe);
    return {s.queue.begin(), s.queue.end()};
}

std::size_t SchedulerCore::replicas_issued() const {
    const swh::LockGuard lock(mu_);
    return replicas_issued_;
}

std::size_t SchedulerCore::completions_discarded() const {
    const swh::LockGuard lock(mu_);
    return completions_discarded_;
}

std::size_t SchedulerCore::tasks_failed() const {
    const swh::LockGuard lock(mu_);
    return tasks_failed_;
}

std::size_t SchedulerCore::tasks_abandoned() const {
    const swh::LockGuard lock(mu_);
    return tasks_abandoned_;
}

void SchedulerCore::check_invariants() const {
    const swh::LockGuard lock(mu_);
    check_invariants_locked();
}

void SchedulerCore::check_invariants_locked() const {
    table_.check_invariants();
    for (const auto& [pe, s] : slaves_) {
        const std::set<TaskId> uniq(s.queue.begin(), s.queue.end());
        SWH_CHECK_EQ(uniq.size(), s.queue.size(),
                     "duplicate task in a slave queue");
        for (const TaskId t : s.queue) {
            const check::ScopedContext ctx(pe, t);
            SWH_CHECK(table_.is_executor(t, pe),
                      "queued task not held by its slave");
            SWH_CHECK(table_.state(t) != TaskState::Ready,
                      "a queued task cannot be Ready");
        }
    }
}

}  // namespace swh::core

#pragma once

#include <memory>
#include <vector>

#include "align/score_matrix.hpp"
#include "align/sequence.hpp"
#include "core/policy.hpp"
#include "simd/arch.hpp"

namespace swh::msa {

/// Symmetric pairwise distance matrix over n sequences.
class DistanceMatrix {
public:
    explicit DistanceMatrix(std::size_t n);

    std::size_t size() const { return n_; }

    double at(std::size_t i, std::size_t j) const;
    void set(std::size_t i, std::size_t j, double d);

private:
    std::size_t n_;
    std::vector<double> data_;  ///< strict upper triangle, row-major
};

struct DistanceOptions {
    align::GapPenalty gap{10, 2};
    simd::IsaLevel isa = simd::best_supported();
};

/// Pairwise SW-score distances: d(a,b) = 1 - S(a,b)/min(S(a,a), S(b,b)),
/// clamped to [0, 1]. Identical sequences get 0; unrelated ones ~1.
/// Computed serially with the striped kernel.
DistanceMatrix compute_distances(const std::vector<align::Sequence>& seqs,
                                 const align::ScoreMatrix& matrix,
                                 const DistanceOptions& options = {});

/// Same distances, but computed through the paper's hybrid master/slave
/// runtime: each task is "one sequence vs the whole set" — the very
/// coarse-grained decomposition reused verbatim for the paper's MSA
/// future-work item. `slave_sses` single-threaded SSE slaves are used.
DistanceMatrix compute_distances_distributed(
    const std::vector<align::Sequence>& seqs,
    const align::ScoreMatrix& matrix, const DistanceOptions& options = {},
    std::size_t slave_sses = 2);

}  // namespace swh::msa

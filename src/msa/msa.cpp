#include "msa/msa.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace swh::msa {

using align::AlignOp;
using align::Code;
using align::Score;

Msa Msa::from_sequence(const align::Sequence& seq) {
    Msa out;
    out.ids.push_back(seq.id);
    out.rows.push_back(seq.residues);
    return out;
}

std::string Msa::row_string(std::size_t r, const align::Alphabet& a) const {
    SWH_REQUIRE(r < rows.size(), "row out of range");
    std::string out;
    out.reserve(rows[r].size());
    for (const Code c : rows[r]) {
        out.push_back(c == kGapCode ? '-' : a.decode(c));
    }
    return out;
}

std::vector<Code> Msa::ungapped(std::size_t r) const {
    SWH_REQUIRE(r < rows.size(), "row out of range");
    std::vector<Code> out;
    for (const Code c : rows[r]) {
        if (c != kGapCode) out.push_back(c);
    }
    return out;
}

void Msa::validate() const {
    SWH_REQUIRE(ids.size() == rows.size(), "ids/rows size mismatch");
    for (const auto& row : rows) {
        SWH_REQUIRE(row.size() == columns(), "ragged MSA rows");
    }
}

Score sum_of_pairs(const Msa& msa, const align::ScoreMatrix& matrix,
                   Score gap_penalty) {
    msa.validate();
    Score total = 0;
    for (std::size_t col = 0; col < msa.columns(); ++col) {
        for (std::size_t r1 = 0; r1 < msa.size(); ++r1) {
            for (std::size_t r2 = r1 + 1; r2 < msa.size(); ++r2) {
                const Code a = msa.rows[r1][col];
                const Code b = msa.rows[r2][col];
                if (a == kGapCode && b == kGapCode) continue;
                if (a == kGapCode || b == kGapCode) {
                    total -= gap_penalty;
                } else {
                    total += matrix.at(a, b);
                }
            }
        }
    }
    return total;
}

Profile::Profile(const Msa& msa, const align::ScoreMatrix& matrix)
    : cols_(msa.columns()),
      symbols_(matrix.alphabet().size()),
      matrix_(&matrix) {
    msa.validate();
    SWH_REQUIRE(msa.size() > 0, "profile of an empty MSA");
    freq_.assign(cols_ * symbols_, 0.0);
    const double inv = 1.0 / static_cast<double>(msa.size());
    for (const auto& row : msa.rows) {
        for (std::size_t col = 0; col < cols_; ++col) {
            const Code c = row[col];
            if (c == kGapCode) continue;
            SWH_REQUIRE(c < symbols_, "residue outside matrix alphabet");
            freq_[col * symbols_ + c] += inv;
        }
    }
}

double Profile::column_score(std::size_t i, const Profile& other,
                             std::size_t j) const {
    SWH_REQUIRE(matrix_ == other.matrix_ && symbols_ == other.symbols_,
                "profiles built with different matrices");
    SWH_REQUIRE(i < cols_ && j < other.cols_, "column out of range");
    const double* fa = freq_.data() + i * symbols_;
    const double* fb = other.freq_.data() + j * symbols_;
    double score = 0.0;
    for (std::size_t a = 0; a < symbols_; ++a) {
        if (fa[a] == 0.0) continue;
        double inner = 0.0;
        for (std::size_t b = 0; b < symbols_; ++b) {
            if (fb[b] == 0.0) continue;
            inner += fb[b] * matrix_->at(static_cast<Code>(a),
                                         static_cast<Code>(b));
        }
        score += fa[a] * inner;
    }
    return score;
}

align::Alignment align_profiles(const Profile& a, const Profile& b,
                                align::GapPenalty gap) {
    SWH_REQUIRE(gap.open >= 0 && gap.extend >= 0,
                "gap penalties must be non-negative");
    const std::size_t m = a.columns(), n = b.columns();
    constexpr double kNegInf = -1e18;
    const double open_ext = gap.open + gap.extend;

    // Quadratic-space affine NW over profile columns with double scores.
    const std::size_t cols = n + 1;
    std::vector<double> h((m + 1) * cols, kNegInf);
    std::vector<double> e((m + 1) * cols, kNegInf);
    std::vector<double> f((m + 1) * cols, kNegInf);
    std::vector<std::uint8_t> dir((m + 1) * cols, 0);
    // dir bits as in align/traceback.cpp: 0..1 H source, 2 E-ext, 3 F-ext
    h[0] = 0.0;
    for (std::size_t j = 1; j <= n; ++j) {
        e[j] = -(open_ext + gap.extend * static_cast<double>(j - 1));
        h[j] = e[j];
        dir[j] = 2 | (j > 1 ? (1u << 2) : 0);
    }
    for (std::size_t i = 1; i <= m; ++i) {
        f[i * cols] = -(open_ext + gap.extend * static_cast<double>(i - 1));
        h[i * cols] = f[i * cols];
        dir[i * cols] = 3 | (i > 1 ? (1u << 3) : 0);
    }
    for (std::size_t i = 1; i <= m; ++i) {
        for (std::size_t j = 1; j <= n; ++j) {
            std::uint8_t d = 0;
            const double e_ext = e[i * cols + j - 1] - gap.extend;
            const double e_open = h[i * cols + j - 1] - open_ext;
            if (e_ext >= e_open) d |= (1u << 2);
            e[i * cols + j] = std::max(e_ext, e_open);

            const double f_ext = f[(i - 1) * cols + j] - gap.extend;
            const double f_open = h[(i - 1) * cols + j] - open_ext;
            if (f_ext >= f_open) d |= (1u << 3);
            f[i * cols + j] = std::max(f_ext, f_open);

            const double diag = h[(i - 1) * cols + j - 1] +
                                a.column_score(i - 1, b, j - 1);
            double best = diag;
            std::uint8_t src = 1;
            if (e[i * cols + j] > best) {
                best = e[i * cols + j];
                src = 2;
            }
            if (f[i * cols + j] > best) {
                best = f[i * cols + j];
                src = 3;
            }
            h[i * cols + j] = best;
            dir[i * cols + j] = d | src;
        }
    }

    align::Alignment out;
    out.score = static_cast<Score>(std::llround(h[m * cols + n]));
    out.s_end = m;
    out.t_end = n;
    std::size_t i = m, j = n;
    enum class St { H, E, F } st = St::H;
    while (i > 0 || j > 0) {
        const std::uint8_t d = dir[i * cols + j];
        if (st == St::H) {
            const std::uint8_t src = d & 0x3;
            SWH_REQUIRE(src != 0, "profile traceback hit a dead cell");
            if (src == 1) {
                out.ops.push_back(AlignOp::Match);
                --i;
                --j;
            } else if (src == 2) {
                st = St::E;
            } else {
                st = St::F;
            }
        } else if (st == St::E) {
            out.ops.push_back(AlignOp::Insert);
            const bool ext = (d & (1u << 2)) != 0;
            --j;
            if (!ext) st = St::H;
        } else {
            out.ops.push_back(AlignOp::Delete);
            const bool ext = (d & (1u << 3)) != 0;
            --i;
            if (!ext) st = St::H;
        }
    }
    std::reverse(out.ops.begin(), out.ops.end());
    return out;
}

Msa merge_msas(const Msa& a, const Msa& b, const align::Alignment& ops) {
    a.validate();
    b.validate();
    Msa out;
    out.ids = a.ids;
    out.ids.insert(out.ids.end(), b.ids.begin(), b.ids.end());
    out.rows.assign(a.size() + b.size(), {});
    std::size_t ai = 0, bj = 0;
    for (const AlignOp op : ops.ops) {
        for (std::size_t r = 0; r < a.size(); ++r) {
            out.rows[r].push_back(op == AlignOp::Insert ? kGapCode
                                                        : a.rows[r][ai]);
        }
        for (std::size_t r = 0; r < b.size(); ++r) {
            out.rows[a.size() + r].push_back(
                op == AlignOp::Delete ? kGapCode : b.rows[r][bj]);
        }
        if (op != AlignOp::Insert) ++ai;
        if (op != AlignOp::Delete) ++bj;
    }
    SWH_REQUIRE(ai == a.columns() && bj == b.columns(),
                "alignment ops do not cover both MSAs");
    out.validate();
    return out;
}

}  // namespace swh::msa

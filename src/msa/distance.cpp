#include "msa/distance.hpp"

#include <algorithm>

#include "align/striped.hpp"
#include "db/database.hpp"
#include "engines/cpu_engine.hpp"
#include "runtime/hybrid_runtime.hpp"
#include "util/error.hpp"

namespace swh::msa {

DistanceMatrix::DistanceMatrix(std::size_t n) : n_(n) {
    SWH_REQUIRE(n >= 1, "distance matrix needs at least one element");
    data_.assign(n * (n - 1) / 2, 0.0);
}

namespace {

std::size_t tri_index(std::size_t n, std::size_t i, std::size_t j) {
    SWH_REQUIRE(i != j, "no self-distance slot");
    if (i > j) std::swap(i, j);
    // Offset of row i's strict upper triangle, then column offset.
    return i * n - i * (i + 1) / 2 + (j - i - 1);
}

double normalised_distance(align::Score pair_score, align::Score self_a,
                           align::Score self_b) {
    const double denom = static_cast<double>(std::min(self_a, self_b));
    if (denom <= 0.0) return 1.0;
    const double sim = static_cast<double>(pair_score) / denom;
    return std::clamp(1.0 - sim, 0.0, 1.0);
}

}  // namespace

double DistanceMatrix::at(std::size_t i, std::size_t j) const {
    SWH_REQUIRE(i < n_ && j < n_, "index out of range");
    if (i == j) return 0.0;
    return data_[tri_index(n_, i, j)];
}

void DistanceMatrix::set(std::size_t i, std::size_t j, double d) {
    SWH_REQUIRE(i < n_ && j < n_, "index out of range");
    SWH_REQUIRE(d >= 0.0, "distances are non-negative");
    data_[tri_index(n_, i, j)] = d;
}

DistanceMatrix compute_distances(const std::vector<align::Sequence>& seqs,
                                 const align::ScoreMatrix& matrix,
                                 const DistanceOptions& options) {
    SWH_REQUIRE(!seqs.empty(), "no sequences");
    const std::size_t n = seqs.size();
    DistanceMatrix out(n);

    std::vector<align::Score> self(n);
    for (std::size_t i = 0; i < n; ++i) {
        align::Score s = 0;
        for (const align::Code c : seqs[i].residues) s += matrix.at(c, c);
        self[i] = s;
    }
    for (std::size_t i = 0; i < n; ++i) {
        const align::StripedAligner aligner(seqs[i].residues, matrix,
                                            options.gap, options.isa);
        for (std::size_t j = i + 1; j < n; ++j) {
            const align::Score s = aligner.score(seqs[j].residues);
            out.set(i, j, normalised_distance(s, self[i], self[j]));
        }
    }
    return out;
}

DistanceMatrix compute_distances_distributed(
    const std::vector<align::Sequence>& seqs,
    const align::ScoreMatrix& matrix, const DistanceOptions& options,
    std::size_t slave_sses) {
    SWH_REQUIRE(!seqs.empty(), "no sequences");
    SWH_REQUIRE(slave_sses >= 1, "need at least one slave");
    const std::size_t n = seqs.size();

    // Reuse the paper's architecture unchanged: the sequence set is both
    // the query file and the database; task i = sequence i vs everything.
    // top_k = n keeps every score (we need the full matrix, including
    // the self-score for normalisation).
    db::Database database("msa_pairs", seqs);
    engines::EngineConfig config;
    config.matrix = &matrix;
    config.gap = options.gap;
    config.top_k = n;
    config.isa = options.isa;

    runtime::RuntimeOptions rt_options;
    rt_options.top_k = n;
    std::vector<runtime::SlaveSpec> slaves;
    for (std::size_t i = 0; i < slave_sses; ++i) {
        slaves.push_back(runtime::SlaveSpec{
            "sse" + std::to_string(i),
            std::make_unique<engines::CpuEngine>(config)});
    }
    runtime::HybridRuntime rt(database, seqs, rt_options);
    const runtime::RunReport report =
        rt.run(std::move(slaves), core::make_pss());

    // Scores include i-vs-i (the self score) because the "database"
    // contains the query itself.
    std::vector<std::vector<align::Score>> score(
        n, std::vector<align::Score>(n, 0));
    for (std::size_t q = 0; q < n; ++q) {
        SWH_REQUIRE(report.hits[q].size() == n,
                    "distance run must score every pair");
        for (const core::Hit& h : report.hits[q]) {
            score[q][h.db_index] = h.score;
        }
    }
    DistanceMatrix out(n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i + 1; j < n; ++j) {
            out.set(i, j, normalised_distance(score[i][j], score[i][i],
                                              score[j][j]));
        }
    }
    return out;
}

}  // namespace swh::msa

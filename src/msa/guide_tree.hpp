#pragma once

#include <string>
#include <vector>

#include "msa/distance.hpp"

namespace swh::msa {

/// Binary guide tree for progressive alignment. Leaves 0..n-1 map to the
/// input sequences; internal nodes are appended in merge order, so the
/// last node is the root.
struct GuideTree {
    struct Node {
        int left = -1;    ///< child node index, -1 for leaves
        int right = -1;
        double height = 0.0;  ///< UPGMA merge height (half the distance)
        std::size_t leaf = 0;  ///< sequence index (leaves only)
    };

    std::vector<Node> nodes;

    std::size_t leaf_count() const { return (nodes.size() + 1) / 2; }
    int root() const { return static_cast<int>(nodes.size()) - 1; }
    bool is_leaf(int i) const { return nodes[static_cast<std::size_t>(i)].left < 0; }

    /// Newick rendering (ids by leaf index if `ids` is empty).
    std::string newick(const std::vector<std::string>& ids = {}) const;
};

/// UPGMA (average-linkage hierarchical clustering) over the distance
/// matrix — the classic guide-tree construction of progressive aligners.
GuideTree upgma(const DistanceMatrix& distances);

}  // namespace swh::msa

#pragma once

#include <vector>

#include "msa/guide_tree.hpp"
#include "msa/msa.hpp"

namespace swh::msa {

struct ProgressiveOptions {
    align::GapPenalty gap{10, 2};
    simd::IsaLevel isa = simd::best_supported();
    /// Distribute the distance-matrix stage over the hybrid runtime
    /// (the paper's future-work demonstration) instead of computing it
    /// serially.
    bool distributed_distances = false;
    std::size_t slave_sses = 2;
};

/// Progressive multiple sequence alignment: pairwise SW distances →
/// UPGMA guide tree → profile-profile merges in tree order. This is the
/// paper's "adapt our architecture to run other Bioinformatics
/// applications, such as Multiple Sequence Alignment" future-work item:
/// the distance stage reuses the task-distribution architecture
/// unchanged.
Msa progressive_align(const std::vector<align::Sequence>& seqs,
                      const align::ScoreMatrix& matrix,
                      const ProgressiveOptions& options = {});

/// The same, with a precomputed guide tree (exposed for testing and for
/// callers that want to reuse distances).
Msa progressive_align_with_tree(const std::vector<align::Sequence>& seqs,
                                const GuideTree& tree,
                                const align::ScoreMatrix& matrix,
                                align::GapPenalty gap);

}  // namespace swh::msa

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "align/alignment.hpp"
#include "align/score_matrix.hpp"
#include "align/sequence.hpp"

namespace swh::msa {

/// Gap marker inside MSA rows (never a valid alphabet code).
constexpr align::Code kGapCode = 0xFF;

/// A multiple sequence alignment: equal-length gapped rows.
struct Msa {
    std::vector<std::string> ids;
    std::vector<std::vector<align::Code>> rows;

    std::size_t size() const { return rows.size(); }
    std::size_t columns() const { return rows.empty() ? 0 : rows[0].size(); }

    /// Starts a single-sequence alignment.
    static Msa from_sequence(const align::Sequence& seq);

    /// Row as a printable string ('-' for gaps).
    std::string row_string(std::size_t r, const align::Alphabet& a) const;

    /// Ungapped residues of one row (must equal the input sequence).
    std::vector<align::Code> ungapped(std::size_t r) const;

    /// Checks the invariants (equal lengths, ids match rows).
    void validate() const;
};

/// Sum-of-pairs score: substitution score for every residue pair in a
/// column, minus `gap_penalty` for every residue-gap pair (gap-gap pairs
/// are free). The standard MSA quality measure.
align::Score sum_of_pairs(const Msa& msa, const align::ScoreMatrix& matrix,
                          align::Score gap_penalty);

/// Column-frequency profile of an MSA, used for profile-profile
/// alignment. freq(col, code) is the fraction of rows with that residue;
/// gap fraction is the remainder.
class Profile {
public:
    Profile(const Msa& msa, const align::ScoreMatrix& matrix);

    std::size_t columns() const { return cols_; }

    /// Expected substitution score of aligning column i of this profile
    /// against column j of `other` (gap slots contribute 0).
    double column_score(std::size_t i, const Profile& other,
                        std::size_t j) const;

private:
    std::size_t cols_;
    std::size_t symbols_;
    const align::ScoreMatrix* matrix_;
    std::vector<double> freq_;  ///< [col * symbols + code]
};

/// Global profile-profile alignment with affine gaps (the progressive-
/// alignment inner step). Returns ops over MSA columns.
align::Alignment align_profiles(const Profile& a, const Profile& b,
                                align::GapPenalty gap);

/// Merges two MSAs given the column alignment produced by
/// align_profiles: Delete = column of `a` against new gaps in `b`'s
/// rows, Insert = vice versa.
Msa merge_msas(const Msa& a, const Msa& b, const align::Alignment& ops);

}  // namespace swh::msa

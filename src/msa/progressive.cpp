#include "msa/progressive.hpp"

#include "util/error.hpp"

namespace swh::msa {

Msa progressive_align_with_tree(const std::vector<align::Sequence>& seqs,
                                const GuideTree& tree,
                                const align::ScoreMatrix& matrix,
                                align::GapPenalty gap) {
    SWH_REQUIRE(tree.leaf_count() == seqs.size(),
                "tree does not match the sequence set");
    const auto build = [&](auto&& self, int node_idx) -> Msa {
        const GuideTree::Node& node =
            tree.nodes[static_cast<std::size_t>(node_idx)];
        if (node.left < 0) {
            return Msa::from_sequence(seqs[node.leaf]);
        }
        const Msa left = self(self, node.left);
        const Msa right = self(self, node.right);
        const Profile pa(left, matrix);
        const Profile pb(right, matrix);
        const align::Alignment ops = align_profiles(pa, pb, gap);
        return merge_msas(left, right, ops);
    };
    Msa out = build(build, tree.root());
    out.validate();
    return out;
}

Msa progressive_align(const std::vector<align::Sequence>& seqs,
                      const align::ScoreMatrix& matrix,
                      const ProgressiveOptions& options) {
    SWH_REQUIRE(!seqs.empty(), "no sequences to align");
    if (seqs.size() == 1) return Msa::from_sequence(seqs[0]);

    DistanceOptions d_opts;
    d_opts.gap = options.gap;
    d_opts.isa = options.isa;
    const DistanceMatrix distances =
        options.distributed_distances
            ? compute_distances_distributed(seqs, matrix, d_opts,
                                            options.slave_sses)
            : compute_distances(seqs, matrix, d_opts);
    const GuideTree tree = upgma(distances);
    return progressive_align_with_tree(seqs, tree, matrix, options.gap);
}

}  // namespace swh::msa

#include "msa/guide_tree.hpp"

#include <limits>
#include <sstream>

#include "util/error.hpp"

namespace swh::msa {

std::string GuideTree::newick(const std::vector<std::string>& ids) const {
    SWH_REQUIRE(!nodes.empty(), "empty tree");
    std::ostringstream os;
    const auto emit = [&](auto&& self, int i) -> void {
        const Node& node = nodes[static_cast<std::size_t>(i)];
        if (node.left < 0) {
            if (ids.empty()) {
                os << "seq" << node.leaf;
            } else {
                os << ids.at(node.leaf);
            }
            return;
        }
        os << '(';
        self(self, node.left);
        os << ',';
        self(self, node.right);
        os << ')';
    };
    emit(emit, root());
    os << ';';
    return os.str();
}

GuideTree upgma(const DistanceMatrix& distances) {
    const std::size_t n = distances.size();
    GuideTree tree;
    tree.nodes.reserve(2 * n - 1);

    // Active clusters: node index + member count; dist holds current
    // cluster-to-cluster average distances (dense, simple O(n^3) — guide
    // trees are built over at most a few thousand sequences).
    struct Cluster {
        int node;
        std::size_t count;
        bool alive = true;
    };
    std::vector<Cluster> clusters;
    std::vector<std::vector<double>> dist(n, std::vector<double>(n, 0.0));
    for (std::size_t i = 0; i < n; ++i) {
        tree.nodes.push_back(GuideTree::Node{-1, -1, 0.0, i});
        clusters.push_back(Cluster{static_cast<int>(i), 1});
        for (std::size_t j = 0; j < n; ++j) dist[i][j] = distances.at(i, j);
    }

    std::size_t alive = n;
    while (alive > 1) {
        // Find the closest pair of live clusters.
        double best = std::numeric_limits<double>::infinity();
        std::size_t bi = 0, bj = 0;
        for (std::size_t i = 0; i < clusters.size(); ++i) {
            if (!clusters[i].alive) continue;
            for (std::size_t j = i + 1; j < clusters.size(); ++j) {
                if (!clusters[j].alive) continue;
                if (dist[i][j] < best) {
                    best = dist[i][j];
                    bi = i;
                    bj = j;
                }
            }
        }
        // Merge bj into a new cluster row appended at index "new slot":
        // reuse bi's row for the merged cluster to keep the matrix
        // square without reallocation.
        const std::size_t ci = clusters[bi].count;
        const std::size_t cj = clusters[bj].count;
        tree.nodes.push_back(GuideTree::Node{clusters[bi].node,
                                             clusters[bj].node, best / 2.0,
                                             0});
        for (std::size_t k = 0; k < clusters.size(); ++k) {
            if (!clusters[k].alive || k == bi || k == bj) continue;
            // Average linkage: weighted by member counts.
            const double d =
                (dist[bi][k] * static_cast<double>(ci) +
                 dist[bj][k] * static_cast<double>(cj)) /
                static_cast<double>(ci + cj);
            dist[bi][k] = dist[k][bi] = d;
        }
        clusters[bi].node = static_cast<int>(tree.nodes.size()) - 1;
        clusters[bi].count = ci + cj;
        clusters[bj].alive = false;
        --alive;
    }
    return tree;
}

}  // namespace swh::msa

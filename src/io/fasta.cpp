#include "io/fasta.hpp"

#include <fstream>
#include <istream>
#include <ostream>

#include "util/error.hpp"
#include "util/str.hpp"

namespace swh::io {

using align::Alphabet;
using align::Sequence;

std::vector<Sequence> read_fasta(std::istream& in, const Alphabet& alphabet) {
    std::vector<Sequence> out;
    Sequence* current = nullptr;
    std::string line;
    std::size_t line_no = 0;
    while (std::getline(in, line)) {
        ++line_no;
        const std::string_view t = trim(line);
        if (t.empty()) continue;
        if (t.front() == '>') {
            const std::string_view header = trim(t.substr(1));
            SWH_REQUIRE(!header.empty(), "FASTA header with no id");
            Sequence seq;
            const std::size_t sp = header.find_first_of(" \t");
            if (sp == std::string_view::npos) {
                seq.id = std::string(header);
            } else {
                seq.id = std::string(header.substr(0, sp));
                seq.description = std::string(trim(header.substr(sp + 1)));
            }
            out.push_back(std::move(seq));
            current = &out.back();
        } else {
            if (current == nullptr) {
                throw ParseError("FASTA line " + std::to_string(line_no) +
                                 ": sequence data before any header");
            }
            for (const char c : t) {
                current->residues.push_back(alphabet.encode(c));
            }
        }
    }
    return out;
}

std::vector<Sequence> read_fasta_file(const std::string& path,
                                      const Alphabet& alphabet) {
    std::ifstream in(path);
    if (!in) throw IoError("cannot open FASTA file: " + path);
    return read_fasta(in, alphabet);
}

void write_fasta(std::ostream& out, const std::vector<Sequence>& seqs,
                 const Alphabet& alphabet, std::size_t width) {
    SWH_REQUIRE(width > 0, "fold width must be positive");
    for (const Sequence& seq : seqs) {
        out << '>' << seq.id;
        if (!seq.description.empty()) out << ' ' << seq.description;
        out << '\n';
        const std::string letters = alphabet.decode(seq.residues);
        for (std::size_t off = 0; off < letters.size(); off += width) {
            out << letters.substr(off, width) << '\n';
        }
        if (letters.empty()) out << '\n';
    }
}

void write_fasta_file(const std::string& path,
                      const std::vector<Sequence>& seqs,
                      const Alphabet& alphabet, std::size_t width) {
    std::ofstream out(path);
    if (!out) throw IoError("cannot open file for writing: " + path);
    write_fasta(out, seqs, alphabet, width);
    if (!out) throw IoError("error while writing: " + path);
}

}  // namespace swh::io

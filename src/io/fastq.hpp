#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "align/sequence.hpp"

namespace swh::io {

/// A sequencing read: a sequence plus per-residue Phred quality scores.
struct FastqRecord {
    align::Sequence seq;
    std::vector<std::uint8_t> quality;  ///< Phred scores (0..93)
};

/// Reads four-line FASTQ records ('@id', bases, '+', qualities with
/// Phred+33 encoding). Multi-line sequences are not supported (they are
/// extinct in practice); a record whose quality length mismatches its
/// sequence throws ParseError.
std::vector<FastqRecord> read_fastq(std::istream& in,
                                    const align::Alphabet& alphabet);

std::vector<FastqRecord> read_fastq_file(const std::string& path,
                                         const align::Alphabet& alphabet);

void write_fastq(std::ostream& out, const std::vector<FastqRecord>& records,
                 const align::Alphabet& alphabet);

void write_fastq_file(const std::string& path,
                      const std::vector<FastqRecord>& records,
                      const align::Alphabet& alphabet);

}  // namespace swh::io

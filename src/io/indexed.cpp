#include "io/indexed.hpp"

#include <algorithm>
#include <cctype>
#include <cstring>
#include <fstream>
#include <sstream>

#include "io/fasta.hpp"
#include "util/error.hpp"

namespace swh::io {

namespace {

constexpr char kMagic[8] = {'S', 'W', 'H', 'I', 'D', 'X', '1', '\n'};

void write_u64(std::ostream& out, std::uint64_t v) {
    unsigned char buf[8];
    for (int i = 0; i < 8; ++i) buf[i] = static_cast<unsigned char>(v >> (8 * i));
    out.write(reinterpret_cast<const char*>(buf), 8);
}

std::uint64_t read_u64(std::istream& in) {
    unsigned char buf[8];
    in.read(reinterpret_cast<char*>(buf), 8);
    if (!in) throw ParseError("truncated index stream");
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= std::uint64_t{buf[i]} << (8 * i);
    return v;
}

}  // namespace

SequenceIndex build_index(std::istream& fasta) {
    SequenceIndex idx;
    std::string line;
    std::uint64_t offset = 0;
    std::uint64_t current_len = 0;
    bool in_record = false;
    auto close_record = [&] {
        if (!in_record) return;
        idx.lengths.push_back(current_len);
        idx.max_sequence_length =
            std::max(idx.max_sequence_length, current_len);
        idx.total_residues += current_len;
    };
    while (std::getline(fasta, line)) {
        // +1 for the newline getline consumed. A final line without a
        // trailing newline over-counts by one byte, but only *after* the
        // last record's offset, so seeks stay correct.
        const std::uint64_t line_bytes = line.size() + 1;
        if (!line.empty() && line.front() == '>') {
            close_record();
            idx.offsets.push_back(offset);
            ++idx.sequence_count;
            current_len = 0;
            in_record = true;
        } else if (in_record) {
            for (const char c : line) {
                if (!std::isspace(static_cast<unsigned char>(c)))
                    ++current_len;
            }
        }
        offset += line_bytes;
    }
    close_record();
    return idx;
}

SequenceIndex build_index_file(const std::string& fasta_path) {
    std::ifstream in(fasta_path, std::ios::binary);
    if (!in) throw IoError("cannot open FASTA file: " + fasta_path);
    return build_index(in);
}

void save_index(const SequenceIndex& index, std::ostream& out) {
    SWH_REQUIRE(index.offsets.size() == index.sequence_count &&
                    index.lengths.size() == index.sequence_count,
                "index vectors inconsistent with sequence_count");
    out.write(kMagic, sizeof kMagic);
    write_u64(out, index.sequence_count);
    write_u64(out, index.max_sequence_length);
    write_u64(out, index.total_residues);
    for (const std::uint64_t v : index.offsets) write_u64(out, v);
    for (const std::uint64_t v : index.lengths) write_u64(out, v);
}

void save_index_file(const SequenceIndex& index, const std::string& path) {
    std::ofstream out(path, std::ios::binary);
    if (!out) throw IoError("cannot open index for writing: " + path);
    save_index(index, out);
    if (!out) throw IoError("error writing index: " + path);
}

SequenceIndex load_index(std::istream& in) {
    char magic[sizeof kMagic];
    in.read(magic, sizeof magic);
    if (!in || std::memcmp(magic, kMagic, sizeof kMagic) != 0)
        throw ParseError("not a SWHIDX1 index stream");
    SequenceIndex idx;
    idx.sequence_count = read_u64(in);
    idx.max_sequence_length = read_u64(in);
    idx.total_residues = read_u64(in);
    // The header count is untrusted: never pre-size containers from it
    // (a corrupt count like 2^61 would demand a multi-exabyte
    // allocation before the truncation was ever noticed). Grow with the
    // bytes actually present; a short stream throws ParseError inside
    // read_u64 once the data runs out.
    constexpr std::uint64_t kReserveCap = std::uint64_t{1} << 20;
    idx.offsets.reserve(
        static_cast<std::size_t>(std::min(idx.sequence_count, kReserveCap)));
    idx.lengths.reserve(
        static_cast<std::size_t>(std::min(idx.sequence_count, kReserveCap)));
    for (std::uint64_t i = 0; i < idx.sequence_count; ++i)
        idx.offsets.push_back(read_u64(in));
    for (std::uint64_t i = 0; i < idx.sequence_count; ++i)
        idx.lengths.push_back(read_u64(in));
    // Cross-field validation: a loaded index must obey the invariants
    // build_index produces, or seeks computed from it are garbage.
    std::uint64_t total = 0;
    std::uint64_t longest = 0;
    for (const std::uint64_t len : idx.lengths) {
        total += len;
        longest = std::max(longest, len);
    }
    if (total != idx.total_residues || longest != idx.max_sequence_length)
        throw ParseError("index summary fields disagree with its lengths");
    for (std::size_t i = 1; i < idx.offsets.size(); ++i) {
        if (idx.offsets[i] <= idx.offsets[i - 1])
            throw ParseError("index offsets must be strictly increasing");
    }
    return idx;
}

SequenceIndex load_index_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw IoError("cannot open index file: " + path);
    return load_index(in);
}

std::string index_path_for(const std::string& fasta_path) {
    return fasta_path + ".swhidx";
}

IndexedFastaReader::IndexedFastaReader(std::string fasta_path,
                                       const align::Alphabet& alphabet)
    : path_(std::move(fasta_path)), alphabet_(&alphabet) {
    const std::string idx_path = index_path_for(path_);
    bool loaded = false;
    if (std::ifstream probe(idx_path, std::ios::binary); probe) {
        try {
            index_ = load_index(probe);
            loaded = true;
        } catch (const ParseError&) {
            // Corrupt/stale sidecar: rebuild below.
        }
    }
    if (loaded && !index_.offsets.empty()) {
        // Staleness probe: every record offset must point inside the
        // current FASTA file. Catches the FASTA shrinking or being
        // replaced after the sidecar was written.
        std::ifstream fasta(path_, std::ios::binary | std::ios::ate);
        if (!fasta) throw IoError("cannot open FASTA file: " + path_);
        const auto size = fasta.tellg();
        if (size < 0 ||
            index_.offsets.back() >= static_cast<std::uint64_t>(size)) {
            loaded = false;  // rebuild from the flat file below
        }
    }
    if (!loaded) {
        index_ = build_index_file(path_);
        try {
            save_index_file(index_, idx_path);
        } catch (const IoError&) {
            // Read-only location: index stays in memory only.
        }
    }
}

align::Sequence IndexedFastaReader::get(std::size_t i) const {
    SWH_REQUIRE(i < index_.sequence_count, "sequence index out of range");
    std::ifstream in(path_, std::ios::binary);
    if (!in) throw IoError("cannot open FASTA file: " + path_);
    in.seekg(static_cast<std::streamoff>(index_.offsets[i]));
    // Read from the record's header up to (not including) the next one.
    std::ostringstream record;
    std::string line;
    bool first = true;
    while (std::getline(in, line)) {
        if (!first && !line.empty() && line.front() == '>') break;
        record << line << '\n';
        first = false;
    }
    std::istringstream record_in(record.str());
    std::vector<align::Sequence> seqs = read_fasta(record_in, *alphabet_);
    if (seqs.size() != 1)
        throw ParseError("index pointed at a malformed record");
    return std::move(seqs.front());
}

std::vector<align::Sequence> IndexedFastaReader::slice(
    std::size_t begin, std::size_t count) const {
    SWH_REQUIRE(begin + count <= index_.sequence_count,
                "slice out of range");
    std::vector<align::Sequence> out;
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i) out.push_back(get(begin + i));
    return out;
}

}  // namespace swh::io

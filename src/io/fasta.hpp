#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "align/sequence.hpp"

namespace swh::io {

/// Reads every record of a FASTA stream. Header lines are '>' followed by
/// an id token and an optional description; sequence lines are folded.
/// Characters outside the alphabet map to its wildcard (as tools like
/// BLAST do); blank lines are ignored. Throws ParseError on a record with
/// no header or an empty stream that is not empty of content.
std::vector<align::Sequence> read_fasta(std::istream& in,
                                        const align::Alphabet& alphabet);

std::vector<align::Sequence> read_fasta_file(const std::string& path,
                                             const align::Alphabet& alphabet);

/// Writes records with sequence lines folded at `width` characters.
void write_fasta(std::ostream& out,
                 const std::vector<align::Sequence>& seqs,
                 const align::Alphabet& alphabet, std::size_t width = 70);

void write_fasta_file(const std::string& path,
                      const std::vector<align::Sequence>& seqs,
                      const align::Alphabet& alphabet,
                      std::size_t width = 70);

}  // namespace swh::io

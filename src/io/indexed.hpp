#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "align/sequence.hpp"

namespace swh::io {

/// The paper's indexed sequence-file format (SS IV-B): a sidecar index for
/// a flat FASTA file recording the total number of sequences, the length
/// of the longest one, and the byte offset of each record's '>' header.
/// With it, any query subset can be retrieved without scanning the flat
/// file from the start.
struct SequenceIndex {
    std::uint64_t sequence_count = 0;
    std::uint64_t max_sequence_length = 0;
    std::uint64_t total_residues = 0;
    std::vector<std::uint64_t> offsets;       ///< byte offset of each '>'
    std::vector<std::uint64_t> lengths;       ///< residues per sequence

    bool empty() const { return sequence_count == 0; }
};

/// Scans a FASTA stream once and builds the index. Residue counts ignore
/// whitespace; every line starting with '>' begins a new record.
SequenceIndex build_index(std::istream& fasta);

SequenceIndex build_index_file(const std::string& fasta_path);

/// Binary serialisation (little-endian, magic "SWHIDX1\n").
void save_index(const SequenceIndex& index, std::ostream& out);
void save_index_file(const SequenceIndex& index, const std::string& path);
SequenceIndex load_index(std::istream& in);
SequenceIndex load_index_file(const std::string& path);

/// Conventional sidecar path: "<fasta>.swhidx".
std::string index_path_for(const std::string& fasta_path);

/// Random-access reader over a FASTA file + its index. get(i) seeks
/// directly to record i — the constant-time retrieval the paper's master
/// needs when handing query subsets to slaves.
class IndexedFastaReader {
public:
    /// Loads (or builds and saves, if missing/stale) the sidecar index.
    IndexedFastaReader(std::string fasta_path,
                       const align::Alphabet& alphabet);

    std::size_t size() const {
        return static_cast<std::size_t>(index_.sequence_count);
    }

    const SequenceIndex& index() const { return index_; }

    /// Reads record i (0-based). Throws on out-of-range.
    align::Sequence get(std::size_t i) const;

    /// Reads records [begin, begin+count).
    std::vector<align::Sequence> slice(std::size_t begin,
                                       std::size_t count) const;

private:
    std::string path_;
    const align::Alphabet* alphabet_;
    SequenceIndex index_;
};

}  // namespace swh::io

#include "io/fastq.hpp"

#include <fstream>
#include <istream>
#include <ostream>

#include "util/error.hpp"
#include "util/str.hpp"

namespace swh::io {

namespace {
constexpr int kPhredBase = 33;
constexpr int kPhredMax = 93;
}  // namespace

std::vector<FastqRecord> read_fastq(std::istream& in,
                                    const align::Alphabet& alphabet) {
    std::vector<FastqRecord> out;
    std::string header, bases, plus, quals;
    std::size_t line_no = 0;
    while (std::getline(in, header)) {
        ++line_no;
        if (trim(header).empty()) continue;
        SWH_REQUIRE(!header.empty() && header[0] == '@',
                    "FASTQ record must start with '@'");
        const bool ok = static_cast<bool>(std::getline(in, bases)) &&
                        static_cast<bool>(std::getline(in, plus)) &&
                        static_cast<bool>(std::getline(in, quals));
        if (!ok) {
            throw ParseError("truncated FASTQ record at line " +
                             std::to_string(line_no));
        }
        line_no += 3;
        SWH_REQUIRE(!plus.empty() && plus[0] == '+',
                    "FASTQ separator line must start with '+'");
        const std::string_view base_view = trim(bases);
        const std::string_view qual_view = trim(quals);
        if (base_view.size() != qual_view.size()) {
            throw ParseError("quality/sequence length mismatch in FASTQ "
                             "record ending at line " +
                             std::to_string(line_no));
        }
        FastqRecord rec;
        const std::string_view id_line = trim(header).substr(1);
        const std::size_t sp = id_line.find_first_of(" \t");
        rec.seq.id = std::string(id_line.substr(0, sp));
        if (sp != std::string_view::npos) {
            rec.seq.description = std::string(trim(id_line.substr(sp + 1)));
        }
        rec.seq.residues = alphabet.encode(base_view);
        rec.quality.reserve(qual_view.size());
        for (const char c : qual_view) {
            const int q = static_cast<unsigned char>(c) - kPhredBase;
            if (q < 0 || q > kPhredMax) {
                throw ParseError("quality character out of Phred+33 range");
            }
            rec.quality.push_back(static_cast<std::uint8_t>(q));
        }
        out.push_back(std::move(rec));
    }
    return out;
}

std::vector<FastqRecord> read_fastq_file(const std::string& path,
                                         const align::Alphabet& alphabet) {
    std::ifstream in(path);
    if (!in) throw IoError("cannot open FASTQ file: " + path);
    return read_fastq(in, alphabet);
}

void write_fastq(std::ostream& out, const std::vector<FastqRecord>& records,
                 const align::Alphabet& alphabet) {
    for (const FastqRecord& rec : records) {
        SWH_REQUIRE(rec.quality.size() == rec.seq.size(),
                    "quality/sequence length mismatch");
        out << '@' << rec.seq.id;
        if (!rec.seq.description.empty()) out << ' ' << rec.seq.description;
        out << '\n' << alphabet.decode(rec.seq.residues) << "\n+\n";
        for (const std::uint8_t q : rec.quality) {
            SWH_REQUIRE(q <= kPhredMax, "Phred score out of range");
            out << static_cast<char>(q + kPhredBase);
        }
        out << '\n';
    }
}

void write_fastq_file(const std::string& path,
                      const std::vector<FastqRecord>& records,
                      const align::Alphabet& alphabet) {
    std::ofstream out(path);
    if (!out) throw IoError("cannot open file for writing: " + path);
    write_fastq(out, records, alphabet);
    if (!out) throw IoError("error while writing: " + path);
}

}  // namespace swh::io

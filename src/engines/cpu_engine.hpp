#pragma once

#include "engines/engine.hpp"

namespace swh::engines {

/// The paper's "adapted Farrar" SSE slave (SS IV-C): scans the packed
/// database arena (db::PackedDatabase) through align::DatabaseScanner's
/// three-stage funnel — an ungapped prefilter prunes subjects provably
/// outside the running top-k (EngineConfig::prefilter), the 8-bit exact
/// kernels settle the survivors, and the deferred overflow batch is
/// rescored at 16/32 bits. `threads` > 1 splits the database across internal worker
/// threads claiming `EngineConfig::scan_chunk` subjects per atomic op
/// (a whole multicore presented as one PE); the paper's setup registers
/// each core as its own single-threaded slave.
class CpuEngine final : public ComputeEngine {
public:
    CpuEngine(EngineConfig config, unsigned threads = 1);

    std::string_view name() const override { return "cpu-striped"; }
    core::PeKind kind() const override { return core::PeKind::SseCore; }

    core::TaskResult execute(const align::Sequence& query,
                             std::uint32_t query_index, core::TaskId task,
                             const db::Database& database,
                             ExecutionObserver* observer) override;

    const EngineConfig& config() const { return config_; }
    unsigned threads() const { return threads_; }

private:
    EngineConfig config_;
    unsigned threads_;
};

}  // namespace swh::engines

#pragma once

#include <memory>
#include <string_view>

#include "align/score_matrix.hpp"
#include "align/sequence.hpp"
#include "core/results.hpp"
#include "core/types.hpp"
#include "db/database.hpp"
#include "simd/arch.hpp"

namespace swh::obs {
class TraceLane;
class MetricsRegistry;
}  // namespace swh::obs

namespace swh::engines {

/// Observer a slave passes into an engine run: receives cell-count
/// progress (for the master's periodic rate notifications) and exposes a
/// cooperative cancellation flag (checked between database sequences, so
/// a cancelled replica stops within one sequence comparison).
class ExecutionObserver {
public:
    virtual ~ExecutionObserver() = default;

    /// Called periodically with the cells processed since the last call.
    virtual void on_cells(std::uint64_t cells_delta) { (void)cells_delta; }

    /// Engines poll this between database sequences.
    virtual bool cancelled() const { return false; }

    /// Trace lane of the slave thread driving this execution, so the
    /// engine can emit kernel spans onto the same timeline row as the
    /// slave's task spans. Null (the default) = tracing off. Only the
    /// thread that called execute() may emit on it; wrapper observers
    /// (e.g. ThrottledEngine's pacing) must forward it downstream.
    virtual obs::TraceLane* trace_lane() const { return nullptr; }
};

/// Shared configuration for all compute engines.
struct EngineConfig {
    const align::ScoreMatrix* matrix = nullptr;
    align::GapPenalty gap;
    std::size_t top_k = 10;  ///< hits kept per task
    simd::IsaLevel isa = simd::IsaLevel::Scalar;
    /// Progress granularity: observer notified roughly every this many
    /// cells (engines round to whole database sequences).
    std::uint64_t progress_grain = 50'000'000;
    /// Subjects a worker claims per atomic op when scanning the packed
    /// database (align::DatabaseScanner chunked work claiming).
    std::size_t scan_chunk = 64;
    /// Allow the inter-sequence kernels (lane-interleaved cohort scan)
    /// where the matrix and query admit them; the scanner still falls
    /// back to the striped kernels per cohort. Off forces striped-only.
    bool interseq = true;
    /// Arm the ungapped prefilter stage of the scan funnel (cohort mode
    /// only): subjects whose gap-slack score bound provably falls below
    /// the running k-th best exact score skip exact alignment. The
    /// final top-k is bit-identical either way — this knob only trades
    /// the prefilter sweep's cost against the pruned exact work.
    bool prefilter = true;
    /// Optional metrics sink (engines fold in per-task counters like the
    /// 8->16->32-bit escalation counts). Non-owning; null = off.
    obs::MetricsRegistry* metrics = nullptr;
};

/// A processing element's compute backend: runs one task (query vs whole
/// database) to completion. Implementations must be safe to call from
/// the one slave thread that owns them (no cross-call state leakage);
/// distinct engine instances may run concurrently.
class ComputeEngine {
public:
    virtual ~ComputeEngine() = default;

    virtual std::string_view name() const = 0;
    virtual core::PeKind kind() const = 0;

    /// Executes the comparison and returns the merged top-k hits. If the
    /// observer reports cancellation, returns a partial result with
    /// `cells` reflecting the work actually done (the caller discards
    /// it). A null observer means "no progress reporting, never
    /// cancelled".
    virtual core::TaskResult execute(const align::Sequence& query,
                                     std::uint32_t query_index,
                                     core::TaskId task,
                                     const db::Database& database,
                                     ExecutionObserver* observer) = 0;
};

}  // namespace swh::engines

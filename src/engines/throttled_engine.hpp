#pragma once

#include <functional>
#include <memory>

#include "engines/engine.hpp"

namespace swh::engines {

/// Paces an inner engine to a target throughput, so a set of engines on
/// one machine exhibits a chosen speed *ratio* regardless of actual
/// hardware. This is how the threaded runtime reproduces the paper's
/// GPU-vs-SSE heterogeneity on a host with neither 4 GPUs nor 8 cores:
/// the computation (and its scores) is real; only the wall-clock rate is
/// capped. Pacing happens incrementally inside the run, so the progress
/// notifications the master sees also reflect the target rate.
class ThrottledEngine final : public ComputeEngine {
public:
    /// `target_gcups(db)` gives the cap for a database (letting a model
    /// like GpuDeviceModel make small databases slower); `overhead_s` is
    /// added once per task before any cells complete.
    ThrottledEngine(std::unique_ptr<ComputeEngine> inner,
                    std::function<double(const db::Database&)> target_gcups,
                    double overhead_s = 0.0,
                    std::string name = "throttled");

    /// Convenience: flat rate.
    ThrottledEngine(std::unique_ptr<ComputeEngine> inner, double gcups,
                    double overhead_s = 0.0, std::string name = "throttled");

    std::string_view name() const override { return name_; }
    core::PeKind kind() const override { return inner_->kind(); }

    core::TaskResult execute(const align::Sequence& query,
                             std::uint32_t query_index, core::TaskId task,
                             const db::Database& database,
                             ExecutionObserver* observer) override;

private:
    std::unique_ptr<ComputeEngine> inner_;
    std::function<double(const db::Database&)> target_gcups_;
    double overhead_s_;
    std::string name_;
};

}  // namespace swh::engines

#include "engines/fpga_engine.hpp"

#include <algorithm>
#include <vector>

#include "align/striped.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace swh::engines {

FpgaSimEngine::FpgaSimEngine(EngineConfig config, Limits limits)
    : config_(config), limits_(limits) {
    SWH_REQUIRE(config_.matrix != nullptr, "engine needs a score matrix");
    SWH_REQUIRE(limits_.max_query_len > limits_.segment_overlap,
                "overlap must be smaller than the query segment");
    SWH_REQUIRE(limits_.max_subject_len > 0, "subject limit must be positive");
    SWH_REQUIRE(simd::is_supported(config_.isa),
                "requested ISA not supported on this machine");
}

core::TaskResult FpgaSimEngine::execute(const align::Sequence& query,
                                        std::uint32_t query_index,
                                        core::TaskId task,
                                        const db::Database& database,
                                        ExecutionObserver* observer) {
    obs::TraceLane* lane =
        observer != nullptr ? observer->trace_lane() : nullptr;
    if (lane != nullptr) lane->span_begin("kernel:fpga-systolic", task);

    // Build one aligner per query segment. A query within the limit is a
    // single segment; a long one is chopped with overlap (paper SS III on
    // [13]: "long query sequences are segmented (with overlap)").
    std::vector<std::unique_ptr<align::StripedAligner>> segments;
    const std::size_t qlen = query.size();
    if (qlen <= limits_.max_query_len) {
        segments.push_back(std::make_unique<align::StripedAligner>(
            query.residues, *config_.matrix, config_.gap, config_.isa));
    } else {
        segmented_queries_.fetch_add(1, std::memory_order_relaxed);
        const std::size_t stride =
            limits_.max_query_len - limits_.segment_overlap;
        for (std::size_t begin = 0; begin < qlen; begin += stride) {
            const std::size_t len =
                std::min(limits_.max_query_len, qlen - begin);
            segments.push_back(std::make_unique<align::StripedAligner>(
                std::vector<align::Code>(
                    query.residues.begin() +
                        static_cast<std::ptrdiff_t>(begin),
                    query.residues.begin() +
                        static_cast<std::ptrdiff_t>(begin + len)),
                *config_.matrix, config_.gap, config_.isa));
            if (begin + len >= qlen) break;
        }
    }

    core::TaskResult result;
    result.task = task;
    result.query_index = query_index;

    std::vector<core::Hit> hits;
    std::uint64_t pending = 0;
    std::uint64_t host_delegated = 0;
    bool was_cancelled = false;
    for (std::size_t i = 0; i < database.size(); ++i) {
        if (observer != nullptr && observer->cancelled()) {
            was_cancelled = true;
            break;
        }
        const align::Sequence& subject = database[i];
        if (subject.size() > limits_.max_subject_len) {
            // Does not fit the array: host CPU runs the full comparison
            // (exact same kernel here — identical scores, different
            // provenance).
            host_delegations_.fetch_add(1, std::memory_order_relaxed);
            ++host_delegated;
        }
        align::Score best = 0;
        for (const auto& seg : segments) {
            best = std::max(best, seg->score(subject.residues));
        }
        hits.push_back(core::Hit{static_cast<std::uint32_t>(i), best});
        std::sort(hits.begin(), hits.end(),
                  [](const core::Hit& a, const core::Hit& b) {
                      if (a.score != b.score) return a.score > b.score;
                      return a.db_index < b.db_index;
                  });
        if (hits.size() > config_.top_k) hits.resize(config_.top_k);

        const std::uint64_t cells =
            static_cast<std::uint64_t>(qlen) * subject.size();
        result.cells += cells;
        pending += cells;
        if (pending >= config_.progress_grain) {
            if (observer != nullptr) observer->on_cells(pending);
            pending = 0;
        }
    }
    if (pending > 0 && observer != nullptr) observer->on_cells(pending);
    result.hits = std::move(hits);

    if (config_.metrics != nullptr) {
        if (segments.size() > 1) {
            config_.metrics->counter("engine.fpga.segmented_queries").add();
        }
        if (host_delegated > 0) {
            config_.metrics->counter("engine.fpga.host_delegations")
                .add(host_delegated);
        }
    }
    if (lane != nullptr) {
        lane->span_end("kernel:fpga-systolic", task,
                       was_cancelled ? 1.0 : 0.0);
    }
    return result;
}

}  // namespace swh::engines

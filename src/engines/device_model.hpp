#pragma once

#include <algorithm>
#include <cstdint>

namespace swh::engines {

/// Calibrated throughput model of a CUDASW++ 2.0-class GPU (GTX580 era).
///
/// Effective GCUPS follows an occupancy-saturation curve in the database
/// size: small databases cannot fill the device, so per-kernel overheads
/// dominate — this is what makes the paper's GPUs deliver roughly twice
/// the GCUPS on UniProtKB/SwissProt (~190M residues) as on the four small
/// Table II databases (~12-19M residues), and it is the single knob
/// behind Table IV's GCUPS split and Table V's 4-GPU crossover.
struct GpuDeviceModel {
    /// Big-database throughput. 45 GCUPS makes the simulated 4 GPU +
    /// 4 SSE platform finish the paper's SwissProt workload in ~112 s,
    /// the paper's headline (their GTX580s outran CUDASW++ 2.0's
    /// published Fermi numbers).
    double peak_gcups = 45.0;
    /// Database size (residues) at which the device reaches half its
    /// peak rate. 24M puts the small Table II databases (~15-25M) near
    /// half peak and SwissProt (~190M) near 90% of peak — Table IV's
    /// "double GCUPS on SwissProt" split.
    double half_saturation_residues = 24e6;
    double task_overhead_s = 0.05;  ///< per-task launch/transfer cost

    /// rate(R) = peak * R / (R + R_half).
    double effective_gcups(std::uint64_t db_residues) const {
        const double r = static_cast<double>(db_residues);
        return peak_gcups * r / (r + half_saturation_residues);
    }

    double task_seconds(std::uint64_t cells,
                        std::uint64_t db_residues) const {
        return task_overhead_s +
               static_cast<double>(cells) /
                   (effective_gcups(db_residues) * 1e9);
    }
};

/// Flat-rate model for one SSE core running the adapted Farrar kernel,
/// independent of database size (the kernel streams; no occupancy
/// effect). 2.75 GCUPS reproduces the paper's 7190 s single-core
/// SwissProt run (Table III).
struct SseCoreModel {
    double gcups = 2.75;
    double task_overhead_s = 0.002;

    double effective_gcups(std::uint64_t) const { return gcups; }

    double task_seconds(std::uint64_t cells, std::uint64_t) const {
        return task_overhead_s + static_cast<double>(cells) / (gcups * 1e9);
    }
};

/// Future-work FPGA PE (after Meng & Chaudhary): fast but with sequence-
/// length restrictions handled by the engine via segmentation.
struct FpgaDeviceModel {
    double gcups = 12.0;
    double task_overhead_s = 0.1;  ///< includes reconfiguration amortised

    double effective_gcups(std::uint64_t) const { return gcups; }

    double task_seconds(std::uint64_t cells, std::uint64_t) const {
        return task_overhead_s + static_cast<double>(cells) / (gcups * 1e9);
    }
};

}  // namespace swh::engines

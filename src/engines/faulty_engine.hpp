#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>

#include "engines/engine.hpp"
#include "util/rng.hpp"

namespace swh::engines {

/// Thrown by FaultyEngine's Crash mode. The runtime's slave loop lets
/// this one escape on purpose — the thread dies without sending
/// MsgDeregister, modelling a PE that vanishes (power loss, kill -9).
/// Every other exception type is contained and reported as
/// MsgTaskFailed.
class SimulatedCrash final : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// What a FaultyEngine does when its fault arms (ISSUE 5 fault
/// injection). Each mode exercises a distinct failure path of the
/// fault-tolerant runtime.
enum class FaultKind : std::uint8_t {
    None,   ///< pass-through (decorator disabled)
    Throw,  ///< throw std::runtime_error -> MsgTaskFailed + retry budget
    Crash,  ///< throw SimulatedCrash -> silent thread death -> liveness
    Stall,  ///< hang (cooperatively: polls cancellation) -> liveness
    Slow,   ///< stretch wall time by slow_factor -> workload adjustment
};

const char* to_string(FaultKind kind);

/// One engine's fault schedule. Deterministic: per-task arming draws
/// come from a stream seeded with `seed`, so a run replays exactly.
struct FaultPlan {
    FaultKind kind = FaultKind::None;
    /// Fire only after this many DP cells of the task were processed
    /// (rounded up to the engine's progress grain). 0 = before any work.
    std::uint64_t after_cells = 0;
    /// Per-task probability that the fault arms (1 = every task).
    double probability = 1.0;
    /// Stop injecting after this many fired faults; 0 = no limit.
    std::size_t max_faults = 0;
    /// Slow mode: wall time stretched to this multiple of compute time.
    double slow_factor = 4.0;
    /// Stall mode: cancellation poll period while hanging.
    double stall_poll_s = 0.005;
    std::uint64_t seed = 0x5EEDULL;
};

/// Decorator injecting engine-level faults into an inner ComputeEngine.
/// Faults fire *between* database sequences — the trigger observer
/// cancels the inner engine cooperatively and the exception is thrown
/// only after execute() returns — because unwinding through an engine's
/// worker pool would std::terminate the process, which is the very bug
/// class this PR removes. Single-threaded like every engine: one slave
/// thread owns it.
class FaultyEngine final : public ComputeEngine {
public:
    FaultyEngine(std::unique_ptr<ComputeEngine> inner, FaultPlan plan);

    std::string_view name() const override { return name_; }
    core::PeKind kind() const override { return inner_->kind(); }

    core::TaskResult execute(const align::Sequence& query,
                             std::uint32_t query_index, core::TaskId task,
                             const db::Database& database,
                             ExecutionObserver* observer) override;

    const FaultPlan& plan() const { return plan_; }

    /// Faults actually fired so far (read it after the run).
    std::size_t faults_fired() const { return faults_fired_; }

private:
    std::unique_ptr<ComputeEngine> inner_;
    FaultPlan plan_;
    std::string name_;
    swh::Rng arm_rng_;
    std::size_t faults_fired_ = 0;
};

}  // namespace swh::engines

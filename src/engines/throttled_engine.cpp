#include "engines/throttled_engine.hpp"

#include <chrono>
#include <thread>

#include "util/error.hpp"
#include "util/timer.hpp"

namespace swh::engines {

namespace {

/// Forwards progress to the slave's observer, sleeping first so that the
/// cumulative cell count never runs ahead of the target rate.
class PacingObserver final : public ExecutionObserver {
public:
    PacingObserver(ExecutionObserver* downstream, double cells_per_second,
                   double overhead_s)
        : downstream_(downstream),
          rate_(cells_per_second),
          overhead_s_(overhead_s) {}

    void on_cells(std::uint64_t cells_delta) override {
        cells_ += cells_delta;
        pace();
        if (downstream_ != nullptr) downstream_->on_cells(cells_delta);
    }

    bool cancelled() const override {
        return downstream_ != nullptr && downstream_->cancelled();
    }

    obs::TraceLane* trace_lane() const override {
        return downstream_ != nullptr ? downstream_->trace_lane() : nullptr;
    }

    /// Final pace so the total task duration matches the model even if
    /// the inner engine reported progress coarsely.
    void finish() { pace(); }

private:
    void pace() {
        const double target =
            overhead_s_ + static_cast<double>(cells_) / rate_;
        const double ahead = target - timer_.seconds();
        if (ahead > 0.0) {
            std::this_thread::sleep_for(std::chrono::duration<double>(ahead));
        }
    }

    ExecutionObserver* downstream_;
    double rate_;
    double overhead_s_;
    std::uint64_t cells_ = 0;
    Timer timer_;
};

}  // namespace

ThrottledEngine::ThrottledEngine(
    std::unique_ptr<ComputeEngine> inner,
    std::function<double(const db::Database&)> target_gcups,
    double overhead_s, std::string name)
    : inner_(std::move(inner)),
      target_gcups_(std::move(target_gcups)),
      overhead_s_(overhead_s),
      name_(std::move(name)) {
    SWH_REQUIRE(inner_ != nullptr, "throttled engine needs an inner engine");
    SWH_REQUIRE(target_gcups_ != nullptr, "throttle needs a rate function");
    SWH_REQUIRE(overhead_s_ >= 0.0, "overhead must be non-negative");
}

ThrottledEngine::ThrottledEngine(std::unique_ptr<ComputeEngine> inner,
                                 double gcups, double overhead_s,
                                 std::string name)
    : ThrottledEngine(
          std::move(inner),
          [gcups](const db::Database&) { return gcups; }, overhead_s,
          std::move(name)) {
    SWH_REQUIRE(gcups > 0.0, "target rate must be positive");
}

core::TaskResult ThrottledEngine::execute(const align::Sequence& query,
                                          std::uint32_t query_index,
                                          core::TaskId task,
                                          const db::Database& database,
                                          ExecutionObserver* observer) {
    const double gcups = target_gcups_(database);
    SWH_REQUIRE(gcups > 0.0, "target rate must be positive");
    PacingObserver pacing(observer, gcups * 1e9, overhead_s_);
    core::TaskResult result =
        inner_->execute(query, query_index, task, database, &pacing);
    // Account for cells the inner engine did not report through on_cells
    // (it reports at progress_grain granularity).
    pacing.finish();
    return result;
}

}  // namespace swh::engines

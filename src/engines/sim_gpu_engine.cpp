#include "engines/sim_gpu_engine.hpp"

#include "engines/throttled_engine.hpp"

namespace swh::engines {

SimGpuEngine::SimGpuEngine(EngineConfig config, GpuDeviceModel model,
                           bool pace, unsigned compute_threads)
    : model_(model) {
    // Real-score path: the CpuEngine underneath runs the packed two-pass
    // database scan (align::DatabaseScanner), so the simulated GPU's
    // scores come from the same arena-backed pipeline as the SSE slaves.
    auto compute = std::make_unique<CpuEngine>(config, compute_threads);
    if (pace) {
        impl_ = std::make_unique<ThrottledEngine>(
            std::move(compute),
            [m = model_](const db::Database& database) {
                return m.effective_gcups(database.residues());
            },
            model_.task_overhead_s, "sim-gpu-paced");
    } else {
        impl_ = std::move(compute);
    }
}

core::TaskResult SimGpuEngine::execute(const align::Sequence& query,
                                       std::uint32_t query_index,
                                       core::TaskId task,
                                       const db::Database& database,
                                       ExecutionObserver* observer) {
    return impl_->execute(query, query_index, task, database, observer);
}

}  // namespace swh::engines

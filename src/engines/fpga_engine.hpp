#pragma once

#include <atomic>
#include <cstdint>

#include "engines/engine.hpp"

namespace swh::engines {

/// Simulated FPGA accelerator PE — the paper's future-work extension,
/// with the sequence-length restrictions of the Meng & Chaudhary CPU/FPGA
/// platform the paper cites:
///
///  * database sequences longer than `max_subject_len` do not fit the
///    systolic array and are delegated to the host CPU path (same exact
///    kernel here, tracked in `host_delegations`);
///  * queries longer than `max_query_len` are segmented into overlapping
///    chunks scored independently, the hit score being the max over
///    chunks — which can *underestimate* alignments spanning a segment
///    boundary beyond the overlap (the sensitivity loss the paper
///    mentions; quantified in tests/engines/fpga_engine_test).
class FpgaSimEngine final : public ComputeEngine {
public:
    struct Limits {
        std::size_t max_query_len = 1024;
        std::size_t max_subject_len = 4096;
        std::size_t segment_overlap = 128;
    };

    FpgaSimEngine(EngineConfig config, Limits limits);

    std::string_view name() const override { return "sim-fpga"; }
    core::PeKind kind() const override { return core::PeKind::Fpga; }

    core::TaskResult execute(const align::Sequence& query,
                             std::uint32_t query_index, core::TaskId task,
                             const db::Database& database,
                             ExecutionObserver* observer) override;

    std::uint64_t host_delegations() const { return host_delegations_; }
    std::uint64_t segmented_queries() const { return segmented_queries_; }

private:
    EngineConfig config_;
    Limits limits_;
    std::atomic<std::uint64_t> host_delegations_{0};
    std::atomic<std::uint64_t> segmented_queries_{0};
};

}  // namespace swh::engines

#include "engines/faulty_engine.hpp"

#include <chrono>
#include <thread>

#include "util/error.hpp"
#include "util/timer.hpp"

namespace swh::engines {

const char* to_string(FaultKind kind) {
    switch (kind) {
        case FaultKind::None: return "none";
        case FaultKind::Throw: return "throw";
        case FaultKind::Crash: return "crash";
        case FaultKind::Stall: return "stall";
        case FaultKind::Slow: return "slow";
    }
    return "?";
}

namespace {

/// Arms the fault once `after_cells` have been processed: from then on
/// it reports cancellation, so the inner engine stops at the next
/// between-sequences poll and execute() returns with partial work —
/// the decorator fires the actual fault safely outside the engine.
class TriggerObserver final : public ExecutionObserver {
public:
    TriggerObserver(ExecutionObserver* downstream, std::uint64_t after_cells)
        : downstream_(downstream), after_(after_cells) {}

    void on_cells(std::uint64_t cells_delta) override {
        cells_ += cells_delta;
        if (cells_ >= after_) triggered_ = true;
        if (downstream_ != nullptr) downstream_->on_cells(cells_delta);
    }

    bool cancelled() const override {
        return triggered_ ||
               (downstream_ != nullptr && downstream_->cancelled());
    }

    obs::TraceLane* trace_lane() const override {
        return downstream_ != nullptr ? downstream_->trace_lane() : nullptr;
    }

    bool triggered() const { return triggered_; }

private:
    ExecutionObserver* downstream_;
    std::uint64_t after_;
    std::uint64_t cells_ = 0;
    bool triggered_ = false;
};

/// Stretches wall time to slow_factor x compute time once `after_cells`
/// have passed (same sleep-in-on_cells idiom as ThrottledEngine's
/// pacing, but relative to realised speed instead of an absolute rate).
class SlowObserver final : public ExecutionObserver {
public:
    SlowObserver(ExecutionObserver* downstream, double factor,
                 std::uint64_t after_cells)
        : downstream_(downstream), factor_(factor), after_(after_cells) {}

    void on_cells(std::uint64_t cells_delta) override {
        cells_ += cells_delta;
        if (cells_ >= after_) {
            engaged_ = true;
            const double elapsed = timer_.seconds();
            const double compute = elapsed - slept_;
            const double behind = factor_ * compute - elapsed;
            if (behind > 0.0) {
                std::this_thread::sleep_for(
                    std::chrono::duration<double>(behind));
                slept_ += behind;
            }
        }
        if (downstream_ != nullptr) downstream_->on_cells(cells_delta);
    }

    bool cancelled() const override {
        return downstream_ != nullptr && downstream_->cancelled();
    }

    obs::TraceLane* trace_lane() const override {
        return downstream_ != nullptr ? downstream_->trace_lane() : nullptr;
    }

    bool engaged() const { return engaged_; }

private:
    ExecutionObserver* downstream_;
    double factor_;
    std::uint64_t after_;
    std::uint64_t cells_ = 0;
    double slept_ = 0.0;
    bool engaged_ = false;
    Timer timer_;
};

}  // namespace

FaultyEngine::FaultyEngine(std::unique_ptr<ComputeEngine> inner,
                           FaultPlan plan)
    : inner_(std::move(inner)), plan_(plan), arm_rng_(plan.seed) {
    SWH_REQUIRE(inner_ != nullptr, "faulty engine needs an inner engine");
    SWH_REQUIRE(plan_.probability >= 0.0 && plan_.probability <= 1.0,
                "fault probability must be in [0, 1]");
    SWH_REQUIRE(plan_.slow_factor >= 1.0, "slow factor must be >= 1");
    SWH_REQUIRE(plan_.stall_poll_s > 0.0, "stall poll must be positive");
    name_ = "faulty-";
    name_ += to_string(plan_.kind);
    name_ += "(";
    name_ += inner_->name();
    name_ += ")";
}

core::TaskResult FaultyEngine::execute(const align::Sequence& query,
                                       std::uint32_t query_index,
                                       core::TaskId task,
                                       const db::Database& database,
                                       ExecutionObserver* observer) {
    const bool budget_left =
        plan_.max_faults == 0 || faults_fired_ < plan_.max_faults;
    const bool armed = plan_.kind != FaultKind::None && budget_left &&
                       arm_rng_.uniform() < plan_.probability;
    if (!armed) {
        return inner_->execute(query, query_index, task, database, observer);
    }

    switch (plan_.kind) {
        case FaultKind::None:
            break;  // unreachable: armed implies kind != None

        case FaultKind::Throw:
        case FaultKind::Crash: {
            TriggerObserver trigger(observer, plan_.after_cells);
            core::TaskResult partial;
            if (plan_.after_cells > 0) {
                partial = inner_->execute(query, query_index, task, database,
                                          &trigger);
                // The task finished before the threshold: no fault.
                if (!trigger.triggered()) return partial;
            }
            ++faults_fired_;
            std::string what = "injected ";
            what += to_string(plan_.kind);
            what += " fault (task ";
            what += std::to_string(task);
            what += ")";
            if (plan_.kind == FaultKind::Crash) throw SimulatedCrash(what);
            throw std::runtime_error(what);
        }

        case FaultKind::Stall: {
            SWH_REQUIRE(observer != nullptr,
                        "a stall fault needs a cancellable observer, or "
                        "nothing could ever unwedge it");
            TriggerObserver trigger(observer, plan_.after_cells);
            core::TaskResult partial;
            partial.task = task;
            partial.query_index = query_index;
            if (plan_.after_cells > 0) {
                partial = inner_->execute(query, query_index, task, database,
                                          &trigger);
                if (!trigger.triggered()) return partial;
            }
            ++faults_fired_;
            // Hang until cancelled from outside (master shutdown or a
            // cancel order). Cooperative on purpose: a truly wedged
            // thread could never be joined at end of run.
            while (!observer->cancelled()) {
                std::this_thread::sleep_for(
                    std::chrono::duration<double>(plan_.stall_poll_s));
            }
            return partial;  // cancelled partial; the caller discards it
        }

        case FaultKind::Slow: {
            SlowObserver slow(observer, plan_.slow_factor, plan_.after_cells);
            core::TaskResult result =
                inner_->execute(query, query_index, task, database, &slow);
            if (slow.engaged()) ++faults_fired_;
            return result;
        }
    }
    return inner_->execute(query, query_index, task, database, observer);
}

}  // namespace swh::engines

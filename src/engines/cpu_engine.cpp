#include "engines/cpu_engine.hpp"

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "align/db_scan.hpp"
#include "align/striped.hpp"
#include "db/packed.hpp"
#include "engines/topk.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace swh::engines {

CpuEngine::CpuEngine(EngineConfig config, unsigned threads)
    : config_(config), threads_(threads) {
    SWH_REQUIRE(config_.matrix != nullptr, "engine needs a score matrix");
    SWH_REQUIRE(threads_ >= 1, "engine needs at least one thread");
    SWH_REQUIRE(config_.scan_chunk >= 1, "scan chunk must be at least 1");
    SWH_REQUIRE(simd::is_supported(config_.isa),
                "requested ISA not supported on this machine");
}

core::TaskResult CpuEngine::execute(const align::Sequence& query,
                                    std::uint32_t query_index,
                                    core::TaskId task,
                                    const db::Database& database,
                                    ExecutionObserver* observer) {
    obs::TraceLane* lane =
        observer != nullptr ? observer->trace_lane() : nullptr;
    if (lane != nullptr) lane->span_begin("kernel:cpu-striped", task);

    const align::StripedAligner aligner(query.residues, *config_.matrix,
                                        config_.gap, config_.isa);
    // Packed arena: built once per database (cached inside it), scanned
    // by every task against that database. When the matrix admits the
    // inter-sequence kernels, also attach the lane-interleaved cohort
    // layout (likewise cached per width) so the scanner can dispatch
    // short/medium-cohort work to the W-subjects-at-once kernel.
    const db::PackedDatabase& packed = database.packed();
    align::InterleavedCohorts cohorts;
    if (config_.interseq && aligner.interseq() != nullptr) {
        cohorts = packed.interleaved(align::lanes_u8(config_.isa)).view();
    }
    // Threshold feed for the scanner's ungapped prefilter: the running
    // k-th best exact score across all workers, raised monotonically
    // (CAS-max) as hits accumulate. A stale (lower) read only prunes
    // less, so relaxed ordering is enough.
    std::atomic<align::Score> tau{TopK::kNoThreshold};
    align::DatabaseScanner scanner(aligner, packed.view(), config_.scan_chunk,
                                   cohorts,
                                   config_.prefilter ? &tau : nullptr);
    // Live τ exposition for the watch dashboard: resolved once here,
    // stored (one relaxed atomic) only when a worker actually raises
    // the threshold. Lags the true max by at most one racing raise —
    // fine for a last-write-wins gauge.
    obs::Gauge* const tau_gauge =
        config_.prefilter && config_.metrics != nullptr
            ? &config_.metrics->gauge("engine.cpu.filter.tau")
            : nullptr;
    const std::uint64_t qlen = query.size();

    core::TaskResult result;
    result.task = task;
    result.query_index = query_index;

    std::atomic<std::uint64_t> pending_cells{0};
    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> cells_done{0};

    std::vector<TopK> collectors(threads_, TopK(config_.top_k));

    // Workers pull chunks of subjects from the scanner's shared cursor
    // (config_.scan_chunk per atomic op) and run the funnel scan.
    auto worker = [&](unsigned wid) {
        align::ScanScratch scratch;
        std::uint64_t local_pending = 0;
        // Progress/cancellation bookkeeping shared by the emit and
        // pruned paths: pruned subjects count their cells too, so
        // result.cells stays the full qlen x db_residues product.
        auto account = [&](std::uint64_t cells) {
            cells_done.fetch_add(cells, std::memory_order_relaxed);
            local_pending += cells;

            if (wid == 0) {
                // Only the calling thread talks to the observer (its
                // on_cells need not be thread-safe); cancelled() is
                // polled from all workers and must be.
                const std::uint64_t others =
                    pending_cells.exchange(0, std::memory_order_relaxed);
                local_pending += others;
                if (local_pending >= config_.progress_grain) {
                    if (observer != nullptr) {
                        observer->on_cells(local_pending);
                    }
                    local_pending = 0;
                }
            } else if (local_pending >= config_.progress_grain) {
                pending_cells.fetch_add(local_pending,
                                        std::memory_order_relaxed);
                local_pending = 0;
            }
            if (observer != nullptr && observer->cancelled()) {
                stop.store(true, std::memory_order_relaxed);
                return false;
            }
            return true;
        };
        scanner.run_worker(
            scratch,
            [&](std::uint32_t idx, std::uint32_t len, align::Score score) {
                if (stop.load(std::memory_order_relaxed)) return false;
                collectors[wid].add(idx, score);
                if (config_.prefilter) {
                    // A worker-local k-th best is a sound global
                    // threshold: its k hits are merged at the end, so a
                    // subject provably below them is below the final
                    // k-th too.
                    const align::Score kth = collectors[wid].kth_score();
                    align::Score cur = tau.load(std::memory_order_relaxed);
                    while (kth > cur &&
                           !tau.compare_exchange_weak(
                               cur, kth, std::memory_order_relaxed)) {
                    }
                    // cur still holds the pre-CAS value: kth > cur
                    // means this worker raised τ.
                    if (tau_gauge != nullptr && kth > cur) {
                        tau_gauge->set(static_cast<double>(kth));
                    }
                }
                return account(qlen * len);
            },
            [&](std::uint32_t, std::uint32_t len) {
                if (stop.load(std::memory_order_relaxed)) return false;
                return account(qlen * len);
            });
        if (wid != 0 && local_pending > 0) {
            pending_cells.fetch_add(local_pending, std::memory_order_relaxed);
        } else if (wid == 0 && local_pending > 0) {
            if (observer != nullptr) observer->on_cells(local_pending);
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(threads_ - 1);
    for (unsigned w = 1; w < threads_; ++w) pool.emplace_back(worker, w);
    worker(0);
    for (std::thread& t : pool) t.join();

    // Flush progress produced by workers after thread 0 finished.
    const std::uint64_t tail = pending_cells.exchange(0);
    if (tail > 0 && observer != nullptr) observer->on_cells(tail);

    TopK merged(config_.top_k);
    for (TopK& c : collectors) merged.merge(std::move(c));
    result.hits = merged.take();
    result.cells = cells_done.load();

    if (config_.metrics != nullptr) {
        // The aligner is per-task, so its counters are exactly this
        // task's escalation profile.
        const align::StripedAligner::Stats st = aligner.stats();
        config_.metrics->counter("engine.cpu.runs8").add(st.runs8);
        config_.metrics->counter("engine.cpu.runs16").add(st.runs16);
        config_.metrics->counter("engine.cpu.runs32").add(st.runs32);
        const align::DatabaseScanner::DispatchStats ds =
            scanner.dispatch_stats();
        config_.metrics->counter("engine.cpu.cohorts_interseq")
            .add(ds.cohorts_interseq);
        config_.metrics->counter("engine.cpu.cohorts_striped")
            .add(ds.cohorts_striped);
        config_.metrics->counter("engine.cpu.subjects_interseq")
            .add(ds.subjects_interseq);
        config_.metrics->counter("engine.cpu.subjects_compacted")
            .add(ds.subjects_compacted);
        config_.metrics->counter("engine.cpu.subjects_striped")
            .add(ds.subjects_striped);
        // Route breakdown: why each cohort took the path it did —
        // tiled-interseq (long query), compacted (ragged membership,
        // layout- or funnel-repacked), striped-head (fill below the
        // dispatch bar). Tiled/compacted are subsets of
        // cohorts_interseq; striped_head equals cohorts_striped.
        config_.metrics->counter("scan.dispatch.cohorts_interseq")
            .add(ds.cohorts_interseq);
        config_.metrics->counter("scan.dispatch.cohorts_tiled")
            .add(ds.cohorts_tiled);
        config_.metrics->counter("scan.dispatch.cohorts_compacted")
            .add(ds.cohorts_compacted);
        config_.metrics->counter("scan.dispatch.cohorts_striped_head")
            .add(ds.cohorts_striped);
        config_.metrics->counter("scan.dispatch.repacks").add(ds.repacks);
        config_.metrics->counter("scan.dispatch.escalations16")
            .add(ds.escalations16);
        const align::DatabaseScanner::FilterStats fs = scanner.filter_stats();
        config_.metrics->counter("engine.cpu.filter.cohorts")
            .add(fs.cohorts_filtered);
        config_.metrics->counter("engine.cpu.filter.rebounds16")
            .add(fs.rebounds16);
        config_.metrics->counter("engine.cpu.filter.pruned")
            .add(fs.subjects_pruned);
        config_.metrics->counter("engine.cpu.filter.offs")
            .add(fs.filter_offs);
    }
    if (lane != nullptr) {
        lane->span_end("kernel:cpu-striped", task,
                       stop.load(std::memory_order_relaxed) ? 1.0 : 0.0);
    }
    return result;
}

}  // namespace swh::engines

#pragma once

// Bounded top-k hit collector shared by the compute engines. One
// instance per worker thread; merge the per-worker collectors at the
// end of a scan.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "align/sequence.hpp"
#include "core/results.hpp"

namespace swh::engines {

/// Bounded top-k collector; keeps at most 2k entries between trims.
/// Entries stay unsorted between trims — trim() only partitions with
/// nth_element (O(n)), and take() pays the O(k log k) sort once.
/// Capacity is reserved up front, so add() never allocates: the
/// per-subject emit path of a scan stays heap-quiet (asserted by
/// tests/align/scan_alloc_test.cpp).
class TopK {
public:
    explicit TopK(std::size_t k) : k_(k) { hits_.reserve(2 * k_ + 16); }

    void add(std::uint32_t db_index, align::Score score) {
        hits_.push_back(core::Hit{db_index, score});
        if (hits_.size() >= 2 * k_ + 16) trim();
    }

    void merge(TopK&& other) {
        hits_.insert(hits_.end(), other.hits_.begin(), other.hits_.end());
        trim();
    }

    std::vector<core::Hit> take() {
        trim();
        std::sort(hits_.begin(), hits_.end(), better);
        return std::move(hits_);
    }

private:
    static bool better(const core::Hit& a, const core::Hit& b) {
        if (a.score != b.score) return a.score > b.score;
        return a.db_index < b.db_index;
    }

    void trim() {
        if (hits_.size() <= k_) return;
        if (k_ == 0) {
            hits_.clear();
            return;
        }
        // `better` is a strict total order (index tie-break), so the
        // surviving k elements are exactly the ones a full sort keeps.
        std::nth_element(hits_.begin(),
                         hits_.begin() + static_cast<std::ptrdiff_t>(k_ - 1),
                         hits_.end(), better);
        hits_.resize(k_);
    }

    std::size_t k_;
    std::vector<core::Hit> hits_;
};

}  // namespace swh::engines

#pragma once

// Bounded top-k hit collector shared by the compute engines. One
// instance per worker thread; merge the per-worker collectors at the
// end of a scan.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "align/sequence.hpp"
#include "core/results.hpp"
#include "util/annotations.hpp"

namespace swh::engines {

/// Bounded top-k collector; keeps at most 2k entries between trims.
/// Entries stay unsorted between trims — trim() only partitions with
/// nth_element (O(n)), and take() pays the O(k log k) sort once.
/// Capacity is reserved up front, so add() never allocates: the
/// per-subject emit path of a scan stays heap-quiet (asserted by
/// tests/align/scan_alloc_test.cpp).
///
/// Alongside the hit buffer a k-entry min-heap tracks the k best
/// scores seen so far, which makes the running k-th best score — the
/// scan funnel's pruning threshold — an O(1) read (kth_score()) and
/// lets add() reject scores strictly below it without buffering them.
class TopK {
public:
    /// kth_score() value while fewer than k hits have been seen: no
    /// pruning threshold exists yet. Compares below every real score,
    /// so "tau <= kNoThreshold" callers need no special case.
    static constexpr align::Score kNoThreshold =
        std::numeric_limits<align::Score>::min();

    explicit TopK(std::size_t k) : k_(k) {
        hits_.reserve(2 * k_ + 16);
        kth_.reserve(k_);
    }

    SWH_HOT_PATH void add(std::uint32_t db_index, align::Score score) {
        if (k_ == 0) return;
        if (kth_.size() == k_) {
            const align::Score floor = kth_.front();
            // Strictly below the k-th best: cannot enter the top-k even
            // with the index tie-break, so don't buffer it. Ties at the
            // floor stay — a smaller db_index can still win.
            if (score < floor) return;
            if (score > floor) {
                std::pop_heap(kth_.begin(), kth_.end(), std::greater<>{});
                kth_.back() = score;
                std::push_heap(kth_.begin(), kth_.end(), std::greater<>{});
            }
        } else {
            // NOLINTNEXTLINE(swh-no-alloc-in-hot-path): k_ slots
            // reserved in the constructor; never exceeds that.
            kth_.push_back(score);
            std::push_heap(kth_.begin(), kth_.end(), std::greater<>{});
        }
        // NOLINTNEXTLINE(swh-no-alloc-in-hot-path): 2k+16 slots
        // reserved in the constructor; trim() keeps size below that.
        hits_.push_back(core::Hit{db_index, score});
        if (hits_.size() >= 2 * k_ + 16) trim();
    }

    /// The k-th best score seen so far: kNoThreshold until k hits
    /// exist, the max Score when k == 0 (every score is outside an
    /// empty top-k). Monotone non-decreasing over a TopK's lifetime.
    SWH_HOT_PATH align::Score kth_score() const {
        if (k_ == 0) return std::numeric_limits<align::Score>::max();
        if (kth_.size() < k_) return kNoThreshold;
        return kth_.front();
    }

    void merge(TopK&& other) {
        // Route through add() so the score heap absorbs the other
        // side's hits and the admission floor drops dead entries early.
        for (const core::Hit& h : other.hits_) add(h.db_index, h.score);
        trim();
    }

    std::vector<core::Hit> take() {
        trim();
        std::sort(hits_.begin(), hits_.end(), better);
        return std::move(hits_);
    }

private:
    static bool better(const core::Hit& a, const core::Hit& b) {
        if (a.score != b.score) return a.score > b.score;
        return a.db_index < b.db_index;
    }

    SWH_HOT_PATH void trim() {
        if (hits_.size() <= k_) return;
        if (k_ == 0) {
            hits_.clear();
            return;
        }
        // Drop everything strictly below the k-th best first — with the
        // admission floor active that is usually enough, and when the
        // survivors are exactly k the nth_element pass is skipped.
        if (kth_.size() == k_) {
            const align::Score floor = kth_.front();
            hits_.erase(std::remove_if(hits_.begin(), hits_.end(),
                                       [floor](const core::Hit& h) {
                                           return h.score < floor;
                                       }),
                        hits_.end());
            if (hits_.size() <= k_) return;
        }
        // `better` is a strict total order (index tie-break), so the
        // surviving k elements are exactly the ones a full sort keeps.
        std::nth_element(hits_.begin(),
                         hits_.begin() + static_cast<std::ptrdiff_t>(k_ - 1),
                         hits_.end(), better);
        // NOLINTNEXTLINE(swh-no-alloc-in-hot-path): shrinks only.
        hits_.resize(k_);
    }

    std::size_t k_;
    std::vector<core::Hit> hits_;
    /// Min-heap of the k best scores seen (std::greater comparator);
    /// front() is the running k-th best once full.
    std::vector<align::Score> kth_;
};

}  // namespace swh::engines

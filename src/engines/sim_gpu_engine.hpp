#pragma once

#include <memory>

#include "engines/cpu_engine.hpp"
#include "engines/device_model.hpp"
#include "engines/engine.hpp"

namespace swh::engines {

/// CUDASW++ 2.0 stand-in (hardware substitution, see DESIGN.md): computes
/// exact Smith-Waterman scores with the striped kernel — as the real tool
/// does, so results are interchangeable — while its *timing* follows the
/// GpuDeviceModel occupancy curve.
///
/// With `pace = true` the engine sleeps to the modeled rate, so wall-
/// clock experiments on this machine see a realistic GPU:SSE speed ratio.
/// With `pace = false` it runs at full host speed (functional tests,
/// score validation).
class SimGpuEngine final : public ComputeEngine {
public:
    SimGpuEngine(EngineConfig config, GpuDeviceModel model, bool pace,
                 unsigned compute_threads = 1);

    std::string_view name() const override { return "sim-gpu(cudasw-like)"; }
    core::PeKind kind() const override { return core::PeKind::Gpu; }

    core::TaskResult execute(const align::Sequence& query,
                             std::uint32_t query_index, core::TaskId task,
                             const db::Database& database,
                             ExecutionObserver* observer) override;

    const GpuDeviceModel& model() const { return model_; }

private:
    GpuDeviceModel model_;
    std::unique_ptr<ComputeEngine> impl_;  ///< CpuEngine or throttled wrap
};

}  // namespace swh::engines

#pragma once

// Shared ASCII Gantt renderer (paper Fig. 5). Both execution modes
// produce the same chart through this one function: the discrete-event
// simulator converts its sim::TaskSpan list, the threaded runtime
// converts TraceRecorder span events (obs::render_trace_gantt) — so a
// real run and its simulated counterpart are visually comparable.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace swh::obs {

/// One rendered bar: `glyph` selects the character (task id), `row` the
/// chart line. Aborted spans render as 'x'.
struct GanttSpan {
    std::size_t row = 0;
    std::uint64_t glyph = 0;
    double start = 0.0;
    double end = 0.0;
    bool aborted = false;
};

/// Renders one row per label; `time_step` is the width of one character
/// cell in `unit`s. The axis is time by default, but the renderer is
/// unit-agnostic — the live dashboard reuses it for per-PE rate bars
/// (unit "GCUPS", span = [0, rate]).
std::string render_gantt(std::span<const GanttSpan> spans,
                         std::span<const std::string> row_labels,
                         double time_step, const char* unit = "s");

}  // namespace swh::obs

#include "obs/sampler.hpp"

#include <utility>

#include "util/error.hpp"

namespace swh::obs {

PeriodicSampler::PeriodicSampler(const MetricsRegistry& registry,
                                 double period_s, Callback callback)
    : registry_(registry) {
    SWH_REQUIRE(period_s > 0.0, "sampler period must be positive");
    SWH_REQUIRE(static_cast<bool>(callback), "sampler needs a callback");
    thread_ = std::thread([this, period_s, cb = std::move(callback)] {
        loop(period_s, std::move(cb));
    });
}

PeriodicSampler::~PeriodicSampler() { stop(); }

void PeriodicSampler::stop() {
    {
        const swh::LockGuard lock(mu_);
        stopping_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable()) thread_.join();
}

void PeriodicSampler::loop(double period_s, Callback callback) {
    using Clock = std::chrono::steady_clock;
    const Clock::time_point start = Clock::now();
    const auto period =
        std::chrono::duration_cast<Clock::duration>(
            std::chrono::duration<double>(period_s));
    Clock::time_point deadline = start + period;
    for (;;) {
        {
            swh::LockGuard lock(mu_);
            while (!stopping_ && Clock::now() < deadline) {
                cv_.wait_until(mu_, deadline);
            }
            if (stopping_) return;
        }
        // Sample outside the sampler lock: snapshot() takes the
        // registry's locks and the callback may do IO.
        const double elapsed =
            std::chrono::duration<double>(Clock::now() - start).count();
        callback(registry_.snapshot(), elapsed);
        ticks_.fetch_add(1, std::memory_order_relaxed);
        deadline += period;
        // A slow callback must not cause a catch-up burst.
        const Clock::time_point now = Clock::now();
        if (deadline < now) deadline = now + period;
    }
}

}  // namespace swh::obs

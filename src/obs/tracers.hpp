#pragma once

// Adapters binding the observer interfaces of the lower layers to the
// trace recorder + metrics registry. Both tolerate a null lane and/or
// null registry, so callers wire them unconditionally and pay nothing
// when observability is off.

#include <cstddef>
#include <vector>

#include "core/sched_observer.hpp"
#include "net/channel.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace swh::obs {

/// Records every SchedulerCore decision as trace events on the master's
/// lane and folds the scheduling metrics (package size, replica count,
/// rate-estimate relative error) into the registry. Single-threaded,
/// like the scheduler it observes.
class SchedTracer final : public core::SchedObserver {
public:
    SchedTracer(TraceLane* lane, MetricsRegistry* metrics);

    void on_slave_registered(core::PeId pe, core::PeKind kind) override;
    void on_slave_deregistered(core::PeId pe, double now) override;
    void on_package_sized(core::PeId pe, std::size_t tasks, bool replica,
                          double now) override;
    void on_task_assigned(core::PeId pe, core::TaskId task,
                          double now) override;
    void on_replica_issued(core::PeId pe, core::TaskId task,
                           double now) override;
    void on_progress(core::PeId pe, double now, double cells_per_second,
                     double prior_estimate) override;
    void on_task_completed(core::PeId pe, core::TaskId task, bool accepted,
                           double now) override;
    void on_task_cancelled(core::PeId pe, core::TaskId task,
                           double now) override;
    void on_task_failed(core::PeId pe, core::TaskId task, bool abandoned,
                        double now) override;

private:
    /// sched.pe.<id>.* handles, resolved when the slave registers (the
    /// only per-PE callback outside the steady state) so the live
    /// dashboard can read current per-PE rates without a trace drain.
    struct PeHandles {
        Gauge* rate = nullptr;       ///< sched.pe.<id>.rate_cps
        Counter* accepted = nullptr; ///< sched.pe.<id>.accepted
        Counter* assigned = nullptr; ///< sched.pe.<id>.assigned
    };
    PeHandles& pe_handles(core::PeId pe);

    TraceLane* lane_;  ///< may be null (metrics only)
    MetricsRegistry* metrics_;
    std::vector<PeHandles> per_pe_;
    // Handles resolved once; all null when no registry was given.
    Counter* packages_ = nullptr;
    Counter* replicas_ = nullptr;
    Counter* accepted_ = nullptr;
    Counter* discarded_ = nullptr;
    Counter* cancelled_ = nullptr;
    Counter* failed_ = nullptr;
    Counter* abandoned_ = nullptr;
    Histogram* package_size_ = nullptr;
    Histogram* rate_error_ = nullptr;
};

/// Bridges one net::Channel's traffic into a trace lane + a shared
/// queue-depth histogram. The channel invokes it under its own mutex,
/// which serialises the (otherwise multi-producer) lane writes.
class ChannelTracer final : public net::ChannelObserver {
public:
    /// Either pointer may be null. `depth` is typically shared by every
    /// channel of one direction (Histogram::record is thread-safe).
    ChannelTracer(TraceLane* lane, Histogram* depth)
        : lane_(lane), depth_(depth) {}

    void on_send(std::size_t depth_after) override {
        if (lane_ != nullptr) {
            lane_->emit(EventKind::ChannelSend, core::kInvalidPe, kNoTask,
                        static_cast<double>(depth_after));
        }
        if (depth_ != nullptr) {
            depth_->record(static_cast<double>(depth_after));
        }
    }

    void on_recv(std::size_t depth_after) override {
        if (lane_ != nullptr) {
            lane_->emit(EventKind::ChannelRecv, core::kInvalidPe, kNoTask,
                        static_cast<double>(depth_after));
        }
    }

private:
    TraceLane* lane_;
    Histogram* depth_;
};

}  // namespace swh::obs

#pragma once

// core::SchedObserver adapters feeding the balance auditor
// (obs/balance.hpp): a fan-out so several observers can share the
// scheduler's single observer slot, an event log capturing scheduling
// decisions into a plain TraceLaneData on the callback-supplied clock
// (virtual time under the DES, the runtime's clock otherwise), and the
// PSS weight-trajectory recorder built on the `prior_estimate` hook.
//
// All three follow the SchedObserver threading rules: callbacks arrive
// on one thread (the master / the simulator's event loop) with the
// scheduler mutex held, so none of these take locks and none may
// re-enter the scheduler.

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "core/sched_observer.hpp"
#include "obs/trace.hpp"

namespace swh::obs {

/// Broadcasts every SchedObserver callback to each attached observer,
/// in attach order. Non-owning; attached observers must outlive it.
class SchedFanout final : public core::SchedObserver {
public:
    void add(core::SchedObserver* observer) {
        if (observer != nullptr) observers_.push_back(observer);
    }
    bool empty() const { return observers_.empty(); }
    std::size_t size() const { return observers_.size(); }

    void on_slave_registered(core::PeId pe, core::PeKind kind) override {
        for (auto* o : observers_) o->on_slave_registered(pe, kind);
    }
    void on_slave_deregistered(core::PeId pe, double now) override {
        for (auto* o : observers_) o->on_slave_deregistered(pe, now);
    }
    void on_package_sized(core::PeId pe, std::size_t tasks, bool replica,
                          double now) override {
        for (auto* o : observers_) {
            o->on_package_sized(pe, tasks, replica, now);
        }
    }
    void on_task_assigned(core::PeId pe, core::TaskId task,
                          double now) override {
        for (auto* o : observers_) o->on_task_assigned(pe, task, now);
    }
    void on_replica_issued(core::PeId pe, core::TaskId task,
                           double now) override {
        for (auto* o : observers_) o->on_replica_issued(pe, task, now);
    }
    void on_progress(core::PeId pe, double now, double cells_per_second,
                     double prior_estimate) override {
        for (auto* o : observers_) {
            o->on_progress(pe, now, cells_per_second, prior_estimate);
        }
    }
    void on_task_completed(core::PeId pe, core::TaskId task, bool accepted,
                           double now) override {
        for (auto* o : observers_) {
            o->on_task_completed(pe, task, accepted, now);
        }
    }
    void on_task_cancelled(core::PeId pe, core::TaskId task,
                           double now) override {
        for (auto* o : observers_) o->on_task_cancelled(pe, task, now);
    }
    void on_task_failed(core::PeId pe, core::TaskId task, bool abandoned,
                        double now) override {
        for (auto* o : observers_) {
            o->on_task_failed(pe, task, abandoned, now);
        }
    }

private:
    std::vector<core::SchedObserver*> observers_;
};

/// Records scheduling decisions as TraceEvents in a growable lane — no
/// ring, no recorder, no wall clock: every event is stamped with the
/// `now` the scheduler's caller supplied, which is what lets a DES run
/// produce the same master-lane shape as a traced real run.
/// sim::to_trace() merges the lane with the per-PE span lanes so both
/// execution modes feed obs::analyze_balance identically.
class SchedEventLog final : public core::SchedObserver {
public:
    explicit SchedEventLog(std::string label = "master") {
        lane_.label = std::move(label);
    }

    const TraceLaneData& lane() const { return lane_; }
    TraceLaneData take() { return std::move(lane_); }

    void on_slave_registered(core::PeId pe, core::PeKind kind) override {
        // The only callback without a caller clock; registration happens
        // at (or before) the first timestamped event.
        emit(last_now_, EventKind::SlaveRegistered, pe, kNoTask,
             static_cast<double>(kind), core::to_string(kind));
    }
    void on_slave_deregistered(core::PeId pe, double now) override {
        emit(now, EventKind::SlaveDeregistered, pe);
    }
    void on_package_sized(core::PeId pe, std::size_t tasks, bool replica,
                          double now) override {
        (void)replica;
        emit(now, EventKind::PackageSized, pe, kNoTask,
             static_cast<double>(tasks));
    }
    void on_task_assigned(core::PeId pe, core::TaskId task,
                          double now) override {
        emit(now, EventKind::TaskAssigned, pe, task);
    }
    void on_replica_issued(core::PeId pe, core::TaskId task,
                           double now) override {
        emit(now, EventKind::ReplicaIssued, pe, task);
    }
    void on_progress(core::PeId pe, double now, double cells_per_second,
                     double prior_estimate) override {
        (void)prior_estimate;
        emit(now, EventKind::Progress, pe, kNoTask, cells_per_second);
    }
    void on_task_completed(core::PeId pe, core::TaskId task, bool accepted,
                           double now) override {
        emit(now,
             accepted ? EventKind::CompletedAccepted
                      : EventKind::CompletedDiscarded,
             pe, task);
    }
    void on_task_cancelled(core::PeId pe, core::TaskId task,
                           double now) override {
        emit(now, EventKind::TaskCancelled, pe, task);
    }
    void on_task_failed(core::PeId pe, core::TaskId task, bool abandoned,
                        double now) override {
        emit(now, EventKind::TaskFailed, pe, task, abandoned ? 1.0 : 0.0);
    }

private:
    void emit(double t, EventKind kind, core::PeId pe,
              core::TaskId task = kNoTask, double value = 0.0,
              const char* name = nullptr) {
        last_now_ = t;
        lane_.events.push_back(TraceEvent{t, kind, pe, task, value, name});
    }

    TraceLaneData lane_;
    double last_now_ = 0.0;
};

/// One PSS rate observation: the rate the slave realised over its last
/// notify period against the recency-weighted estimate Φ(p_i, P) the
/// master was steering by *before* folding the sample in (paper
/// §IV-A.2). A trajectory of these is the "adjustment converges"
/// evidence: `estimate` chasing `realised` with shrinking error.
struct WeightSample {
    core::PeId pe = core::kInvalidPe;
    double t = 0.0;                  ///< caller clock (virtual or wall)
    double realised_cps = 0.0;       ///< delivered cells/s this period
    double prior_estimate_cps = 0.0; ///< 0 = first sample, no history yet
};

/// Records every on_progress sample. Single-threaded by the
/// SchedObserver contract; attach through a SchedFanout to combine
/// with SchedTracer.
class WeightLog final : public core::SchedObserver {
public:
    void on_progress(core::PeId pe, double now, double cells_per_second,
                     double prior_estimate) override {
        samples_.push_back(
            WeightSample{pe, now, cells_per_second, prior_estimate});
    }

    const std::vector<WeightSample>& samples() const { return samples_; }
    bool empty() const { return samples_.empty(); }

    /// CSV: pe,label,t_seconds,realised_cps,estimate_cps,rel_error.
    /// `pe_labels` (index = PeId) is optional; unknown PEs get "pe<N>".
    /// rel_error = |estimate-realised|/realised, empty while the
    /// estimate has no history.
    void export_csv(std::ostream& os,
                    std::span<const std::string> pe_labels = {}) const;
    std::string csv(std::span<const std::string> pe_labels = {}) const;

    /// JSON array of sample objects (same fields as the CSV).
    std::string to_json(std::span<const std::string> pe_labels = {}) const;

private:
    std::vector<WeightSample> samples_;
};

}  // namespace swh::obs
